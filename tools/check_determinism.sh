#!/usr/bin/env sh
# Determinism lint: greps the result-producing code (src/eval, src/analysis,
# bench) for nondeterminism hazards that have bitten simulation repos before:
#
#   random-device        unseeded randomness — std::random_device, rand(),
#                        srand(). Everything must draw from the seeded
#                        common/rng.hpp Rng.
#   wall-clock           system/steady/high-resolution clocks or
#                        gettimeofday in code that computes results. Benches
#                        legitimately time themselves; each such file is
#                        allowlisted below, one line per file.
#   unordered-iteration  a range-for directly over an unordered container:
#                        iteration order is implementation-defined, so any
#                        result assembled that way is nondeterministic.
#
# Findings are (kind, file) pairs. A finding is fatal unless the pair
# appears in tools/determinism_allowlist.txt ("<kind> <path>" per line,
# '#' comments). Run from anywhere; exits 1 on unallowlisted hazards.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
allowlist="$root/tools/determinism_allowlist.txt"
scope="src/eval src/analysis bench"

fail=0
report() { # kind file line text
    if grep -Eq "^$1[[:space:]]+$2\$" "$allowlist"; then
        return
    fi
    echo "determinism: $2:$3: $1 hazard: $4" >&2
    fail=1
}

scan() { # kind pattern
    kind=$1
    pattern=$2
    # shellcheck disable=SC2086 -- scope is a word list on purpose
    (cd "$root" && grep -rnE "$pattern" $scope \
        --include='*.cpp' --include='*.hpp' || true) |
    while IFS=: read -r file line text; do
        report "$kind" "$file" "$line" "$text"
    done
}

# The while loop above runs in a subshell under plain sh, so hazards are
# counted by re-running the scan and comparing against the allowlist here.
run() {
    scan random-device 'std::random_device|[^a-zA-Z_:]s?rand\(|::rand\('
    scan wall-clock 'system_clock|steady_clock|high_resolution_clock|gettimeofday|[^a-zA-Z_]time\(NULL|[^a-zA-Z_]time\(nullptr'
    scan unordered-iteration 'for[[:space:]]*\(.*:.*unordered'
}

out=$(run 2>&1) || true
if [ -n "$out" ]; then
    echo "$out" >&2
    echo "determinism: unallowlisted hazards found (see" \
         "tools/determinism_allowlist.txt)" >&2
    exit 1
fi
echo "determinism: clean ($(echo "$scope" | wc -w | tr -d ' ') trees scanned)"
