// miro_lint — static analyzer for MIRO policy configurations and
// convergence-safety of MIRO systems.
//
//   miro_lint [--json] <config.conf>...      lint policy configurations
//   miro_lint [--json] --topology <file>     Guideline A checks on a CAIDA
//                                            relationship file
//   miro_lint [--json] --gadget <name>       lint a built-in gadget; <name>
//                                            is fig7.1 or fig7.2, optionally
//                                            suffixed :none|:strict|:b|:c|:d|:e
//                                            (default :none), or `all`
//   miro_lint verify [--json] [options]      layer-3 network-wide symbolic
//                                            verification (see verify usage)
//
// Exit status: 0 when no error-severity finding was produced, 1 when at
// least one was, 2 on usage or I/O failure. Findings go to stdout, text by
// default, one JSON document with --json.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/config_lint.hpp"
#include "analysis/convergence_lint.hpp"
#include "analysis/verify.hpp"
#include "common/error.hpp"
#include "convergence/gadgets.hpp"
#include "policy/policy_config.hpp"
#include "topology/generator.hpp"
#include "topology/serialization.hpp"

namespace {

using miro::analysis::Report;
using miro::analysis::Severity;

int usage(std::ostream& out, int status) {
  out << "usage: miro_lint [--json] <config.conf>...\n"
         "       miro_lint [--json] --topology <relationships-file>\n"
         "       miro_lint [--json] --gadget fig7.1[:<guideline>] | "
         "fig7.2[:<guideline>] | all\n"
         "       miro_lint verify [--json] [--profile <name>] [--scale <x>]\n"
         "                 [--seed <n>] [--dests <n>] "
         "[--topology <relationships-file>]\n"
         "                 [--query reach:<src>:<dst> | "
         "avoid:<src>:<dst>:<x>]... [--diff]\n"
         "                 [--requester <conf> --responder <conf>]\n"
         "guidelines: none strict b c d e\n"
         "verify endpoints: AS numbers or synthetic addresses "
         "10.<asn/256>.<asn%256>.0/24\n";
  return status;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  miro::require(static_cast<bool>(in), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

void lint_config_file(Report& report, const std::string& path) {
  try {
    const miro::policy::BgpConfig config =
        miro::policy::parse_config(read_file(path));
    report.merge(miro::analysis::lint_config(config, path));
  } catch (const miro::Error& error) {
    // A config that does not even parse is an error-severity finding, not a
    // tool failure: the lint run over a batch of configs keeps going.
    report.add(Severity::Error, "policy.parse", error.what()).at(path);
  }
}

bool parse_guideline(const std::string& word, miro::conv::Guideline& out) {
  using miro::conv::Guideline;
  if (word == "none") out = Guideline::None;
  else if (word == "strict") out = Guideline::StrictOnly;
  else if (word == "b") out = Guideline::B;
  else if (word == "c") out = Guideline::C;
  else if (word == "d") out = Guideline::D;
  else if (word == "e") out = Guideline::E;
  else return false;
  return true;
}

const char* guideline_suffix(miro::conv::Guideline guideline) {
  using miro::conv::Guideline;
  switch (guideline) {
    case Guideline::None: return "none";
    case Guideline::StrictOnly: return "strict";
    case Guideline::B: return "b";
    case Guideline::C: return "c";
    case Guideline::D: return "d";
    case Guideline::E: return "e";
  }
  return "?";
}

void lint_gadget(Report& report, const std::string& figure,
                 miro::conv::Guideline guideline) {
  const miro::conv::MiroGadget gadget =
      figure == "fig7.1" ? miro::conv::make_figure_7_1(guideline)
                         : miro::conv::make_figure_7_2(guideline);
  const std::string label =
      figure + ":" + guideline_suffix(guideline);
  report.merge(miro::analysis::lint_system(gadget.graph, gadget.destinations,
                                           gadget.options, label));
}

bool lint_gadget_arg(Report& report, const std::string& arg) {
  using miro::conv::Guideline;
  static const Guideline kAll[] = {Guideline::None, Guideline::StrictOnly,
                                   Guideline::B,    Guideline::C,
                                   Guideline::D,    Guideline::E};
  if (arg == "all") {
    for (const char* figure : {"fig7.1", "fig7.2"})
      for (const Guideline guideline : kAll)
        lint_gadget(report, figure, guideline);
    return true;
  }
  std::string figure = arg;
  Guideline guideline = Guideline::None;
  if (const auto colon = arg.find(':'); colon != std::string::npos) {
    figure = arg.substr(0, colon);
    if (!parse_guideline(arg.substr(colon + 1), guideline)) return false;
  }
  if (figure != "fig7.1" && figure != "fig7.2") return false;
  lint_gadget(report, figure, guideline);
  return true;
}

/// `miro_lint verify`: the layer-3 symbolic verification entry point. Runs
/// network-wide verification over a generated profile or a loaded topology
/// (plus any explicit --query), and negotiation admissibility over a
/// --requester/--responder config pair. Same exit contract as the other
/// modes: 1 on error findings, 2 on usage or I/O failure.
int run_verify(const std::vector<std::string>& args) {
  bool json = false;
  bool want_network = false;
  std::string profile = "gao2005";
  double scale = 0.15;
  std::string topology_file;
  std::string requester_file;
  std::string responder_file;
  miro::analysis::VerifyOptions options;

  Report report;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      auto value = [&]() -> const std::string& {
        miro::require(i + 1 < args.size(), arg + " needs a value");
        return args[++i];
      };
      if (arg == "--json") {
        json = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--profile") {
        profile = value();
        want_network = true;
      } else if (arg == "--scale") {
        scale = std::stod(value());
        want_network = true;
      } else if (arg == "--seed") {
        options.seed = std::stoull(value());
        want_network = true;
      } else if (arg == "--dests") {
        options.destination_samples = std::stoul(value());
        want_network = true;
      } else if (arg == "--topology") {
        topology_file = value();
        want_network = true;
      } else if (arg == "--query") {
        options.queries.push_back(miro::analysis::VerifyQuery::parse(value()));
        want_network = true;
      } else if (arg == "--diff") {
        options.differential = true;
        want_network = true;
      } else if (arg == "--requester") {
        requester_file = value();
      } else if (arg == "--responder") {
        responder_file = value();
      } else {
        return usage(std::cerr, 2);
      }
    }

    // One --seed steers every sampled stage, including the differential
    // round, so a CI fuzz loop over seeds exercises fresh tuples each time.
    options.diff.seed = options.seed;

    const bool want_admissibility =
        !requester_file.empty() || !responder_file.empty();
    if (want_admissibility) {
      miro::require(!requester_file.empty() && !responder_file.empty(),
                    "verify needs both --requester and --responder");
      // A config that does not parse is an error finding, as in lint mode.
      bool parsed = true;
      miro::policy::BgpConfig requester;
      miro::policy::BgpConfig responder;
      for (const auto& [file, config] :
           {std::pair{&requester_file, &requester},
            std::pair{&responder_file, &responder}}) {
        try {
          *config = miro::policy::parse_config(read_file(*file));
        } catch (const miro::Error& error) {
          report.add(Severity::Error, "policy.parse", error.what()).at(*file);
          parsed = false;
        }
      }
      if (parsed) {
        report.merge(miro::analysis::check_negotiation_admissibility(
            requester, requester_file, responder, responder_file));
      }
    }

    if (want_network || !want_admissibility) {
      std::string label;
      std::unique_ptr<miro::topo::AsGraph> graph;
      if (!topology_file.empty()) {
        graph = std::make_unique<miro::topo::AsGraph>(
            miro::topo::load_file(topology_file));
        label = topology_file;
      } else {
        graph = std::make_unique<miro::topo::AsGraph>(
            miro::topo::generate(miro::topo::profile(profile, scale)));
        label = profile;
      }
      report.merge(miro::analysis::verify_network(*graph, options, label));
    }
  } catch (const miro::Error& error) {
    std::cerr << "miro_lint: " << error.what() << "\n";
    return 2;
  }

  report.sort();
  if (json) {
    std::cout << report.to_json().dump() << "\n";
  } else {
    report.render_text(std::cout);
  }
  return report.error_count() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (!args.empty() && args.front() == "verify")
    return run_verify({args.begin() + 1, args.end()});

  Report report;
  try {
    std::size_t i = 0;
    bool did_work = false;
    for (; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg == "--json") {
        json = true;
      } else if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--topology") {
        if (++i >= args.size()) return usage(std::cerr, 2);
        const miro::topo::AsGraph graph = miro::topo::load_file(args[i]);
        report.merge(miro::analysis::lint_topology(graph, args[i]));
        did_work = true;
      } else if (arg == "--gadget") {
        if (++i >= args.size() || !lint_gadget_arg(report, args[i]))
          return usage(std::cerr, 2);
        did_work = true;
      } else if (!arg.empty() && arg.front() == '-') {
        return usage(std::cerr, 2);
      } else {
        lint_config_file(report, arg);
        did_work = true;
      }
    }
    if (!did_work) return usage(std::cerr, 2);
  } catch (const miro::Error& error) {
    std::cerr << "miro_lint: " << error.what() << "\n";
    return 2;
  }

  report.sort();
  if (json) {
    std::cout << report.to_json().dump() << "\n";
  } else {
    report.render_text(std::cout);
  }
  return report.error_count() > 0 ? 1 : 0;
}
