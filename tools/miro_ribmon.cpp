// miro_ribmon — route-event provenance monitor over a churn replay.
//
//   miro_ribmon [--topo figure31|<profile>] [--scale X] [--seed N]
//               [--episodes N] [--duration T] [--defend] [--mrai N]
//               [--load PATH] [--events PATH] [--summary PATH]
//               [--chrome-trace PATH] [--json] [--memory]
//
// Replays a churn trace (generated from the seed, or --load'ed from a saved
// JSON script) with a RibMonitor attached to the sessioned BGP plane, then:
//   - writes the raw record stream as JSONL (--events), one provenance
//     record per line with its causal parent id;
//   - reconstructs the per-root-cause propagation trees and prints one row
//     per tree (convergence, depth, fan-out, amplification);
//   - distills per-prefix convergence observables (best-route changes,
//     path-exploration counts, RIB-churn rate) with Histogram quantiles;
//   - verifies closed accounting: the record stream's per-kind totals must
//     equal the replay's own BGP counters exactly, and the per-tree sums
//     must cover every record (no orphans).
//   - optionally renders the stream as per-AS Perfetto instant tracks
//     (--chrome-trace).
//
// Exit status: 0 when accounting closes and no invariant was violated, 1 on
// an accounting mismatch or replay violation, 2 on usage or I/O failure.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "churn/replayer.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/memstats.hpp"
#include "obs/metrics.hpp"
#include "obs/ribmon.hpp"
#include "topology/generator.hpp"

namespace {

// The dissertation's six-AS running example (Figure 3.1); destination F.
struct Figure31 {
  miro::topo::AsGraph graph;
  miro::topo::NodeId a, b, c, d, e, f;

  Figure31() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topo figure31|<profile>] [--scale X] [--seed N] "
               "[--episodes N] [--duration T] [--defend] [--mrai N] "
               "[--load PATH] [--events PATH] [--summary PATH] "
               "[--chrome-trace PATH] [--json] [--memory]\n",
               argv0);
  std::exit(2);
}

/// One closed-accounting check: a stream total against the replay counter it
/// must equal. A mismatch means an emission site lost or double-counted a
/// record — the exact failure the provenance layer exists to rule out.
struct AccountingRow {
  const char* what;
  std::uint64_t records;
  std::uint64_t counter;

  bool ok() const { return records == counter; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace miro;
  std::string topo_name = "figure31";
  double scale = 0.15;
  std::string load_path, events_path, summary_path, chrome_path;
  bool json = false;
  bool memory_report = false;
  churn::ChurnTraceConfig trace_config;
  trace_config.duration = 8000;
  trace_config.episodes = 24;
  churn::ReplayConfig replay_config;
  replay_config.checkpoint_interval = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topo") topo_name = value();
    else if (flag == "--scale") scale = std::atof(value());
    else if (flag == "--seed")
      trace_config.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (flag == "--episodes")
      trace_config.episodes = static_cast<std::size_t>(std::atoll(value()));
    else if (flag == "--duration")
      trace_config.duration = static_cast<sim::Time>(std::atoll(value()));
    else if (flag == "--defend") {
      replay_config.defense.mrai = 60;
      replay_config.defense.damping_enabled = true;
    } else if (flag == "--mrai")
      replay_config.defense.mrai = static_cast<sim::Time>(std::atoll(value()));
    else if (flag == "--load") load_path = value();
    else if (flag == "--events") events_path = value();
    else if (flag == "--summary") summary_path = value();
    else if (flag == "--chrome-trace") chrome_path = value();
    else if (flag == "--json") json = true;
    else if (flag == "--memory") memory_report = true;
    else usage(argv[0]);
  }

  try {
    Figure31 fig;
    topo::AsGraph generated;
    const topo::AsGraph* graph = &fig.graph;
    topo::NodeId destination = fig.f;
    if (topo_name != "figure31") {
      generated = topo::generate(topo::profile(topo_name, scale));
      graph = &generated;
      destination = 0;
    }

    churn::ChurnTrace trace;
    if (!load_path.empty()) {
      trace = churn::ChurnTrace::load(load_path);
    } else {
      trace = churn::generate_churn_trace(*graph, destination, trace_config);
    }

    // With --memory the replay runs with a registry attached: the graph
    // generator and replay checkpoints keep the per-subsystem accounts
    // current, and RSS is sampled once at the end of the run.
    obs::MemoryRegistry memstats;
    if (memory_report) {
      obs::set_memory(&memstats);
      memstats.account("topology/graph").set_current(graph->memory_bytes());
    }
    obs::RibMonitor monitor;
    replay_config.ribmon = &monitor;
    const churn::ReplayResult result =
        churn::replay_churn(*graph, trace, replay_config);
    if (memory_report) {
      memstats.sample_rss();
      obs::set_memory(nullptr);
    }

    if (!events_path.empty()) {
      std::ofstream out(events_path);
      if (!out) {
        std::fprintf(stderr, "miro_ribmon: cannot open %s\n",
                     events_path.c_str());
        return 2;
      }
      monitor.write_jsonl(out);
      out.flush();
      if (!out) {
        std::fprintf(stderr, "miro_ribmon: write failed on %s\n",
                     events_path.c_str());
        return 2;
      }
    }
    if (!chrome_path.empty() &&
        !obs::write_chrome_trace_file(chrome_path, nullptr,
                                      monitor.as_trace_events())) {
      return 2;
    }

    const obs::ProvenanceSummary provenance =
        build_propagation_trees(monitor.records());
    const obs::ConvergenceReport convergence =
        summarize_convergence(monitor.records());

    // Closed accounting: every stream total must match the replay's own
    // counters, and every record must land in a tree (no orphans).
    const auto& bgp = result.bgp;
    const AccountingRow accounting[] = {
        {"wire_records == updates_sent + withdrawals_sent",
         monitor.wire_messages(),
         static_cast<std::uint64_t>(bgp.updates_sent + bgp.withdrawals_sent)},
        {"tree update sums == updates_sent + withdrawals_sent",
         static_cast<std::uint64_t>(provenance.total_updates),
         static_cast<std::uint64_t>(bgp.updates_sent + bgp.withdrawals_sent)},
        {"deliver records == delivered updates + withdrawals",
         monitor.count(obs::RibEventKind::Deliver),
         static_cast<std::uint64_t>(bgp.delivered_updates +
                                    bgp.delivered_withdrawals)},
        {"loss records == lost_in_flight",
         monitor.count(obs::RibEventKind::Loss),
         static_cast<std::uint64_t>(bgp.lost_in_flight)},
        {"coalesce records == coalesced",
         monitor.count(obs::RibEventKind::MraiCoalesce),
         static_cast<std::uint64_t>(bgp.coalesced)},
        {"suppress records == updates_suppressed",
         monitor.count(obs::RibEventKind::DampingSuppress),
         static_cast<std::uint64_t>(bgp.updates_suppressed)},
        {"orphan records == 0",
         static_cast<std::uint64_t>(provenance.orphans), 0},
    };
    bool accounting_ok = true;
    for (const AccountingRow& row : accounting) {
      accounting_ok = accounting_ok && row.ok();
    }

    obs::MetricsRegistry registry;
    obs::export_ribmon_metrics(monitor, registry);
    if (memory_report) memstats.export_metrics(registry);

    if (!summary_path.empty() || json) {
      JsonValue doc = JsonValue::make_object();
      JsonValue trace_info = JsonValue::make_object();
      trace_info.set("topo", JsonValue::make_string(topo_name));
      trace_info.set("events",
                     JsonValue::make_number(
                         static_cast<double>(trace.events.size())));
      trace_info.set("seed",
                     JsonValue::make_number(static_cast<double>(trace.seed)));
      doc.set("trace", std::move(trace_info));
      JsonValue acct = JsonValue::make_object();
      for (const AccountingRow& row : accounting) {
        JsonValue entry = JsonValue::make_object();
        entry.set("records",
                  JsonValue::make_number(static_cast<double>(row.records)));
        entry.set("counter",
                  JsonValue::make_number(static_cast<double>(row.counter)));
        entry.set("ok", JsonValue::make_bool(row.ok()));
        acct.set(row.what, std::move(entry));
      }
      doc.set("accounting", std::move(acct));
      doc.set("accounting_ok", JsonValue::make_bool(accounting_ok));
      doc.set("violations",
              JsonValue::make_number(
                  static_cast<double>(result.violations.size())));
      std::ostringstream metrics_json;
      registry.write_json(metrics_json);
      doc.set("metrics", JsonValue::parse(metrics_json.str()));
      const std::string rendered = doc.dump();
      if (!summary_path.empty()) {
        std::ofstream out(summary_path);
        out << rendered << "\n";
        out.flush();
        if (!out) {
          std::fprintf(stderr, "miro_ribmon: write failed on %s\n",
                       summary_path.c_str());
          return 2;
        }
      }
      if (json) std::cout << rendered << "\n";
    }

    if (!json) {
      std::printf("replay over %s (%zu ASes, %zu links), %zu trace events, "
                  "defenses %s\n",
                  topo_name.c_str(), graph->node_count(), graph->edge_count(),
                  trace.events.size(),
                  replay_config.defense.mrai != 0 ||
                          replay_config.defense.damping_enabled
                      ? "ON"
                      : "off");
      std::printf("%zu provenance records in %zu trees\n\n", monitor.size(),
                  provenance.trees.size());

      TextTable table({"root", "cause", "actor", "start", "conv", "nodes",
                       "depth", "fanout", "updates", "deliv", "lost", "supp",
                       "coal", "best"});
      for (const obs::PropagationTree& tree : provenance.trees) {
        table.add_row({std::to_string(tree.root), tree.root_detail,
                       std::to_string(tree.root_actor),
                       std::to_string(tree.start),
                       std::to_string(tree.convergence()),
                       std::to_string(tree.nodes), std::to_string(tree.depth),
                       std::to_string(tree.max_fanout),
                       std::to_string(tree.updates),
                       std::to_string(tree.delivered),
                       std::to_string(tree.losses),
                       std::to_string(tree.suppressed),
                       std::to_string(tree.coalesced),
                       std::to_string(tree.best_changes)});
      }
      table.print(std::cout);

      const obs::Histogram& conv =
          registry.histogram("ribmon.convergence_ticks");
      const obs::Histogram& amp = registry.histogram("ribmon.amplification");
      std::printf("\nconvergence ticks: p50 %s  p90 %s  p99 %s  max %s\n",
                  TextTable::num(conv.p50()).c_str(),
                  TextTable::num(conv.p90()).c_str(),
                  TextTable::num(conv.p99()).c_str(),
                  TextTable::num(conv.max()).c_str());
      std::printf("amplification:     p50 %s  p90 %s  p99 %s  max %s\n",
                  TextTable::num(amp.p50()).c_str(),
                  TextTable::num(amp.p90()).c_str(),
                  TextTable::num(amp.p99()).c_str(),
                  TextTable::num(amp.max()).c_str());
      std::printf("best-route changes: %zu across %zu ASes, churn rate "
                  "%s/1000 ticks\n",
                  convergence.total_best_changes, convergence.actors.size(),
                  TextTable::num(convergence.churn_rate()).c_str());

      if (memory_report) {
        std::printf("\nmemory accounts:\n");
        memstats.write_text(std::cout);
      }

      std::printf("\nclosed accounting:\n");
      for (const AccountingRow& row : accounting) {
        std::printf("  [%s] %s: stream %llu vs counter %llu\n",
                    row.ok() ? "ok" : "MISMATCH", row.what,
                    static_cast<unsigned long long>(row.records),
                    static_cast<unsigned long long>(row.counter));
      }
      if (!result.violations.empty()) {
        std::printf("\nFAIL: %zu invariant violation(s) during replay\n",
                    result.violations.size());
      }
    }

    return accounting_ok && result.violations.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "miro_ribmon: %s\n", error.what());
    return 2;
  }
}
