// A guided tour of Chapter 7: why unrestricted MIRO tunnels can oscillate
// and how each guideline restores convergence.
//
// Walks the Figure 7.1 gadget step by step (printing the state after each
// round-robin sweep until the cycle closes), then shows the same instance
// converging under Guideline B, and finishes with Figure 7.2 under the
// strict policy (oscillates) vs Guidelines D and E (converge).
//
// Build & run:  ./build/examples/convergence_tour
#include <cstdio>
#include <iostream>
#include <set>

#include "convergence/gadgets.hpp"

using namespace miro;
using conv::Guideline;

namespace {

std::string show(const conv::MiroConvergenceModel& model,
                 const conv::MiroGadget& gadget, topo::NodeId node,
                 topo::NodeId dest) {
  auto name = [&gadget](topo::NodeId id) {
    for (const auto& [label, value] : gadget.nodes)
      if (value == id) return label;
    return std::string("?");
  };
  const conv::LayeredRoute& route = model.route(node, dest);
  const auto& effective = route.effective();
  if (!effective) return "(none)";
  std::string text;
  for (topo::NodeId hop : *effective) text += name(hop);
  if (route.tunnel) text += " [tunnel]";
  return text;
}

}  // namespace

int main() {
  std::cout << "=== Figure 7.1: A, B, C are customers of D, peering with "
               "each other; each wants the tunnel through the next peer ===\n";
  {
    const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::None);
    conv::MiroConvergenceModel model = gadget.build();
    const topo::NodeId a = gadget.nodes.at("A"), b = gadget.nodes.at("B"),
                       c = gadget.nodes.at("C"), d = gadget.nodes.at("D");
    std::set<std::uint64_t> seen{model.fingerprint()};
    for (int sweep = 1; sweep <= 16; ++sweep) {
      bool changed = false;
      for (topo::NodeId node : {a, b, c, d})
        changed = model.activate(node) || changed;
      std::printf("  sweep %2d:  A:%-14s B:%-14s C:%-14s\n", sweep,
                  show(model, gadget, a, d).c_str(),
                  show(model, gadget, b, d).c_str(),
                  show(model, gadget, c, d).c_str());
      if (!changed) {
        std::cout << "  -> stable (unexpected!)\n";
        break;
      }
      if (!seen.insert(model.fingerprint()).second) {
        std::cout << "  -> this exact global state occurred before: the "
                     "system provably oscillates forever.\n";
        break;
      }
    }
  }

  std::cout << "\n=== The same instance under Guideline B (tunnels are a "
               "separate layer over pure BGP routes) ===\n";
  {
    const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::B);
    conv::MiroConvergenceModel model = gadget.build();
    const auto result = model.run_round_robin();
    std::cout << "  " << (result.converged ? "converged" : "diverged")
              << " after " << result.activations << " activations; ";
    const topo::NodeId d = gadget.nodes.at("D");
    std::cout << "A:" << show(model, gadget, gadget.nodes.at("A"), d)
              << "  B:" << show(model, gadget, gadget.nodes.at("B"), d)
              << "  C:" << show(model, gadget, gadget.nodes.at("C"), d)
              << "\n  All three tunnels coexist because each rides on the "
                 "stable BGP layer.\n";
  }

  std::cout << "\n=== Figure 7.2: D buys from providers A, B, C and wants "
               "the cheaper tunnels D(BA), D(CB), D(AC) ===\n";
  for (Guideline guideline :
       {Guideline::StrictOnly, Guideline::D, Guideline::E}) {
    const conv::MiroGadget gadget = conv::make_figure_7_2(guideline);
    conv::MiroConvergenceModel model = gadget.build();
    const auto result = model.run_round_robin();
    std::cout << "  guideline " << conv::to_string(guideline) << ": "
              << (result.converged
                      ? "converged"
                      : (result.cycle_detected ? "OSCILLATES (cycle proven)"
                                               : "no fixpoint"));
    if (result.converged) {
      const topo::NodeId d = gadget.nodes.at("D");
      std::size_t tunnels = 0;
      for (const char* name : {"A", "B", "C"})
        if (model.route(d, gadget.nodes.at(name)).tunnel) ++tunnels;
      std::cout << " with " << tunnels << " tunnel(s) standing";
    }
    std::cout << "\n";
  }
  std::cout << "\n(Guideline D breaks the cycle with a per-AS partial order "
               "on prefixes; Guideline E refuses tunnels that would ride on "
               "— or invalidate — the speaker's own tunnels.)\n";
  return 0;
}
