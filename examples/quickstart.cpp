// Quickstart: the dissertation's running example (Figures 1.1 / 3.1 / 4.2)
// end to end.
//
// Six ASes A..F. BGP gives AS A the default path A-B-E-F toward F. A does
// not want its traffic to cross AS E, so it pulls alternate routes from AS B
// over the MIRO control plane, accepts the offer B-C-F, gets tunnel id and
// installs the data-plane state, after which A's packets to F travel
// A-B-C-F — while everyone else's traffic is untouched.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "bgp/table_format.hpp"
#include "core/alternates.hpp"
#include "core/protocol.hpp"
#include "dataplane/forwarding.hpp"
#include "topology/as_graph.hpp"

using namespace miro;

int main() {
  // --- The Figure 3.1 topology -------------------------------------------
  topo::AsGraph graph;
  const auto a = graph.add_as(1), b = graph.add_as(2), c = graph.add_as(3);
  const auto d = graph.add_as(4), e = graph.add_as(5), f = graph.add_as(6);
  graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
  graph.add_customer_provider(d, a);
  graph.add_customer_provider(b, e);
  graph.add_customer_provider(d, e);
  graph.add_customer_provider(c, f);
  graph.add_customer_provider(e, f);
  graph.add_peer(b, c);
  graph.add_peer(c, e);
  auto name = [&graph](topo::NodeId node) {
    return std::string(1, static_cast<char>('A' + graph.as_number(node) - 1));
  };

  // --- Default BGP routes -------------------------------------------------
  bgp::StableRouteSolver solver(graph);
  const bgp::RoutingTree tree = solver.solve(f);
  std::cout << "Default BGP routes toward F:\n";
  for (topo::NodeId node : {a, b, c, d, e}) {
    std::cout << "  " << name(node) << ": ";
    for (topo::NodeId hop : tree.path_of(node)) std::cout << name(hop);
    std::cout << "  (" << bgp::to_string(tree.route_class(node))
              << " route)\n";
  }

  // --- The problem: A's default path crosses E ----------------------------
  std::cout << "\nAS A's BGP table toward F's prefix (Table 1.1 style):\n";
  bgp::print_bgp_table(bgp::bgp_table_for(solver, tree, a), std::cout);
  std::cout << "AS A wants to avoid AS E, but every candidate crosses it.\n";

  // --- Pull-based negotiation over the control plane ----------------------
  core::RouteStore store(graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  core::ResponderConfig responder_config;
  responder_config.policy = core::ExportPolicy::RespectExport;
  core::MiroAgent agent_a(a, store, bus);
  core::MiroAgent agent_b(b, store, bus, responder_config);

  std::cout << "\nA -> B: RouteRequest(destination=F, avoid=E)\n";
  std::optional<core::NegotiationOutcome> outcome;
  agent_a.request(b, /*arrival_neighbor=*/a, /*destination=*/f, /*avoid=*/e,
                  /*max_cost=*/std::nullopt,
                  [&outcome](const core::NegotiationOutcome& o) {
                    outcome = o;
                  });
  scheduler.run_until(1000);
  if (!outcome || !outcome->established) {
    std::cout << "negotiation failed\n";
    return 1;
  }
  const core::TunnelRecord* record =
      agent_b.tunnels().find(outcome->tunnel_id);
  std::cout << "B -> A: offers, accept, TunnelConfirm(id="
            << outcome->tunnel_id << ")\n";
  std::cout << "Tunnel " << outcome->tunnel_id << " at B bound to route ";
  for (topo::NodeId hop : record->bound_route.path) std::cout << name(hop);
  std::cout << ", price " << record->cost << "\n";

  // --- Data plane ----------------------------------------------------------
  dataplane::AsLevelDataPlane plane(store);
  // Recreate the negotiated spliced path A + (B C F) for installation.
  core::AlternatesEngine alternates(solver);
  const auto analytic =
      alternates.avoid_as(tree, a, e, core::ExportPolicy::RespectExport);
  plane.install_tunnel(*analytic.chosen);

  auto show_trace = [&](topo::NodeId source, const char* label) {
    net::Packet packet(plane.host_address(source), plane.host_address(f));
    const auto trace = plane.trace(packet, source);
    std::cout << "  " << label << ": ";
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      if (i > 0) std::cout << " -> ";
      std::cout << name(trace.hops[i].as);
      if (trace.hops[i].action == dataplane::TraceHop::Action::Encapsulate)
        std::cout << "(encap tid=" << *trace.hops[i].tunnel_id << ")";
      if (trace.hops[i].action == dataplane::TraceHop::Action::Decapsulate)
        std::cout << "(decap)";
    }
    std::cout << (trace.traversed(e) ? "   [crosses E]" : "   [avoids E]")
              << "\n";
  };
  std::cout << "\nPacket traces after tunnel installation:\n";
  show_trace(a, "A -> F");
  show_trace(d, "D -> F (untouched default)");
  return 0;
}
