// Churn replay lab: generate or load a churn trace (link flaps, session
// resets, prefix flaps, hijack-and-recover), replay it deterministically
// over the sessioned BGP plane, and audit every checkpoint with the online
// safety-invariant checker. Nonzero exit iff any invariant is violated, so
// the binary doubles as a chaos gate for CI.
//
//   ./churn_replay [--topo figure31|<profile>] [--scale X] [--seed N]
//                  [--episodes N] [--duration T] [--defend] [--mrai N]
//                  [--checkpoint T] [--save PATH] [--load PATH]
//
// --load replays a saved trace JSON against the selected topology (the trace
// is re-validated against it first); --save writes the generated trace so a
// failing script can be checked in and replayed forever. --defend switches
// on the MRAI + flap-damping defenses (both off by default, like real
// deployments start). Every run is bit-deterministic for a given seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "churn/replayer.hpp"
#include "obs/metrics.hpp"
#include "topology/generator.hpp"

namespace {

// The dissertation's six-AS running example (Figure 3.1); destination F.
struct Figure31 {
  miro::topo::AsGraph graph;
  miro::topo::NodeId a, b, c, d, e, f;

  Figure31() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topo figure31|<profile>] [--scale X] [--seed N] "
               "[--episodes N] [--duration T] [--defend] [--mrai N] "
               "[--checkpoint T] [--save PATH] [--load PATH]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace miro;
  std::string topo_name = "figure31";
  double scale = 0.15;
  std::string save_path, load_path;
  churn::ChurnTraceConfig trace_config;
  trace_config.duration = 8000;
  trace_config.episodes = 24;
  churn::ReplayConfig replay_config;
  replay_config.checkpoint_interval = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--topo") topo_name = value();
    else if (flag == "--scale") scale = std::atof(value());
    else if (flag == "--seed")
      trace_config.seed = static_cast<std::uint64_t>(std::atoll(value()));
    else if (flag == "--episodes")
      trace_config.episodes = static_cast<std::size_t>(std::atoll(value()));
    else if (flag == "--duration")
      trace_config.duration = static_cast<sim::Time>(std::atoll(value()));
    else if (flag == "--defend") {
      replay_config.defense.mrai = 60;
      replay_config.defense.damping_enabled = true;
    } else if (flag == "--mrai")
      replay_config.defense.mrai = static_cast<sim::Time>(std::atoll(value()));
    else if (flag == "--checkpoint")
      replay_config.checkpoint_interval =
          static_cast<sim::Time>(std::atoll(value()));
    else if (flag == "--save") save_path = value();
    else if (flag == "--load") load_path = value();
    else usage(argv[0]);
  }

  try {
    Figure31 fig;
    topo::AsGraph generated;
    const topo::AsGraph* graph = &fig.graph;
    topo::NodeId destination = fig.f;
    if (topo_name != "figure31") {
      generated = topo::generate(topo::profile(topo_name, scale));
      graph = &generated;
      destination = 0;
    }

    churn::ChurnTrace trace;
    if (!load_path.empty()) {
      trace = churn::ChurnTrace::load(load_path);
      std::printf("loaded %zu events from %s (seed %llu)\n",
                  trace.events.size(), load_path.c_str(),
                  static_cast<unsigned long long>(trace.seed));
    } else {
      trace = churn::generate_churn_trace(*graph, destination, trace_config);
      std::printf("generated %zu events (seed %llu, duration %llu)\n",
                  trace.events.size(),
                  static_cast<unsigned long long>(trace.seed),
                  static_cast<unsigned long long>(trace_config.duration));
    }
    if (!save_path.empty()) {
      trace.save(save_path);
      std::printf("saved trace to %s\n", save_path.c_str());
    }

    const churn::ReplayResult result =
        churn::replay_churn(*graph, trace, replay_config);

    std::printf("\nreplay over %s (%zu ASes, %zu links), defenses %s\n",
                topo_name.c_str(), graph->node_count(), graph->edge_count(),
                replay_config.defense.mrai != 0 ||
                        replay_config.defense.damping_enabled
                    ? "ON"
                    : "off");
    std::printf("  initial convergence: %llu ticks\n",
                static_cast<unsigned long long>(result.initial_convergence));
    std::printf("  churn bursts: %zu\n", result.convergence.size());
    obs::Histogram burst_conv;
    std::size_t burst_msgs = 0;
    for (const churn::ConvergenceSample& sample : result.convergence) {
      burst_conv.observe(static_cast<double>(sample.duration()));
      burst_msgs += sample.messages;
    }
    std::printf("  burst convergence: p50 %.1f, p90 %.1f, p99 %.1f, "
                "worst %.0f ticks\n",
                burst_conv.p50(), burst_conv.p90(), burst_conv.p99(),
                burst_conv.max());
    std::printf("  messages during bursts: %zu\n", burst_msgs);
    std::printf("  updates %zu, withdrawals %zu, coalesced %zu, "
                "suppressed %zu, damped %zu\n",
                result.bgp.updates_sent, result.bgp.withdrawals_sent,
                result.bgp.coalesced, result.bgp.updates_suppressed,
                result.bgp.routes_damped);
    std::printf("  checkpoints: %zu (%zu transit-quiet, %zu solver "
                "comparisons)\n",
                result.checker.checkpoints, result.checker.quiet_checkpoints,
                result.checker.solver_comparisons);

    if (result.ok()) {
      std::printf("\nOK: all invariants held at every checkpoint\n");
      return 0;
    }
    std::printf("\nFAIL: %zu invariant violation(s)\n",
                result.violations.size());
    for (const churn::ChurnViolation& violation : result.violations) {
      if (violation.event_index == churn::InvariantChecker::kNoEvent) {
        std::printf("  [%s] t=%llu (before any event): %s\n",
                    violation.property.c_str(),
                    static_cast<unsigned long long>(violation.time),
                    violation.detail.c_str());
      } else {
        std::printf("  [%s] t=%llu after event #%zu: %s\n",
                    violation.property.c_str(),
                    static_cast<unsigned long long>(violation.time),
                    violation.event_index, violation.detail.c_str());
      }
    }
    if (result.checker.violations_dropped != 0) {
      std::printf("  ... and %zu more dropped\n",
                  result.checker.violations_dropped);
    }
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
