// BGP dynamics and MIRO soft state under failures (Sections 2.2.2 and 4.3).
//
// Runs the message-level BGP protocol on the Figure 3.1 topology, watches
// the A<->B tunnel (bound to B-C-F, negotiated to avoid E) with the tunnel
// monitor, then fails the link C-F. The withdrawals ripple through the
// network, C's route swings onto C-E-F — through the very AS the tunnel
// exists to avoid — and the monitor tears the tunnel down, exactly the
// life-cycle the dissertation describes.
//
// Build & run:  ./build/examples/bgp_dynamics
#include <iostream>

#include "bgp/session_bgp.hpp"
#include "bgp/table_format.hpp"
#include "core/tunnel_monitor.hpp"
#include "topology/as_graph.hpp"

using namespace miro;

int main() {
  topo::AsGraph graph;
  const auto a = graph.add_as(1), b = graph.add_as(2), c = graph.add_as(3);
  const auto d = graph.add_as(4), e = graph.add_as(5), f = graph.add_as(6);
  graph.add_customer_provider(b, a);
  graph.add_customer_provider(d, a);
  graph.add_customer_provider(b, e);
  graph.add_customer_provider(d, e);
  graph.add_customer_provider(c, f);
  graph.add_customer_provider(e, f);
  graph.add_peer(b, c);
  graph.add_peer(c, e);
  (void)a;
  (void)d;
  auto name = [&graph](topo::NodeId node) {
    return std::string(1, static_cast<char>('A' + graph.as_number(node) - 1));
  };
  auto path_text = [&](const std::vector<topo::NodeId>& path) {
    std::string text;
    for (topo::NodeId hop : path) text += name(hop);
    return text.empty() ? std::string("(none)") : text;
  };

  sim::Scheduler scheduler;
  bgp::SessionedBgpNetwork network(graph, f, scheduler);

  // The Figure 3.1 tunnel, already negotiated: A reaches F via B over BCF.
  core::TunnelMonitor monitor;
  monitor.watch({/*id=*/7, /*upstream=*/a, /*responder=*/b,
                 /*destination=*/f, /*bound_path=*/{b, c, f},
                 /*must_avoid=*/e, /*strict_binding=*/false});

  network.set_observer([&](topo::NodeId node,
                           const std::optional<bgp::Route>& best) {
    std::optional<std::vector<topo::NodeId>> path;
    if (best) path = best->path;
    for (const auto& tunnel : monitor.on_downstream_change(node, f, path)) {
      std::cout << "  [t=" << scheduler.now() << "] tunnel " << tunnel.id
                << " TORN DOWN: the route beyond " << name(tunnel.responder)
                << " now runs through " << name(*tunnel.must_avoid) << "\n";
    }
  });

  std::cout << "Phase 1: initial convergence\n";
  network.start();
  scheduler.run_all();
  std::cout << "  updates sent: " << network.stats().updates_sent
            << ", withdrawals: " << network.stats().withdrawals_sent << "\n";
  for (topo::NodeId node : {a, b, c, d, e})
    std::cout << "  " << name(node) << " -> F: "
              << path_text(network.path_of(node)) << "\n";
  std::cout << "  tunnel 7 (A via B over BCF, avoiding E): watched="
            << monitor.watched_count() << "\n";

  std::cout << "\nPhase 2: link C-F fails\n";
  const auto updates_before = network.stats().updates_sent;
  network.fail_link(c, f);
  scheduler.run_all();
  std::cout << "  reconvergence traffic: "
            << (network.stats().updates_sent - updates_before)
            << " updates, " << network.stats().withdrawals_sent
            << " withdrawals total\n";
  for (topo::NodeId node : {a, b, c, d, e})
    std::cout << "  " << name(node) << " -> F: "
              << path_text(network.path_of(node)) << "\n";
  std::cout << "  tunnels still watched: " << monitor.watched_count()
            << "\n";

  std::cout << "\nPhase 3: link C-F restored\n";
  network.restore_link(c, f);
  scheduler.run_all();
  for (topo::NodeId node : {a, b, c})
    std::cout << "  " << name(node) << " -> F: "
              << path_text(network.path_of(node)) << "\n";
  std::cout << "  (A would now re-negotiate the tunnel; see quickstart)\n";
  return 0;
}
