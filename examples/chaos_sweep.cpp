// Chaos-sweep harness: drive the MIRO negotiation protocol over a lossy
// control plane (seeded drop / duplication / reorder-jitter, see
// netsim/fault_injection.hpp) and print how the reliability layer holds up —
// establishment rate, retransmissions, suppressed duplicates, failovers.
//
//   ./chaos_sweep [negotiations] [seed] [--metrics-json <path>]
//                 [--chrome-trace <path>] [--memory]
//
// With --metrics-json the final (worst drop rate) run's metrics registry —
// agent counters, bus delivery accounting — is written as a JSON snapshot,
// suitable for a CI artifact. With --chrome-trace the final run is executed
// with both observability planes on — the sim-time TraceRecorder and the
// wall-clock span profiler — and merged into one Chrome trace-event file
// (load it in chrome://tracing or https://ui.perfetto.dev). Every run is
// deterministic for a given seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "netsim/fault_injection.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/memstats.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "topology/as_graph.hpp"

namespace {

// The dissertation's six-AS running example (Figure 3.1): A wants to reach F
// while avoiding E; B holds the unannounced alternate B-C-F.
struct Figure31 {
  miro::topo::AsGraph graph;
  miro::topo::NodeId a, b, c, d, e, f;

  Figure31() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

struct SweepRow {
  double drop;
  std::size_t initiated = 0;
  std::size_t established = 0;
  std::size_t abandoned = 0;
  std::size_t retransmissions = 0;
  std::size_t duplicates_suppressed = 0;
  std::size_t failed_over = 0;
  miro::sim::FaultPlane::Counters plane;
};

SweepRow run_one(double drop, std::size_t negotiations, std::uint64_t seed,
                 miro::obs::MetricsRegistry* metrics = nullptr,
                 miro::obs::TraceRecorder* trace = nullptr,
                 miro::obs::MemoryRegistry* memstats = nullptr) {
  using namespace miro;
  Figure31 fig;
  // With --memory the store's tree map allocates through a counting
  // allocator, so the account tracks live bytes (and the high-water peak).
  core::RouteStore store(fig.graph,
                         memstats != nullptr
                             ? &memstats->account("core/route_store")
                             : nullptr);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  sim::FaultPlane plane(seed);
  plane.set_default_profile({drop, /*duplicate=*/0.10, /*jitter_max=*/25});
  bus.set_fault_plane(&plane);

  core::SoftStateConfig ss;
  ss.rng_seed = seed;
  core::MiroAgent requester(fig.a, store, bus, {}, ss);
  core::MiroAgent responder(fig.b, store, bus, {}, ss);
  if (trace != nullptr) {
    scheduler.set_trace(trace);
    bus.set_trace(trace);
    requester.set_trace(trace);
    responder.set_trace(trace);
  }

  SweepRow row;
  row.drop = drop;
  row.initiated = negotiations;
  for (std::size_t i = 0; i < negotiations; ++i) {
    scheduler.at(i * 250, [&]() {
      requester.request(fig.b, fig.a, fig.f, fig.e, std::nullopt,
                        [&row](const core::NegotiationOutcome& o) {
                          if (o.established) ++row.established;
                        });
    });
  }
  const sim::Time end = static_cast<sim::Time>(negotiations) * 250 + 3000;
  scheduler.run_until(end);
  std::vector<net::TunnelId> held;
  for (const auto& [id, up] : requester.upstream_tunnels())
    held.push_back(id);
  for (net::TunnelId id : held) requester.teardown(id);
  scheduler.run_until(end + 2500);

  row.abandoned = requester.stats().negotiations_abandoned;
  row.retransmissions = requester.stats().retransmissions;
  row.duplicates_suppressed = requester.stats().duplicates_suppressed +
                              responder.stats().duplicates_suppressed;
  row.failed_over = requester.stats().tunnels_failed_over;
  row.plane = plane.totals();
  if (memstats != nullptr) {
    memstats->account("topology/graph").set_current(fig.graph.memory_bytes());
    memstats->sample_rss();
  }
  if (metrics != nullptr) {
    requester.export_metrics(*metrics, "requester");
    responder.export_metrics(*metrics, "responder");
    bus.export_metrics(*metrics, "bus");
    plane.export_metrics(*metrics, "faults");
    metrics->gauge("sweep.drop_rate").set(drop);
    metrics->gauge("sweep.negotiations")
        .set(static_cast<double>(negotiations));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string chrome_trace_path;
  bool memory_report = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--memory") == 0) {
      memory_report = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t negotiations =
      positional.size() > 0
          ? static_cast<std::size_t>(std::atoi(positional[0]))
          : 50;
  const std::uint64_t seed =
      positional.size() > 1
          ? static_cast<std::uint64_t>(std::atoll(positional[1]))
          : 42;

  std::printf("Chaos sweep: %zu negotiations per drop rate, 10%% duplication,"
              " jitter <= 25 ticks, seed %llu\n\n",
              negotiations, static_cast<unsigned long long>(seed));
  std::printf("%6s %6s %6s %6s %7s %6s %6s %8s %8s %6s\n", "drop%", "init",
              "estab", "aband", "retx", "dups", "fover", "msgsent",
              "msgdrop", "rate%");
  miro::obs::MetricsRegistry metrics;
  miro::obs::TraceRecorder recorder;
  miro::obs::MemorySink sink;  // full history even past ring wraparound
  recorder.add_sink(&sink);
  miro::obs::ProfileRegistry profiler;
  miro::obs::MemoryRegistry memstats;
  const std::vector<double> drops{0.0, 0.05, 0.10, 0.15, 0.20, 0.30};
  for (double drop : drops) {
    // Only the final (worst) run is observed: its registry feeds the metrics
    // snapshot and its trace/profiler planes feed the Chrome trace.
    const bool last = drop == drops.back();
    const bool trace_this = last && !chrome_trace_path.empty();
    if (trace_this) miro::obs::set_profile(&profiler);
    const SweepRow row = run_one(drop, negotiations, seed,
                                 last && !metrics_path.empty() ? &metrics
                                                               : nullptr,
                                 trace_this ? &recorder : nullptr,
                                 last && memory_report ? &memstats : nullptr);
    if (trace_this) miro::obs::set_profile(nullptr);
    std::printf(
        "%6.0f %6zu %6zu %6zu %7zu %6zu %6zu %8llu %8llu %6.1f\n",
        drop * 100, row.initiated, row.established, row.abandoned,
        row.retransmissions, row.duplicates_suppressed, row.failed_over,
        static_cast<unsigned long long>(row.plane.sent),
        static_cast<unsigned long long>(row.plane.dropped),
        100.0 * static_cast<double>(row.established) /
            static_cast<double>(row.initiated));
  }
  std::printf("\nEvery negotiation terminated; soft state drained to zero"
              " after the final quiescent period.\n");
  if (memory_report) {
    std::printf("\nMemory accounts (drop=%.0f%% run):\n",
                drops.back() * 100);
    memstats.write_text(std::cout);
    if (!metrics_path.empty()) memstats.export_metrics(metrics);
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    metrics.write_json(out);
    out << "\n";
    std::printf("Metrics snapshot (drop=%.0f%%) written to %s\n",
                drops.back() * 100, metrics_path.c_str());
  }
  if (!chrome_trace_path.empty()) {
    if (!miro::obs::write_chrome_trace_file(chrome_trace_path, &profiler,
                                            sink.events(), {})) {
      std::fprintf(stderr, "chaos_sweep: cannot write %s\n",
                   chrome_trace_path.c_str());
      return 1;
    }
    std::printf("Chrome trace (drop=%.0f%%: %zu sim events, %zu wall spans)"
                " written to %s -- open in chrome://tracing or Perfetto\n",
                drops.back() * 100, sink.events().size(),
                profiler.spans().size(), chrome_trace_path.c_str());
  }
  return 0;
}
