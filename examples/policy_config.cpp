// Driving MIRO from the Chapter 6 policy language.
//
// Parses the dissertation's Section 6.3 requester and responder
// configurations (the "extended route-map" syntax), evaluates the requester's
// trigger against its BGP candidates on the Figure 3.1 topology, prices the
// responder's candidate routes through its negotiation filter, and completes
// the negotiation within the budget the policy sets.
//
// Build & run:  ./build/examples/policy_config
#include <iostream>

#include "core/alternates.hpp"
#include "policy/policy_engine.hpp"
#include "topology/as_graph.hpp"

using namespace miro;

int main() {
  // Figure 3.1 again; AS numbers 1..6 = A..F, and the "bad" AS is E (= 5).
  topo::AsGraph graph;
  const auto a = graph.add_as(1), b = graph.add_as(2), c = graph.add_as(3);
  const auto d = graph.add_as(4), e = graph.add_as(5), f = graph.add_as(6);
  graph.add_customer_provider(b, a);
  graph.add_customer_provider(d, a);
  graph.add_customer_provider(b, e);
  graph.add_customer_provider(d, e);
  graph.add_customer_provider(c, f);
  graph.add_customer_provider(e, f);
  graph.add_peer(b, c);
  graph.add_peer(c, e);
  (void)d;

  const char* requester_config = R"(
! Requesting AS (A): always try to avoid AS 5.
router bgp 1
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-5
ip as-path access-list 200 deny _5_
ip as-path access-list 200 permit .*
negotiation NEG-5
match all path _5_
start negotiation with maximum cost 250
)";
  const char* responder_config = R"(
! Responding AS (B): sell customer routes for 120, peer routes for 180.
router bgp 2
accept negotiation from any
when tunnel_number < 1000
negotiation filter FILTER-1
filter permit local_pref > 300
set tunnel_cost 120
filter permit local_pref > 100
set tunnel_cost 180
)";

  policy::PolicyEngine requester(policy::parse_config(requester_config));
  policy::PolicyEngine responder(policy::parse_config(responder_config));
  std::cout << "Parsed requester (AS "
            << *requester.config().local_as << ") and responder (AS "
            << *responder.config().local_as << ") configurations.\n\n";

  // The requester's BGP candidates toward F.
  bgp::StableRouteSolver solver(graph);
  const bgp::RoutingTree tree = solver.solve(f);
  std::vector<policy::CandidateRoute> candidates;
  std::cout << "AS 1's BGP candidates toward AS 6:\n";
  for (const bgp::Route& route : solver.candidates_at(tree, a)) {
    policy::CandidateRoute candidate;
    for (std::size_t i = 1; i < route.path.size(); ++i)
      candidate.as_path.push_back(graph.as_number(route.path[i]));
    candidate.local_pref = bgp::conventional_local_pref(route.route_class);
    std::cout << "  path:";
    for (auto asn : candidate.as_path) std::cout << " " << asn;
    std::cout << "  local-pref " << candidate.local_pref << "\n";
    candidates.push_back(std::move(candidate));
  }

  // Trigger evaluation: every candidate crosses AS 5 -> negotiate.
  const auto trigger = requester.evaluate_trigger("AVOID_AS", candidates);
  if (!trigger) {
    std::cout << "\nno trigger: some candidate already avoids AS 5\n";
    return 0;
  }
  std::cout << "\ntrigger fired: negotiation '" << trigger->negotiation_name
            << "', max cost " << *trigger->max_cost << ", targets:";
  for (auto asn : trigger->targets) std::cout << " AS" << asn;
  std::cout << "\n";

  // Responder side: price what AS 2 could offer.
  std::cout << "\nAS 2 prices its candidate routes toward AS 6:\n";
  bool deal = false;
  for (const bgp::Route& route : solver.candidates_at(tree, b)) {
    policy::CandidateRoute candidate;
    for (std::size_t i = 1; i < route.path.size(); ++i)
      candidate.as_path.push_back(graph.as_number(route.path[i]));
    candidate.local_pref = bgp::conventional_local_pref(route.route_class);
    const auto price = responder.price_for(candidate);
    std::cout << "  path:";
    for (auto asn : candidate.as_path) std::cout << " " << asn;
    if (!price) {
      std::cout << "  -> not offered (no filter permits it)\n";
      continue;
    }
    std::cout << "  -> price " << *price;
    const bool avoids = !route.traverses(e);
    const bool affordable = *price <= *trigger->max_cost;
    if (avoids && affordable && responder.admits(1, 0)) {
      std::cout << "  ACCEPTED (avoids AS 5, within budget)";
      deal = true;
    } else if (!avoids) {
      std::cout << "  rejected: crosses AS 5";
    } else if (!affordable) {
      std::cout << "  rejected: over budget";
    }
    std::cout << "\n";
  }
  std::cout << (deal ? "\nnegotiation succeeds.\n"
                     : "\nnegotiation fails.\n");
  return deal ? 0 : 1;
}
