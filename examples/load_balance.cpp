// Inbound traffic engineering for a multi-homed stub (the Section 5.4
// application).
//
// A stub AS with several providers measures how inbound traffic (uniform
// unit per source) splits across its incoming links, finds its best "power
// node" — an AS that many sources' default paths traverse — and negotiates
// with it to switch to an alternate route entering over a different link.
// Prints the ingress distribution before and after, under the
// independent-selection (lower-bound) model.
//
// Usage: ./build/examples/load_balance [--scale 0.25]
#include <algorithm>
#include <cstring>
#include <cstdio>
#include <iostream>
#include <map>

#include "bgp/route_solver.hpp"
#include "core/protocol.hpp"
#include "topology/generator.hpp"

using namespace miro;

namespace {

std::map<topo::NodeId, std::size_t> ingress_counts(
    const topo::AsGraph& graph, const bgp::RoutingTree& tree) {
  std::map<topo::NodeId, std::size_t> counts;
  for (topo::NodeId s = 0; s < graph.node_count(); ++s) {
    if (s == tree.destination() || !tree.reachable(s)) continue;
    ++counts[tree.ingress_neighbor(s)];
  }
  return counts;
}

void print_counts(const topo::AsGraph& graph,
                  const std::map<topo::NodeId, std::size_t>& counts) {
  std::size_t total = 0;
  for (const auto& [link, count] : counts) total += count;
  for (const auto& [link, count] : counts) {
    std::cout << "    via provider AS" << graph.as_number(link) << ": "
              << count << " sources ("
              << (100.0 * static_cast<double>(count) /
                  static_cast<double>(total))
              << "%)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
  double scale = 0.25;
  for (int i = 1; i + 1 < argc; i += 2)
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);

  const topo::AsGraph graph =
      topo::generate(topo::profile("gao2005", scale));
  bgp::StableRouteSolver solver(graph);

  // Pick a multi-homed stub with a lopsided inbound split.
  for (topo::NodeId stub = graph.node_count(); stub-- > 0;) {
    if (!graph.is_multi_homed_stub(stub)) continue;
    const bgp::RoutingTree tree = solver.solve(stub);
    const auto before = ingress_counts(graph, tree);
    if (before.size() < 2) continue;
    std::size_t total = 0, max_count = 0;
    for (const auto& [link, count] : before) {
      total += count;
      max_count = std::max(max_count, count);
    }
    if (max_count * 10 < total * 7) continue;  // want >= 70% on one link

    std::cout << "Multi-homed stub AS" << graph.as_number(stub) << " with "
              << before.size() << " providers; inbound before:\n";
    print_counts(graph, before);

    // Power node: the AS most sources route through.
    std::vector<std::size_t> traverse(graph.node_count(), 0);
    for (topo::NodeId s = 0; s < graph.node_count(); ++s) {
      if (s == stub || !tree.reachable(s)) continue;
      for (topo::NodeId hop = tree.next_hop(s); hop != stub;
           hop = tree.next_hop(hop))
        ++traverse[hop];
    }
    const auto power = static_cast<topo::NodeId>(
        std::max_element(traverse.begin(), traverse.end()) -
        traverse.begin());
    std::cout << "  power node: AS" << graph.as_number(power) << " (carries "
              << traverse[power] << " sources, "
              << tree.path_length(power) << " hop(s) from the stub)\n";

    // Find the power node's alternate entering over a different link and
    // negotiate the switch over the MIRO control plane (Section 3.3's
    // downstream-initiated negotiation).
    const topo::NodeId old_ingress = tree.ingress_neighbor(power);
    for (const bgp::Route& alt : solver.candidates_at(tree, power)) {
      const topo::NodeId new_ingress = alt.path[alt.path.size() - 2];
      if (new_ingress == old_ingress) continue;

      core::RouteStore store(graph);
      sim::Scheduler scheduler;
      core::Bus bus(scheduler);
      core::MiroAgent stub_agent(stub, store, bus);
      core::MiroAgent power_agent(power, store, bus);
      bool accepted = false;
      std::vector<topo::NodeId> agreed_path;
      stub_agent.request_switch(
          power, /*destination=*/stub, /*desired_next_hop=*/alt.path[1],
          /*compensation=*/200,
          [&](bool ok, const std::vector<topo::NodeId>& path) {
            accepted = ok;
            agreed_path = path;
          });
      scheduler.run_until(1000);
      if (!accepted) {
        std::cout << "  power node declined the switch to ";
        for (auto hop : alt.path) std::cout << graph.as_number(hop) << " ";
        std::cout << "\n";
        continue;
      }
      std::cout << "  negotiated over the control plane: power node "
                   "switches to ";
      for (auto hop : agreed_path) std::cout << graph.as_number(hop) << " ";
      std::cout << "(" << bgp::to_string(alt.route_class)
                << " route, enters via AS" << graph.as_number(new_ingress)
                << ")\n";
      const bgp::RoutingTree pinned =
          solver.solve_pinned(stub, bgp::PinnedRoute{power, alt.path[1]});
      std::cout << "  inbound after (independent re-selection by every "
                   "other AS):\n";
      print_counts(graph, ingress_counts(graph, pinned));
      return 0;
    }
    std::cout << "  (no alternate over a different link at this power "
                 "node; trying the next stub)\n\n";
  }
  std::cout << "no suitable stub found at this scale\n";
  return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
