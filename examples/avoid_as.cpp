// Avoiding an AS at Internet scale (the Section 5.3 application as a user
// would run it).
//
// Generates a synthetic Internet, picks (source, destination) pairs whose
// default BGP path crosses a designated "untrusted" AS, and walks through
// the MIRO procedure: check plain-BGP candidates, then negotiate down the
// default path under each export policy. Prints each negotiation's
// footprint and the resulting path.
//
// Usage: ./build/examples/avoid_as [--profile gao2005] [--scale 0.25]
#include <cstring>
#include <cstdio>
#include <iostream>

#include "core/alternates.hpp"
#include "topology/generator.hpp"

using namespace miro;

int main(int argc, char** argv) {
  try {
  std::string profile = "gao2005";
  double scale = 0.25;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--profile") == 0) profile = argv[i + 1];
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
  }

  const topo::AsGraph graph = topo::generate(topo::profile(profile, scale));
  std::cout << "Generated '" << profile << "' topology: "
            << graph.node_count() << " ASes, " << graph.edge_count()
            << " links\n\n";
  bgp::StableRouteSolver solver(graph);
  core::AlternatesEngine engine(solver);

  Rng rng(2024);
  int shown = 0;
  for (int attempt = 0; attempt < 3000 && shown < 5; ++attempt) {
    const auto dest =
        static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
    const auto source =
        static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
    if (source == dest) continue;
    const bgp::RoutingTree tree = solver.solve(dest);
    if (!tree.reachable(source)) continue;
    const auto path = tree.path_of(source);
    if (path.size() < 4) continue;
    const topo::NodeId avoid = path[2];
    if (graph.has_edge(source, avoid) || avoid == dest) continue;

    ++shown;
    std::cout << "case " << shown << ": AS" << graph.as_number(source)
              << " -> AS" << graph.as_number(dest) << ", avoiding AS"
              << graph.as_number(avoid) << "\n  default path: ";
    for (auto hop : path) std::cout << graph.as_number(hop) << " ";
    std::cout << "\n";

    for (core::ExportPolicy policy : core::kAllPolicies) {
      const auto result = engine.avoid_as(tree, source, avoid, policy);
      std::cout << "  policy " << core::to_string(policy)
                << core::suffix(policy) << ": ";
      if (!result.success) {
        std::cout << "FAILED after contacting " << result.ases_contacted
                  << " AS(es), " << result.paths_received
                  << " candidate path(s) received\n";
        continue;
      }
      if (result.bgp_success) {
        std::cout << "plain BGP already offers a clean route: ";
      } else {
        std::cout << "tunnel via AS"
                  << graph.as_number(result.chosen->responder) << " ("
                  << result.ases_contacted << " negotiation(s), "
                  << result.paths_received << " path(s) received): ";
      }
      for (auto hop : result.chosen->as_path)
        std::cout << graph.as_number(hop) << " ";
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
