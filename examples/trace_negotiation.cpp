// Trace one MIRO negotiation over a lossy control plane and reconstruct its
// causal timeline from the structured trace (see src/obs/ and DESIGN.md §8).
//
//   ./trace_negotiation [drop] [seed] [trace.jsonl] [metrics.json]
//
// Runs a single avoid-E negotiation from AS A to AS B on the dissertation's
// Figure 3.1 topology with per-message drop/duplication/jitter, holds the
// tunnel through a few keep-alive rounds, tears it down, and then:
//   - prints the reconstructed per-negotiation timeline (every traced event,
//     plus the compact arrow-form summary),
//   - streams the full event history to a JSONL file,
//   - writes a metrics-registry JSON snapshot next to it.
// Both files are what the CI workflow uploads as artifacts. Every run is
// deterministic for a given seed.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "netsim/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/as_graph.hpp"

namespace {

// The dissertation's six-AS running example (Figure 3.1): A wants to reach F
// while avoiding E; B holds the unannounced alternate B-C-F.
struct Figure31 {
  miro::topo::AsGraph graph;
  miro::topo::NodeId a, b, c, d, e, f;

  Figure31() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace miro;
  const double drop = argc > 1 ? std::atof(argv[1]) : 0.10;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;
  const std::string trace_path =
      argc > 3 ? argv[3] : "trace_negotiation.jsonl";
  const std::string metrics_path =
      argc > 4 ? argv[4] : "trace_negotiation_metrics.json";

  Figure31 fig;
  core::RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  sim::FaultPlane plane(seed);
  plane.set_default_profile({drop, /*duplicate=*/0.10, /*jitter_max=*/25});
  bus.set_fault_plane(&plane);

  // One recorder observes the bus and both agents; the JSONL sink captures
  // the full history even if the ring wraps.
  obs::TraceRecorder trace(1 << 14);
  obs::JsonlFileSink jsonl(trace_path);
  trace.add_sink(&jsonl);
  bus.set_trace(&trace);

  core::SoftStateConfig ss;
  ss.rng_seed = seed;
  core::MiroAgent requester(fig.a, store, bus, {}, ss);
  core::MiroAgent responder(fig.b, store, bus, {}, ss);
  requester.set_trace(&trace);
  responder.set_trace(&trace);

  std::printf("One negotiation, drop=%.0f%%, 10%% duplication, jitter <= 25"
              " ticks, seed %llu\n\n",
              drop * 100, static_cast<unsigned long long>(seed));

  std::uint64_t negotiation_id = 0;
  scheduler.at(0, [&] {
    negotiation_id = requester.request(
        fig.b, fig.a, fig.f, /*avoid=*/fig.e, std::nullopt,
        [](const core::NegotiationOutcome& outcome) {
          std::printf("outcome: %s\n\n",
                      outcome.established ? "established" : "failed");
        });
  });
  // Let the handshake finish and a few keep-alive rounds pass, then tear the
  // tunnel down over the same lossy network and let soft state drain.
  scheduler.run_until(2000);
  std::vector<net::TunnelId> held;
  for (const auto& [id, up] : requester.upstream_tunnels())
    held.push_back(id);
  for (net::TunnelId id : held) requester.teardown(id);
  scheduler.run_until(4500);  // quiescent period: soft state drains
  jsonl.flush();

  const obs::NegotiationTimeline timeline =
      obs::reconstruct_negotiation(trace, negotiation_id);
  std::printf("negotiation %llu reconstructed (%zu events, tunnel %llu):\n",
              static_cast<unsigned long long>(timeline.negotiation_id),
              timeline.events.size(),
              static_cast<unsigned long long>(timeline.tunnel_id));
  std::printf("%8s  %-24s %5s %5s %7s  %s\n", "t", "event", "actor", "peer",
              "value", "detail");
  for (const obs::TraceEvent& event : timeline.events) {
    std::printf("%8llu  %-24s %5u %5u %7lld  %s\n",
                static_cast<unsigned long long>(event.time),
                obs::to_string(event.type), event.actor, event.peer,
                static_cast<long long>(event.value), event.detail);
  }
  std::printf("\nsummary: %s\n\n", timeline.summary().c_str());

  obs::MetricsRegistry metrics;
  requester.export_metrics(metrics, "requester");
  responder.export_metrics(metrics, "responder");
  bus.export_metrics(metrics, "bus");
  metrics.write_text(std::cout);
  std::ofstream metrics_out(metrics_path);
  metrics.write_json(metrics_out);
  metrics_out << "\n";

  std::printf("\nwrote %llu trace events to %s and a metrics snapshot to"
              " %s\n",
              static_cast<unsigned long long>(trace.events_recorded()),
              trace_path.c_str(), metrics_path.c_str());
  return 0;
}
