// The observability substrate: trace recorder ring semantics, sinks, causal
// reconstruction, and the metrics registry with its two exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace miro::obs {
namespace {

TraceEvent event_at(Time t, EventType type, std::uint64_t negotiation = 0) {
  TraceEvent event;
  event.time = t;
  event.type = type;
  event.actor = 1;
  event.negotiation = negotiation;
  return event;
}

TEST(TraceRecorder, KeepsEventsInOrder) {
  TraceRecorder recorder(16);
  recorder.record(event_at(5, EventType::NegotiationRequested, 1));
  recorder.record(event_at(7, EventType::OffersReceived, 1));
  recorder.record(event_at(9, EventType::AcceptSent, 1));
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::NegotiationRequested);
  EXPECT_EQ(events[1].type, EventType::OffersReceived);
  EXPECT_EQ(events[2].type, EventType::AcceptSent);
  EXPECT_EQ(recorder.events_recorded(), 3u);
}

TEST(TraceRecorder, RingOverwritesOldestButCountsEverything) {
  TraceRecorder recorder(4);
  for (Time t = 0; t < 10; ++t)
    recorder.record(event_at(t, EventType::BusSend));
  EXPECT_EQ(recorder.events_recorded(), 10u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);  // capacity bound the ring
  EXPECT_EQ(events.front().time, 6u);
  EXPECT_EQ(events.back().time, 9u);
}

TEST(TraceRecorder, SinksSeeEveryEventDespiteRingWrap) {
  TraceRecorder recorder(2);
  MemorySink memory;
  CountingSink counting;
  recorder.add_sink(&memory);
  recorder.add_sink(&counting);
  for (Time t = 0; t < 8; ++t)
    recorder.record(event_at(t, EventType::BusDeliver));
  EXPECT_EQ(memory.events().size(), 8u);
  EXPECT_EQ(counting.count(), 8u);
  // The sink preserved arrival order even though the ring wrapped 3 times.
  for (Time t = 0; t < 8; ++t) EXPECT_EQ(memory.events()[t].time, t);
}

TEST(TraceRecorder, DroppedEventAccountingAtAndPastCapacity) {
  TraceRecorder recorder(4);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  for (Time t = 0; t < 4; ++t)
    recorder.record(event_at(t, EventType::BusSend));
  // Exactly at capacity: the ring is full but nothing fell out yet.
  EXPECT_EQ(recorder.events_recorded(), 4u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  EXPECT_EQ(recorder.snapshot().size(), 4u);

  recorder.record(event_at(4, EventType::BusSend));
  EXPECT_EQ(recorder.events_dropped(), 1u);  // the t=0 event fell out
  EXPECT_EQ(recorder.snapshot().front().time, 1u);

  for (Time t = 5; t < 11; ++t)
    recorder.record(event_at(t, EventType::BusSend));
  EXPECT_EQ(recorder.events_recorded(), 11u);
  EXPECT_EQ(recorder.events_dropped(), 7u);  // recorded minus live
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].time, 7u + i);  // oldest-to-newest across the wrap
}

TEST(TraceRecorder, FiltersByNegotiationTunnelAndType) {
  TraceRecorder recorder(16);
  recorder.record(event_at(1, EventType::NegotiationRequested, 10));
  recorder.record(event_at(2, EventType::NegotiationRequested, 11));
  recorder.record(event_at(3, EventType::Retransmit, 10));
  TraceEvent tunnel_event = event_at(4, EventType::TunnelExpired);
  tunnel_event.tunnel = 77;
  recorder.record(tunnel_event);
  EXPECT_EQ(recorder.for_negotiation(10).size(), 2u);
  EXPECT_EQ(recorder.for_negotiation(11).size(), 1u);
  EXPECT_EQ(recorder.for_tunnel(77).size(), 1u);
  EXPECT_EQ(recorder.count(EventType::NegotiationRequested), 2u);
  EXPECT_EQ(recorder.count(EventType::Retransmit, /*actor=*/1), 1u);
  EXPECT_EQ(recorder.count(EventType::Retransmit, /*actor=*/9), 0u);
}

TEST(TraceRecorder, JsonlSinkWritesOneParseableLinePerEvent) {
  const std::string path =
      ::testing::TempDir() + "obs_test_trace.jsonl";
  {
    TraceRecorder recorder(8);
    JsonlFileSink sink(path);
    recorder.add_sink(&sink);
    TraceEvent event = event_at(42, EventType::BusDrop, 3);
    event.peer = 9;
    event.detail = "faults";
    recorder.record(event);
    recorder.record(event_at(43, EventType::BusSend));
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"t\":42,\"type\":\"bus_drop\",\"actor\":1,\"peer\":9,"
            "\"negotiation\":3,\"detail\":\"faults\"}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"t\":43,\"type\":\"bus_send\",\"actor\":1}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(JsonlFileSink, UnwritablePathThrows) {
  EXPECT_THROW(JsonlFileSink("/nonexistent-dir/obs_test/trace.jsonl"), Error);
}

TEST(JsonlFileSink, SurfacesWriteFailuresStickily) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // canonical full-disk simulation. Skip where the device is absent.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  JsonlFileSink sink("/dev/full");
  TraceEvent event = event_at(1, EventType::BusSend);
  // Push enough lines to overflow the stream buffer and force real writes;
  // once the stream fails it must stay failed and count every further loss.
  for (int i = 0; i < 100000 && sink.ok(); ++i) sink.on_event(event);
  ASSERT_FALSE(sink.ok());
  const std::uint64_t failures = sink.write_failures();
  EXPECT_GT(failures, 0u);
  sink.on_event(event);
  EXPECT_EQ(sink.write_failures(), failures + 1);  // sticky failure
  EXPECT_FALSE(sink.flush());
}

TEST(JsonlFileSink, HealthyStreamReportsOk) {
  const std::string path = ::testing::TempDir() + "obs_test_ok.jsonl";
  JsonlFileSink sink(path);
  sink.on_event(event_at(1, EventType::BusSend));
  EXPECT_TRUE(sink.ok());
  EXPECT_TRUE(sink.flush());
  EXPECT_EQ(sink.write_failures(), 0u);
  std::remove(path.c_str());
}

TEST(Reconstruction, OrdersPhasesAndJoinsTunnelLifetime) {
  TraceRecorder recorder(32);
  recorder.record(event_at(10, EventType::NegotiationRequested, 5));
  recorder.record(event_at(50, EventType::Retransmit, 5));
  recorder.record(event_at(90, EventType::Retransmit, 5));
  recorder.record(event_at(120, EventType::OffersReceived, 5));
  recorder.record(event_at(130, EventType::AcceptSent, 5));
  TraceEvent established = event_at(160, EventType::NegotiationEstablished, 5);
  established.tunnel = 3;
  recorder.record(established);
  // Tunnel-scoped follow-up: carries only the tunnel id.
  TraceEvent expired = event_at(900, EventType::TunnelExpired);
  expired.tunnel = 3;
  recorder.record(expired);
  // Noise from a different negotiation must not leak in.
  recorder.record(event_at(15, EventType::NegotiationRequested, 6));

  const NegotiationTimeline timeline = reconstruct_negotiation(recorder, 5);
  EXPECT_EQ(timeline.negotiation_id, 5u);
  EXPECT_EQ(timeline.tunnel_id, 3u);
  EXPECT_TRUE(timeline.established);
  EXPECT_FALSE(timeline.failed);
  EXPECT_EQ(timeline.retransmits, 2u);
  ASSERT_EQ(timeline.events.size(), 7u);
  EXPECT_EQ(timeline.events.front().type, EventType::NegotiationRequested);
  EXPECT_EQ(timeline.events.back().type, EventType::TunnelExpired);
  EXPECT_EQ(timeline.summary(),
            "negotiation_requested → retransmit ×2 → offers_received → "
            "accept_sent → established → tunnel_expired");
}

TEST(Reconstruction, FailedNegotiationIsMarked) {
  TraceRecorder recorder(8);
  recorder.record(event_at(10, EventType::NegotiationRequested, 9));
  TraceEvent failed = event_at(2010, EventType::NegotiationFailed, 9);
  failed.detail = "timeout";
  recorder.record(failed);
  const NegotiationTimeline timeline = reconstruct_negotiation(recorder, 9);
  EXPECT_TRUE(timeline.failed);
  EXPECT_FALSE(timeline.established);
  EXPECT_EQ(timeline.summary(), "negotiation_requested → failed");
}

// ------------------------------------------------------------------ metrics

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.counter("bus.sent").inc(3);
  registry.counter("bus.sent").inc();
  EXPECT_EQ(registry.counter("bus.sent").value(), 4u);

  registry.gauge("tunnels.active").set(7);
  EXPECT_DOUBLE_EQ(registry.gauge("tunnels.active").value(), 7.0);

  int live = 0;
  registry.gauge_source("live.value", [&live] { return live * 2.0; });
  live = 21;
  EXPECT_DOUBLE_EQ(registry.gauge("live.value").value(), 42.0);

  Histogram& h = registry.histogram("rtt");
  h.observe(0.5);   // underflow bucket
  h.observe(1.0);   // bucket [1,2)
  h.observe(3.0);   // bucket [2,4)
  h.observe(3.5);   // bucket [2,4)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);

  EXPECT_TRUE(registry.contains("bus.sent"));
  EXPECT_FALSE(registry.contains("absent"));
  EXPECT_EQ(registry.size(), 4u);
}

TEST(Histogram, QuantileOfEmptyAndSingleSample) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(50), 0.0);

  Histogram one;
  one.observe(3.0);  // bucket [2,4): the single-sample midpoint is exact
  EXPECT_DOUBLE_EQ(one.p50(), 3.0);
  EXPECT_DOUBLE_EQ(one.p90(), 3.0);
  EXPECT_DOUBLE_EQ(one.p99(), 3.0);

  // A sample away from its bucket midpoint is still recovered exactly via
  // the [min, max] clamp.
  Histogram skewed;
  skewed.observe(2.1);
  EXPECT_DOUBLE_EQ(skewed.p50(), 2.1);
}

TEST(Histogram, QuantilesAreMonotonicAndBounded) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.quantile(0), 1.0);     // q <= 0 -> min
  EXPECT_DOUBLE_EQ(h.quantile(-5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(100), 100.0);  // q >= 100 -> max
  EXPECT_DOUBLE_EQ(h.quantile(250), 100.0);
  double previous = 0;
  for (double q = 1; q <= 100; q += 1) {
    const double value = h.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    EXPECT_GE(value, h.min());
    EXPECT_LE(value, h.max());
    previous = value;
  }
  // The log2 buckets bound the error to one bucket width: p50 of 1..100
  // must land inside [32, 64), the bucket holding rank 50.
  EXPECT_GE(h.p50(), 32.0);
  EXPECT_LT(h.p50(), 64.0);
  EXPECT_GE(h.p90(), 64.0);
}

TEST(Histogram, UnderflowRanksCollapseToMin) {
  Histogram h;
  h.observe(0.25);
  h.observe(0.5);
  h.observe(0.75);
  h.observe(8.0);
  // Ranks 1..3 live in the underflow bucket (samples < 1) -> min.
  EXPECT_DOUBLE_EQ(h.quantile(25), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(75), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(99), 8.0);
}

TEST(Histogram, ExportersIncludeQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.observe(3.0);
  std::ostringstream json_out;
  registry.write_json(json_out);
  EXPECT_NE(json_out.str().find("\"p50\":3"), std::string::npos);
  EXPECT_NE(json_out.str().find("\"p99\":3"), std::string::npos);
  std::ostringstream text_out;
  registry.write_text(text_out);
  EXPECT_NE(text_out.str().find("p50="), std::string::npos);
  EXPECT_NE(text_out.str().find("p90="), std::string::npos);
}

TEST(MetricsRegistry, NameCannotRebindToAnotherKind) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), Error);
}

TEST(MetricsRegistry, JsonSnapshotIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").set(2);
  registry.counter("a.count").set(1);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  // Sorted counters, then gauges, then histograms.
  EXPECT_EQ(json.find("\"a.count\":1"), json.find("\"counters\"") + 12);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, GoldenCombinedTextAndJsonExport) {
  // Golden snapshot of both exporters over one registry mixing all three
  // kinds with interleaving names. Pins down (a) the text exporter's single
  // merged table: every kind in ONE section, rows sorted by name so a
  // histogram lands between the gauges and counters it belongs with, with
  // the p50/p90/p99 detail inline; (b) the JSON schema with per-kind
  // sections and full quantile rows. Any formatting change must be a
  // deliberate golden update.
  MetricsRegistry registry;
  registry.counter("bgp.updates").set(12);
  registry.gauge("bgp.rib_bytes").set(4096);
  registry.histogram("bgp.convergence").observe(3.0);
  registry.histogram("bgp.convergence").observe(40.0);
  registry.counter("memory.rss_samples").set(2);
  registry.gauge("memory.tracked_bytes").set(6144);

  std::ostringstream text;
  registry.write_text(text);
  const std::string golden_text =
      "| metric               | kind      | value   | detail              "
      "                                       |\n"
      "|----------------------|-----------|---------|---------------------"
      "---------------------------------------|\n"
      "| bgp.convergence      | histogram | 2       | min=3.00 mean=21.50 "
      "p50=3.00 p90=40.00 p99=40.00 max=40.00 |\n"
      "| bgp.rib_bytes        | gauge     | 4096.00 |                     "
      "                                       |\n"
      "| bgp.updates          | counter   | 12      |                     "
      "                                       |\n"
      "| memory.rss_samples   | counter   | 2       |                     "
      "                                       |\n"
      "| memory.tracked_bytes | gauge     | 6144.00 |                     "
      "                                       |\n";
  EXPECT_EQ(text.str(), golden_text);

  std::ostringstream json;
  registry.write_json(json);
  const std::string golden_json =
      R"({"counters":{"bgp.updates":12,"memory.rss_samples":2},)"
      R"("gauges":{"bgp.rib_bytes":4096,"memory.tracked_bytes":6144},)"
      R"("histograms":{"bgp.convergence":{"count":2,"sum":43,"min":3,)"
      R"("max":40,"p50":3,"p90":40,"p99":40,"underflow":0,)"
      R"("buckets":[0,1,0,0,0,1]}}})";
  EXPECT_EQ(json.str(), golden_json);
}

TEST(MetricsRegistry, TextTableListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("negotiations").set(30);
  registry.gauge("tunnels").set(4);
  registry.histogram("latency").observe(16.0);
  std::ostringstream out;
  registry.write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("negotiations"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("30"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

}  // namespace
}  // namespace miro::obs
