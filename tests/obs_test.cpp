// The observability substrate: trace recorder ring semantics, sinks, causal
// reconstruction, and the metrics registry with its two exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace miro::obs {
namespace {

TraceEvent event_at(Time t, EventType type, std::uint64_t negotiation = 0) {
  TraceEvent event;
  event.time = t;
  event.type = type;
  event.actor = 1;
  event.negotiation = negotiation;
  return event;
}

TEST(TraceRecorder, KeepsEventsInOrder) {
  TraceRecorder recorder(16);
  recorder.record(event_at(5, EventType::NegotiationRequested, 1));
  recorder.record(event_at(7, EventType::OffersReceived, 1));
  recorder.record(event_at(9, EventType::AcceptSent, 1));
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, EventType::NegotiationRequested);
  EXPECT_EQ(events[1].type, EventType::OffersReceived);
  EXPECT_EQ(events[2].type, EventType::AcceptSent);
  EXPECT_EQ(recorder.events_recorded(), 3u);
}

TEST(TraceRecorder, RingOverwritesOldestButCountsEverything) {
  TraceRecorder recorder(4);
  for (Time t = 0; t < 10; ++t)
    recorder.record(event_at(t, EventType::BusSend));
  EXPECT_EQ(recorder.events_recorded(), 10u);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);  // capacity bound the ring
  EXPECT_EQ(events.front().time, 6u);
  EXPECT_EQ(events.back().time, 9u);
}

TEST(TraceRecorder, SinksSeeEveryEventDespiteRingWrap) {
  TraceRecorder recorder(2);
  MemorySink memory;
  CountingSink counting;
  recorder.add_sink(&memory);
  recorder.add_sink(&counting);
  for (Time t = 0; t < 8; ++t)
    recorder.record(event_at(t, EventType::BusDeliver));
  EXPECT_EQ(memory.events().size(), 8u);
  EXPECT_EQ(counting.count(), 8u);
}

TEST(TraceRecorder, FiltersByNegotiationTunnelAndType) {
  TraceRecorder recorder(16);
  recorder.record(event_at(1, EventType::NegotiationRequested, 10));
  recorder.record(event_at(2, EventType::NegotiationRequested, 11));
  recorder.record(event_at(3, EventType::Retransmit, 10));
  TraceEvent tunnel_event = event_at(4, EventType::TunnelExpired);
  tunnel_event.tunnel = 77;
  recorder.record(tunnel_event);
  EXPECT_EQ(recorder.for_negotiation(10).size(), 2u);
  EXPECT_EQ(recorder.for_negotiation(11).size(), 1u);
  EXPECT_EQ(recorder.for_tunnel(77).size(), 1u);
  EXPECT_EQ(recorder.count(EventType::NegotiationRequested), 2u);
  EXPECT_EQ(recorder.count(EventType::Retransmit, /*actor=*/1), 1u);
  EXPECT_EQ(recorder.count(EventType::Retransmit, /*actor=*/9), 0u);
}

TEST(TraceRecorder, JsonlSinkWritesOneParseableLinePerEvent) {
  const std::string path =
      ::testing::TempDir() + "obs_test_trace.jsonl";
  {
    TraceRecorder recorder(8);
    JsonlFileSink sink(path);
    recorder.add_sink(&sink);
    TraceEvent event = event_at(42, EventType::BusDrop, 3);
    event.peer = 9;
    event.detail = "faults";
    recorder.record(event);
    recorder.record(event_at(43, EventType::BusSend));
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"t\":42,\"type\":\"bus_drop\",\"actor\":1,\"peer\":9,"
            "\"negotiation\":3,\"detail\":\"faults\"}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"t\":43,\"type\":\"bus_send\",\"actor\":1}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(Reconstruction, OrdersPhasesAndJoinsTunnelLifetime) {
  TraceRecorder recorder(32);
  recorder.record(event_at(10, EventType::NegotiationRequested, 5));
  recorder.record(event_at(50, EventType::Retransmit, 5));
  recorder.record(event_at(90, EventType::Retransmit, 5));
  recorder.record(event_at(120, EventType::OffersReceived, 5));
  recorder.record(event_at(130, EventType::AcceptSent, 5));
  TraceEvent established = event_at(160, EventType::NegotiationEstablished, 5);
  established.tunnel = 3;
  recorder.record(established);
  // Tunnel-scoped follow-up: carries only the tunnel id.
  TraceEvent expired = event_at(900, EventType::TunnelExpired);
  expired.tunnel = 3;
  recorder.record(expired);
  // Noise from a different negotiation must not leak in.
  recorder.record(event_at(15, EventType::NegotiationRequested, 6));

  const NegotiationTimeline timeline = reconstruct_negotiation(recorder, 5);
  EXPECT_EQ(timeline.negotiation_id, 5u);
  EXPECT_EQ(timeline.tunnel_id, 3u);
  EXPECT_TRUE(timeline.established);
  EXPECT_FALSE(timeline.failed);
  EXPECT_EQ(timeline.retransmits, 2u);
  ASSERT_EQ(timeline.events.size(), 7u);
  EXPECT_EQ(timeline.events.front().type, EventType::NegotiationRequested);
  EXPECT_EQ(timeline.events.back().type, EventType::TunnelExpired);
  EXPECT_EQ(timeline.summary(),
            "negotiation_requested → retransmit ×2 → offers_received → "
            "accept_sent → established → tunnel_expired");
}

TEST(Reconstruction, FailedNegotiationIsMarked) {
  TraceRecorder recorder(8);
  recorder.record(event_at(10, EventType::NegotiationRequested, 9));
  TraceEvent failed = event_at(2010, EventType::NegotiationFailed, 9);
  failed.detail = "timeout";
  recorder.record(failed);
  const NegotiationTimeline timeline = reconstruct_negotiation(recorder, 9);
  EXPECT_TRUE(timeline.failed);
  EXPECT_FALSE(timeline.established);
  EXPECT_EQ(timeline.summary(), "negotiation_requested → failed");
}

// ------------------------------------------------------------------ metrics

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.counter("bus.sent").inc(3);
  registry.counter("bus.sent").inc();
  EXPECT_EQ(registry.counter("bus.sent").value(), 4u);

  registry.gauge("tunnels.active").set(7);
  EXPECT_DOUBLE_EQ(registry.gauge("tunnels.active").value(), 7.0);

  int live = 0;
  registry.gauge_source("live.value", [&live] { return live * 2.0; });
  live = 21;
  EXPECT_DOUBLE_EQ(registry.gauge("live.value").value(), 42.0);

  Histogram& h = registry.histogram("rtt");
  h.observe(0.5);   // underflow bucket
  h.observe(1.0);   // bucket [1,2)
  h.observe(3.0);   // bucket [2,4)
  h.observe(3.5);   // bucket [2,4)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);

  EXPECT_TRUE(registry.contains("bus.sent"));
  EXPECT_FALSE(registry.contains("absent"));
  EXPECT_EQ(registry.size(), 4u);
}

TEST(MetricsRegistry, NameCannotRebindToAnotherKind) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), Error);
}

TEST(MetricsRegistry, JsonSnapshotIsDeterministicAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").set(2);
  registry.counter("a.count").set(1);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(2.0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  // Sorted counters, then gauges, then histograms.
  EXPECT_EQ(json.find("\"a.count\":1"), json.find("\"counters\"") + 12);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, TextTableListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("negotiations").set(30);
  registry.gauge("tunnels").set(4);
  registry.histogram("latency").observe(16.0);
  std::ostringstream out;
  registry.write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("negotiations"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("30"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

}  // namespace
}  // namespace miro::obs
