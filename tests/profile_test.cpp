// Wall-clock span profiler, Chrome-trace export, and the perf-regression
// gate (PR 3). The load-bearing claims:
//   - nested spans account self vs total time exactly (fake clock);
//   - disabled profiling records nothing and leaves sim behaviour
//     bit-identical (the TraceRecorder zero-cost proof, repeated for the
//     wall-clock plane);
//   - the Chrome-trace exporter emits valid JSON that round-trips through
//     the in-repo parser with both track types present;
//   - BenchJsonWriter output is always valid JSON: strings escaped,
//     non-finite values emitted as null;
//   - the gate fails on an injected >25% slowdown and only then.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "netsim/fault_injection.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/regression.hpp"
#include "obs/trace.hpp"
#include "scenarios.hpp"

namespace miro::obs {
namespace {

// ---------------------------------------------------------------- JsonValue

TEST(JsonValue, ParsesAndDumpsRoundTrip) {
  const std::string text =
      R"({"suite":"miro-bench","schema":1,"ok":true,"none":null,)"
      R"("list":[1,2.5,-3e2],"nested":{"k":"v \"quoted\" \\ tab\t"}})";
  const JsonValue doc = JsonValue::parse(text);
  EXPECT_EQ(doc.at("suite").as_string(), "miro-bench");
  EXPECT_EQ(doc.at("schema").as_number(), 1.0);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  ASSERT_EQ(doc.at("list").size(), 3u);
  EXPECT_EQ(doc.at("list").at(2).as_number(), -300.0);
  EXPECT_EQ(doc.at("nested").at("k").as_string(), "v \"quoted\" \\ tab\t");
  // dump() re-parses to the same structure (and preserves key order).
  const JsonValue again = JsonValue::parse(doc.dump());
  EXPECT_EQ(again.dump(), doc.dump());
  EXPECT_EQ(again.members().front().first, "suite");
}

TEST(JsonValue, RejectsMalformedInputAndTrailingGarbage) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"), Error);
  EXPECT_THROW(JsonValue::parse("nul"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
}

TEST(JsonValue, DecodesUnicodeEscapes) {
  const JsonValue doc = JsonValue::parse(R"(["Aé€"])");
  EXPECT_EQ(doc.at(std::size_t{0}).as_string(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonHelpers, EscapeAndNumberTokens) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-0.25), "-0.25");
  // Bare nan/inf are not JSON (satellite fix): they must become null.
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

// ---------------------------------------------------------- ProfileRegistry

TEST(ProfileRegistry, NestedSpansAccountSelfAndTotalExactly) {
  ProfileRegistry registry;
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });

  // outer[0..100]: child a[10..30], child b[40..90] with grandchild
  // c[50..70]. Self times: outer 100-20-50=30, b 50-20=30, a 20, c 20.
  {
    ScopedSpan outer(&registry, "outer", "test");
    now = 10;
    {
      ScopedSpan a(&registry, "a", "test");
      now = 30;
    }
    now = 40;
    {
      ScopedSpan b(&registry, "b", "test");
      now = 50;
      {
        ScopedSpan c(&registry, "c", "test");
        now = 70;
      }
      now = 90;
    }
    now = 100;
  }

  EXPECT_EQ(registry.spans_recorded(), 4u);
  EXPECT_EQ(registry.open_spans(), 0u);
  const auto& by_name = registry.by_name();
  EXPECT_EQ(by_name.at("outer").total_ns, 100u);
  EXPECT_EQ(by_name.at("outer").self_ns, 30u);
  EXPECT_EQ(by_name.at("a").total_ns, 20u);
  EXPECT_EQ(by_name.at("a").self_ns, 20u);
  EXPECT_EQ(by_name.at("b").total_ns, 50u);
  EXPECT_EQ(by_name.at("b").self_ns, 30u);
  EXPECT_EQ(by_name.at("c").total_ns, 20u);
  EXPECT_EQ(by_name.at("c").self_ns, 20u);
  // Category aggregate: self times sum to the wall time exactly once.
  EXPECT_EQ(registry.by_category().at("test").self_ns, 100u);
  EXPECT_EQ(registry.by_category().at("test").count, 4u);
  // Raw log is in completion order (children first) with depths.
  const auto& spans = registry.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "c");
  EXPECT_EQ(spans[1].depth, 2u);
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0u);
}

TEST(ProfileRegistry, RepeatedSpansAggregateCountMeanAndMax) {
  ProfileRegistry registry;
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });
  for (std::uint64_t cost : {5u, 10u, 35u}) {
    ScopedSpan span(&registry, "phase", "test");
    now += cost;
  }
  const auto& stats = registry.by_name().at("phase");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.total_ns, 50u);
  EXPECT_EQ(stats.max_ns, 35u);
}

TEST(ProfileRegistry, SpanLogIsBoundedButAggregationIsNot) {
  ProfileRegistry registry(/*max_spans=*/2);
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&registry, "s", "");
    now += 1;
  }
  EXPECT_EQ(registry.spans().size(), 2u);
  EXPECT_EQ(registry.spans_recorded(), 5u);
  EXPECT_EQ(registry.spans_dropped(), 3u);
  EXPECT_EQ(registry.by_name().at("s").count, 5u);

  registry.reset();
  EXPECT_TRUE(registry.spans().empty());
  EXPECT_EQ(registry.spans_recorded(), 0u);
  EXPECT_TRUE(registry.by_name().empty());
}

TEST(ProfileRegistry, ExportsMetricsAndWritesTextTable) {
  ProfileRegistry registry;
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });
  {
    ScopedSpan span(&registry, "bgp/solve_tree", "bgp");
    now += 2'000'000;  // 2 ms
  }
  MetricsRegistry metrics;
  registry.export_metrics(metrics);
  EXPECT_EQ(metrics.counter("profile.bgp/solve_tree.count").value(), 1u);
  EXPECT_DOUBLE_EQ(metrics.gauge("profile.bgp/solve_tree.total_ms").value(),
                   2.0);
  std::ostringstream text;
  registry.write_text(text);
  EXPECT_NE(text.str().find("bgp/solve_tree"), std::string::npos);
  EXPECT_NE(text.str().find("[bgp]"), std::string::npos);
}

// ------------------------------------------------- zero cost when disabled

/// The instrumented negotiation sim from the chaos tests, parameterized on
/// whether the process-wide profiler is attached.
core::MiroAgent::Stats run_negotiations(ProfileRegistry* registry,
                                        obs::TraceRecorder* trace,
                                        std::size_t* established) {
  set_profile(registry);
  test::Figure31Topology fig;
  core::RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  sim::FaultPlane plane(7);
  plane.set_default_profile({0.10, 0.10, 25});
  bus.set_fault_plane(&plane);
  bus.set_trace(trace);
  core::SoftStateConfig ss;
  ss.rng_seed = 7;
  core::MiroAgent a(fig.a, store, bus, {}, ss);
  core::MiroAgent b(fig.b, store, bus, {}, ss);
  a.set_trace(trace);
  b.set_trace(trace);
  for (std::size_t i = 0; i < 20; ++i) {
    scheduler.at(i * 250, [&]() {
      a.request(fig.b, fig.a, fig.f, fig.e, std::nullopt,
                [established](const core::NegotiationOutcome& o) {
                  if (o.established && established != nullptr)
                    ++*established;
                });
    });
  }
  scheduler.run_until(20 * 250 + 5000);
  set_profile(nullptr);
  return a.stats();
}

TEST(ProfileZeroCost, DisabledProfilingRecordsNothing) {
  // Mirror of ChaosSweep.DisabledTracingRecordsAndAllocatesNothing for the
  // wall-clock plane: a registry exists but is never attached, and the
  // instrumented run must never reach it.
  ProfileRegistry idle;
  std::size_t established = 0;
  run_negotiations(/*registry=*/nullptr, /*trace=*/nullptr, &established);
  EXPECT_GT(established, 0u);
  EXPECT_EQ(idle.spans_recorded(), 0u);
  EXPECT_EQ(idle.spans_dropped(), 0u);
  EXPECT_TRUE(idle.by_name().empty());
  EXPECT_EQ(profile(), nullptr);
}

TEST(ProfileZeroCost, ProfiledRunIsBitIdenticalToUnprofiledRun) {
  // The profiler only reads the wall clock; the sim-time event stream and
  // every protocol counter must match event-for-event with it on or off.
  obs::TraceRecorder plain_trace(1 << 16);
  std::size_t plain_established = 0;
  const core::MiroAgent::Stats plain =
      run_negotiations(nullptr, &plain_trace, &plain_established);

  ProfileRegistry registry;
  obs::TraceRecorder profiled_trace(1 << 16);
  std::size_t profiled_established = 0;
  const core::MiroAgent::Stats profiled =
      run_negotiations(&registry, &profiled_trace, &profiled_established);

  EXPECT_GT(registry.spans_recorded(), 0u);  // the profiler did observe
  EXPECT_EQ(profiled_established, plain_established);
  EXPECT_EQ(profiled.retransmissions, plain.retransmissions);
  EXPECT_EQ(profiled.negotiations_abandoned, plain.negotiations_abandoned);
  EXPECT_EQ(profiled.duplicates_suppressed, plain.duplicates_suppressed);
  const std::vector<TraceEvent> a = plain_trace.snapshot();
  const std::vector<TraceEvent> b = profiled_trace.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(to_json(a[i]), to_json(b[i])) << "event " << i;
}

// ------------------------------------------------------------ Chrome trace

TEST(ChromeTrace, GoldenExportRoundTripsThroughParser) {
  ProfileRegistry registry;
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });
  {
    ScopedSpan outer(&registry, "netsim/run_until", "netsim");
    now = 1000;
    {
      ScopedSpan inner(&registry, "protocol/request", "core");
      now = 3000;
    }
    now = 5000;
  }
  std::vector<TraceEvent> sim_events;
  TraceEvent sent;
  sent.time = 3;
  sent.type = EventType::BusSend;
  sent.actor = 1;
  sent.peer = 2;
  sent.negotiation = 9;
  sim_events.push_back(sent);
  TraceEvent dropped;
  dropped.time = 5;
  dropped.type = EventType::BusDrop;
  dropped.actor = 2;
  dropped.detail = "faults";
  sim_events.push_back(dropped);

  std::ostringstream out;
  write_chrome_trace(out, &registry, sim_events, {});
  const JsonValue doc = JsonValue::parse(out.str());  // valid JSON, period
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonValue& events = doc.at("traceEvents");

  std::size_t begins = 0, ends = 0, instants = 0, meta = 0;
  std::optional<double> outer_begin_ts, outer_end_ts, inner_begin_ts;
  bool saw_sim_track = false, saw_wall_track = false;
  // Per wall track (tid = nesting depth): (ts, is_begin), to prove B/E
  // alternate once the importer sorts each track by timestamp.
  std::map<double, std::vector<std::pair<double, bool>>> tracks;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    const std::string& phase = event.at("ph").as_string();
    if (phase == "B" || phase == "E") {
      tracks[event.at("tid").as_number()].emplace_back(
          event.at("ts").as_number(), phase == "B");
    }
    if (phase == "B") {
      ++begins;
      if (event.at("name").as_string() == "netsim/run_until")
        outer_begin_ts = event.at("ts").as_number();
      if (event.at("name").as_string() == "protocol/request") {
        inner_begin_ts = event.at("ts").as_number();
        EXPECT_EQ(event.at("tid").as_number(), 1.0);  // depth-1 track
        EXPECT_EQ(event.at("cat").as_string(), "core");
      }
    } else if (phase == "E") {
      ++ends;
      if (event.at("name").as_string() == "netsim/run_until")
        outer_end_ts = event.at("ts").as_number();
    } else if (phase == "i") {
      ++instants;
      EXPECT_EQ(event.at("s").as_string(), "t");
      EXPECT_EQ(event.at("pid").as_number(), 2.0);
      if (event.at("name").as_string() == "bus_send") {
        // 3 sim ticks at the default 1000 us/tick.
        EXPECT_EQ(event.at("ts").as_number(), 3000.0);
        EXPECT_EQ(event.at("args").at("negotiation").as_number(), 9.0);
        EXPECT_EQ(event.at("args").at("peer").as_number(), 2.0);
      }
      if (event.at("name").as_string() == "bus_drop") {
        EXPECT_EQ(event.at("args").at("detail").as_string(), "faults");
      }
    } else if (phase == "M") {
      ++meta;
      const std::string& name = event.at("args").at("name").as_string();
      saw_wall_track = saw_wall_track || name.find("wall") != std::string::npos;
      saw_sim_track = saw_sim_track || name.find("sim") != std::string::npos;
    }
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);  // every B has its E
  // Sorted by ts, each depth track strictly alternates B,E — the property
  // that makes the per-depth layout render correctly.
  for (auto& [tid, marks] : tracks) {
    std::stable_sort(marks.begin(), marks.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (std::size_t i = 0; i < marks.size(); ++i)
      EXPECT_EQ(marks[i].second, i % 2 == 0)
          << "track " << tid << " event " << i;
  }
  EXPECT_EQ(instants, 2u);
  EXPECT_GE(meta, 2u);
  EXPECT_TRUE(saw_wall_track);
  EXPECT_TRUE(saw_sim_track);
  // Wall timestamps are microseconds: outer [0..5000ns] = [0..5us].
  ASSERT_TRUE(outer_begin_ts && outer_end_ts && inner_begin_ts);
  EXPECT_EQ(*outer_begin_ts, 0.0);
  EXPECT_EQ(*outer_end_ts, 5.0);
  EXPECT_EQ(*inner_begin_ts, 1.0);
}

TEST(ChromeTrace, EmptySourcesStillProduceAValidFile) {
  std::ostringstream out;
  write_chrome_trace(out, nullptr, {}, {});
  const JsonValue doc = JsonValue::parse(out.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
}

// --------------------------------------------------------- BenchJsonWriter

TEST(BenchJsonWriter, EscapesStringsAndNullsNonFiniteValues) {
  const std::string path = ::testing::TempDir() + "bench_writer_test.json";
  bench::BenchJsonWriter writer(path);
  writer.set_config("profiles", "gao\"2000\"\\agarwal");
  writer.set_config("scale", 0.5);
  writer.add("ok_row", 1.5, "ms");
  writer.add("nan_row", std::nan(""), "fraction");
  writer.add("inf_row", std::numeric_limits<double>::infinity(), "x\ny");
  ASSERT_TRUE(writer.write());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  // The whole point: the document parses even with hostile strings and
  // non-finite values (the seed wrote bare `nan`, which no parser accepts).
  const JsonValue doc = JsonValue::parse(buffer.str());
  EXPECT_EQ(doc.at("config").at("profiles").as_string(),
            "gao\"2000\"\\agarwal");
  ASSERT_EQ(doc.at("results").size(), 3u);
  EXPECT_EQ(doc.at("results").at(1).at("value").kind(),
            JsonValue::Kind::Null);
  EXPECT_EQ(doc.at("results").at(2).at("value").kind(),
            JsonValue::Kind::Null);
  EXPECT_EQ(doc.at("results").at(2).at("unit").as_string(), "x\ny");
}

TEST(BenchJsonWriter, AttachedProfilerWritesSpanSection) {
  ProfileRegistry registry;
  std::uint64_t now = 0;
  registry.set_clock([&now]() { return now; });
  {
    ScopedSpan span(&registry, "eval/plan", "eval");
    now += 1'500'000;
  }
  const std::string path = ::testing::TempDir() + "bench_profile_test.json";
  bench::BenchJsonWriter writer(path);
  writer.set_profile(&registry);
  ASSERT_TRUE(writer.write());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  const JsonValue doc = JsonValue::parse(buffer.str());
  EXPECT_DOUBLE_EQ(doc.at("profile").at("eval/plan").at("total_ms")
                       .as_number(),
                   1.5);
  EXPECT_EQ(doc.at("profile").at("eval/plan").at("count").as_number(), 1.0);
}

TEST(BenchJsonWriter, TakeJsonFlagExtractsPathAndRejectsTrailingFlag) {
  char prog[] = "bench", a[] = "--foo", b[] = "--json", c[] = "out.json",
       d[] = "--bar";
  {
    char* argv[] = {prog, a, b, c, d};
    int argc = 5;
    EXPECT_EQ(bench::take_json_flag(argc, argv), "out.json");
    ASSERT_EQ(argc, 3);  // compacted around the consumed pair
    EXPECT_STREQ(argv[1], "--foo");
    EXPECT_STREQ(argv[2], "--bar");
  }
  {
    // Satellite fix: a trailing --json with no value used to be silently
    // ignored; it must be a hard usage error.
    char* argv[] = {prog, a, b};
    int argc = 3;
    EXPECT_EXIT(bench::take_json_flag(argc, argv),
                ::testing::ExitedWithCode(2), "missing value for --json");
  }
}

// --------------------------------------------------------- regression gate

JsonValue suite_doc(double elapsed_ms, double rate_per_s, double fraction) {
  std::ostringstream text;
  text << R"({"suite":"miro-bench","schema":1,"config":{},"benches":{)"
       << R"("bench_x":{"config":{},"results":[)"
       << R"({"name":"gao2000.elapsed","value":)" << elapsed_ms
       << R"(,"unit":"ms"},)"
       << R"({"name":"gao2000.throughput","value":)" << rate_per_s
       << R"(,"unit":"msgs/s"},)"
       << R"({"name":"gao2000.fraction_zero","value":)" << fraction
       << R"(,"unit":"fraction"}]}}})";
  return JsonValue::parse(text.str());
}

TEST(RegressionGate, ClassifiesUnitsByDirection) {
  EXPECT_TRUE(is_perf_unit("ms"));
  EXPECT_TRUE(is_perf_unit("ns"));
  EXPECT_TRUE(is_perf_unit("s"));
  EXPECT_TRUE(is_perf_unit("msgs/s"));
  EXPECT_FALSE(is_perf_unit("fraction"));
  EXPECT_FALSE(is_perf_unit("paths"));
  EXPECT_FALSE(is_perf_unit("bool"));
  EXPECT_FALSE(is_perf_unit(""));
}

TEST(RegressionGate, PassesOnIdenticalAndNoiseLevelChange) {
  const JsonValue baseline = suite_doc(100, 50, 0.3);
  EXPECT_TRUE(compare_bench_json(baseline, baseline).ok());
  // +20% is inside the default 25% threshold.
  EXPECT_TRUE(compare_bench_json(baseline, suite_doc(120, 42, 0.3)).ok());
}

TEST(RegressionGate, FailsOnInjectedSlowdownBeyondThreshold) {
  // The CI acceptance demo: a >25% slowdown on a time row fails the gate.
  const JsonValue baseline = suite_doc(100, 50, 0.3);
  const RegressionReport report =
      compare_bench_json(baseline, suite_doc(130, 50, 0.3));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions(), 1u);
  const RegressionRow* bad = nullptr;
  for (const RegressionRow& row : report.rows) {
    if (row.regressed) bad = &row;
  }
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->name, "gao2000.elapsed");
  EXPECT_NEAR(bad->change, 0.30, 1e-9);
  std::ostringstream text;
  report.write_text(text);
  EXPECT_NE(text.str().find("perf gate FAIL"), std::string::npos);
}

TEST(RegressionGate, RateUnitsRegressDownwardOnly) {
  const JsonValue baseline = suite_doc(100, 50, 0.3);
  // Throughput halved: regression. Throughput doubled: improvement.
  EXPECT_FALSE(compare_bench_json(baseline, suite_doc(100, 25, 0.3)).ok());
  EXPECT_TRUE(compare_bench_json(baseline, suite_doc(100, 100, 0.3)).ok());
  // A *faster* time row is also fine, however large the change.
  EXPECT_TRUE(compare_bench_json(baseline, suite_doc(10, 50, 0.3)).ok());
}

TEST(RegressionGate, NonPerfRowsAreInformationalUnlessChecked) {
  const JsonValue baseline = suite_doc(100, 50, 0.3);
  const JsonValue drifted = suite_doc(100, 50, 0.9);
  EXPECT_TRUE(compare_bench_json(baseline, drifted).ok());
  RegressionOptions strict;
  strict.check_values = true;
  EXPECT_FALSE(compare_bench_json(baseline, drifted, strict).ok());
}

TEST(RegressionGate, MinMagnitudeIgnoresNoiseOnTinyRows) {
  // 0.4ms -> 0.9ms is +125% but below the 1ms magnitude floor.
  const JsonValue baseline = suite_doc(0.4, 50, 0.3);
  EXPECT_TRUE(compare_bench_json(baseline, suite_doc(0.9, 50, 0.3)).ok());
  RegressionOptions fussy;
  fussy.min_magnitude = 0.1;
  EXPECT_FALSE(
      compare_bench_json(baseline, suite_doc(0.9, 50, 0.3), fussy).ok());
}

TEST(RegressionGate, MissingRowsAndBenchesFailTheGate) {
  const JsonValue baseline = suite_doc(100, 50, 0.3);
  const JsonValue no_rows = JsonValue::parse(
      R"({"suite":"miro-bench","schema":1,"config":{},)"
      R"("benches":{"bench_x":{"config":{},"results":[)"
      R"({"name":"gao2000.elapsed","value":100,"unit":"ms"}]}}})");
  const RegressionReport rows_report = compare_bench_json(baseline, no_rows);
  EXPECT_FALSE(rows_report.ok());
  EXPECT_EQ(rows_report.missing_rows.size(), 2u);

  const JsonValue no_bench = JsonValue::parse(
      R"({"suite":"miro-bench","schema":1,"config":{},"benches":{}})");
  const RegressionReport bench_report =
      compare_bench_json(baseline, no_bench);
  EXPECT_FALSE(bench_report.ok());
  ASSERT_EQ(bench_report.missing_benches.size(), 1u);
  EXPECT_EQ(bench_report.missing_benches.front(), "bench_x");
}

TEST(RegressionGate, NullValuesFromNonFiniteResultsCompareAsEqual) {
  // A nan row serializes as null on both sides; the gate must treat the
  // pair as a non-gated match, not a crash or a regression.
  const JsonValue baseline = JsonValue::parse(
      R"({"suite":"miro-bench","schema":1,"config":{},)"
      R"("benches":{"b":{"config":{},"results":[)"
      R"({"name":"r","value":null,"unit":"ms"}]}}})");
  const RegressionReport report = compare_bench_json(baseline, baseline);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_FALSE(report.rows.front().gated);
}

}  // namespace
}  // namespace miro::obs
