#include <gtest/gtest.h>

#include "core/alternates.hpp"
#include "core/export_policy.hpp"
#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "core/tunnel.hpp"
#include "scenarios.hpp"

namespace miro::core {
namespace {

using bgp::Route;
using bgp::RouteClass;
using bgp::RoutingTree;
using bgp::StableRouteSolver;
using test::Figure31Topology;
using topo::Relationship;

// ----------------------------------------------------------- export policy

TEST(ExportPolicy, FlexibleAllowsEverything) {
  for (auto cls : {RouteClass::Customer, RouteClass::Peer,
                   RouteClass::Provider}) {
    for (auto rel : {Relationship::Customer, Relationship::Peer,
                     Relationship::Provider}) {
      EXPECT_TRUE(allows(ExportPolicy::Flexible, cls, RouteClass::Customer,
                         rel));
    }
  }
}

TEST(ExportPolicy, RespectExportFollowsConventionalRules) {
  // Peer-learned alternates may go to customers but not to peers/providers.
  EXPECT_TRUE(allows(ExportPolicy::RespectExport, RouteClass::Peer,
                     RouteClass::Customer, Relationship::Customer));
  EXPECT_FALSE(allows(ExportPolicy::RespectExport, RouteClass::Peer,
                      RouteClass::Customer, Relationship::Peer));
  EXPECT_FALSE(allows(ExportPolicy::RespectExport, RouteClass::Provider,
                      RouteClass::Customer, Relationship::Provider));
  // Customer-learned alternates go anywhere.
  EXPECT_TRUE(allows(ExportPolicy::RespectExport, RouteClass::Customer,
                     RouteClass::Peer, Relationship::Provider));
}

TEST(ExportPolicy, StrictRequiresSameLocalPrefBand) {
  // Best route is a customer route: only customer-class alternates flow.
  EXPECT_TRUE(allows(ExportPolicy::Strict, RouteClass::Customer,
                     RouteClass::Customer, Relationship::Customer));
  EXPECT_FALSE(allows(ExportPolicy::Strict, RouteClass::Peer,
                      RouteClass::Customer, Relationship::Customer));
  // Best route is a peer route: peer alternates pass toward customers.
  EXPECT_TRUE(allows(ExportPolicy::Strict, RouteClass::Peer,
                     RouteClass::Peer, Relationship::Customer));
  // ... but conventional export still binds toward peers.
  EXPECT_FALSE(allows(ExportPolicy::Strict, RouteClass::Peer,
                      RouteClass::Peer, Relationship::Peer));
}

TEST(ExportPolicy, StrictTreatsSelfAsCustomerBand) {
  EXPECT_TRUE(allows(ExportPolicy::Strict, RouteClass::Customer,
                     RouteClass::Self, Relationship::Customer));
}

/// Exhaustive sweep over (candidate class, best class, requester
/// relationship): the policies must be monotone (strict implies export
/// implies flexible) on every cell, and flexible/a must dominate everything.
class ExportPolicyLattice
    : public ::testing::TestWithParam<
          std::tuple<RouteClass, RouteClass, Relationship>> {};

TEST_P(ExportPolicyLattice, StrictImpliesExportImpliesFlexible) {
  const auto [candidate, best, rel] = GetParam();
  const bool strict = allows(ExportPolicy::Strict, candidate, best, rel);
  const bool exported =
      allows(ExportPolicy::RespectExport, candidate, best, rel);
  const bool flexible = allows(ExportPolicy::Flexible, candidate, best, rel);
  EXPECT_TRUE(!strict || exported) << "strict allowed what /e denies";
  EXPECT_TRUE(!exported || flexible) << "/e allowed what /a denies";
  EXPECT_TRUE(flexible);
  // Strict never exports a candidate outside the best route's band.
  if (strict) {
    auto band = [](RouteClass cls) {
      return cls == RouteClass::Self ? bgp::rank(RouteClass::Customer)
                                     : bgp::rank(cls);
    };
    EXPECT_EQ(band(candidate), band(best));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, ExportPolicyLattice,
    ::testing::Combine(
        ::testing::Values(RouteClass::Self, RouteClass::Customer,
                          RouteClass::Peer, RouteClass::Provider),
        ::testing::Values(RouteClass::Self, RouteClass::Customer,
                          RouteClass::Peer, RouteClass::Provider),
        ::testing::Values(Relationship::Customer, Relationship::Peer,
                          Relationship::Provider, Relationship::Sibling)));

TEST(ExportPolicy, FilterPreservesOrder) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  const auto candidates = solver.candidates_at(tree, fig.b);
  const auto flexible = filter_exports(ExportPolicy::Flexible, candidates,
                                       tree.route_class(fig.b),
                                       Relationship::Customer);
  EXPECT_EQ(flexible.size(), candidates.size());
  const auto strict = filter_exports(ExportPolicy::Strict, candidates,
                                     tree.route_class(fig.b),
                                     Relationship::Customer);
  // B's best is a customer route; the peer alternate BCF is held back.
  EXPECT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0].route_class, RouteClass::Customer);
}

// -------------------------------------------------------------- alternates

TEST(Alternates, Figure31AvoidE) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);

  // Under the strict policy B only offers customer-class alternates, none
  // of which avoid E: the negotiation fails.
  const auto strict = engine.avoid_as(tree, fig.a, fig.e,
                                      ExportPolicy::Strict);
  EXPECT_FALSE(strict.success);
  EXPECT_EQ(strict.ases_contacted, 1u);  // B was asked

  // Respecting export policy, B may offer its peer route BCF to customer A.
  const auto exported = engine.avoid_as(tree, fig.a, fig.e,
                                        ExportPolicy::RespectExport);
  ASSERT_TRUE(exported.success);
  EXPECT_FALSE(exported.bgp_success);
  EXPECT_EQ(exported.ases_contacted, 1u);
  ASSERT_TRUE(exported.chosen);
  EXPECT_EQ(exported.chosen->as_path,
            (std::vector<topo::NodeId>{fig.a, fig.b, fig.c, fig.f}));
  EXPECT_EQ(exported.chosen->responder, fig.b);
  EXPECT_FALSE(exported.chosen->traverses(fig.e));

  const auto flexible = engine.avoid_as(tree, fig.a, fig.e,
                                        ExportPolicy::Flexible);
  EXPECT_TRUE(flexible.success);
}

TEST(Alternates, AvoidRequiresAvoidOnDefaultPath) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  // C is not on A's default path A-B-E-F.
  EXPECT_THROW(engine.avoid_as(tree, fig.a, fig.c, ExportPolicy::Flexible),
               Error);
}

TEST(Alternates, DeploymentFilterBlocksResponder) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  std::vector<bool> nobody(fig.graph.node_count(), false);
  const auto result = engine.avoid_as(tree, fig.a, fig.e,
                                      ExportPolicy::Flexible, &nobody);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.ases_contacted, 0u);

  std::vector<bool> only_b(fig.graph.node_count(), false);
  only_b[fig.b] = true;
  const auto with_b = engine.avoid_as(tree, fig.a, fig.e,
                                      ExportPolicy::Flexible, &only_b);
  EXPECT_TRUE(with_b.success);
}

TEST(Alternates, OneHopCollectExposesNeighborCandidates) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  const auto paths = engine.collect(tree, fig.a, NegotiationScope::OneHop,
                                    ExportPolicy::Flexible);
  // A's neighbors are B and D. B holds alternate BCF; D holds only DEF
  // (which is A's alternate ADEF, distinct from the default ABEF).
  ASSERT_FALSE(paths.empty());
  bool found_abcf = false;
  for (const SplicedPath& path : paths) {
    EXPECT_NE(path.as_path, tree.path_of(fig.a));  // default excluded
    if (path.as_path ==
        std::vector<topo::NodeId>{fig.a, fig.b, fig.c, fig.f})
      found_abcf = true;
  }
  EXPECT_TRUE(found_abcf);
}

TEST(Alternates, PolicyMonotonicity) {
  // More permissive policies can only expose more paths.
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  for (auto scope : {NegotiationScope::OneHop, NegotiationScope::OnPath}) {
    const auto s = engine.count(tree, fig.a, scope, ExportPolicy::Strict);
    const auto e =
        engine.count(tree, fig.a, scope, ExportPolicy::RespectExport);
    const auto a = engine.count(tree, fig.a, scope, ExportPolicy::Flexible);
    EXPECT_LE(s, e);
    EXPECT_LE(e, a);
  }
}

TEST(Alternates, SplicedPathsAreLoopFreeAndReachDestination) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  for (auto scope : {NegotiationScope::OneHop, NegotiationScope::OnPath}) {
    for (const SplicedPath& path :
         engine.collect(tree, fig.a, scope, ExportPolicy::Flexible)) {
      EXPECT_EQ(path.as_path.front(), fig.a);
      EXPECT_EQ(path.as_path.back(), fig.f);
      auto sorted = path.as_path;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                sorted.end())
          << "looping spliced path";
      EXPECT_EQ(path.as_path[path.responder_index], path.responder);
    }
  }
}

// ------------------------------------------------------------------ tunnel

TEST(TunnelTable, CreateFindRemove) {
  TunnelTable table;
  Route route{{1, 2, 3}, RouteClass::Peer};
  const auto id = table.create(/*remote_as=*/9, route, /*cost=*/120,
                               /*now=*/100);
  EXPECT_EQ(table.active_count(), 1u);
  const TunnelRecord* record = table.find(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->remote_as, 9u);
  EXPECT_EQ(record->cost, 120);
  EXPECT_TRUE(table.remove(id));
  EXPECT_FALSE(table.remove(id));
  EXPECT_EQ(table.find(id), nullptr);
}

TEST(TunnelTable, IdsAreUniquePerTable) {
  TunnelTable table;
  Route route{{1, 2}, RouteClass::Customer};
  const auto id1 = table.create(1, route, 0, 0);
  const auto id2 = table.create(2, route, 0, 0);
  EXPECT_NE(id1, id2);
}

TEST(TunnelTable, SoftStateExpiry) {
  TunnelTable table;
  Route route{{1, 2}, RouteClass::Customer};
  const auto fresh = table.create(1, route, 0, /*now=*/1000);
  const auto stale = table.create(2, route, 0, /*now=*/0);
  EXPECT_TRUE(table.heartbeat(fresh, 1200));
  const auto expired = table.expire(/*now=*/1300, /*timeout=*/500);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], stale);
  EXPECT_EQ(table.active_count(), 1u);
  EXPECT_FALSE(table.heartbeat(stale, 1300));
}

// ---------------------------------------------------------------- protocol

struct ProtocolHarness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  sim::Scheduler scheduler;
  Bus bus{scheduler};
};

TEST(Protocol, NegotiationEstablishesTunnel) {
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::RespectExport;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);

  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, /*arrival_neighbor=*/h.fig.a, /*destination=*/h.fig.f,
            /*avoid=*/h.fig.e, /*max_cost=*/std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1000);

  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->established);
  EXPECT_EQ(outcome->responder, h.fig.b);
  EXPECT_EQ(outcome->offers_received, 1u);  // only BCF avoids E
  EXPECT_EQ(b.tunnels().active_count(), 1u);
  EXPECT_EQ(a.upstream_tunnels().size(), 1u);
  EXPECT_EQ(b.stats().requests_received, 1u);
  EXPECT_EQ(a.stats().requests_sent, 1u);

  const TunnelRecord* record = b.tunnels().find(outcome->tunnel_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->remote_as, h.fig.a);
  EXPECT_EQ(record->bound_route.path,
            (std::vector<topo::NodeId>{h.fig.b, h.fig.c, h.fig.f}));
}

TEST(Protocol, StrictResponderRejectsAvoidERequest) {
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::Strict;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);

  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(outcome->offers_received, 0u);
}

TEST(Protocol, MaxCostFiltersOffers) {
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::RespectExport;
  responder_config.price = [](const Route&) { return 500; };
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);

  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, /*max_cost=*/250,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);  // everything too expensive
}

TEST(Protocol, AdmissionControlByTunnelCount) {
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::Flexible;
  responder_config.max_tunnels = 0;  // room for nothing
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);

  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, std::nullopt, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(b.stats().requests_rejected, 1u);
}

TEST(Protocol, TrustPredicateRejectsStranger) {
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.accept_from = [&h](topo::NodeId who) {
    return who == h.fig.d;  // only D is trusted
  };
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);
  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, std::nullopt, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);
}

TEST(Protocol, ActiveTeardownRemovesDownstreamState) {
  ProtocolHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(500);
  ASSERT_TRUE(outcome && outcome->established);
  a.teardown(outcome->tunnel_id);
  h.scheduler.run_until(600);
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_torn_down, 1u);
}

TEST(Protocol, KeepAlivesSustainTunnelAcrossTime) {
  ProtocolHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(5000);  // many keepalive/expiry cycles
  ASSERT_TRUE(outcome && outcome->established);
  EXPECT_EQ(b.tunnels().active_count(), 1u);
  EXPECT_EQ(b.stats().tunnels_expired, 0u);
}

TEST(Protocol, SoftStateExpiresWhenLinkPartitioned) {
  // "When A can no longer reach B, the 'active tunnel tear-down' message
  // itself may not be able to reach AS B" — soft state must clean up.
  ProtocolHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(500);
  ASSERT_TRUE(outcome && outcome->established);
  h.bus.set_link_down(h.fig.a, h.fig.b, true);  // keepalives stop arriving
  h.scheduler.run_until(5000);
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_expired, 1u);
}

TEST(Protocol, ResponderFiltersAvoidConstraintServerSide) {
  // The responder prunes candidates violating the requester's constraint
  // before they cross the wire (Section 6.2.2).
  ProtocolHarness h;
  ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::Flexible;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus, responder_config);
  std::optional<NegotiationOutcome> constrained;
  a.request(h.fig.b, h.fig.a, h.fig.f, /*avoid=*/h.fig.e, std::nullopt,
            [&constrained](const NegotiationOutcome& o) { constrained = o; });
  h.scheduler.run_until(500);
  std::optional<NegotiationOutcome> unconstrained;
  a.request(h.fig.b, h.fig.a, h.fig.f, std::nullopt, std::nullopt,
            [&unconstrained](const NegotiationOutcome& o) {
              unconstrained = o;
            });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(constrained && unconstrained);
  EXPECT_LT(constrained->offers_received, unconstrained->offers_received);
}

}  // namespace
}  // namespace miro::core
