#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/symbolic_routes.hpp"
#include "analysis/verify.hpp"
#include "bgp/route_solver.hpp"
#include "common/error.hpp"
#include "core/alternates.hpp"
#include "core/export_policy.hpp"
#include "policy/policy_config.hpp"
#include "topology/as_graph.hpp"
#include "topology/generator.hpp"

namespace miro::bgp {

// Corrupts a solved tree's entries into states no correct solver run can
// produce, so the export-safety checker has something to convict.
struct RoutingTreeTestAccess {
  static void set(RoutingTree& tree, topo::NodeId node, topo::NodeId next_hop,
                  std::uint32_t length, RouteClass cls) {
    RoutingTree::Entry& entry = tree.entries_[node];
    entry.reachable = true;
    entry.next_hop = next_hop;
    entry.length = length;
    entry.cls = cls;
  }
};

}  // namespace miro::bgp

namespace miro::analysis {
namespace {

using bgp::RouteClass;
using bgp::RoutingTree;
using bgp::RoutingTreeTestAccess;
using bgp::StableRouteSolver;
using topo::AsGraph;

std::size_t count_check(const Report& report, std::string_view id) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [&](const Diagnostic& d) { return d.check == id; }));
}

// Two tier-1 peers over a small provider hierarchy: a multi-homed middle
// tier, a multi-homed stub, and a sibling — every relationship kind, small
// enough to check routes by hand.
struct SmallHierarchy {
  AsGraph graph;
  topo::NodeId t1, t2, mid1, mid2, stub, sib;
  SmallHierarchy() {
    t1 = graph.add_as(1);
    t2 = graph.add_as(2);
    mid1 = graph.add_as(3);
    mid2 = graph.add_as(4);
    stub = graph.add_as(5);
    sib = graph.add_as(6);
    graph.add_peer(t1, t2);
    graph.add_customer_provider(t1, mid1);
    graph.add_customer_provider(t1, mid2);
    graph.add_customer_provider(t2, mid2);
    graph.add_customer_provider(mid1, stub);
    graph.add_customer_provider(mid2, stub);
    graph.add_sibling(mid2, sib);
  }
};

// Peer chain 1 -- 2 -- 3 -- 4 with the destination AS 10 a customer of
// AS 1: the customer route crosses exactly one peer link, so AS 3 and AS 4
// are unreachable under the conventional export rule. The minimal gadget
// where leaking peer routes onward changes the routing outcome.
struct PeerChain {
  AsGraph graph;
  topo::NodeId p, q, r, s, c;
  PeerChain() {
    p = graph.add_as(1);
    q = graph.add_as(2);
    r = graph.add_as(3);
    s = graph.add_as(4);
    c = graph.add_as(10);
    graph.add_peer(p, q);
    graph.add_peer(q, r);
    graph.add_peer(r, s);
    graph.add_customer_provider(p, c);
  }
};

void expect_maps_match(const AsGraph& graph, const SymbolicRouteMap& map,
                       const RoutingTree& tree) {
  ASSERT_EQ(map.destination(), tree.destination());
  for (topo::NodeId v = 0; v < graph.node_count(); ++v) {
    ASSERT_EQ(map.reachable(v), tree.reachable(v))
        << "reachability of AS " << graph.as_number(v) << " toward AS "
        << graph.as_number(tree.destination());
    if (!map.reachable(v)) continue;
    EXPECT_EQ(map.route_class(v), tree.route_class(v));
    EXPECT_EQ(map.path_length(v), tree.path_length(v));
    EXPECT_EQ(map.next_hop(v), tree.next_hop(v));
    EXPECT_EQ(map.path_of(v), tree.path_of(v));
  }
  EXPECT_EQ(map.reachable_count(), tree.reachable_count());
}

// ------------------------------------------------------------ exact layer

TEST(SymbolicFixpoint, MatchesSolverOnEveryDestination) {
  const SmallHierarchy fig;
  const SymbolicRouteEngine engine(fig.graph);
  const StableRouteSolver solver(fig.graph);
  for (topo::NodeId dest = 0; dest < fig.graph.node_count(); ++dest)
    expect_maps_match(fig.graph, engine.solve(dest), solver.solve(dest));
}

TEST(SymbolicFixpoint, PeerRoutesStopAtTheFirstPeerLink) {
  const PeerChain fig;
  const SymbolicRouteEngine engine(fig.graph);
  const SymbolicRouteMap map = engine.solve(fig.c);
  EXPECT_TRUE(map.reachable(fig.p));
  EXPECT_EQ(map.route_class(fig.p), RouteClass::Customer);
  ASSERT_TRUE(map.reachable(fig.q));
  EXPECT_EQ(map.route_class(fig.q), RouteClass::Peer);
  EXPECT_EQ(map.path_length(fig.q), 2u);
  EXPECT_FALSE(map.reachable(fig.r));
  EXPECT_FALSE(map.reachable(fig.s));
  expect_maps_match(fig.graph, map, StableRouteSolver(fig.graph).solve(fig.c));
}

TEST(SymbolicFixpoint, SolveAvoidingMatchesSolver) {
  const SmallHierarchy fig;
  const SymbolicRouteEngine engine(fig.graph);
  const StableRouteSolver solver(fig.graph);
  for (topo::NodeId dest = 0; dest < fig.graph.node_count(); ++dest) {
    for (topo::NodeId avoid = 0; avoid < fig.graph.node_count(); ++avoid) {
      if (avoid == dest) continue;
      expect_maps_match(fig.graph, engine.solve_avoiding(dest, avoid),
                        solver.solve_avoiding(dest, avoid));
    }
  }
}

TEST(SymbolicFixpoint, FeasibilityAgreesWithReachability) {
  for (const bool chain : {false, true}) {
    const SmallHierarchy hierarchy;
    const PeerChain peers;
    const AsGraph& graph = chain ? peers.graph : hierarchy.graph;
    const SymbolicRouteEngine engine(graph);
    for (topo::NodeId dest = 0; dest < graph.node_count(); ++dest) {
      const SymbolicRouteMap map = engine.solve(dest);
      for (topo::NodeId v = 0; v < graph.node_count(); ++v) {
        EXPECT_EQ(map.feasible(v), map.reachable(v));
        if (map.reachable(v)) {
          // The stable route itself is a feasible chain of its class, and no
          // shorter chain of that class can exist below the may-analysis.
          EXPECT_LE(map.feasible_length(v, map.route_class(v)),
                    map.path_length(v));
        }
      }
    }
  }
}

TEST(SymbolicFixpoint, SweepBoundThrowsBeforeLooping) {
  const SmallHierarchy fig;
  SymbolicOptions options;
  options.max_sweeps = 1;  // any non-trivial graph needs a second sweep
  const SymbolicRouteEngine engine(fig.graph, options);
  EXPECT_THROW(engine.solve(fig.stub), Error);
  const SymbolicRouteMap map = SymbolicRouteEngine(fig.graph).solve(fig.stub);
  EXPECT_GE(map.sweeps(), 2u);
  EXPECT_GT(map.memory_bytes(), 0u);
}

TEST(SymbolicFixpoint, ProviderCyclePreconditionFails) {
  AsGraph graph;
  const topo::NodeId a = graph.add_as(1);
  const topo::NodeId b = graph.add_as(2);
  const topo::NodeId c = graph.add_as(3);
  graph.add_customer_provider(a, b);
  graph.add_customer_provider(b, c);
  graph.add_customer_provider(c, a);
  const SymbolicRouteEngine engine(graph);
  const Report report = engine.preconditions("cycle");
  EXPECT_EQ(count_check(report, "verify.precondition.provider-cycle"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

// ----------------------------------------------------------- avoid queries

TEST(SymbolicAvoid, PredictionMatchesSimulatorOnHandGraph) {
  const SmallHierarchy fig;
  const SymbolicRouteEngine engine(fig.graph);
  const StableRouteSolver solver(fig.graph);
  const core::AlternatesEngine alternates(solver);
  std::size_t tuples = 0;
  for (topo::NodeId dest = 0; dest < fig.graph.node_count(); ++dest) {
    const RoutingTree tree = solver.solve(dest);
    const SymbolicRouteMap map = engine.solve(dest);
    for (topo::NodeId source = 0; source < fig.graph.node_count(); ++source) {
      if (source == dest || !tree.reachable(source)) continue;
      const std::vector<topo::NodeId> path = tree.path_of(source);
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        const topo::NodeId avoid = path[i];
        for (const core::ExportPolicy policy : core::kAllPolicies) {
          const core::AlternatesEngine::AvoidResult simulated =
              alternates.avoid_as(tree, source, avoid, policy);
          const SymbolicRouteEngine::AvoidPrediction predicted =
              engine.predict_avoid(map, source, avoid, policy);
          EXPECT_EQ(predicted.success, simulated.success);
          EXPECT_EQ(predicted.bgp_success, simulated.bgp_success);
          EXPECT_EQ(predicted.ases_contacted, simulated.ases_contacted);
          EXPECT_EQ(predicted.paths_received, simulated.paths_received);
          if (predicted.success) {
            // The witness must be a real path of the graph between the
            // queried endpoints that misses the avoided AS.
            ASSERT_GE(predicted.witness.size(), 2u);
            EXPECT_EQ(predicted.witness.front(), source);
            EXPECT_EQ(predicted.witness.back(), dest);
            EXPECT_EQ(std::find(predicted.witness.begin(),
                                predicted.witness.end(), avoid),
                      predicted.witness.end());
            for (std::size_t j = 0; j + 1 < predicted.witness.size(); ++j)
              EXPECT_TRUE(fig.graph.has_edge(predicted.witness[j],
                                             predicted.witness[j + 1]));
          }
          ++tuples;
        }
      }
    }
  }
  EXPECT_GT(tuples, 0u);
}

// ------------------------------------------------------------ route leaks

TEST(ExportSafety, CleanStatesPass) {
  const SmallHierarchy fig;
  const StableRouteSolver solver(fig.graph);
  const SymbolicRouteEngine engine(fig.graph);
  for (topo::NodeId dest = 0; dest < fig.graph.node_count(); ++dest) {
    EXPECT_EQ(
        check_export_safety(fig.graph, solver.solve(dest), "t").error_count(),
        0u);
    EXPECT_EQ(
        check_export_safety(fig.graph, engine.solve(dest), "t").error_count(),
        0u);
  }
}

TEST(ExportSafety, ConvictsALeakedPeerRoute) {
  const PeerChain fig;
  RoutingTree tree = StableRouteSolver(fig.graph).solve(fig.c);
  // AS 2 "exports" its peer route onward to AS 3 — the classic route leak.
  RoutingTreeTestAccess::set(tree, fig.r, fig.q, 3, RouteClass::Peer);
  const Report report = check_export_safety(fig.graph, tree, "leak");
  EXPECT_EQ(count_check(report, "verify.leak.export-violation"), 1u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(ExportSafety, ConvictsAMisclassifiedRoute) {
  const PeerChain fig;
  RoutingTree tree = StableRouteSolver(fig.graph).solve(fig.c);
  // AS 2 learned the route over a peer link but claims Customer class.
  RoutingTreeTestAccess::set(tree, fig.q, fig.p, 2, RouteClass::Customer);
  const Report report = check_export_safety(fig.graph, tree, "leak");
  EXPECT_EQ(count_check(report, "verify.leak.class"), 1u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(ExportSafety, ConvictsAWrongPathLength) {
  const PeerChain fig;
  RoutingTree tree = StableRouteSolver(fig.graph).solve(fig.c);
  RoutingTreeTestAccess::set(tree, fig.q, fig.p, 5, RouteClass::Peer);
  const Report report = check_export_safety(fig.graph, tree, "leak");
  EXPECT_EQ(count_check(report, "verify.leak.length"), 1u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(ExportSafety, ConvictsAnUnreachableNextHop) {
  const PeerChain fig;
  RoutingTree tree = StableRouteSolver(fig.graph).solve(fig.c);
  // AS 3 claims a route via AS 4, which holds no route at all.
  RoutingTreeTestAccess::set(tree, fig.r, fig.s, 3, RouteClass::Peer);
  const Report report = check_export_safety(fig.graph, tree, "leak");
  EXPECT_EQ(count_check(report, "verify.leak.next-hop"), 1u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(ExportSafety, ConvictsACorruptedOrigin) {
  const PeerChain fig;
  RoutingTree tree = StableRouteSolver(fig.graph).solve(fig.c);
  RoutingTreeTestAccess::set(tree, fig.c, fig.p, 0, RouteClass::Self);
  const Report report = check_export_safety(fig.graph, tree, "leak");
  EXPECT_EQ(count_check(report, "verify.leak.origin"), 1u);
}

// ----------------------------------------------------------- differential

TEST(Differential, AgreesWithSimulatorOnSeededPairs) {
  // Ten seeded (profile, seed) pairs: the acceptance bar for the oracle.
  for (const char* profile : {"gao2003", "gao2005"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const AsGraph graph = topo::generate(topo::profile(profile, 0.08));
      DifferentialOptions options;
      options.seed = seed;
      options.destination_samples = 4;
      options.sources_per_destination = 5;
      const DifferentialOutcome outcome =
          differential_check(graph, options, profile);
      EXPECT_TRUE(outcome.ok())
          << profile << " seed " << seed << ":\n" << outcome.report.text();
      EXPECT_GT(outcome.destinations, 0u);
      EXPECT_GT(outcome.entries, 0u);
      EXPECT_GT(outcome.tuples, 0u);
      EXPECT_EQ(outcome.entry_mismatches, 0u);
      EXPECT_EQ(outcome.avoid_mismatches, 0u);
      EXPECT_DOUBLE_EQ(outcome.entry_agree(), 1.0);
      EXPECT_DOUBLE_EQ(outcome.avoid_agree(), 1.0);
      EXPECT_EQ(count_check(outcome.report, "verify.diff.summary"), 1u);
    }
  }
}

TEST(Differential, InjectedExportBugFailsLoudly) {
  // The oracle must convict a deliberately mis-implemented export rule, not
  // paper over it: on the peer chain the leak makes AS 3 reachable in the
  // symbolic plane only.
  const PeerChain fig;
  DifferentialOptions options;
  options.seed = 7;
  options.engine.inject_export_bug = true;
  const DifferentialOutcome outcome =
      differential_check(fig.graph, options, "bug");
  EXPECT_FALSE(outcome.ok());
  EXPECT_GT(outcome.entry_mismatches, 0u);
  EXPECT_LT(outcome.entry_agree(), 1.0);
  EXPECT_GT(count_check(outcome.report, "verify.diff.entry"), 0u);
}

TEST(Differential, InjectedBugAlsoTripsTheLeakChecker) {
  const PeerChain fig;
  SymbolicOptions options;
  options.inject_export_bug = true;
  const SymbolicRouteEngine buggy(fig.graph, options);
  const SymbolicRouteMap map = buggy.solve(fig.c);
  EXPECT_TRUE(map.reachable(fig.r));  // the leak propagated
  const Report report = check_export_safety(fig.graph, map, "bug");
  EXPECT_GT(count_check(report, "verify.leak.export-violation"), 0u);
}

TEST(Differential, InjectedBugCaughtOnGeneratedProfile) {
  const AsGraph graph = topo::generate(topo::profile("gao2005", 0.08));
  DifferentialOptions options;
  options.seed = 3;
  options.destination_samples = 5;
  options.engine.inject_export_bug = true;
  EXPECT_FALSE(differential_check(graph, options, "bug").ok());
}

// ---------------------------------------------------------------- queries

TEST(VerifyQuery, ParsesReachAndAvoidSpecs) {
  const VerifyQuery reach = VerifyQuery::parse("reach:5:10.0.0.2");
  EXPECT_EQ(reach.kind, VerifyQuery::Kind::Reach);
  EXPECT_EQ(reach.source, "5");
  EXPECT_EQ(reach.destination, "10.0.0.2");
  const VerifyQuery avoid = VerifyQuery::parse("avoid:65001:65020:7007");
  EXPECT_EQ(avoid.kind, VerifyQuery::Kind::Avoid);
  EXPECT_EQ(avoid.avoid, "7007");
  for (const char* bad : {"", "reach", "reach:1", "reach:1:2:3", "avoid:1:2",
                          "avoid:1:2:3:4", "jump:1:2", "reach::2",
                          "avoid:1:2:"}) {
    EXPECT_THROW(VerifyQuery::parse(bad), Error) << bad;
  }
}

TEST(VerifyQuery, SyntheticPrefixesAndEndpointResolution) {
  EXPECT_EQ(synthetic_prefix(5).to_string(), "10.0.5.0/24");
  EXPECT_EQ(synthetic_prefix(65001).to_string(), "10.253.233.0/24");
  const SmallHierarchy fig;
  EXPECT_EQ(resolve_endpoint(fig.graph, "5"), fig.stub);
  EXPECT_EQ(resolve_endpoint(fig.graph, "10.0.5.77"), fig.stub);
  EXPECT_EQ(resolve_endpoint(fig.graph, "10.0.1.1"), fig.t1);
  EXPECT_THROW(resolve_endpoint(fig.graph, "99"), Error);
  EXPECT_THROW(resolve_endpoint(fig.graph, "10.9.9.9"), Error);
  EXPECT_THROW(resolve_endpoint(fig.graph, "not-an-as"), Error);
  EXPECT_THROW(resolve_endpoint(fig.graph, "256.1.1.1"), Error);
}

TEST(VerifyNetwork, ReachAndAvoidQueriesProduceWitnesses) {
  const SmallHierarchy fig;
  VerifyOptions options;
  options.queries.push_back(VerifyQuery::parse("reach:5:2"));
  options.queries.push_back(VerifyQuery::parse("avoid:5:2:4"));
  const Report report = verify_network(fig.graph, options, "hand");
  EXPECT_EQ(report.error_count(), 0u) << report.text();
  EXPECT_EQ(count_check(report, "verify.query.reach"), 1u);
  EXPECT_EQ(count_check(report, "verify.query.avoid"), 1u);
  EXPECT_EQ(count_check(report, "verify.sweep.summary"), 1u);
}

TEST(VerifyNetwork, UnreachablePairIsAnError) {
  const PeerChain fig;
  VerifyOptions options;
  options.queries.push_back(VerifyQuery::parse("reach:3:10"));
  const Report report = verify_network(fig.graph, options, "chain");
  EXPECT_EQ(count_check(report, "verify.query.unreachable"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(VerifyNetwork, AvoidingACutVertexIsInfeasible) {
  // 1 <- 2 <- 3 provider chain: AS 2 is the only way from AS 3 to AS 1.
  AsGraph graph;
  const topo::NodeId top = graph.add_as(1);
  const topo::NodeId mid = graph.add_as(2);
  const topo::NodeId leaf = graph.add_as(3);
  graph.add_customer_provider(top, mid);
  graph.add_customer_provider(mid, leaf);
  (void)top;
  (void)mid;
  (void)leaf;
  VerifyOptions options;
  options.queries.push_back(VerifyQuery::parse("avoid:3:1:2"));
  const Report report = verify_network(graph, options, "cut");
  EXPECT_EQ(count_check(report, "verify.query.avoid-infeasible"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(VerifyNetwork, AvoidEndpointCollisionThrows) {
  const SmallHierarchy fig;
  VerifyOptions options;
  options.queries.push_back(VerifyQuery::parse("avoid:5:2:5"));
  EXPECT_THROW(verify_network(fig.graph, options, "hand"), Error);
}

TEST(VerifyNetwork, ProviderCycleStopsVerification) {
  AsGraph graph;
  const topo::NodeId a = graph.add_as(1);
  const topo::NodeId b = graph.add_as(2);
  const topo::NodeId c = graph.add_as(3);
  graph.add_customer_provider(a, b);
  graph.add_customer_provider(b, c);
  graph.add_customer_provider(c, a);
  const Report report = verify_network(graph, {}, "cycle");
  EXPECT_GT(count_check(report, "verify.precondition.provider-cycle"), 0u);
  EXPECT_EQ(count_check(report, "verify.sweep.summary"), 0u);
}

TEST(VerifyNetwork, DifferentialRoundMergesIntoTheReport) {
  const SmallHierarchy fig;
  VerifyOptions options;
  options.differential = true;
  options.diff.destination_samples = 3;
  const Report report = verify_network(fig.graph, options, "hand");
  EXPECT_EQ(report.error_count(), 0u) << report.text();
  EXPECT_EQ(count_check(report, "verify.diff.summary"), 1u);
}

// ----------------------------------------------------------- admissibility

constexpr std::string_view kRequester = R"(router bgp 65001

ip as-path access-list 10 permit _7007_

route-map transit-in permit 10
 match as-path 10
 try negotiation avoid-7007

negotiation avoid-7007
 match all path ^65010_
 start negotiation with maximum cost 50

neighbor 10.0.0.1 remote-as 65010
neighbor 10.0.0.1 route-map transit-in in
)";

constexpr std::string_view kResponder = R"(router bgp 65010

accept negotiation from as 65001 65002
 when tunnel_number < 100

negotiation filter pricing
 filter permit local_pref > 200
 set tunnel_cost 10
 filter permit local_pref > 100
 set tunnel_cost 25

neighbor 10.0.0.2 remote-as 65001
)";

Report admit(std::string_view requester, std::string_view responder) {
  return check_negotiation_admissibility(policy::parse_config(requester),
                                         "req.conf",
                                         policy::parse_config(responder),
                                         "resp.conf");
}

TEST(Admissibility, CompatiblePairIsAdmissible) {
  const Report report = admit(kRequester, kResponder);
  EXPECT_EQ(report.error_count(), 0u) << report.text();
  EXPECT_EQ(count_check(report, "verify.admit.ok"), 1u);
}

TEST(Admissibility, RequesterWithoutNegotiationsIsANote) {
  const Report report = admit("router bgp 65001\n", kResponder);
  EXPECT_EQ(count_check(report, "verify.admit.none"), 1u);
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Admissibility, UnsatisfiableRequestPattern) {
  const std::string requester =
      "router bgp 65001\n"
      "negotiation impossible\n"
      " match all path [a-z]\n"
      " start negotiation with maximum cost 50\n";
  const Report report = admit(requester, kResponder);
  EXPECT_EQ(count_check(report, "verify.admit.empty-request"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(Admissibility, ResponderWithoutAcceptBlock) {
  const Report report = admit(kRequester, "router bgp 65010\n");
  EXPECT_EQ(count_check(report, "verify.admit.no-responder"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(Admissibility, RequesterNotOnTheAcceptList) {
  const std::string responder =
      "router bgp 65010\n"
      "accept negotiation from as 65002\n";
  const Report report = admit(kRequester, responder);
  EXPECT_EQ(count_check(report, "verify.admit.rejected-asn"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(Admissibility, ZeroTunnelBudgetCanNeverEstablish) {
  const std::string responder =
      "router bgp 65010\n"
      "accept negotiation from as 65001\n"
      " when tunnel_number < 0\n";
  const Report report = admit(kRequester, responder);
  EXPECT_EQ(count_check(report, "verify.admit.no-budget"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(Admissibility, OutboundRouteMapDisjointFromRequest) {
  // The responder's outbound filter toward the requester only permits the
  // exact path "999", which shares no AS path with the request ^65010_.
  const std::string responder =
      "router bgp 65010\n"
      "accept negotiation from as 65001\n"
      " when tunnel_number < 100\n"
      "ip as-path access-list 30 permit ^999$\n"
      "route-map sales permit 10\n"
      " match as-path 30\n"
      "neighbor 10.0.0.2 remote-as 65001\n"
      "neighbor 10.0.0.2 route-map sales out\n";
  const Report report = admit(kRequester, responder);
  EXPECT_EQ(count_check(report, "verify.admit.filtered"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

TEST(Admissibility, OverlappingOutboundRouteMapIsFine) {
  const std::string responder =
      "router bgp 65010\n"
      "accept negotiation from as 65001\n"
      " when tunnel_number < 100\n"
      "ip as-path access-list 30 permit ^65010_\n"
      "route-map sales permit 10\n"
      " match as-path 30\n"
      "neighbor 10.0.0.2 remote-as 65001\n"
      "neighbor 10.0.0.2 route-map sales out\n";
  const Report report = admit(kRequester, responder);
  EXPECT_EQ(count_check(report, "verify.admit.ok"), 1u);
  EXPECT_EQ(report.error_count(), 0u) << report.text();
}

TEST(Admissibility, EveryAlternateCostsMoreThanTheBudget) {
  const std::string requester =
      "router bgp 65001\n"
      "negotiation cheap\n"
      " match all path ^65010_\n"
      " start negotiation with maximum cost 5\n";
  const Report report = admit(requester, kResponder);
  EXPECT_EQ(count_check(report, "verify.admit.too-expensive"), 1u);
  EXPECT_GT(report.error_count(), 0u);
}

}  // namespace
}  // namespace miro::analysis
