#include <gtest/gtest.h>

#include <string_view>

#include "analysis/config_lint.hpp"
#include "analysis/convergence_lint.hpp"
#include "analysis/diagnostics.hpp"
#include "convergence/gadgets.hpp"
#include "policy/aspath_regex.hpp"
#include "policy/policy_config.hpp"
#include "topology/as_graph.hpp"

namespace miro::analysis {
namespace {

using conv::Guideline;

// --------------------------------------------------------------- diagnostics

TEST(Diagnostics, TextRenderingIsCompilerStyle) {
  Report report;
  report.add(Severity::Error, "x.y", "boom").at("cfg", 3).fix("defuse");
  report.add(Severity::Warning, "x.z", "meh").at("cfg", 1).note("witness");
  report.sort();
  const std::string text = report.text();
  EXPECT_NE(text.find("cfg:3: error: boom [x.y]"), std::string::npos);
  EXPECT_NE(text.find("  fix-it: defuse"), std::string::npos);
  EXPECT_NE(text.find("cfg:1: warning: meh [x.z]"), std::string::npos);
  EXPECT_NE(text.find("  note: witness"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos);
  // Sorted by line: the warning on line 1 renders first.
  EXPECT_LT(text.find("cfg:1:"), text.find("cfg:3:"));
}

TEST(Diagnostics, LocationlessDiagnosticOmitsPrefix) {
  Report report;
  report.add(Severity::Note, "a.b", "floating");
  // No file means no "file:line:" prefix: the line starts at the severity.
  EXPECT_EQ(report.text().rfind("note: floating [a.b]\n", 0), 0u);
}

TEST(Diagnostics, JsonRoundTripsThroughParser) {
  Report report;
  report.add(Severity::Error, "x.y", "a \"quoted\" msg").at("f.conf", 7);
  report.add(Severity::Warning, "x.z", "warn").note("n1").note("n2");
  const JsonValue parsed = JsonValue::parse(report.to_json().dump());
  ASSERT_EQ(parsed.at("diagnostics").size(), 2u);
  const JsonValue& first = parsed.at("diagnostics").at(0);
  EXPECT_EQ(first.at("severity").as_string(), "error");
  EXPECT_EQ(first.at("check").as_string(), "x.y");
  EXPECT_EQ(first.at("file").as_string(), "f.conf");
  EXPECT_EQ(first.at("line").as_number(), 7);
  EXPECT_EQ(first.at("message").as_string(), "a \"quoted\" msg");
  const JsonValue& second = parsed.at("diagnostics").at(1);
  EXPECT_FALSE(second.contains("file"));
  ASSERT_EQ(second.at("notes").size(), 2u);
  EXPECT_EQ(second.at("notes").at(1).as_string(), "n2");
  EXPECT_EQ(parsed.at("counts").at("error").as_number(), 1);
  EXPECT_EQ(parsed.at("counts").at("warning").as_number(), 1);
  EXPECT_EQ(parsed.at("counts").at("note").as_number(), 0);
}

TEST(Diagnostics, CountsAndLookups) {
  Report report;
  EXPECT_TRUE(report.empty());
  report.add(Severity::Error, "one", "m");
  report.add(Severity::Error, "two", "m");
  report.add(Severity::Note, "three", "m");
  EXPECT_EQ(report.size(), 3u);
  EXPECT_EQ(report.error_count(), 2u);
  EXPECT_EQ(report.count(Severity::Note), 1u);
  EXPECT_TRUE(report.has("two"));
  EXPECT_FALSE(report.has("nope"));
  Report other;
  other.add(Severity::Warning, "four", "m");
  report.merge(other);
  EXPECT_EQ(report.size(), 4u);
  EXPECT_TRUE(report.has("four"));
}

// -------------------------------------------------------------- config lint

Report lint(std::string_view text) {
  return lint_config(policy::parse_config(text), "test.conf");
}

bool has_severity(const Report& report, std::string_view check,
                  Severity severity) {
  for (const Diagnostic& d : report.diagnostics())
    if (d.check == check && d.severity == severity) return true;
  return false;
}

TEST(ConfigLint, CleanConfigHasNoFindings) {
  const Report report = lint(R"(
router bgp 65001
ip as-path access-list 10 permit _7007_
route-map in-map permit 10
 match as-path 10
 set local-preference 120
neighbor 10.0.0.1 remote-as 65010
neighbor 10.0.0.1 route-map in-map in
)");
  EXPECT_TRUE(report.empty()) << report.text();
}

TEST(ConfigLint, UndefinedAclReferenceIsError) {
  const Report report = lint(R"(
router bgp 1
route-map m permit 10
 match as-path 55
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(has_severity(report, "policy.acl.undefined", Severity::Error));
}

TEST(ConfigLint, UnusedAclWarns) {
  const Report report = lint("router bgp 1\n"
                             "ip as-path access-list 7 permit .*\n");
  EXPECT_TRUE(has_severity(report, "policy.acl.unused", Severity::Warning));
}

TEST(ConfigLint, EmptyLanguageRegexIsError) {
  const Report report = lint(R"(
router bgp 1
ip as-path access-list 9 permit ^65010$5
route-map m permit 10
 match as-path 9
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(has_severity(report, "policy.regex.empty", Severity::Error));
  // The unmatchable permit also makes the clause dead.
  EXPECT_TRUE(has_severity(report, "policy.routemap.never-matches",
                           Severity::Warning));
}

TEST(ConfigLint, DuplicateSequenceIsError) {
  const Report report = lint(R"(
router bgp 1
ip as-path access-list 1 permit .*
route-map m permit 10
 match as-path 1
route-map m deny 10
 match as-path 1
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(
      has_severity(report, "policy.routemap.duplicate-seq", Severity::Error));
}

TEST(ConfigLint, UnconditionalClauseShadowsLaterSequences) {
  const Report report = lint(R"(
router bgp 1
ip as-path access-list 1 permit .*
route-map m permit 10
 set local-preference 50
route-map m permit 20
 match as-path 1
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(
      has_severity(report, "policy.routemap.shadowed", Severity::Error));
}

TEST(ConfigLint, UnboundRouteMapWarns) {
  const Report report = lint(R"(
router bgp 1
ip as-path access-list 1 permit .*
route-map orphan permit 10
 match as-path 1
)");
  EXPECT_TRUE(
      has_severity(report, "policy.routemap.unused", Severity::Warning));
}

TEST(ConfigLint, UndefinedRouteMapBindingIsError) {
  const Report report = lint("router bgp 1\n"
                             "neighbor 10.0.0.1 route-map ghost out\n");
  EXPECT_TRUE(
      has_severity(report, "policy.routemap.undefined", Severity::Error));
}

TEST(ConfigLint, NegotiationReferenceChecks) {
  const Report undefined = lint(R"(
router bgp 1
route-map m permit 10
 match as-path 1
 try negotiation ghost
ip as-path access-list 1 permit .*
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(has_severity(undefined, "policy.negotiation.undefined",
                           Severity::Error));
  const Report unused = lint(R"(
router bgp 1
negotiation lonely
 match all path .*
 start negotiation with maximum cost 10
)");
  EXPECT_TRUE(
      has_severity(unused, "policy.negotiation.unused", Severity::Warning));
  const Report empty = lint(R"(
router bgp 1
negotiation n
 match all path ^65010$5
 start negotiation with maximum cost 10
route-map m permit 10
 match as-path 1
 try negotiation n
ip as-path access-list 1 permit .*
neighbor 10.0.0.1 route-map m in
)");
  EXPECT_TRUE(has_severity(empty, "policy.regex.empty", Severity::Error));
}

TEST(ConfigLint, ResponderChecks) {
  const Report never = lint("router bgp 1\n"
                            "accept negotiation from any\n"
                            "when tunnel_number < 0\n");
  EXPECT_TRUE(
      has_severity(never, "policy.responder.never-admits", Severity::Error));
  const Report shadowed = lint(R"(
router bgp 1
accept negotiation from any
negotiation filter pricing
 filter permit local_pref > 100
 set tunnel_cost 5
 filter permit local_pref > 200
 set tunnel_cost 1
)");
  EXPECT_TRUE(has_severity(shadowed, "policy.responder.filter-shadowed",
                           Severity::Warning));
}

TEST(ConfigLint, MissingRouterStatementIsNote) {
  const Report report = lint("ip as-path access-list 1 permit .*\n");
  EXPECT_TRUE(has_severity(report, "policy.router.missing", Severity::Note));
}

// The acceptance scenario: one config carrying an undefined ACL reference, a
// shadowed sequence, and an empty-language regex produces three distinct
// error check ids (and miro_lint exits nonzero on it).
TEST(ConfigLint, BrokenConfigProducesThreeDistinctErrorChecks) {
  const Report report = lint(R"(
router bgp 65099
ip as-path access-list 30 permit ^65010$5
route-map lint-demo permit 10
 set local-preference 200
route-map lint-demo permit 20
 match as-path 40
route-map lint-demo permit 30
 match as-path 30
neighbor 192.0.2.1 remote-as 65010
neighbor 192.0.2.1 route-map lint-demo in
)");
  EXPECT_TRUE(has_severity(report, "policy.regex.empty", Severity::Error));
  EXPECT_TRUE(
      has_severity(report, "policy.routemap.shadowed", Severity::Error));
  EXPECT_TRUE(has_severity(report, "policy.acl.undefined", Severity::Error));
  EXPECT_GE(report.error_count(), 3u);
}

// --------------------------------------------------------- convergence lint

TEST(ConvergenceLint, Figure71WithoutGuidelinesHasDisputeWheel) {
  const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::None);
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.1");
  ASSERT_TRUE(report.has("conv.dispute-wheel")) << report.text();
  EXPECT_GE(report.error_count(), 1u);
  // The witness names the pivot ASes and prints the rim paths.
  const std::string text = report.text();
  EXPECT_NE(text.find("pivots"), std::string::npos);
  EXPECT_NE(text.find("rim path"), std::string::npos);
  EXPECT_NE(text.find("10 20 40"), std::string::npos);
}

TEST(ConvergenceLint, Figure71StrictPolicyBreaksTheWheel) {
  const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::StrictOnly);
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.1");
  EXPECT_FALSE(report.has("conv.dispute-wheel")) << report.text();
  EXPECT_EQ(report.error_count(), 0u) << report.text();
}

TEST(ConvergenceLint, Figure72DivergesEvenUnderStrictPolicy) {
  for (const Guideline guideline : {Guideline::None, Guideline::StrictOnly}) {
    const conv::MiroGadget gadget = conv::make_figure_7_2(guideline);
    const Report report = lint_system(gadget.graph, gadget.destinations,
                                      gadget.options, "fig7.2");
    EXPECT_TRUE(report.has("conv.dispute-wheel"))
        << conv::to_string(guideline) << "\n"
        << report.text();
  }
}

TEST(ConvergenceLint, CompliantGuidelinesLintClean) {
  for (const Guideline guideline :
       {Guideline::B, Guideline::C, Guideline::D, Guideline::E}) {
    for (const bool second_figure : {false, true}) {
      const conv::MiroGadget gadget = second_figure
                                          ? conv::make_figure_7_2(guideline)
                                          : conv::make_figure_7_1(guideline);
      const Report report = lint_system(gadget.graph, gadget.destinations,
                                        gadget.options, "gadget");
      EXPECT_EQ(report.error_count(), 0u)
          << "figure " << (second_figure ? "7.2" : "7.1") << " under "
          << conv::to_string(guideline) << "\n"
          << report.text();
      EXPECT_FALSE(report.has("conv.dispute-wheel"));
    }
  }
}

TEST(ConvergenceLint, GuidelineDWithoutDeclaredOrderIsError) {
  conv::MiroGadget gadget = conv::make_figure_7_2(Guideline::D);
  gadget.options.partial_order = nullptr;
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.2");
  EXPECT_TRUE(report.has("conv.guideline-d.order-missing"));
  EXPECT_GE(report.error_count(), 1u);
}

TEST(ConvergenceLint, CyclicGuidelineDOrderIsNotStrict) {
  conv::MiroGadget gadget = conv::make_figure_7_2(Guideline::D);
  // 0 ≺ 1 ≺ 2 ≺ 3 ≺ 0: irreflexive but cyclic, so no strict partial order
  // extends it — and it no longer gates the cyclic tunnel preferences.
  gadget.options.partial_order = [](topo::NodeId, topo::NodeId v,
                                    topo::NodeId d) {
    return d == (v + 1) % 4;
  };
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.2");
  EXPECT_TRUE(report.has("conv.guideline-d.order-not-strict"))
      << report.text();
}

TEST(ConvergenceLint, ReflexiveGuidelineDOrderIsNotStrict) {
  conv::MiroGadget gadget = conv::make_figure_7_2(Guideline::D);
  gadget.options.partial_order = [](topo::NodeId, topo::NodeId,
                                    topo::NodeId) { return true; };
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.2");
  EXPECT_TRUE(report.has("conv.guideline-d.order-not-strict"));
}

TEST(ConvergenceLint, ProviderCycleDetected) {
  topo::AsGraph graph;
  const topo::NodeId a = graph.add_as(100);
  const topo::NodeId b = graph.add_as(200);
  const topo::NodeId c = graph.add_as(300);
  // a provides for b, b for c, c for a: everyone is their own indirect
  // provider.
  graph.add_customer_provider(a, b);
  graph.add_customer_provider(b, c);
  graph.add_customer_provider(c, a);
  const Report report = lint_topology(graph, "cycle");
  ASSERT_TRUE(report.has("conv.guideline-a.provider-cycle"));
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_NE(report.text().find("witness"), std::string::npos);
}

TEST(ConvergenceLint, GadgetTopologiesAreProviderAcyclic) {
  const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::None);
  EXPECT_TRUE(lint_topology(gadget.graph, "fig7.1").empty());
}

TEST(ConvergenceLint, MalformedTunnelSpecIsError) {
  conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::None);
  // Break the first tunnel's pinned path: starts at the wrong node.
  auto& path = *gadget.options.tunnels.front().required_path;
  std::swap(path.front(), path.back());
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.1");
  EXPECT_TRUE(report.has("conv.tunnel.bad-spec"));
}

TEST(ConvergenceLint, ValleyExportWarnsOnlyWithoutGuidelines) {
  const conv::MiroGadget none = conv::make_figure_7_1(Guideline::None);
  EXPECT_TRUE(lint_system(none.graph, none.destinations, none.options, "g")
                  .has("conv.guideline-a.valley-export"));
  const conv::MiroGadget b = conv::make_figure_7_1(Guideline::B);
  EXPECT_FALSE(lint_system(b.graph, b.destinations, b.options, "g")
                   .has("conv.guideline-a.valley-export"));
}

TEST(ConvergenceLint, GuidelineESerialisationIsNoted) {
  const conv::MiroGadget gadget = conv::make_figure_7_2(Guideline::E);
  const Report report = lint_system(gadget.graph, gadget.destinations,
                                    gadget.options, "fig7.2");
  EXPECT_TRUE(report.has("conv.guideline-e.serialised"));
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(ConvergenceLint, BadDestinationIsError) {
  const conv::MiroGadget gadget = conv::make_figure_7_1(Guideline::None);
  const std::vector<topo::NodeId> destinations{999};
  const Report report =
      lint_system(gadget.graph, destinations, gadget.options, "fig7.1");
  EXPECT_TRUE(report.has("conv.system.bad-destination"));
}

// --------------------------------------------- automaton product emptiness

// Layer 3's admissibility check rests on AsPathRegex::intersection_empty;
// these pin its corner cases: digit-exact anchored disjointness, the
// substring-window ("match anywhere") semantics, shared suffixes, symmetry,
// and the conservative direction of the blowup guard.

bool disjoint(std::string_view a, std::string_view b,
              std::size_t max_configs = 1u << 20) {
  const policy::AsPathRegex left{a};
  const policy::AsPathRegex right{b};
  // The product is symmetric; assert both directions agree while we're here.
  const bool forward = left.intersection_empty(right, max_configs);
  EXPECT_EQ(forward, right.intersection_empty(left, max_configs))
      << a << " vs " << b;
  return forward;
}

TEST(AsPathProduct, AnchoredDigitDisjointness) {
  // Exactly "1" vs exactly "2": no shared word, decided per digit.
  EXPECT_TRUE(disjoint("^1$", "^2$"));
  EXPECT_FALSE(disjoint("^1$", "^1$"));
  // "1 ..." vs "2 ...": first number already differs.
  EXPECT_TRUE(disjoint("^1_", "^2_"));
  // A word containing 12 can also be exactly 12.
  EXPECT_FALSE(disjoint("_12_", "^12$"));
  // Substring windows: some path contains both 7007 and 65010.
  EXPECT_FALSE(disjoint("_7007_", "_65010_"));
  // But a path that is exactly "2 3" never contains the number 1 on a
  // boundary.
  EXPECT_TRUE(disjoint("_1_", "^2 3$"));
}

TEST(AsPathProduct, EmptyComplementIntersectsNothing) {
  // [a-z] matches no rendered AS path at all (the alphabet is digits and
  // spaces), so even against .* the product is empty.
  EXPECT_TRUE(policy::AsPathRegex("[a-z]").language_empty());
  EXPECT_TRUE(disjoint("[a-z]", ".*"));
  EXPECT_TRUE(disjoint(".*", "[a-z]"));
  EXPECT_FALSE(disjoint(".*", ".*"));
}

TEST(AsPathProduct, LongSharedSuffixesStayJoint) {
  // Both demand a long shared tail: the witness must thread both NFAs
  // through every digit of the suffix.
  EXPECT_FALSE(disjoint("_65001 65002 65003 65004$", "_65002 65003 65004$"));
  EXPECT_FALSE(disjoint(".*65001 65002 65003$", "_65002 65003$"));
  // Same long tails, but the last number differs in its final digit.
  EXPECT_TRUE(disjoint("^65001 65002 65003$", "^65001 65002 65004$"));
  // A fixed-exact word vs a longer suffix demand containing it.
  EXPECT_TRUE(disjoint("^65003 65004$", "_65002 65003 65004$"));
}

TEST(AsPathProduct, BlowupGuardIsConservative) {
  // With a tiny configuration budget the product gives up and answers
  // "may intersect" — never a wrong "disjoint" — even on a pair whose
  // product is provably empty.
  EXPECT_TRUE(disjoint("^1$", "^2$"));
  EXPECT_FALSE(disjoint("^1$", "^2$", 2));
}

}  // namespace
}  // namespace miro::analysis
