// Tests for the protocol extensions: multi-hop negotiation (Section 3.3),
// origin prepending (Section 1.2 footnote), and the TE-mechanism ablation.
#include <gtest/gtest.h>

#include "bgp/route_solver.hpp"
#include "core/alternates.hpp"
#include "eval/te_comparison.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro {
namespace {

using core::AlternatesEngine;
using core::ExportPolicy;
using test::Figure31Topology;

// --------------------------------------------------- multi-hop negotiation

/// A topology where single-hop negotiation cannot avoid the AS but a
/// responder asking its downstream can: source s -> m -> x -> d is the
/// default; m's only candidates both run through x; but m's downstream
/// neighbor g (reached via a candidate) has a second path around x.
struct MultihopGadget {
  topo::AsGraph graph;
  topo::NodeId s, m, g, x, h, d;

  MultihopGadget() {
    s = graph.add_as(1);
    m = graph.add_as(2);
    g = graph.add_as(3);
    x = graph.add_as(4);
    h = graph.add_as(5);
    d = graph.add_as(6);
    // s is a customer of m; m is a customer of g and x; g is a customer of
    // x... careful: we need m's candidates to all cross x, while g knows a
    // clean path through h.
    graph.add_customer_provider(/*provider=*/m, /*customer=*/s);
    graph.add_customer_provider(g, m);
    graph.add_customer_provider(x, m);
    graph.add_customer_provider(x, g);   // g's default to d goes via x
    graph.add_customer_provider(h, g);   // but g also buys from h
    graph.add_customer_provider(x, d);   // d is x's customer
    graph.add_customer_provider(h, d);   // and h's customer
  }
};

TEST(Multihop, ResponderAsksDownstreamWhenOwnOffersFail) {
  MultihopGadget gadget;
  bgp::StableRouteSolver solver(gadget.graph);
  const bgp::RoutingTree tree = solver.solve(gadget.d);
  AlternatesEngine engine(solver);

  // Default path from s crosses x.
  const auto default_path = tree.path_of(gadget.s);
  ASSERT_NE(std::find(default_path.begin(), default_path.end(), gadget.x),
            default_path.end());

  // g prefers its customer route g-x?? No: d is not g's customer; g's
  // candidates toward d are provider routes via x and via h. Whichever g
  // selected, the OTHER one is its alternate — the one through h avoids x.
  const auto single =
      engine.avoid_as(tree, gadget.s, gadget.x, ExportPolicy::Flexible);
  const auto multi = engine.avoid_as_multihop(tree, gadget.s, gadget.x,
                                              ExportPolicy::Flexible);
  ASSERT_TRUE(multi.success);
  if (!single.success) {
    // The interesting case: only the relayed (multi-hop) offer works.
    EXPECT_TRUE(multi.used_multihop);
    ASSERT_TRUE(multi.chosen);
    EXPECT_FALSE(multi.chosen->traverses(gadget.x));
    EXPECT_EQ(multi.chosen->as_path.back(), gadget.d);
    EXPECT_EQ(multi.chosen->as_path.front(), gadget.s);
  }
}

TEST(Multihop, NeverWorseThanSingleHop) {
  const topo::AsGraph graph = topo::generate(topo::profile("tiny"));
  bgp::StableRouteSolver solver(graph);
  AlternatesEngine engine(solver);
  Rng rng(99);
  std::size_t checked = 0;
  std::size_t multihop_only = 0;
  for (int attempt = 0; attempt < 800 && checked < 120; ++attempt) {
    const auto dest =
        static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
    const auto source =
        static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
    if (source == dest) continue;
    const bgp::RoutingTree tree = solver.solve(dest);
    if (!tree.reachable(source)) continue;
    const auto path = tree.path_of(source);
    if (path.size() < 4) continue;
    const topo::NodeId avoid = path[2];
    if (avoid == dest || graph.has_edge(source, avoid)) continue;
    ++checked;
    for (ExportPolicy policy : core::kAllPolicies) {
      const auto single = engine.avoid_as(tree, source, avoid, policy);
      const auto multi =
          engine.avoid_as_multihop(tree, source, avoid, policy);
      EXPECT_GE(multi.success, single.success);
      EXPECT_GE(multi.paths_received, single.paths_received);
      if (multi.success) {
        ASSERT_TRUE(multi.chosen);
        EXPECT_FALSE(multi.chosen->traverses(avoid));
        // The spliced path is loop-free.
        auto sorted = multi.chosen->as_path;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                  sorted.end());
      }
      if (multi.success && !single.success &&
          policy == ExportPolicy::Flexible)
        ++multihop_only;
    }
  }
  EXPECT_GE(checked, 100u);
  // Multi-hop must contribute at least occasionally on a real topology.
  EXPECT_GT(multihop_only, 0u);
}

// ---------------------------------------------------------- prepending

TEST(Prepend, ShiftsTieBrokenSourcesOnly) {
  Figure31Topology fig;
  bgp::StableRouteSolver solver(fig.graph);
  // Toward F nothing changes class-wise; check A's provider choice instead:
  // A picks B over D on the next-hop tie-break. If F... use destination E:
  // A reaches E via B (next-hop ASN 2 < 4). Prepending on B's link should
  // push A to D.
  const bgp::RoutingTree plain = solver.solve(fig.e);
  ASSERT_EQ(plain.path_of(fig.a),
            (std::vector<topo::NodeId>{fig.a, fig.b, fig.e}));
  const bgp::RoutingTree padded =
      solver.solve_prepended(fig.e, bgp::OriginPrepend{fig.b, 2});
  EXPECT_EQ(padded.path_of(fig.a),
            (std::vector<topo::NodeId>{fig.a, fig.d, fig.e}));
  // The class hierarchy is untouched: E's providers still use their direct
  // customer routes.
  EXPECT_EQ(padded.path_of(fig.b),
            (std::vector<topo::NodeId>{fig.b, fig.e}));
}

TEST(Prepend, CannotOverrideLocalPreference) {
  // x has a customer route and a provider route to d; prepending on the
  // customer link cannot make x switch (local preference first).
  topo::AsGraph graph;
  const auto x = graph.add_as(1);
  const auto c = graph.add_as(2);
  const auto p = graph.add_as(3);
  const auto d = graph.add_as(4);
  graph.add_customer_provider(/*provider=*/x, /*customer=*/c);
  graph.add_customer_provider(p, x);
  graph.add_customer_provider(c, d);  // d customer of c
  graph.add_customer_provider(p, d);  // d customer of p
  bgp::StableRouteSolver solver(graph);
  const bgp::RoutingTree plain = solver.solve(d);
  ASSERT_EQ(plain.route_class(x), bgp::RouteClass::Customer);
  // Prepend heavily toward c: x still refuses the provider path via p.
  const bgp::RoutingTree padded =
      solver.solve_prepended(d, bgp::OriginPrepend{c, 10});
  EXPECT_EQ(padded.route_class(x), bgp::RouteClass::Customer);
  EXPECT_EQ(padded.path_of(x), plain.path_of(x));
}

TEST(Prepend, RequiresAdjacency) {
  Figure31Topology fig;
  bgp::StableRouteSolver solver(fig.graph);
  EXPECT_THROW(solver.solve_prepended(fig.f, bgp::OriginPrepend{fig.a, 1}),
               Error);
}

// ---------------------------------------------------------- TE ablation

TEST(TeComparison, RunsAndOrdersSensibly) {
  eval::EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 8;
  config.sources_per_destination = 8;
  const eval::ExperimentPlan plan(config);
  eval::TeComparisonConfig te_config;
  te_config.stub_samples = 30;
  const auto result = eval::run_te_comparison(plan, te_config);
  ASSERT_EQ(result.mechanisms.size(), 5u);  // miro, deagg, 3 prepend depths
  const auto& miro = result.mechanisms[0];
  const auto& deagg = result.mechanisms[1];
  EXPECT_EQ(miro.global_state_entries, 2u);
  EXPECT_EQ(deagg.global_state_entries, plan.graph().node_count());
  // Deeper prepending never moves less than shallower prepending (median).
  EXPECT_LE(result.mechanisms[2].median_moved,
            result.mechanisms[4].median_moved + 1e-9);
  // Every mechanism's errors/moves are valid fractions.
  for (const auto& m : result.mechanisms) {
    EXPECT_GE(m.median_moved, 0.0);
    EXPECT_LE(m.median_moved, 1.0);
    EXPECT_GE(m.median_targeting_error, 0.0);
    EXPECT_LE(m.median_targeting_error, result.target_shift + 1e-9);
  }
}

TEST(TeComparison, PrintsTable) {
  eval::EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 4;
  config.sources_per_destination = 4;
  const eval::ExperimentPlan plan(config);
  eval::TeComparisonConfig te_config;
  te_config.stub_samples = 10;
  std::ostringstream out;
  eval::print(eval::run_te_comparison(plan, te_config), out);
  EXPECT_NE(out.str().find("miro-tunnel"), std::string::npos);
  EXPECT_NE(out.str().find("prepend-x3"), std::string::npos);
}

}  // namespace
}  // namespace miro
