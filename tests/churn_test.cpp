#include <gtest/gtest.h>

#include <algorithm>

#include "churn/churn_trace.hpp"
#include "churn/invariant_checker.hpp"
#include "churn/replayer.hpp"
#include "common/error.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro::churn {
namespace {

using test::Figure31Topology;

ChurnTraceConfig small_config(std::uint64_t seed = 7) {
  ChurnTraceConfig config;
  config.duration = 6000;
  config.episodes = 25;
  config.min_hold = 40;
  config.max_hold = 300;
  config.seed = seed;
  return config;
}

TEST(ChurnTrace, GenerationIsDeterministicAndValid) {
  Figure31Topology fig;
  const ChurnTrace one = generate_churn_trace(fig.graph, fig.f, small_config());
  const ChurnTrace two = generate_churn_trace(fig.graph, fig.f, small_config());
  EXPECT_EQ(one.events, two.events);
  EXPECT_FALSE(one.events.empty());
  EXPECT_NO_THROW(one.validate(fig.graph));
  EXPECT_TRUE(std::is_sorted(one.events.begin(), one.events.end(),
                             [](const ChurnEvent& x, const ChurnEvent& y) {
                               return x.time < y.time;
                             }));
  // Different seed, different script.
  const ChurnTrace other =
      generate_churn_trace(fig.graph, fig.f, small_config(8));
  EXPECT_NE(one.events, other.events);
}

TEST(ChurnTrace, JsonRoundTripPreservesEverything) {
  Figure31Topology fig;
  const ChurnTrace trace =
      generate_churn_trace(fig.graph, fig.f, small_config());
  const ChurnTrace back = ChurnTrace::parse(trace.dump());
  EXPECT_EQ(back.destination, trace.destination);
  EXPECT_EQ(back.seed, trace.seed);
  EXPECT_EQ(back.events, trace.events);
  EXPECT_EQ(back.dump(), trace.dump());
}

TEST(ChurnTrace, ValidateRejectsInconsistentScripts) {
  Figure31Topology fig;
  ChurnTrace trace;
  trace.destination = fig.f;
  trace.events.push_back({10, ChurnEventKind::LinkDown, fig.e, fig.f});
  trace.events.push_back({20, ChurnEventKind::LinkDown, fig.e, fig.f});
  EXPECT_THROW(trace.validate(fig.graph), Error);

  trace.events.clear();
  trace.events.push_back({10, ChurnEventKind::LinkUp, fig.e, fig.f});
  EXPECT_THROW(trace.validate(fig.graph), Error);

  trace.events.clear();
  trace.events.push_back({10, ChurnEventKind::LinkDown, fig.a, fig.f});
  EXPECT_THROW(trace.validate(fig.graph), Error);  // no such edge

  trace.events.clear();
  trace.events.push_back({10, ChurnEventKind::HijackStart, fig.f});
  EXPECT_THROW(trace.validate(fig.graph), Error);  // destination hijack

  trace.events.clear();
  trace.events.push_back({20, ChurnEventKind::PrefixWithdraw});
  trace.events.push_back({10, ChurnEventKind::PrefixAnnounce});
  EXPECT_THROW(trace.validate(fig.graph), Error);  // out of order
}

TEST(ChurnReplay, Figure31TraceKeepsAllInvariants) {
  Figure31Topology fig;
  const ChurnTrace trace =
      generate_churn_trace(fig.graph, fig.f, small_config());
  ReplayConfig config;
  config.checkpoint_interval = 100;
  const ReplayResult result = replay_churn(fig.graph, trace, config);
  for (const ChurnViolation& v : result.violations) {
    ADD_FAILURE() << v.property << " at t=" << v.time << " (event "
                  << v.event_index << "): " << v.detail;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.convergence.empty());
  EXPECT_GT(result.checker.checkpoints, 0u);
  EXPECT_GT(result.checker.quiet_checkpoints, 0u);
  EXPECT_GT(result.checker.solver_comparisons, 0u);
  EXPECT_GT(result.initial_convergence, 0u);
  for (const ConvergenceSample& s : result.convergence)
    EXPECT_GE(s.settled, s.start);
}

TEST(ChurnReplay, ReplayIsDeterministic) {
  Figure31Topology fig;
  const ChurnTrace trace =
      generate_churn_trace(fig.graph, fig.f, small_config(11));
  ReplayConfig config;
  config.checkpoint_interval = 150;
  const ReplayResult one = replay_churn(fig.graph, trace, config);
  const ReplayResult two = replay_churn(fig.graph, trace, config);
  EXPECT_EQ(one.final_time, two.final_time);
  EXPECT_EQ(one.scheduler_events, two.scheduler_events);
  EXPECT_EQ(one.bgp.updates_sent, two.bgp.updates_sent);
  EXPECT_EQ(one.bgp.withdrawals_sent, two.bgp.withdrawals_sent);
  ASSERT_EQ(one.convergence.size(), two.convergence.size());
  for (std::size_t i = 0; i < one.convergence.size(); ++i) {
    EXPECT_EQ(one.convergence[i].start, two.convergence[i].start);
    EXPECT_EQ(one.convergence[i].settled, two.convergence[i].settled);
    EXPECT_EQ(one.convergence[i].messages, two.convergence[i].messages);
  }
  EXPECT_EQ(one.violations.size(), two.violations.size());
}

TEST(ChurnReplay, GeneratedTopologySurvivesChurnCleanly) {
  topo::GeneratorParams params = topo::profile("tiny");
  params.node_count = 60;
  const topo::AsGraph graph = topo::generate(params);
  ChurnTraceConfig tc = small_config(3);
  tc.episodes = 20;
  const ChurnTrace trace = generate_churn_trace(graph, /*destination=*/0, tc);
  ReplayConfig config;
  config.checkpoint_interval = 250;
  const ReplayResult result = replay_churn(graph, trace, config);
  for (const ChurnViolation& v : result.violations) {
    ADD_FAILURE() << v.property << " at t=" << v.time << " (event "
                  << v.event_index << "): " << v.detail;
  }
  EXPECT_TRUE(result.ok());
}

TEST(ChurnReplay, DefensesOnStillSatisfyInvariants) {
  Figure31Topology fig;
  const ChurnTrace trace =
      generate_churn_trace(fig.graph, fig.f, small_config(5));
  ReplayConfig config;
  config.checkpoint_interval = 100;
  config.defense.mrai = 60;
  config.defense.damping_enabled = true;
  const ReplayResult result = replay_churn(fig.graph, trace, config);
  for (const ChurnViolation& v : result.violations) {
    ADD_FAILURE() << v.property << " at t=" << v.time << " (event "
                  << v.event_index << "): " << v.detail;
  }
  EXPECT_TRUE(result.ok());
}

TEST(ChurnReplay, DampingAndMraiHalveUpdateLoadUnderPersistentFlap) {
  Figure31Topology fig;
  const ChurnTrace trace = make_persistent_flap_trace(
      fig.graph, fig.f, fig.e, fig.f, /*flaps=*/40, /*period=*/80);
  ReplayConfig off;
  off.checkpoint_interval = 0;  // pure throughput comparison
  const ReplayResult baseline = replay_churn(fig.graph, trace, off);

  ReplayConfig on = off;
  on.defense.mrai = 60;
  on.defense.damping_enabled = true;
  const ReplayResult defended = replay_churn(fig.graph, trace, on);

  EXPECT_TRUE(baseline.ok());
  EXPECT_TRUE(defended.ok());
  EXPECT_GT(defended.bgp.routes_damped, 0u);
  EXPECT_GT(defended.bgp.updates_suppressed + defended.bgp.coalesced, 0u);
  // The acceptance bar: defenses cut the network-wide update load >= 2x.
  EXPECT_GE(baseline.bgp.updates_sent, 2 * defended.bgp.updates_sent)
      << "baseline=" << baseline.bgp.updates_sent
      << " defended=" << defended.bgp.updates_sent;
}

TEST(ChurnReplay, HijackAndRecoverReconvergesToTrueOrigin) {
  Figure31Topology fig;
  ChurnTrace trace;
  trace.destination = fig.f;
  trace.events.push_back({200, ChurnEventKind::HijackStart, fig.a});
  trace.events.push_back({900, ChurnEventKind::HijackEnd, fig.a});
  ReplayConfig config;
  config.checkpoint_interval = 50;
  const ReplayResult result = replay_churn(fig.graph, trace, config);
  for (const ChurnViolation& v : result.violations) {
    ADD_FAILURE() << v.property << " at t=" << v.time << " (event "
                  << v.event_index << "): " << v.detail;
  }
  EXPECT_TRUE(result.ok());
  // The final solver comparison ran after the hijack cleared.
  EXPECT_GT(result.checker.solver_comparisons, 0u);
}

TEST(ChurnReplay, WatchedTunnelsAreTornDownWithinHoldDown) {
  Figure31Topology fig;
  ChurnTrace trace;
  trace.destination = fig.f;
  trace.events.push_back({300, ChurnEventKind::LinkDown, fig.e, fig.f});
  trace.events.push_back({1500, ChurnEventKind::LinkUp, fig.e, fig.f});
  ReplayConfig config;
  config.checkpoint_interval = 50;
  config.tunnel_hold_down = 100;
  // A strictly bound tunnel riding B's default B-E-F: the link failure
  // reroutes E and must tear this down via the monitor well inside the
  // hold-down.
  core::TunnelMonitor::WatchedTunnel tunnel;
  tunnel.id = 1;
  tunnel.upstream = fig.a;
  tunnel.responder = fig.b;
  tunnel.destination = fig.f;
  tunnel.bound_path = {fig.b, fig.e, fig.f};
  tunnel.strict_binding = true;
  config.tunnels.push_back(tunnel);
  const ReplayResult result = replay_churn(fig.graph, trace, config);
  for (const ChurnViolation& v : result.violations) {
    ADD_FAILURE() << v.property << " at t=" << v.time << " (event "
                  << v.event_index << "): " << v.detail;
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.tunnels_torn, 1u);
}

TEST(InvariantChecker, CatchesTunnelOutlivingItsRoute) {
  // No monitor wiring here on purpose: the tunnel is never torn down, so
  // once E's route diverges from the strict binding past the hold-down the
  // checker must flag it.
  Figure31Topology fig;
  sim::Scheduler scheduler;
  bgp::SessionedBgpNetwork network(fig.graph, fig.f, scheduler);
  core::TunnelMonitor monitor;
  core::TunnelMonitor::WatchedTunnel tunnel;
  tunnel.id = 7;
  tunnel.upstream = fig.a;
  tunnel.responder = fig.b;
  tunnel.destination = fig.f;
  tunnel.bound_path = {fig.b, fig.e, fig.f};
  tunnel.strict_binding = true;
  monitor.watch(tunnel);
  InvariantChecker checker(network, /*tunnel_hold_down=*/100, &monitor);
  network.start();
  scheduler.run_all();
  checker.check(scheduler.now());
  EXPECT_TRUE(checker.violations().empty());

  network.fail_link(fig.e, fig.f);
  checker.on_session_flush(fig.e, fig.f);
  scheduler.run_all();
  checker.check(scheduler.now());  // dead, but still inside the hold-down
  EXPECT_TRUE(checker.violations().empty());

  scheduler.run_until(scheduler.now() + 200);
  checker.check(scheduler.now());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].property, "tunnel-hold-down");

  // Reported once, not at every later checkpoint.
  scheduler.run_until(scheduler.now() + 200);
  checker.check(scheduler.now());
  EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(InvariantChecker, FinalCheckFlagsNonQuiescence) {
  Figure31Topology fig;
  sim::Scheduler scheduler;
  bgp::SessionedBgpNetwork network(fig.graph, fig.f, scheduler);
  InvariantChecker checker(network);
  network.start();
  // Messages are in flight right after start(); a final check here must
  // complain about the missing quiescence.
  ASSERT_FALSE(network.transit_quiet());
  checker.final_check(scheduler.now());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].property, "replay-quiescence");
}

}  // namespace
}  // namespace miro::churn
