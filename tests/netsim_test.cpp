#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "netsim/message_bus.hpp"
#include "netsim/scheduler.hpp"

namespace miro::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.at(30, [&] { order.push_back(3); });
  scheduler.at(10, [&] { order.push_back(1); });
  scheduler.at(20, [&] { order.push_back(2); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30u);
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    scheduler.at(7, [&order, i] { order.push_back(i); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler scheduler;
  Time fired_at = 0;
  scheduler.at(100, [&] {
    scheduler.after(25, [&] { fired_at = scheduler.now(); });
  });
  scheduler.run_all();
  EXPECT_EQ(fired_at, 125u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  bool fired = false;
  auto token = scheduler.at(10, [&] { fired = true; });
  EXPECT_TRUE(token.pending());
  token.cancel();
  EXPECT_FALSE(token.pending());
  scheduler.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler scheduler;
  auto token = scheduler.at(10, [] {});
  scheduler.run_all();
  EXPECT_FALSE(token.pending());
  token.cancel();  // no-op
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.at(10, [&] { order.push_back(1); });
  scheduler.at(20, [&] { order.push_back(2); });
  scheduler.at(30, [&] { order.push_back(3); });
  EXPECT_EQ(scheduler.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.now(), 20u);
  EXPECT_EQ(scheduler.pending_events(), 1u);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler scheduler;
  scheduler.at(50, [] {});
  scheduler.run_all();
  EXPECT_THROW(scheduler.at(10, [] {}), Error);
}

TEST(Scheduler, RunawayGuardThrows) {
  Scheduler scheduler;
  // A self-rescheduling event never drains.
  std::function<void()> loop = [&] { scheduler.after(1, loop); };
  scheduler.after(1, loop);
  EXPECT_THROW(scheduler.run_all(1000), Error);
}

TEST(MessageBus, DeliversWithDefaultDelay) {
  Scheduler scheduler;
  MessageBus<std::string> bus(scheduler, /*default_delay=*/15);
  std::vector<std::pair<EndpointId, std::string>> received;
  bus.attach(2, [&](EndpointId from, const std::string& message) {
    received.emplace_back(from, message);
  });
  bus.send(1, 2, "hello");
  scheduler.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[0].second, "hello");
  EXPECT_EQ(scheduler.now(), 15u);
}

TEST(MessageBus, PerLinkDelayOverride) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(5, [&](EndpointId, int value) { received.push_back(value); });
  bus.set_delay(1, 5, 50);
  bus.send(1, 5, 111);  // arrives at t=50
  bus.send(2, 5, 222);  // arrives at t=10
  scheduler.run_all();
  EXPECT_EQ(received, (std::vector<int>{222, 111}));
}

TEST(MessageBus, MessagesToUnattachedEndpointAreDropped) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler);
  bus.send(1, 99, 7);
  EXPECT_NO_THROW(scheduler.run_all());
}

TEST(MessageBus, PartitionDropsBothNewAndInFlight) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int value) { received.push_back(value); });
  bus.send(1, 2, 1);                 // in flight when the link dies
  scheduler.run_until(5);
  bus.set_link_down(1, 2, true);
  bus.send(1, 2, 2);                 // dropped immediately
  scheduler.run_all();
  EXPECT_TRUE(received.empty());
  bus.set_link_down(1, 2, false);
  bus.send(1, 2, 3);
  scheduler.run_all();
  EXPECT_EQ(received, (std::vector<int>{3}));
}

TEST(MessageBus, PartitionIsSymmetric) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler);
  bus.set_link_down(7, 3, true);
  EXPECT_TRUE(bus.is_down(3, 7));
  EXPECT_FALSE(bus.is_down(3, 8));
}

TEST(MessageBus, OrderedDeliveryPerLink) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int value) { received.push_back(value); });
  for (int i = 0; i < 10; ++i) bus.send(1, 2, i);
  scheduler.run_all();
  std::vector<int> expected(10);
  for (int i = 0; i < 10; ++i) expected[i] = i;
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace miro::sim
