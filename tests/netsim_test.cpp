#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <algorithm>

#include "common/error.hpp"
#include "netsim/fault_injection.hpp"
#include "netsim/message_bus.hpp"
#include "netsim/scheduler.hpp"

namespace miro::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.at(30, [&] { order.push_back(3); });
  scheduler.at(10, [&] { order.push_back(1); });
  scheduler.at(20, [&] { order.push_back(2); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30u);
}

TEST(Scheduler, SameTimestampIsFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    scheduler.at(7, [&order, i] { order.push_back(i); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler scheduler;
  Time fired_at = 0;
  scheduler.at(100, [&] {
    scheduler.after(25, [&] { fired_at = scheduler.now(); });
  });
  scheduler.run_all();
  EXPECT_EQ(fired_at, 125u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  bool fired = false;
  auto token = scheduler.at(10, [&] { fired = true; });
  EXPECT_TRUE(token.pending());
  token.cancel();
  EXPECT_FALSE(token.pending());
  scheduler.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireIsHarmless) {
  Scheduler scheduler;
  auto token = scheduler.at(10, [] {});
  scheduler.run_all();
  EXPECT_FALSE(token.pending());
  token.cancel();  // no-op
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.at(10, [&] { order.push_back(1); });
  scheduler.at(20, [&] { order.push_back(2); });
  scheduler.at(30, [&] { order.push_back(3); });
  EXPECT_EQ(scheduler.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(scheduler.now(), 20u);
  EXPECT_EQ(scheduler.pending_events(), 1u);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler scheduler;
  scheduler.at(50, [] {});
  scheduler.run_all();
  EXPECT_THROW(scheduler.at(10, [] {}), Error);
}

TEST(Scheduler, RunawayGuardThrows) {
  Scheduler scheduler;
  // A self-rescheduling event never drains.
  std::function<void()> loop = [&] { scheduler.after(1, loop); };
  scheduler.after(1, loop);
  EXPECT_THROW(scheduler.run_all(1000), Error);
}

// Regression: with a cancelled event at the head of the queue, run_until(t)
// used to skip past it and fire the *next* live event even when that event
// was scheduled after t — overshooting both the boundary and the clock.
TEST(Scheduler, RunUntilDoesNotFireEventsBeyondBoundaryPastCancelledHead) {
  Scheduler scheduler;
  bool fired = false;
  auto cancelled = scheduler.at(5, [] { FAIL() << "cancelled event fired"; });
  scheduler.at(100, [&] { fired = true; });
  cancelled.cancel();
  EXPECT_EQ(scheduler.run_until(10), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(scheduler.now(), 10u);
  EXPECT_EQ(scheduler.pending_events(), 1u);  // live@100 still queued
  // The live event fires once the boundary actually reaches it.
  EXPECT_EQ(scheduler.run_until(100), 1u);
  EXPECT_TRUE(fired);
}

// A cancelled event scheduled beyond the boundary must stay queued; popping
// it would drag now_ past t.
TEST(Scheduler, RunUntilLeavesCancelledEventsBeyondBoundaryQueued) {
  Scheduler scheduler;
  auto token = scheduler.at(100, [] { FAIL() << "cancelled event fired"; });
  token.cancel();
  EXPECT_EQ(scheduler.run_until(10), 0u);
  EXPECT_EQ(scheduler.now(), 10u);
  EXPECT_EQ(scheduler.pending_events(), 1u);
  // Draining past it discards it without firing and without counting it.
  EXPECT_EQ(scheduler.run_until(200), 0u);
  EXPECT_EQ(scheduler.now(), 200u);
  EXPECT_EQ(scheduler.pending_events(), 0u);
}

// Regression: run_all(max_events) used to execute max_events + 1 events
// before noticing the budget was blown.
TEST(Scheduler, RunAllBudgetIsExact) {
  Scheduler scheduler;
  std::size_t executed = 0;
  for (Time t = 1; t <= 5; ++t)
    scheduler.at(t, [&] { ++executed; });
  EXPECT_THROW(scheduler.run_all(4), Error);
  EXPECT_EQ(executed, 4u);  // not 5: the budget is a hard cap
  EXPECT_EQ(scheduler.pending_events(), 1u);
}

TEST(Scheduler, RunAllBudgetEqualToEventCountSucceeds) {
  Scheduler scheduler;
  std::size_t executed = 0;
  for (Time t = 1; t <= 5; ++t)
    scheduler.at(t, [&] { ++executed; });
  EXPECT_EQ(scheduler.run_all(5), 5u);
  EXPECT_EQ(executed, 5u);
}

TEST(Scheduler, CancelledEventsDoNotCountAgainstRunAllBudget) {
  Scheduler scheduler;
  std::vector<Scheduler::TimerToken> tokens;
  for (Time t = 1; t <= 10; ++t)
    tokens.push_back(scheduler.at(t, [] { FAIL() << "cancelled fired"; }));
  for (auto& token : tokens) token.cancel();
  std::size_t executed = 0;
  scheduler.at(20, [&] { ++executed; });
  // Budget of 1 live event; the ten cancelled ones are free.
  EXPECT_EQ(scheduler.run_all(1), 1u);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(scheduler.now(), 20u);
}

TEST(MessageBus, DeliversWithDefaultDelay) {
  Scheduler scheduler;
  MessageBus<std::string> bus(scheduler, /*default_delay=*/15);
  std::vector<std::pair<EndpointId, std::string>> received;
  bus.attach(2, [&](EndpointId from, const std::string& message) {
    received.emplace_back(from, message);
  });
  bus.send(1, 2, "hello");
  scheduler.run_all();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[0].second, "hello");
  EXPECT_EQ(scheduler.now(), 15u);
}

TEST(MessageBus, PerLinkDelayOverride) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(5, [&](EndpointId, int value) { received.push_back(value); });
  bus.set_delay(1, 5, 50);
  bus.send(1, 5, 111);  // arrives at t=50
  bus.send(2, 5, 222);  // arrives at t=10
  scheduler.run_all();
  EXPECT_EQ(received, (std::vector<int>{222, 111}));
}

TEST(MessageBus, MessagesToUnattachedEndpointAreDropped) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler);
  bus.send(1, 99, 7);
  EXPECT_NO_THROW(scheduler.run_all());
}

TEST(MessageBus, PartitionDropsBothNewAndInFlight) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int value) { received.push_back(value); });
  bus.send(1, 2, 1);                 // in flight when the link dies
  scheduler.run_until(5);
  bus.set_link_down(1, 2, true);
  bus.send(1, 2, 2);                 // dropped immediately
  scheduler.run_all();
  EXPECT_TRUE(received.empty());
  bus.set_link_down(1, 2, false);
  bus.send(1, 2, 3);
  scheduler.run_all();
  EXPECT_EQ(received, (std::vector<int>{3}));
}

TEST(MessageBus, PartitionIsSymmetric) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler);
  bus.set_link_down(7, 3, true);
  EXPECT_TRUE(bus.is_down(3, 7));
  EXPECT_FALSE(bus.is_down(3, 8));
}

TEST(MessageBus, OrderedDeliveryPerLink) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int value) { received.push_back(value); });
  for (int i = 0; i < 10; ++i) bus.send(1, 2, i);
  scheduler.run_all();
  std::vector<int> expected(10);
  for (int i = 0; i < 10; ++i) expected[i] = i;
  EXPECT_EQ(received, expected);
}

TEST(MessageBus, StatsAccountForEveryOutcome) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  bus.attach(2, [](EndpointId, int) {});
  bus.send(1, 2, 1);   // delivered
  bus.send(1, 99, 2);  // no handler at 99
  bus.set_link_down(1, 3, true);
  bus.send(1, 3, 3);   // partitioned
  scheduler.run_all();
  EXPECT_EQ(bus.stats().sent, 3u);
  EXPECT_EQ(bus.stats().delivered, 1u);
  EXPECT_EQ(bus.stats().dropped_unattached, 1u);
  EXPECT_EQ(bus.stats().dropped_link_down, 1u);
  EXPECT_EQ(bus.stats().dropped_faults, 0u);
}

TEST(MessageBus, UnattachedDropIsCountedAtDeliveryTime) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  bus.send(1, 7, 5);
  EXPECT_EQ(bus.stats().dropped_unattached, 0u);  // still in flight
  scheduler.run_all();
  EXPECT_EQ(bus.stats().dropped_unattached, 1u);
}

// ---------------------------------------------------------- fault injection

TEST(FaultPlane, PerfectLinkByDefault) {
  FaultPlane plane(1);
  for (int i = 0; i < 100; ++i) {
    const auto copies = plane.plan(1, 2);
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_EQ(copies[0], 0u);
  }
  EXPECT_EQ(plane.totals().sent, 100u);
  EXPECT_EQ(plane.totals().dropped, 0u);
  EXPECT_EQ(plane.totals().duplicated, 0u);
}

TEST(FaultPlane, CertainDropDiscardsEverything) {
  FaultPlane plane(1);
  plane.set_default_profile({/*drop=*/1.0, /*duplicate=*/0.0, 0});
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(plane.plan(1, 2).empty());
  EXPECT_EQ(plane.totals().dropped, 50u);
}

TEST(FaultPlane, CertainDuplicationDoublesEverySurvivor) {
  FaultPlane plane(1);
  plane.set_default_profile({0.0, /*duplicate=*/1.0, 0});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(plane.plan(1, 2).size(), 2u);
  EXPECT_EQ(plane.totals().duplicated, 50u);
}

TEST(FaultPlane, JitterStaysWithinBound) {
  FaultPlane plane(7);
  plane.set_default_profile({0.0, 0.0, /*jitter_max=*/25});
  Time max_seen = 0;
  for (int i = 0; i < 200; ++i) {
    for (Time extra : plane.plan(1, 2)) {
      EXPECT_LE(extra, 25u);
      max_seen = std::max(max_seen, extra);
    }
  }
  EXPECT_GT(max_seen, 0u);  // jitter actually happens
}

TEST(FaultPlane, PerLinkProfileOverridesDefaultAndIsSymmetric) {
  FaultPlane plane(1);
  plane.set_default_profile({1.0, 0.0, 0});     // default: drop everything
  plane.set_link_profile(3, 4, {0.0, 0.0, 0});  // except the 3-4 link
  EXPECT_TRUE(plane.plan(1, 2).empty());
  EXPECT_FALSE(plane.plan(3, 4).empty());
  EXPECT_FALSE(plane.plan(4, 3).empty());  // links are symmetric
}

TEST(FaultPlane, CountersTrackPerLinkAndGlobally) {
  FaultPlane plane(1);
  plane.set_link_profile(1, 2, {1.0, 0.0, 0});
  plane.plan(1, 2);
  plane.plan(1, 2);
  plane.plan(3, 4);
  plane.note_delivered(3, 4);
  EXPECT_EQ(plane.link_counters(1, 2).sent, 2u);
  EXPECT_EQ(plane.link_counters(1, 2).dropped, 2u);
  EXPECT_EQ(plane.link_counters(3, 4).delivered, 1u);
  EXPECT_EQ(plane.link_counters(5, 6).sent, 0u);  // untouched link
  EXPECT_EQ(plane.totals().sent, 3u);
  EXPECT_EQ(plane.totals().dropped, 2u);
  EXPECT_EQ(plane.totals().delivered, 1u);
}

TEST(FaultPlane, SameSeedReproducesTheSameFateSequence) {
  FaultPlane one(42), two(42);
  const LinkFaultProfile chaos{0.3, 0.2, 40};
  one.set_default_profile(chaos);
  two.set_default_profile(chaos);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(one.plan(1, 2), two.plan(1, 2));
  EXPECT_EQ(one.totals().dropped, two.totals().dropped);
  EXPECT_EQ(one.totals().duplicated, two.totals().duplicated);
}

TEST(MessageBus, FaultPlaneDropsAreCountedOnTheBus) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  FaultPlane plane(1);
  plane.set_default_profile({1.0, 0.0, 0});
  bus.set_fault_plane(&plane);
  int received = 0;
  bus.attach(2, [&](EndpointId, int) { ++received; });
  for (int i = 0; i < 20; ++i) bus.send(1, 2, i);
  scheduler.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.stats().dropped_faults, 20u);
  EXPECT_EQ(plane.totals().dropped, 20u);
}

TEST(MessageBus, FaultPlaneDuplicationDeliversBothCopies) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  FaultPlane plane(1);
  plane.set_default_profile({0.0, 1.0, 0});
  bus.set_fault_plane(&plane);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int v) { received.push_back(v); });
  bus.send(1, 2, 7);
  scheduler.run_all();
  EXPECT_EQ(received, (std::vector<int>{7, 7}));
  EXPECT_EQ(plane.totals().delivered, 2u);
  EXPECT_EQ(bus.stats().delivered, 2u);
}

TEST(Scheduler, RunAllRunawayErrorReportsSimulationState) {
  Scheduler scheduler;
  // A self-rescheduling event never drains the queue.
  std::function<void()> reschedule = [&] {
    scheduler.after(5, reschedule);
  };
  scheduler.after(5, reschedule);
  try {
    scheduler.run_all(/*max_events=*/10);
    FAIL() << "expected the runaway guard to throw";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("runaway"), std::string::npos) << what;
    EXPECT_NE(what.find("now=" + std::to_string(scheduler.now())),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("pending_events=" +
                        std::to_string(scheduler.pending_events())),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("max_events=10"), std::string::npos) << what;
  }
}

TEST(Scheduler, TraceRecordsScheduleFireAndCancel) {
  Scheduler scheduler;
  obs::TraceRecorder trace(64);
  scheduler.set_trace(&trace);
  scheduler.at(10, [] {});
  auto cancelled = scheduler.at(20, [] {});
  cancelled.cancel();
  scheduler.run_all();
  EXPECT_EQ(trace.count(obs::EventType::TimerScheduled), 2u);
  EXPECT_EQ(trace.count(obs::EventType::TimerFired), 1u);
  EXPECT_EQ(trace.count(obs::EventType::TimerCancelled), 1u);
}

TEST(MessageBus, DuplicatedCopyLostToInFlightPartitionKeepsInvariant) {
  // A fault-plane duplicated copy that then hits an in-flight partition
  // used to skew "every send has exactly one terminal outcome";
  // duplicates_scheduled restores the balance.
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  FaultPlane plane(7);
  plane.set_default_profile({0.0, /*duplicate=*/1.0, 0});
  bus.set_fault_plane(&plane);
  int received = 0;
  bus.attach(2, [&](EndpointId, int) { ++received; });
  bus.send(1, 2, 1);
  scheduler.run_until(5);       // both copies still in flight
  bus.set_link_down(1, 2, true);
  scheduler.run_all();
  EXPECT_EQ(received, 0);
  const BusStats& s = bus.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.duplicates_scheduled, 1u);
  EXPECT_EQ(s.dropped_link_down, 2u);  // both copies, each counted
  EXPECT_EQ(s.sent + s.duplicates_scheduled,
            s.delivered + s.dropped_link_down + s.dropped_faults +
                s.dropped_unattached);
}

TEST(MessageBus, DuplicatedCopyToUnattachedEndpointKeepsInvariant) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  FaultPlane plane(7);
  plane.set_default_profile({0.0, /*duplicate=*/1.0, 0});
  bus.set_fault_plane(&plane);
  bus.send(1, 99, 1);  // nobody attached at 99
  scheduler.run_all();
  const BusStats& s = bus.stats();
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.duplicates_scheduled, 1u);
  EXPECT_EQ(s.dropped_unattached, 2u);
  EXPECT_EQ(s.sent + s.duplicates_scheduled,
            s.delivered + s.dropped_link_down + s.dropped_faults +
                s.dropped_unattached);
}

TEST(MessageBus, TraceRecordsSendDeliverDropAndDuplicate) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  obs::TraceRecorder trace(128);
  bus.set_trace(&trace);
  FaultPlane plane(7);
  bus.attach(2, [](EndpointId, int) {});

  bus.send(1, 2, 1);  // clean delivery
  scheduler.run_all();
  EXPECT_EQ(trace.count(obs::EventType::BusSend), 1u);
  EXPECT_EQ(trace.count(obs::EventType::BusDeliver), 1u);

  bus.set_link_down(1, 2, true);
  bus.send(1, 2, 2);  // dropped at send time
  scheduler.run_all();
  bus.set_link_down(1, 2, false);
  const auto drops = [&] {
    std::vector<obs::TraceEvent> out;
    for (const obs::TraceEvent& e : trace.snapshot())
      if (e.type == obs::EventType::BusDrop) out.push_back(e);
    return out;
  }();
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_STREQ(drops[0].detail, "link_down");

  plane.set_default_profile({1.0, 0.0, 0});  // certain drop
  bus.set_fault_plane(&plane);
  bus.send(1, 2, 3);
  scheduler.run_all();
  plane.set_default_profile({0.0, /*duplicate=*/1.0, 0});
  bus.send(1, 2, 4);
  scheduler.run_all();
  EXPECT_EQ(trace.count(obs::EventType::BusDuplicate), 1u);
  std::size_t fault_drops = 0;
  for (const obs::TraceEvent& e : trace.snapshot())
    if (e.type == obs::EventType::BusDrop &&
        std::string(e.detail) == "faults")
      ++fault_drops;
  EXPECT_EQ(fault_drops, 1u);
}

TEST(MessageBus, ExportMetricsSnapshotsDeliveryAccounting) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  bus.attach(2, [](EndpointId, int) {});
  bus.send(1, 2, 1);
  bus.send(1, 3, 2);  // unattached
  scheduler.run_all();
  obs::MetricsRegistry registry;
  bus.export_metrics(registry, "bus");
  EXPECT_EQ(registry.counter("bus.sent").value(), 2u);
  EXPECT_EQ(registry.counter("bus.delivered").value(), 1u);
  EXPECT_EQ(registry.counter("bus.dropped_unattached").value(), 1u);
  EXPECT_EQ(registry.counter("bus.duplicates_scheduled").value(), 0u);
}

TEST(MessageBus, JitterReordersIndependentMessages) {
  Scheduler scheduler;
  MessageBus<int> bus(scheduler, 10);
  FaultPlane plane(3);
  plane.set_default_profile({0.0, 0.0, /*jitter_max=*/50});
  bus.set_fault_plane(&plane);
  std::vector<int> received;
  bus.attach(2, [&](EndpointId, int v) { received.push_back(v); });
  std::vector<int> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(i);
    bus.send(1, 2, i);
  }
  scheduler.run_all();
  auto sorted = received;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, sent);       // nothing lost, nothing duplicated
  EXPECT_NE(received, sent);     // ... but the arrival order shuffled
}

TEST(FaultPlane, RejectsOutOfRangeProfilesNamingTheLink) {
  FaultPlane plane(1);
  EXPECT_THROW(plane.set_default_profile({-0.1, 0.0, 0}), Error);
  EXPECT_THROW(plane.set_default_profile({0.0, 1.5, 0}), Error);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(plane.set_default_profile({nan, 0.0, 0}), Error);
  EXPECT_THROW(plane.set_default_profile({0.0, nan, 0}), Error);
  try {
    plane.set_link_profile(3, 7, {1.5, 0.0, 0});
    FAIL() << "expected a validation error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("link 3-7"), std::string::npos)
        << error.what();
  }
  // A rejected profile must not be installed.
  EXPECT_EQ(plane.profile_of(3, 7).drop, 0.0);
  // The boundary values are legal.
  EXPECT_NO_THROW(plane.set_link_profile(3, 7, {1.0, 1.0, 0}));
}

TEST(FaultPlane, ReorderedCountsDeliveryInvertingSendOrder) {
  FaultPlane plane(1);
  // No jitter, monotonic send times: delivery preserves order.
  for (Time now = 0; now < 50; ++now) plane.plan(1, 2, now);
  EXPECT_EQ(plane.totals().reordered, 0u);
  // A later send planned to arrive before an earlier one is an inversion.
  FaultPlane crossed(1);
  crossed.plan(1, 2, /*now=*/100);
  crossed.plan(1, 2, /*now=*/40);
  EXPECT_EQ(crossed.totals().reordered, 1u);
  EXPECT_EQ(crossed.link_counters(1, 2).reordered, 1u);
  // The two directions of a link are separate flows: the reverse direction
  // saw nothing out of order.
  crossed.plan(2, 1, /*now=*/10);
  EXPECT_EQ(crossed.totals().reordered, 1u);
}

TEST(FaultPlane, JitterProducesReorderingsAndMetricsExportThem) {
  FaultPlane plane(7);
  plane.set_default_profile({0.0, 0.3, /*jitter_max=*/40});
  for (Time now = 0; now < 400; ++now) plane.plan(1, 2, now);
  EXPECT_GT(plane.totals().reordered, 0u);
  obs::MetricsRegistry registry;
  plane.export_metrics(registry, "faults");
  EXPECT_EQ(registry.counter("faults.reordered").value(),
            plane.totals().reordered);
  EXPECT_EQ(registry.counter("faults.sent").value(), plane.totals().sent);
}

TEST(Scheduler, NextEventWithinPeeksWithoutFiring) {
  Scheduler scheduler;
  int fired = 0;
  scheduler.at(50, [&] { ++fired; });
  scheduler.at(100, [&] { ++fired; });
  EXPECT_EQ(scheduler.next_event_within(40), std::nullopt);
  ASSERT_TRUE(scheduler.next_event_within(60).has_value());
  EXPECT_EQ(*scheduler.next_event_within(60), 50u);
  EXPECT_EQ(fired, 0);  // peeking never fires anything
  scheduler.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(*scheduler.next_event_within(1000), 100u);
}

TEST(Scheduler, NextEventWithinSkipsCancelledEventsLikeRunUntil) {
  Scheduler scheduler;
  int fired = 0;
  auto token = scheduler.at(30, [&] { ++fired; });
  scheduler.at(80, [&] { ++fired; });
  token.cancel();
  // The cancelled head inside the bound is discarded (observing its time,
  // exactly as run_until would); the live event behind it is reported.
  EXPECT_EQ(*scheduler.next_event_within(200), 80u);
  EXPECT_EQ(scheduler.now(), 30u);
  scheduler.run_until(80);
  ASSERT_EQ(fired, 1);
  // A cancelled head *past* the bound stays queued.
  auto late = scheduler.at(500, [&] { ++fired; });
  late.cancel();
  EXPECT_EQ(scheduler.next_event_within(400), std::nullopt);
  scheduler.run_all();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace miro::sim
