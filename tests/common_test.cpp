#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/union_find.hpp"

namespace miro {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff = any_diff || a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = values;
  rng.shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(23);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.sample_indices(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t index : sample) EXPECT_LT(index, 100u);
  }
}

TEST(Rng, SampleIndicesRejectsOversizedK) {
  Rng rng(29);
  EXPECT_THROW(rng.sample_indices(5, 6), Error);
}

TEST(Rng, PowerLawIsHeavyTailedAndBounded) {
  Rng rng(31);
  std::size_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.power_law(2.2, 1000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v == 1) ++ones;
  }
  // With alpha 2.2 most of the mass sits at the minimum.
  EXPECT_GT(ones, 2000u);
}

TEST(Summary, MeanMinMax) {
  Summary s;
  s.add(1);
  s.add(5);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Summary, FractionsAtThresholds) {
  Summary s;
  for (double v : {0.0, 0.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(1), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_least(3), 0.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.percentile(50), Error);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  auto cdf = empirical_cdf({3, 1, 2, 2, 5});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cumulative_fraction, cdf[i].cumulative_fraction);
  }
}

TEST(Stats, Log2HistogramBucketsCounts) {
  auto buckets = log2_histogram({1, 1, 2, 3, 4, 9});
  ASSERT_GE(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].count, 2u);  // [1,2)
  EXPECT_EQ(buckets[1].count, 2u);  // [2,4)
  EXPECT_EQ(buckets[2].count, 1u);  // [4,8)
  EXPECT_EQ(buckets[3].count, 1u);  // [8,16)
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto fields = split("a|b||c", '|');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[2], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto fields = split_whitespace("  one\ttwo   three ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "one");
  EXPECT_EQ(fields[2], "three");
}

TEST(Strings, ParseU64HandlesEdges) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Strings, ParseI64HandlesSigns) {
  EXPECT_EQ(parse_i64("-42"), -42);
  EXPECT_EQ(parse_i64("+7"), 7);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(parse_i64("-9223372036854775809"));
  EXPECT_FALSE(parse_i64("9223372036854775808"));
}

TEST(Strings, JoinAndStartsWith) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(starts_with("route-map X", "route-map"));
  EXPECT_FALSE(starts_with("rt", "route"));
}

TEST(Table, AlignsColumnsAndCountsRows) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name   |"), std::string::npos);
  EXPECT_NE(text.find("| longer |"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, CsvQuotesSpecialCells) {
  TextTable table({"a"});
  table.add_row({"has,comma"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"has,comma\""), std::string::npos);
}

TEST(UnionFind, UniteAndFind) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.set_size(2), 3u);
  EXPECT_EQ(uf.set_size(5), 1u);
}

TEST(Summary, EmptyThrowsOnEveryQuery) {
  Summary s;
  EXPECT_THROW(s.percentile(0), Error);
  EXPECT_THROW(s.percentile(100), Error);
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.max(), Error);
  EXPECT_THROW(s.fraction_at_most(1), Error);
  EXPECT_THROW(s.fraction_at_least(1), Error);
}

TEST(Summary, PercentileBoundsAreMinAndMax) {
  Summary s;
  for (double v : {42.0, -3.0, 17.0, 99.5}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), s.min());
  EXPECT_DOUBLE_EQ(s.percentile(100), 99.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), s.max());
  EXPECT_THROW(s.percentile(-0.001), Error);
  EXPECT_THROW(s.percentile(100.001), Error);
}

TEST(Summary, PercentileOnSingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Summary, AddCountZeroAddsNothing) {
  Summary s;
  s.add_count(5.0, 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  s.add_count(5.0, 3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(LogHistogram, SamplesBelowOneAreExcluded) {
  // Buckets start at 1; sub-1 samples must neither crash (log2 of a value
  // < 1 is negative) nor land in any bucket.
  const auto buckets = log2_histogram({0.25, 0.5, 0.99, 1.0, 3.0});
  ASSERT_EQ(buckets.size(), 2u);  // [1,2) and [2,4), from max_value 3
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 1u);
  std::size_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, 2u);  // the three sub-1 samples fell nowhere
}

TEST(LogHistogram, AllSamplesBelowOneYieldNoBuckets) {
  EXPECT_TRUE(log2_histogram({0.1, 0.5, 0.9}).empty());
  EXPECT_TRUE(log2_histogram({}).empty());
}

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a("") is the offset basis; "a" is a published test vector.
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Arena, BumpAllocatesWithinOneSlab) {
  Arena arena(1024);
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  void* first = arena.allocate(100, 8);
  void* second = arena.allocate(100, 8);
  EXPECT_NE(first, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(arena.slab_count(), 1u);
  EXPECT_EQ(arena.reserved_bytes(), 1024u);
  EXPECT_GE(arena.used_bytes(), 200u);
}

TEST(Arena, GrowsAndDedicatesOversizedBlocks) {
  Arena arena(256);
  arena.allocate(200, 8);
  arena.allocate(200, 8);  // overflows the first slab
  EXPECT_EQ(arena.slab_count(), 2u);
  arena.allocate(10000, 8);  // larger than a slab: dedicated block
  EXPECT_EQ(arena.slab_count(), 3u);
  EXPECT_GE(arena.reserved_bytes(), 256u + 256u + 10000u);
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(Arena, RespectsAlignmentAndRejectsBadValues) {
  Arena arena(1024);
  arena.allocate(1, 1);  // misalign the cursor
  void* p = arena.allocate(32, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  EXPECT_THROW(arena.allocate(8, 3), Error);
  EXPECT_THROW(arena.allocate(8, 0), Error);
  EXPECT_THROW(Arena(0), Error);
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena(64);
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(ArenaAllocator, VectorLivesInTheArena) {
  Arena arena(4096);
  std::vector<int, ArenaAllocator<int>> vec{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) vec.push_back(i);
  EXPECT_EQ(vec.size(), 100u);
  EXPECT_EQ(vec[99], 99);
  EXPECT_GT(arena.used_bytes(), 100u * sizeof(int) - 1);
  EXPECT_EQ(vec.get_allocator().arena(), &arena);
  // Moves adopt the allocator: the storage stays inside the arena.
  std::vector<int, ArenaAllocator<int>> moved = std::move(vec);
  EXPECT_EQ(moved.get_allocator().arena(), &arena);
  EXPECT_EQ(moved.size(), 100u);
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> vec;  // default: no arena
  EXPECT_EQ(vec.get_allocator().arena(), nullptr);
  for (int i = 0; i < 100; ++i) vec.push_back(i);
  EXPECT_EQ(vec.size(), 100u);
  // Allocators compare equal iff they share an arena (or both lack one).
  Arena arena(64);
  EXPECT_TRUE(ArenaAllocator<int>() == ArenaAllocator<int>(nullptr));
  EXPECT_FALSE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>(nullptr));
  // The converting constructor carries the arena across value types.
  const ArenaAllocator<long> rebound{ArenaAllocator<int>(&arena)};
  EXPECT_EQ(rebound.arena(), &arena);
}

}  // namespace
}  // namespace miro
