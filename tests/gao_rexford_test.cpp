// Tests for the Gao-Rexford guideline variants (Section 7.2): relaxed
// peer-to-peer preference and backup links.
#include <gtest/gtest.h>

#include "bgp/gao_rexford.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro::bgp {
namespace {

using test::Figure31Topology;

TEST(RelaxedPeering, PeerRouteCanBeatLongerCustomerRoute) {
  // x has a 2-hop customer route and a 1-hop peer route to d. Under
  // Guideline A the customer route wins; under the relaxed band the shorter
  // peer route does.
  topo::AsGraph graph;
  const auto x = graph.add_as(1);
  const auto c = graph.add_as(2);
  const auto c2 = graph.add_as(5);
  const auto p = graph.add_as(3);
  const auto d = graph.add_as(4);
  graph.add_customer_provider(/*provider=*/x, /*customer=*/c);
  graph.add_customer_provider(c, c2);
  graph.add_customer_provider(c2, d);  // customer chain x -> c -> c2 -> d
  graph.add_peer(x, p);
  graph.add_sibling(p, d);  // p reaches d via sibling => customer class at p
  // Conventional: the (longer) customer route wins.
  {
    PathVectorEngine engine(graph, d);
    ASSERT_TRUE(engine.run_to_stable().has_value());
    EXPECT_EQ(engine.best(x).path,
              (std::vector<topo::NodeId>{x, c, c2, d}));
  }
  // Relaxed: the peer-learned route x-p-d is shorter within the shared band.
  {
    PathVectorEngine engine(graph, d, relaxed_peering_hooks(graph));
    ASSERT_TRUE(engine.run_to_stable().has_value());
    EXPECT_EQ(engine.best(x).path, (std::vector<topo::NodeId>{x, p, d}));
  }
}

TEST(RelaxedPeering, ConvergesOnGeneratedTopologies) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    topo::GeneratorParams params = topo::profile("tiny");
    params.seed = seed;
    params.node_count = 120;
    const topo::AsGraph graph = topo::generate(params);
    for (topo::NodeId dest : {topo::NodeId{0}, topo::NodeId{60}}) {
      PathVectorEngine engine(graph, dest, relaxed_peering_hooks(graph));
      EXPECT_TRUE(engine.run_to_stable().has_value())
          << "seed " << seed << " dest " << dest;
    }
  }
}

TEST(BackupLinks, CountOnPath) {
  BackupLinks backups;
  backups.add(1, 2);
  backups.add(3, 4);
  EXPECT_EQ(backups.count_on_path({0, 1, 2, 3}), 1u);
  EXPECT_EQ(backups.count_on_path({2, 1, 4, 3}), 2u);  // order-insensitive
  EXPECT_EQ(backups.count_on_path({0, 5, 6}), 0u);
  EXPECT_TRUE(backups.contains(2, 1));
}

TEST(BackupLinks, UnusedWhilePrimaryExists) {
  // s is dual-homed: primary provider p1, backup provider p2.
  topo::AsGraph graph;
  const auto core = graph.add_as(1);
  const auto p1 = graph.add_as(2);
  const auto p2 = graph.add_as(3);
  const auto s = graph.add_as(4);
  const auto d = graph.add_as(5);
  graph.add_customer_provider(core, p1);
  graph.add_customer_provider(core, p2);
  graph.add_customer_provider(p1, s);
  graph.add_customer_provider(p2, s);  // the backup homing
  graph.add_customer_provider(core, d);
  BackupLinks backups;
  backups.add(p2, s);

  PathVectorEngine engine(graph, d, backup_link_hooks(graph, backups));
  ASSERT_TRUE(engine.run_to_stable().has_value());
  // s routes via the primary even though p2's AS number ties equally well.
  EXPECT_EQ(engine.best(s).path,
            (std::vector<topo::NodeId>{s, p1, core, d}));
}

TEST(BackupLinks, CarryTrafficAfterPrimaryFailure) {
  // Same scenario with the primary homing removed: the backup link must
  // restore connectivity.
  topo::AsGraph graph;
  const auto core = graph.add_as(1);
  const auto p2 = graph.add_as(3);
  const auto s = graph.add_as(4);
  const auto d = graph.add_as(5);
  graph.add_customer_provider(core, p2);
  graph.add_customer_provider(p2, s);
  graph.add_customer_provider(core, d);
  BackupLinks backups;
  backups.add(p2, s);
  PathVectorEngine engine(graph, d, backup_link_hooks(graph, backups));
  ASSERT_TRUE(engine.run_to_stable().has_value());
  ASSERT_TRUE(engine.has_route(s));
  EXPECT_EQ(engine.best(s).path, (std::vector<topo::NodeId>{s, p2, core, d}));
}

TEST(BackupLinks, BackupPeeringRestoresPartitionedCustomerCone) {
  // Two providers with a backup peer link between them; x's only provider
  // is p1, d hangs off p2. Without liberal backup export the peer link
  // would never carry p2's provider routes to x's side... the backup rules
  // must make d reachable for x even though the path crosses the backup
  // peering "valley-free violation" style.
  topo::AsGraph graph;
  const auto p1 = graph.add_as(1);
  const auto p2 = graph.add_as(2);
  const auto x = graph.add_as(3);
  const auto d = graph.add_as(4);
  graph.add_customer_provider(p1, x);
  graph.add_customer_provider(p2, d);
  graph.add_peer(p1, p2);
  BackupLinks backups;
  backups.add(p1, p2);
  PathVectorEngine engine(graph, d, backup_link_hooks(graph, backups));
  ASSERT_TRUE(engine.run_to_stable().has_value());
  ASSERT_TRUE(engine.has_route(x));
  EXPECT_EQ(engine.best(x).path,
            (std::vector<topo::NodeId>{x, p1, p2, d}));
}

TEST(BackupLinks, ConvergesOnGeneratedTopologiesWithRandomBackups) {
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    topo::GeneratorParams params = topo::profile("tiny");
    params.seed = seed;
    params.node_count = 120;
    const topo::AsGraph graph = topo::generate(params);
    // Mark a handful of random links as backups.
    BackupLinks backups;
    Rng rng(seed);
    for (int i = 0; i < 8; ++i) {
      const auto node =
          static_cast<topo::NodeId>(rng.next_below(graph.node_count()));
      if (graph.degree(node) == 0) continue;
      const auto& neighbor =
          graph.neighbors(node)[rng.next_below(graph.degree(node))];
      backups.add(node, neighbor.node);
    }
    for (topo::NodeId dest : {topo::NodeId{0}, topo::NodeId{60}}) {
      PathVectorEngine engine(graph, dest,
                              backup_link_hooks(graph, backups));
      EXPECT_TRUE(engine.run_to_stable().has_value())
          << "seed " << seed << " dest " << dest;
      // Backup preference never reduces reachability.
      PathVectorEngine plain(graph, dest);
      ASSERT_TRUE(plain.run_to_stable().has_value());
      for (topo::NodeId node = 0; node < graph.node_count(); ++node)
        EXPECT_GE(engine.has_route(node), plain.has_route(node))
            << "node " << node;
    }
  }
}

}  // namespace
}  // namespace miro::bgp
