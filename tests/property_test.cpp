// Cross-cutting property tests: the AS-path regex against std::regex on a
// random pattern corpus, per-prefix path divergence in the data plane, and
// non-adjacent negotiation through the control plane.
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "common/rng.hpp"
#include "core/alternates.hpp"
#include "core/protocol.hpp"
#include "dataplane/forwarding.hpp"
#include "policy/aspath_regex.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro {
namespace {

// ------------------------------------------------- regex differential test

/// Generates random patterns from the std::regex-compatible subset (no `_`,
/// whose boundary semantics ECMAScript lacks) and random subject strings;
/// our engine must agree with std::regex_search on every pair.
TEST(AsPathRegexProperty, AgreesWithStdRegexOnSharedSubset) {
  Rng rng(20060911);
  const std::string atoms = "0123456789 ";
  std::size_t compared = 0;
  for (int trial = 0; trial < 400; ++trial) {
    // Build a random pattern: runs of literals with optional operators and
    // at most one group/alternation to keep std::regex happy.
    std::string pattern;
    const int pieces = 1 + static_cast<int>(rng.next_below(5));
    for (int p = 0; p < pieces; ++p) {
      const double kind = rng.uniform();
      if (kind < 0.15) {
        pattern += '.';
      } else if (kind < 0.3 && !pattern.empty() && pattern.back() != '*' &&
                 pattern.back() != '+' && pattern.back() != '?' &&
                 pattern.back() != '(') {
        pattern += "*+?"[rng.next_below(3)];
      } else if (kind < 0.4) {
        pattern += '(';
        pattern += atoms[rng.next_below(atoms.size() - 1)];
        pattern += '|';
        pattern += atoms[rng.next_below(atoms.size() - 1)];
        pattern += ')';
      } else {
        pattern += atoms[rng.next_below(atoms.size())];
      }
    }

    policy::AsPathRegex ours(""); // placeholder; re-assign below
    std::regex theirs;
    try {
      ours = policy::AsPathRegex(pattern);
      theirs = std::regex(pattern, std::regex::ECMAScript);
    } catch (...) {
      continue;  // both or either rejected a degenerate pattern: skip
    }

    for (int s = 0; s < 12; ++s) {
      std::string subject;
      const std::size_t len = rng.next_below(10);
      for (std::size_t i = 0; i < len; ++i)
        subject += atoms[rng.next_below(atoms.size())];
      ++compared;
      EXPECT_EQ(ours.matches_text(subject),
                std::regex_search(subject, theirs))
          << "pattern '" << pattern << "' subject '" << subject << "'";
    }
  }
  EXPECT_GT(compared, 2000u);
}

// ------------------------------------------ per-prefix path divergence

TEST(MultiPrefix, PrefixesOfOneOriginCanTakeDifferentPaths) {
  // "different IP prefixes originating from the same AS can take different
  // AS paths simultaneously" (Section 1.1) — with MIRO, even from the same
  // source: one prefix rides the tunnel, the other the default.
  test::Figure31Topology fig;
  core::RouteStore store(fig.graph);
  dataplane::AsLevelDataPlane plane(store);

  // F originates a second, more specific prefix.
  const topo::AsNumber f_asn = fig.graph.as_number(fig.f);
  const net::Prefix specific(
      net::Ipv4Address((static_cast<std::uint32_t>(f_asn) << 16) | 0x4000),
      18);
  plane.add_prefix(fig.f, specific);

  // Negotiate the tunnel but classify only the specific prefix into it.
  bgp::StableRouteSolver solver(fig.graph);
  const bgp::RoutingTree tree = solver.solve(fig.f);
  core::AlternatesEngine engine(solver);
  const auto result = engine.avoid_as(tree, fig.a, fig.e,
                                      core::ExportPolicy::RespectExport);
  ASSERT_TRUE(result.success);
  dataplane::MatchRule rule;
  rule.destination_prefix = specific;
  plane.install_tunnel(*result.chosen, rule);

  net::Packet to_specific(plane.host_address(fig.a),
                          net::Ipv4Address(specific.address().value() | 1));
  net::Packet to_general(plane.host_address(fig.a),
                         plane.host_address(fig.f));
  const auto specific_trace = plane.trace(std::move(to_specific), fig.a);
  const auto general_trace = plane.trace(std::move(to_general), fig.a);
  ASSERT_TRUE(specific_trace.delivered && general_trace.delivered);
  EXPECT_FALSE(specific_trace.traversed(fig.e));
  EXPECT_TRUE(general_trace.traversed(fig.e));
  EXPECT_NE(specific_trace.as_path(), general_trace.as_path());
}

// ----------------------------------------- non-adjacent negotiation

TEST(Protocol, NonAdjacentRequesterNegotiatesThroughArrivalNeighbor) {
  // "Allowing negotiation with non-adjacent ASes provides greater
  // flexibility" (Section 3.3): D (not adjacent to C) asks C for routes;
  // C evaluates exports against the link its traffic will arrive on (E-C).
  test::Figure31Topology fig;
  core::RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  core::ResponderConfig responder_config;
  responder_config.policy = core::ExportPolicy::RespectExport;
  core::MiroAgent agent_d(fig.d, store, bus);
  core::MiroAgent agent_c(fig.c, store, bus, responder_config);

  // D's default to F is D-E-F; suppose it negotiates with C (two hops away,
  // reachable via E) for routes toward F, arriving through E.
  std::optional<core::NegotiationOutcome> outcome;
  agent_d.request(fig.c, /*arrival_neighbor=*/fig.e, /*destination=*/fig.f,
                  /*avoid=*/std::nullopt, /*max_cost=*/std::nullopt,
                  [&outcome](const core::NegotiationOutcome& o) {
                    outcome = o;
                  });
  scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  // C's candidates toward F: its own customer route CF (class Customer) is
  // exportable to its peer E; the peer route via E would loop. So the
  // negotiation succeeds with C-F.
  ASSERT_TRUE(outcome->established);
  const core::TunnelRecord* record =
      agent_c.tunnels().find(outcome->tunnel_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->bound_route.path,
            (std::vector<topo::NodeId>{fig.c, fig.f}));
  EXPECT_EQ(record->remote_as, fig.d);
}

TEST(Protocol, BogusArrivalNeighborFallsBackToConservativeExports) {
  // A requester claiming a non-adjacent arrival neighbor gets the
  // provider-grade (most conservative) export treatment.
  test::Figure31Topology fig;
  core::RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  core::ResponderConfig responder_config;
  responder_config.policy = core::ExportPolicy::RespectExport;
  core::MiroAgent agent_a(fig.a, store, bus);
  core::MiroAgent agent_b(fig.b, store, bus, responder_config);

  std::optional<core::NegotiationOutcome> outcome;
  agent_a.request(fig.b, /*arrival_neighbor=*/fig.f,  // not B's neighbor
                  fig.f, /*avoid=*/fig.e, std::nullopt,
                  [&outcome](const core::NegotiationOutcome& o) {
                    outcome = o;
                  });
  scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  // Toward a provider, only customer routes flow — and B's only clean
  // alternate (BCF) is a peer route, so nothing is offered.
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(outcome->offers_received, 0u);
}

}  // namespace
}  // namespace miro
