#include <gtest/gtest.h>

#include "core/alternates.hpp"
#include "dataplane/classifier.hpp"
#include "dataplane/encapsulation.hpp"
#include "dataplane/forwarding.hpp"
#include "scenarios.hpp"

namespace miro::dataplane {
namespace {

using core::AlternatesEngine;
using core::ExportPolicy;
using core::NegotiationScope;
using core::RouteStore;
using net::Ipv4Address;
using net::Packet;
using net::Prefix;
using test::Figure31Topology;

// ---------------------------------------------------------------- matching

TEST(MatchRule, EmptyRuleMatchesEverything) {
  MatchRule rule;
  Packet packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(6, 0, 0, 1));
  EXPECT_TRUE(rule.matches(packet));
}

TEST(MatchRule, FieldsAreConjunctive) {
  MatchRule rule;
  rule.destination_prefix = *Prefix::parse("6.0.0.0/8");
  rule.destination_port = 443;
  net::FlowLabel https{1000, 443, 6, 0};
  net::FlowLabel http{1000, 80, 6, 0};
  EXPECT_TRUE(rule.matches(
      Packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(6, 0, 0, 1), https)));
  EXPECT_FALSE(rule.matches(
      Packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(6, 0, 0, 1), http)));
  EXPECT_FALSE(rule.matches(
      Packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(7, 0, 0, 1), https)));
}

TEST(MatchRule, TypeOfServiceAndProtocol) {
  MatchRule rule;
  rule.protocol = 17;           // UDP
  rule.type_of_service = 0x2e;  // EF
  net::FlowLabel ef_udp{0, 0, 17, 0x2e};
  net::FlowLabel plain{0, 0, 6, 0};
  EXPECT_TRUE(rule.matches(Packet(Ipv4Address(1), Ipv4Address(2), ef_udp)));
  EXPECT_FALSE(rule.matches(Packet(Ipv4Address(1), Ipv4Address(2), plain)));
}

TEST(Classifier, FirstMatchWins) {
  Classifier<int> classifier;
  MatchRule broad;
  MatchRule narrow;
  narrow.destination_port = 80;
  classifier.add_rule(narrow, 1);
  classifier.add_rule(broad, 2);
  net::FlowLabel web{1000, 80, 6, 0};
  const int* action = classifier.classify(
      Packet(Ipv4Address(1), Ipv4Address(2), web));
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(*action, 1);
  net::FlowLabel ssh{1000, 22, 6, 0};
  action = classifier.classify(Packet(Ipv4Address(1), Ipv4Address(2), ssh));
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(*action, 2);
}

TEST(Classifier, NoMatchReturnsNull) {
  Classifier<int> classifier;
  MatchRule rule;
  rule.destination_port = 80;
  classifier.add_rule(rule, 1);
  net::FlowLabel ssh{1000, 22, 6, 0};
  EXPECT_EQ(classifier.classify(Packet(Ipv4Address(1), Ipv4Address(2), ssh)),
            nullptr);
}

TEST(FlowSplitter, FlowsStickToOnePath) {
  FlowSplitter splitter({1, 1});
  net::FlowLabel flow{1234, 80, 6, 0};
  Packet packet(Ipv4Address(1), Ipv4Address(2), flow);
  const std::size_t path = splitter.path_for(packet);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(splitter.path_for(packet), path);  // deterministic
}

TEST(FlowSplitter, WeightsApproximateSplit) {
  FlowSplitter splitter({3, 1});
  std::size_t counts[2] = {0, 0};
  for (std::uint16_t port = 0; port < 4000; ++port) {
    net::FlowLabel flow{port, 80, 6, 0};
    Packet packet(Ipv4Address(1, 2, 3, 4), Ipv4Address(5, 6, 7, 8), flow);
    ++counts[splitter.path_for(packet)];
  }
  const double share =
      static_cast<double>(counts[0]) / (counts[0] + counts[1]);
  EXPECT_NEAR(share, 0.75, 0.04);
}

TEST(FlowSplitter, RejectsDegenerateWeights) {
  EXPECT_THROW(FlowSplitter({}), Error);
  EXPECT_THROW(FlowSplitter({0, 0}), Error);
  EXPECT_THROW(FlowSplitter({-1, 2}), Error);
}

// -------------------------------------------------------------- forwarding

struct ForwardingHarness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  AsLevelDataPlane plane{store};

  Packet packet_to_f(net::FlowLabel flow = {}) {
    return Packet(plane.host_address(fig.a), plane.host_address(fig.f),
                  flow);
  }
};

TEST(Forwarding, DefaultPathFollowsBgp) {
  ForwardingHarness h;
  const auto trace = h.plane.trace(h.packet_to_f(), h.fig.a);
  EXPECT_TRUE(trace.delivered);
  EXPECT_EQ(trace.as_path(), (std::vector<topo::NodeId>{h.fig.a, h.fig.b,
                                                        h.fig.e, h.fig.f}));
  EXPECT_TRUE(trace.traversed(h.fig.e));
}

TEST(Forwarding, TunnelDivertsAroundE) {
  ForwardingHarness h;
  // Negotiate the alternate A-B-C-F and install it in the data plane.
  bgp::StableRouteSolver solver(h.fig.graph);
  const bgp::RoutingTree tree = solver.solve(h.fig.f);
  AlternatesEngine engine(solver);
  const auto result = engine.avoid_as(tree, h.fig.a, h.fig.e,
                                      ExportPolicy::RespectExport);
  ASSERT_TRUE(result.success && result.chosen);
  h.plane.install_tunnel(*result.chosen);

  const auto trace = h.plane.trace(h.packet_to_f(), h.fig.a);
  EXPECT_TRUE(trace.delivered);
  EXPECT_FALSE(trace.traversed(h.fig.e)) << trace.to_string(h.fig.graph);
  EXPECT_EQ(trace.as_path(), (std::vector<topo::NodeId>{h.fig.a, h.fig.b,
                                                        h.fig.c, h.fig.f}));
  // Encapsulated at A, decapsulated (directed forwarding) at B.
  EXPECT_EQ(trace.hops.front().action, TraceHop::Action::Encapsulate);
  bool decapped_at_b = false;
  for (const TraceHop& hop : trace.hops)
    if (hop.as == h.fig.b && hop.action == TraceHop::Action::Decapsulate)
      decapped_at_b = true;
  EXPECT_TRUE(decapped_at_b);
}

TEST(Forwarding, ClassifierSplitsByPort) {
  // Real-time traffic (UDP) takes the tunnel; best-effort stays on BEF
  // (the Section 3.5 policy example).
  ForwardingHarness h;
  bgp::StableRouteSolver solver(h.fig.graph);
  const bgp::RoutingTree tree = solver.solve(h.fig.f);
  AlternatesEngine engine(solver);
  const auto result = engine.avoid_as(tree, h.fig.a, h.fig.e,
                                      ExportPolicy::RespectExport);
  ASSERT_TRUE(result.success && result.chosen);
  MatchRule udp_only;
  udp_only.protocol = 17;
  h.plane.install_tunnel(*result.chosen, udp_only);

  net::FlowLabel udp{5000, 5001, 17, 0};
  net::FlowLabel tcp{5000, 80, 6, 0};
  const auto udp_trace = h.plane.trace(h.packet_to_f(udp), h.fig.a);
  const auto tcp_trace = h.plane.trace(h.packet_to_f(tcp), h.fig.a);
  EXPECT_FALSE(udp_trace.traversed(h.fig.e));
  EXPECT_TRUE(tcp_trace.traversed(h.fig.e));
  EXPECT_TRUE(udp_trace.delivered && tcp_trace.delivered);
}

TEST(Forwarding, RemovedTunnelDropsAtResponder) {
  ForwardingHarness h;
  bgp::StableRouteSolver solver(h.fig.graph);
  const bgp::RoutingTree tree = solver.solve(h.fig.f);
  AlternatesEngine engine(solver);
  const auto result = engine.avoid_as(tree, h.fig.a, h.fig.e,
                                      ExportPolicy::RespectExport);
  ASSERT_TRUE(result.success && result.chosen);
  const auto id = h.plane.install_tunnel(*result.chosen);
  h.plane.remove_tunnel(result.chosen->responder, id);
  const auto trace = h.plane.trace(h.packet_to_f(), h.fig.a);
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.hops.back().action, TraceHop::Action::Drop);
  EXPECT_EQ(trace.hops.back().as, h.fig.b);  // fails closed at the endpoint
}

TEST(Forwarding, MoreSpecificPrefixWins) {
  ForwardingHarness h;
  // F announces a more-specific /24 out of E's address space... rather:
  // give F a second, more specific prefix nested in A's view of E's /16.
  const topo::AsNumber e_asn = h.fig.graph.as_number(h.fig.e);
  const Prefix more_specific(
      Ipv4Address((static_cast<std::uint32_t>(e_asn) << 16) | 0x100), 24);
  h.plane.add_prefix(h.fig.f, more_specific);
  // A packet into the /24 must route toward F, not E.
  Packet packet(h.plane.host_address(h.fig.a),
                Ipv4Address(more_specific.address().value() | 1));
  const auto trace = h.plane.trace(packet, h.fig.a);
  EXPECT_TRUE(trace.delivered);
  EXPECT_EQ(trace.hops.back().as, h.fig.f);
}

TEST(Forwarding, UnknownDestinationDrops) {
  ForwardingHarness h;
  Packet packet(h.plane.host_address(h.fig.a), Ipv4Address(200, 0, 0, 1));
  const auto trace = h.plane.trace(packet, h.fig.a);
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.hops.back().action, TraceHop::Action::Drop);
}

// ----------------------------------------------------------- encapsulation

struct EndpointHarness {
  // One AS shaped like Figure 4.1: ingress R1, egresses R2 (to V and W) and
  // R3 (to W).
  TunnelEndpointAs make(EncapsulationScheme scheme) {
    TunnelEndpointAs as_x(scheme, *Prefix::parse("12.34.56.0/24"));
    r1 = as_x.add_router();
    r2 = as_x.add_router();
    r3 = as_x.add_router();
    as_x.add_internal_link(r1, r2, 5);
    as_x.add_internal_link(r1, r3, 10);
    as_x.add_internal_link(r2, r3, 4);
    to_v = as_x.add_exit_link(r2, 100);
    to_w2 = as_x.add_exit_link(r2, 200);
    to_w3 = as_x.add_exit_link(r3, 200);
    return as_x;
  }
  TunnelEndpointAs::RouterId r1 = 0, r2 = 0, r3 = 0;
  TunnelEndpointAs::ExitLinkId to_v = 0, to_w2 = 0, to_w3 = 0;

  static Packet encapsulated(Ipv4Address endpoint,
                             std::optional<net::TunnelId> id) {
    Packet packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(9, 9, 9, 9));
    packet.encapsulate(Ipv4Address(1, 0, 0, 1), endpoint, id);
    return packet;
  }
};

class EncapsulationSchemeTest
    : public ::testing::TestWithParam<EncapsulationScheme> {};

TEST_P(EncapsulationSchemeTest, DeliversToNegotiatedExitLink) {
  EndpointHarness h;
  TunnelEndpointAs as_x = h.make(GetParam());
  const auto endpoint = as_x.establish_tunnel(h.to_v);
  const auto record = as_x.deliver(
      EndpointHarness::encapsulated(endpoint.address, endpoint.id), h.r1);
  EXPECT_TRUE(record.delivered);
  ASSERT_TRUE(record.exit);
  EXPECT_EQ(*record.exit, h.to_v);
  ASSERT_FALSE(record.router_path.empty());
  EXPECT_EQ(record.router_path.front(), h.r1);
  EXPECT_EQ(record.router_path.back(), h.r2);
}

TEST_P(EncapsulationSchemeTest, RemovedTunnelIsNotDeliverable) {
  EndpointHarness h;
  TunnelEndpointAs as_x = h.make(GetParam());
  const auto endpoint = as_x.establish_tunnel(h.to_w3);
  as_x.remove_tunnel(endpoint.id);
  const auto record = as_x.deliver(
      EndpointHarness::encapsulated(endpoint.address, endpoint.id), h.r1);
  // Exit-link addressing still resolves by address alone; the other two
  // schemes depend on live tunnel state and must drop.
  if (GetParam() == EncapsulationScheme::ExitLinkAddress) {
    EXPECT_TRUE(record.delivered);
  } else {
    EXPECT_FALSE(record.delivered);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, EncapsulationSchemeTest,
    ::testing::Values(EncapsulationScheme::ExitLinkAddress,
                      EncapsulationScheme::EgressRouterAddress,
                      EncapsulationScheme::SharedAddress));

TEST(Encapsulation, ExitLinkSchemeNeedsNoTunnelId) {
  EndpointHarness h;
  TunnelEndpointAs as_x = h.make(EncapsulationScheme::ExitLinkAddress);
  const auto endpoint = as_x.establish_tunnel(h.to_w2);
  const auto record = as_x.deliver(
      EndpointHarness::encapsulated(endpoint.address, std::nullopt), h.r1);
  EXPECT_TRUE(record.delivered);
  EXPECT_EQ(*record.exit, h.to_w2);
}

TEST(Encapsulation, SharedSchemeRewritesAtIngress) {
  EndpointHarness h;
  TunnelEndpointAs as_x = h.make(EncapsulationScheme::SharedAddress);
  const auto t1 = as_x.establish_tunnel(h.to_v);
  const auto t2 = as_x.establish_tunnel(h.to_w3);
  EXPECT_EQ(t1.address, t2.address);  // one address for all tunnels
  EXPECT_EQ(t1.address, as_x.shared_address());
  const auto record = as_x.deliver(
      EndpointHarness::encapsulated(t2.address, t2.id), h.r1);
  EXPECT_TRUE(record.delivered);
  EXPECT_TRUE(record.rewritten);
  EXPECT_EQ(*record.exit, h.to_w3);
  EXPECT_EQ(record.router_path.back(), h.r3);
}

TEST(Encapsulation, ExposedAddressCountsReflectPrivacyTradeoff) {
  for (auto scheme : {EncapsulationScheme::ExitLinkAddress,
                      EncapsulationScheme::EgressRouterAddress,
                      EncapsulationScheme::SharedAddress}) {
    EndpointHarness h;
    TunnelEndpointAs as_x = h.make(scheme);
    as_x.establish_tunnel(h.to_v);
    as_x.establish_tunnel(h.to_w2);
    as_x.establish_tunnel(h.to_w3);
    switch (scheme) {
      case EncapsulationScheme::ExitLinkAddress:
        EXPECT_EQ(as_x.exposed_address_count(), 3u);  // one per exit link
        break;
      case EncapsulationScheme::EgressRouterAddress:
        EXPECT_EQ(as_x.exposed_address_count(), 2u);  // R2 and R3
        break;
      case EncapsulationScheme::SharedAddress:
        EXPECT_EQ(as_x.exposed_address_count(), 1u);
        break;
    }
  }
}

TEST(Encapsulation, WrongTunnelIdDrops) {
  EndpointHarness h;
  TunnelEndpointAs as_x = h.make(EncapsulationScheme::EgressRouterAddress);
  const auto endpoint = as_x.establish_tunnel(h.to_v);
  const auto record = as_x.deliver(
      EndpointHarness::encapsulated(endpoint.address, endpoint.id + 77),
      h.r1);
  EXPECT_FALSE(record.delivered);
}

}  // namespace
}  // namespace miro::dataplane
