// Tests for the deterministic parallel execution layer (common/parallel)
// and its observability integration (per-chunk profiler registries).
//
// The first few tests assert that inline execution paths never touch the
// pool; they rely on running before any test that actually dispatches, so
// keep them at the top of this file (gtest runs tests in registration
// order).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.hpp"
#include "eval/avoid_as.hpp"
#include "eval/experiments.hpp"
#include "eval/path_diversity.hpp"
#include "eval/te_comparison.hpp"
#include "eval/traffic_control.hpp"
#include "obs/profile.hpp"

namespace miro {
namespace {

/// Sets the pool size for one test and restores automatic resolution.
struct ThreadCountGuard {
  explicit ThreadCountGuard(std::size_t count) { par::set_thread_count(count); }
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

// ------------------------------------------------------------ inline paths

TEST(Parallel, ThreadsOneBypassesPoolEntirely) {
  ThreadCountGuard guard(1);
  EXPECT_EQ(par::thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> calls;
  par::parallel_for(100, [&](std::size_t begin, std::size_t end,
                             std::size_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls.emplace_back(begin, end, chunk);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_tuple(std::size_t{0}, std::size_t{100},
                                      std::size_t{0}));
  // The single-thread path must not even start the pool.
  EXPECT_EQ(par::pool_threads_running(), 0u);
}

TEST(Parallel, ZeroItemsRunsNothing) {
  ThreadCountGuard guard(4);
  bool called = false;
  par::parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
  EXPECT_EQ(par::chunk_count(0), 0u);
  const auto mapped =
      par::parallel_map(std::vector<int>{}, [](const int& v) { return v; });
  EXPECT_TRUE(mapped.empty());
  EXPECT_EQ(par::pool_threads_running(), 0u);
}

TEST(Parallel, SingleItemRunsInlineEvenWithManyThreads) {
  ThreadCountGuard guard(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  par::parallel_for(1, [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    EXPECT_EQ(chunk, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(par::chunk_count(1), 1u);
  EXPECT_EQ(par::pool_threads_running(), 0u);
}

// ------------------------------------------------------------ dispatching

TEST(Parallel, StaticChunkingCoversAllIndicesExactlyOnce) {
  ThreadCountGuard guard(4);
  const std::size_t count = 103;  // not divisible by 4
  std::vector<std::atomic<int>> seen(count);
  std::mutex mutex;
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
  par::parallel_for(count, [&](std::size_t begin, std::size_t end,
                               std::size_t chunk) {
    for (std::size_t i = begin; i != end; ++i) seen[i].fetch_add(1);
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(begin, end, chunk);
  });
  for (std::size_t i = 0; i < count; ++i)
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;

  ASSERT_EQ(chunks.size(), par::chunk_count(count));
  ASSERT_EQ(chunks.size(), 4u);
  // Sorted by chunk index, the chunks form a contiguous balanced partition
  // whose boundaries depend only on (count, thread_count).
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) {
              return std::get<2>(a) < std::get<2>(b);
            });
  std::size_t expected_begin = 0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const auto [begin, end, chunk] = chunks[c];
    EXPECT_EQ(chunk, c);
    EXPECT_EQ(begin, expected_begin);
    const std::size_t size = end - begin;
    EXPECT_TRUE(size == 25 || size == 26) << "chunk " << c;
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, count);
  EXPECT_GE(par::pool_threads_running(), 1u);
}

TEST(Parallel, MoreThreadsThanItemsMakesOneChunkPerItem) {
  ThreadCountGuard guard(8);
  EXPECT_EQ(par::chunk_count(3), 3u);
  std::vector<std::atomic<int>> seen(3);
  par::parallel_for(3, [&](std::size_t begin, std::size_t end,
                           std::size_t chunk) {
    EXPECT_EQ(end, begin + 1);
    EXPECT_EQ(chunk, begin);
    seen[begin].fetch_add(1);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(Parallel, ParallelMapPreservesItemOrder) {
  ThreadCountGuard guard(4);
  std::vector<int> items(500);
  for (int i = 0; i < 500; ++i) items[i] = i;
  const auto squares =
      par::parallel_map(items, [](const int& v) { return v * v; });
  ASSERT_EQ(squares.size(), items.size());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(squares[i], i * i);
}

TEST(Parallel, LowestChunkExceptionWinsAndPoolSurvives) {
  ThreadCountGuard guard(4);
  // 8 items across 4 chunks; chunks 1 and 3 throw. The rethrow on the
  // calling thread must deterministically pick chunk 1's exception.
  try {
    par::parallel_for(8, [](std::size_t, std::size_t, std::size_t chunk) {
      if (chunk == 1 || chunk == 3)
        throw std::runtime_error("boom from chunk " + std::to_string(chunk));
    });
    FAIL() << "parallel_for swallowed the worker exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom from chunk 1");
  }
  // The pool keeps working after a failed region.
  std::atomic<int> done{0};
  par::parallel_for(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    done.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(done.load(), 8);
}

TEST(Parallel, NestedParallelForRunsInlineOnTheWorker) {
  ThreadCountGuard guard(4);
  std::vector<std::atomic<int>> inner_seen(40);
  std::atomic<int> inner_calls{0};
  par::parallel_for(4, [&](std::size_t begin, std::size_t end,
                           std::size_t) {
    for (std::size_t i = begin; i != end; ++i) {
      const std::thread::id worker = std::this_thread::get_id();
      // A nested region must not re-enter the pool (deadlock risk with
      // every worker blocked waiting); it runs inline as one chunk.
      par::parallel_for(10, [&, worker](std::size_t ib, std::size_t ie,
                                        std::size_t chunk) {
        EXPECT_EQ(std::this_thread::get_id(), worker);
        EXPECT_EQ(chunk, 0u);
        inner_calls.fetch_add(1);
        for (std::size_t j = ib; j != ie; ++j)
          inner_seen[i * 10 + j].fetch_add(1);
      });
    }
  });
  EXPECT_EQ(inner_calls.load(), 4);
  for (std::size_t i = 0; i < inner_seen.size(); ++i)
    EXPECT_EQ(inner_seen[i].load(), 1) << "inner index " << i;
}

TEST(Parallel, ThreadCountOverrideAndChunkCount) {
  ThreadCountGuard guard(3);
  EXPECT_EQ(par::thread_count(), 3u);
  EXPECT_EQ(par::chunk_count(2), 2u);
  EXPECT_EQ(par::chunk_count(3), 3u);
  EXPECT_EQ(par::chunk_count(100), 3u);
  par::set_thread_count(0);
  EXPECT_GE(par::thread_count(), 1u);  // auto resolution
}

// ------------------------------------------------------ worker context hooks

class CountingContext final : public par::WorkerContext {
 public:
  void region_begin(std::size_t chunks) override {
    begin_calls_.fetch_add(1);
    chunks_.store(chunks);
  }
  void chunk_enter(std::size_t) override { enters_.fetch_add(1); }
  void chunk_exit(std::size_t) override { exits_.fetch_add(1); }
  void region_end() override { end_calls_.fetch_add(1); }

  int begins() const { return begin_calls_.load(); }
  int ends() const { return end_calls_.load(); }
  int enters() const { return enters_.load(); }
  int exits() const { return exits_.load(); }
  std::size_t chunks() const { return chunks_.load(); }

 private:
  std::atomic<int> begin_calls_{0}, end_calls_{0}, enters_{0}, exits_{0};
  std::atomic<std::size_t> chunks_{0};
};

TEST(Parallel, WorkerContextHooksFireOncePerChunk) {
  ThreadCountGuard guard(4);
  CountingContext context;
  par::set_worker_context(&context);
  par::parallel_for(8, [](std::size_t, std::size_t, std::size_t) {});
  par::set_worker_context(nullptr);
  EXPECT_EQ(context.begins(), 1);
  EXPECT_EQ(context.ends(), 1);
  EXPECT_EQ(context.chunks(), 4u);
  EXPECT_EQ(context.enters(), 4);
  EXPECT_EQ(context.exits(), 4);
}

TEST(Parallel, WorkerContextSkippedOnInlineRuns) {
  ThreadCountGuard guard(1);
  CountingContext context;
  par::set_worker_context(&context);
  par::parallel_for(100, [](std::size_t, std::size_t, std::size_t) {});
  par::set_worker_context(nullptr);
  EXPECT_EQ(context.begins(), 0);
  EXPECT_EQ(context.enters(), 0);
}

// ------------------------------------------------------------ profiler merge

TEST(ParallelProfile, PerChunkRegistriesMergeIntoAttachedRegistry) {
  ThreadCountGuard guard(4);
  obs::ProfileRegistry registry;
  obs::set_profile(&registry);
  par::parallel_for(8, [](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i != end; ++i) {
      // Workers resolve obs::profile() to their per-chunk registry.
      obs::ScopedSpan span(obs::profile(), "parallel_test/work", "test");
    }
  });
  obs::set_profile(nullptr);
  ASSERT_EQ(registry.open_spans(), 0u);
  const auto it = registry.by_name().find("parallel_test/work");
  ASSERT_NE(it, registry.by_name().end());
  EXPECT_EQ(it->second.count, 8u);
  EXPECT_EQ(registry.by_category().at("test").count, 8u);
  EXPECT_EQ(registry.spans_recorded(), 8u);
}

TEST(ParallelProfile, WorkersSeeNullRegistryWhenProfilingDisabled) {
  ThreadCountGuard guard(4);
  std::atomic<int> non_null{0};
  par::parallel_for(8, [&](std::size_t, std::size_t, std::size_t) {
    if (obs::profile() != nullptr) non_null.fetch_add(1);
  });
  EXPECT_EQ(non_null.load(), 0);
}

TEST(ParallelProfile, MergeFromFoldsAggregatesAndShiftsSpanTimestamps) {
  std::uint64_t now_a = 1000;
  obs::ProfileRegistry a;
  a.set_clock([&] { return now_a; });  // origin 1000
  {
    obs::ScopedSpan span(&a, "x", "cat");
    now_a = 1500;
  }  // recorded on a's timeline as [0, 500)

  std::uint64_t now_b = 5000;
  obs::ProfileRegistry b;
  b.set_clock([&] { return now_b; });  // origin 5000
  {
    obs::ScopedSpan span(&b, "x", "cat");
    now_b = 5200;
  }  // recorded on b's timeline as [0, 200)

  a.merge_from(b);
  EXPECT_EQ(a.by_name().at("x").count, 2u);
  EXPECT_EQ(a.by_name().at("x").total_ns, 700u);
  EXPECT_EQ(a.by_name().at("x").max_ns, 500u);
  EXPECT_EQ(a.by_category().at("cat").count, 2u);
  ASSERT_EQ(a.spans().size(), 2u);
  // b's span lands on a's timeline shifted by the origin delta (4000).
  EXPECT_EQ(a.spans()[1].begin_ns, 4000u);
  EXPECT_EQ(a.spans()[1].end_ns, 4200u);
  EXPECT_EQ(a.spans_recorded(), 2u);
}

// --------------------------------------------------------- eval determinism

void expect_same_avoid(const eval::AvoidAsResult& s,
                       const eval::AvoidAsResult& p) {
  EXPECT_EQ(s.profile, p.profile);
  EXPECT_EQ(s.tuples, p.tuples);
  EXPECT_EQ(s.single_rate, p.single_rate);
  EXPECT_EQ(s.source_rate, p.source_rate);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.multi_rate[i], p.multi_rate[i]);
  ASSERT_EQ(s.state_rows.size(), p.state_rows.size());
  for (std::size_t i = 0; i < s.state_rows.size(); ++i) {
    EXPECT_EQ(s.state_rows[i].tuples, p.state_rows[i].tuples);
    EXPECT_EQ(s.state_rows[i].success_rate, p.state_rows[i].success_rate);
    EXPECT_EQ(s.state_rows[i].avg_ases_contacted,
              p.state_rows[i].avg_ases_contacted);
    EXPECT_EQ(s.state_rows[i].avg_paths_received,
              p.state_rows[i].avg_paths_received);
  }
}

/// Runs the eval pipelines serially and at four threads — including plan
/// construction, whose tree solves are themselves parallel — and requires
/// bit-identical results, both field-by-field and as printed bytes.
void check_determinism(const eval::EvalConfig& config) {
  par::set_thread_count(1);
  const eval::ExperimentPlan serial_plan(config);
  const eval::AvoidAsResult serial_avoid = run_avoid_as(serial_plan);
  const eval::DiversityResult serial_div = run_path_diversity(serial_plan);
  const eval::DeploymentResult serial_dep =
      run_incremental_deployment(serial_plan);

  par::set_thread_count(4);
  const eval::ExperimentPlan parallel_plan(config);
  const eval::AvoidAsResult parallel_avoid = run_avoid_as(parallel_plan);
  const eval::DiversityResult parallel_div = run_path_diversity(parallel_plan);
  const eval::DeploymentResult parallel_dep =
      run_incremental_deployment(parallel_plan);
  par::set_thread_count(0);

  // Plan construction solved the same trees.
  ASSERT_EQ(serial_plan.trees().size(), parallel_plan.trees().size());
  for (std::size_t t = 0; t < serial_plan.trees().size(); ++t) {
    const eval::RoutingTree& st = serial_plan.tree(t);
    const eval::RoutingTree& pt = parallel_plan.tree(t);
    ASSERT_EQ(st.destination(), pt.destination());
    const auto nodes =
        static_cast<eval::NodeId>(serial_plan.graph().node_count());
    for (eval::NodeId n = 0; n < nodes; ++n) {
      ASSERT_EQ(st.reachable(n), pt.reachable(n));
      if (!st.reachable(n)) continue;
      ASSERT_EQ(st.next_hop(n), pt.next_hop(n));
      ASSERT_EQ(st.path_length(n), pt.path_length(n));
    }
  }

  expect_same_avoid(serial_avoid, parallel_avoid);

  ASSERT_EQ(serial_div.rows.size(), parallel_div.rows.size());
  for (std::size_t i = 0; i < serial_div.rows.size(); ++i) {
    EXPECT_EQ(serial_div.rows[i].pairs, parallel_div.rows[i].pairs);
    EXPECT_EQ(serial_div.rows[i].fraction_zero,
              parallel_div.rows[i].fraction_zero);
    EXPECT_EQ(serial_div.rows[i].p50, parallel_div.rows[i].p50);
    EXPECT_EQ(serial_div.rows[i].p90, parallel_div.rows[i].p90);
    EXPECT_EQ(serial_div.rows[i].mean, parallel_div.rows[i].mean);
    EXPECT_EQ(serial_div.rows[i].max, parallel_div.rows[i].max);
  }

  ASSERT_EQ(serial_dep.points.size(), parallel_dep.points.size());
  for (std::size_t i = 0; i < serial_dep.points.size(); ++i) {
    EXPECT_EQ(serial_dep.points[i].fraction, parallel_dep.points[i].fraction);
    for (int j = 0; j < 3; ++j)
      EXPECT_EQ(serial_dep.points[i].relative_gain[j],
                parallel_dep.points[i].relative_gain[j]);
    EXPECT_EQ(serial_dep.points[i].low_degree_first_gain,
              parallel_dep.points[i].low_degree_first_gain);
  }

  // The printed reproduction tables — what --json snapshots are built
  // from — must be byte-identical.
  std::ostringstream serial_text, parallel_text;
  print_table_5_2(serial_avoid, serial_text);
  print_table_5_3(serial_avoid, serial_text);
  print(serial_div, serial_text);
  print(serial_dep, serial_text);
  print_table_5_2(parallel_avoid, parallel_text);
  print_table_5_3(parallel_avoid, parallel_text);
  print(parallel_div, parallel_text);
  print(parallel_dep, parallel_text);
  EXPECT_EQ(serial_text.str(), parallel_text.str());
}

TEST(EvalDeterminism, TinyProfileIdenticalAcrossThreadCounts) {
  eval::EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 12;
  config.sources_per_destination = 8;
  config.seed = 3;
  check_determinism(config);
}

TEST(EvalDeterminism, Gao2005ProfileIdenticalAcrossThreadCounts) {
  eval::EvalConfig config;
  config.profile = "gao2005";
  config.scale = 0.1;
  config.destination_samples = 6;
  config.sources_per_destination = 4;
  config.seed = 11;
  check_determinism(config);
}

TEST(EvalDeterminism, StubPipelinesIdenticalAcrossThreadCounts) {
  eval::EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 8;
  config.sources_per_destination = 6;
  config.seed = 5;

  eval::TeComparisonConfig te;
  te.stub_samples = 20;
  eval::TrafficControlConfig tc;
  tc.stub_samples = 20;

  par::set_thread_count(1);
  const eval::ExperimentPlan serial_plan(config);
  const eval::TeComparisonResult serial_te =
      run_te_comparison(serial_plan, te);
  const eval::TrafficControlResult serial_tc =
      run_traffic_control(serial_plan, tc);

  par::set_thread_count(4);
  const eval::ExperimentPlan parallel_plan(config);
  const eval::TeComparisonResult parallel_te =
      run_te_comparison(parallel_plan, te);
  const eval::TrafficControlResult parallel_tc =
      run_traffic_control(parallel_plan, tc);
  par::set_thread_count(0);

  std::ostringstream serial_text, parallel_text;
  print(serial_te, serial_text);
  print(serial_tc, serial_text);
  print(parallel_te, parallel_text);
  print(parallel_tc, parallel_text);
  EXPECT_EQ(serial_text.str(), parallel_text.str());

  EXPECT_EQ(serial_te.stubs, parallel_te.stubs);
  ASSERT_EQ(serial_te.mechanisms.size(), parallel_te.mechanisms.size());
  for (std::size_t i = 0; i < serial_te.mechanisms.size(); ++i) {
    EXPECT_EQ(serial_te.mechanisms[i].median_moved,
              parallel_te.mechanisms[i].median_moved);
    EXPECT_EQ(serial_te.mechanisms[i].median_targeting_error,
              parallel_te.mechanisms[i].median_targeting_error);
  }
  EXPECT_EQ(serial_tc.stubs_evaluated, parallel_tc.stubs_evaluated);
  ASSERT_EQ(serial_tc.series.size(), parallel_tc.series.size());
  for (std::size_t i = 0; i < serial_tc.series.size(); ++i) {
    EXPECT_EQ(serial_tc.series[i].stub_fraction,
              parallel_tc.series[i].stub_fraction);
    EXPECT_EQ(serial_tc.series[i].median_best_move,
              parallel_tc.series[i].median_best_move);
  }
  EXPECT_EQ(serial_tc.power_top_degree_fraction,
            parallel_tc.power_top_degree_fraction);
}

}  // namespace
}  // namespace miro
