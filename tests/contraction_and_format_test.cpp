// Tests for sibling contraction, BGP-table rendering, and Section 7.4's
// mixed-guideline convergence results.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/route_solver.hpp"
#include "bgp/table_format.hpp"
#include "convergence/gadgets.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"
#include "topology/sibling_contraction.hpp"

namespace miro::topo {
namespace {

TEST(SiblingContraction, GroupsSiblingComponents) {
  AsGraph graph;
  const auto a = graph.add_as(10);
  const auto b = graph.add_as(20);
  const auto c = graph.add_as(30);   // sibling chain a-b-c
  const auto x = graph.add_as(40);
  const auto y = graph.add_as(50);
  graph.add_sibling(a, b);
  graph.add_sibling(b, c);
  graph.add_customer_provider(/*provider=*/a, /*customer=*/x);
  graph.add_peer(c, y);

  const ContractionResult result = contract_siblings(graph);
  EXPECT_EQ(result.group_count(), 3u);  // {a,b,c}, {x}, {y}
  EXPECT_EQ(result.largest_group(), 3u);
  EXPECT_EQ(result.multi_member_groups(), 1u);
  EXPECT_EQ(result.group_of[a], result.group_of[b]);
  EXPECT_EQ(result.group_of[b], result.group_of[c]);
  EXPECT_NE(result.group_of[a], result.group_of[x]);
  // The virtual node takes the smallest member's AS number.
  EXPECT_EQ(result.graph.as_number(result.group_of[a]), 10u);
  // Projected edges keep their relationships, now from the group.
  const NodeId ga = result.group_of[a];
  const NodeId gx = result.group_of[x];
  const NodeId gy = result.group_of[y];
  EXPECT_EQ(result.graph.relationship(ga, gx), Relationship::Customer);
  EXPECT_EQ(result.graph.relationship(ga, gy), Relationship::Peer);
  EXPECT_EQ(result.graph.edge_counts().sibling, 0u);
}

TEST(SiblingContraction, GraphWithoutSiblingsIsIsomorphic) {
  test::Figure31Topology fig;
  const ContractionResult result = contract_siblings(fig.graph);
  EXPECT_EQ(result.graph.node_count(), fig.graph.node_count());
  EXPECT_EQ(result.graph.edge_count(), fig.graph.edge_count());
  EXPECT_EQ(result.multi_member_groups(), 0u);
}

TEST(SiblingContraction, RouteClassesMatchTransparentClassification) {
  // On a generated topology with sibling links, the solver's class for each
  // node (computed with transparent sibling classification) must equal the
  // class computed on the contracted graph for the corresponding group.
  GeneratorParams params = profile("tiny");
  params.sibling_link_fraction = 0.06;  // plenty of siblings
  const AsGraph graph = generate(params);
  const ContractionResult contraction = contract_siblings(graph);
  ASSERT_GT(contraction.multi_member_groups(), 0u);

  bgp::StableRouteSolver original(graph);
  bgp::StableRouteSolver contracted(contraction.graph);
  std::size_t compared = 0;
  for (NodeId dest = 0; dest < graph.node_count(); dest += 17) {
    const auto dest_group = contraction.group_of[dest];
    const auto tree = original.solve(dest);
    const auto ctree = contracted.solve(dest_group);
    for (NodeId node = 0; node < graph.node_count(); node += 5) {
      const auto group = contraction.group_of[node];
      if (group == dest_group) continue;
      // Reachability must agree.
      ASSERT_EQ(tree.reachable(node), ctree.reachable(group))
          << "node " << node << " dest " << dest;
      if (!tree.reachable(node)) continue;
      // Route classes agree whenever the group is a singleton (members of a
      // multi-AS group can individually have better classes than the
      // group-level abstraction exposes).
      if (contraction.members[group].size() == 1) {
        EXPECT_EQ(tree.route_class(node), ctree.route_class(group))
            << "node " << node << " dest " << dest;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 100u);
}

}  // namespace
}  // namespace miro::topo

namespace miro::bgp {
namespace {

TEST(TableFormat, RendersTable11Style) {
  test::Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  const auto entries = bgp_table_for(solver, tree, fig.b);
  ASSERT_EQ(entries.size(), 2u);
  // Exactly one best entry, and it is B's selected route BEF.
  std::size_t best_count = 0;
  for (const auto& entry : entries) {
    if (entry.best) {
      ++best_count;
      EXPECT_EQ(entry.as_path, (std::vector<topo::AsNumber>{5, 6}));
    }
    EXPECT_EQ(entry.prefix.to_string(), "0.6.0.0/16");
  }
  EXPECT_EQ(best_count, 1u);

  std::ostringstream out;
  print_bgp_table(entries, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("*>"), std::string::npos);
  EXPECT_NE(text.find("0.6.0.0/16"), std::string::npos);
  // The repeated prefix cell is blanked on continuation rows.
  EXPECT_EQ(text.find("0.6.0.0/16"), text.rfind("0.6.0.0/16"));
}

}  // namespace
}  // namespace miro::bgp

namespace miro::conv {
namespace {

TEST(MixedGuidelines, CAndDNodesConvergeTogether) {
  // Section 7.4: "if each AS conforms to either Guidelines A and C, or
  // Guidelines A and D, convergence is still guaranteed."
  const MiroGadget base = make_figure_7_2(Guideline::D);
  MiroGadget gadget = base;
  gadget.options.guideline_of = [](NodeId node) {
    return node % 2 == 0 ? Guideline::C : Guideline::D;
  };
  MiroConvergenceModel model = gadget.build();
  EXPECT_TRUE(model.run_round_robin().converged);
}

TEST(MixedGuidelines, CAndENodesConvergeTogether) {
  const MiroGadget base = make_figure_7_2(Guideline::E);
  MiroGadget gadget = base;
  gadget.options.guideline_of = [](NodeId node) {
    return node % 2 == 0 ? Guideline::C : Guideline::E;
  };
  MiroConvergenceModel model = gadget.build();
  EXPECT_TRUE(model.run_round_robin().converged);
}

TEST(MixedGuidelines, RandomMixesConverge) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    topo::GeneratorParams params = topo::profile("tiny");
    params.node_count = 64;
    params.seed = seed;
    const topo::AsGraph graph = topo::generate(params);
    Rng rng(seed * 101);
    std::vector<NodeId> destinations;
    for (int i = 0; i < 3; ++i)
      destinations.push_back(
          static_cast<NodeId>(rng.next_below(graph.node_count())));
    std::sort(destinations.begin(), destinations.end());
    destinations.erase(
        std::unique(destinations.begin(), destinations.end()),
        destinations.end());

    ModelOptions options;
    for (int i = 0; i < 10; ++i) {
      TunnelSpec spec;
      spec.requester =
          static_cast<NodeId>(rng.next_below(graph.node_count()));
      spec.responder =
          static_cast<NodeId>(rng.next_below(graph.node_count()));
      spec.destination = destinations[rng.next_below(destinations.size())];
      if (spec.requester == spec.responder ||
          spec.responder == spec.destination)
        continue;
      options.tunnels.push_back(spec);
    }
    // Random per-AS choice among the provably safe guidelines.
    std::vector<Guideline> assignment(graph.node_count());
    for (auto& g : assignment) {
      const Guideline safe[] = {Guideline::B, Guideline::C, Guideline::D,
                                Guideline::E};
      g = safe[rng.next_below(4)];
    }
    options.guideline_of = [assignment](NodeId node) {
      return assignment[node];
    };
    options.partial_order = [](NodeId, NodeId fd, NodeId dest) {
      return fd < dest;
    };
    MiroConvergenceModel model(graph, destinations, options);
    EXPECT_TRUE(model.run_round_robin(512).converged) << "seed " << seed;
  }
}

TEST(MixedGuidelines, RequiresPartialOrderOnlyWhenDNodesExist) {
  MiroGadget gadget = make_figure_7_2(Guideline::E);
  gadget.options.partial_order = nullptr;
  gadget.options.guideline_of = [](NodeId) { return Guideline::E; };
  EXPECT_NO_THROW(gadget.build());
  gadget.options.guideline_of = [](NodeId node) {
    return node == 0 ? Guideline::D : Guideline::E;
  };
  EXPECT_THROW(gadget.build(), Error);
}

}  // namespace
}  // namespace miro::conv
