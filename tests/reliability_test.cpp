// The control plane under message loss, duplication, and reordering:
// retransmission with backoff, responder idempotence, upstream keep-alive
// liveness with failover, hold-down re-negotiation, and the soft-state
// backstops for lost teardowns and stale confirms (Section 4.3).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "core/tunnel_monitor.hpp"
#include "netsim/fault_injection.hpp"
#include "scenarios.hpp"

namespace miro::core {
namespace {

using test::Figure31Topology;

struct Harness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  sim::Scheduler scheduler;
  Bus bus{scheduler};
  sim::FaultPlane plane{1};

  Harness() { bus.set_fault_plane(&plane); }
};

// A's standard avoid-E request toward F, answered by B with the BCF peer
// route (Figure 3.1).
std::uint64_t avoid_e_request(Harness& h, MiroAgent& a,
                              std::optional<NegotiationOutcome>& outcome,
                              std::size_t* callbacks = nullptr) {
  return a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
                   [&outcome, callbacks](const NegotiationOutcome& o) {
                     outcome = o;
                     if (callbacks) ++*callbacks;
                   });
}

// ---------------------------------------------------------- retransmission

TEST(Retransmission, RecoversFromALostRouteRequest) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  // Drop everything while the initial RouteRequest goes out, then heal; the
  // retransmission (first retry fires at >= 40 ticks) must rescue it.
  h.plane.set_default_profile({/*drop=*/1.0, 0.0, 0});
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  h.scheduler.run_until(5);
  h.plane.set_default_profile({});
  h.scheduler.run_until(1500);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->established);
  EXPECT_GE(a.stats().retransmissions, 1u);
  EXPECT_EQ(b.stats().tunnels_established, 1u);
}

TEST(Retransmission, RecoversFromALostTunnelAccept) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  // Timeline with the default 10-tick link delay: request arrives at 10,
  // offers at 20, the accept goes out at 20. Kill exactly that window.
  h.scheduler.run_until(15);
  h.plane.set_default_profile({1.0, 0.0, 0});
  h.scheduler.run_until(25);
  h.plane.set_default_profile({});
  h.scheduler.run_until(1500);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->established);
  EXPECT_GE(a.stats().retransmissions, 1u);
  EXPECT_EQ(b.tunnels().active_count(), 1u);
}

TEST(Retransmission, GivesUpAfterMaxRetriesViaTheTimeoutBackstop) {
  Harness h;
  SoftStateConfig ss;
  ss.max_retries = 3;
  MiroAgent a(h.fig.a, h.store, h.bus, {}, ss);
  // No agent at B; every copy vanishes. The retry counter must cap and the
  // negotiation_timeout backstop must fire the callback exactly once.
  std::size_t callbacks = 0;
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome, &callbacks);
  h.scheduler.run_until(10000);
  EXPECT_EQ(callbacks, 1u);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(a.stats().retransmissions, 3u);
  EXPECT_EQ(a.stats().negotiations_abandoned, 1u);
}

// ------------------------------------------------------------- idempotence

TEST(Idempotence, DuplicatedAcceptNeverMintsASecondTunnel) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  const auto id = avoid_e_request(h, a, outcome);
  h.scheduler.run_until(500);
  ASSERT_TRUE(outcome && outcome->established);
  ASSERT_EQ(b.stats().tunnels_established, 1u);

  // Replay A's TunnelAccept verbatim — as a duplicating network would.
  h.bus.send(h.fig.a, h.fig.b,
             TunnelAccept{id, outcome->route, outcome->cost});
  h.scheduler.run_until(1000);
  EXPECT_EQ(b.stats().tunnels_established, 1u);  // no second tunnel
  EXPECT_EQ(b.tunnels().active_count(), 1u);
  EXPECT_GE(b.stats().duplicates_suppressed, 1u);
  // B re-sent the cached confirm; A must recognize it as a duplicate and
  // keep exactly one upstream record rather than tearing anything down.
  EXPECT_GE(a.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(a.upstream_tunnels().size(), 1u);
  EXPECT_EQ(a.stats().stale_confirms_reclaimed, 0u);
}

TEST(Idempotence, CertainDuplicationStillYieldsExactlyOneTunnel) {
  Harness h;
  h.plane.set_default_profile({0.0, /*duplicate=*/1.0, 0});
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  std::size_t callbacks = 0;
  avoid_e_request(h, a, outcome, &callbacks);
  h.scheduler.run_until(1500);
  EXPECT_EQ(callbacks, 1u);
  ASSERT_TRUE(outcome && outcome->established);
  EXPECT_EQ(b.stats().tunnels_established, 1u);
  EXPECT_EQ(b.tunnels().active_count(), 1u);
  EXPECT_EQ(a.upstream_tunnels().size(), 1u);
  EXPECT_GE(a.stats().duplicates_suppressed + b.stats().duplicates_suppressed,
            1u);
}

// -------------------------------------------- timeout / late-confirm race

TEST(TimeoutRace, LateConfirmAfterTimeoutIsReclaimedWithATeardown) {
  // Regression for the pending-negotiation timeout path: the timeout fires
  // first (once), and the confirm that limps in afterwards must not revive
  // the negotiation — it is answered with a teardown so the responder's
  // freshly minted tunnel does not linger as an orphan.
  Harness h;
  SoftStateConfig slow;
  slow.max_retries = 0;        // keep the timeline single-shot
  SoftStateConfig patient = slow;
  patient.expiry_timeout = 50000;  // expiry must not mask the teardown path
  MiroAgent a(h.fig.a, h.store, h.bus, {}, slow);
  MiroAgent b(h.fig.b, h.store, h.bus, {}, patient);
  // 600 ticks per hop: request 600, offers 1200, accept 1800 (tunnel minted),
  // confirm 2400 — after the 2000-tick negotiation timeout.
  h.bus.set_delay(h.fig.a, h.fig.b, 600);
  std::size_t callbacks = 0;
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome, &callbacks);
  h.scheduler.run_until(2100);
  ASSERT_TRUE(outcome.has_value());  // the timeout won the race
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(a.stats().negotiations_abandoned, 1u);
  EXPECT_EQ(b.stats().tunnels_established, 1u);  // minted at 1800

  h.scheduler.run_until(4000);  // late confirm at 2400, teardown back at 3000
  EXPECT_EQ(callbacks, 1u);     // the stale closure never double-fires
  EXPECT_EQ(a.stats().stale_confirms_reclaimed, 1u);
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_torn_down, 1u);  // reclaimed, not expired
}

TEST(TimeoutRace, ConfirmJustBeforeTimeoutWinsAndTimeoutStaysSilent) {
  Harness h;
  SoftStateConfig ss;
  ss.max_retries = 0;
  MiroAgent a(h.fig.a, h.store, h.bus, {}, ss);
  MiroAgent b(h.fig.b, h.store, h.bus, {}, ss);
  // 490 per hop: confirm lands at 1960, just inside the 2000 timeout.
  h.bus.set_delay(h.fig.a, h.fig.b, 490);
  std::size_t callbacks = 0;
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome, &callbacks);
  h.scheduler.run_until(5000);
  EXPECT_EQ(callbacks, 1u);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->established);
  EXPECT_EQ(a.stats().negotiations_abandoned, 0u);
}

// ---------------------------------------------------------------- failover

TEST(Failover, MissedKeepAliveAcksFailTheTunnelOver) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  std::vector<TunnelLostEvent> lost;
  a.on_tunnel_lost([&lost](const TunnelLostEvent& e) { lost.push_back(e); });
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);

  h.bus.set_link_down(h.fig.a, h.fig.b, true);  // acks stop coming back
  h.scheduler.run_until(5000);
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);  // reverted to the BGP default
  EXPECT_EQ(a.stats().tunnels_failed_over, 1u);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].tunnel_id, outcome->tunnel_id);
  EXPECT_EQ(lost[0].responder, h.fig.b);
  EXPECT_EQ(lost[0].destination, h.fig.f);
  EXPECT_EQ(lost[0].reason, TunnelLostEvent::Reason::MissedKeepAlives);
  EXPECT_FALSE(lost[0].will_renegotiate);  // auto_renegotiate defaults off
  EXPECT_EQ(b.stats().tunnels_expired, 1u);  // downstream soft state too
}

TEST(Failover, ResponderResetIsDetectedByTheNackedKeepAlive) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  std::vector<TunnelLostEvent> lost;
  a.on_tunnel_lost([&lost](const TunnelLostEvent& e) { lost.push_back(e); });
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);

  // The responder loses the tunnel out from under A (operator reset); the
  // next keep-alive is answered alive=false and A must fail over at once,
  // well before the miss threshold could trigger.
  h.bus.send(h.fig.c, h.fig.b, TunnelTeardown{outcome->tunnel_id});
  h.scheduler.run_until(400);
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].reason, TunnelLostEvent::Reason::ResponderReset);
}

TEST(Failover, AutoRenegotiationRestoresTheTunnelAfterHoldDown) {
  Harness h;
  SoftStateConfig ss;
  ss.auto_renegotiate = true;
  ss.renegotiate_hold_down = 500;
  MiroAgent a(h.fig.a, h.store, h.bus, {}, ss);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  std::vector<TunnelLostEvent> lost;
  a.on_tunnel_lost([&lost](const TunnelLostEvent& e) { lost.push_back(e); });
  std::optional<NegotiationOutcome> renegotiated;
  a.on_renegotiated(
      [&renegotiated](const NegotiationOutcome& o) { renegotiated = o; });
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);

  h.bus.set_link_down(h.fig.a, h.fig.b, true);
  h.scheduler.run_until(500);  // miss threshold reached, tunnel lost
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_TRUE(lost[0].will_renegotiate);
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);

  h.bus.set_link_down(h.fig.a, h.fig.b, false);  // heal within hold-down
  h.scheduler.run_until(3000);
  EXPECT_EQ(a.stats().renegotiations, 1u);
  ASSERT_TRUE(renegotiated.has_value());
  EXPECT_TRUE(renegotiated->established);
  EXPECT_EQ(a.upstream_tunnels().size(), 1u);  // back on the alternate path
  EXPECT_EQ(b.tunnels().active_count(), 1u);
}

TEST(Failover, HoldDownCoalescesSimultaneousLossesIntoOneRenegotiation) {
  Harness h;
  SoftStateConfig ss;
  ss.auto_renegotiate = true;
  ss.renegotiate_hold_down = 500;
  ResponderConfig open;
  open.policy = ExportPolicy::Flexible;
  MiroAgent a(h.fig.a, h.store, h.bus, {}, ss);
  MiroAgent b(h.fig.b, h.store, h.bus, open);
  // Two tunnels to the same (responder, destination): when the link dies
  // both fail over back-to-back, but the hold-down window must admit only
  // one replacement negotiation — the anti-flap guard.
  std::optional<NegotiationOutcome> first, second;
  avoid_e_request(h, a, first);
  a.request(h.fig.b, h.fig.a, h.fig.f, std::nullopt, std::nullopt,
            [&second](const NegotiationOutcome& o) { second = o; });
  h.scheduler.run_until(100);
  ASSERT_TRUE(first && first->established);
  ASSERT_TRUE(second && second->established);
  ASSERT_EQ(a.upstream_tunnels().size(), 2u);

  h.bus.set_link_down(h.fig.a, h.fig.b, true);
  h.scheduler.run_until(5000);
  EXPECT_EQ(a.stats().tunnels_failed_over, 2u);
  EXPECT_LE(a.stats().renegotiations, 1u);
}

TEST(Failover, TunnelMonitorHandsBackTheLostRecord) {
  // The agent's liveness verdict plugs into the routing-change monitor: the
  // lost callback unwatches the tunnel and recovers its negotiation intent.
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);

  TunnelMonitor monitor;
  monitor.watch({outcome->tunnel_id, h.fig.a, h.fig.b, h.fig.f,
                 outcome->route.path, h.fig.e, false});
  std::optional<TunnelMonitor::WatchedTunnel> recovered;
  a.on_tunnel_lost([&](const TunnelLostEvent& e) {
    recovered = monitor.on_tunnel_lost(e.responder, e.tunnel_id);
  });
  h.bus.set_link_down(h.fig.a, h.fig.b, true);
  h.scheduler.run_until(5000);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->id, outcome->tunnel_id);
  EXPECT_EQ(recovered->must_avoid, std::optional<NodeId>(h.fig.e));
  EXPECT_EQ(monitor.watched_count(), 0u);
  EXPECT_FALSE(monitor.on_tunnel_lost(h.fig.b, outcome->tunnel_id));
}

// ------------------------------------------------------------ lost teardown

TEST(LostTeardown, BothSidesConvergeToZeroStateViaSoftStateExpiry) {
  // "The active tunnel tear-down message itself may not be able to reach
  // AS B" (Section 4.3): partition the link, tear down anyway, and verify
  // no upstream_/tunnels_ entry leaks on either side.
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);
  ASSERT_EQ(b.tunnels().active_count(), 1u);

  h.bus.set_link_down(h.fig.a, h.fig.b, true);
  a.teardown(outcome->tunnel_id);
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);  // local state goes at once
  h.scheduler.run_until(10000);
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_torn_down, 0u);  // no teardown ever arrived
  EXPECT_EQ(b.stats().tunnels_expired, 1u);    // soft state did the cleanup
  EXPECT_EQ(a.stats().tunnels_failed_over, 0u);  // keep-alives stopped cleanly
}

TEST(LostTeardown, RetransmittedTeardownLandsWhenOnlyTheFirstCopyIsLost) {
  Harness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  avoid_e_request(h, a, outcome);
  h.scheduler.run_until(100);
  ASSERT_TRUE(outcome && outcome->established);

  // Drop the first teardown copy; a blind retransmission (no ack exists for
  // teardown) must still reach B well before soft-state expiry would.
  h.plane.set_default_profile({1.0, 0.0, 0});
  a.teardown(outcome->tunnel_id);
  h.scheduler.run_until(120);
  h.plane.set_default_profile({});
  h.scheduler.run_until(300);  // < expiry_timeout after the last heartbeat
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_torn_down, 1u);  // the retransmit, not expiry
  EXPECT_GE(a.stats().retransmissions, 1u);
}

}  // namespace
}  // namespace miro::core
