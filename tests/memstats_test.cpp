// Memory observability layer: counters, the counting allocator's propagation
// corner cases, nested scoped accounts, registry export, the null-registry
// behaviour-neutrality contract, and the byte-row regression gate.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memtrack.hpp"
#include "eval/avoid_as.hpp"
#include "obs/memstats.hpp"
#include "obs/metrics.hpp"
#include "obs/regression.hpp"

namespace {

using namespace miro;
using obs::MemoryRegistry;
using obs::ScopedAccount;

TEST(MemCounters, TracksPeakAndSaturatesOnUnderflow) {
  MemCounters c;
  c.add(100);
  c.add(50);
  EXPECT_EQ(c.current, 150u);
  EXPECT_EQ(c.peak, 150u);
  c.sub(120);
  EXPECT_EQ(c.current, 30u);
  EXPECT_EQ(c.peak, 150u);
  // A mis-paired release saturates at zero instead of wrapping.
  c.sub(1000);
  EXPECT_EQ(c.current, 0u);
  EXPECT_EQ(c.allocations, 2u);
  EXPECT_EQ(c.deallocations, 2u);
  c.set_current(40);
  EXPECT_EQ(c.current, 40u);
  EXPECT_EQ(c.peak, 150u);
  c.set_current(400);
  EXPECT_EQ(c.peak, 400u);
}

TEST(CountingAllocator, ChargesVectorStorage) {
  MemCounters c;
  {
    std::vector<int, CountingAllocator<int>> v{CountingAllocator<int>(&c)};
    v.reserve(64);
    EXPECT_EQ(c.current, 64 * sizeof(int));
    EXPECT_EQ(c.allocations, 1u);
  }
  EXPECT_EQ(c.current, 0u);
  EXPECT_EQ(c.peak, 64 * sizeof(int));
  EXPECT_EQ(c.deallocations, 1u);
}

TEST(CountingAllocator, RebindChargesNodeAllocationsToSameAccount) {
  // An unordered_map rebinds the pair allocator to its internal node and
  // bucket-array types; all of them must keep feeding the same counters.
  MemCounters c;
  using Alloc = CountingAllocator<std::pair<const int, int>>;
  {
    std::unordered_map<int, int, std::hash<int>, std::equal_to<int>, Alloc>
        m{Alloc(&c)};
    for (int i = 0; i < 100; ++i) m.emplace(i, i * i);
    EXPECT_EQ(m.get_allocator().counters(), &c);
    // 100 nodes + at least one bucket array.
    EXPECT_GE(c.allocations, 101u);
    EXPECT_GT(c.current, 100 * sizeof(std::pair<const int, int>));
  }
  EXPECT_EQ(c.current, 0u) << "every rebound deallocate must credit back";
  EXPECT_EQ(c.allocations, c.deallocations);
}

TEST(CountingAllocator, PropagatesOnCopyAssignMoveAssignAndSwap) {
  MemCounters a, b;
  using Vec = std::vector<int, CountingAllocator<int>>;

  // Copy-assign: the destination adopts the source's account (POCCA), so
  // the copied storage lands in `a`, and the destination's old storage is
  // credited back to `b`.
  {
    Vec src{CountingAllocator<int>(&a)};
    src.assign(32, 7);
    Vec dst{CountingAllocator<int>(&b)};
    dst.assign(8, 1);
    EXPECT_GT(b.current, 0u);
    dst = src;
    EXPECT_EQ(dst.get_allocator().counters(), &a);
    EXPECT_EQ(b.current, 0u);
    EXPECT_EQ(a.current, vector_bytes(src) + vector_bytes(dst));
  }
  EXPECT_EQ(a.current, 0u);

  // Move-assign: storage (and its account) transfers wholesale (POCMA);
  // nothing is left charged to the destination's old account.
  {
    Vec src{CountingAllocator<int>(&a)};
    src.assign(32, 7);
    const std::uint64_t src_bytes = vector_bytes(src);
    Vec dst{CountingAllocator<int>(&b)};
    dst.assign(8, 1);
    dst = std::move(src);
    EXPECT_EQ(dst.get_allocator().counters(), &a);
    EXPECT_EQ(a.current, src_bytes);
    EXPECT_EQ(b.current, 0u);
  }
  EXPECT_EQ(a.current, 0u);

  // Swap: allocators swap with the storage (POCS), so each account keeps
  // tracking the buffer it originally charged.
  {
    Vec va{CountingAllocator<int>(&a)};
    va.assign(16, 1);
    Vec vb{CountingAllocator<int>(&b)};
    vb.assign(64, 2);
    const std::uint64_t bytes_a = a.current, bytes_b = b.current;
    using std::swap;
    swap(va, vb);
    EXPECT_EQ(va.get_allocator().counters(), &b);
    EXPECT_EQ(vb.get_allocator().counters(), &a);
    EXPECT_EQ(a.current, bytes_a);
    EXPECT_EQ(b.current, bytes_b);
  }
  EXPECT_EQ(a.current, 0u);
  EXPECT_EQ(b.current, 0u);
}

TEST(CountingAllocator, CopyConstructionKeepsTheAccount) {
  // select_on_container_copy_construction returns *this: a copied
  // container's bytes belong to the same subsystem as the original.
  MemCounters c;
  using Vec = std::vector<int, CountingAllocator<int>>;
  Vec original{CountingAllocator<int>(&c)};
  original.assign(32, 7);
  Vec copy(original);
  EXPECT_EQ(copy.get_allocator().counters(), &c);
  EXPECT_EQ(c.current, vector_bytes(original) + vector_bytes(copy));
}

TEST(CountingAllocator, EqualityComparesTheAccountPointer) {
  MemCounters a, b;
  CountingAllocator<int> ia(&a), ia2(&a), ib(&b), inull;
  EXPECT_TRUE(ia == ia2);
  EXPECT_TRUE(ia != ib);
  EXPECT_TRUE(inull == CountingAllocator<double>());
  // Cross-type comparison via the rebind converting constructor.
  CountingAllocator<double> da(ia);
  EXPECT_TRUE(ia == da);
}

TEST(ScopedAccountTest, NestedScopesSumIntoThePeak) {
  MemoryRegistry registry;
  {
    ScopedAccount outer(&registry, "eval/phase", 100);
    EXPECT_EQ(registry.account("eval/phase").current, 100u);
    {
      ScopedAccount inner(&registry, "eval/phase", 50);
      inner.charge(25);
      EXPECT_EQ(registry.account("eval/phase").current, 175u);
    }
    EXPECT_EQ(registry.account("eval/phase").current, 100u);
    outer.charge(10);
  }
  const MemCounters& c = registry.account("eval/phase");
  EXPECT_EQ(c.current, 0u);
  EXPECT_EQ(c.peak, 175u) << "peak must capture the deepest nesting";
}

TEST(ScopedAccountTest, NullRegistryIsANoOp) {
  ScopedAccount scope(nullptr, "anything", 1 << 20);
  scope.charge(1 << 20);  // must not crash or allocate
}

TEST(MemoryRegistryTest, TextTableAndMetricsExport) {
  MemoryRegistry registry;
  registry.account("topology/graph").set_current(4096);
  registry.account("bgp/rib").add(2048);
  EXPECT_EQ(registry.tracked_bytes(), 6144u);

  std::ostringstream text;
  registry.write_text(text);
  EXPECT_NE(text.str().find("topology/graph"), std::string::npos);
  EXPECT_NE(text.str().find("bgp/rib"), std::string::npos);
  EXPECT_NE(text.str().find("[tracked total]"), std::string::npos);
  EXPECT_NE(text.str().find("6144"), std::string::npos);

  obs::MetricsRegistry metrics;
  registry.export_metrics(metrics);
  EXPECT_EQ(metrics.gauge("memory.topology/graph.bytes").value(), 4096);
  EXPECT_EQ(metrics.gauge("memory.bgp/rib.bytes").value(), 2048);
  EXPECT_EQ(metrics.gauge("memory.tracked_bytes").value(), 6144);

  registry.reset();
  EXPECT_EQ(registry.tracked_bytes(), 0u);
  EXPECT_TRUE(registry.accounts().empty());
}

TEST(MemoryRegistryTest, RssSamplerReadsTheProcess) {
#ifdef __linux__
  MemoryRegistry registry;
  registry.sample_rss();
  EXPECT_EQ(registry.rss_samples(), 1u);
  EXPECT_GT(registry.rss_bytes(), 0u);
  EXPECT_GE(registry.rss_peak_bytes(), registry.rss_bytes());
#else
  GTEST_SKIP() << "RSS sources are platform-specific";
#endif
}

// The acceptance contract: attaching a MemoryRegistry must not perturb any
// simulation output. Run the same avoid-as evaluation accounted and
// unaccounted and require bit-identical results.
TEST(MemoryRegistryTest, NullRegistryIsBehaviourNeutral) {
  eval::EvalConfig config;
  config.profile = "gao2005";
  config.scale = 0.12;
  config.destination_samples = 6;
  config.sources_per_destination = 4;

  const eval::ExperimentPlan bare_plan(config);
  const auto bare = eval::run_avoid_as(bare_plan);

  MemoryRegistry registry;
  obs::set_memory(&registry);
  const eval::ExperimentPlan tracked_plan(config);
  const auto tracked = eval::run_avoid_as(tracked_plan);
  obs::set_memory(nullptr);

  // Accounts were actually fed while attached...
  EXPECT_GT(registry.account("topology/graph").current, 0u);
  EXPECT_GT(registry.account("eval/trees").current, 0u);
  // ...and every output is bit-identical to the unaccounted run.
  EXPECT_EQ(bare.single_rate, tracked.single_rate);
  EXPECT_EQ(bare.source_rate, tracked.source_rate);
  for (int p = 0; p < 3; ++p)
    EXPECT_EQ(bare.multi_rate[p], tracked.multi_rate[p]);

  // The walk itself is deterministic: identical plans report identical
  // footprints (this is what licenses byte rows in the bench gate).
  EXPECT_EQ(bare_plan.graph().memory_bytes(),
            tracked_plan.graph().memory_bytes());
  EXPECT_EQ(bare_plan.trees_memory_bytes(), tracked_plan.trees_memory_bytes());
}

// ---------------------------------------------------------------------------
// Byte rows in the regression gate.

JsonValue memory_suite_doc(double graph_bytes, double bytes_per_route,
                           double elapsed_ms = 100) {
  std::ostringstream text;
  text << R"({"suite":"miro-bench","schema":1,"config":{},"benches":{)"
       << R"("bench_x":{"config":{},"results":[)"
       << R"({"name":"gao2005.graph_bytes","value":)" << graph_bytes
       << R"(,"unit":"bytes"},)"
       << R"({"name":"gao2005.bytes_per_route","value":)" << bytes_per_route
       << R"(,"unit":"bytes/route"},)"
       << R"({"name":"gao2005.elapsed","value":)" << elapsed_ms
       << R"(,"unit":"ms"}]}}})";
  return JsonValue::parse(text.str());
}

TEST(MemoryRegressionGate, UnitClassification) {
  EXPECT_TRUE(obs::is_memory_unit("bytes"));
  EXPECT_TRUE(obs::is_memory_unit("bytes/route"));
  EXPECT_TRUE(obs::is_memory_unit("bytes/edge"));
  EXPECT_FALSE(obs::is_memory_unit("byte"));
  EXPECT_FALSE(obs::is_memory_unit("kilobytes"));
  EXPECT_EQ(obs::classify_unit("bytes"), obs::RowKind::Memory);
  EXPECT_EQ(obs::classify_unit("bytes/route"), obs::RowKind::Memory);
  // Perf wins over memory: a throughput measured in bytes is still a rate.
  EXPECT_EQ(obs::classify_unit("bytes/s"), obs::RowKind::Rate);
  EXPECT_EQ(obs::classify_unit("ms"), obs::RowKind::Time);
  EXPECT_EQ(obs::classify_unit("fraction"), obs::RowKind::Value);
}

TEST(MemoryRegressionGate, FailsOnInjectedByteRegressionBeyondThreshold) {
  const JsonValue baseline = memory_suite_doc(100000, 200);
  // +20% growth is inside the default 25% memory threshold.
  EXPECT_TRUE(obs::compare_bench_json(baseline, memory_suite_doc(120000, 200))
                  .ok());
  // +30% on graph_bytes must fail, and be attributed to the memory kind.
  const obs::RegressionReport report =
      obs::compare_bench_json(baseline, memory_suite_doc(130000, 200));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions(), 1u);
  EXPECT_EQ(report.regressions(obs::RowKind::Memory), 1u);
  EXPECT_EQ(report.regressions(obs::RowKind::Time), 0u);
  std::ostringstream text;
  report.write_text(text);
  EXPECT_NE(text.str().find("perf gate FAIL"), std::string::npos);
  EXPECT_NE(text.str().find("memory 1"), std::string::npos);
  // Shrinking is an improvement, never a failure.
  EXPECT_TRUE(obs::compare_bench_json(baseline, memory_suite_doc(50000, 120))
                  .ok());
  // Derived per-route rows are gated too.
  EXPECT_FALSE(obs::compare_bench_json(baseline, memory_suite_doc(100000, 300))
                   .ok());
}

TEST(MemoryRegressionGate, AbsoluteGrowthCeilingAndMinMagnitude) {
  // +10% relative growth passes the relative check but trips a 5000-byte
  // absolute ceiling ("only +10%" on a huge account is still 10 KB).
  const JsonValue baseline = memory_suite_doc(100000, 200);
  obs::RegressionOptions options;
  options.memory_abs_limit = 5000;
  EXPECT_FALSE(obs::compare_bench_json(baseline, memory_suite_doc(110000, 200),
                                       options)
                   .ok());
  EXPECT_TRUE(obs::compare_bench_json(baseline, memory_suite_doc(104000, 200),
                                      options)
                  .ok());
  // Tiny accounts are below memory_min_magnitude: relative noise ignored.
  const JsonValue small = memory_suite_doc(48, 8);
  EXPECT_TRUE(obs::compare_bench_json(small, memory_suite_doc(60, 10)).ok());
}

TEST(MemoryRegressionGate, ValuesOnlyHoldsByteRowsToExactEquality) {
  // Determinism mode: byte rows come from capacity walks and must be
  // bit-identical across thread counts — any drift fails.
  const JsonValue baseline = memory_suite_doc(100000, 200);
  obs::RegressionOptions determinism;
  determinism.values_only = true;
  EXPECT_TRUE(
      obs::compare_bench_json(baseline, memory_suite_doc(100000, 200, 999),
                              determinism)
          .ok())
      << "perf rows are informational under values_only";
  EXPECT_FALSE(
      obs::compare_bench_json(baseline, memory_suite_doc(100001, 200),
                              determinism)
          .ok());
}

TEST(MemoryRegressionGate, MissingByteRowIsAFailure) {
  const JsonValue baseline = memory_suite_doc(100000, 200);
  const JsonValue no_memory_rows = JsonValue::parse(
      R"({"suite":"miro-bench","schema":1,"config":{},)"
      R"("benches":{"bench_x":{"config":{},"results":[)"
      R"({"name":"gao2005.elapsed","value":100,"unit":"ms"}]}}})");
  const obs::RegressionReport report =
      obs::compare_bench_json(baseline, no_memory_rows);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.missing_rows.size(), 2u);
}

}  // namespace
