// End-to-end integration: topology generation -> stable BGP -> MIRO
// negotiation (analytic and message-driven) -> data-plane tunnel
// installation -> packet traces. These tests tie every library together the
// way the examples and benches use them.
#include <gtest/gtest.h>

#include "core/alternates.hpp"
#include "core/protocol.hpp"
#include "dataplane/forwarding.hpp"
#include "eval/experiments.hpp"
#include "policy/policy_engine.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro {
namespace {

using core::AlternatesEngine;
using core::ExportPolicy;
using core::RouteStore;
using test::Figure31Topology;

TEST(Integration, NegotiatedPathsAreUsableOnGeneratedTopology) {
  // On a generated Internet, every successful avoid-AS negotiation must
  // yield a spliced path that the data plane can actually forward along,
  // avoiding the AS end to end.
  topo::GeneratorParams params = topo::profile("tiny");
  params.node_count = 150;
  const topo::AsGraph graph = topo::generate(params);
  bgp::StableRouteSolver solver(graph);
  AlternatesEngine engine(solver);
  RouteStore store(graph);
  dataplane::AsLevelDataPlane plane(store);

  Rng rng(11);
  std::size_t negotiated = 0;
  std::size_t attempts = 0;
  while (negotiated < 10 && attempts < 400) {
    ++attempts;
    const auto dest = static_cast<topo::NodeId>(
        rng.next_below(graph.node_count()));
    const auto source = static_cast<topo::NodeId>(
        rng.next_below(graph.node_count()));
    if (source == dest) continue;
    const bgp::RoutingTree tree = solver.solve(dest);
    if (!tree.reachable(source)) continue;
    const auto path = tree.path_of(source);
    if (path.size() < 4) continue;  // need an intermediate beyond first hop
    const topo::NodeId avoid = path[2];
    if (avoid == dest || graph.has_edge(source, avoid)) continue;

    const auto result =
        engine.avoid_as(tree, source, avoid, ExportPolicy::Flexible);
    if (!result.success || result.bgp_success) continue;
    ++negotiated;

    ASSERT_TRUE(result.chosen.has_value());
    plane.install_tunnel(*result.chosen);
    net::Packet packet(plane.host_address(source),
                       plane.host_address(dest));
    const auto trace = plane.trace(packet, source);
    EXPECT_TRUE(trace.delivered);
    EXPECT_FALSE(trace.traversed(avoid)) << trace.to_string(graph);
    EXPECT_EQ(trace.as_path(), result.chosen->as_path);
  }
  EXPECT_GE(negotiated, 10u) << "could not exercise enough negotiations";
}

TEST(Integration, ControlPlaneOutcomeMatchesAnalyticEngine) {
  // The message-driven protocol must establish exactly the route the
  // analytic engine predicts for the same policy.
  Figure31Topology fig;
  RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  core::Bus bus(scheduler);
  core::ResponderConfig responder_config;
  responder_config.policy = ExportPolicy::RespectExport;
  core::MiroAgent a(fig.a, store, bus);
  core::MiroAgent b(fig.b, store, bus, responder_config);

  std::optional<core::NegotiationOutcome> outcome;
  a.request(fig.b, fig.a, fig.f, fig.e, std::nullopt,
            [&outcome](const core::NegotiationOutcome& o) { outcome = o; });
  scheduler.run_until(1000);
  ASSERT_TRUE(outcome && outcome->established);

  bgp::StableRouteSolver solver(fig.graph);
  const bgp::RoutingTree tree = solver.solve(fig.f);
  AlternatesEngine engine(solver);
  const auto analytic =
      engine.avoid_as(tree, fig.a, fig.e, ExportPolicy::RespectExport);
  ASSERT_TRUE(analytic.success && analytic.chosen);

  const core::TunnelRecord* record = b.tunnels().find(outcome->tunnel_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->bound_route.path, analytic.chosen->offered.path);
}

TEST(Integration, PolicyLanguageDrivesNegotiationTargets) {
  // Express "avoid AS 5" (AS E) in the Chapter 6 language, evaluate the
  // trigger against A's BGP candidates, and verify it points at B — the AS
  // the analytic negotiation succeeds with.
  Figure31Topology fig;
  bgp::StableRouteSolver solver(fig.graph);
  const bgp::RoutingTree tree = solver.solve(fig.f);

  const char* config_text = R"(
router bgp 1
route-map AVOID permit 10
match empty path 200
try negotiation NEG-5
ip as-path access-list 200 deny _5_
ip as-path access-list 200 permit .*
negotiation NEG-5
match all path _5_
start negotiation with maximum cost 300
)";
  policy::PolicyEngine policy_engine(policy::parse_config(config_text));

  // A's BGP candidates, rendered as received AS_PATH attributes.
  std::vector<policy::CandidateRoute> candidates;
  for (const bgp::Route& route : solver.candidates_at(tree, fig.a)) {
    policy::CandidateRoute candidate;
    for (std::size_t i = 1; i < route.path.size(); ++i)
      candidate.as_path.push_back(fig.graph.as_number(route.path[i]));
    candidate.local_pref = bgp::conventional_local_pref(route.route_class);
    candidates.push_back(std::move(candidate));
  }
  const auto trigger = policy_engine.evaluate_trigger("AVOID", candidates);
  ASSERT_TRUE(trigger.has_value()) << "all of A's routes traverse AS 5";
  EXPECT_EQ(trigger->max_cost, 300);
  // The target list contains AS 2 (= B), the on-path AS before AS 5.
  EXPECT_NE(std::find(trigger->targets.begin(), trigger->targets.end(),
                      topo::AsNumber{2}),
            trigger->targets.end());

  // Driving the negotiation with the first target succeeds.
  core::AlternatesEngine engine(solver);
  const auto result = engine.avoid_as(tree, fig.a, fig.e,
                                      ExportPolicy::RespectExport);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.chosen->responder,
            fig.graph.require_node(trigger->targets.front()));
}

TEST(Integration, EvalPipelineRunsEndToEndOnGeneratedTopology) {
  eval::EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 10;
  config.sources_per_destination = 8;
  const eval::ExperimentPlan plan(config);
  EXPECT_EQ(plan.trees().size(), 10u);
  EXPECT_FALSE(plan.sample_tuples(8).empty());
}

}  // namespace
}  // namespace miro
