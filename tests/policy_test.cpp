#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "policy/aspath_regex.hpp"
#include "policy/policy_config.hpp"
#include "policy/policy_engine.hpp"

namespace miro::policy {
namespace {

// ------------------------------------------------------------ AS-path regex

TEST(AsPathRegex, UnderscoreMatchesWholeAsNumber) {
  AsPathRegex regex("_312_");
  EXPECT_TRUE(regex.matches({100, 312, 200}));
  EXPECT_TRUE(regex.matches({312}));
  EXPECT_TRUE(regex.matches({312, 100}));
  EXPECT_TRUE(regex.matches({100, 312}));
  EXPECT_FALSE(regex.matches({1312}));
  EXPECT_FALSE(regex.matches({3120}));
  EXPECT_FALSE(regex.matches({13120}));
  EXPECT_FALSE(regex.matches({100, 200}));
}

TEST(AsPathRegex, AnchorsBindToStartAndEnd) {
  AsPathRegex starts("^100_");
  EXPECT_TRUE(starts.matches({100, 200}));
  EXPECT_FALSE(starts.matches({200, 100}));
  AsPathRegex ends("_200$");
  EXPECT_TRUE(ends.matches({100, 200}));
  EXPECT_FALSE(ends.matches({200, 100}));
  AsPathRegex exact("^100$");
  EXPECT_TRUE(exact.matches({100}));
  EXPECT_FALSE(exact.matches({100, 200}));
}

TEST(AsPathRegex, EmptyPatternMatchesEmptyPath) {
  AsPathRegex empty("^$");
  EXPECT_TRUE(empty.matches({}));
  EXPECT_FALSE(empty.matches({1}));
}

TEST(AsPathRegex, AlternationAndGrouping) {
  AsPathRegex regex("_(701|1239)_");
  EXPECT_TRUE(regex.matches({100, 701, 200}));
  EXPECT_TRUE(regex.matches({100, 1239}));
  EXPECT_FALSE(regex.matches({100, 7011}));
}

TEST(AsPathRegex, RepetitionOperators) {
  AsPathRegex star("^10*$");
  EXPECT_TRUE(star.matches_text("1"));
  EXPECT_TRUE(star.matches_text("1000"));
  EXPECT_FALSE(star.matches_text("11"));
  AsPathRegex plus("^10+$");
  EXPECT_FALSE(plus.matches_text("1"));
  EXPECT_TRUE(plus.matches_text("100"));
  AsPathRegex question("^10?$");
  EXPECT_TRUE(question.matches_text("1"));
  EXPECT_TRUE(question.matches_text("10"));
  EXPECT_FALSE(question.matches_text("100"));
}

TEST(AsPathRegex, DotAndCharacterClasses) {
  AsPathRegex dot("^1.3$");
  EXPECT_TRUE(dot.matches_text("123"));
  EXPECT_TRUE(dot.matches_text("1x3"));
  EXPECT_FALSE(dot.matches_text("13"));
  AsPathRegex digits("^[0-9]+$");
  EXPECT_TRUE(digits.matches_text("8075"));
  EXPECT_FALSE(digits.matches_text("80a5"));
  AsPathRegex negated("^[^5]+$");
  EXPECT_TRUE(negated.matches_text("1234"));
  EXPECT_FALSE(negated.matches_text("15"));
}

TEST(AsPathRegex, SubstringSemanticsByDefault) {
  AsPathRegex regex("701");
  EXPECT_TRUE(regex.matches({17012}));  // matches inside a number, as Cisco
  EXPECT_TRUE(regex.matches({701}));
}

TEST(AsPathRegex, GroupRepetition) {
  AsPathRegex regex("^(12 )+34$");
  EXPECT_TRUE(regex.matches({12, 34}));
  EXPECT_TRUE(regex.matches({12, 12, 34}));
  EXPECT_FALSE(regex.matches({34}));
}

TEST(AsPathRegex, SyntaxErrorsThrow) {
  EXPECT_THROW(AsPathRegex("(12"), Error);
  EXPECT_THROW(AsPathRegex("12)"), Error);
  EXPECT_THROW(AsPathRegex("[12"), Error);
  EXPECT_THROW(AsPathRegex("*12"), Error);
  EXPECT_THROW(AsPathRegex("12\\"), Error);  // dangling escape
}

TEST(AsPathRegex, EscapedLiterals) {
  AsPathRegex regex("^1\\.2$");
  EXPECT_TRUE(regex.matches_text("1.2"));
  EXPECT_FALSE(regex.matches_text("1x2"));
}

// ----------------------------------------------------------------- parsing

const char* kSection61Example = R"(
router bgp 100
!
neighbor 12.34.56.1 route-map FIX-LOCALPREF in
neighbor 12.34.56.1 remote-as 1
!
route-map FIX-LOCALPREF permit
match as-path 200
set local-preference 250
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
)";

TEST(PolicyConfig, ParsesSection61Example) {
  const BgpConfig config = parse_config(kSection61Example);
  EXPECT_EQ(config.local_as, 100u);
  ASSERT_EQ(config.neighbors.size(), 1u);
  EXPECT_EQ(config.neighbors[0].remote_as, 1u);
  EXPECT_EQ(config.neighbors[0].route_map_in, "FIX-LOCALPREF");
  ASSERT_EQ(config.route_map("FIX-LOCALPREF").size(), 1u);
  ASSERT_NE(config.access_list(200), nullptr);
  EXPECT_EQ(config.access_list(200)->entries.size(), 2u);
}

TEST(PolicyEngine, RouteMapSetsLocalPrefOnPermittedRoutes) {
  PolicyEngine engine(parse_config(kSection61Example));
  // Routes avoiding AS 312 fall through the deny to the permit-any entry...
  // wait: access-list 200 DENIES _312_ and permits everything else, and the
  // route map permits what the list permits, setting local-pref 250.
  auto clean = engine.apply_route_map("FIX-LOCALPREF",
                                      {{100, 200, 300}, 100});
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->local_pref, 250);
  auto dirty = engine.apply_route_map("FIX-LOCALPREF", {{100, 312}, 100});
  EXPECT_FALSE(dirty.has_value());  // matched deny entry -> filtered
}

const char* kSection63Requester = R"(
router bgp 100
!
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-312
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
!
negotiation NEG-312
match all path _312_
start negotiation with maximum cost 250
)";

TEST(PolicyConfig, ParsesSection63RequesterSide) {
  const BgpConfig config = parse_config(kSection63Requester);
  const auto clauses = config.route_map("AVOID_AS");
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_EQ(clauses[0]->sequence, 10);
  EXPECT_EQ(clauses[0]->match_empty_path_acl, 200);
  EXPECT_EQ(clauses[0]->try_negotiation, "NEG-312");
  const auto it = config.negotiations.find("NEG-312");
  ASSERT_NE(it, config.negotiations.end());
  EXPECT_EQ(it->second.max_cost, 250);
  ASSERT_TRUE(it->second.target_path_regex.has_value());
}

TEST(PolicyEngine, TriggerFiresOnlyWhenNoCandidatePasses) {
  PolicyEngine engine(parse_config(kSection63Requester));
  // All candidates traverse AS 312: the empty-path condition holds.
  const std::vector<CandidateRoute> all_bad{{{20, 312, 99}, 400},
                                            {{30, 40, 312, 99}, 200}};
  const auto trigger = engine.evaluate_trigger("AVOID_AS", all_bad);
  ASSERT_TRUE(trigger.has_value());
  EXPECT_EQ(trigger->negotiation_name, "NEG-312");
  EXPECT_EQ(trigger->max_cost, 250);
  // Targets: ASes sitting before 312 on the offending paths, nearest first.
  EXPECT_EQ(trigger->targets, (std::vector<topo::AsNumber>{20, 30, 40}));

  // One clean candidate suppresses the trigger.
  const std::vector<CandidateRoute> one_good{{{20, 312, 99}, 400},
                                             {{50, 60, 99}, 200}};
  EXPECT_FALSE(engine.evaluate_trigger("AVOID_AS", one_good).has_value());
}

const char* kSection63Responder = R"(
router bgp 150
!
accept negotiation from any
when tunnel_number < 1000
!
negotiation filter FILTER-1
filter permit local_pref > 200
set tunnel_cost 120
filter permit local_pref > 100
set tunnel_cost 180
)";

TEST(PolicyConfig, ParsesSection63ResponderSide) {
  const BgpConfig config = parse_config(kSection63Responder);
  ASSERT_TRUE(config.responder.has_value());
  EXPECT_TRUE(config.responder->accept_any);
  EXPECT_EQ(config.responder->max_tunnels, 1000u);
  ASSERT_EQ(config.responder->filters.size(), 2u);
  EXPECT_EQ(config.responder->filters[0].tunnel_cost, 120);
  EXPECT_EQ(config.responder->filters[1].tunnel_cost, 180);
}

TEST(PolicyEngine, ResponderPricingByLocalPrefBand) {
  PolicyEngine engine(parse_config(kSection63Responder));
  // Customer routes (local_pref > 200) sell for 120, peer routes for 180,
  // provider routes (<= 100) are not offered at all.
  EXPECT_EQ(engine.price_for({{1, 2}, 400}), 120);
  EXPECT_EQ(engine.price_for({{1, 2}, 150}), 180);
  EXPECT_FALSE(engine.price_for({{1, 2}, 100}).has_value());
}

TEST(PolicyEngine, ResponderAdmission) {
  PolicyEngine engine(parse_config(kSection63Responder));
  EXPECT_TRUE(engine.admits(42, 0));
  EXPECT_TRUE(engine.admits(42, 999));
  EXPECT_FALSE(engine.admits(42, 1000));  // tunnel_number limit reached
}

TEST(PolicyConfig, AcceptFromSpecificAses) {
  const BgpConfig config = parse_config(
      "accept negotiation from as 100 200\nwhen tunnel_number < 5\n");
  PolicyEngine engine(config);
  EXPECT_TRUE(engine.admits(100, 0));
  EXPECT_TRUE(engine.admits(200, 0));
  EXPECT_FALSE(engine.admits(300, 0));
}

TEST(PolicyConfig, RouteMapClausesEvaluateInSequenceOrder) {
  const char* text = R"(
route-map M permit 20
match as-path 1
set local-preference 100
route-map M deny 10
match as-path 2
ip as-path access-list 1 permit .*
ip as-path access-list 2 permit _666_
)";
  PolicyEngine engine(parse_config(text));
  // Sequence 10 (deny _666_) runs before sequence 20.
  EXPECT_FALSE(engine.apply_route_map("M", {{666}, 50}).has_value());
  auto ok = engine.apply_route_map("M", {{100}, 50});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->local_pref, 100);
}

TEST(PolicyConfig, MalformedStatementsThrowWithLineNumbers) {
  try {
    parse_config("router bgp 100\nbogus statement here\n");
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_config("route-map X maybe 10\n"), Error);
  EXPECT_THROW(parse_config("ip as-path access-list x permit .*\n"), Error);
  EXPECT_THROW(parse_config("when tunnel_number < 5\n"), Error);  // no block
  EXPECT_THROW(parse_config("negotiation\n"), Error);
  EXPECT_THROW(parse_config("set local-preference 10\n"), Error);
}

TEST(PolicyEngine, UnknownRouteMapThrows) {
  PolicyEngine engine(parse_config("router bgp 1\n"));
  EXPECT_THROW(engine.apply_route_map("NOPE", {{1}, 1}), Error);
}

TEST(PolicyConfig, RandomGarbageNeverCrashes) {
  // Fuzz-ish robustness: arbitrary token soup must either parse or throw
  // miro::Error — never crash or hang.
  Rng rng(0xfeed);
  const char* words[] = {"router",    "bgp",    "route-map", "permit",
                         "deny",      "match",  "set",       "negotiation",
                         "ip",        "as-path", "access-list", "filter",
                         "when",      "accept", "from",      "any",
                         "100",       "-5",     "_312_",     "(",
                         "tunnel_number", "<",  "local_pref", ">",
                         "!",         "x"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string config;
    const std::size_t lines = rng.next_below(6) + 1;
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t tokens = rng.next_below(6) + 1;
      for (std::size_t t = 0; t < tokens; ++t) {
        config += words[rng.next_below(std::size(words))];
        config += ' ';
      }
      config += '\n';
    }
    try {
      parse_config(config);
    } catch (const Error&) {
      // expected for most random inputs
    }
  }
}

TEST(AsPathRegex, NestedAlternation) {
  AsPathRegex regex("^(1(2|3)|4(5|(6|7)))$");
  EXPECT_TRUE(regex.matches_text("12"));
  EXPECT_TRUE(regex.matches_text("13"));
  EXPECT_TRUE(regex.matches_text("45"));
  EXPECT_TRUE(regex.matches_text("46"));
  EXPECT_TRUE(regex.matches_text("47"));
  EXPECT_FALSE(regex.matches_text("14"));
  EXPECT_FALSE(regex.matches_text("4"));
  EXPECT_FALSE(regex.matches_text("123"));
}

TEST(AsPathRegex, NegatedClasses) {
  AsPathRegex not_zero("^[^0]$");
  EXPECT_TRUE(not_zero.matches_text("5"));
  EXPECT_FALSE(not_zero.matches_text("0"));
  // A negated class consumes exactly one character; it cannot match nothing.
  EXPECT_FALSE(not_zero.matches_text(""));
  AsPathRegex interior("^1[^ ]1$");
  EXPECT_TRUE(interior.matches_text("121"));
  EXPECT_FALSE(interior.matches_text("1 1"));
  // Negation of a range.
  AsPathRegex high("^[^0-4]+$");
  EXPECT_TRUE(high.matches_text("789"));
  EXPECT_FALSE(high.matches_text("782"));
}

TEST(AsPathRegex, BoundaryAtStringEdges) {
  // `_` is satisfied by the start and the end of the rendered path, not
  // only by interior spaces.
  AsPathRegex leading("_312");
  EXPECT_TRUE(leading.matches({312}));
  EXPECT_TRUE(leading.matches({100, 312}));
  EXPECT_FALSE(leading.matches({1312}));
  AsPathRegex trailing("312_");
  EXPECT_TRUE(trailing.matches({312}));
  EXPECT_TRUE(trailing.matches({312, 100}));
  EXPECT_FALSE(trailing.matches({3120}));
  AsPathRegex both("_312_");
  EXPECT_TRUE(both.matches({312}));
  // Doubled boundaries collapse: both are satisfied at the same position.
  AsPathRegex doubled("__312__");
  EXPECT_TRUE(doubled.matches({312}));
  EXPECT_TRUE(doubled.matches({100, 312, 200}));
  EXPECT_FALSE(doubled.matches({3120}));
}

TEST(AsPathRegex, PathologicalRepetitionStaysLinear) {
  // (a*)*-style patterns explode backtracking matchers; the Thompson NFA
  // simulation stays linear in the input, so these complete instantly.
  AsPathRegex nested("^(((0*)*)*)*$");
  std::string zeros(5000, '0');
  EXPECT_TRUE(nested.matches_text(zeros));
  EXPECT_FALSE(nested.matches_text(zeros + "1"));
  AsPathRegex ambiguous("^(0|00)+$");
  EXPECT_TRUE(ambiguous.matches_text(std::string(4999, '0')));
  EXPECT_FALSE(ambiguous.matches_text(std::string(2500, '0') + "1" +
                                      std::string(2499, '0')));
}

// ------------------------------------------------- language emptiness

TEST(AsPathRegexEmptiness, SatisfiablePatternsAreNotEmpty) {
  for (const char* pattern :
       {"_7007_", ".*", "^$", "^100_", "(1|2)*", "_(10|20) 30_", "$",
        "__", "^_1", "[^0-9 ]*", "1_2*"}) {
    EXPECT_FALSE(AsPathRegex(pattern).language_empty()) << pattern;
  }
}

TEST(AsPathRegexEmptiness, ContradictoryPatternsAreEmpty) {
  for (const char* pattern :
       {"^65010$5",   // `$` pins the end but a digit must follow
        "5^",         // `^` after consuming a character
        "$5",         // same for `$` standalone
        "1_2",        // boundary between two digits with no space
        "[^0-9 ]",    // class excludes every rendered character
        "[a-z]",      // letters never appear in a rendered AS path
        "(1|2)$3"}) {  // anchored alternation followed by more input
    EXPECT_TRUE(AsPathRegex(pattern).language_empty()) << pattern;
  }
}

TEST(AsPathRegexEmptiness, EndAnchorThenBoundaryIsSatisfiable) {
  // `$` then `_`: end-of-string is itself a boundary, so `100$_` matches
  // any path ending in 100 — not an empty language.
  AsPathRegex regex("100$_");
  EXPECT_FALSE(regex.language_empty());
  EXPECT_TRUE(regex.matches({100}));
}

TEST(AsPathRegexEmptiness, EmptyVerdictAgreesWithMatching) {
  // Property check: whenever the analysis says the language is empty, no
  // sample path may match (the converse needs a witness generator).
  Rng rng(0x51ac);
  const char alphabet[] = "0123456789 ()|*+?.[]^$_";
  const std::vector<std::vector<topo::AsNumber>> samples = {
      {},       {0},         {1},          {7007},       {65010},
      {10, 20}, {1, 2, 3},   {100, 7007},  {7007, 100},  {65010, 5},
      {5},      {10, 20, 30}};
  int compiled = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string pattern;
    const std::size_t len = rng.next_below(10);
    for (std::size_t i = 0; i < len; ++i)
      pattern += alphabet[rng.next_below(sizeof alphabet - 1)];
    try {
      AsPathRegex regex(pattern);
      ++compiled;
      if (!regex.language_empty()) continue;
      for (const auto& path : samples)
        EXPECT_FALSE(regex.matches(path))
            << "'" << pattern << "' declared empty yet matched a path";
    } catch (const Error&) {
      // malformed pattern: nothing to check
    }
  }
  EXPECT_GT(compiled, 100);  // the fuzz actually exercised the analysis
}

// ------------------------------------------- parser strictness audit

TEST(PolicyConfig, TopLevelCommandClosesOpenBlock) {
  // The `ip` statement closes the route-map block, so the trailing `match`
  // attaches to nothing and must be rejected instead of silently landing on
  // the previous clause.
  EXPECT_THROW(parse_config("route-map m permit 10\n"
                            "ip as-path access-list 1 permit .*\n"
                            "match as-path 1\n"),
               Error);
}

TEST(PolicyConfig, DuplicateBlocksAreRejected) {
  EXPECT_THROW(parse_config("router bgp 1\nrouter bgp 2\n"), Error);
  EXPECT_THROW(parse_config("negotiation n\nnegotiation n\n"), Error);
}

TEST(PolicyConfig, TrailingTokensAreRejected) {
  EXPECT_THROW(parse_config("router bgp 1 2\n"), Error);
  EXPECT_THROW(
      parse_config("neighbor 10.0.0.1 remote-as 5 junk\n"), Error);
  EXPECT_THROW(
      parse_config("ip as-path access-list 1 permit .* junk\n"), Error);
  EXPECT_THROW(parse_config("route-map m permit 10 junk\n"), Error);
  EXPECT_THROW(parse_config("negotiation filter a b\n"), Error);
}

TEST(PolicyConfig, NegativeTunnelBoundIsRejected) {
  EXPECT_THROW(parse_config("accept negotiation from any\n"
                            "when tunnel_number < -1\n"),
               Error);
}

TEST(PolicyConfig, RecordsSourceLines) {
  const BgpConfig config = parse_config("router bgp 1\n"
                                        "ip as-path access-list 1 permit .*\n"
                                        "route-map m permit 10\n"
                                        "match as-path 1\n");
  ASSERT_EQ(config.route_maps.size(), 1u);
  EXPECT_EQ(config.route_maps[0].line, 3);
  EXPECT_EQ(config.route_maps[0].match_as_path_line, 4);
  ASSERT_EQ(config.access_lists.at(1).entries.size(), 1u);
  EXPECT_EQ(config.access_lists.at(1).entries[0].line, 2);
}

TEST(AsPathRegexFuzz, RandomPatternsNeverCrash) {
  Rng rng(0xbeef);
  const char alphabet[] = "0123456789 ()|*+?.[]^$_\\";
  for (int trial = 0; trial < 500; ++trial) {
    std::string pattern;
    const std::size_t len = rng.next_below(12);
    for (std::size_t i = 0; i < len; ++i)
      pattern += alphabet[rng.next_below(sizeof alphabet - 1)];
    try {
      AsPathRegex regex(pattern);
      // Whatever compiled must also match without crashing.
      regex.matches({100, 200, 300});
      regex.matches_text("");
    } catch (const Error&) {
      // expected for malformed patterns
    }
  }
}

}  // namespace
}  // namespace miro::policy
