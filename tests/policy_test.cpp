#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "policy/aspath_regex.hpp"
#include "policy/policy_config.hpp"
#include "policy/policy_engine.hpp"

namespace miro::policy {
namespace {

// ------------------------------------------------------------ AS-path regex

TEST(AsPathRegex, UnderscoreMatchesWholeAsNumber) {
  AsPathRegex regex("_312_");
  EXPECT_TRUE(regex.matches({100, 312, 200}));
  EXPECT_TRUE(regex.matches({312}));
  EXPECT_TRUE(regex.matches({312, 100}));
  EXPECT_TRUE(regex.matches({100, 312}));
  EXPECT_FALSE(regex.matches({1312}));
  EXPECT_FALSE(regex.matches({3120}));
  EXPECT_FALSE(regex.matches({13120}));
  EXPECT_FALSE(regex.matches({100, 200}));
}

TEST(AsPathRegex, AnchorsBindToStartAndEnd) {
  AsPathRegex starts("^100_");
  EXPECT_TRUE(starts.matches({100, 200}));
  EXPECT_FALSE(starts.matches({200, 100}));
  AsPathRegex ends("_200$");
  EXPECT_TRUE(ends.matches({100, 200}));
  EXPECT_FALSE(ends.matches({200, 100}));
  AsPathRegex exact("^100$");
  EXPECT_TRUE(exact.matches({100}));
  EXPECT_FALSE(exact.matches({100, 200}));
}

TEST(AsPathRegex, EmptyPatternMatchesEmptyPath) {
  AsPathRegex empty("^$");
  EXPECT_TRUE(empty.matches({}));
  EXPECT_FALSE(empty.matches({1}));
}

TEST(AsPathRegex, AlternationAndGrouping) {
  AsPathRegex regex("_(701|1239)_");
  EXPECT_TRUE(regex.matches({100, 701, 200}));
  EXPECT_TRUE(regex.matches({100, 1239}));
  EXPECT_FALSE(regex.matches({100, 7011}));
}

TEST(AsPathRegex, RepetitionOperators) {
  AsPathRegex star("^10*$");
  EXPECT_TRUE(star.matches_text("1"));
  EXPECT_TRUE(star.matches_text("1000"));
  EXPECT_FALSE(star.matches_text("11"));
  AsPathRegex plus("^10+$");
  EXPECT_FALSE(plus.matches_text("1"));
  EXPECT_TRUE(plus.matches_text("100"));
  AsPathRegex question("^10?$");
  EXPECT_TRUE(question.matches_text("1"));
  EXPECT_TRUE(question.matches_text("10"));
  EXPECT_FALSE(question.matches_text("100"));
}

TEST(AsPathRegex, DotAndCharacterClasses) {
  AsPathRegex dot("^1.3$");
  EXPECT_TRUE(dot.matches_text("123"));
  EXPECT_TRUE(dot.matches_text("1x3"));
  EXPECT_FALSE(dot.matches_text("13"));
  AsPathRegex digits("^[0-9]+$");
  EXPECT_TRUE(digits.matches_text("8075"));
  EXPECT_FALSE(digits.matches_text("80a5"));
  AsPathRegex negated("^[^5]+$");
  EXPECT_TRUE(negated.matches_text("1234"));
  EXPECT_FALSE(negated.matches_text("15"));
}

TEST(AsPathRegex, SubstringSemanticsByDefault) {
  AsPathRegex regex("701");
  EXPECT_TRUE(regex.matches({17012}));  // matches inside a number, as Cisco
  EXPECT_TRUE(regex.matches({701}));
}

TEST(AsPathRegex, GroupRepetition) {
  AsPathRegex regex("^(12 )+34$");
  EXPECT_TRUE(regex.matches({12, 34}));
  EXPECT_TRUE(regex.matches({12, 12, 34}));
  EXPECT_FALSE(regex.matches({34}));
}

TEST(AsPathRegex, SyntaxErrorsThrow) {
  EXPECT_THROW(AsPathRegex("(12"), Error);
  EXPECT_THROW(AsPathRegex("12)"), Error);
  EXPECT_THROW(AsPathRegex("[12"), Error);
  EXPECT_THROW(AsPathRegex("*12"), Error);
  EXPECT_THROW(AsPathRegex("12\\"), Error);  // dangling escape
}

TEST(AsPathRegex, EscapedLiterals) {
  AsPathRegex regex("^1\\.2$");
  EXPECT_TRUE(regex.matches_text("1.2"));
  EXPECT_FALSE(regex.matches_text("1x2"));
}

// ----------------------------------------------------------------- parsing

const char* kSection61Example = R"(
router bgp 100
!
neighbor 12.34.56.1 route-map FIX-LOCALPREF in
neighbor 12.34.56.1 remote-as 1
!
route-map FIX-LOCALPREF permit
match as-path 200
set local-preference 250
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
)";

TEST(PolicyConfig, ParsesSection61Example) {
  const BgpConfig config = parse_config(kSection61Example);
  EXPECT_EQ(config.local_as, 100u);
  ASSERT_EQ(config.neighbors.size(), 1u);
  EXPECT_EQ(config.neighbors[0].remote_as, 1u);
  EXPECT_EQ(config.neighbors[0].route_map_in, "FIX-LOCALPREF");
  ASSERT_EQ(config.route_map("FIX-LOCALPREF").size(), 1u);
  ASSERT_NE(config.access_list(200), nullptr);
  EXPECT_EQ(config.access_list(200)->entries.size(), 2u);
}

TEST(PolicyEngine, RouteMapSetsLocalPrefOnPermittedRoutes) {
  PolicyEngine engine(parse_config(kSection61Example));
  // Routes avoiding AS 312 fall through the deny to the permit-any entry...
  // wait: access-list 200 DENIES _312_ and permits everything else, and the
  // route map permits what the list permits, setting local-pref 250.
  auto clean = engine.apply_route_map("FIX-LOCALPREF",
                                      {{100, 200, 300}, 100});
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->local_pref, 250);
  auto dirty = engine.apply_route_map("FIX-LOCALPREF", {{100, 312}, 100});
  EXPECT_FALSE(dirty.has_value());  // matched deny entry -> filtered
}

const char* kSection63Requester = R"(
router bgp 100
!
route-map AVOID_AS permit 10
match empty path 200
try negotiation NEG-312
!
ip as-path access-list 200 deny _312_
ip as-path access-list 200 permit .*
!
negotiation NEG-312
match all path _312_
start negotiation with maximum cost 250
)";

TEST(PolicyConfig, ParsesSection63RequesterSide) {
  const BgpConfig config = parse_config(kSection63Requester);
  const auto clauses = config.route_map("AVOID_AS");
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_EQ(clauses[0]->sequence, 10);
  EXPECT_EQ(clauses[0]->match_empty_path_acl, 200);
  EXPECT_EQ(clauses[0]->try_negotiation, "NEG-312");
  const auto it = config.negotiations.find("NEG-312");
  ASSERT_NE(it, config.negotiations.end());
  EXPECT_EQ(it->second.max_cost, 250);
  ASSERT_TRUE(it->second.target_path_regex.has_value());
}

TEST(PolicyEngine, TriggerFiresOnlyWhenNoCandidatePasses) {
  PolicyEngine engine(parse_config(kSection63Requester));
  // All candidates traverse AS 312: the empty-path condition holds.
  const std::vector<CandidateRoute> all_bad{{{20, 312, 99}, 400},
                                            {{30, 40, 312, 99}, 200}};
  const auto trigger = engine.evaluate_trigger("AVOID_AS", all_bad);
  ASSERT_TRUE(trigger.has_value());
  EXPECT_EQ(trigger->negotiation_name, "NEG-312");
  EXPECT_EQ(trigger->max_cost, 250);
  // Targets: ASes sitting before 312 on the offending paths, nearest first.
  EXPECT_EQ(trigger->targets, (std::vector<topo::AsNumber>{20, 30, 40}));

  // One clean candidate suppresses the trigger.
  const std::vector<CandidateRoute> one_good{{{20, 312, 99}, 400},
                                             {{50, 60, 99}, 200}};
  EXPECT_FALSE(engine.evaluate_trigger("AVOID_AS", one_good).has_value());
}

const char* kSection63Responder = R"(
router bgp 150
!
accept negotiation from any
when tunnel_number < 1000
!
negotiation filter FILTER-1
filter permit local_pref > 200
set tunnel_cost 120
filter permit local_pref > 100
set tunnel_cost 180
)";

TEST(PolicyConfig, ParsesSection63ResponderSide) {
  const BgpConfig config = parse_config(kSection63Responder);
  ASSERT_TRUE(config.responder.has_value());
  EXPECT_TRUE(config.responder->accept_any);
  EXPECT_EQ(config.responder->max_tunnels, 1000u);
  ASSERT_EQ(config.responder->filters.size(), 2u);
  EXPECT_EQ(config.responder->filters[0].tunnel_cost, 120);
  EXPECT_EQ(config.responder->filters[1].tunnel_cost, 180);
}

TEST(PolicyEngine, ResponderPricingByLocalPrefBand) {
  PolicyEngine engine(parse_config(kSection63Responder));
  // Customer routes (local_pref > 200) sell for 120, peer routes for 180,
  // provider routes (<= 100) are not offered at all.
  EXPECT_EQ(engine.price_for({{1, 2}, 400}), 120);
  EXPECT_EQ(engine.price_for({{1, 2}, 150}), 180);
  EXPECT_FALSE(engine.price_for({{1, 2}, 100}).has_value());
}

TEST(PolicyEngine, ResponderAdmission) {
  PolicyEngine engine(parse_config(kSection63Responder));
  EXPECT_TRUE(engine.admits(42, 0));
  EXPECT_TRUE(engine.admits(42, 999));
  EXPECT_FALSE(engine.admits(42, 1000));  // tunnel_number limit reached
}

TEST(PolicyConfig, AcceptFromSpecificAses) {
  const BgpConfig config = parse_config(
      "accept negotiation from as 100 200\nwhen tunnel_number < 5\n");
  PolicyEngine engine(config);
  EXPECT_TRUE(engine.admits(100, 0));
  EXPECT_TRUE(engine.admits(200, 0));
  EXPECT_FALSE(engine.admits(300, 0));
}

TEST(PolicyConfig, RouteMapClausesEvaluateInSequenceOrder) {
  const char* text = R"(
route-map M permit 20
match as-path 1
set local-preference 100
route-map M deny 10
match as-path 2
ip as-path access-list 1 permit .*
ip as-path access-list 2 permit _666_
)";
  PolicyEngine engine(parse_config(text));
  // Sequence 10 (deny _666_) runs before sequence 20.
  EXPECT_FALSE(engine.apply_route_map("M", {{666}, 50}).has_value());
  auto ok = engine.apply_route_map("M", {{100}, 50});
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->local_pref, 100);
}

TEST(PolicyConfig, MalformedStatementsThrowWithLineNumbers) {
  try {
    parse_config("router bgp 100\nbogus statement here\n");
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_config("route-map X maybe 10\n"), Error);
  EXPECT_THROW(parse_config("ip as-path access-list x permit .*\n"), Error);
  EXPECT_THROW(parse_config("when tunnel_number < 5\n"), Error);  // no block
  EXPECT_THROW(parse_config("negotiation\n"), Error);
  EXPECT_THROW(parse_config("set local-preference 10\n"), Error);
}

TEST(PolicyEngine, UnknownRouteMapThrows) {
  PolicyEngine engine(parse_config("router bgp 1\n"));
  EXPECT_THROW(engine.apply_route_map("NOPE", {{1}, 1}), Error);
}

TEST(PolicyConfig, RandomGarbageNeverCrashes) {
  // Fuzz-ish robustness: arbitrary token soup must either parse or throw
  // miro::Error — never crash or hang.
  Rng rng(0xfeed);
  const char* words[] = {"router",    "bgp",    "route-map", "permit",
                         "deny",      "match",  "set",       "negotiation",
                         "ip",        "as-path", "access-list", "filter",
                         "when",      "accept", "from",      "any",
                         "100",       "-5",     "_312_",     "(",
                         "tunnel_number", "<",  "local_pref", ">",
                         "!",         "x"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string config;
    const std::size_t lines = rng.next_below(6) + 1;
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t tokens = rng.next_below(6) + 1;
      for (std::size_t t = 0; t < tokens; ++t) {
        config += words[rng.next_below(std::size(words))];
        config += ' ';
      }
      config += '\n';
    }
    try {
      parse_config(config);
    } catch (const Error&) {
      // expected for most random inputs
    }
  }
}

TEST(AsPathRegexFuzz, RandomPatternsNeverCrash) {
  Rng rng(0xbeef);
  const char alphabet[] = "0123456789 ()|*+?.[]^$_\\";
  for (int trial = 0; trial < 500; ++trial) {
    std::string pattern;
    const std::size_t len = rng.next_below(12);
    for (std::size_t i = 0; i < len; ++i)
      pattern += alphabet[rng.next_below(sizeof alphabet - 1)];
    try {
      AsPathRegex regex(pattern);
      // Whatever compiled must also match without crashing.
      regex.matches({100, 200, 300});
      regex.matches_text("");
    } catch (const Error&) {
      // expected for malformed patterns
    }
  }
}

}  // namespace
}  // namespace miro::policy
