// Seeded chaos sweeps over the negotiation protocol: per-message drop,
// duplication, and reorder-jitter applied to every control-plane link.
// The acceptance bar:
//   - every initiated negotiation terminates (tunnel or clean failure
//     callback, exactly once);
//   - no duplicate tunnel is ever minted for one negotiation id;
//   - after a final quiescent period both agents hold zero orphaned soft
//     state;
//   - with drop <= 10%, retransmission keeps the establishment rate >= 90%
//     (vs. timeout-only failure without it).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "netsim/fault_injection.hpp"
#include "scenarios.hpp"

namespace miro::core {
namespace {

using test::Figure31Topology;

struct ChaosResult {
  std::size_t initiated = 0;
  std::size_t callbacks = 0;    ///< completions (success or clean failure)
  std::size_t established = 0;
  MiroAgent::Stats requester;
  MiroAgent::Stats responder;
  sim::FaultPlane::Counters plane;
  std::size_t leaked_upstream = 0;   ///< after the quiescent period
  std::size_t leaked_downstream = 0;
};

/// Runs `negotiations` staggered avoid-E requests from A to B under the
/// given fault profile, then tears everything down (faults still on) and
/// lets the system quiesce.
ChaosResult run_chaos(const sim::LinkFaultProfile& faults, std::uint64_t seed,
                      std::size_t negotiations, std::uint32_t max_retries) {
  Figure31Topology fig;
  RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  Bus bus(scheduler);
  sim::FaultPlane plane(seed);
  plane.set_default_profile(faults);
  bus.set_fault_plane(&plane);

  SoftStateConfig ss;
  ss.max_retries = max_retries;
  ss.rng_seed = seed;
  MiroAgent a(fig.a, store, bus, {}, ss);
  MiroAgent b(fig.b, store, bus, {}, ss);

  ChaosResult result;
  result.initiated = negotiations;
  const sim::Time stagger = 250;
  for (std::size_t i = 0; i < negotiations; ++i) {
    scheduler.at(i * stagger, [&, i]() {
      a.request(fig.b, fig.a, fig.f, fig.e, std::nullopt,
                [&result](const NegotiationOutcome& o) {
                  ++result.callbacks;
                  if (o.established) ++result.established;
                });
    });
  }
  const sim::Time sweep_end =
      static_cast<sim::Time>(negotiations) * stagger + 3000;
  scheduler.run_until(sweep_end);

  // Drain: actively tear down whatever survived, with the lossy network
  // still in place, and give soft-state expiry room to mop up the rest.
  std::vector<net::TunnelId> held;
  for (const auto& [id, up] : a.upstream_tunnels()) held.push_back(id);
  for (net::TunnelId id : held) a.teardown(id);
  scheduler.run_until(sweep_end + 2500);

  result.requester = a.stats();
  result.responder = b.stats();
  result.plane = plane.totals();
  result.leaked_upstream = a.upstream_tunnels().size();
  result.leaked_downstream = b.tunnels().active_count();
  return result;
}

constexpr std::size_t kNegotiations = 30;

TEST(ChaosSweep, EveryNegotiationTerminatesAndNoSoftStateLeaks) {
  for (double drop : {0.05, 0.10, 0.20, 0.30}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const sim::LinkFaultProfile faults{drop, /*duplicate=*/0.10,
                                         /*jitter_max=*/25};
      const ChaosResult r =
          run_chaos(faults, seed, kNegotiations, /*max_retries=*/5);
      SCOPED_TRACE(::testing::Message()
                   << "drop=" << drop << " seed=" << seed);
      // Termination: the completion callback fired exactly once per request.
      EXPECT_EQ(r.callbacks, r.initiated);
      EXPECT_EQ(r.requester.requests_sent, r.initiated);
      // Idempotence: at most one tunnel ever minted per negotiation id.
      EXPECT_LE(r.responder.tunnels_established, r.initiated);
      // Quiescence: zero orphaned soft state on either side, and every
      // minted tunnel was reclaimed by exactly one of teardown or expiry.
      EXPECT_EQ(r.leaked_upstream, 0u);
      EXPECT_EQ(r.leaked_downstream, 0u);
      EXPECT_EQ(r.responder.tunnels_established,
                r.responder.tunnels_torn_down + r.responder.tunnels_expired);
      // The chaos actually bit: the plane dropped traffic, and with
      // losses this heavy the requester had to retransmit.
      EXPECT_GT(r.plane.dropped, 0u);
      EXPECT_GT(r.requester.retransmissions, 0u);
      if (drop <= 0.10) {
        // Retransmission holds the establishment rate at >= 90%.
        EXPECT_GE(r.established * 10, r.initiated * 9);
      }
    }
  }
}

TEST(ChaosSweep, RetransmissionBeatsTimeoutOnlyFailureAtTenPercentDrop) {
  const sim::LinkFaultProfile faults{0.10, 0.10, 25};
  const ChaosResult with_retries =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/5);
  const ChaosResult without_retries =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/0);
  // Without retransmission a negotiation survives only if all four
  // handshake messages dodge the 10% loss (~66% per negotiation); with it,
  // effectively all of them do.
  EXPECT_GE(with_retries.established * 10, with_retries.initiated * 9);
  EXPECT_GT(with_retries.established, without_retries.established);
  // Both variants still terminate and stay leak-free — the safety
  // properties never depended on retransmission, only the success rate.
  EXPECT_EQ(without_retries.callbacks, without_retries.initiated);
  EXPECT_EQ(without_retries.leaked_upstream, 0u);
  EXPECT_EQ(without_retries.leaked_downstream, 0u);
}

TEST(ChaosSweep, IdenticalSeedsReproduceRunsBitForBit) {
  const sim::LinkFaultProfile faults{0.20, 0.10, 25};
  const ChaosResult one = run_chaos(faults, 42, kNegotiations, 5);
  const ChaosResult two = run_chaos(faults, 42, kNegotiations, 5);
  EXPECT_EQ(one.established, two.established);
  EXPECT_EQ(one.requester.retransmissions, two.requester.retransmissions);
  EXPECT_EQ(one.requester.negotiations_abandoned,
            two.requester.negotiations_abandoned);
  EXPECT_EQ(one.responder.tunnels_established,
            two.responder.tunnels_established);
  EXPECT_EQ(one.responder.duplicates_suppressed,
            two.responder.duplicates_suppressed);
  EXPECT_EQ(one.plane.sent, two.plane.sent);
  EXPECT_EQ(one.plane.dropped, two.plane.dropped);
  EXPECT_EQ(one.plane.duplicated, two.plane.duplicated);
  EXPECT_EQ(one.plane.delivered, two.plane.delivered);
}

}  // namespace
}  // namespace miro::core
