// Seeded chaos sweeps over the negotiation protocol: per-message drop,
// duplication, and reorder-jitter applied to every control-plane link.
// The acceptance bar:
//   - every initiated negotiation terminates (tunnel or clean failure
//     callback, exactly once);
//   - no duplicate tunnel is ever minted for one negotiation id;
//   - after a final quiescent period both agents hold zero orphaned soft
//     state;
//   - with drop <= 10%, retransmission keeps the establishment rate >= 90%
//     (vs. timeout-only failure without it).
// Observability is part of the bar: the retransmission/drop assertions read
// the structured trace and the metrics registry (the external surfaces a
// production operator would see), not the agents' internal structs, and every
// negotiation's causal history must reconstruct cleanly from the trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/route_store.hpp"
#include "netsim/fault_injection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenarios.hpp"

namespace miro::core {
namespace {

using test::Figure31Topology;

struct ChaosResult {
  std::size_t initiated = 0;
  std::size_t callbacks = 0;    ///< completions (success or clean failure)
  std::size_t established = 0;
  std::vector<std::uint64_t> negotiation_ids;
  topo::NodeId requester_node = topo::kInvalidNode;
  MiroAgent::Stats requester;
  MiroAgent::Stats responder;
  sim::BusStats bus;
  sim::FaultPlane::Counters plane;
  std::size_t leaked_upstream = 0;   ///< after the quiescent period
  std::size_t leaked_downstream = 0;
  obs::MetricsRegistry metrics;      ///< exported after the run
};

/// Runs `negotiations` staggered avoid-E requests from A to B under the
/// given fault profile, then tears everything down (faults still on) and
/// lets the system quiesce. When `trace` is non-null the bus and both
/// agents record into it.
ChaosResult run_chaos(const sim::LinkFaultProfile& faults, std::uint64_t seed,
                      std::size_t negotiations, std::uint32_t max_retries,
                      obs::TraceRecorder* trace = nullptr) {
  Figure31Topology fig;
  RouteStore store(fig.graph);
  sim::Scheduler scheduler;
  Bus bus(scheduler);
  sim::FaultPlane plane(seed);
  plane.set_default_profile(faults);
  bus.set_fault_plane(&plane);
  bus.set_trace(trace);

  SoftStateConfig ss;
  ss.max_retries = max_retries;
  ss.rng_seed = seed;
  MiroAgent a(fig.a, store, bus, {}, ss);
  MiroAgent b(fig.b, store, bus, {}, ss);
  a.set_trace(trace);
  b.set_trace(trace);

  ChaosResult result;
  result.initiated = negotiations;
  result.requester_node = fig.a;
  const sim::Time stagger = 250;
  for (std::size_t i = 0; i < negotiations; ++i) {
    scheduler.at(i * stagger, [&, i]() {
      const std::uint64_t id =
          a.request(fig.b, fig.a, fig.f, fig.e, std::nullopt,
                    [&result](const NegotiationOutcome& o) {
                      ++result.callbacks;
                      if (o.established) ++result.established;
                    });
      result.negotiation_ids.push_back(id);
    });
  }
  const sim::Time sweep_end =
      static_cast<sim::Time>(negotiations) * stagger + 3000;
  scheduler.run_until(sweep_end);

  // Drain: actively tear down whatever survived, with the lossy network
  // still in place, and give soft-state expiry room to mop up the rest.
  std::vector<net::TunnelId> held;
  for (const auto& [id, up] : a.upstream_tunnels()) held.push_back(id);
  for (net::TunnelId id : held) a.teardown(id);
  scheduler.run_until(sweep_end + 2500);

  result.requester = a.stats();
  result.responder = b.stats();
  result.bus = bus.stats();
  result.plane = plane.totals();
  result.leaked_upstream = a.upstream_tunnels().size();
  result.leaked_downstream = b.tunnels().active_count();
  a.export_metrics(result.metrics, "requester");
  b.export_metrics(result.metrics, "responder");
  bus.export_metrics(result.metrics, "bus");
  return result;
}

constexpr std::size_t kNegotiations = 30;

TEST(ChaosSweep, EveryNegotiationTerminatesAndNoSoftStateLeaks) {
  for (double drop : {0.05, 0.10, 0.20, 0.30}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const sim::LinkFaultProfile faults{drop, /*duplicate=*/0.10,
                                         /*jitter_max=*/25};
      obs::TraceRecorder trace(1 << 16);
      const ChaosResult r =
          run_chaos(faults, seed, kNegotiations, /*max_retries=*/5, &trace);
      SCOPED_TRACE(::testing::Message()
                   << "drop=" << drop << " seed=" << seed);
      // Termination: the completion callback fired exactly once per request.
      EXPECT_EQ(r.callbacks, r.initiated);
      EXPECT_EQ(r.metrics.counter("requester.requests_sent").value(),
                r.initiated);
      // Idempotence: at most one tunnel ever minted per negotiation id.
      EXPECT_LE(r.metrics.counter("responder.tunnels_established").value(),
                r.initiated);
      // Quiescence: zero orphaned soft state on either side, and every
      // minted tunnel was reclaimed by exactly one of teardown or expiry.
      EXPECT_EQ(r.leaked_upstream, 0u);
      EXPECT_EQ(r.leaked_downstream, 0u);
      EXPECT_EQ(r.responder.tunnels_established,
                r.responder.tunnels_torn_down + r.responder.tunnels_expired);
      // The chaos actually bit — asserted on the traced bus drops and
      // retransmissions rather than the agents' internals.
      EXPECT_GT(trace.count(obs::EventType::BusDrop), 0u);
      EXPECT_GT(trace.count(obs::EventType::Retransmit, r.requester_node),
                0u);
      // The trace agrees with the delivery accounting.
      EXPECT_EQ(trace.count(obs::EventType::BusDrop),
                r.bus.dropped_link_down + r.bus.dropped_faults +
                    r.bus.dropped_unattached);
      if (drop <= 0.10) {
        // Retransmission holds the establishment rate at >= 90%.
        EXPECT_GE(r.established * 10, r.initiated * 9);
      }
    }
  }
}

TEST(ChaosSweep, BusAccountingInvariantHoldsUnderDuplication) {
  // Every copy put on the wire has exactly one terminal outcome, duplicated
  // fault-plane copies included (counted via duplicates_scheduled).
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    const sim::LinkFaultProfile faults{0.20, /*duplicate=*/0.25,
                                       /*jitter_max=*/25};
    const ChaosResult r = run_chaos(faults, seed, kNegotiations, 5);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    EXPECT_GT(r.bus.duplicates_scheduled, 0u);
    EXPECT_EQ(r.bus.sent + r.bus.duplicates_scheduled,
              r.bus.delivered + r.bus.dropped_link_down +
                  r.bus.dropped_faults + r.bus.dropped_unattached);
  }
}

TEST(ChaosSweep, TraceReconstructsEveryNegotiationAndMatchesMetrics) {
  const sim::LinkFaultProfile faults{0.10, /*duplicate=*/0.10,
                                     /*jitter_max=*/25};
  const std::string jsonl_path =
      ::testing::TempDir() + "chaos_sweep_trace.jsonl";
  obs::TraceRecorder trace(1 << 16);
  obs::JsonlFileSink jsonl(jsonl_path);
  trace.add_sink(&jsonl);
  const ChaosResult r =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/5, &trace);
  jsonl.flush();

  // The JSONL file holds one line per recorded event.
  EXPECT_EQ(jsonl.lines_written(), trace.events_recorded());
  std::ifstream in(jsonl_path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, jsonl.lines_written());
  std::remove(jsonl_path.c_str());

  // Per-negotiation causal reconstruction: each history begins with the
  // request, keeps its phases ordered, and ends in exactly one of
  // established / failed.
  ASSERT_EQ(r.negotiation_ids.size(), r.initiated);
  std::size_t reconstructed_retransmits = 0;
  std::size_t established = 0;
  for (std::uint64_t id : r.negotiation_ids) {
    const obs::NegotiationTimeline timeline =
        obs::reconstruct_negotiation(trace, id);
    SCOPED_TRACE(::testing::Message()
                 << "negotiation " << id << ": " << timeline.summary());
    ASSERT_FALSE(timeline.events.empty());
    EXPECT_EQ(timeline.events.front().type,
              obs::EventType::NegotiationRequested);
    EXPECT_NE(timeline.established, timeline.failed);
    if (timeline.established) ++established;
    // Phase order: request < offers < accept < established, by sim time.
    obs::Time requested = 0, offers = 0, accepted = 0, done = 0;
    for (const obs::TraceEvent& event : timeline.events) {
      switch (event.type) {
        case obs::EventType::NegotiationRequested:
          requested = event.time;
          break;
        case obs::EventType::OffersReceived:
          if (offers == 0) offers = event.time;
          break;
        case obs::EventType::AcceptSent:
          if (accepted == 0) accepted = event.time;
          break;
        case obs::EventType::NegotiationEstablished:
          done = event.time;
          break;
        default: break;
      }
    }
    if (timeline.established) {
      EXPECT_LE(requested, offers);
      EXPECT_LE(offers, accepted);
      EXPECT_LE(accepted, done);
    }
    reconstructed_retransmits += timeline.retransmits;
  }
  EXPECT_EQ(established, r.established);

  // The trace's retransmission story matches the metrics registry: handshake
  // retransmits are tied to negotiation ids; the remainder are blind
  // teardown re-sends (traced with a tunnel id but no negotiation id).
  const std::uint64_t metric_retransmissions =
      r.metrics.counter("requester.retransmissions").value();
  const std::size_t traced_retransmits =
      trace.count(obs::EventType::Retransmit, r.requester_node);
  EXPECT_EQ(traced_retransmits, metric_retransmissions);
  EXPECT_LE(reconstructed_retransmits, traced_retransmits);
  EXPECT_GT(reconstructed_retransmits, 0u);
}

TEST(ChaosSweep, DisabledTracingRecordsAndAllocatesNothing) {
  const sim::LinkFaultProfile faults{0.10, 0.10, 25};
  // A recorder + counting sink exist but are never attached to the system
  // under test — the null-recorder fast path must record zero events.
  obs::TraceRecorder idle_recorder(16);
  obs::CountingSink idle_sink;
  idle_recorder.add_sink(&idle_sink);
  const ChaosResult r =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/5,
                /*trace=*/nullptr);
  EXPECT_EQ(r.callbacks, r.initiated);
  EXPECT_EQ(idle_recorder.events_recorded(), 0u);
  EXPECT_EQ(idle_sink.count(), 0u);
  // And the disabled run behaves identically to a traced run with the same
  // seed — tracing is observation, never behavior.
  obs::TraceRecorder trace(1 << 16);
  const ChaosResult traced =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/5, &trace);
  EXPECT_EQ(traced.established, r.established);
  EXPECT_EQ(traced.requester.retransmissions, r.requester.retransmissions);
  EXPECT_EQ(traced.plane.sent, r.plane.sent);
}

TEST(ChaosSweep, RetransmissionBeatsTimeoutOnlyFailureAtTenPercentDrop) {
  const sim::LinkFaultProfile faults{0.10, 0.10, 25};
  const ChaosResult with_retries =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/5);
  const ChaosResult without_retries =
      run_chaos(faults, /*seed=*/7, kNegotiations, /*max_retries=*/0);
  // Without retransmission a negotiation survives only if all four
  // handshake messages dodge the 10% loss (~66% per negotiation); with it,
  // effectively all of them do.
  EXPECT_GE(with_retries.established * 10, with_retries.initiated * 9);
  EXPECT_GT(with_retries.established, without_retries.established);
  // Both variants still terminate and stay leak-free — the safety
  // properties never depended on retransmission, only the success rate.
  EXPECT_EQ(without_retries.callbacks, without_retries.initiated);
  EXPECT_EQ(without_retries.leaked_upstream, 0u);
  EXPECT_EQ(without_retries.leaked_downstream, 0u);
}

TEST(ChaosSweep, IdenticalSeedsReproduceRunsBitForBit) {
  const sim::LinkFaultProfile faults{0.20, 0.10, 25};
  const ChaosResult one = run_chaos(faults, 42, kNegotiations, 5);
  const ChaosResult two = run_chaos(faults, 42, kNegotiations, 5);
  EXPECT_EQ(one.established, two.established);
  EXPECT_EQ(one.requester.retransmissions, two.requester.retransmissions);
  EXPECT_EQ(one.requester.negotiations_abandoned,
            two.requester.negotiations_abandoned);
  EXPECT_EQ(one.responder.tunnels_established,
            two.responder.tunnels_established);
  EXPECT_EQ(one.responder.duplicates_suppressed,
            two.responder.duplicates_suppressed);
  EXPECT_EQ(one.plane.sent, two.plane.sent);
  EXPECT_EQ(one.plane.dropped, two.plane.dropped);
  EXPECT_EQ(one.plane.duplicated, two.plane.duplicated);
  EXPECT_EQ(one.plane.delivered, two.plane.delivered);
}

}  // namespace
}  // namespace miro::core
