// Failure-injection sweeps: the message-level BGP protocol under randomized
// link failures and restorations on generated topologies, cross-checked
// against the closed-form solver on the degraded graph after every event.
#include <gtest/gtest.h>

#include <set>

#include "bgp/route_solver.hpp"
#include "bgp/session_bgp.hpp"
#include "topology/generator.hpp"

namespace miro::bgp {
namespace {

/// Rebuilds the graph without the given undirected links.
topo::AsGraph degraded_copy(
    const topo::AsGraph& graph,
    const std::set<std::pair<topo::NodeId, topo::NodeId>>& removed) {
  topo::AsGraph copy;
  for (topo::NodeId id = 0; id < graph.node_count(); ++id)
    copy.add_as(graph.as_number(id));
  for (topo::NodeId id = 0; id < graph.node_count(); ++id) {
    for (const topo::Neighbor& n : graph.neighbors(id)) {
      if (n.node < id) continue;  // each link once, from the lower id
      const auto key = std::make_pair(id, n.node);
      if (removed.find(key) != removed.end()) continue;
      switch (n.rel) {
        case topo::Relationship::Customer:
          copy.add_customer_provider(id, n.node);
          break;
        case topo::Relationship::Provider:
          copy.add_customer_provider(n.node, id);
          break;
        case topo::Relationship::Peer:
          copy.add_peer(id, n.node);
          break;
        case topo::Relationship::Sibling:
          copy.add_sibling(id, n.node);
          break;
      }
    }
  }
  return copy;
}

class FailureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSweep, ProtocolTracksSolverThroughFailuresAndRepairs) {
  topo::GeneratorParams params = topo::profile("tiny");
  params.node_count = 90;
  params.seed = GetParam();
  const topo::AsGraph graph = topo::generate(params);
  const topo::NodeId destination = 5;

  sim::Scheduler scheduler;
  SessionedBgpNetwork network(graph, destination, scheduler);
  network.start();
  scheduler.run_all(5'000'000);

  // Collect candidate links (skip links incident to the destination half the
  // time so both partition-ish and transit failures occur).
  std::vector<std::pair<topo::NodeId, topo::NodeId>> links;
  for (topo::NodeId id = 0; id < graph.node_count(); ++id)
    for (const topo::Neighbor& n : graph.neighbors(id))
      if (n.node > id) links.emplace_back(id, n.node);

  Rng rng(GetParam() * 7919 + 13);
  std::set<std::pair<topo::NodeId, topo::NodeId>> down;
  for (int event = 0; event < 12; ++event) {
    // Randomly fail a live link or restore a dead one.
    const bool restore = !down.empty() && rng.chance(0.4);
    if (restore) {
      auto it = down.begin();
      std::advance(it, static_cast<long>(rng.next_below(down.size())));
      network.restore_link(it->first, it->second);
      down.erase(it);
    } else {
      const auto& link = links[rng.next_below(links.size())];
      if (down.count(link)) continue;
      down.insert(link);
      network.fail_link(link.first, link.second);
    }
    scheduler.run_all(5'000'000);

    // The protocol state must equal the stable solution on the degraded
    // graph, node by node.
    const topo::AsGraph degraded = degraded_copy(graph, down);
    StableRouteSolver solver(degraded);
    const RoutingTree tree = solver.solve(destination);
    for (topo::NodeId node = 0; node < graph.node_count(); ++node) {
      ASSERT_EQ(network.has_route(node), tree.reachable(node))
          << "node " << node << " after event " << event << " seed "
          << GetParam();
      if (tree.reachable(node)) {
        EXPECT_EQ(network.path_of(node), tree.path_of(node))
            << "node " << node << " after event " << event;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace miro::bgp
