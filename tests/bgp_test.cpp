#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "bgp/decision_process.hpp"
#include "bgp/path_table.hpp"
#include "common/error.hpp"
#include "bgp/path_vector_engine.hpp"
#include "bgp/route.hpp"
#include "bgp/route_solver.hpp"
#include "bgp/router_level.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro::bgp {

// Corrupts a solved tree's next-hop entries to exercise the bounded-walk
// guards — states no correct solver run can produce.
struct RoutingTreeTestAccess {
  static void set_next_hop(RoutingTree& tree, topo::NodeId node,
                           topo::NodeId next_hop) {
    tree.entries_[node].reachable = true;
    tree.entries_[node].next_hop = next_hop;
  }
};

namespace {

using test::Figure31Topology;
using topo::Relationship;

TEST(RouteClass, ClassifyByFirstLink) {
  EXPECT_EQ(classify(Relationship::Customer, RouteClass::Provider),
            RouteClass::Customer);
  EXPECT_EQ(classify(Relationship::Peer, RouteClass::Customer),
            RouteClass::Peer);
  EXPECT_EQ(classify(Relationship::Provider, RouteClass::Self),
            RouteClass::Provider);
}

TEST(RouteClass, SiblingInheritsNeighborClass) {
  EXPECT_EQ(classify(Relationship::Sibling, RouteClass::Peer),
            RouteClass::Peer);
  EXPECT_EQ(classify(Relationship::Sibling, RouteClass::Provider),
            RouteClass::Provider);
  // All-sibling chain back to the origin counts as a customer route.
  EXPECT_EQ(classify(Relationship::Sibling, RouteClass::Self),
            RouteClass::Customer);
}

TEST(RouteClass, ConventionalExportRules) {
  // Customer routes go everywhere.
  for (auto rel : {Relationship::Customer, Relationship::Peer,
                   Relationship::Provider, Relationship::Sibling}) {
    EXPECT_TRUE(conventional_export_allows(RouteClass::Customer, rel));
    EXPECT_TRUE(conventional_export_allows(RouteClass::Self, rel));
  }
  // Peer/provider routes only to customers and siblings.
  for (auto cls : {RouteClass::Peer, RouteClass::Provider}) {
    EXPECT_TRUE(conventional_export_allows(cls, Relationship::Customer));
    EXPECT_TRUE(conventional_export_allows(cls, Relationship::Sibling));
    EXPECT_FALSE(conventional_export_allows(cls, Relationship::Peer));
    EXPECT_FALSE(conventional_export_allows(cls, Relationship::Provider));
  }
}

TEST(RouteClass, LocalPrefBandsAreOrdered) {
  EXPECT_GT(conventional_local_pref(RouteClass::Customer),
            conventional_local_pref(RouteClass::Peer));
  EXPECT_GT(conventional_local_pref(RouteClass::Peer),
            conventional_local_pref(RouteClass::Provider));
}

TEST(Route, TraversesAndAccessors) {
  Route route{{0, 1, 2}, RouteClass::Customer};
  EXPECT_EQ(route.owner(), 0u);
  EXPECT_EQ(route.destination(), 2u);
  EXPECT_EQ(route.next_hop(), 1u);
  EXPECT_EQ(route.length(), 2u);
  EXPECT_TRUE(route.traverses(1));
  EXPECT_FALSE(route.traverses(3));
}

TEST(Route, PreferOrdersByClassLengthNextHop) {
  Figure31Topology fig;
  Route customer{{fig.b, fig.e, fig.f}, RouteClass::Customer};
  Route peer{{fig.b, fig.c, fig.f}, RouteClass::Peer};
  EXPECT_TRUE(prefer(customer, peer, fig.graph));
  EXPECT_FALSE(prefer(peer, customer, fig.graph));

  Route shorter{{fig.a, fig.b, fig.f}, RouteClass::Provider};
  Route longer{{fig.a, fig.b, fig.e, fig.f}, RouteClass::Provider};
  EXPECT_TRUE(prefer(shorter, longer, fig.graph));

  Route via_b{{fig.a, fig.b, fig.e, fig.f}, RouteClass::Provider};
  Route via_d{{fig.a, fig.d, fig.e, fig.f}, RouteClass::Provider};
  EXPECT_TRUE(prefer(via_b, via_d, fig.graph));  // AS 2 < AS 4
}

// ---------------------------------------------------------------- solver

TEST(StableRouteSolver, Figure31DefaultRoutes) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);

  EXPECT_EQ(tree.reachable_count(), 6u);
  // The figure's stable routes: C->CF, E->EF, B->BEF, D->DEF, A->ABEF.
  EXPECT_EQ(tree.path_of(fig.c), (std::vector<topo::NodeId>{fig.c, fig.f}));
  EXPECT_EQ(tree.path_of(fig.e), (std::vector<topo::NodeId>{fig.e, fig.f}));
  EXPECT_EQ(tree.path_of(fig.b),
            (std::vector<topo::NodeId>{fig.b, fig.e, fig.f}));
  EXPECT_EQ(tree.path_of(fig.d),
            (std::vector<topo::NodeId>{fig.d, fig.e, fig.f}));
  EXPECT_EQ(tree.path_of(fig.a),
            (std::vector<topo::NodeId>{fig.a, fig.b, fig.e, fig.f}));
  EXPECT_EQ(tree.route_class(fig.b), RouteClass::Customer);
  EXPECT_EQ(tree.route_class(fig.a), RouteClass::Provider);
}

TEST(StableRouteSolver, IngressNeighbor) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  EXPECT_EQ(tree.ingress_neighbor(fig.a), fig.e);
  EXPECT_EQ(tree.ingress_neighbor(fig.c), fig.c);
  EXPECT_EQ(tree.ingress_neighbor(fig.f), topo::kInvalidNode);
}

// Regression: ingress_neighbor walked next_hop chains with no loop guard;
// a corrupted (or buggy) tree with a next-hop cycle spun forever. The walk
// is now bounded by the node count and throws instead.
TEST(StableRouteSolver, IngressNeighborGuardsAgainstNextHopLoops) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  RoutingTree tree = solver.solve(fig.f);
  // Force a two-node cycle b -> e -> b that never reaches the destination.
  RoutingTreeTestAccess::set_next_hop(tree, fig.b, fig.e);
  RoutingTreeTestAccess::set_next_hop(tree, fig.e, fig.b);
  EXPECT_THROW(tree.ingress_neighbor(fig.b), Error);
  // Nodes outside the cycle still resolve.
  EXPECT_EQ(tree.ingress_neighbor(fig.c), fig.c);
}

TEST(StableRouteSolver, CandidatesAtBIncludePeerRoute) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  const auto candidates = solver.candidates_at(tree, fig.b);
  // B learns BEF from its customer E and BCF from its peer C; A's route
  // would loop through B and is rejected.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].path,
            (std::vector<topo::NodeId>{fig.b, fig.e, fig.f}));
  EXPECT_EQ(candidates[0].route_class, RouteClass::Customer);
  EXPECT_EQ(candidates[1].path,
            (std::vector<topo::NodeId>{fig.b, fig.c, fig.f}));
  EXPECT_EQ(candidates[1].route_class, RouteClass::Peer);
}

TEST(StableRouteSolver, CandidatesAtARespectExportRules) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  const auto candidates = solver.candidates_at(tree, fig.a);
  // A hears from its providers B and D (both announce customer routes).
  ASSERT_EQ(candidates.size(), 2u);
  for (const Route& route : candidates)
    EXPECT_EQ(route.route_class, RouteClass::Provider);
}

TEST(StableRouteSolver, ValleyFreePaths) {
  // Property: on a generated topology every stable path is valley-free —
  // once the path goes down (provider->customer) or across a peer link, it
  // never goes up or crosses another peer link again.
  const topo::AsGraph graph = topo::generate(topo::profile("tiny"));
  StableRouteSolver solver(graph);
  for (topo::NodeId dest : {topo::NodeId{3}, topo::NodeId{40},
                            static_cast<topo::NodeId>(graph.node_count() - 1)}) {
    const RoutingTree tree = solver.solve(dest);
    for (topo::NodeId source = 0; source < graph.node_count(); ++source) {
      if (!tree.reachable(source)) continue;
      const auto path = tree.path_of(source);
      bool descending = false;
      int peer_links = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Relationship rel = graph.relationship(path[i], path[i + 1]);
        if (rel == Relationship::Sibling) continue;
        if (rel == Relationship::Provider) {
          // going up (next hop is my provider): must not already descend
          EXPECT_FALSE(descending) << "valley in path";
          EXPECT_EQ(peer_links, 0) << "up after peer link";
        } else if (rel == Relationship::Peer) {
          ++peer_links;
          EXPECT_LE(peer_links, 1) << "two peer links on a path";
          EXPECT_FALSE(descending) << "peer link after descending";
        } else {
          descending = true;
        }
      }
    }
  }
}

TEST(StableRouteSolver, AgreesWithPathVectorEngineOnRandomTopologies) {
  // The closed-form solver must compute exactly the stable state the
  // asynchronous protocol converges to.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    topo::GeneratorParams params = topo::profile("tiny");
    params.seed = seed;
    params.node_count = 120;
    const topo::AsGraph graph = topo::generate(params);
    StableRouteSolver solver(graph);
    for (topo::NodeId dest : {topo::NodeId{0}, topo::NodeId{60}}) {
      const RoutingTree tree = solver.solve(dest);
      PathVectorEngine engine(graph, dest);
      ASSERT_TRUE(engine.run_to_stable().has_value());
      for (topo::NodeId node = 0; node < graph.node_count(); ++node) {
        ASSERT_EQ(tree.reachable(node), engine.has_route(node))
            << "node " << node << " dest " << dest << " seed " << seed;
        if (tree.reachable(node)) {
          EXPECT_EQ(tree.path_of(node), engine.best(node).path)
              << "node " << node << " dest " << dest << " seed " << seed;
        }
      }
    }
  }
}

TEST(StableRouteSolver, SiblingLinksAreTransparent) {
  // s1 - s2 are siblings; dest hangs off s2 as a customer; x is a peer of
  // s1. The route x-s1-s2-dest must classify as a peer route at x and be
  // available (s1 exports the sibling-learned customer route to its peer).
  topo::AsGraph graph;
  const auto s1 = graph.add_as(10);
  const auto s2 = graph.add_as(20);
  const auto dest = graph.add_as(30);
  const auto x = graph.add_as(40);
  graph.add_sibling(s1, s2);
  graph.add_customer_provider(/*provider=*/s2, /*customer=*/dest);
  graph.add_peer(x, s1);
  StableRouteSolver solver(graph);
  const RoutingTree tree = solver.solve(dest);
  ASSERT_TRUE(tree.reachable(s1));
  EXPECT_EQ(tree.route_class(s1), RouteClass::Customer);  // via sibling
  ASSERT_TRUE(tree.reachable(x));
  EXPECT_EQ(tree.route_class(x), RouteClass::Peer);
  EXPECT_EQ(tree.path_of(x), (std::vector<topo::NodeId>{x, s1, s2, dest}));
}

TEST(StableRouteSolver, PeerRouteNotExportedToPeer) {
  // x - y peers, y - z peers, z originates. x must NOT reach z through y.
  topo::AsGraph graph;
  const auto x = graph.add_as(1);
  const auto y = graph.add_as(2);
  const auto z = graph.add_as(3);
  graph.add_peer(x, y);
  graph.add_peer(y, z);
  StableRouteSolver solver(graph);
  const RoutingTree tree = solver.solve(z);
  EXPECT_TRUE(tree.reachable(y));
  EXPECT_FALSE(tree.reachable(x));
}

TEST(StableRouteSolver, PinnedRouteForcesAlternate) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  // Pin B to its peer route via C; everyone re-selects.
  const RoutingTree pinned =
      solver.solve_pinned(fig.f, PinnedRoute{fig.b, fig.c});
  EXPECT_EQ(pinned.path_of(fig.b),
            (std::vector<topo::NodeId>{fig.b, fig.c, fig.f}));
  EXPECT_EQ(pinned.route_class(fig.b), RouteClass::Peer);
  // A still reaches F; its route now follows B's new path or goes via D.
  ASSERT_TRUE(pinned.reachable(fig.a));
  const auto a_path = pinned.path_of(fig.a);
  EXPECT_EQ(a_path.back(), fig.f);
}

TEST(StableRouteSolver, PinnedRouteRequiresAdjacency) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  EXPECT_THROW(solver.solve_pinned(fig.f, PinnedRoute{fig.a, fig.f}), Error);
}

// ------------------------------------------------------------- engine

TEST(PathVectorEngine, ActivationReachesStability) {
  Figure31Topology fig;
  PathVectorEngine engine(fig.graph, fig.f);
  EXPECT_FALSE(engine.is_stable());  // nothing propagated yet
  auto activations = engine.run_to_stable();
  ASSERT_TRUE(activations.has_value());
  EXPECT_TRUE(engine.is_stable());
  EXPECT_EQ(engine.best(fig.a).path,
            (std::vector<topo::NodeId>{fig.a, fig.b, fig.e, fig.f}));
}

TEST(PathVectorEngine, RandomFairScheduleConverges) {
  Figure31Topology fig;
  PathVectorEngine engine(fig.graph, fig.f);
  Rng rng(5);
  auto activations = engine.run_random(rng, 100000);
  ASSERT_TRUE(activations.has_value());
  EXPECT_EQ(engine.best(fig.a).path,
            (std::vector<topo::NodeId>{fig.a, fig.b, fig.e, fig.f}));
}

TEST(PathVectorEngine, TraceRecordsSelectionChanges) {
  Figure31Topology fig;
  PathVectorEngine engine(fig.graph, fig.f);
  obs::TraceRecorder trace(1 << 10);
  engine.set_trace(&trace);
  ASSERT_TRUE(engine.run_to_stable().has_value());
  // Every node that ends up with a route selected one at least once.
  EXPECT_GE(trace.count(obs::EventType::BgpRouteSelected), 5u);
  // A's final selection is traced with its path length as the value.
  bool saw_a = false;
  for (const obs::TraceEvent& event : trace.snapshot()) {
    if (event.type == obs::EventType::BgpRouteSelected &&
        event.actor == fig.a) {
      saw_a = true;
      EXPECT_EQ(event.peer, fig.f);  // peer carries the destination
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_EQ(trace.events_recorded(), trace.count(obs::EventType::BgpRouteSelected) +
                                         trace.count(obs::EventType::BgpRouteWithdrawn));
  EXPECT_GT(engine.activations(), 0u);
}

TEST(PathVectorEngine, CandidatesMatchSolver) {
  Figure31Topology fig;
  StableRouteSolver solver(fig.graph);
  const RoutingTree tree = solver.solve(fig.f);
  PathVectorEngine engine(fig.graph, fig.f);
  ASSERT_TRUE(engine.run_to_stable().has_value());
  const auto engine_candidates = engine.candidates(fig.b);
  const auto solver_candidates = solver.candidates_at(tree, fig.b);
  ASSERT_EQ(engine_candidates.size(), solver_candidates.size());
  for (std::size_t i = 0; i < engine_candidates.size(); ++i)
    EXPECT_EQ(engine_candidates[i].path, solver_candidates[i].path);
}

// --------------------------------------------------- decision process

RouterRoute make_route(std::initializer_list<topo::AsNumber> as_path) {
  RouterRoute route;
  route.as_path = as_path;
  return route;
}

TEST(DecisionProcess, LocalPreferenceWinsFirst) {
  auto low = make_route({10, 20});
  low.local_pref = 100;
  auto high = make_route({10, 20, 30});  // longer but preferred
  high.local_pref = 400;
  const std::vector<RouterRoute> candidates{low, high};
  const auto result = decide(candidates);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_EQ(result.deciding_step, 1);
}

TEST(DecisionProcess, ShorterAsPathBreaksTie) {
  auto a = make_route({10, 20, 30});
  auto b = make_route({10, 20});
  const std::vector<RouterRoute> candidates{a, b};
  const auto result = decide(candidates);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_EQ(result.deciding_step, 2);
}

TEST(DecisionProcess, OriginOrdering) {
  auto igp = make_route({10});
  igp.origin = Origin::Igp;
  auto incomplete = make_route({10});
  incomplete.origin = Origin::Incomplete;
  const std::vector<RouterRoute> candidates{incomplete, igp};
  const auto result = decide(candidates);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_EQ(result.deciding_step, 3);
}

TEST(DecisionProcess, MedComparedOnlyWithinSameNextHopAs) {
  auto a = make_route({10, 99});
  a.med = 50;
  auto b = make_route({10, 99});
  b.med = 10;                    // same neighbor AS: b wins on MED
  auto c = make_route({20, 99});
  c.med = 100;                   // different neighbor AS: MED not compared
  c.learned_via_ebgp = false;    // loses step 5 instead
  const std::vector<RouterRoute> candidates{a, b, c};
  const auto result = decide(candidates);
  EXPECT_EQ(result.best_index, 1u);
}

TEST(DecisionProcess, EbgpPreferredOverIbgp) {
  auto ibgp = make_route({10});
  ibgp.learned_via_ebgp = false;
  auto ebgp = make_route({10});
  ebgp.learned_via_ebgp = true;
  const std::vector<RouterRoute> candidates{ibgp, ebgp};
  const auto result = decide(candidates);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_EQ(result.deciding_step, 5);
}

TEST(DecisionProcess, IgpDistanceThenRouterIdThenPeerAddress) {
  auto far = make_route({10});
  far.learned_via_ebgp = false;
  far.igp_distance_to_egress = 20;
  auto near = make_route({10});
  near.learned_via_ebgp = false;
  near.igp_distance_to_egress = 5;
  {
    const std::vector<RouterRoute> candidates{far, near};
    const auto result = decide(candidates);
    EXPECT_EQ(result.best_index, 1u);
    EXPECT_EQ(result.deciding_step, 6);
  }
  auto rid_high = make_route({10});
  rid_high.advertising_router_id = 9;
  auto rid_low = make_route({10});
  rid_low.advertising_router_id = 3;
  {
    const std::vector<RouterRoute> candidates{rid_high, rid_low};
    const auto result = decide(candidates);
    EXPECT_EQ(result.best_index, 1u);
    EXPECT_EQ(result.deciding_step, 7);
  }
  auto addr_high = make_route({10});
  addr_high.peer_address = net::Ipv4Address(10, 0, 0, 9);
  auto addr_low = make_route({10});
  addr_low.peer_address = net::Ipv4Address(10, 0, 0, 2);
  {
    const std::vector<RouterRoute> candidates{addr_high, addr_low};
    const auto result = decide(candidates);
    EXPECT_EQ(result.best_index, 1u);
    EXPECT_EQ(result.deciding_step, 8);
  }
}

TEST(DecisionProcess, EmptyCandidateSetThrows) {
  std::vector<RouterRoute> none;
  EXPECT_THROW(decide(none), Error);
}

// ------------------------------------------------------- router level

TEST(RouterLevel, Figure41Scenario) {
  // Figure 4.1: R1 internal; R2 learns VU (from AS V) and WU (from AS W);
  // R3 learns WU (from AS W). All attributes equal through step 4.
  RouterLevelAs as_x;
  const auto r1 = as_x.add_router(net::Ipv4Address(12, 34, 56, 1));
  const auto r2 = as_x.add_router(net::Ipv4Address(12, 34, 56, 2));
  const auto r3 = as_x.add_router(net::Ipv4Address(12, 34, 56, 3));
  as_x.add_internal_link(r1, r2, 5);
  as_x.add_internal_link(r1, r3, 10);
  as_x.add_internal_link(r2, r3, 4);

  const topo::AsNumber v = 100, w = 200, u = 300;
  as_x.inject_ebgp_route(r2, v, net::Ipv4Address(9, 0, 0, 1), {v, u}, 100);
  as_x.inject_ebgp_route(r2, w, net::Ipv4Address(9, 0, 0, 2), {w, u}, 100);
  as_x.inject_ebgp_route(r3, w, net::Ipv4Address(9, 0, 0, 3), {w, u}, 100);
  as_x.converge();

  // R2 keeps an eBGP route; with equal attributes the lower peer address
  // wins locally, so R2 selects (V U).
  const auto sel2 = as_x.selected(r2);
  ASSERT_TRUE(sel2);
  EXPECT_EQ(sel2->as_path, (std::vector<topo::AsNumber>{v, u}));
  // R3 prefers its own eBGP-learned (W U) over R2's iBGP routes (step 5).
  const auto sel3 = as_x.selected(r3);
  ASSERT_TRUE(sel3);
  EXPECT_EQ(sel3->as_path, (std::vector<topo::AsNumber>{w, u}));
  EXPECT_EQ(sel3->egress_router, r3);
  // R1 hears both via iBGP and picks the IGP-closer egress: R2 (distance 5
  // vs 10 for R3... R3 is at distance min(10, 5+4)=9): R2 wins.
  const auto sel1 = as_x.selected(r1);
  ASSERT_TRUE(sel1);
  EXPECT_EQ(sel1->egress_router, r2);
  EXPECT_FALSE(sel1->learned_via_ebgp);

  // MIRO's intra-AS extension: the AS as a whole can offer both VU and WU.
  const auto all = as_x.all_valid_paths();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].as_path, (std::vector<topo::AsNumber>{v, u}));
  EXPECT_EQ(all[1].as_path, (std::vector<topo::AsNumber>{w, u}));
}

TEST(RouterLevel, IgpDistanceDijkstra) {
  RouterLevelAs as_x;
  const auto r0 = as_x.add_router(net::Ipv4Address(1, 0, 0, 0));
  const auto r1 = as_x.add_router(net::Ipv4Address(1, 0, 0, 1));
  const auto r2 = as_x.add_router(net::Ipv4Address(1, 0, 0, 2));
  as_x.add_internal_link(r0, r1, 3);
  as_x.add_internal_link(r1, r2, 4);
  as_x.add_internal_link(r0, r2, 10);
  EXPECT_EQ(as_x.igp_distance(r0, r2), 7);  // through r1
  EXPECT_EQ(as_x.igp_distance(r2, r0), 7);
  EXPECT_EQ(as_x.igp_distance(r0, r0), 0);
}

TEST(RouterLevel, DisconnectedRouterIsUnreachable) {
  RouterLevelAs as_x;
  const auto r0 = as_x.add_router(net::Ipv4Address(1, 0, 0, 0));
  const auto r1 = as_x.add_router(net::Ipv4Address(1, 0, 0, 1));
  EXPECT_EQ(as_x.igp_distance(r0, r1), RouterLevelAs::kUnreachable);
  // An iBGP route from an unreachable egress must not be used.
  as_x.inject_ebgp_route(r1, 100, net::Ipv4Address(9, 0, 0, 1), {100}, 100);
  as_x.converge();
  EXPECT_FALSE(as_x.selected(r0).has_value());
  EXPECT_TRUE(as_x.selected(r1).has_value());
}

TEST(RouterLevel, InjectValidatesInput) {
  RouterLevelAs as_x;
  const auto r0 = as_x.add_router(net::Ipv4Address(1, 0, 0, 0));
  EXPECT_THROW(as_x.inject_ebgp_route(r0, 100, net::Ipv4Address(9, 0, 0, 1),
                                      {200}, 100),
               Error);  // path must start with the neighbor AS
  EXPECT_THROW(as_x.add_internal_link(r0, r0, 1), Error);
}

TEST(PathTable, InternDedupsAndSharesSuffixes) {
  PathTable table;
  const std::vector<NodeId> a{4, 2, 1};
  const std::vector<NodeId> b{5, 2, 1};
  const PathId pa = table.intern(a);
  const PathId pb = table.intern(b);
  EXPECT_NE(pa, kNullPath);
  EXPECT_NE(pa, pb);
  // Equal paths intern to the same id — the O(1) equality the RIB relies on.
  EXPECT_EQ(table.intern(a), pa);
  // The {2, 1} tail is stored once and shared.
  EXPECT_EQ(table.suffix(pa), table.suffix(pb));
  // Distinct suffixes: {1}, {2,1}, {4,2,1}, {5,2,1}.
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.materialize(pa), a);
  EXPECT_EQ(table.materialize(pb), b);
  EXPECT_EQ(table.length(pa), 3u);
  EXPECT_EQ(table.head(pa), 4u);
  EXPECT_EQ(table.head(pb), 5u);
}

TEST(PathTable, ContainsWalksTheWholeChain) {
  PathTable table;
  const std::vector<NodeId> path{9, 7, 5, 3};
  const PathId id = table.intern(path);
  for (NodeId node : path) EXPECT_TRUE(table.contains(id, node));
  EXPECT_FALSE(table.contains(id, 4));
  EXPECT_FALSE(table.contains(kNullPath, 9));
}

TEST(PathTable, NullAndInvalidIds) {
  PathTable table;
  EXPECT_EQ(table.intern(std::span<const NodeId>{}), kNullPath);
  EXPECT_EQ(table.length(kNullPath), 0u);
  EXPECT_TRUE(table.materialize(kNullPath).empty());
  EXPECT_THROW(table.head(kNullPath), Error);
  EXPECT_THROW(table.suffix(kNullPath), Error);
  EXPECT_THROW(table.head(99), Error);  // never minted
  EXPECT_THROW(table.extend(topo::kInvalidNode, kNullPath), Error);
}

TEST(PathTable, MaterializeIntoReusesScratch) {
  PathTable table;
  const PathId longer = table.intern(std::vector<NodeId>{8, 6, 4, 2});
  const PathId shorter = table.intern(std::vector<NodeId>{3, 2});
  std::vector<NodeId> scratch;
  table.materialize_into(longer, scratch);
  EXPECT_EQ(scratch, (std::vector<NodeId>{8, 6, 4, 2}));
  table.materialize_into(shorter, scratch);  // must clear the previous path
  EXPECT_EQ(scratch, (std::vector<NodeId>{3, 2}));
  table.materialize_into(kNullPath, scratch);
  EXPECT_TRUE(scratch.empty());
}

}  // namespace
}  // namespace miro::bgp
