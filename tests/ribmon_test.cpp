// Route-event provenance: RibMonitor mechanics (causal scoping, JSONL),
// propagation-tree reconstruction, convergence observables, and — the load-
// bearing property — closed accounting of a monitored churn replay against
// the BGP plane's own counters, with the monitored run bit-identical to the
// unmonitored one.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "churn/replayer.hpp"
#include "common/json.hpp"
#include "obs/metrics.hpp"
#include "obs/ribmon.hpp"
#include "topology/as_graph.hpp"

namespace miro {
namespace {

using obs::RibEventKind;
using obs::RibMonitor;

// The dissertation's six-AS running example (Figure 3.1); destination f.
struct Figure31 {
  topo::AsGraph graph;
  topo::NodeId a, b, c, d, e, f;

  Figure31() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

churn::ChurnTrace mixed_trace(const Figure31& fig) {
  churn::ChurnTraceConfig config;
  config.duration = 6000;
  config.episodes = 18;
  config.seed = 7;
  return churn::generate_churn_trace(fig.graph, fig.f, config);
}

TEST(RibMonitor, RecordsCarryCausalParents) {
  RibMonitor monitor;
  EXPECT_EQ(monitor.current_cause(), 0u);

  const auto root = monitor.record_root(10, 3, "link_down", 4);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(monitor.current_cause(), 0u);  // record_root does not establish

  obs::RibEventId sent = 0;
  {
    RibMonitor::CauseScope scope(&monitor, root);
    EXPECT_EQ(monitor.current_cause(), root);
    sent = monitor.record(11, RibEventKind::Announce, 3, 5, 9, 2);
    {
      RibMonitor::CauseScope nested(&monitor, sent);
      monitor.record(21, RibEventKind::Deliver, 5, 3, 9, 2);
    }
    EXPECT_EQ(monitor.current_cause(), root);  // nesting restores
  }
  EXPECT_EQ(monitor.current_cause(), 0u);

  ASSERT_EQ(monitor.size(), 3u);
  const auto& records = monitor.records();
  EXPECT_EQ(records[0].parent, 0u);
  EXPECT_EQ(records[1].parent, root);
  EXPECT_EQ(records[2].parent, sent);
  EXPECT_EQ(monitor.count(RibEventKind::Announce), 1u);
  EXPECT_EQ(monitor.count(RibEventKind::Deliver), 1u);
  EXPECT_EQ(monitor.wire_messages(), 1u);
  EXPECT_TRUE(records[1].is_wire_message());
  EXPECT_FALSE(records[2].is_wire_message());
}

TEST(RibMonitor, NullMonitorScopeIsANoOp) {
  // Instrumented code constructs scopes unconditionally; a null monitor must
  // cost nothing and crash nothing.
  RibMonitor::CauseScope outer(nullptr, 17);
  RibMonitor::CauseScope inner(nullptr, 0);
}

TEST(RibMonitor, JsonlLinesParseAndRoundTripTheFields) {
  RibMonitor monitor;
  const auto root = monitor.record_root(5, 2, "session_reset", 3);
  RibMonitor::CauseScope scope(&monitor, root);
  monitor.record(6, RibEventKind::Withdraw, 2, 3, 7, 0);
  monitor.record(16, RibEventKind::BestChanged, 3, 0, 7, 4,
                 obs::hash_path({3, 1, 0, 7}));

  std::ostringstream out;
  monitor.write_jsonl(out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<JsonValue> parsed;
  while (std::getline(in, line)) parsed.push_back(JsonValue::parse(line));
  ASSERT_EQ(parsed.size(), 3u);

  EXPECT_EQ(parsed[0].at("kind").as_string(), "root_cause");
  EXPECT_EQ(parsed[0].at("detail").as_string(), "session_reset");
  EXPECT_FALSE(parsed[0].contains("parent"));  // roots omit the zero parent
  EXPECT_EQ(parsed[1].at("kind").as_string(), "withdraw");
  EXPECT_EQ(parsed[1].at("parent").as_number(), 1.0);
  EXPECT_EQ(parsed[2].at("kind").as_string(), "best_changed");
  EXPECT_EQ(parsed[2].at("path_len").as_number(), 4.0);
  EXPECT_TRUE(parsed[2].contains("path_hash"));
}

TEST(RibMonitor, HashPathNeverCollidesWithTheNoRouteSentinel) {
  EXPECT_NE(obs::hash_path({}), 0u);
  EXPECT_NE(obs::hash_path({1, 2, 3}), 0u);
  EXPECT_NE(obs::hash_path({1, 2, 3}), obs::hash_path({3, 2, 1}));
}

TEST(PropagationTrees, GroupsByRootWithDepthAndFanout) {
  RibMonitor monitor;
  const auto root = monitor.record_root(100, 1, "link_down", 2);
  obs::RibEventId a = 0, b = 0;
  {
    RibMonitor::CauseScope scope(&monitor, root);
    a = monitor.record(101, RibEventKind::Announce, 1, 2, 9, 2);
    b = monitor.record(101, RibEventKind::Withdraw, 1, 3, 9, 0);
    monitor.record(101, RibEventKind::BestChanged, 1, 0, 9, 2, 55);
  }
  {
    RibMonitor::CauseScope scope(&monitor, a);
    const auto deliver = monitor.record(111, RibEventKind::Deliver, 2, 1, 9, 2);
    RibMonitor::CauseScope nested(&monitor, deliver);
    monitor.record(111, RibEventKind::BestChanged, 2, 0, 9, 3, 56);
  }
  {
    RibMonitor::CauseScope scope(&monitor, b);
    monitor.record(111, RibEventKind::Loss, 3, 1, 9, 0);
  }
  const auto second = monitor.record_root(500, 4, "link_up", 5);
  {
    RibMonitor::CauseScope scope(&monitor, second);
    monitor.record(501, RibEventKind::Announce, 4, 5, 9, 1);
  }

  const obs::ProvenanceSummary summary =
      build_propagation_trees(monitor.records());
  EXPECT_EQ(summary.orphans, 0u);
  ASSERT_EQ(summary.trees.size(), 2u);

  const obs::PropagationTree& first = summary.trees[0];
  EXPECT_EQ(first.root, root);
  EXPECT_EQ(first.root_actor, 1u);
  EXPECT_STREQ(first.root_detail, "link_down");
  EXPECT_EQ(first.nodes, 7u);
  EXPECT_EQ(first.updates, 2u);       // announce + withdraw
  EXPECT_EQ(first.delivered, 1u);
  EXPECT_EQ(first.losses, 1u);
  EXPECT_EQ(first.best_changes, 2u);
  EXPECT_EQ(first.depth, 3u);         // root -> announce -> deliver -> best
  EXPECT_EQ(first.max_fanout, 3u);    // the root's three direct children
  EXPECT_EQ(first.start, 100u);
  EXPECT_EQ(first.settled, 111u);
  EXPECT_EQ(first.convergence(), 11u);
  EXPECT_DOUBLE_EQ(first.amplification(), 2.0);

  EXPECT_EQ(summary.trees[1].nodes, 2u);
  EXPECT_EQ(summary.trees[1].depth, 1u);
  EXPECT_EQ(summary.total_updates, 3u);
  EXPECT_EQ(summary.total_best_changes, 2u);
}

TEST(PropagationTrees, UnknownParentCountsAsOrphanAndRootsItsOwnTree) {
  std::vector<obs::RibEventRecord> records(2);
  records[0].id = 10;
  records[0].kind = RibEventKind::RootCause;
  records[1].id = 11;
  records[1].parent = 999;  // not in the stream
  records[1].kind = RibEventKind::Announce;
  const obs::ProvenanceSummary summary = build_propagation_trees(records);
  EXPECT_EQ(summary.orphans, 1u);
  ASSERT_EQ(summary.trees.size(), 2u);
  EXPECT_EQ(summary.trees[1].root, 11u);
  EXPECT_EQ(summary.total_updates, 1u);
}

TEST(Convergence, CountsBestChangesAndDistinctPaths) {
  RibMonitor monitor;
  const auto root = monitor.record_root(0, 9, "start");
  RibMonitor::CauseScope scope(&monitor, root);
  monitor.record(10, RibEventKind::BestChanged, 1, 0, 9, 2, 100);
  monitor.record(20, RibEventKind::BestChanged, 1, 0, 9, 3, 200);
  monitor.record(30, RibEventKind::BestChanged, 1, 0, 9, 2, 100);  // revisit
  monitor.record(40, RibEventKind::BestChanged, 2, 0, 9, 0, 0);    // no route

  const obs::ConvergenceReport report =
      summarize_convergence(monitor.records());
  EXPECT_EQ(report.total_best_changes, 4u);
  ASSERT_EQ(report.actors.size(), 2u);
  EXPECT_EQ(report.actors[0].actor, 1u);
  EXPECT_EQ(report.actors[0].best_changes, 3u);
  EXPECT_EQ(report.actors[0].distinct_paths, 2u);  // 100 revisited
  EXPECT_EQ(report.actors[1].actor, 2u);
  EXPECT_EQ(report.actors[1].distinct_paths, 1u);  // "no route" counts
  EXPECT_EQ(report.first_time, 0u);
  EXPECT_EQ(report.last_time, 40u);
  EXPECT_DOUBLE_EQ(report.churn_rate(), 100.0);  // 4 changes / 40 ticks
}

// ------------------------------------------------ monitored churn replays

TEST(RibmonReplay, ClosedAccountingAgainstTheBgpCounters) {
  const Figure31 fig;
  const churn::ChurnTrace trace = mixed_trace(fig);
  ASSERT_FALSE(trace.events.empty());

  obs::RibMonitor monitor;
  churn::ReplayConfig config;
  config.ribmon = &monitor;
  const churn::ReplayResult result =
      churn::replay_churn(fig.graph, trace, config);
  ASSERT_TRUE(result.ok());

  const auto& bgp = result.bgp;
  EXPECT_EQ(monitor.wire_messages(),
            bgp.updates_sent + bgp.withdrawals_sent);
  EXPECT_EQ(monitor.count(RibEventKind::Deliver),
            bgp.delivered_updates + bgp.delivered_withdrawals);
  EXPECT_EQ(monitor.count(RibEventKind::Loss), bgp.lost_in_flight);
  EXPECT_EQ(monitor.count(RibEventKind::MraiCoalesce), bgp.coalesced);
  EXPECT_EQ(monitor.count(RibEventKind::DampingSuppress),
            bgp.updates_suppressed);
  // Every wire message either arrived or died with its link.
  EXPECT_EQ(bgp.updates_sent + bgp.withdrawals_sent,
            bgp.delivered_updates + bgp.delivered_withdrawals +
                bgp.lost_in_flight);

  // Every record lands in exactly one tree, rooted at start() or at a trace
  // event; the per-tree sums therefore cover the stream totals exactly.
  const obs::ProvenanceSummary summary =
      build_propagation_trees(monitor.records());
  EXPECT_EQ(summary.orphans, 0u);
  EXPECT_EQ(summary.trees.size(), trace.events.size() + 1);
  EXPECT_EQ(summary.total_updates, bgp.updates_sent + bgp.withdrawals_sent);
  EXPECT_EQ(summary.total_delivered,
            bgp.delivered_updates + bgp.delivered_withdrawals);
  EXPECT_EQ(summary.total_losses, bgp.lost_in_flight);
  std::size_t nodes = 0;
  for (const obs::PropagationTree& tree : summary.trees) nodes += tree.nodes;
  EXPECT_EQ(nodes, monitor.size());
}

TEST(RibmonReplay, MonitoredRunIsBitIdenticalToUnmonitored) {
  const Figure31 fig;
  const churn::ChurnTrace trace = mixed_trace(fig);

  churn::ReplayConfig plain;
  plain.defense.mrai = 60;
  plain.defense.damping_enabled = true;
  const churn::ReplayResult unmonitored =
      churn::replay_churn(fig.graph, trace, plain);

  obs::RibMonitor monitor;
  churn::ReplayConfig instrumented = plain;
  instrumented.ribmon = &monitor;
  const churn::ReplayResult monitored =
      churn::replay_churn(fig.graph, trace, instrumented);
  EXPECT_GT(monitor.size(), 0u);

  EXPECT_EQ(monitored.bgp.updates_sent, unmonitored.bgp.updates_sent);
  EXPECT_EQ(monitored.bgp.withdrawals_sent,
            unmonitored.bgp.withdrawals_sent);
  EXPECT_EQ(monitored.bgp.selections, unmonitored.bgp.selections);
  EXPECT_EQ(monitored.bgp.coalesced, unmonitored.bgp.coalesced);
  EXPECT_EQ(monitored.bgp.updates_suppressed,
            unmonitored.bgp.updates_suppressed);
  EXPECT_EQ(monitored.bgp.routes_damped, unmonitored.bgp.routes_damped);
  EXPECT_EQ(monitored.final_time, unmonitored.final_time);
  EXPECT_EQ(monitored.scheduler_events, unmonitored.scheduler_events);
  ASSERT_EQ(monitored.convergence.size(), unmonitored.convergence.size());
  for (std::size_t i = 0; i < monitored.convergence.size(); ++i) {
    EXPECT_EQ(monitored.convergence[i].start,
              unmonitored.convergence[i].start);
    EXPECT_EQ(monitored.convergence[i].settled,
              unmonitored.convergence[i].settled);
    EXPECT_EQ(monitored.convergence[i].messages,
              unmonitored.convergence[i].messages);
  }
}

TEST(RibmonReplay, DefensesEmitSuppressRecordsWithProvenance) {
  const Figure31 fig;
  // The persistent flapper: damping must engage and absorb updates.
  const churn::ChurnTrace trace = churn::make_persistent_flap_trace(
      fig.graph, fig.f, fig.e, fig.f, /*flaps=*/20, /*period=*/100);

  obs::RibMonitor monitor;
  churn::ReplayConfig config;
  config.defense.mrai = 60;
  config.defense.damping_enabled = true;
  config.ribmon = &monitor;
  const churn::ReplayResult result =
      churn::replay_churn(fig.graph, trace, config);

  EXPECT_GT(result.bgp.updates_suppressed, 0u);
  EXPECT_EQ(monitor.count(RibEventKind::DampingSuppress),
            result.bgp.updates_suppressed);
  // Suppress records chain back to a root cause like everything else.
  const obs::ProvenanceSummary summary =
      build_propagation_trees(monitor.records());
  EXPECT_EQ(summary.orphans, 0u);
  EXPECT_EQ(summary.total_suppressed, result.bgp.updates_suppressed);
}

TEST(RibmonReplay, ExportedMetricsAndTraceEvents) {
  const Figure31 fig;
  const churn::ChurnTrace trace = mixed_trace(fig);
  obs::RibMonitor monitor;
  churn::ReplayConfig config;
  config.ribmon = &monitor;
  const churn::ReplayResult result =
      churn::replay_churn(fig.graph, trace, config);

  obs::MetricsRegistry registry;
  obs::export_ribmon_metrics(monitor, registry);
  EXPECT_EQ(registry.counter("ribmon.records").value(), monitor.size());
  EXPECT_EQ(registry.counter("ribmon.updates").value(),
            result.bgp.updates_sent + result.bgp.withdrawals_sent);
  EXPECT_EQ(registry.counter("ribmon.roots").value(),
            trace.events.size() + 1);
  EXPECT_EQ(registry.counter("ribmon.orphans").value(), 0u);
  EXPECT_GT(registry.histogram("ribmon.convergence_ticks").count(), 0u);
  EXPECT_GT(registry.histogram("ribmon.amplification").count(), 0u);
  EXPECT_GT(registry.histogram("ribmon.path_exploration").count(), 0u);
  EXPECT_GT(registry.gauge("ribmon.churn_rate").value(), 0.0);

  // The Perfetto rendering keeps one instant event per record, with the
  // record id in `value` so tracks cross-reference the JSONL stream.
  const std::vector<obs::TraceEvent> events = monitor.as_trace_events();
  ASSERT_EQ(events.size(), monitor.size());
  EXPECT_EQ(events.front().type, obs::EventType::RibRootCause);
  EXPECT_STREQ(events.front().detail, "start");
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value,
              static_cast<std::int64_t>(monitor.records()[i].id));
  }
}

}  // namespace
}  // namespace miro
