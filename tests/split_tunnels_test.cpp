// Tests for hash-based traffic splitting across multiple negotiated tunnels
// (Section 3.5) and protocol-hardening edge cases.
#include <gtest/gtest.h>

#include <map>

#include "core/alternates.hpp"
#include "core/protocol.hpp"
#include "dataplane/forwarding.hpp"
#include "scenarios.hpp"

namespace miro::dataplane {
namespace {

using core::AlternatesEngine;
using core::ExportPolicy;
using core::NegotiationScope;
using core::RouteStore;
using core::SplicedPath;
using test::Figure31Topology;

struct SplitHarness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  AsLevelDataPlane plane{store};
  bgp::StableRouteSolver solver{fig.graph};

  /// Two distinct alternates for A toward F: via B over BCF and via D over
  /// DEF (A's other provider).
  std::vector<SplicedPath> two_paths() {
    const bgp::RoutingTree tree = solver.solve(fig.f);
    AlternatesEngine engine(solver);
    auto all = engine.collect(tree, fig.a, NegotiationScope::OneHop,
                              ExportPolicy::Flexible);
    std::vector<SplicedPath> chosen;
    for (const SplicedPath& path : all) {
      if (path.as_path ==
              std::vector<topo::NodeId>{fig.a, fig.b, fig.c, fig.f} ||
          path.as_path == std::vector<topo::NodeId>{fig.a, fig.d, fig.e,
                                                    fig.f})
        chosen.push_back(path);
    }
    return chosen;
  }
};

TEST(SplitTunnels, FlowsAreSpreadAcrossPathsByWeight) {
  SplitHarness h;
  const auto paths = h.two_paths();
  ASSERT_EQ(paths.size(), 2u);
  const auto ids = h.plane.install_split_tunnels(paths, {1.0, 1.0});
  ASSERT_EQ(ids.size(), 2u);

  std::map<std::vector<topo::NodeId>, std::size_t> taken;
  for (std::uint16_t port = 0; port < 400; ++port) {
    net::Packet packet(h.plane.host_address(h.fig.a),
                       h.plane.host_address(h.fig.f),
                       net::FlowLabel{port, 80, 6, 0});
    const auto trace = h.plane.trace(std::move(packet), h.fig.a);
    ASSERT_TRUE(trace.delivered);
    ++taken[trace.as_path()];
  }
  ASSERT_EQ(taken.size(), 2u);  // both paths carry traffic
  for (const auto& [path, count] : taken) {
    EXPECT_GT(count, 120u) << "split far from 50/50";
    EXPECT_LT(count, 280u);
  }
}

TEST(SplitTunnels, FlowsAreSticky) {
  SplitHarness h;
  const auto paths = h.two_paths();
  ASSERT_EQ(paths.size(), 2u);
  h.plane.install_split_tunnels(paths, {1.0, 1.0});
  const net::FlowLabel flow{1234, 443, 6, 0};
  std::vector<topo::NodeId> first;
  for (int i = 0; i < 5; ++i) {
    net::Packet packet(h.plane.host_address(h.fig.a),
                       h.plane.host_address(h.fig.f), flow);
    const auto trace = h.plane.trace(std::move(packet), h.fig.a);
    ASSERT_TRUE(trace.delivered);
    if (first.empty()) {
      first = trace.as_path();
    } else {
      EXPECT_EQ(trace.as_path(), first) << "flow flapped between paths";
    }
  }
}

TEST(SplitTunnels, SkewedWeightsSkewTraffic) {
  SplitHarness h;
  const auto paths = h.two_paths();
  ASSERT_EQ(paths.size(), 2u);
  const auto ids = h.plane.install_split_tunnels(paths, {9.0, 1.0});
  std::size_t via_first = 0, total = 0;
  for (std::uint16_t port = 0; port < 600; ++port) {
    net::Packet packet(h.plane.host_address(h.fig.a),
                       h.plane.host_address(h.fig.f),
                       net::FlowLabel{port, 80, 17, 0});
    const auto trace = h.plane.trace(std::move(packet), h.fig.a);
    ASSERT_TRUE(trace.delivered);
    ++total;
    if (trace.as_path() == paths.front().as_path) ++via_first;
  }
  const double share = static_cast<double>(via_first) /
                       static_cast<double>(total);
  EXPECT_NEAR(share, 0.9, 0.06);
  (void)ids;
}

TEST(SplitTunnels, ValidatesInput) {
  SplitHarness h;
  const auto paths = h.two_paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_THROW(h.plane.install_split_tunnels({}, {}), Error);
  EXPECT_THROW(h.plane.install_split_tunnels(paths, {1.0}), Error);
  // Paths with different heads are rejected.
  auto foreign = paths;
  foreign[1].as_path[0] = h.fig.b;
  EXPECT_THROW(h.plane.install_split_tunnels(foreign, {1.0, 1.0}), Error);
}

}  // namespace
}  // namespace miro::dataplane

namespace miro::core {
namespace {

using test::Figure31Topology;

struct HardeningHarness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  sim::Scheduler scheduler;
  Bus bus{scheduler};
};

TEST(ProtocolHardening, StrayMessagesAreIgnored) {
  HardeningHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  // Offers for a negotiation that never existed; confirms with bogus ids;
  // keepalives and teardowns for unknown tunnels.
  h.bus.send(h.fig.b, h.fig.a, RouteOffers{999, {}});
  h.bus.send(h.fig.b, h.fig.a, TunnelConfirm{999, 42});
  h.bus.send(h.fig.a, h.fig.b, TunnelKeepAlive{42});
  h.bus.send(h.fig.a, h.fig.b, TunnelTeardown{42});
  EXPECT_NO_THROW(h.scheduler.run_until(1000));
  EXPECT_EQ(a.upstream_tunnels().size(), 0u);
  EXPECT_EQ(b.tunnels().active_count(), 0u);
  EXPECT_EQ(b.stats().tunnels_torn_down, 0u);
}

TEST(ProtocolHardening, OffersFromWrongResponderAreIgnored) {
  HardeningHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  MiroAgent d(h.fig.d, h.store, h.bus);
  std::optional<NegotiationOutcome> outcome;
  const auto id = a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
                            [&outcome](const NegotiationOutcome& o) {
                              outcome = o;
                            });
  // D injects a forged offer for A's negotiation with B before B answers.
  h.bus.send(h.fig.d, h.fig.a,
             RouteOffers{id, {RouteOffer{
                                 Route{{h.fig.d, h.fig.e, h.fig.f},
                                       bgp::RouteClass::Customer},
                                 1}}});
  h.scheduler.run_until(1000);
  ASSERT_TRUE(outcome.has_value());
  // The genuine negotiation with B still completes with B's route.
  EXPECT_TRUE(outcome->established);
  EXPECT_EQ(outcome->responder, h.fig.b);
  (void)d;
}

TEST(ProtocolHardening, SilentResponderTimesOutTheNegotiation) {
  HardeningHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  // No agent is attached at B: the request vanishes into the void.
  std::optional<NegotiationOutcome> outcome;
  a.request(h.fig.b, h.fig.a, h.fig.f, std::nullopt, std::nullopt,
            [&outcome](const NegotiationOutcome& o) { outcome = o; });
  h.scheduler.run_until(1999);
  EXPECT_FALSE(outcome.has_value());  // still waiting
  h.scheduler.run_until(2100);        // past negotiation_timeout
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->established);
  EXPECT_EQ(outcome->responder, h.fig.b);
}

TEST(ProtocolHardening, TimeoutDoesNotDoubleFireAfterSuccess) {
  HardeningHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  std::size_t callbacks = 0;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&callbacks](const NegotiationOutcome&) { ++callbacks; });
  h.scheduler.run_until(5000);  // far past the timeout
  EXPECT_EQ(callbacks, 1u);
}

TEST(ProtocolHardening, ConcurrentNegotiationsAreIndependent) {
  HardeningHarness h;
  MiroAgent a(h.fig.a, h.store, h.bus);
  MiroAgent b(h.fig.b, h.store, h.bus);
  MiroAgent d(h.fig.d, h.store, h.bus);
  std::optional<NegotiationOutcome> via_b, via_d;
  a.request(h.fig.b, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&via_b](const NegotiationOutcome& o) { via_b = o; });
  a.request(h.fig.d, h.fig.a, h.fig.f, h.fig.e, std::nullopt,
            [&via_d](const NegotiationOutcome& o) { via_d = o; });
  h.scheduler.run_until(1000);
  ASSERT_TRUE(via_b && via_d);
  // B holds the clean alternate BCF; D has only DEF, which crosses E.
  EXPECT_TRUE(via_b->established);
  EXPECT_FALSE(via_d->established);
  EXPECT_EQ(a.upstream_tunnels().size(), 1u);
}

}  // namespace
}  // namespace miro::core
