#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"

namespace miro::net {
namespace {

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  auto address = Ipv4Address::parse("128.112.0.1");
  ASSERT_TRUE(address);
  EXPECT_EQ(address->to_string(), "128.112.0.1");
  EXPECT_EQ(address->value(), 0x80700001u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse(""));
}

TEST(Ipv4Address, ConstructorFromOctets) {
  Ipv4Address address(12, 34, 56, 78);
  EXPECT_EQ(address.to_string(), "12.34.56.78");
}

TEST(Prefix, CanonicalizesHostBits) {
  Prefix prefix(Ipv4Address(128, 112, 5, 1), 16);
  EXPECT_EQ(prefix.to_string(), "128.112.0.0/16");
}

TEST(Prefix, ContainsMatchesMaskedBits) {
  auto prefix = Prefix::parse("128.112.0.0/16");
  ASSERT_TRUE(prefix);
  EXPECT_TRUE(prefix->contains(*Ipv4Address::parse("128.112.255.255")));
  EXPECT_FALSE(prefix->contains(*Ipv4Address::parse("128.113.0.0")));
}

TEST(Prefix, CoversMoreSpecific) {
  auto wide = Prefix::parse("12.34.0.0/16");
  auto narrow = Prefix::parse("12.34.56.0/24");
  ASSERT_TRUE(wide && narrow);
  EXPECT_TRUE(wide->covers(*narrow));
  EXPECT_FALSE(narrow->covers(*wide));
}

TEST(Prefix, ZeroLengthMatchesEverything) {
  Prefix everything(Ipv4Address(0), 0);
  EXPECT_TRUE(everything.contains(Ipv4Address(0xffffffffu)));
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33"));
  EXPECT_FALSE(Prefix::parse("1.2.3.4"));
}

TEST(PrefixTrie, LongestPrefixMatchPrefersMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("12.34.0.0/16"), 1);
  trie.insert(*Prefix::parse("12.34.56.0/24"), 2);
  auto coarse = trie.lookup(*Ipv4Address::parse("12.34.1.1"));
  auto fine = trie.lookup(*Ipv4Address::parse("12.34.56.78"));
  ASSERT_TRUE(coarse && fine);
  EXPECT_EQ(*coarse->value, 1);
  EXPECT_EQ(coarse->prefix_length, 16);
  EXPECT_EQ(*fine->value, 2);
  EXPECT_EQ(fine->prefix_length, 24);
}

TEST(PrefixTrie, MissReturnsNullopt) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_FALSE(trie.lookup(*Ipv4Address::parse("11.0.0.1")));
}

TEST(PrefixTrie, DefaultRouteCatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(Ipv4Address(0), 0), 99);
  auto match = trie.lookup(Ipv4Address(0xdeadbeefu));
  ASSERT_TRUE(match);
  EXPECT_EQ(*match->value, 99);
  EXPECT_EQ(match->prefix_length, 0);
}

TEST(PrefixTrie, EraseAndExactFind) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_NE(trie.find_exact(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.find_exact(*Prefix::parse("10.0.0.0/9")), nullptr);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, InsertReplacesValue) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(Ipv4Address(10, 1, 1, 1))->value, 2);
}

TEST(PrefixTrie, ForEachVisitsAllEntries) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("12.34.0.0/16"), 2);
  trie.insert(*Prefix::parse("12.34.56.0/24"), 3);
  int total = 0;
  std::size_t count = 0;
  trie.for_each([&](const Prefix&, int value) {
    total += value;
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(total, 6);
}

TEST(PrefixTrie, HostRouteLeavesMatchExactly) {
  // A /32 is the trie's deepest leaf; its neighbors must still fall back to
  // the covering prefix.
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.1/32"), 2);
  auto host = trie.lookup(*Ipv4Address::parse("10.0.0.1"));
  ASSERT_TRUE(host);
  EXPECT_EQ(*host->value, 2);
  EXPECT_EQ(host->prefix_length, 32);
  auto sibling_ip = trie.lookup(*Ipv4Address::parse("10.0.0.2"));
  ASSERT_TRUE(sibling_ip);
  EXPECT_EQ(*sibling_ip->value, 1);
  EXPECT_EQ(sibling_ip->prefix_length, 8);
}

TEST(PrefixTrie, EraseFallsBackToCoveringPrefix) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.20.0.0/16"), 2);
  EXPECT_EQ(*trie.lookup(*Ipv4Address::parse("10.20.3.4"))->value, 2);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.20.0.0/16")));
  auto match = trie.lookup(*Ipv4Address::parse("10.20.3.4"));
  ASSERT_TRUE(match);
  EXPECT_EQ(*match->value, 1);
  EXPECT_EQ(match->prefix_length, 8);
}

TEST(PrefixTrie, ForEachVisitsInLexicographicPrefixOrder) {
  // Insertion order is deliberately scrambled; for_each promises
  // lexicographic prefix order (shorter prefix before its more-specifics).
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("12.34.56.0/24"), 3);
  trie.insert(Prefix(Ipv4Address(0), 0), 0);
  trie.insert(*Prefix::parse("128.0.0.0/1"), 4);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("12.34.0.0/16"), 2);
  std::vector<std::string> visited;
  trie.for_each([&](const Prefix& prefix, int) {
    visited.push_back(prefix.to_string());
  });
  const std::vector<std::string> golden = {"0.0.0.0/0", "10.0.0.0/8",
                                           "12.34.0.0/16", "12.34.56.0/24",
                                           "128.0.0.0/1"};
  EXPECT_EQ(visited, golden);
}

TEST(PrefixTrie, LookupAgainstLinearScanOnRandomEntries) {
  // Property check: trie LPM must agree with a brute-force scan.
  PrefixTrie<int> trie;
  std::vector<Prefix> prefixes;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto address =
        Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    const int length = static_cast<int>(rng.next_below(25)) + 8;
    Prefix prefix(address, length);
    trie.insert(prefix, static_cast<int>(i));
    prefixes.push_back(prefix);
  }
  for (int i = 0; i < 500; ++i) {
    const auto probe = Ipv4Address(static_cast<std::uint32_t>(rng.next()));
    int best_len = -1;
    for (const Prefix& prefix : prefixes)
      if (prefix.contains(probe)) best_len = std::max(best_len,
                                                      prefix.length());
    auto match = trie.lookup(probe);
    if (best_len < 0) {
      EXPECT_FALSE(match);
    } else {
      ASSERT_TRUE(match);
      EXPECT_EQ(match->prefix_length, best_len);
    }
  }
}

TEST(Packet, EncapsulateDecapsulateStack) {
  Packet packet(Ipv4Address(1, 0, 0, 1), Ipv4Address(6, 0, 0, 1));
  EXPECT_EQ(packet.encapsulation_depth(), 0u);
  packet.encapsulate(Ipv4Address(1, 0, 0, 1), Ipv4Address(2, 0, 0, 1), 7);
  EXPECT_EQ(packet.encapsulation_depth(), 1u);
  EXPECT_EQ(packet.outer().destination, Ipv4Address(2, 0, 0, 1));
  ASSERT_TRUE(packet.outer().tunnel_id);
  EXPECT_EQ(*packet.outer().tunnel_id, 7u);
  EXPECT_EQ(packet.inner().destination, Ipv4Address(6, 0, 0, 1));
  packet.decapsulate();
  EXPECT_EQ(packet.encapsulation_depth(), 0u);
  EXPECT_EQ(packet.outer().destination, Ipv4Address(6, 0, 0, 1));
}

TEST(Packet, TunnelInsideTunnel) {
  Packet packet(Ipv4Address(1), Ipv4Address(2));
  packet.encapsulate(Ipv4Address(3), Ipv4Address(4), 1);
  packet.encapsulate(Ipv4Address(5), Ipv4Address(6), 2);
  EXPECT_EQ(packet.encapsulation_depth(), 2u);
  EXPECT_EQ(*packet.outer().tunnel_id, 2u);
  packet.decapsulate();
  EXPECT_EQ(*packet.outer().tunnel_id, 1u);
}

TEST(Packet, DecapsulateBarePacketThrows) {
  Packet packet(Ipv4Address(1), Ipv4Address(2));
  EXPECT_THROW(packet.decapsulate(), Error);
}

TEST(Packet, RewriteOuterDestination) {
  Packet packet(Ipv4Address(1), Ipv4Address(2));
  packet.encapsulate(Ipv4Address(3), Ipv4Address(4), 9);
  packet.rewrite_outer_destination(Ipv4Address(5));
  EXPECT_EQ(packet.outer().destination, Ipv4Address(5));
  EXPECT_EQ(packet.inner().destination, Ipv4Address(2));
}

TEST(Packet, FlowHashIgnoresEncapsulation) {
  FlowLabel flow{1234, 80, 6, 0};
  Packet bare(Ipv4Address(1), Ipv4Address(2), flow);
  Packet wrapped(Ipv4Address(1), Ipv4Address(2), flow);
  wrapped.encapsulate(Ipv4Address(9), Ipv4Address(8), 3);
  EXPECT_EQ(bare.flow_hash(), wrapped.flow_hash());
}

TEST(Packet, FlowHashDistinguishesFlows) {
  Packet a(Ipv4Address(1), Ipv4Address(2), FlowLabel{1000, 80, 6, 0});
  Packet b(Ipv4Address(1), Ipv4Address(2), FlowLabel{1001, 80, 6, 0});
  EXPECT_NE(a.flow_hash(), b.flow_hash());
}

}  // namespace
}  // namespace miro::net
