// Tests for downstream-initiated switch negotiation (Section 3.3): AS F
// asks AS B to select BCF instead of BEF so traffic enters via link CF, and
// the accepted switch reshapes the network exactly as the eval harness's
// pinned re-solve predicts.
#include <gtest/gtest.h>

#include "bgp/route_solver.hpp"
#include "core/protocol.hpp"
#include "scenarios.hpp"

namespace miro::core {
namespace {

using test::Figure31Topology;

struct SwitchHarness {
  Figure31Topology fig;
  RouteStore store{fig.graph};
  sim::Scheduler scheduler;
  Bus bus{scheduler};
};

TEST(SwitchNegotiation, CompensatedSwitchIsAccepted) {
  SwitchHarness h;
  MiroAgent agent_f(h.fig.f, h.store, h.bus);
  MiroAgent agent_b(h.fig.b, h.store, h.bus);

  // F asks B to switch its route-to-F from BEF (customer) to BCF (peer);
  // one class rank of downgrade costs 100 under the default policy.
  bool accepted = false;
  std::vector<topo::NodeId> new_path;
  agent_f.request_switch(h.fig.b, /*destination=*/h.fig.f,
                         /*desired_next_hop=*/h.fig.c, /*compensation=*/150,
                         [&](bool ok, const std::vector<topo::NodeId>& path) {
                           accepted = ok;
                           new_path = path;
                         });
  h.scheduler.run_until(500);
  ASSERT_TRUE(accepted);
  EXPECT_EQ(new_path,
            (std::vector<topo::NodeId>{h.fig.b, h.fig.c, h.fig.f}));
  EXPECT_EQ(agent_b.stats().switches_accepted, 1u);
  ASSERT_EQ(agent_b.switched_selections().count(h.fig.f), 1u);
  EXPECT_EQ(agent_b.switched_selections().at(h.fig.f), h.fig.c);

  // The network-wide effect equals the pinned re-solve: A follows B onto
  // the CF link ("hopefully many neighbors will also switch", Section 5.4).
  bgp::StableRouteSolver solver(h.fig.graph);
  const bgp::RoutingTree pinned =
      solver.solve_pinned(h.fig.f, bgp::PinnedRoute{h.fig.b, h.fig.c});
  EXPECT_EQ(pinned.ingress_neighbor(h.fig.b), h.fig.c);
}

TEST(SwitchNegotiation, UnderpaidDowngradeIsDeclined) {
  SwitchHarness h;
  MiroAgent agent_f(h.fig.f, h.store, h.bus);
  MiroAgent agent_b(h.fig.b, h.store, h.bus);
  bool completed = false, accepted = true;
  agent_f.request_switch(h.fig.b, h.fig.f, h.fig.c, /*compensation=*/50,
                         [&](bool ok, const std::vector<topo::NodeId>&) {
                           completed = true;
                           accepted = ok;
                         });
  h.scheduler.run_until(500);
  ASSERT_TRUE(completed);
  EXPECT_FALSE(accepted);  // 50 < 100-per-class-rank downgrade price
  EXPECT_EQ(agent_b.stats().switches_declined, 1u);
  EXPECT_TRUE(agent_b.switched_selections().empty());
}

TEST(SwitchNegotiation, UnknownNextHopIsDeclined) {
  SwitchHarness h;
  MiroAgent agent_f(h.fig.f, h.store, h.bus);
  MiroAgent agent_b(h.fig.b, h.store, h.bus);
  bool completed = false, accepted = true;
  // B has no candidate toward F whose first hop is A.
  agent_f.request_switch(h.fig.b, h.fig.f, h.fig.a, 1000,
                         [&](bool ok, const std::vector<topo::NodeId>&) {
                           completed = true;
                           accepted = ok;
                         });
  h.scheduler.run_until(500);
  ASSERT_TRUE(completed);
  EXPECT_FALSE(accepted);
}

TEST(SwitchNegotiation, SilentResponderTimesOut) {
  SwitchHarness h;
  MiroAgent agent_f(h.fig.f, h.store, h.bus);
  bool completed = false, accepted = true;
  agent_f.request_switch(h.fig.b, h.fig.f, h.fig.c, 150,
                         [&](bool ok, const std::vector<topo::NodeId>&) {
                           completed = true;
                           accepted = ok;
                         });
  h.scheduler.run_until(2500);  // past negotiation_timeout, no agent at B
  ASSERT_TRUE(completed);
  EXPECT_FALSE(accepted);
}

TEST(SwitchNegotiation, CustomPolicyCanRefuseEverything) {
  SwitchHarness h;
  ResponderConfig config;
  config.accept_switch = [](const bgp::Route&, const bgp::Route&, int) {
    return false;
  };
  MiroAgent agent_f(h.fig.f, h.store, h.bus);
  MiroAgent agent_b(h.fig.b, h.store, h.bus, config);
  bool accepted = true;
  agent_f.request_switch(h.fig.b, h.fig.f, h.fig.c, 100000,
                         [&](bool ok, const std::vector<topo::NodeId>&) {
                           accepted = ok;
                         });
  h.scheduler.run_until(500);
  EXPECT_FALSE(accepted);
}

}  // namespace
}  // namespace miro::core
