#include <gtest/gtest.h>

#include <sstream>

#include "bgp/route_solver.hpp"
#include "common/error.hpp"
#include "topology/as_graph.hpp"
#include "topology/generator.hpp"
#include "topology/inference.hpp"
#include "topology/metrics.hpp"
#include "topology/serialization.hpp"

namespace miro::topo {
namespace {

TEST(AsGraph, AddAndQueryEdges) {
  AsGraph graph;
  NodeId a = graph.add_as(100);
  NodeId b = graph.add_as(200);
  NodeId c = graph.add_as(300);
  graph.add_customer_provider(/*provider=*/a, /*customer=*/b);
  graph.add_peer(b, c);
  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_TRUE(graph.has_edge(a, b));
  EXPECT_FALSE(graph.has_edge(a, c));
  EXPECT_EQ(graph.relationship(a, b), Relationship::Customer);
  EXPECT_EQ(graph.relationship(b, a), Relationship::Provider);
  EXPECT_EQ(graph.relationship(b, c), Relationship::Peer);
}

TEST(AsGraph, RejectsDuplicatesAndSelfLoops) {
  AsGraph graph;
  NodeId a = graph.add_as(1);
  NodeId b = graph.add_as(2);
  graph.add_peer(a, b);
  EXPECT_THROW(graph.add_peer(a, b), Error);
  EXPECT_THROW(graph.add_customer_provider(a, b), Error);
  EXPECT_THROW(graph.add_peer(a, a), Error);
  EXPECT_THROW(graph.add_as(1), Error);
}

TEST(AsGraph, FindByAsNumber) {
  AsGraph graph;
  NodeId a = graph.add_as(65001);
  EXPECT_EQ(graph.find(65001), a);
  EXPECT_EQ(graph.find(65002), kInvalidNode);
  EXPECT_THROW(graph.require_node(65002), Error);
}

TEST(AsGraph, StubClassification) {
  AsGraph graph;
  NodeId provider = graph.add_as(1);
  NodeId provider2 = graph.add_as(2);
  NodeId single = graph.add_as(3);
  NodeId multi = graph.add_as(4);
  NodeId peerish = graph.add_as(5);
  graph.add_customer_provider(provider, single);
  graph.add_customer_provider(provider, multi);
  graph.add_customer_provider(provider2, multi);
  graph.add_customer_provider(provider, peerish);
  graph.add_peer(peerish, single);  // peering disqualifies both as stubs
  EXPECT_FALSE(graph.is_stub(single));
  EXPECT_TRUE(graph.is_stub(multi));
  EXPECT_TRUE(graph.is_multi_homed_stub(multi));
  EXPECT_FALSE(graph.is_stub(peerish));
  EXPECT_FALSE(graph.is_stub(provider));
}

TEST(AsGraph, ReverseRelationship) {
  EXPECT_EQ(reverse(Relationship::Customer), Relationship::Provider);
  EXPECT_EQ(reverse(Relationship::Provider), Relationship::Customer);
  EXPECT_EQ(reverse(Relationship::Peer), Relationship::Peer);
  EXPECT_EQ(reverse(Relationship::Sibling), Relationship::Sibling);
}

TEST(AsGraph, ReverseThrowsOnCorruptValue) {
  // A miscast byte must throw rather than silently classify as some edge
  // kind and leak into export policy.
  EXPECT_THROW(reverse(static_cast<Relationship>(200)), Error);
}

TEST(AsGraph, AccessorsRejectOutOfRangeIds) {
  AsGraph graph;
  const NodeId a = graph.add_as(1);
  graph.add_as(2);
  const auto bogus = static_cast<NodeId>(graph.node_count());
  EXPECT_THROW(graph.as_number(bogus), Error);
  EXPECT_THROW(graph.neighbors(bogus), Error);
  EXPECT_THROW(graph.degree(bogus), Error);
  EXPECT_THROW(graph.has_edge(a, bogus), Error);
  EXPECT_THROW(graph.has_edge(bogus, a), Error);
  EXPECT_THROW(graph.relationship(a, bogus), Error);
  EXPECT_THROW(graph.relationship(bogus, a), Error);
  EXPECT_THROW(graph.add_peer(a, bogus), Error);
  // The frozen CSR accessors keep the same contract.
  graph.finalize();
  EXPECT_THROW(graph.as_number(bogus), Error);
  EXPECT_THROW(graph.neighbors(bogus), Error);
  EXPECT_THROW(graph.degree(bogus), Error);
  EXPECT_THROW(graph.has_edge(a, bogus), Error);
  EXPECT_THROW(graph.relationship(a, bogus), Error);
  EXPECT_THROW(graph.relationship(kInvalidNode, a), Error);
}

TEST(AsGraph, FinalizePreservesEveryAnswer) {
  // Build an irregular little graph with all three relationship kinds and
  // non-sequential AS numbers (so the sorted ASN index path is exercised),
  // snapshot every query, freeze, and require identical answers from the
  // CSR layout.
  AsGraph graph;
  std::vector<NodeId> ids;
  const AsNumber asns[] = {700, 7, 70, 7000, 77, 707, 7700};
  for (AsNumber asn : asns) ids.push_back(graph.add_as(asn));
  graph.add_customer_provider(ids[0], ids[2]);
  graph.add_customer_provider(ids[0], ids[3]);
  graph.add_customer_provider(ids[1], ids[3]);
  graph.add_customer_provider(ids[2], ids[4]);
  graph.add_peer(ids[0], ids[1]);
  graph.add_peer(ids[2], ids[3]);
  graph.add_sibling(ids[5], ids[6]);
  graph.add_customer_provider(ids[1], ids[5]);

  const std::size_t n = graph.node_count();
  std::vector<std::vector<bool>> had_edge(n, std::vector<bool>(n));
  std::vector<std::vector<Relationship>> rels(n,
                                              std::vector<Relationship>(n));
  std::vector<std::size_t> degrees(n);
  for (NodeId x = 0; x < n; ++x) {
    degrees[x] = graph.degree(x);
    for (NodeId y = 0; y < n; ++y) {
      had_edge[x][y] = graph.has_edge(x, y);
      if (had_edge[x][y]) rels[x][y] = graph.relationship(x, y);
    }
  }
  const AsGraph::EdgeCounts before_counts = graph.edge_counts();
  const std::uint64_t before_bytes = graph.memory_bytes();

  graph.finalize();
  EXPECT_TRUE(graph.finalized());
  graph.finalize();  // idempotent

  EXPECT_EQ(graph.node_count(), n);
  EXPECT_EQ(graph.edge_count(), 8u);
  for (NodeId x = 0; x < n; ++x) {
    EXPECT_EQ(graph.degree(x), degrees[x]);
    EXPECT_EQ(graph.as_number(x), asns[x]);
    EXPECT_EQ(graph.find(asns[x]), x);
    // CSR segments are sorted by neighbor id.
    const NeighborRange range = graph.neighbors(x);
    for (std::size_t i = 1; i < range.size(); ++i)
      EXPECT_LT(range[i - 1].node, range[i].node);
    for (NodeId y = 0; y < n; ++y) {
      EXPECT_EQ(graph.has_edge(x, y), had_edge[x][y]);
      if (had_edge[x][y]) {
        EXPECT_EQ(graph.relationship(x, y), rels[x][y]);
      }
    }
  }
  const AsGraph::EdgeCounts after_counts = graph.edge_counts();
  EXPECT_EQ(after_counts.customer_provider, before_counts.customer_provider);
  EXPECT_EQ(after_counts.peer, before_counts.peer);
  EXPECT_EQ(after_counts.sibling, before_counts.sibling);
  // The whole point of freezing: the CSR layout is smaller.
  EXPECT_LT(graph.memory_bytes(), before_bytes);
  EXPECT_EQ(graph.find(9999), kInvalidNode);

  // A frozen graph rejects mutation.
  EXPECT_THROW(graph.add_as(42), Error);
  EXPECT_THROW(graph.add_peer(ids[4], ids[5]), Error);
  EXPECT_THROW(graph.add_customer_provider(ids[4], ids[6]), Error);
  EXPECT_THROW(graph.add_sibling(ids[3], ids[6]), Error);
}

TEST(AsGraph, NeighborsWithFilter) {
  AsGraph graph;
  NodeId a = graph.add_as(1);
  NodeId b = graph.add_as(2);
  NodeId c = graph.add_as(3);
  graph.add_customer_provider(a, b);
  graph.add_customer_provider(a, c);
  auto customers = graph.neighbors_with(a, Relationship::Customer);
  EXPECT_EQ(customers.size(), 2u);
  EXPECT_TRUE(graph.neighbors_with(a, Relationship::Peer).empty());
}

class GeneratorProfileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorProfileTest, ProducesInternetLikeGraph) {
  const GeneratorParams params = profile(GetParam(), 0.25);
  const AsGraph graph = generate(params);
  const TopologySummary summary = summarize(graph);

  EXPECT_EQ(summary.nodes, params.node_count);
  // Edge density like Table 5.1: roughly 2 links per node.
  EXPECT_GT(summary.edges, summary.nodes);
  EXPECT_LT(summary.edges, summary.nodes * 4);
  // The relationship mix is dominated by customer-provider links.
  EXPECT_GT(summary.customer_provider_links, summary.peer_links);
  EXPECT_GT(summary.peer_links, summary.sibling_links);
  // A large stub population with substantial multi-homing.
  EXPECT_GT(summary.stub_count, summary.nodes / 3);
  EXPECT_GT(summary.multi_homed_stub_count, summary.stub_count / 4);
  // Heavy-tailed degrees: the max degree dwarfs the average. (The factor is
  // bounded by node count; at the smallest scales 6x is the honest bar.)
  EXPECT_GT(static_cast<double>(summary.max_degree),
            summary.average_degree * 6);
}

TEST_P(GeneratorProfileTest, CustomerProviderHierarchyIsAcyclic) {
  const AsGraph graph = generate(profile(GetParam(), 0.15));
  // Providers are always earlier-created nodes, so customer->provider edges
  // must always point to a smaller node id.
  for (NodeId id = 0; id < graph.node_count(); ++id)
    for (const Neighbor& n : graph.neighbors(id))
      if (n.rel == Relationship::Provider) {
        EXPECT_LT(n.node, id);
      }
}

TEST_P(GeneratorProfileTest, EveryAsReachesEveryOtherAs) {
  const AsGraph graph = generate(profile(GetParam(), 0.15));
  bgp::StableRouteSolver solver(graph);
  // Valley-free reachability from a few destinations: everyone has a route.
  for (NodeId dest : {NodeId{0}, static_cast<NodeId>(graph.node_count() / 2),
                      static_cast<NodeId>(graph.node_count() - 1)}) {
    const bgp::RoutingTree tree = solver.solve(dest);
    EXPECT_EQ(tree.reachable_count(), graph.node_count())
        << "destination " << dest;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, GeneratorProfileTest,
                         ::testing::Values("gao2000", "gao2003", "gao2005",
                                           "agarwal2004", "tiny"));

TEST(Generator, DeterministicForFixedSeed) {
  const AsGraph g1 = generate(profile("tiny"));
  const AsGraph g2 = generate(profile("tiny"));
  EXPECT_EQ(to_text(g1), to_text(g2));
}

TEST(Generator, ProducesFinalizedGraphs) {
  const AsGraph graph = generate(profile("tiny"));
  EXPECT_TRUE(graph.finalized());
}

TEST(Generator, MultiHomedFractionTracksParameter) {
  // The under-homing fix: every stub drawn as multi-homed must actually get
  // a second provider (retrying collisions instead of giving up), so the
  // realized fraction among pure stubs tracks multi_home_probability. Peer
  // and sibling links disqualify a few stubs afterwards, hence the
  // tolerance.
  for (const auto& [name, scale] :
       {std::pair<const char*, double>{"gao2005", 0.5},
        std::pair<const char*, double>{"internet2006", 0.05}}) {
    GeneratorParams params = profile(name, scale);
    params.seed ^= 17;  // a second seed per profile rides the loop below
    for (int round = 0; round < 2; ++round) {
      params.seed ^= 17;
      const AsGraph graph = generate(params);
      std::size_t stubs = 0;
      std::size_t multi = 0;
      for (NodeId node = 0; node < graph.node_count(); ++node) {
        if (!graph.is_stub(node)) continue;
        ++stubs;
        if (graph.is_multi_homed_stub(node)) ++multi;
      }
      ASSERT_GT(stubs, 0u) << name;
      const double fraction =
          static_cast<double>(multi) / static_cast<double>(stubs);
      EXPECT_NEAR(fraction, params.multi_home_probability, 0.08)
          << name << " seed " << params.seed;
    }
  }
}

TEST(Generator, ScaleAboveOneGrowsBeyondNominal) {
  const GeneratorParams nominal = profile("tiny");
  const GeneratorParams doubled = profile("tiny", 2.0);
  EXPECT_GT(doubled.node_count, nominal.node_count);
  const AsGraph graph = generate(doubled);
  EXPECT_EQ(graph.node_count(), doubled.node_count);
  // The full-scale profile nominally matches the measured 2006 Internet.
  EXPECT_GE(profile("internet2006").node_count, 50000u);
  EXPECT_THROW(profile("tiny", 0.0), Error);
  EXPECT_THROW(profile("tiny", -1.0), Error);
}

TEST(Generator, UnknownProfileThrows) {
  EXPECT_THROW(profile("nonexistent"), Error);
}

TEST(Serialization, RoundTripPreservesGraph) {
  const AsGraph original = generate(profile("tiny"));
  const AsGraph reloaded = from_text(to_text(original));
  EXPECT_EQ(reloaded.node_count(), original.node_count());
  EXPECT_EQ(reloaded.edge_count(), original.edge_count());
  const auto c1 = original.edge_counts();
  const auto c2 = reloaded.edge_counts();
  EXPECT_EQ(c1.customer_provider, c2.customer_provider);
  EXPECT_EQ(c1.peer, c2.peer);
  EXPECT_EQ(c1.sibling, c2.sibling);
}

TEST(Serialization, ParsesCaidaStyleInput) {
  const std::string text =
      "# comment\n"
      "1|2|-1\n"
      "2|3|0\n"
      "3|4|2\n";
  const AsGraph graph = from_text(text);
  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.relationship(graph.require_node(1), graph.require_node(2)),
            Relationship::Customer);
  EXPECT_EQ(graph.relationship(graph.require_node(2), graph.require_node(3)),
            Relationship::Peer);
  EXPECT_EQ(graph.relationship(graph.require_node(3), graph.require_node(4)),
            Relationship::Sibling);
}

TEST(Serialization, FileRoundTrip) {
  const AsGraph original = generate(profile("tiny"));
  const std::string path = ::testing::TempDir() + "/miro_topology_rt.txt";
  save_file(original, path);
  const AsGraph reloaded = load_file(path);
  // Loading assigns node ids by first appearance, so compare in the
  // load-canonical form: one load cycle on both sides.
  EXPECT_EQ(to_text(reloaded), to_text(from_text(to_text(original))));
  EXPECT_EQ(reloaded.node_count(), original.node_count());
  EXPECT_EQ(reloaded.edge_count(), original.edge_count());
  EXPECT_THROW(load_file(path + ".does-not-exist"), Error);
}

TEST(Serialization, RejectsMalformedLines) {
  EXPECT_THROW(from_text("1|2\n"), Error);
  EXPECT_THROW(from_text("1|2|7\n"), Error);
  EXPECT_THROW(from_text("a|2|-1\n"), Error);
}

TEST(Metrics, DegreeSequenceSortedDescending) {
  const AsGraph graph = generate(profile("tiny"));
  const auto degrees = degree_sequence(graph);
  ASSERT_EQ(degrees.size(), graph.node_count());
  for (std::size_t i = 1; i < degrees.size(); ++i)
    EXPECT_GE(degrees[i - 1], degrees[i]);
}

TEST(Metrics, NodesByDegreeDescendingIsConsistent) {
  const AsGraph graph = generate(profile("tiny"));
  const auto order = nodes_by_degree_descending(graph);
  ASSERT_EQ(order.size(), graph.node_count());
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(graph.degree(order[i - 1]), graph.degree(order[i]));
}

TEST(Metrics, FractionWithDegreeAbove) {
  AsGraph graph;
  NodeId hub = graph.add_as(1);
  for (AsNumber asn = 2; asn <= 5; ++asn)
    graph.add_customer_provider(hub, graph.add_as(asn));
  EXPECT_DOUBLE_EQ(fraction_with_degree_above(graph, 3), 0.2);  // only hub
  EXPECT_DOUBLE_EQ(fraction_with_degree_above(graph, 0), 1.0);
}

// --- Relationship inference -------------------------------------------------

/// Builds observed AS paths by solving BGP routes from `vantage_count`
/// vantage destinations (what a RouteViews-style collector sees).
std::vector<AsPath> observed_paths(const AsGraph& graph,
                                   std::size_t vantage_count) {
  bgp::StableRouteSolver solver(graph);
  std::vector<AsPath> paths;
  for (std::size_t v = 0; v < vantage_count; ++v) {
    const auto dest = static_cast<NodeId>(
        (v * graph.node_count()) / vantage_count);
    const bgp::RoutingTree tree = solver.solve(dest);
    for (NodeId source = 0; source < graph.node_count(); ++source) {
      if (!tree.reachable(source) || source == dest) continue;
      AsPath path;
      for (NodeId node : tree.path_of(source))
        path.push_back(graph.as_number(node));
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

TEST(Inference, GaoRecoversMostRelationshipsOnSyntheticTruth) {
  const AsGraph truth = generate(profile("tiny"));
  const auto paths = observed_paths(truth, 24);
  const AsGraph inferred = infer_gao(paths);
  const InferenceAccuracy accuracy = compare_inference(truth, inferred);
  // Gao's algorithm on rich path sets recovers the bulk of the edges it
  // observes and classifies most of them correctly.
  EXPECT_GT(accuracy.classified_correct + accuracy.classified_wrong, 0u);
  EXPECT_GT(accuracy.accuracy(), 0.75)
      << "correct=" << accuracy.classified_correct
      << " wrong=" << accuracy.classified_wrong;
}

TEST(Inference, RankInferenceProducesMostlyProviderCustomer) {
  const AsGraph truth = generate(profile("tiny"));
  const auto paths = observed_paths(truth, 24);
  const AsGraph inferred = infer_rank(paths);
  const InferenceAccuracy accuracy = compare_inference(truth, inferred);
  EXPECT_GT(accuracy.accuracy(), 0.5);
  // The rank algorithm infers no sibling links by design.
  EXPECT_EQ(inferred.edge_counts().sibling, 0u);
}

TEST(Inference, GaoClassifiesSimpleChain) {
  // Paths through a strict hierarchy: 30 is the top provider.
  // 10 <- 20 <- 30 -> 40 -> 50 (arrows point provider->customer).
  std::vector<AsPath> paths;
  for (int i = 0; i < 3; ++i) {
    paths.push_back({10, 20, 30, 40, 50});
    paths.push_back({50, 40, 30, 20, 10});
    paths.push_back({10, 20, 30});
    paths.push_back({50, 40, 30});
  }
  const AsGraph inferred = infer_gao(paths);
  const NodeId n20 = inferred.require_node(20);
  const NodeId n30 = inferred.require_node(30);
  const NodeId n40 = inferred.require_node(40);
  // 30 provides transit for 20 and 40.
  EXPECT_EQ(inferred.relationship(n30, n20), Relationship::Customer);
  EXPECT_EQ(inferred.relationship(n30, n40), Relationship::Customer);
}

TEST(Inference, GaoDetectsSiblingFromMutualTransit) {
  // 20 and 30 transit for each other across many paths (and carry enough
  // strong evidence in both directions).
  std::vector<AsPath> paths;
  for (int i = 0; i < 4; ++i) {
    paths.push_back({10, 20, 30, 99, 40});  // 99 tops; 20->30 uphill
    paths.push_back({40, 99, 30, 20, 10});  // downhill 30->20
    paths.push_back({11, 30, 20, 99, 41});  // uphill 30->20
    paths.push_back({41, 99, 20, 30, 11});  // downhill 20->30
    paths.push_back({10, 20, 99});
    paths.push_back({11, 30, 99});
    paths.push_back({40, 99});
    paths.push_back({41, 99});
  }
  const AsGraph inferred = infer_gao(paths);
  const NodeId n20 = inferred.require_node(20);
  const NodeId n30 = inferred.require_node(30);
  EXPECT_EQ(inferred.relationship(n20, n30), Relationship::Sibling);
}

TEST(Inference, CompareCountsMissingAndSpurious) {
  AsGraph truth;
  NodeId a = truth.add_as(1);
  NodeId b = truth.add_as(2);
  NodeId c = truth.add_as(3);
  truth.add_customer_provider(a, b);
  truth.add_peer(b, c);

  AsGraph inferred;
  NodeId ia = inferred.add_as(1);
  NodeId ib = inferred.add_as(2);
  NodeId id = inferred.add_as(4);
  inferred.add_customer_provider(ia, ib);  // correct
  inferred.add_peer(ib, id);               // spurious

  const InferenceAccuracy accuracy = compare_inference(truth, inferred);
  EXPECT_EQ(accuracy.classified_correct, 1u);
  EXPECT_EQ(accuracy.edges_missing, 1u);   // b-c never inferred
  EXPECT_EQ(accuracy.edges_spurious, 1u);  // b-d invented
}

}  // namespace
}  // namespace miro::topo
