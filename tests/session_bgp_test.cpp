#include <gtest/gtest.h>

#include "bgp/route_solver.hpp"
#include "bgp/session_bgp.hpp"
#include "core/tunnel_monitor.hpp"
#include "scenarios.hpp"
#include "topology/generator.hpp"

namespace miro::bgp {
namespace {

using test::Figure31Topology;

struct SessionHarness {
  Figure31Topology fig;
  sim::Scheduler scheduler;
  SessionedBgpNetwork network{fig.graph, fig.f, scheduler};

  void run() { scheduler.run_all(); }
};

TEST(SessionBgp, ConvergesToFigure31Routes) {
  SessionHarness h;
  h.network.start();
  h.run();
  EXPECT_EQ(h.network.path_of(h.fig.a),
            (std::vector<topo::NodeId>{h.fig.a, h.fig.b, h.fig.e, h.fig.f}));
  EXPECT_EQ(h.network.path_of(h.fig.b),
            (std::vector<topo::NodeId>{h.fig.b, h.fig.e, h.fig.f}));
  EXPECT_EQ(h.network.path_of(h.fig.c),
            (std::vector<topo::NodeId>{h.fig.c, h.fig.f}));
  EXPECT_GT(h.network.stats().updates_sent, 0u);
}

TEST(SessionBgp, MatchesSolverOnGeneratedTopology) {
  topo::GeneratorParams params = topo::profile("tiny");
  params.node_count = 100;
  const topo::AsGraph graph = topo::generate(params);
  StableRouteSolver solver(graph);
  for (topo::NodeId dest : {topo::NodeId{0}, topo::NodeId{50}}) {
    sim::Scheduler scheduler;
    SessionedBgpNetwork network(graph, dest, scheduler);
    network.start();
    scheduler.run_all(2'000'000);
    const RoutingTree tree = solver.solve(dest);
    for (topo::NodeId node = 0; node < graph.node_count(); ++node) {
      ASSERT_EQ(network.has_route(node), tree.reachable(node))
          << "node " << node;
      if (tree.reachable(node)) {
        EXPECT_EQ(network.path_of(node), tree.path_of(node))
            << "node " << node << " dest " << dest;
      }
    }
  }
}

TEST(SessionBgp, LinkFailureWithdrawsAndReroutes) {
  SessionHarness h;
  h.network.start();
  h.run();
  // Fail E-F: E loses its direct customer route; B should fall back to its
  // peer route via C; A follows.
  h.network.fail_link(h.fig.e, h.fig.f);
  h.run();
  ASSERT_TRUE(h.network.has_route(h.fig.b));
  EXPECT_EQ(h.network.path_of(h.fig.b),
            (std::vector<topo::NodeId>{h.fig.b, h.fig.c, h.fig.f}));
  ASSERT_TRUE(h.network.has_route(h.fig.e));
  // E now reaches F through its peer C.
  EXPECT_EQ(h.network.path_of(h.fig.e),
            (std::vector<topo::NodeId>{h.fig.e, h.fig.c, h.fig.f}));
  ASSERT_TRUE(h.network.has_route(h.fig.a));
  EXPECT_EQ(h.network.path_of(h.fig.a).back(), h.fig.f);
  EXPECT_GT(h.network.stats().withdrawals_sent, 0u);
}

TEST(SessionBgp, LinkRestorationReconverges) {
  SessionHarness h;
  h.network.start();
  h.run();
  const auto original_b = h.network.path_of(h.fig.b);
  h.network.fail_link(h.fig.e, h.fig.f);
  h.run();
  ASSERT_NE(h.network.path_of(h.fig.b), original_b);
  h.network.restore_link(h.fig.e, h.fig.f);
  h.run();
  EXPECT_EQ(h.network.path_of(h.fig.b), original_b);
  EXPECT_EQ(h.network.path_of(h.fig.a),
            (std::vector<topo::NodeId>{h.fig.a, h.fig.b, h.fig.e, h.fig.f}));
}

TEST(SessionBgp, PartitionLeavesNoGhostRoutes) {
  // Cut F off entirely: everyone must end up with no route.
  SessionHarness h;
  h.network.start();
  h.run();
  h.network.fail_link(h.fig.e, h.fig.f);
  h.network.fail_link(h.fig.c, h.fig.f);
  h.run();
  for (topo::NodeId node : {h.fig.a, h.fig.b, h.fig.c, h.fig.d, h.fig.e})
    EXPECT_FALSE(h.network.has_route(node)) << "node " << node;
}

TEST(SessionBgp, ObserverSeesRouteChanges) {
  SessionHarness h;
  std::size_t changes_at_b = 0;
  h.network.set_observer(
      [&](topo::NodeId node, const std::optional<Route>&) {
        if (node == h.fig.b) ++changes_at_b;
      });
  h.network.start();
  h.run();
  const std::size_t after_convergence = changes_at_b;
  EXPECT_GT(after_convergence, 0u);
  h.network.fail_link(h.fig.e, h.fig.f);
  h.run();
  EXPECT_GT(changes_at_b, after_convergence);
}

TEST(SessionBgp, FailUnknownLinkThrows) {
  SessionHarness h;
  EXPECT_THROW(h.network.fail_link(h.fig.a, h.fig.f), Error);
}

// Asserts the network's converged state agrees with the stable solver on the
// given graph and that the transient accounting has fully drained.
void expect_converged_and_clean(const SessionedBgpNetwork& network,
                                const topo::AsGraph& graph,
                                topo::NodeId destination) {
  EXPECT_EQ(network.messages_in_flight(), 0u);
  EXPECT_EQ(network.mrai_parked(), 0u);
  EXPECT_TRUE(network.transit_quiet());
  const RoutingTree tree = StableRouteSolver(graph).solve(destination);
  for (topo::NodeId node = 0; node < graph.node_count(); ++node) {
    ASSERT_EQ(network.has_route(node), tree.reachable(node))
        << "node " << node;
    if (tree.reachable(node)) {
      EXPECT_EQ(network.path_of(node), tree.path_of(node)) << "node " << node;
    }
    // No Adj-RIB-In entry may survive over a failed link, and every entry
    // must name a real neighbor.
    for (const auto& [from, path_id] : network.adj_in_of(node)) {
      EXPECT_TRUE(graph.has_edge(node, from));
      EXPECT_TRUE(network.link_is_up(node, from))
          << "stale entry " << node << " <- " << from;
      EXPECT_FALSE(network.adj_in_path(node, from).empty());
      EXPECT_NE(path_id, kNullPath);
    }
  }
}

TEST(SessionBgp, RapidFlapWithUpdatesInFlightLeavesNoStaleState) {
  // Flap E-F several times *without* letting the network quiesce in
  // between: corrective updates are still in flight when the link state
  // changes again. Afterwards no stale Adj-RIB-In entry may survive and the
  // converged state must match the solver exactly.
  SessionHarness h;
  h.network.start();
  h.run();
  for (int round = 0; round < 4; ++round) {
    h.network.fail_link(h.fig.e, h.fig.f);
    // A handful of events only — withdrawals are still propagating.
    for (int i = 0; i < 3; ++i) h.scheduler.run_one();
    h.network.restore_link(h.fig.e, h.fig.f);
    for (int i = 0; i < 2; ++i) h.scheduler.run_one();
  }
  h.run();
  expect_converged_and_clean(h.network, h.fig.graph, h.fig.f);
  EXPECT_EQ(h.network.failed_links().size(), 0u);
}

TEST(SessionBgp, RapidFlapEndingDownDrainsTheFlappedSessions) {
  SessionHarness h;
  h.network.start();
  h.run();
  for (int round = 0; round < 3; ++round) {
    h.network.fail_link(h.fig.e, h.fig.f);
    for (int i = 0; i < 2; ++i) h.scheduler.run_one();
    h.network.restore_link(h.fig.e, h.fig.f);
    h.scheduler.run_one();
  }
  h.network.fail_link(h.fig.e, h.fig.f);  // leave it down
  h.run();
  EXPECT_EQ(h.network.adj_in_of(h.fig.e).count(h.fig.f), 0u);
  EXPECT_EQ(h.network.adj_in_of(h.fig.f).count(h.fig.e), 0u);
  EXPECT_EQ(h.network.advertised_to_of(h.fig.e).count(h.fig.f), 0u);
  EXPECT_EQ(h.network.advertised_to_of(h.fig.f).count(h.fig.e), 0u);
  // Converged state must match the solver on the surviving topology.
  topo::AsGraph survived;
  topo::NodeId a = survived.add_as(1), b = survived.add_as(2),
               c = survived.add_as(3), d = survived.add_as(4),
               e = survived.add_as(5), f = survived.add_as(6);
  survived.add_customer_provider(b, a);
  survived.add_customer_provider(d, a);
  survived.add_customer_provider(b, e);
  survived.add_customer_provider(d, e);
  survived.add_customer_provider(c, f);  // e-f missing: it stayed down
  survived.add_peer(b, c);
  survived.add_peer(c, e);
  expect_converged_and_clean(h.network, survived, f);
}

TEST(SessionBgp, DefenseConfigOffByDefaultAndValidated) {
  SessionHarness h;
  EXPECT_EQ(h.network.defense().mrai, 0u);
  EXPECT_FALSE(h.network.defense().damping_enabled);
  h.network.start();
  h.run();
  EXPECT_EQ(h.network.stats().coalesced, 0u);
  EXPECT_EQ(h.network.stats().updates_suppressed, 0u);
  EXPECT_EQ(h.network.stats().routes_damped, 0u);

  Figure31Topology fig;
  sim::Scheduler scheduler;
  ChurnDefenseConfig bad;
  bad.damping_enabled = true;
  bad.damping_suppress = 100.0;  // suppress below reuse: nonsense
  bad.damping_reuse = 500.0;
  EXPECT_THROW(
      SessionedBgpNetwork(fig.graph, fig.f, scheduler, 10, bad), Error);
  bad = ChurnDefenseConfig{};
  bad.damping_enabled = true;
  bad.damping_half_life = 0;
  EXPECT_THROW(
      SessionedBgpNetwork(fig.graph, fig.f, scheduler, 10, bad), Error);
}

TEST(SessionBgp, MraiCoalescesRapidChanges) {
  // Same rapid-flap schedule with and without MRAI: the paced run must
  // coalesce superseded updates and put fewer messages on the wire, while
  // converging to the same answer.
  const auto run_flaps = [](ChurnDefenseConfig defense) {
    Figure31Topology fig;
    sim::Scheduler scheduler;
    SessionedBgpNetwork network(fig.graph, fig.f, scheduler, 10, defense);
    network.start();
    scheduler.run_all();
    for (int round = 0; round < 5; ++round) {
      network.fail_link(fig.e, fig.f);
      scheduler.run_until(scheduler.now() + 15);
      network.restore_link(fig.e, fig.f);
      scheduler.run_until(scheduler.now() + 15);
    }
    scheduler.run_all();
    expect_converged_and_clean(network, fig.graph, fig.f);
    return network.stats();
  };
  const SessionedBgpNetwork::Stats eager = run_flaps({});
  ChurnDefenseConfig paced;
  paced.mrai = 100;
  const SessionedBgpNetwork::Stats coalesced = run_flaps(paced);
  EXPECT_GT(coalesced.coalesced, 0u);
  EXPECT_LT(coalesced.updates_sent + coalesced.withdrawals_sent,
            eager.updates_sent + eager.withdrawals_sent);
}

TEST(SessionBgp, DampingSuppressesFlappingRouteAndReusesAfterDecay) {
  Figure31Topology fig;
  sim::Scheduler scheduler;
  ChurnDefenseConfig defense;
  defense.damping_enabled = true;
  defense.damping_penalty = 1000.0;
  defense.damping_suppress = 2500.0;
  defense.damping_reuse = 1200.0;
  defense.damping_ceiling = 6000.0;
  defense.damping_half_life = 200;
  SessionedBgpNetwork network(fig.graph, fig.f, scheduler, 10, defense);
  network.start();
  scheduler.run_all();
  EXPECT_EQ(network.path_of(fig.e),
            (std::vector<topo::NodeId>{fig.e, fig.f}));

  // Three fast flaps of E-F: E books a penalty per implicit withdrawal and
  // per re-announcement, crossing the suppress threshold.
  for (int round = 0; round < 3; ++round) {
    network.fail_link(fig.e, fig.f);
    scheduler.run_until(scheduler.now() + 25);
    network.restore_link(fig.e, fig.f);
    scheduler.run_until(scheduler.now() + 25);
  }
  EXPECT_TRUE(network.is_suppressed(fig.e, fig.f));
  EXPECT_GT(network.damping_penalty_of(fig.e, fig.f),
            defense.damping_suppress - defense.damping_penalty);
  EXPECT_GT(network.stats().routes_damped, 0u);
  EXPECT_GT(network.active_suppressions(), 0u);
  // While quarantined, E routes around the perfectly healthy direct link.
  scheduler.run_until(scheduler.now() + 50);
  EXPECT_EQ(network.path_of(fig.e),
            (std::vector<topo::NodeId>{fig.e, fig.c, fig.f}));

  // Draining the reuse timers releases the suppression and the network
  // returns to the stable solution.
  scheduler.run_all();
  EXPECT_FALSE(network.is_suppressed(fig.e, fig.f));
  EXPECT_EQ(network.active_suppressions(), 0u);
  expect_converged_and_clean(network, fig.graph, fig.f);
}

TEST(SessionBgp, PrefixWithdrawDrainsAndReannounceRestores) {
  SessionHarness h;
  h.network.start();
  h.run();
  h.network.withdraw_prefix();
  h.run();
  EXPECT_FALSE(h.network.prefix_announced());
  for (topo::NodeId node = 0; node < h.fig.graph.node_count(); ++node)
    EXPECT_FALSE(h.network.has_route(node)) << "node " << node;
  h.network.announce_prefix();
  h.run();
  expect_converged_and_clean(h.network, h.fig.graph, h.fig.f);
}

TEST(SessionBgp, HijackDivertsAndRecoveryReconverges) {
  SessionHarness h;
  h.network.start();
  h.run();
  h.network.start_hijack(h.fig.a);
  h.run();
  EXPECT_TRUE(h.network.hijack_active());
  // A originates the prefix itself now; its neighbors are captured.
  EXPECT_EQ(h.network.path_of(h.fig.a), (std::vector<topo::NodeId>{h.fig.a}));
  EXPECT_EQ(h.network.path_of(h.fig.b),
            (std::vector<topo::NodeId>{h.fig.b, h.fig.a}));
  h.network.end_hijack(h.fig.a);
  h.run();
  EXPECT_FALSE(h.network.hijack_active());
  expect_converged_and_clean(h.network, h.fig.graph, h.fig.f);
}

TEST(SessionBgp, ExportMetricsSnapshotsStats) {
  SessionHarness h;
  h.network.start();
  h.run();
  obs::MetricsRegistry registry;
  h.network.export_metrics(registry, "bgp");
  EXPECT_EQ(registry.counter("bgp.updates_sent").value(),
            h.network.stats().updates_sent);
  EXPECT_EQ(registry.counter("bgp.coalesced").value(), 0u);
  EXPECT_EQ(registry.counter("bgp.routes_damped").value(), 0u);
}

}  // namespace
}  // namespace miro::bgp

namespace miro::core {
namespace {

using bgp::SessionedBgpNetwork;
using test::Figure31Topology;

TEST(TunnelMonitor, DownstreamFailureTearsTunnelDown) {
  // The Figure 3.1 tunnel (A via B over BCF, negotiated to avoid E) must be
  // destroyed when the link C-F fails and C's route to F swings through E.
  Figure31Topology fig;
  sim::Scheduler scheduler;
  SessionedBgpNetwork network(fig.graph, fig.f, scheduler);

  TunnelMonitor monitor;
  monitor.watch({/*id=*/7, /*upstream=*/fig.a, /*responder=*/fig.b,
                 /*destination=*/fig.f,
                 /*bound_path=*/{fig.b, fig.c, fig.f},
                 /*must_avoid=*/fig.e, /*strict_binding=*/false});

  std::vector<net::TunnelId> torn;
  network.set_observer([&](topo::NodeId node,
                           const std::optional<bgp::Route>& best) {
    std::optional<std::vector<topo::NodeId>> path;
    if (best) path = best->path;
    for (const auto& tunnel :
         monitor.on_downstream_change(node, fig.f, path))
      torn.push_back(tunnel.id);
  });

  network.start();
  scheduler.run_all();
  EXPECT_TRUE(torn.empty()) << "tunnel must survive initial convergence";
  ASSERT_EQ(monitor.watched_count(), 1u);

  network.fail_link(fig.c, fig.f);
  scheduler.run_all();
  // C's best toward F is now C-E-F, which traverses E: teardown.
  ASSERT_EQ(torn.size(), 1u);
  EXPECT_EQ(torn[0], 7u);
  EXPECT_EQ(monitor.watched_count(), 0u);
}

TEST(TunnelMonitor, CarrierFailureTearsTunnelDown) {
  // "AS A will tear down the tunnel if the path AB ... fails."
  Figure31Topology fig;
  sim::Scheduler scheduler;
  // Routes toward B are the tunnel carrier.
  SessionedBgpNetwork carrier_network(fig.graph, fig.b, scheduler);

  TunnelMonitor monitor;
  monitor.watch({/*id=*/7, fig.a, fig.b, fig.f,
                 {fig.b, fig.c, fig.f}, fig.e, false});

  std::vector<net::TunnelId> torn;
  carrier_network.set_observer(
      [&](topo::NodeId node, const std::optional<bgp::Route>& best) {
        if (node != fig.a) return;
        std::optional<std::vector<topo::NodeId>> path;
        if (best) path = best->path;
        for (const auto& tunnel :
             monitor.on_carrier_change(fig.a, fig.b, path))
          torn.push_back(tunnel.id);
      });
  carrier_network.start();
  scheduler.run_all();
  EXPECT_TRUE(torn.empty());

  carrier_network.fail_link(fig.a, fig.b);
  scheduler.run_all();
  // A has no other valley-free route to B: the carrier failed.
  EXPECT_FALSE(carrier_network.has_route(fig.a));
  ASSERT_EQ(torn.size(), 1u);
  EXPECT_EQ(torn[0], 7u);
}

TEST(TunnelMonitor, CarrierDetourThroughAvoidedAsTearsDown) {
  TunnelMonitor monitor;
  monitor.watch({3, /*upstream=*/10, /*responder=*/20, /*destination=*/30,
                 {20, 25, 30}, /*must_avoid=*/topo::NodeId{99}, false});
  // A carrier change that stays clean keeps the tunnel.
  EXPECT_TRUE(monitor
                  .on_carrier_change(10, 20,
                                     std::vector<topo::NodeId>{10, 11, 20})
                  .empty());
  // One that now traverses the avoided AS kills it.
  const auto torn = monitor.on_carrier_change(
      10, 20, std::vector<topo::NodeId>{10, 99, 20});
  ASSERT_EQ(torn.size(), 1u);
  EXPECT_EQ(torn[0].id, 3u);
}

TEST(TunnelMonitor, StrictBindingTearsDownOnAnyDeviation) {
  TunnelMonitor monitor;
  monitor.watch({4, 10, 20, 30, {20, 25, 30}, std::nullopt,
                 /*strict_binding=*/true});
  // Same suffix: survives.
  EXPECT_TRUE(monitor
                  .on_downstream_change(25, 30,
                                        std::vector<topo::NodeId>{25, 30})
                  .empty());
  // Different suffix: torn down even though nothing "failed".
  const auto torn = monitor.on_downstream_change(
      25, 30, std::vector<topo::NodeId>{25, 26, 30});
  ASSERT_EQ(torn.size(), 1u);
}

TEST(TunnelMonitor, UnwatchStopsTracking) {
  TunnelMonitor monitor;
  monitor.watch({5, 10, 20, 30, {20, 25, 30}, std::nullopt, false});
  EXPECT_TRUE(monitor.unwatch(20, 5));
  EXPECT_FALSE(monitor.unwatch(20, 5));
  EXPECT_TRUE(monitor.on_downstream_change(25, 30, std::nullopt).empty());
}

TEST(TunnelMonitor, UnrelatedChangesAreIgnored) {
  TunnelMonitor monitor;
  monitor.watch({6, 10, 20, 30, {20, 25, 30}, std::nullopt, false});
  EXPECT_TRUE(monitor.on_carrier_change(11, 20, std::nullopt).empty());
  EXPECT_TRUE(monitor.on_carrier_change(10, 21, std::nullopt).empty());
  EXPECT_TRUE(monitor.on_downstream_change(26, 30, std::nullopt).empty());
  EXPECT_TRUE(monitor.on_downstream_change(25, 31, std::nullopt).empty());
  EXPECT_EQ(monitor.watched_count(), 1u);
}

}  // namespace
}  // namespace miro::core
