#include <gtest/gtest.h>

#include <sstream>

#include "eval/avoid_as.hpp"
#include "eval/dataset_report.hpp"
#include "eval/experiments.hpp"
#include "eval/path_diversity.hpp"
#include "eval/traffic_control.hpp"

namespace miro::eval {
namespace {

EvalConfig tiny_config() {
  EvalConfig config;
  config.profile = "tiny";
  config.destination_samples = 24;
  config.sources_per_destination = 16;
  config.seed = 7;
  return config;
}

const ExperimentPlan& tiny_plan() {
  static const ExperimentPlan* plan = new ExperimentPlan(tiny_config());
  return *plan;
}

TEST(ExperimentPlan, SamplesAreDeterministic) {
  const auto& plan = tiny_plan();
  const auto pairs1 = plan.sample_pairs(8);
  const auto pairs2 = plan.sample_pairs(8);
  ASSERT_EQ(pairs1.size(), pairs2.size());
  for (std::size_t i = 0; i < pairs1.size(); ++i) {
    EXPECT_EQ(pairs1[i].source, pairs2[i].source);
    EXPECT_EQ(pairs1[i].destination, pairs2[i].destination);
  }
  EXPECT_FALSE(pairs1.empty());
}

TEST(ExperimentPlan, TuplesExcludeNeighborsAndEndpoints) {
  const auto& plan = tiny_plan();
  for (const SampledTuple& tuple : plan.sample_tuples(16)) {
    EXPECT_NE(tuple.avoid, tuple.source);
    EXPECT_NE(tuple.avoid, tuple.destination);
    EXPECT_FALSE(plan.graph().has_edge(tuple.source, tuple.avoid))
        << "avoid AS must not be an immediate neighbor of the source";
    // The avoided AS lies on the source's default path.
    const auto path = plan.tree(tuple.tree_index).path_of(tuple.source);
    EXPECT_NE(std::find(path.begin(), path.end(), tuple.avoid), path.end());
  }
}

TEST(ReachableAvoiding, BasicProperties) {
  const auto& plan = tiny_plan();
  const auto tuples = plan.sample_tuples(8);
  ASSERT_FALSE(tuples.empty());
  // Avoiding a node never *creates* reachability: with no avoidance
  // constraint there is trivially a path (same node avoided = unused id).
  const SampledTuple& t = tuples.front();
  EXPECT_FALSE(
      reachable_avoiding(plan.graph(), t.source, t.destination, t.source));
  EXPECT_TRUE(reachable_avoiding(plan.graph(), t.source, t.source, t.avoid));
}

TEST(PathDiversity, PolicyAndScopeMonotonicity) {
  const DiversityResult result = run_path_diversity(tiny_plan());
  ASSERT_EQ(result.rows.size(), 6u);
  // Within each scope: strict <= export <= flexible on the mean.
  for (int scope = 0; scope < 2; ++scope) {
    const auto& strict = result.rows[scope * 3 + 0];
    const auto& exported = result.rows[scope * 3 + 1];
    const auto& flexible = result.rows[scope * 3 + 2];
    EXPECT_LE(strict.mean, exported.mean + 1e-9);
    EXPECT_LE(exported.mean, flexible.mean + 1e-9);
    EXPECT_GE(strict.fraction_zero, flexible.fraction_zero - 1e-9);
  }
  // MIRO exposes real diversity: flexible policy finds alternates for most
  // pairs.
  EXPECT_LT(result.rows[2].fraction_zero, 0.5);
  EXPECT_GT(result.rows[2].mean, 1.0);
}

TEST(PathDiversity, PrintsATable) {
  std::ostringstream out;
  print(run_path_diversity(tiny_plan()), out);
  EXPECT_NE(out.str().find("strict/s"), std::string::npos);
  EXPECT_NE(out.str().find("1-hop"), std::string::npos);
}

TEST(AvoidAs, Table52OrderingHolds) {
  const AvoidAsResult result = run_avoid_as(tiny_plan());
  ASSERT_GT(result.tuples, 0u);
  // The paper's headline ordering: Single < Multi/s <= Multi/e <= Multi/a
  // <= Source.
  EXPECT_LT(result.single_rate, result.multi_rate[0]);
  EXPECT_LE(result.multi_rate[0], result.multi_rate[1] + 1e-9);
  EXPECT_LE(result.multi_rate[1], result.multi_rate[2] + 1e-9);
  EXPECT_LE(result.multi_rate[2], result.source_rate + 1e-9);
  // And MIRO provides a real boost over single-path routing.
  EXPECT_GT(result.multi_rate[2], result.single_rate + 0.1);
}

TEST(AvoidAs, Table53StateIsBounded) {
  const AvoidAsResult result = run_avoid_as(tiny_plan());
  for (const auto& row : result.state_rows) {
    // Negotiation footprint stays tiny, as in the paper (~2-3 ASes).
    EXPECT_LT(row.avg_ases_contacted, 6.0);
    EXPECT_GE(row.avg_ases_contacted, 0.0);
    EXPECT_GE(row.avg_paths_received, 0.0);
  }
  // Looser policy => at least as many candidate paths per tuple.
  EXPECT_LE(result.state_rows[0].avg_paths_received,
            result.state_rows[2].avg_paths_received + 1e-9);
}

TEST(AvoidAs, PrintsTables) {
  const AvoidAsResult result = run_avoid_as(tiny_plan());
  std::ostringstream out;
  print_table_5_2(result, out);
  print_table_5_3(result, out);
  EXPECT_NE(out.str().find("Multi/a"), std::string::npos);
  EXPECT_NE(out.str().find("Path#/tuple"), std::string::npos);
}

TEST(IncrementalDeployment, GainGrowsWithDeployment) {
  const DeploymentResult result = run_incremental_deployment(tiny_plan());
  ASSERT_FALSE(result.points.empty());
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    // Non-decreasing in deployment fraction for each policy.
    for (int p = 0; p < 3; ++p)
      EXPECT_GE(result.points[i].relative_gain[p] + 1e-9,
                result.points[i - 1].relative_gain[p]);
  }
  const auto& full = result.points.back();
  EXPECT_NEAR(full.relative_gain[2], 1.0, 1e-9);  // /a at 100% is the base
  // Top-degree deployment beats low-degree-first everywhere.
  for (const DeploymentPoint& point : result.points) {
    if (point.fraction < 0.5) {
      EXPECT_GE(point.relative_gain[2] + 1e-9, point.low_degree_first_gain);
    }
  }
  // A small top-degree core already yields a large share of the gain.
  for (const DeploymentPoint& point : result.points) {
    if (point.fraction >= 0.04 && point.fraction <= 0.06) {
      EXPECT_GT(point.relative_gain[2], 0.25);
    }
  }
}

TEST(TrafficControl, BoundsAndOrderings) {
  TrafficControlConfig config;
  config.stub_samples = 40;
  config.power_node_candidates = 4;
  const TrafficControlResult result =
      run_traffic_control(tiny_plan(), config);
  ASSERT_EQ(result.series.size(), 4u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.stub_fraction.size(), result.thresholds.size());
    // CCDF over thresholds is non-increasing and within [0,1].
    for (std::size_t i = 0; i < series.stub_fraction.size(); ++i) {
      EXPECT_GE(series.stub_fraction[i], 0.0);
      EXPECT_LE(series.stub_fraction[i], 1.0);
      if (i > 0) {
        EXPECT_LE(series.stub_fraction[i],
                  series.stub_fraction[i - 1] + 1e-9);
      }
    }
  }
  // convert_all is the upper bound of independent_selection, per policy.
  auto find = [&](core::ExportPolicy policy, bool convert) {
    for (const auto& series : result.series)
      if (series.policy == policy && series.convert_all == convert)
        return &series;
    return static_cast<const TrafficControlResult::Series*>(nullptr);
  };
  for (auto policy :
       {core::ExportPolicy::Strict, core::ExportPolicy::Flexible}) {
    const auto* convert = find(policy, true);
    const auto* independent = find(policy, false);
    ASSERT_TRUE(convert && independent);
    EXPECT_GE(convert->median_best_move + 1e-9,
              independent->median_best_move);
  }
  // Flexible policy moves at least as much as strict, per model.
  for (bool convert : {true, false}) {
    const auto* strict = find(core::ExportPolicy::Strict, convert);
    const auto* flexible = find(core::ExportPolicy::Flexible, convert);
    EXPECT_GE(flexible->median_best_move + 1e-9, strict->median_best_move);
  }
  // Most stubs can move a meaningful share via one power node.
  EXPECT_GT(find(core::ExportPolicy::Flexible, true)->stub_fraction[1],
            0.3);  // >= 10% movable
}

TEST(TrafficControl, PrintsFigures) {
  TrafficControlConfig config;
  config.stub_samples = 10;
  std::ostringstream out;
  print(run_traffic_control(tiny_plan(), config), out);
  EXPECT_NE(out.str().find("independent"), std::string::npos);
  EXPECT_NE(out.str().find("power nodes"), std::string::npos);
}

TEST(DatasetReport, PrintsTableAndDistribution) {
  std::ostringstream out;
  print_dataset_table({"tiny"}, 1.0, out);
  print_degree_distribution("tiny", 1.0, out);
  EXPECT_NE(out.str().find("Peering links"), std::string::npos);
  EXPECT_NE(out.str().find("degree bucket"), std::string::npos);
}

}  // namespace
}  // namespace miro::eval
