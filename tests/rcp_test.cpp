// Tests for the per-AS Routing Control Platform (Section 4.1): the Figure
// 4.1 scenario end to end — intra-AS route aggregation, alternate-route
// requests, tunnel establishment, and tunneled delivery through the AS.
#include <gtest/gtest.h>

#include "dataplane/rcp.hpp"

namespace miro::dataplane {
namespace {

constexpr topo::AsNumber kV = 100, kW = 200, kU = 300;

/// Figure 4.1: AS X with routers R1 (internal/ingress), R2 (sessions to V
/// and W), R3 (session to W); destination AS U behind both V and W.
struct RcpHarness {
  RoutingControlPlatform rcp{/*asn=*/1,
                             EncapsulationScheme::EgressRouterAddress,
                             *net::Prefix::parse("12.34.56.0/24")};
  RoutingControlPlatform::RouterId r1, r2, r3;
  RoutingControlPlatform::ExitLinkId to_v, to_w2, to_w3;

  RcpHarness(EncapsulationScheme scheme =
                 EncapsulationScheme::EgressRouterAddress)
      : rcp(1, scheme, *net::Prefix::parse("12.34.56.0/24")) {
    r1 = rcp.add_router(net::Ipv4Address(12, 34, 56, 2));
    r2 = rcp.add_router(net::Ipv4Address(12, 34, 56, 3));
    r3 = rcp.add_router(net::Ipv4Address(12, 34, 56, 4));
    rcp.add_internal_link(r1, r2, 5);
    rcp.add_internal_link(r1, r3, 10);
    rcp.add_internal_link(r2, r3, 4);
    to_v = rcp.add_exit_link(r2, kV);
    to_w2 = rcp.add_exit_link(r2, kW);
    to_w3 = rcp.add_exit_link(r3, kW);
    rcp.learn_route(r2, {kV, kU}, 100, net::Ipv4Address(9, 0, 0, 1));
    rcp.learn_route(r2, {kW, kU}, 100, net::Ipv4Address(9, 0, 0, 2));
    rcp.learn_route(r3, {kW, kU}, 100, net::Ipv4Address(9, 0, 0, 3));
    rcp.converge();
  }
};

TEST(Rcp, AggregatesAllValidPathsAcrossRouters) {
  RcpHarness h;
  const auto paths = h.rcp.all_paths();
  ASSERT_EQ(paths.size(), 2u);  // VU and WU, each once
  EXPECT_EQ(paths[0].as_path, (std::vector<topo::AsNumber>{kV, kU}));
  EXPECT_EQ(paths[1].as_path, (std::vector<topo::AsNumber>{kW, kU}));
}

TEST(Rcp, AlternatesExcludeDefaultAndAvoidedAs) {
  RcpHarness h;
  // Most routers selected WU (R3 keeps its eBGP route, R1 follows the IGP-
  // closer egress R2 which picked VU by peer address)... whatever wins the
  // vote, the other path must be offered as the alternate.
  const auto unconstrained = h.rcp.alternates(std::nullopt);
  ASSERT_EQ(unconstrained.size(), 1u);

  // Avoiding W must leave only VU (or nothing if VU is the default).
  const auto avoiding_w = h.rcp.alternates(kW);
  for (const auto& route : avoiding_w)
    EXPECT_EQ(std::find(route.as_path.begin(), route.as_path.end(), kW),
              route.as_path.end());

  // Avoiding U kills everything.
  EXPECT_TRUE(h.rcp.alternates(kU).empty());
}

TEST(Rcp, EstablishTunnelBindsExitLinkAndDelivers) {
  RcpHarness h;
  const auto binding = h.rcp.establish_tunnel({kV, kU});
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->exit_link, h.to_v);

  // An encapsulated packet entering at R1 leaves on the V exit at R2.
  net::Packet packet(net::Ipv4Address(1, 0, 0, 1),
                     net::Ipv4Address(77, 0, 0, 1));
  packet.encapsulate(net::Ipv4Address(1, 0, 0, 1),
                     binding->endpoint_address, binding->tunnel_id);
  const auto record = h.rcp.deliver(std::move(packet), h.r1);
  EXPECT_TRUE(record.delivered);
  ASSERT_TRUE(record.exit);
  EXPECT_EQ(*record.exit, h.to_v);
  EXPECT_EQ(record.router_path.back(), h.r2);
}

TEST(Rcp, EstablishTunnelRejectsUnknownPath) {
  RcpHarness h;
  EXPECT_FALSE(h.rcp.establish_tunnel({kV, kW, kU}).has_value());
  EXPECT_FALSE(h.rcp.establish_tunnel({999, kU}).has_value());
}

TEST(Rcp, ReleaseTunnelInvalidatesDelivery) {
  RcpHarness h;
  const auto binding = h.rcp.establish_tunnel({kW, kU});
  ASSERT_TRUE(binding);
  h.rcp.release_tunnel(binding->tunnel_id);
  net::Packet packet(net::Ipv4Address(1, 0, 0, 1),
                     net::Ipv4Address(77, 0, 0, 1));
  packet.encapsulate(net::Ipv4Address(1, 0, 0, 1),
                     binding->endpoint_address, binding->tunnel_id);
  const auto record = h.rcp.deliver(std::move(packet), h.r1);
  EXPECT_FALSE(record.delivered);
}

TEST(Rcp, SharedAddressSchemeHidesTopology) {
  RcpHarness h(EncapsulationScheme::SharedAddress);
  const auto binding_v = h.rcp.establish_tunnel({kV, kU});
  const auto binding_w = h.rcp.establish_tunnel({kW, kU});
  ASSERT_TRUE(binding_v && binding_w);
  EXPECT_EQ(binding_v->endpoint_address, binding_w->endpoint_address);
  EXPECT_EQ(h.rcp.forwarding().exposed_address_count(), 1u);
}

TEST(Rcp, LearnRouteRequiresDeclaredExit) {
  RcpHarness h;
  EXPECT_THROW(h.rcp.learn_route(h.r1, {999, kU}, 100,
                                 net::Ipv4Address(9, 9, 9, 9)),
               Error);
}

}  // namespace
}  // namespace miro::dataplane
