// Shared test scenarios.
//
// `Figure31Topology` reproduces the running example of Figures 1.1, 2.1 and
// 3.1: six ASes A..F where the default route from A to F is A-B-E-F, A wants
// to avoid E, and the alternate B-C-F exists at B but is not announced.
// Relationships are chosen so the dissertation's stated preferences emerge
// from the conventional policies:
//   - F is a customer of C and E;  E is a customer of B and D;
//   - A is a customer of B and D;  B-C and C-E are peering links.
// Then B prefers BEF (customer) over BCF (peer), C prefers CF over CEF, and
// A picks ABEF (next-hop AS number tie-break over ADEF), exactly as in the
// figures.
#pragma once

#include "topology/as_graph.hpp"

namespace miro::test {

struct Figure31Topology {
  topo::AsGraph graph;
  topo::NodeId a, b, c, d, e, f;

  Figure31Topology() {
    a = graph.add_as(1);
    b = graph.add_as(2);
    c = graph.add_as(3);
    d = graph.add_as(4);
    e = graph.add_as(5);
    f = graph.add_as(6);
    graph.add_customer_provider(/*provider=*/b, /*customer=*/a);
    graph.add_customer_provider(d, a);
    graph.add_customer_provider(b, e);
    graph.add_customer_provider(d, e);
    graph.add_customer_provider(c, f);
    graph.add_customer_provider(e, f);
    graph.add_peer(b, c);
    graph.add_peer(c, e);
  }
};

}  // namespace miro::test
