#include <gtest/gtest.h>

#include "convergence/gadgets.hpp"
#include "convergence/model.hpp"
#include "topology/generator.hpp"

namespace miro::conv {
namespace {

// --------------------------------------------------------- plain BGP gadgets

TEST(BgpGadgets, DisagreeOscillatesSynchronouslyButHasStableStates) {
  const BgpGadget gadget = make_disagree();
  // Synchronous (simultaneous) activation oscillates forever.
  {
    bgp::PathVectorEngine engine(gadget.graph, gadget.destination,
                                 gadget.hooks);
    bool saw_change_late = false;
    for (int step = 0; step < 64; ++step) {
      const bool changed = engine.step_synchronous();
      if (step > 8 && changed) saw_change_late = true;
    }
    EXPECT_TRUE(saw_change_late) << "DISAGREE settled synchronously?";
  }
  // Sequential round-robin reaches one of the two stable states.
  {
    bgp::PathVectorEngine engine(gadget.graph, gadget.destination,
                                 gadget.hooks);
    EXPECT_TRUE(engine.run_to_stable().has_value());
    EXPECT_TRUE(engine.is_stable());
  }
}

TEST(BgpGadgets, BadGadgetNeverStabilizes) {
  const BgpGadget gadget = make_bad_gadget();
  bgp::PathVectorEngine engine(gadget.graph, gadget.destination,
                               gadget.hooks);
  EXPECT_FALSE(engine.run_to_stable(300).has_value());
  Rng rng(3);
  bgp::PathVectorEngine random_engine(gadget.graph, gadget.destination,
                                      gadget.hooks);
  EXPECT_FALSE(random_engine.run_random(rng, 50000).has_value());
}

TEST(BgpGadgets, GuidelineAPoliciesFixBadGadget) {
  // The same topology under conventional Gao-Rexford policies converges:
  // violating the customer>peer>provider preference is what broke it.
  const BgpGadget gadget = make_bad_gadget();
  bgp::PathVectorEngine engine(gadget.graph, gadget.destination);
  EXPECT_TRUE(engine.run_to_stable().has_value());
}

// ------------------------------------------------------------- Figure 7.1

TEST(Figure71, DivergesWithoutGuidelines) {
  const MiroGadget gadget = make_figure_7_1(Guideline::None);
  MiroConvergenceModel model = gadget.build();
  const auto result = model.run_round_robin();
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.cycle_detected)
      << "expected a provable oscillation on Figure 7.1";
}

class Figure71GuidelineTest : public ::testing::TestWithParam<Guideline> {};

TEST_P(Figure71GuidelineTest, ConvergesUnderGuideline) {
  const MiroGadget gadget = make_figure_7_1(GetParam());
  MiroConvergenceModel model = gadget.build();
  const auto result = model.run_round_robin();
  EXPECT_TRUE(result.converged) << to_string(GetParam());
  EXPECT_TRUE(model.is_stable());
}

INSTANTIATE_TEST_SUITE_P(Guidelines, Figure71GuidelineTest,
                         ::testing::Values(Guideline::StrictOnly,
                                           Guideline::B, Guideline::C,
                                           Guideline::D, Guideline::E),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) == "strict-only"
                                      ? std::string("StrictOnly")
                                      : std::string(to_string(info.param));
                         });

TEST(Figure71, GuidelineBKeepsAllThreeTunnelsUp) {
  // Under Guideline B the tunnels ride on the (stable) BGP layer, so all
  // three coexist: A uses ABD, B uses BCD, C uses CAD.
  const MiroGadget gadget = make_figure_7_1(Guideline::B);
  MiroConvergenceModel model = gadget.build();
  ASSERT_TRUE(model.run_round_robin().converged);
  const NodeId a = gadget.nodes.at("A");
  const NodeId b = gadget.nodes.at("B");
  const NodeId c = gadget.nodes.at("C");
  const NodeId d = gadget.nodes.at("D");
  EXPECT_EQ(model.route(a, d).tunnel, (Path{a, b, d}));
  EXPECT_EQ(model.route(b, d).tunnel, (Path{b, c, d}));
  EXPECT_EQ(model.route(c, d).tunnel, (Path{c, a, d}));
  // The BGP layer stays on the direct provider routes.
  EXPECT_EQ(model.route(a, d).bgp, (Path{a, d}));
}

// ------------------------------------------------------------- Figure 7.2

TEST(Figure72, DivergesUnderStrictPolicyAlone) {
  const MiroGadget gadget = make_figure_7_2(Guideline::StrictOnly);
  MiroConvergenceModel model = gadget.build();
  const auto result = model.run_round_robin();
  EXPECT_FALSE(result.converged)
      << "strict policy alone must not fix Figure 7.2";
  EXPECT_TRUE(result.cycle_detected);
}

TEST(Figure72, GuidelineDConverges) {
  const MiroGadget gadget = make_figure_7_2(Guideline::D);
  MiroConvergenceModel model = gadget.build();
  const auto result = model.run_round_robin();
  EXPECT_TRUE(result.converged);
  // The id-order ≺ admits only tunnels whose responder precedes the prefix;
  // at least one of D's three cyclic tunnel wishes is denied, and the rest
  // are stable.
  const NodeId d = gadget.nodes.at("D");
  std::size_t tunnels = 0;
  for (const char* name : {"A", "B", "C"})
    if (model.route(d, gadget.nodes.at(name)).tunnel) ++tunnels;
  EXPECT_LT(tunnels, 3u);
}

TEST(Figure72, GuidelineEConverges) {
  const MiroGadget gadget = make_figure_7_2(Guideline::E);
  MiroConvergenceModel model = gadget.build();
  const auto result = model.run_round_robin();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(model.is_stable());
  // E's local no-invalidation check leaves a maximal non-conflicting set of
  // tunnels established — at least one survives.
  const NodeId d = gadget.nodes.at("D");
  std::size_t tunnels = 0;
  for (const char* name : {"A", "B", "C"})
    if (model.route(d, gadget.nodes.at(name)).tunnel) ++tunnels;
  EXPECT_GE(tunnels, 1u);
}

TEST(Figure72, GuidelineBSideStepsTheOscillation) {
  const MiroGadget gadget = make_figure_7_2(Guideline::B);
  MiroConvergenceModel model = gadget.build();
  EXPECT_TRUE(model.run_round_robin().converged);
  // All three tunnels coexist because carriers are pure BGP routes.
  const NodeId d = gadget.nodes.at("D");
  for (const char* name : {"A", "B", "C"})
    EXPECT_TRUE(model.route(d, gadget.nodes.at(name)).tunnel.has_value());
}

TEST(Figure72, RandomFairSchedulesAgreeWithRoundRobin) {
  const MiroGadget strict_gadget = make_figure_7_2(Guideline::StrictOnly);
  const MiroGadget d_gadget = make_figure_7_2(Guideline::D);
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    // Divergent configuration stays divergent...
    MiroConvergenceModel bad = strict_gadget.build();
    Rng rng1(seed);
    EXPECT_FALSE(bad.run_random(rng1, 20000).converged);
    // ...and guideline-D configuration converges under random schedules.
    MiroConvergenceModel good = d_gadget.build();
    Rng rng2(seed);
    EXPECT_TRUE(good.run_random(rng2, 20000).converged);
  }
}

// --------------------------------------------------- random MIRO instances

class RandomMiroConvergence
    : public ::testing::TestWithParam<std::tuple<Guideline, std::uint64_t>> {
};

TEST_P(RandomMiroConvergence, GuidelineGuaranteesConvergence) {
  const auto [guideline, seed] = GetParam();
  topo::GeneratorParams params = topo::profile("tiny");
  params.node_count = 72;
  params.seed = seed;
  const topo::AsGraph graph = topo::generate(params);

  // Random tunnel wishes: a handful of (requester, responder, destination)
  // triples over a few destination prefixes.
  Rng rng(seed * 31 + 7);
  std::vector<NodeId> destinations;
  for (int i = 0; i < 4; ++i)
    destinations.push_back(
        static_cast<NodeId>(rng.next_below(graph.node_count())));
  std::sort(destinations.begin(), destinations.end());
  destinations.erase(std::unique(destinations.begin(), destinations.end()),
                     destinations.end());

  ModelOptions options;
  options.guideline = guideline;
  for (int i = 0; i < 12; ++i) {
    TunnelSpec spec;
    spec.requester = static_cast<NodeId>(rng.next_below(graph.node_count()));
    spec.responder = static_cast<NodeId>(rng.next_below(graph.node_count()));
    spec.destination = destinations[rng.next_below(destinations.size())];
    if (spec.requester == spec.responder ||
        spec.responder == spec.destination)
      continue;
    options.tunnels.push_back(spec);
  }
  if (guideline == Guideline::D) {
    options.partial_order = [](NodeId, NodeId first_downstream,
                               NodeId destination) {
      return first_downstream < destination;
    };
  }

  MiroConvergenceModel model(graph, destinations, options);
  const auto result = model.run_round_robin(512);
  EXPECT_TRUE(result.converged)
      << "guideline " << to_string(guideline) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomMiroConvergence,
    ::testing::Combine(::testing::Values(Guideline::B, Guideline::C,
                                         Guideline::D, Guideline::E),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Model, FingerprintDistinguishesStates) {
  const MiroGadget gadget = make_figure_7_1(Guideline::None);
  MiroConvergenceModel model = gadget.build();
  const auto before = model.fingerprint();
  model.activate(gadget.nodes.at("A"));
  EXPECT_NE(model.fingerprint(), before);
}

TEST(Model, GuidelineDRequiresPartialOrder) {
  MiroGadget gadget = make_figure_7_2(Guideline::D);
  gadget.options.partial_order = nullptr;
  EXPECT_THROW(gadget.build(), Error);
}

TEST(Model, ScheduleRunnerDetectsCycles) {
  const MiroGadget gadget = make_figure_7_1(Guideline::None);
  MiroConvergenceModel model = gadget.build();
  const std::vector<NodeId> everyone{0, 1, 2, 3};
  const auto result = model.run_schedule(everyone, 128);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.cycle_detected);
}

}  // namespace
}  // namespace miro::conv
