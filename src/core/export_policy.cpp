#include "core/export_policy.hpp"

namespace miro::core {

const char* to_string(ExportPolicy policy) {
  switch (policy) {
    case ExportPolicy::Strict: return "strict";
    case ExportPolicy::RespectExport: return "export";
    case ExportPolicy::Flexible: return "flexible";
  }
  return "?";
}

const char* suffix(ExportPolicy policy) {
  switch (policy) {
    case ExportPolicy::Strict: return "/s";
    case ExportPolicy::RespectExport: return "/e";
    case ExportPolicy::Flexible: return "/a";
  }
  return "?";
}

namespace {

/// Strict compares local-preference bands; Self and Customer share the top
/// band ("an AS originally advertising a customer route" — the origin's own
/// prefix behaves like a customer route for this purpose).
int pref_band(RouteClass cls) {
  return cls == RouteClass::Self ? bgp::rank(RouteClass::Customer)
                                 : bgp::rank(cls);
}

}  // namespace

bool allows(ExportPolicy policy, RouteClass candidate_class,
            std::optional<RouteClass> best_class,
            Relationship requester_rel) {
  switch (policy) {
    case ExportPolicy::Flexible:
      return true;
    case ExportPolicy::RespectExport:
      return bgp::conventional_export_allows(candidate_class, requester_rel);
    case ExportPolicy::Strict:
      if (!bgp::conventional_export_allows(candidate_class, requester_rel))
        return false;
      // Same local preference as the default route the responder is already
      // advertising.
      return !best_class || pref_band(candidate_class) == pref_band(*best_class);
  }
  return false;
}

std::vector<Route> filter_exports(ExportPolicy policy,
                                  std::span<const Route> candidates,
                                  std::optional<RouteClass> best_class,
                                  Relationship requester_rel) {
  std::vector<Route> out;
  out.reserve(candidates.size());
  for (const Route& candidate : candidates) {
    if (allows(policy, candidate.route_class, best_class, requester_rel))
      out.push_back(candidate);
  }
  return out;
}

}  // namespace miro::core
