// Automatic tunnel teardown on routing changes (Section 4.3).
//
// "A tunnel remains active until one AS tears it down ... AS A will tear
// down the tunnel if the path AB changes (e.g., if the path to B now
// traverses through E) or fails, and AS B will tear down the tunnel if the
// path BCF to the destination prefix fails. The ASes can observe these
// changes in the BGP update messages or session failures."
//
// The monitor holds the facts each tunnel depends on — the upstream's route
// to the responder (the carrier) and the first-hop-onward route the bound
// path rides on — and, fed with route-change events (typically wired to
// SessionedBgpNetwork observers), reports which tunnels must be destroyed.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

#include "core/tunnel.hpp"
#include "obs/trace.hpp"

namespace miro::core {

class TunnelMonitor {
 public:
  struct WatchedTunnel {
    TunnelId id = 0;
    NodeId upstream = topo::kInvalidNode;
    NodeId responder = topo::kInvalidNode;
    NodeId destination = topo::kInvalidNode;
    /// The negotiated path beyond the responder: responder..destination.
    std::vector<NodeId> bound_path;
    /// The property the tunnel was negotiated for: if the carrier or the
    /// bound route starts traversing this AS, the tunnel is pointless.
    std::optional<NodeId> must_avoid;
    /// When true, any deviation of the downstream default route from the
    /// negotiated bound path tears the tunnel down (re-negotiate); when
    /// false only unreachability or a must_avoid violation does.
    bool strict_binding = false;
  };

  void watch(WatchedTunnel tunnel) {
    trace(obs::EventType::TunnelWatched, tunnel, "");
    watched_.push_back(std::move(tunnel));
  }

  /// Stops watching (e.g., after an active teardown). Returns true when the
  /// tunnel was watched.
  bool unwatch(NodeId responder, TunnelId id);

  /// Control-plane liveness hook: the upstream side failed the tunnel over
  /// (MiroAgent's keep-alive miss threshold, see TunnelLostEvent). Stops
  /// watching and returns the record — it carries everything a caller needs
  /// (destination, must_avoid) to steer the replacement negotiation.
  std::optional<WatchedTunnel> on_tunnel_lost(NodeId responder, TunnelId id);

  std::size_t watched_count() const { return watched_.size(); }

  /// Read-only view of everything currently watched, in watch order. The
  /// churn invariant checker audits this against the live routing state
  /// (no watched tunnel may outlive its underlying route past the
  /// hold-down).
  const std::vector<WatchedTunnel>& watched() const { return watched_; }

  /// The upstream's route toward `responder` changed (prefix = responder's
  /// address space). Returns the tunnels torn down by this event.
  std::vector<WatchedTunnel> on_carrier_change(
      NodeId upstream, NodeId responder,
      const std::optional<std::vector<NodeId>>& new_path);

  /// AS `hop`'s best route toward `destination` changed; affects every
  /// watched tunnel whose bound path continues through `hop` (the AS right
  /// after the responder's exit link). Returns the tunnels torn down.
  std::vector<WatchedTunnel> on_downstream_change(
      NodeId hop, NodeId destination,
      const std::optional<std::vector<NodeId>>& new_path);

  /// Attaches (or clears, with nullptr) a trace recorder observing
  /// watch/unwatch and route-change invalidations. The monitor has no time
  /// source of its own, so an optional `clock` (typically
  /// `[&s]{ return s.now(); }` over the simulation scheduler) stamps the
  /// events; without one they carry time 0.
  void set_trace(obs::TraceRecorder* trace,
                 std::function<obs::Time()> clock = {}) {
    trace_ = trace;
    clock_ = std::move(clock);
  }

 private:
  template <typename Predicate>
  std::vector<WatchedTunnel> tear_down_if(Predicate&& dead,
                                          const char* reason);

  void trace(obs::EventType type, const WatchedTunnel& tunnel,
             const char* detail) {
    if (trace_ == nullptr) return;
    trace_->record({clock_ ? clock_() : 0, type, tunnel.upstream,
                    tunnel.responder, 0, tunnel.id, 0, detail});
  }

  std::vector<WatchedTunnel> watched_;
  obs::TraceRecorder* trace_ = nullptr;
  std::function<obs::Time()> clock_;
};

}  // namespace miro::core
