// Lazy cache of stable routing trees, one per destination.
//
// Both the control-plane agents and the evaluation harness need the stable
// routes toward many destinations; solving is cheap (one Dijkstra-style pass
// per destination) but worth caching across agents within a scenario.
//
// The cache is the eval pipeline's dominant heap consumer (one Entry per AS
// per destination), so it participates in the memory observability layer
// both ways: the map's own nodes are tagged live through a
// CountingAllocator when a MemCounters account is passed at construction
// (null = untracked, zero cost beyond one branch per allocation), and
// memory_bytes() walks the cached trees for the deterministic footprint the
// bench rows report.
#pragma once

#include <memory>
#include <unordered_map>

#include "bgp/route_solver.hpp"
#include "common/memtrack.hpp"

namespace miro::core {

class RouteStore {
 public:
  explicit RouteStore(const topo::AsGraph& graph,
                      MemCounters* counters = nullptr)
      : solver_(graph), trees_(TreeAlloc(counters)) {}

  /// The stable routing tree toward `destination`, solved on first use.
  const bgp::RoutingTree& tree(topo::NodeId destination) {
    auto it = trees_.find(destination);
    if (it == trees_.end()) {
      it = trees_
               .emplace(destination, std::make_unique<bgp::RoutingTree>(
                                         solver_.solve(destination)))
               .first;
    }
    return *it->second;
  }

  std::size_t tree_count() const { return trees_.size(); }

  /// Resident byte footprint of the cache: the map's nodes plus every
  /// cached tree's entry array. Capacity-based and deterministic for a
  /// given solve sequence.
  std::uint64_t memory_bytes() const {
    std::uint64_t bytes = hash_map_bytes(trees_);
    for (const auto& [destination, tree] : trees_)
      bytes += sizeof(bgp::RoutingTree) + tree->memory_bytes();
    return bytes;
  }

  const bgp::StableRouteSolver& solver() const { return solver_; }
  const topo::AsGraph& graph() const { return solver_.graph(); }

 private:
  using TreeMap =
      std::unordered_map<topo::NodeId, std::unique_ptr<bgp::RoutingTree>,
                         std::hash<topo::NodeId>, std::equal_to<topo::NodeId>,
                         CountingAllocator<std::pair<
                             const topo::NodeId,
                             std::unique_ptr<bgp::RoutingTree>>>>;
  using TreeAlloc = TreeMap::allocator_type;

  bgp::StableRouteSolver solver_;
  TreeMap trees_;
};

}  // namespace miro::core
