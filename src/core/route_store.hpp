// Lazy cache of stable routing trees, one per destination.
//
// Both the control-plane agents and the evaluation harness need the stable
// routes toward many destinations; solving is cheap (one Dijkstra-style pass
// per destination) but worth caching across agents within a scenario.
//
// The cache is the eval pipeline's dominant heap consumer (one Entry per AS
// per destination), so it participates in the memory observability layer
// both ways: the map's own nodes are tagged live through a
// CountingAllocator when a MemCounters account is passed at construction
// (null = untracked, zero cost beyond one branch per allocation), and
// memory_bytes() walks the cached trees for the deterministic footprint the
// bench rows report.
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "bgp/path_table.hpp"
#include "bgp/route_solver.hpp"
#include "common/arena.hpp"
#include "common/memtrack.hpp"

namespace miro::core {

class RouteStore {
 public:
  explicit RouteStore(const topo::AsGraph& graph,
                      MemCounters* counters = nullptr)
      : solver_(graph),
        trees_(TreeAlloc(counters)),
        // One slab holds exactly one tree's entry array, so the arena's
        // reserved bytes track the cache contents with zero slack.
        arena_(std::max<std::size_t>(
            1, graph.node_count() * bgp::RoutingTree::bytes_per_node())) {}

  /// The stable routing tree toward `destination`, solved on first use into
  /// the store's arena (entry arrays are contiguous per tree and freed all
  /// at once with the store).
  const bgp::RoutingTree& tree(topo::NodeId destination) {
    auto it = trees_.find(destination);
    if (it == trees_.end()) {
      it = trees_
               .emplace(destination, std::make_unique<bgp::RoutingTree>(
                                         solver_.solve(destination, &arena_)))
               .first;
    }
    return *it->second;
  }

  std::size_t tree_count() const { return trees_.size(); }

  /// The store's AS-path intern table: agents that pin or compare routes
  /// (tunnel bookkeeping, RIB snapshots) intern here so equal paths share
  /// storage and compare as one integer.
  bgp::PathTable& paths() { return paths_; }
  const bgp::PathTable& paths() const { return paths_; }
  /// Interns a route's path; resolve back with materialize().
  bgp::InternedRoute intern(const bgp::Route& route) {
    return paths_.intern(route);
  }
  bgp::Route materialize(const bgp::InternedRoute& route) const {
    return paths_.materialize(route);
  }

  /// Resident byte footprint of the cache: the map's nodes, the arena
  /// holding every cached tree's entry array (counted once, not per tree —
  /// see RoutingTree::memory_bytes), and the intern table. Capacity-based
  /// and deterministic for a given solve/intern sequence.
  std::uint64_t memory_bytes() const {
    return hash_map_bytes(trees_) + paths_.memory_bytes() +
           arena_.reserved_bytes() +
           static_cast<std::uint64_t>(trees_.size()) *
               sizeof(bgp::RoutingTree);
  }

  const bgp::StableRouteSolver& solver() const { return solver_; }
  const topo::AsGraph& graph() const { return solver_.graph(); }

 private:
  using TreeMap =
      std::unordered_map<topo::NodeId, std::unique_ptr<bgp::RoutingTree>,
                         std::hash<topo::NodeId>, std::equal_to<topo::NodeId>,
                         CountingAllocator<std::pair<
                             const topo::NodeId,
                             std::unique_ptr<bgp::RoutingTree>>>>;
  using TreeAlloc = TreeMap::allocator_type;

  bgp::StableRouteSolver solver_;
  TreeMap trees_;
  Arena arena_;
  bgp::PathTable paths_;
};

}  // namespace miro::core
