// Lazy cache of stable routing trees, one per destination.
//
// Both the control-plane agents and the evaluation harness need the stable
// routes toward many destinations; solving is cheap (one Dijkstra-style pass
// per destination) but worth caching across agents within a scenario.
#pragma once

#include <memory>
#include <unordered_map>

#include "bgp/route_solver.hpp"

namespace miro::core {

class RouteStore {
 public:
  explicit RouteStore(const topo::AsGraph& graph)
      : solver_(graph) {}

  /// The stable routing tree toward `destination`, solved on first use.
  const bgp::RoutingTree& tree(topo::NodeId destination) {
    auto it = trees_.find(destination);
    if (it == trees_.end()) {
      it = trees_
               .emplace(destination, std::make_unique<bgp::RoutingTree>(
                                         solver_.solve(destination)))
               .first;
    }
    return *it->second;
  }

  const bgp::StableRouteSolver& solver() const { return solver_; }
  const topo::AsGraph& graph() const { return solver_.graph(); }

 private:
  bgp::StableRouteSolver solver_;
  std::unordered_map<topo::NodeId, std::unique_ptr<bgp::RoutingTree>> trees_;
};

}  // namespace miro::core
