// Analytic MIRO negotiation over stable BGP state.
//
// This is the AS-level heart of the system: given the stable routes, it
// answers what a requesting AS can obtain by pull-based negotiation —
// with its immediate neighbors ("1-hop") or with any AS on its default path
// ("path"), under each of the Chapter 5 export policies — and implements the
// avoid-an-AS procedure whose success rates Table 5.2 reports and whose
// negotiation footprint Table 5.3 reports. The event-driven message protocol
// in core/protocol.* performs the same computation message-by-message; this
// class is the closed-form equivalent the evaluation harness runs at scale.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route_solver.hpp"
#include "core/export_policy.hpp"

namespace miro::core {

using bgp::RoutingTree;
using bgp::StableRouteSolver;
using topo::NodeId;

/// An end-to-end path assembled from the requester's default path to the
/// responder plus the alternate the responder offered. In the data plane the
/// suffix from the responder onward is reached through a tunnel.
struct SplicedPath {
  std::vector<NodeId> as_path;   ///< full AS path, source..destination
  NodeId responder = topo::kInvalidNode;
  std::size_t responder_index = 0;  ///< position of responder in as_path
  Route offered;                 ///< alternate as announced by the responder

  bool traverses(NodeId node) const;
};

/// Which ASes the requester negotiates with (Figures 5.2/5.3 sweep both).
enum class NegotiationScope {
  OneHop,  ///< immediate neighbors only
  OnPath,  ///< every AS on the default BGP path to the destination
};

const char* to_string(NegotiationScope scope);

class AlternatesEngine {
 public:
  explicit AlternatesEngine(const StableRouteSolver& solver)
      : solver_(&solver) {}

  /// Every distinct alternate end-to-end path `source` can obtain for
  /// `tree.destination()` under the given scope and policy, excluding the
  /// default path itself. `deployed`, when non-null, marks which ASes run
  /// MIRO and answer negotiations (incremental-deployment experiments).
  std::vector<SplicedPath> collect(const RoutingTree& tree, NodeId source,
                                   NegotiationScope scope,
                                   ExportPolicy policy,
                                   const std::vector<bool>* deployed =
                                       nullptr) const;

  /// Number of distinct alternate paths (same semantics as collect).
  std::size_t count(const RoutingTree& tree, NodeId source,
                    NegotiationScope scope, ExportPolicy policy,
                    const std::vector<bool>* deployed = nullptr) const;

  /// Result of the avoid-an-AS procedure (Section 5.3).
  struct AvoidResult {
    bool success = false;        ///< found a path avoiding the AS
    bool bgp_success = false;    ///< plain BGP already offered one
    bool used_multihop = false;  ///< a responder had to ask downstream
    std::size_t ases_contacted = 0;   ///< negotiations initiated
    std::size_t paths_received = 0;   ///< candidate routes received in total
    std::optional<SplicedPath> chosen;
  };

  /// Tries to find a route from `source` to `tree.destination()` that avoids
  /// `avoid`, which must lie on the source's default path. First checks the
  /// source's plain-BGP candidate routes; then negotiates with the ASes on
  /// the default path between the source and the offending AS, closest
  /// first, taking the first acceptable offer.
  AvoidResult avoid_as(const RoutingTree& tree, NodeId source, NodeId avoid,
                       ExportPolicy policy,
                       const std::vector<bool>* deployed = nullptr) const;

  /// Like avoid_as, but when a responder has nothing acceptable it may in
  /// turn negotiate with the downstream ASes on its own candidate paths —
  /// "AS B may ask AS C to advertise alternate paths as part of satisfying
  /// the request from AS A, if C is not already announcing a path that
  /// avoids AS E" (Section 3.3). One level of recursion ("it is not
  /// envisioned that multi-hop negotiation needs to happen very often").
  AvoidResult avoid_as_multihop(const RoutingTree& tree, NodeId source,
                                NodeId avoid, ExportPolicy policy,
                                const std::vector<bool>* deployed =
                                    nullptr) const;

  const StableRouteSolver& solver() const { return *solver_; }

 private:
  /// Offers responder `v` makes to a requester whose traffic arrives from
  /// `previous_hop` (the AS before v on the requester's default path; equals
  /// the requester itself for 1-hop negotiation).
  std::vector<Route> offers_from(const RoutingTree& tree, NodeId responder,
                                 NodeId previous_hop,
                                 ExportPolicy policy) const;

  const StableRouteSolver* solver_;
};

}  // namespace miro::core
