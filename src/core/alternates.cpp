#include "core/alternates.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace miro::core {

bool SplicedPath::traverses(NodeId node) const {
  return std::find(as_path.begin(), as_path.end(), node) != as_path.end();
}

const char* to_string(NegotiationScope scope) {
  return scope == NegotiationScope::OneHop ? "1-hop" : "path";
}

std::vector<Route> AlternatesEngine::offers_from(const RoutingTree& tree,
                                                 NodeId responder,
                                                 NodeId previous_hop,
                                                 ExportPolicy policy) const {
  const auto& graph = solver_->graph();
  // The export relationship is evaluated on the link the offered route will
  // actually be used over: the one from the previous hop into the responder.
  const topo::Relationship requester_rel =
      graph.relationship(responder, previous_hop);
  std::optional<RouteClass> best_class;
  if (tree.reachable(responder)) best_class = tree.route_class(responder);
  std::vector<Route> candidates = solver_->candidates_at(tree, responder);
  return filter_exports(policy, candidates, best_class, requester_rel);
}

namespace {

/// Builds the spliced path prefix + offered.path (offered.path[0] is the
/// responder, which equals prefix.back()); rejects loops with the prefix.
std::optional<SplicedPath> splice(const std::vector<NodeId>& prefix,
                                  std::size_t responder_index,
                                  const Route& offered) {
  for (std::size_t i = 0; i + 1 < offered.path.size(); ++i) {
    // No node of the offered suffix (beyond the responder) may re-appear in
    // the prefix; the responder itself is shared.
    NodeId node = offered.path[i + 1];
    if (std::find(prefix.begin(), prefix.end(), node) != prefix.end())
      return std::nullopt;
  }
  SplicedPath spliced;
  spliced.as_path = prefix;
  spliced.as_path.insert(spliced.as_path.end(), offered.path.begin() + 1,
                         offered.path.end());
  spliced.responder = offered.owner();
  spliced.responder_index = responder_index;
  spliced.offered = offered;
  return spliced;
}

}  // namespace

std::vector<SplicedPath> AlternatesEngine::collect(
    const RoutingTree& tree, NodeId source, NegotiationScope scope,
    ExportPolicy policy, const std::vector<bool>* deployed) const {
  const auto& graph = solver_->graph();
  const NodeId destination = tree.destination();
  std::vector<SplicedPath> result;
  if (source == destination) return result;

  std::set<std::vector<NodeId>> seen;
  std::vector<NodeId> default_path = tree.path_of(source);
  if (!default_path.empty()) seen.insert(default_path);

  auto consider = [&](const std::vector<NodeId>& prefix,
                      std::size_t responder_index, const Route& offered) {
    auto spliced = splice(prefix, responder_index, offered);
    if (!spliced) return;
    if (seen.insert(spliced->as_path).second)
      result.push_back(std::move(*spliced));
  };

  auto is_deployed = [&](NodeId node) {
    return deployed == nullptr || (*deployed)[node];
  };

  if (scope == NegotiationScope::OneHop) {
    for (const topo::Neighbor& n : graph.neighbors(source)) {
      if (n.node == destination || !is_deployed(n.node)) continue;
      // The prefix to a 1-hop responder is just the direct link.
      const std::vector<NodeId> prefix{source, n.node};
      for (const Route& offered : offers_from(tree, n.node, source, policy))
        consider(prefix, 1, offered);
    }
  } else {
    // Negotiate with every intermediate AS on the default path.
    for (std::size_t i = 1; i + 1 < default_path.size(); ++i) {
      const NodeId responder = default_path[i];
      if (!is_deployed(responder)) continue;
      const std::vector<NodeId> prefix(default_path.begin(),
                                       default_path.begin() + i + 1);
      for (const Route& offered :
           offers_from(tree, responder, default_path[i - 1], policy)) {
        consider(prefix, i, offered);
      }
    }
    // The source's immediate neighbors on the default path are covered; the
    // source itself also sees its own plain-BGP candidates, which are not
    // MIRO alternates and are not counted here.
  }
  return result;
}

std::size_t AlternatesEngine::count(const RoutingTree& tree, NodeId source,
                                    NegotiationScope scope,
                                    ExportPolicy policy,
                                    const std::vector<bool>* deployed) const {
  return collect(tree, source, scope, policy, deployed).size();
}

AlternatesEngine::AvoidResult AlternatesEngine::avoid_as(
    const RoutingTree& tree, NodeId source, NodeId avoid, ExportPolicy policy,
    const std::vector<bool>* deployed) const {
  AvoidResult result;
  const NodeId destination = tree.destination();
  require(source != avoid && destination != avoid,
          "avoid_as: endpoints cannot be the avoided AS");
  if (!tree.reachable(source)) return result;
  const std::vector<NodeId> default_path = tree.path_of(source);
  auto avoid_it = std::find(default_path.begin(), default_path.end(), avoid);
  require(avoid_it != default_path.end(),
          "avoid_as: the avoided AS must lie on the source's default path");
  const std::size_t avoid_index =
      static_cast<std::size_t>(avoid_it - default_path.begin());

  // Plain BGP first: any candidate route at the source that misses the AS.
  for (const Route& candidate : solver_->candidates_at(tree, source)) {
    if (!candidate.traverses(avoid)) {
      result.success = true;
      result.bgp_success = true;
      SplicedPath direct;
      direct.as_path = candidate.path;
      direct.responder = source;
      direct.responder_index = 0;
      direct.offered = candidate;
      result.chosen = std::move(direct);
      return result;
    }
  }

  // Negotiate with the ASes on the default path between the source and the
  // offending AS, closest first.
  for (std::size_t i = 1; i < avoid_index; ++i) {
    const NodeId responder = default_path[i];
    if (deployed != nullptr && !(*deployed)[responder]) continue;
    ++result.ases_contacted;
    const std::vector<Route> offers =
        offers_from(tree, responder, default_path[i - 1], policy);
    result.paths_received += offers.size();
    const std::vector<NodeId> prefix(default_path.begin(),
                                     default_path.begin() + i + 1);
    for (const Route& offered : offers) {
      if (offered.traverses(avoid)) continue;
      auto spliced = splice(prefix, i, offered);
      if (!spliced) continue;
      result.success = true;
      result.chosen = std::move(*spliced);
      return result;
    }
  }
  return result;
}

AlternatesEngine::AvoidResult AlternatesEngine::avoid_as_multihop(
    const RoutingTree& tree, NodeId source, NodeId avoid,
    ExportPolicy policy, const std::vector<bool>* deployed) const {
  AvoidResult result = avoid_as(tree, source, avoid, policy, deployed);
  if (result.success) return result;

  // Second pass: each on-path responder, having nothing acceptable of its
  // own, asks the downstream ASes on its candidate paths to reveal *their*
  // alternates, and relays any that avoid the offending AS.
  const std::vector<NodeId> default_path = tree.path_of(source);
  const std::size_t avoid_index = static_cast<std::size_t>(
      std::find(default_path.begin(), default_path.end(), avoid) -
      default_path.begin());

  auto is_deployed = [&](NodeId node) {
    return deployed == nullptr || (*deployed)[node];
  };

  for (std::size_t i = 1; i < avoid_index; ++i) {
    const NodeId responder = default_path[i];
    if (!is_deployed(responder)) continue;
    const std::vector<NodeId> prefix(default_path.begin(),
                                     default_path.begin() + i + 1);
    std::vector<NodeId> asked;  // each downstream is contacted once
    for (const Route& via : offers_from(tree, responder,
                                        default_path[i - 1], policy)) {
      // The first hop of this candidate is a downstream AS the responder
      // can ask — useful only if that hop is itself clean.
      if (via.path.size() < 2) continue;
      const NodeId downstream = via.path[1];
      if (downstream == avoid || !is_deployed(downstream)) continue;
      if (std::find(asked.begin(), asked.end(), downstream) != asked.end())
        continue;
      asked.push_back(downstream);
      ++result.ases_contacted;
      const std::vector<Route> relayed =
          offers_from(tree, downstream, responder, policy);
      result.paths_received += relayed.size();
      for (const Route& offered : relayed) {
        if (offered.traverses(avoid)) continue;
        // End-to-end: default prefix + responder->downstream link +
        // downstream's alternate.
        std::vector<NodeId> extended_prefix = prefix;
        extended_prefix.push_back(downstream);
        if (std::find(prefix.begin(), prefix.end(), downstream) !=
            prefix.end())
          continue;  // downstream already on the prefix: loop
        auto spliced = splice(extended_prefix, i + 1, offered);
        if (!spliced) continue;
        result.success = true;
        result.used_multihop = true;
        result.chosen = std::move(*spliced);
        return result;
      }
    }
  }
  return result;
}

}  // namespace miro::core
