#include "core/tunnel_monitor.hpp"

namespace miro::core {

bool TunnelMonitor::unwatch(NodeId responder, TunnelId id) {
  const auto before = watched_.size();
  for (const WatchedTunnel& t : watched_) {
    if (t.responder == responder && t.id == id)
      trace(obs::EventType::TunnelUnwatched, t, "teardown");
  }
  watched_.erase(std::remove_if(watched_.begin(), watched_.end(),
                                [&](const WatchedTunnel& t) {
                                  return t.responder == responder &&
                                         t.id == id;
                                }),
                 watched_.end());
  return watched_.size() != before;
}

std::optional<TunnelMonitor::WatchedTunnel> TunnelMonitor::on_tunnel_lost(
    NodeId responder, TunnelId id) {
  auto it = std::find_if(watched_.begin(), watched_.end(),
                         [&](const WatchedTunnel& t) {
                           return t.responder == responder && t.id == id;
                         });
  if (it == watched_.end()) return std::nullopt;
  WatchedTunnel lost = std::move(*it);
  watched_.erase(it);
  trace(obs::EventType::TunnelUnwatched, lost, "tunnel_lost");
  return lost;
}

template <typename Predicate>
std::vector<TunnelMonitor::WatchedTunnel> TunnelMonitor::tear_down_if(
    Predicate&& dead, const char* reason) {
  std::vector<WatchedTunnel> torn;
  auto it = watched_.begin();
  while (it != watched_.end()) {
    if (dead(*it)) {
      trace(obs::EventType::TunnelInvalidated, *it, reason);
      torn.push_back(std::move(*it));
      it = watched_.erase(it);
    } else {
      ++it;
    }
  }
  return torn;
}

std::vector<TunnelMonitor::WatchedTunnel> TunnelMonitor::on_carrier_change(
    NodeId upstream, NodeId responder,
    const std::optional<std::vector<NodeId>>& new_path) {
  return tear_down_if([&](const WatchedTunnel& tunnel) {
    if (tunnel.upstream != upstream || tunnel.responder != responder)
      return false;
    if (!new_path) return true;  // the path to the responder failed
    if (tunnel.must_avoid &&
        std::find(new_path->begin(), new_path->end(), *tunnel.must_avoid) !=
            new_path->end())
      return true;  // "the path to B now traverses through E"
    return false;
  }, "carrier_change");
}

std::vector<TunnelMonitor::WatchedTunnel> TunnelMonitor::on_downstream_change(
    NodeId hop, NodeId destination,
    const std::optional<std::vector<NodeId>>& new_path) {
  return tear_down_if([&](const WatchedTunnel& tunnel) {
    if (tunnel.destination != destination) return false;
    // Only tunnels whose bound path continues through `hop` right after the
    // responder depend on this route.
    if (tunnel.bound_path.size() < 2 || tunnel.bound_path[1] != hop)
      return false;
    if (!new_path) return true;  // "the path BCF to the destination fails"
    if (tunnel.must_avoid &&
        std::find(new_path->begin(), new_path->end(), *tunnel.must_avoid) !=
            new_path->end())
      return true;
    if (tunnel.strict_binding) {
      // The negotiated suffix beyond the responder must stay intact.
      const std::vector<NodeId> expected(tunnel.bound_path.begin() + 1,
                                         tunnel.bound_path.end());
      return *new_path != expected;
    }
    return false;
  }, "downstream_change");
}

}  // namespace miro::core
