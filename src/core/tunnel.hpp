// Tunnel state owned by a downstream (responding) AS.
//
// After a successful negotiation the downstream AS assigns a tunnel
// identifier, unique only within itself (Section 3.5), binds it to the agreed
// route, and maintains it as soft state: the upstream AS refreshes it with
// keep-alives and the tunnel is destroyed when the heartbeat timer expires
// (Section 4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "net/packet.hpp"
#include "netsim/scheduler.hpp"

namespace miro::core {

using bgp::Route;
using net::TunnelId;
using topo::NodeId;

struct TunnelRecord {
  TunnelId id = 0;
  NodeId remote_as = topo::kInvalidNode;  ///< the upstream AS
  Route bound_route;                      ///< path at the downstream AS
  int cost = 0;                           ///< agreed per-negotiation price
  sim::Time last_heartbeat = 0;
};

/// The downstream AS's table of active tunnels.
class TunnelTable {
 public:
  /// Creates a tunnel and returns its fresh identifier.
  TunnelId create(NodeId remote_as, Route bound_route, int cost,
                  sim::Time now);

  /// Tears a tunnel down; returns false when the id is unknown.
  bool remove(TunnelId id);

  const TunnelRecord* find(TunnelId id) const;

  /// Refreshes the soft state; returns false when the id is unknown.
  bool heartbeat(TunnelId id, sim::Time now);

  /// Destroys every tunnel whose last heartbeat is older than `timeout`;
  /// returns the ids torn down ("destroy tunnels when the heartbeat timer
  /// expires").
  std::vector<TunnelId> expire(sim::Time now, sim::Time timeout);

  std::size_t active_count() const { return tunnels_.size(); }

  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (const auto& [id, record] : tunnels_) visit(record);
  }

 private:
  TunnelId next_id_ = 1;
  std::unordered_map<TunnelId, TunnelRecord> tunnels_;
};

}  // namespace miro::core
