// The MIRO control-plane negotiation protocol (Figure 4.2).
//
// Message flow between a requesting AS and a responding AS:
//
//   requester                    responder
//      | -- RouteRequest  ------->  |   (destination, desired properties)
//      | <-- RouteOffers  --------  |   (policy-filtered candidates + prices)
//      | -- TunnelAccept  ------->  |   (the chosen candidate)
//      | <-- TunnelConfirm -------  |   (tunnel id / endpoint address)
//      | -- TunnelKeepAlive ... ->  |   (periodic soft-state refresh)
//      | -- TunnelTeardown ------>  |   (active teardown; soft state covers
//                                        the case where this never arrives)
//
// Each AS runs one MiroAgent. The responder applies its export policy, a
// requester-supplied avoid constraint ("only give me paths without AS 312",
// Section 6.2.2), price tags, and admission control (tunnel-count limit,
// trust predicate). The requester picks the best affordable offer. Tunnels
// are soft state: keep-alives refresh them and an expiry sweep destroys
// silent ones (Section 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/export_policy.hpp"
#include "core/route_store.hpp"
#include "core/tunnel.hpp"
#include "netsim/message_bus.hpp"

namespace miro::core {

// ---------------------------------------------------------------- messages

struct RouteRequest {
  std::uint64_t negotiation_id = 0;
  NodeId destination = topo::kInvalidNode;
  /// The neighbor of the responder through which the requester's traffic
  /// will arrive (equals the requester for adjacent negotiation); the
  /// responder evaluates export rules against this link.
  NodeId arrival_neighbor = topo::kInvalidNode;
  std::optional<NodeId> avoid;   ///< "only paths without AS X"
  std::optional<int> max_cost;   ///< requester's price ceiling
};

struct RouteOffer {
  Route route;
  int cost = 0;
};

struct RouteOffers {
  std::uint64_t negotiation_id = 0;
  std::vector<RouteOffer> offers;  ///< empty = nothing acceptable / rejected
};

struct TunnelAccept {
  std::uint64_t negotiation_id = 0;
  Route chosen;
  int cost = 0;
};

struct TunnelConfirm {
  std::uint64_t negotiation_id = 0;
  TunnelId tunnel_id = 0;
};

struct TunnelKeepAlive {
  TunnelId tunnel_id = 0;
};

struct TunnelTeardown {
  TunnelId tunnel_id = 0;
};

/// Downstream-initiated negotiation (Section 3.3): the requester asks the
/// responder to *change its own default selection* toward `destination` —
/// "AS F can negotiate with AS B to switch to an alternate path that
/// traverses CF. Then, AS B can respond by agreeing to select the path BCF
/// instead of BEF, and AS B will advertise the path BCF to its customers."
struct SwitchRequest {
  std::uint64_t negotiation_id = 0;
  NodeId destination = topo::kInvalidNode;
  /// The first hop of the alternate the requester wants the responder on.
  NodeId desired_next_hop = topo::kInvalidNode;
  /// Payment offered for deviating from the responder's preferred route.
  int compensation = 0;
};

struct SwitchResponse {
  std::uint64_t negotiation_id = 0;
  bool accepted = false;
  /// The path the responder now selects (empty when declined).
  std::vector<NodeId> new_path;
};

using Message =
    std::variant<RouteRequest, RouteOffers, TunnelAccept, TunnelConfirm,
                 TunnelKeepAlive, TunnelTeardown, SwitchRequest,
                 SwitchResponse>;

using Bus = sim::MessageBus<Message>;

// ------------------------------------------------------------------ agent

/// Responder-side configuration (Chapter 6's negotiation-related rules).
struct ResponderConfig {
  ExportPolicy policy = ExportPolicy::RespectExport;
  /// "accept negotiation from any when tunnel_number < 1000".
  std::size_t max_tunnels = 1000;
  /// Trust predicate; default accepts anyone.
  std::function<bool(NodeId requester)> accept_from;
  /// Price tag per offered route; default prices by class
  /// (customer routes cheaper than peer routes, Section 6.2.2).
  std::function<int(const Route&)> price;
  /// Whether to accept a downstream-initiated switch from `current` to
  /// `alternate` for the offered compensation. Default: accept alternates in
  /// the same class for free, and lower-class alternates only when the
  /// compensation covers the class gap (100 per rank).
  std::function<bool(const Route& current, const Route& alternate,
                     int compensation)>
      accept_switch;
};

/// Timing knobs for the soft-state machinery.
struct SoftStateConfig {
  sim::Time keepalive_interval = 100;
  sim::Time expiry_timeout = 350;   ///< > 3 keep-alive intervals
  sim::Time sweep_interval = 100;
  /// A negotiation whose responder stays silent this long fails locally
  /// (the completion callback fires with established == false).
  sim::Time negotiation_timeout = 2000;
};

/// Outcome delivered to the requester's completion callback.
struct NegotiationOutcome {
  bool established = false;
  NodeId responder = topo::kInvalidNode;
  TunnelId tunnel_id = 0;
  Route route;       ///< the path bound to the tunnel, as seen at responder
  int cost = 0;
  std::size_t offers_received = 0;
};

class MiroAgent {
 public:
  /// `self` is this AS's node id; the agent attaches itself to the bus.
  MiroAgent(NodeId self, RouteStore& store, Bus& bus,
            ResponderConfig responder = {}, SoftStateConfig soft_state = {});

  using CompletionCallback = std::function<void(const NegotiationOutcome&)>;

  /// Initiates a negotiation with `responder` for alternate routes toward
  /// `destination`. `arrival_neighbor` is the responder's neighbor on this
  /// AS's default path (pass `self` when adjacent). The callback fires once,
  /// when the negotiation either establishes a tunnel or fails.
  std::uint64_t request(NodeId responder, NodeId arrival_neighbor,
                        NodeId destination, std::optional<NodeId> avoid,
                        std::optional<int> max_cost,
                        CompletionCallback on_complete);

  /// Actively tears down a tunnel this AS established as the upstream side.
  void teardown(TunnelId tunnel_id);

  /// Downstream-initiated negotiation: asks `responder` to switch its own
  /// selection toward `destination` to the alternate whose first hop is
  /// `desired_next_hop`, offering `compensation`. The callback receives
  /// whether the responder agreed.
  using SwitchCallback = std::function<void(bool accepted,
                                            const std::vector<NodeId>& path)>;
  std::uint64_t request_switch(NodeId responder, NodeId destination,
                               NodeId desired_next_hop, int compensation,
                               SwitchCallback on_complete);

  /// Selections this AS has agreed to divert as a switch responder:
  /// destination -> forced next hop. An RCP would push these into the
  /// routers; the eval harness models them with a pinned re-solve.
  const std::unordered_map<NodeId, NodeId>& switched_selections() const {
    return switched_;
  }

  /// Tunnels this AS maintains as the downstream (responding) side.
  const TunnelTable& tunnels() const { return tunnels_; }
  /// Tunnels this AS uses as the upstream side: tunnel id -> responder.
  const std::unordered_map<TunnelId, NodeId>& upstream_tunnels() const {
    return upstream_;
  }

  struct Stats {
    std::size_t requests_sent = 0;
    std::size_t requests_received = 0;
    std::size_t requests_rejected = 0;  ///< admission control
    std::size_t offers_sent = 0;
    std::size_t tunnels_established = 0;
    std::size_t tunnels_expired = 0;    ///< soft-state timeouts
    std::size_t tunnels_torn_down = 0;  ///< active teardowns received
    std::size_t switches_accepted = 0;  ///< downstream-initiated diversions
    std::size_t switches_declined = 0;
  };
  const Stats& stats() const { return stats_; }

  NodeId self() const { return self_; }

 private:
  void on_message(sim::EndpointId from, const Message& message);
  void handle(NodeId from, const RouteRequest& request);
  void handle(NodeId from, const RouteOffers& offers);
  void handle(NodeId from, const TunnelAccept& accept);
  void handle(NodeId from, const TunnelConfirm& confirm);
  void handle(NodeId from, const TunnelKeepAlive& keepalive);
  void handle(NodeId from, const TunnelTeardown& teardown);
  void handle(NodeId from, const SwitchRequest& request);
  void handle(NodeId from, const SwitchResponse& response);
  void schedule_keepalive(TunnelId tunnel_id, NodeId responder);
  void schedule_sweep();

  NodeId self_;
  RouteStore* store_;
  Bus* bus_;
  ResponderConfig responder_;
  SoftStateConfig soft_state_;
  TunnelTable tunnels_;  // downstream role

  struct PendingRequest {
    NodeId responder;
    NodeId destination;
    std::optional<NodeId> avoid;
    std::optional<int> max_cost;
    CompletionCallback on_complete;
    std::size_t offers_received = 0;
  };
  std::uint64_t next_negotiation_id_ = 1;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;  // requester
  std::unordered_map<std::uint64_t, SwitchCallback> pending_switches_;
  std::unordered_map<TunnelId, NodeId> upstream_;  // upstream role
  std::unordered_map<NodeId, NodeId> switched_;    // switch-responder role
  Stats stats_;
};

}  // namespace miro::core
