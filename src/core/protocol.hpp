// The MIRO control-plane negotiation protocol (Figure 4.2).
//
// Message flow between a requesting AS and a responding AS:
//
//   requester                    responder
//      | -- RouteRequest  ------->  |   (destination, desired properties)
//      | <-- RouteOffers  --------  |   (policy-filtered candidates + prices)
//      | -- TunnelAccept  ------->  |   (the chosen candidate)
//      | <-- TunnelConfirm -------  |   (tunnel id / endpoint address)
//      | -- TunnelKeepAlive ... ->  |   (periodic soft-state refresh)
//      | <-- TunnelKeepAliveAck --  |   (upstream-side liveness signal)
//      | -- TunnelTeardown ------>  |   (active teardown; soft state covers
//                                        the case where this never arrives)
//
// Each AS runs one MiroAgent. The responder applies its export policy, a
// requester-supplied avoid constraint ("only give me paths without AS 312",
// Section 6.2.2), price tags, and admission control (tunnel-count limit,
// trust predicate). The requester picks the best affordable offer. Tunnels
// are soft state: keep-alives refresh them and an expiry sweep destroys
// silent ones (Section 4.3).
//
// Reliability layer. The network may drop, duplicate, or reorder any of
// these messages (netsim/fault_injection.hpp), so:
//  - The requester retransmits RouteRequest and TunnelAccept with capped
//    exponential backoff plus jitter until answered; the negotiation_timeout
//    remains the single failure backstop (the completion callback still
//    fires exactly once). TunnelTeardown, which has no acknowledgment, is
//    blindly re-sent a fixed number of times; soft-state expiry covers the
//    copies that never arrive.
//  - The responder is idempotent per (requester, negotiation id): a
//    duplicated TunnelAccept never mints a second tunnel — the cached
//    TunnelConfirm is re-sent instead.
//  - The upstream side tracks keep-alive acknowledgments; after
//    keepalive_miss_threshold consecutive unacknowledged keep-alives (or an
//    ack reporting the tunnel dead) the tunnel is failed over: upstream
//    state is dropped so traffic falls back to the BGP default path, the
//    tunnel-lost callback fires, and — when auto_renegotiate is on — a
//    re-negotiation starts after a hold-down delay that prevents flapping.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "core/export_policy.hpp"
#include "core/route_store.hpp"
#include "core/tunnel.hpp"
#include "netsim/message_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace miro::core {

// ---------------------------------------------------------------- messages

struct RouteRequest {
  std::uint64_t negotiation_id = 0;
  NodeId destination = topo::kInvalidNode;
  /// The neighbor of the responder through which the requester's traffic
  /// will arrive (equals the requester for adjacent negotiation); the
  /// responder evaluates export rules against this link.
  NodeId arrival_neighbor = topo::kInvalidNode;
  std::optional<NodeId> avoid;   ///< "only paths without AS X"
  std::optional<int> max_cost;   ///< requester's price ceiling
};

struct RouteOffer {
  Route route;
  int cost = 0;
};

struct RouteOffers {
  std::uint64_t negotiation_id = 0;
  std::vector<RouteOffer> offers;  ///< empty = nothing acceptable / rejected
};

struct TunnelAccept {
  std::uint64_t negotiation_id = 0;
  Route chosen;
  int cost = 0;
};

struct TunnelConfirm {
  std::uint64_t negotiation_id = 0;
  TunnelId tunnel_id = 0;
};

struct TunnelKeepAlive {
  TunnelId tunnel_id = 0;
};

/// Responder's reply to every keep-alive; `alive` is false when the tunnel
/// is unknown (expired or torn down), which lets the upstream side fail
/// over immediately instead of waiting out the miss threshold.
struct TunnelKeepAliveAck {
  TunnelId tunnel_id = 0;
  bool alive = false;
};

struct TunnelTeardown {
  TunnelId tunnel_id = 0;
};

/// Downstream-initiated negotiation (Section 3.3): the requester asks the
/// responder to *change its own default selection* toward `destination` —
/// "AS F can negotiate with AS B to switch to an alternate path that
/// traverses CF. Then, AS B can respond by agreeing to select the path BCF
/// instead of BEF, and AS B will advertise the path BCF to its customers."
struct SwitchRequest {
  std::uint64_t negotiation_id = 0;
  NodeId destination = topo::kInvalidNode;
  /// The first hop of the alternate the requester wants the responder on.
  NodeId desired_next_hop = topo::kInvalidNode;
  /// Payment offered for deviating from the responder's preferred route.
  int compensation = 0;
};

struct SwitchResponse {
  std::uint64_t negotiation_id = 0;
  bool accepted = false;
  /// The path the responder now selects (empty when declined).
  std::vector<NodeId> new_path;
};

using Message =
    std::variant<RouteRequest, RouteOffers, TunnelAccept, TunnelConfirm,
                 TunnelKeepAlive, TunnelKeepAliveAck, TunnelTeardown,
                 SwitchRequest, SwitchResponse>;

using Bus = sim::MessageBus<Message>;

// ------------------------------------------------------------------ agent

/// Responder-side configuration (Chapter 6's negotiation-related rules).
struct ResponderConfig {
  ExportPolicy policy = ExportPolicy::RespectExport;
  /// "accept negotiation from any when tunnel_number < 1000".
  std::size_t max_tunnels = 1000;
  /// Trust predicate; default accepts anyone.
  std::function<bool(NodeId requester)> accept_from;
  /// Price tag per offered route; default prices by class
  /// (customer routes cheaper than peer routes, Section 6.2.2).
  std::function<int(const Route&)> price;
  /// Whether to accept a downstream-initiated switch from `current` to
  /// `alternate` for the offered compensation. Default: accept alternates in
  /// the same class for free, and lower-class alternates only when the
  /// compensation covers the class gap (100 per rank).
  std::function<bool(const Route& current, const Route& alternate,
                     int compensation)>
      accept_switch;
};

/// Timing knobs for the soft-state and reliability machinery.
struct SoftStateConfig {
  sim::Time keepalive_interval = 100;
  sim::Time expiry_timeout = 350;   ///< > 3 keep-alive intervals
  sim::Time sweep_interval = 100;
  /// A negotiation whose responder stays silent this long fails locally
  /// (the completion callback fires with established == false).
  sim::Time negotiation_timeout = 2000;

  // ---- retransmission (requester side) ----
  sim::Time retry_initial = 40;    ///< first retransmit after this long
  sim::Time retry_max = 320;       ///< exponential backoff cap
  double retry_jitter = 0.25;      ///< extra delay, uniform in
                                   ///< [0, retry_jitter * interval]
  std::uint32_t max_retries = 5;   ///< per handshake message; afterwards the
                                   ///< negotiation_timeout backstop fires
  std::uint32_t teardown_retransmits = 2;  ///< blind extra TunnelTeardowns
  std::uint64_t rng_seed = 0x5eedULL;  ///< mixed with `self` per agent

  // ---- failover (upstream side) ----
  /// Consecutive unacknowledged keep-alives before the tunnel is declared
  /// lost and failed over.
  std::uint32_t keepalive_miss_threshold = 3;
  /// When true, a failed-over tunnel is re-negotiated automatically after
  /// the hold-down delay (at most one re-negotiation per
  /// (responder, destination) per hold-down window — the anti-flap guard).
  bool auto_renegotiate = false;
  sim::Time renegotiate_hold_down = 500;

  /// How long completed-negotiation ids are remembered for duplicate
  /// suppression; must exceed any plausible duplicate's lateness.
  sim::Time dedup_retention = 4000;
};

/// Outcome delivered to the requester's completion callback.
struct NegotiationOutcome {
  bool established = false;
  NodeId responder = topo::kInvalidNode;
  TunnelId tunnel_id = 0;
  Route route;       ///< the path bound to the tunnel, as seen at responder
  int cost = 0;
  std::size_t offers_received = 0;
};

/// Delivered to the tunnel-lost callback when the upstream side fails a
/// tunnel over (traffic reverts to the BGP default path).
struct TunnelLostEvent {
  enum class Reason {
    MissedKeepAlives,  ///< keepalive_miss_threshold acks in a row never came
    ResponderReset,    ///< an ack reported the tunnel unknown downstream
  };
  TunnelId tunnel_id = 0;
  NodeId responder = topo::kInvalidNode;
  NodeId destination = topo::kInvalidNode;
  Reason reason = Reason::MissedKeepAlives;
  bool will_renegotiate = false;  ///< a hold-down re-negotiation is queued
};

class MiroAgent {
 public:
  /// `self` is this AS's node id; the agent attaches itself to the bus.
  MiroAgent(NodeId self, RouteStore& store, Bus& bus,
            ResponderConfig responder = {}, SoftStateConfig soft_state = {});

  using CompletionCallback = std::function<void(const NegotiationOutcome&)>;

  /// Initiates a negotiation with `responder` for alternate routes toward
  /// `destination`. `arrival_neighbor` is the responder's neighbor on this
  /// AS's default path (pass `self` when adjacent). The callback fires once,
  /// when the negotiation either establishes a tunnel or fails.
  std::uint64_t request(NodeId responder, NodeId arrival_neighbor,
                        NodeId destination, std::optional<NodeId> avoid,
                        std::optional<int> max_cost,
                        CompletionCallback on_complete);

  /// Actively tears down a tunnel this AS established as the upstream side.
  void teardown(TunnelId tunnel_id);

  /// Registers the upstream-side failover observer (replacing any previous).
  using TunnelLostCallback = std::function<void(const TunnelLostEvent&)>;
  void on_tunnel_lost(TunnelLostCallback callback) {
    on_tunnel_lost_ = std::move(callback);
  }

  /// Observes the outcome of automatic re-negotiations (optional; they
  /// complete silently otherwise).
  void on_renegotiated(CompletionCallback callback) {
    on_renegotiated_ = std::move(callback);
  }

  /// Downstream-initiated negotiation: asks `responder` to switch its own
  /// selection toward `destination` to the alternate whose first hop is
  /// `desired_next_hop`, offering `compensation`. The callback receives
  /// whether the responder agreed.
  using SwitchCallback = std::function<void(bool accepted,
                                            const std::vector<NodeId>& path)>;
  std::uint64_t request_switch(NodeId responder, NodeId destination,
                               NodeId desired_next_hop, int compensation,
                               SwitchCallback on_complete);

  /// Selections this AS has agreed to divert as a switch responder:
  /// destination -> forced next hop. An RCP would push these into the
  /// routers; the eval harness models them with a pinned re-solve.
  const std::unordered_map<NodeId, NodeId>& switched_selections() const {
    return switched_;
  }

  /// Upstream-side record of one established tunnel: enough to run the
  /// keep-alive liveness loop and to re-issue the original request when the
  /// tunnel fails over.
  struct UpstreamTunnel {
    NodeId responder = topo::kInvalidNode;
    NodeId arrival_neighbor = topo::kInvalidNode;
    NodeId destination = topo::kInvalidNode;
    std::optional<NodeId> avoid;
    std::optional<int> max_cost;
    std::uint32_t unacked_keepalives = 0;
  };

  /// Tunnels this AS maintains as the downstream (responding) side.
  const TunnelTable& tunnels() const { return tunnels_; }
  /// Tunnels this AS uses as the upstream side.
  const std::unordered_map<TunnelId, UpstreamTunnel>& upstream_tunnels()
      const {
    return upstream_;
  }

  struct Stats {
    std::size_t requests_sent = 0;
    std::size_t requests_received = 0;
    std::size_t requests_rejected = 0;  ///< admission control
    std::size_t offers_sent = 0;
    std::size_t tunnels_established = 0;
    std::size_t tunnels_expired = 0;    ///< soft-state timeouts
    std::size_t tunnels_torn_down = 0;  ///< active teardowns received
    std::size_t switches_accepted = 0;  ///< downstream-initiated diversions
    std::size_t switches_declined = 0;
    // -- reliability layer --
    std::size_t retransmissions = 0;        ///< re-sent handshake/teardowns
    std::size_t duplicates_suppressed = 0;  ///< dedup hits (both roles)
    std::size_t tunnels_failed_over = 0;    ///< upstream liveness losses
    std::size_t negotiations_abandoned = 0; ///< failed via timeout backstop
    std::size_t renegotiations = 0;         ///< automatic re-requests issued
    std::size_t stale_confirms_reclaimed = 0;  ///< unwanted confirms answered
                                               ///< with a teardown
  };
  const Stats& stats() const { return stats_; }

  /// Attaches (or clears, with nullptr) a trace recorder observing this
  /// agent's negotiation phase transitions, retransmissions, and tunnel
  /// lifecycle. Null recorder costs one branch per event and allocates
  /// nothing (see obs/trace.hpp).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Snapshots this agent's counters into `registry` as
  /// `<prefix>.requests_sent`, `<prefix>.retransmissions`, ... (safe to call
  /// repeatedly; values are overwritten, and nothing references the agent
  /// afterwards). Supersedes hand-rolled rendering of the Stats struct.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "agent") const;

  NodeId self() const { return self_; }

 private:
  void on_message(sim::EndpointId from, const Message& message);
  void handle(NodeId from, const RouteRequest& request);
  void handle(NodeId from, const RouteOffers& offers);
  void handle(NodeId from, const TunnelAccept& accept);
  void handle(NodeId from, const TunnelConfirm& confirm);
  void handle(NodeId from, const TunnelKeepAlive& keepalive);
  void handle(NodeId from, const TunnelKeepAliveAck& ack);
  void handle(NodeId from, const TunnelTeardown& teardown);
  void handle(NodeId from, const SwitchRequest& request);
  void handle(NodeId from, const SwitchResponse& response);
  void schedule_keepalive(TunnelId tunnel_id);
  void schedule_sweep();

  struct PendingRequest {
    enum class Phase { AwaitingOffers, AwaitingConfirm };
    NodeId responder = topo::kInvalidNode;
    NodeId arrival_neighbor = topo::kInvalidNode;
    NodeId destination = topo::kInvalidNode;
    std::optional<NodeId> avoid;
    std::optional<int> max_cost;
    CompletionCallback on_complete;
    std::size_t offers_received = 0;
    Phase phase = Phase::AwaitingOffers;
    Route chosen;         ///< valid in AwaitingConfirm
    int chosen_cost = 0;  ///< valid in AwaitingConfirm
    std::uint32_t attempts = 0;  ///< retransmissions in the current phase
    sim::Scheduler::TimerToken retry;
    sim::Scheduler::TimerToken timeout;
  };

  /// Backoff-with-jitter delay before retransmission number `attempt`.
  sim::Time retry_delay(std::uint32_t attempt);
  /// (Re-)sends the current phase's handshake message for `id`.
  void send_handshake(std::uint64_t id);
  /// Arms the retransmission timer for `id`'s current phase.
  void arm_retry(std::uint64_t id);
  /// Finishes a pending negotiation exactly once, cancelling its timers.
  void complete(std::uint64_t id, const NegotiationOutcome& outcome);
  /// Sends a teardown plus `teardown_retransmits` blind copies.
  void send_teardown(NodeId responder, TunnelId tunnel_id,
                     std::uint32_t attempt);
  /// Drops the upstream tunnel (traffic reverts to the BGP default path),
  /// fires the tunnel-lost callback, and queues the hold-down renegotiation.
  void fail_over(TunnelId tunnel_id, TunnelLostEvent::Reason reason);
  /// Forgets completed-negotiation dedup records older than the retention.
  void purge_dedup(sim::Time now);
  /// Records one trace event stamped with the current sim time; no-op (one
  /// branch, zero allocation) when no recorder is attached.
  void trace(obs::EventType type, NodeId peer, std::uint64_t negotiation = 0,
             TunnelId tunnel = 0, std::int64_t value = 0,
             const char* detail = "");

  NodeId self_;
  RouteStore* store_;
  Bus* bus_;
  ResponderConfig responder_;
  SoftStateConfig soft_state_;
  Rng rng_;              ///< backoff jitter; seeded, so runs reproduce
  TunnelTable tunnels_;  // downstream role

  std::uint64_t next_negotiation_id_ = 1;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;  // requester
  std::unordered_map<std::uint64_t, SwitchCallback> pending_switches_;
  std::unordered_map<TunnelId, UpstreamTunnel> upstream_;  // upstream role
  std::unordered_map<NodeId, NodeId> switched_;    // switch-responder role

  /// Requester-side memory of successfully completed negotiations, for
  /// suppressing duplicated TunnelConfirms (vs. tearing down a live tunnel).
  struct CompletedRequest {
    NodeId responder = topo::kInvalidNode;
    TunnelId tunnel_id = 0;
    sim::Time at = 0;
  };
  std::unordered_map<std::uint64_t, CompletedRequest> completed_;

  /// Responder-side memory of minted tunnels, keyed by
  /// hash(requester, negotiation id): a duplicated TunnelAccept re-sends the
  /// cached confirm instead of creating a second tunnel.
  struct MintedTunnel {
    NodeId requester = topo::kInvalidNode;
    std::uint64_t negotiation_id = 0;
    TunnelId tunnel_id = 0;
    sim::Time at = 0;
  };
  std::unordered_map<std::uint64_t, MintedTunnel> minted_;

  /// Anti-flap guard: (responder, destination) -> earliest time the next
  /// automatic re-negotiation may start.
  std::unordered_map<std::uint64_t, sim::Time> hold_down_until_;

  TunnelLostCallback on_tunnel_lost_;
  CompletionCallback on_renegotiated_;
  Stats stats_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace miro::core
