// The three alternate-route export policies evaluated in Chapter 5.
//
// "To evaluate MIRO, this dissertation considers three variations on how a
// responding AS decides which alternate routes to announce upon request"
// (Section 5.1):
//   Strict (/s)          — only alternates with the same local preference
//                          (class) as the responder's current default route,
//                          and the conventional export rules still apply;
//   RespectExport (/e)   — every alternate the conventional export rules
//                          allow toward the requester;
//   Flexible (/a)        — every alternate, regardless of relationships.
//
// For a non-adjacent requester, export rules are evaluated against the
// relationship with the neighbor through which the requester's traffic will
// arrive (the previous hop on the requester's default path to the responder);
// that is the link the offered route will actually be used over.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bgp/route.hpp"

namespace miro::core {

using bgp::Route;
using bgp::RouteClass;
using topo::Relationship;

enum class ExportPolicy {
  Strict,         ///< "/s"
  RespectExport,  ///< "/e"
  Flexible,       ///< "/a"
};

const char* to_string(ExportPolicy policy);
/// The "/s" style suffix used in the paper's tables.
const char* suffix(ExportPolicy policy);

/// All three policies in paper order, for experiment sweeps.
inline constexpr ExportPolicy kAllPolicies[] = {
    ExportPolicy::Strict, ExportPolicy::RespectExport, ExportPolicy::Flexible};

/// Does `policy` allow the responder to offer a candidate of class
/// `candidate_class` to a requester whose traffic arrives over a link where
/// the requester side is `requester_rel` to the responder, given the class of
/// the responder's current best route (`best_class`, nullopt when the
/// responder has no route — then Strict degenerates to RespectExport)?
bool allows(ExportPolicy policy, RouteClass candidate_class,
            std::optional<RouteClass> best_class, Relationship requester_rel);

/// Filters a candidate set (as produced by StableRouteSolver::candidates_at)
/// down to what the responder may announce. Preserves order.
std::vector<Route> filter_exports(ExportPolicy policy,
                                  std::span<const Route> candidates,
                                  std::optional<RouteClass> best_class,
                                  Relationship requester_rel);

}  // namespace miro::core
