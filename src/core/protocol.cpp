#include "core/protocol.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::core {

MiroAgent::MiroAgent(NodeId self, RouteStore& store, Bus& bus,
                     ResponderConfig responder, SoftStateConfig soft_state)
    : self_(self), store_(&store), bus_(&bus),
      responder_(std::move(responder)), soft_state_(soft_state) {
  if (!responder_.accept_from)
    responder_.accept_from = [](NodeId) { return true; };
  if (!responder_.price) {
    responder_.price = [](const Route& route) {
      // Default pricing by class: the responder sells customer routes for
      // less than peer routes, which cost less than provider routes
      // (Section 6.2.2's example tariff).
      switch (route.route_class) {
        case RouteClass::Self: return 100;
        case RouteClass::Customer: return 120;
        case RouteClass::Peer: return 180;
        case RouteClass::Provider: return 240;
      }
      return 240;
    };
  }
  if (!responder_.accept_switch) {
    responder_.accept_switch = [](const Route& current, const Route& alternate,
                                  int compensation) {
      // Same-class diversions are free; each class rank of downgrade costs
      // 100 (the conventional local-preference band width).
      const int gap = bgp::rank(alternate.route_class) -
                      bgp::rank(current.route_class);
      return gap <= 0 || compensation >= gap * 100;
    };
  }
  bus_->attach(self_, [this](sim::EndpointId from, const Message& message) {
    on_message(from, message);
  });
  schedule_sweep();
}

std::uint64_t MiroAgent::request(NodeId responder, NodeId arrival_neighbor,
                                 NodeId destination,
                                 std::optional<NodeId> avoid,
                                 std::optional<int> max_cost,
                                 CompletionCallback on_complete) {
  require(static_cast<bool>(on_complete), "MiroAgent::request: null callback");
  const std::uint64_t id = next_negotiation_id_++;
  pending_.emplace(id, PendingRequest{responder, destination, avoid, max_cost,
                                      std::move(on_complete), 0});
  ++stats_.requests_sent;
  bus_->send(self_, responder,
             RouteRequest{id, destination, arrival_neighbor, avoid, max_cost});
  // Fail locally if the responder stays silent (crashed peer, partitioned
  // link): the callback must fire exactly once either way.
  bus_->scheduler().after(soft_state_.negotiation_timeout, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // completed in time
    NegotiationOutcome outcome;
    outcome.responder = it->second.responder;
    outcome.offers_received = it->second.offers_received;
    auto callback = std::move(it->second.on_complete);
    pending_.erase(it);
    callback(outcome);
  });
  return id;
}

void MiroAgent::teardown(TunnelId tunnel_id) {
  auto it = upstream_.find(tunnel_id);
  if (it == upstream_.end()) return;
  bus_->send(self_, it->second, TunnelTeardown{tunnel_id});
  upstream_.erase(it);
}

void MiroAgent::on_message(sim::EndpointId from, const Message& message) {
  std::visit([this, from](const auto& m) { handle(from, m); }, message);
}

void MiroAgent::handle(NodeId from, const RouteRequest& request) {
  ++stats_.requests_received;
  // Admission control: trust predicate and tunnel-count limit
  // ("accept negotiation from any when tunnel_number < 1000").
  if (!responder_.accept_from(from) ||
      tunnels_.active_count() >= responder_.max_tunnels) {
    ++stats_.requests_rejected;
    bus_->send(self_, from, RouteOffers{request.negotiation_id, {}});
    return;
  }

  const bgp::RoutingTree& tree = store_->tree(request.destination);
  std::optional<RouteClass> best_class;
  if (tree.reachable(self_)) best_class = tree.route_class(self_);

  // The export relationship is judged on the link the traffic will arrive
  // over. If the claimed arrival neighbor is not actually adjacent, fall
  // back to treating the requester as a provider (most conservative).
  const topo::AsGraph& graph = store_->graph();
  topo::Relationship requester_rel = topo::Relationship::Provider;
  if (request.arrival_neighbor != topo::kInvalidNode &&
      graph.has_edge(self_, request.arrival_neighbor)) {
    requester_rel = graph.relationship(self_, request.arrival_neighbor);
  }

  std::vector<Route> candidates =
      store_->solver().candidates_at(tree, self_);
  std::vector<Route> exportable = filter_exports(
      responder_.policy, candidates, best_class, requester_rel);

  RouteOffers reply{request.negotiation_id, {}};
  for (Route& route : exportable) {
    // Requester-supplied constraint filtering happens at the responder so
    // useless candidates never cross the wire (Section 6.2.2).
    if (request.avoid && route.traverses(*request.avoid)) continue;
    const int cost = responder_.price(route);
    if (request.max_cost && cost > *request.max_cost) continue;
    reply.offers.push_back(RouteOffer{std::move(route), cost});
  }
  stats_.offers_sent += reply.offers.size();
  bus_->send(self_, from, std::move(reply));
}

void MiroAgent::handle(NodeId from, const RouteOffers& offers) {
  auto it = pending_.find(offers.negotiation_id);
  if (it == pending_.end() || it->second.responder != from) return;
  PendingRequest& pending = it->second;
  pending.offers_received = offers.offers.size();

  // Pick the cheapest acceptable offer; break price ties with the standard
  // route preference order.
  const RouteOffer* best = nullptr;
  for (const RouteOffer& offer : offers.offers) {
    if (pending.avoid && offer.route.traverses(*pending.avoid)) continue;
    if (pending.max_cost && offer.cost > *pending.max_cost) continue;
    if (best == nullptr || offer.cost < best->cost ||
        (offer.cost == best->cost &&
         bgp::prefer(offer.route, best->route, store_->graph()))) {
      best = &offer;
    }
  }
  if (best == nullptr) {
    NegotiationOutcome outcome;
    outcome.responder = from;
    outcome.offers_received = pending.offers_received;
    auto callback = std::move(pending.on_complete);
    pending_.erase(it);
    callback(outcome);
    return;
  }
  bus_->send(self_, from,
             TunnelAccept{offers.negotiation_id, best->route, best->cost});
}

void MiroAgent::handle(NodeId from, const TunnelAccept& accept) {
  // Downstream side: allocate the identifier and install state.
  const TunnelId id = tunnels_.create(from, accept.chosen, accept.cost,
                                      bus_->scheduler().now());
  ++stats_.tunnels_established;
  bus_->send(self_, from, TunnelConfirm{accept.negotiation_id, id});
}

void MiroAgent::handle(NodeId from, const TunnelConfirm& confirm) {
  auto it = pending_.find(confirm.negotiation_id);
  if (it == pending_.end() || it->second.responder != from) return;
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);

  upstream_.emplace(confirm.tunnel_id, from);
  schedule_keepalive(confirm.tunnel_id, from);

  NegotiationOutcome outcome;
  outcome.established = true;
  outcome.responder = from;
  outcome.tunnel_id = confirm.tunnel_id;
  outcome.offers_received = pending.offers_received;
  pending.on_complete(outcome);
}

void MiroAgent::handle(NodeId from, const TunnelKeepAlive& keepalive) {
  (void)from;
  tunnels_.heartbeat(keepalive.tunnel_id, bus_->scheduler().now());
}

void MiroAgent::handle(NodeId from, const TunnelTeardown& teardown) {
  (void)from;
  if (tunnels_.remove(teardown.tunnel_id)) ++stats_.tunnels_torn_down;
}

std::uint64_t MiroAgent::request_switch(NodeId responder, NodeId destination,
                                        NodeId desired_next_hop,
                                        int compensation,
                                        SwitchCallback on_complete) {
  require(static_cast<bool>(on_complete),
          "MiroAgent::request_switch: null callback");
  const std::uint64_t id = next_negotiation_id_++;
  pending_switches_.emplace(id, std::move(on_complete));
  ++stats_.requests_sent;
  bus_->send(self_, responder,
             SwitchRequest{id, destination, desired_next_hop, compensation});
  bus_->scheduler().after(soft_state_.negotiation_timeout, [this, id]() {
    auto it = pending_switches_.find(id);
    if (it == pending_switches_.end()) return;
    auto callback = std::move(it->second);
    pending_switches_.erase(it);
    callback(false, {});
  });
  return id;
}

void MiroAgent::handle(NodeId from, const SwitchRequest& request) {
  ++stats_.requests_received;
  SwitchResponse reply{request.negotiation_id, false, {}};
  const bgp::RoutingTree& tree = store_->tree(request.destination);
  if (responder_.accept_from(from) && tree.reachable(self_)) {
    const Route current = tree.route_of(self_);
    // Find the alternate with the requested first hop among this AS's
    // learned candidates.
    for (const Route& alternate :
         store_->solver().candidates_at(tree, self_)) {
      if (alternate.next_hop() != request.desired_next_hop) continue;
      if (responder_.accept_switch(current, alternate,
                                   request.compensation)) {
        // Agree: pin the local selection. The data-plane push (and the
        // re-advertisement to customers) belongs to the AS's RCP; the eval
        // harness models the network-wide effect with a pinned re-solve.
        switched_[request.destination] = request.desired_next_hop;
        reply.accepted = true;
        reply.new_path = alternate.path;
        ++stats_.switches_accepted;
      }
      break;
    }
  }
  if (!reply.accepted) ++stats_.switches_declined;
  bus_->send(self_, from, std::move(reply));
}

void MiroAgent::handle(NodeId from, const SwitchResponse& response) {
  (void)from;
  auto it = pending_switches_.find(response.negotiation_id);
  if (it == pending_switches_.end()) return;
  auto callback = std::move(it->second);
  pending_switches_.erase(it);
  callback(response.accepted, response.new_path);
}

void MiroAgent::schedule_keepalive(TunnelId tunnel_id, NodeId responder) {
  bus_->scheduler().after(soft_state_.keepalive_interval, [this, tunnel_id,
                                                           responder]() {
    if (upstream_.find(tunnel_id) == upstream_.end()) return;  // torn down
    bus_->send(self_, responder, TunnelKeepAlive{tunnel_id});
    schedule_keepalive(tunnel_id, responder);
  });
}

void MiroAgent::schedule_sweep() {
  bus_->scheduler().after(soft_state_.sweep_interval, [this]() {
    const auto expired = tunnels_.expire(bus_->scheduler().now(),
                                         soft_state_.expiry_timeout);
    stats_.tunnels_expired += expired.size();
    schedule_sweep();
  });
}

}  // namespace miro::core
