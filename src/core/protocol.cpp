#include "core/protocol.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "obs/profile.hpp"

namespace miro::core {

MiroAgent::MiroAgent(NodeId self, RouteStore& store, Bus& bus,
                     ResponderConfig responder, SoftStateConfig soft_state)
    : self_(self), store_(&store), bus_(&bus),
      responder_(std::move(responder)), soft_state_(soft_state),
      rng_(hash_combine(soft_state.rng_seed, self)) {
  if (!responder_.accept_from)
    responder_.accept_from = [](NodeId) { return true; };
  if (!responder_.price) {
    responder_.price = [](const Route& route) {
      // Default pricing by class: the responder sells customer routes for
      // less than peer routes, which cost less than provider routes
      // (Section 6.2.2's example tariff).
      switch (route.route_class) {
        case RouteClass::Self: return 100;
        case RouteClass::Customer: return 120;
        case RouteClass::Peer: return 180;
        case RouteClass::Provider: return 240;
      }
      return 240;
    };
  }
  if (!responder_.accept_switch) {
    responder_.accept_switch = [](const Route& current, const Route& alternate,
                                  int compensation) {
      // Same-class diversions are free; each class rank of downgrade costs
      // 100 (the conventional local-preference band width).
      const int gap = bgp::rank(alternate.route_class) -
                      bgp::rank(current.route_class);
      return gap <= 0 || compensation >= gap * 100;
    };
  }
  bus_->attach(self_, [this](sim::EndpointId from, const Message& message) {
    on_message(from, message);
  });
  schedule_sweep();
}

void MiroAgent::trace(obs::EventType type, NodeId peer,
                      std::uint64_t negotiation, TunnelId tunnel,
                      std::int64_t value, const char* detail) {
  if (trace_ == nullptr) return;
  trace_->record({bus_->scheduler().now(), type, self_, peer, negotiation,
                  tunnel, value, detail});
}

void MiroAgent::export_metrics(obs::MetricsRegistry& registry,
                               const std::string& prefix) const {
  auto set = [&](const char* name, std::size_t value) {
    registry.counter(prefix + "." + name).set(value);
  };
  set("requests_sent", stats_.requests_sent);
  set("requests_received", stats_.requests_received);
  set("requests_rejected", stats_.requests_rejected);
  set("offers_sent", stats_.offers_sent);
  set("tunnels_established", stats_.tunnels_established);
  set("tunnels_expired", stats_.tunnels_expired);
  set("tunnels_torn_down", stats_.tunnels_torn_down);
  set("switches_accepted", stats_.switches_accepted);
  set("switches_declined", stats_.switches_declined);
  set("retransmissions", stats_.retransmissions);
  set("duplicates_suppressed", stats_.duplicates_suppressed);
  set("tunnels_failed_over", stats_.tunnels_failed_over);
  set("negotiations_abandoned", stats_.negotiations_abandoned);
  set("renegotiations", stats_.renegotiations);
  set("stale_confirms_reclaimed", stats_.stale_confirms_reclaimed);
  registry.gauge(prefix + ".upstream_tunnels")
      .set(static_cast<double>(upstream_.size()));
  registry.gauge(prefix + ".downstream_tunnels")
      .set(static_cast<double>(tunnels_.active_count()));
}

// ------------------------------------------------------ reliability helpers

sim::Time MiroAgent::retry_delay(std::uint32_t attempt) {
  sim::Time rto = soft_state_.retry_initial;
  for (std::uint32_t i = 0; i < attempt && rto < soft_state_.retry_max; ++i)
    rto *= 2;
  rto = std::min(rto, soft_state_.retry_max);
  const auto span = static_cast<sim::Time>(soft_state_.retry_jitter *
                                           static_cast<double>(rto));
  return span == 0 ? rto : rto + rng_.next_below(span + 1);
}

void MiroAgent::send_handshake(std::uint64_t id) {
  const PendingRequest& p = pending_.at(id);
  if (p.phase == PendingRequest::Phase::AwaitingOffers) {
    bus_->send(self_, p.responder,
               RouteRequest{id, p.destination, p.arrival_neighbor, p.avoid,
                            p.max_cost});
  } else {
    bus_->send(self_, p.responder, TunnelAccept{id, p.chosen, p.chosen_cost});
  }
}

void MiroAgent::arm_retry(std::uint64_t id) {
  PendingRequest& p = pending_.at(id);
  if (p.attempts >= soft_state_.max_retries) return;  // backstop takes over
  p.retry =
      bus_->scheduler().after(retry_delay(p.attempts), [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;  // completed meanwhile
        ++it->second.attempts;
        ++stats_.retransmissions;
        trace(obs::EventType::Retransmit, it->second.responder, id, 0,
              it->second.attempts,
              it->second.phase == PendingRequest::Phase::AwaitingOffers
                  ? "route_request"
                  : "tunnel_accept");
        send_handshake(id);
        arm_retry(id);
      });
}

void MiroAgent::complete(std::uint64_t id, const NegotiationOutcome& outcome) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  it->second.retry.cancel();
  it->second.timeout.cancel();
  auto callback = std::move(it->second.on_complete);
  pending_.erase(it);
  if (outcome.established) {
    completed_[id] = CompletedRequest{outcome.responder, outcome.tunnel_id,
                                      bus_->scheduler().now()};
  }
  callback(outcome);
}

void MiroAgent::send_teardown(NodeId responder, TunnelId tunnel_id,
                              std::uint32_t attempt) {
  trace(obs::EventType::TunnelTeardownSent, responder, 0, tunnel_id, attempt);
  bus_->send(self_, responder, TunnelTeardown{tunnel_id});
  if (attempt >= soft_state_.teardown_retransmits) return;
  // Teardown carries no acknowledgment, so the extra copies are sent blind;
  // the responder's soft-state expiry covers the case where all are lost.
  bus_->scheduler().after(retry_delay(attempt),
                          [this, responder, tunnel_id, attempt]() {
                            ++stats_.retransmissions;
                            trace(obs::EventType::Retransmit, responder, 0,
                                  tunnel_id, attempt + 1, "teardown");
                            send_teardown(responder, tunnel_id, attempt + 1);
                          });
}

void MiroAgent::fail_over(TunnelId tunnel_id, TunnelLostEvent::Reason reason) {
  auto it = upstream_.find(tunnel_id);
  if (it == upstream_.end()) return;
  const UpstreamTunnel lost = it->second;
  upstream_.erase(it);
  ++stats_.tunnels_failed_over;
  trace(obs::EventType::TunnelFailedOver, lost.responder, 0, tunnel_id, 0,
        reason == TunnelLostEvent::Reason::MissedKeepAlives
            ? "missed_keepalives"
            : "responder_reset");

  // From here traffic to `lost.destination` rides the BGP default path
  // again; re-negotiation (if enabled) is rate-limited per
  // (responder, destination) by the hold-down window so a flapping link
  // cannot drive a request storm.
  bool will_renegotiate = false;
  if (soft_state_.auto_renegotiate &&
      lost.destination != topo::kInvalidNode) {
    const std::uint64_t key = hash_combine(lost.responder, lost.destination);
    const sim::Time now = bus_->scheduler().now();
    sim::Time& until = hold_down_until_[key];
    if (now >= until) {
      until = now + soft_state_.renegotiate_hold_down;
      will_renegotiate = true;
      trace(obs::EventType::RenegotiationScheduled, lost.responder, 0,
            tunnel_id,
            static_cast<std::int64_t>(soft_state_.renegotiate_hold_down));
      bus_->scheduler().after(soft_state_.renegotiate_hold_down,
                              [this, lost]() {
                                ++stats_.renegotiations;
                                request(lost.responder, lost.arrival_neighbor,
                                        lost.destination, lost.avoid,
                                        lost.max_cost,
                                        [this](const NegotiationOutcome& o) {
                                          if (on_renegotiated_)
                                            on_renegotiated_(o);
                                        });
                              });
    }
  }
  if (on_tunnel_lost_) {
    on_tunnel_lost_(TunnelLostEvent{tunnel_id, lost.responder,
                                    lost.destination, reason,
                                    will_renegotiate});
  }
}

void MiroAgent::purge_dedup(sim::Time now) {
  if (now < soft_state_.dedup_retention) return;
  const sim::Time horizon = now - soft_state_.dedup_retention;
  std::erase_if(completed_,
                [&](const auto& kv) { return kv.second.at < horizon; });
  std::erase_if(minted_,
                [&](const auto& kv) { return kv.second.at < horizon; });
  std::erase_if(hold_down_until_,
                [&](const auto& kv) { return kv.second < horizon; });
}

// --------------------------------------------------------------- requester

std::uint64_t MiroAgent::request(NodeId responder, NodeId arrival_neighbor,
                                 NodeId destination,
                                 std::optional<NodeId> avoid,
                                 std::optional<int> max_cost,
                                 CompletionCallback on_complete) {
  require(static_cast<bool>(on_complete), "MiroAgent::request: null callback");
  obs::ScopedSpan span(obs::profile(), "protocol/request", "core");
  const std::uint64_t id = next_negotiation_id_++;
  PendingRequest& p =
      pending_
          .emplace(id, PendingRequest{responder, arrival_neighbor,
                                      destination, avoid, max_cost,
                                      std::move(on_complete), 0,
                                      PendingRequest::Phase::AwaitingOffers,
                                      Route{}, 0, 0, {}, {}})
          .first->second;
  ++stats_.requests_sent;
  trace(obs::EventType::NegotiationRequested, responder, id);
  send_handshake(id);
  arm_retry(id);
  // Fail locally if the responder stays silent past every retransmission
  // (crashed peer, partitioned link): the callback must fire exactly once
  // either way. complete() cancels this timer, and negotiation ids are
  // never recycled, so a stale closure can never fail a later negotiation.
  p.timeout =
      bus_->scheduler().after(soft_state_.negotiation_timeout, [this, id]() {
        auto it = pending_.find(id);
        if (it == pending_.end()) return;  // completed in time
        ++stats_.negotiations_abandoned;
        trace(obs::EventType::NegotiationFailed, it->second.responder, id, 0,
              0, "timeout");
        NegotiationOutcome outcome;
        outcome.responder = it->second.responder;
        outcome.offers_received = it->second.offers_received;
        complete(id, outcome);
      });
  return id;
}

void MiroAgent::teardown(TunnelId tunnel_id) {
  auto it = upstream_.find(tunnel_id);
  if (it == upstream_.end()) return;
  const NodeId responder = it->second.responder;
  upstream_.erase(it);  // stops the keep-alive loop
  send_teardown(responder, tunnel_id, 0);
}

void MiroAgent::on_message(sim::EndpointId from, const Message& message) {
  std::visit([this, from](const auto& m) { handle(from, m); }, message);
}

void MiroAgent::handle(NodeId from, const RouteRequest& request) {
  obs::ScopedSpan span(obs::profile(), "protocol/handle_request", "core");
  ++stats_.requests_received;
  // Admission control: trust predicate and tunnel-count limit
  // ("accept negotiation from any when tunnel_number < 1000").
  if (!responder_.accept_from(from) ||
      tunnels_.active_count() >= responder_.max_tunnels) {
    ++stats_.requests_rejected;
    bus_->send(self_, from, RouteOffers{request.negotiation_id, {}});
    return;
  }

  const bgp::RoutingTree& tree = store_->tree(request.destination);
  std::optional<RouteClass> best_class;
  if (tree.reachable(self_)) best_class = tree.route_class(self_);

  // The export relationship is judged on the link the traffic will arrive
  // over. If the claimed arrival neighbor is not actually adjacent, fall
  // back to treating the requester as a provider (most conservative).
  const topo::AsGraph& graph = store_->graph();
  topo::Relationship requester_rel = topo::Relationship::Provider;
  if (request.arrival_neighbor != topo::kInvalidNode &&
      graph.has_edge(self_, request.arrival_neighbor)) {
    requester_rel = graph.relationship(self_, request.arrival_neighbor);
  }

  std::vector<Route> candidates =
      store_->solver().candidates_at(tree, self_);
  std::vector<Route> exportable = filter_exports(
      responder_.policy, candidates, best_class, requester_rel);

  RouteOffers reply{request.negotiation_id, {}};
  for (Route& route : exportable) {
    // Requester-supplied constraint filtering happens at the responder so
    // useless candidates never cross the wire (Section 6.2.2).
    if (request.avoid && route.traverses(*request.avoid)) continue;
    const int cost = responder_.price(route);
    if (request.max_cost && cost > *request.max_cost) continue;
    reply.offers.push_back(RouteOffer{std::move(route), cost});
  }
  stats_.offers_sent += reply.offers.size();
  bus_->send(self_, from, std::move(reply));
}

void MiroAgent::handle(NodeId from, const RouteOffers& offers) {
  obs::ScopedSpan span(obs::profile(), "protocol/handle_offers", "core");
  auto it = pending_.find(offers.negotiation_id);
  if (it == pending_.end() || it->second.responder != from) return;
  PendingRequest& pending = it->second;
  if (pending.phase != PendingRequest::Phase::AwaitingOffers) {
    // A duplicated or retransmission-induced second batch of offers after
    // the accept went out; the accept has its own retransmission timer.
    ++stats_.duplicates_suppressed;
    trace(obs::EventType::DuplicateSuppressed, from, offers.negotiation_id, 0,
          0, "route_offers");
    return;
  }
  pending.offers_received = offers.offers.size();
  trace(obs::EventType::OffersReceived, from, offers.negotiation_id, 0,
        static_cast<std::int64_t>(offers.offers.size()));

  // Pick the cheapest acceptable offer; break price ties with the standard
  // route preference order.
  const RouteOffer* best = nullptr;
  for (const RouteOffer& offer : offers.offers) {
    if (pending.avoid && offer.route.traverses(*pending.avoid)) continue;
    if (pending.max_cost && offer.cost > *pending.max_cost) continue;
    if (best == nullptr || offer.cost < best->cost ||
        (offer.cost == best->cost &&
         bgp::prefer(offer.route, best->route, store_->graph()))) {
      best = &offer;
    }
  }
  if (best == nullptr) {
    trace(obs::EventType::NegotiationFailed, from, offers.negotiation_id, 0,
          0, "no_acceptable_offer");
    NegotiationOutcome outcome;
    outcome.responder = from;
    outcome.offers_received = pending.offers_received;
    complete(offers.negotiation_id, outcome);
    return;
  }
  pending.retry.cancel();
  pending.phase = PendingRequest::Phase::AwaitingConfirm;
  pending.chosen = best->route;
  pending.chosen_cost = best->cost;
  pending.attempts = 0;
  trace(obs::EventType::AcceptSent, from, offers.negotiation_id, 0,
        best->cost);
  send_handshake(offers.negotiation_id);
  arm_retry(offers.negotiation_id);
}

void MiroAgent::handle(NodeId from, const TunnelAccept& accept) {
  // Downstream side. Idempotence first: a duplicated (or retransmitted)
  // accept must never mint a second tunnel for the same negotiation — the
  // cached confirm is re-sent instead.
  const std::uint64_t key = hash_combine(from, accept.negotiation_id);
  auto it = minted_.find(key);
  if (it != minted_.end() && it->second.requester == from &&
      it->second.negotiation_id == accept.negotiation_id) {
    ++stats_.duplicates_suppressed;
    trace(obs::EventType::DuplicateSuppressed, from, accept.negotiation_id,
          it->second.tunnel_id, 0, "tunnel_accept");
    bus_->send(self_, from,
               TunnelConfirm{accept.negotiation_id, it->second.tunnel_id});
    return;
  }
  const sim::Time now = bus_->scheduler().now();
  const TunnelId id = tunnels_.create(from, accept.chosen, accept.cost, now);
  ++stats_.tunnels_established;
  trace(obs::EventType::TunnelMinted, from, accept.negotiation_id, id,
        accept.cost);
  minted_[key] = MintedTunnel{from, accept.negotiation_id, id, now};
  bus_->send(self_, from, TunnelConfirm{accept.negotiation_id, id});
}

void MiroAgent::handle(NodeId from, const TunnelConfirm& confirm) {
  auto it = pending_.find(confirm.negotiation_id);
  if (it != pending_.end() && it->second.responder == from) {
    const PendingRequest& pending = it->second;
    upstream_.emplace(confirm.tunnel_id,
                      UpstreamTunnel{from, pending.arrival_neighbor,
                                     pending.destination, pending.avoid,
                                     pending.max_cost, 0});
    schedule_keepalive(confirm.tunnel_id);
    trace(obs::EventType::TunnelConfirmed, from, confirm.negotiation_id,
          confirm.tunnel_id);
    trace(obs::EventType::NegotiationEstablished, from,
          confirm.negotiation_id, confirm.tunnel_id, pending.chosen_cost);

    NegotiationOutcome outcome;
    outcome.established = true;
    outcome.responder = from;
    outcome.tunnel_id = confirm.tunnel_id;
    outcome.route = pending.chosen;
    outcome.cost = pending.chosen_cost;
    outcome.offers_received = pending.offers_received;
    complete(confirm.negotiation_id, outcome);
    return;
  }

  // Duplicate of a negotiation that already completed (the confirm was
  // duplicated in flight, or our accept retransmission triggered a cached
  // re-confirm): suppress rather than treating it as stale.
  auto done = completed_.find(confirm.negotiation_id);
  if (done != completed_.end() && done->second.responder == from &&
      done->second.tunnel_id == confirm.tunnel_id) {
    ++stats_.duplicates_suppressed;
    trace(obs::EventType::DuplicateSuppressed, from, confirm.negotiation_id,
          confirm.tunnel_id, 0, "tunnel_confirm");
    return;
  }
  // Retention may have forgotten the completion, but a live upstream tunnel
  // is equally good evidence that this confirm is a duplicate.
  auto up = upstream_.find(confirm.tunnel_id);
  if (up != upstream_.end() && up->second.responder == from) {
    ++stats_.duplicates_suppressed;
    trace(obs::EventType::DuplicateSuppressed, from, confirm.negotiation_id,
          confirm.tunnel_id, 0, "tunnel_confirm");
    return;
  }

  // A confirm nobody is waiting for: the negotiation timed out locally (or
  // was never ours) while the responder minted the tunnel. Without a reply
  // the responder would hold the orphan until soft-state expiry; answer
  // with a teardown to reclaim it promptly.
  ++stats_.stale_confirms_reclaimed;
  trace(obs::EventType::StaleConfirmReclaimed, from, confirm.negotiation_id,
        confirm.tunnel_id);
  send_teardown(from, confirm.tunnel_id, 0);
}

void MiroAgent::handle(NodeId from, const TunnelKeepAlive& keepalive) {
  const bool alive =
      tunnels_.heartbeat(keepalive.tunnel_id, bus_->scheduler().now());
  // Always answer: the ack is the upstream side's only liveness signal, and
  // alive == false tells it the soft state is gone (expired or torn down).
  bus_->send(self_, from, TunnelKeepAliveAck{keepalive.tunnel_id, alive});
}

void MiroAgent::handle(NodeId from, const TunnelKeepAliveAck& ack) {
  auto it = upstream_.find(ack.tunnel_id);
  if (it == upstream_.end() || it->second.responder != from) return;
  if (!ack.alive) {
    fail_over(ack.tunnel_id, TunnelLostEvent::Reason::ResponderReset);
    return;
  }
  it->second.unacked_keepalives = 0;
}

void MiroAgent::handle(NodeId from, const TunnelTeardown& teardown) {
  if (tunnels_.remove(teardown.tunnel_id)) {
    ++stats_.tunnels_torn_down;
    trace(obs::EventType::TunnelTornDown, from, 0, teardown.tunnel_id);
  }
}

// ---------------------------------------------------------------- switches

std::uint64_t MiroAgent::request_switch(NodeId responder, NodeId destination,
                                        NodeId desired_next_hop,
                                        int compensation,
                                        SwitchCallback on_complete) {
  require(static_cast<bool>(on_complete),
          "MiroAgent::request_switch: null callback");
  const std::uint64_t id = next_negotiation_id_++;
  pending_switches_.emplace(id, std::move(on_complete));
  ++stats_.requests_sent;
  bus_->send(self_, responder,
             SwitchRequest{id, destination, desired_next_hop, compensation});
  bus_->scheduler().after(soft_state_.negotiation_timeout, [this, id]() {
    auto it = pending_switches_.find(id);
    if (it == pending_switches_.end()) return;
    auto callback = std::move(it->second);
    pending_switches_.erase(it);
    callback(false, {});
  });
  return id;
}

void MiroAgent::handle(NodeId from, const SwitchRequest& request) {
  ++stats_.requests_received;
  SwitchResponse reply{request.negotiation_id, false, {}};
  const bgp::RoutingTree& tree = store_->tree(request.destination);
  if (responder_.accept_from(from) && tree.reachable(self_)) {
    const Route current = tree.route_of(self_);
    // Find the alternate with the requested first hop among this AS's
    // learned candidates.
    for (const Route& alternate :
         store_->solver().candidates_at(tree, self_)) {
      if (alternate.next_hop() != request.desired_next_hop) continue;
      if (responder_.accept_switch(current, alternate,
                                   request.compensation)) {
        // Agree: pin the local selection. The data-plane push (and the
        // re-advertisement to customers) belongs to the AS's RCP; the eval
        // harness models the network-wide effect with a pinned re-solve.
        switched_[request.destination] = request.desired_next_hop;
        reply.accepted = true;
        reply.new_path = alternate.path;
        ++stats_.switches_accepted;
      }
      break;
    }
  }
  if (!reply.accepted) ++stats_.switches_declined;
  bus_->send(self_, from, std::move(reply));
}

void MiroAgent::handle(NodeId from, const SwitchResponse& response) {
  (void)from;
  auto it = pending_switches_.find(response.negotiation_id);
  if (it == pending_switches_.end()) return;
  auto callback = std::move(it->second);
  pending_switches_.erase(it);
  callback(response.accepted, response.new_path);
}

// ------------------------------------------------------------- soft timers

void MiroAgent::schedule_keepalive(TunnelId tunnel_id) {
  bus_->scheduler().after(soft_state_.keepalive_interval, [this, tunnel_id]() {
    auto it = upstream_.find(tunnel_id);
    if (it == upstream_.end()) return;  // torn down or failed over
    if (it->second.unacked_keepalives >=
        soft_state_.keepalive_miss_threshold) {
      fail_over(tunnel_id, TunnelLostEvent::Reason::MissedKeepAlives);
      return;
    }
    if (it->second.unacked_keepalives > 0) {
      // The previous keep-alive (or its ack) was lost in flight.
      trace(obs::EventType::KeepAliveMissed, it->second.responder, 0,
            tunnel_id, it->second.unacked_keepalives);
    }
    ++it->second.unacked_keepalives;
    bus_->send(self_, it->second.responder, TunnelKeepAlive{tunnel_id});
    schedule_keepalive(tunnel_id);
  });
}

void MiroAgent::schedule_sweep() {
  bus_->scheduler().after(soft_state_.sweep_interval, [this]() {
    const sim::Time now = bus_->scheduler().now();
    const auto expired = tunnels_.expire(now, soft_state_.expiry_timeout);
    stats_.tunnels_expired += expired.size();
    for (net::TunnelId id : expired)
      trace(obs::EventType::TunnelExpired, /*peer=*/0, 0, id);
    purge_dedup(now);
    schedule_sweep();
  });
}

}  // namespace miro::core
