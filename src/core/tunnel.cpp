#include "core/tunnel.hpp"

namespace miro::core {

TunnelId TunnelTable::create(NodeId remote_as, Route bound_route, int cost,
                             sim::Time now) {
  const TunnelId id = next_id_++;
  tunnels_.emplace(
      id, TunnelRecord{id, remote_as, std::move(bound_route), cost, now});
  return id;
}

bool TunnelTable::remove(TunnelId id) { return tunnels_.erase(id) > 0; }

const TunnelRecord* TunnelTable::find(TunnelId id) const {
  auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

bool TunnelTable::heartbeat(TunnelId id, sim::Time now) {
  auto it = tunnels_.find(id);
  if (it == tunnels_.end()) return false;
  it->second.last_heartbeat = now;
  return true;
}

std::vector<TunnelId> TunnelTable::expire(sim::Time now, sim::Time timeout) {
  std::vector<TunnelId> expired;
  for (auto it = tunnels_.begin(); it != tunnels_.end();) {
    if (it->second.last_heartbeat + timeout <= now) {
      expired.push_back(it->first);
      it = tunnels_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace miro::core
