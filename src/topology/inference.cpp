#include "topology/inference.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.hpp"
#include "obs/profile.hpp"

namespace miro::topo {
namespace {

using Pair = std::pair<AsNumber, AsNumber>;

Pair ordered(AsNumber a, AsNumber b) {
  return a < b ? Pair{a, b} : Pair{b, a};
}

/// Degree of each AS as observed in the paths (distinct path neighbors).
std::unordered_map<AsNumber, std::size_t> observed_degrees(
    const std::vector<AsPath>& paths) {
  std::map<Pair, bool> seen;
  for (const AsPath& path : paths)
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      if (path[i] != path[i + 1]) seen[ordered(path[i], path[i + 1])] = true;
  std::unordered_map<AsNumber, std::size_t> degree;
  for (const auto& [pair, _] : seen) {
    ++degree[pair.first];
    ++degree[pair.second];
  }
  return degree;
}

/// Index of the highest-observed-degree AS on the path (the "top provider").
std::size_t top_provider_index(
    const AsPath& path,
    const std::unordered_map<AsNumber, std::size_t>& degree) {
  std::size_t top = 0;
  std::size_t top_degree = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    auto it = degree.find(path[i]);
    std::size_t d = it == degree.end() ? 0 : it->second;
    if (d > top_degree) {
      top_degree = d;
      top = i;
    }
  }
  return top;
}

AsGraph build_graph(
    const std::map<Pair, Relationship>& rel_of_second_to_first) {
  AsGraph graph;
  auto node_of = [&graph](AsNumber asn) {
    NodeId id = graph.find(asn);
    return id == kInvalidNode ? graph.add_as(asn) : id;
  };
  for (const auto& [pair, rel] : rel_of_second_to_first) {
    NodeId a = node_of(pair.first);
    NodeId b = node_of(pair.second);
    switch (rel) {
      case Relationship::Customer:
        graph.add_customer_provider(a, b);  // b is a's customer
        break;
      case Relationship::Provider:
        graph.add_customer_provider(b, a);
        break;
      case Relationship::Peer: graph.add_peer(a, b); break;
      case Relationship::Sibling: graph.add_sibling(a, b); break;
    }
  }
  return graph;
}

}  // namespace

AsGraph infer_gao(const std::vector<AsPath>& paths, const GaoOptions& options) {
  obs::ScopedSpan span(obs::profile(), "topology/infer_gao", "topology");
  const auto degree = observed_degrees(paths);

  // transit[u][v] = evidence that u provides transit for v, split into strong
  // (strictly below the top provider on a path) and weak (adjacent to it).
  struct Evidence {
    std::size_t strong_ab = 0, strong_ba = 0;  // a transits b / b transits a
    std::size_t weak_ab = 0, weak_ba = 0;
    bool top_adjacent = false;
  };
  std::map<Pair, Evidence> evidence;

  auto record = [&](AsNumber provider, AsNumber customer, bool strong,
                    bool top_adjacent) {
    if (provider == customer) return;
    Pair key = ordered(provider, customer);
    Evidence& e = evidence[key];
    const bool provider_is_first = key.first == provider;
    if (strong) {
      (provider_is_first ? e.strong_ab : e.strong_ba) += 1;
    } else {
      (provider_is_first ? e.weak_ab : e.weak_ba) += 1;
    }
    e.top_adjacent = e.top_adjacent || top_adjacent;
  };

  for (const AsPath& path : paths) {
    if (path.size() < 2) continue;
    const std::size_t top = top_provider_index(path, degree);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // Uphill toward the top: the next hop provides transit; downhill after
      // the top: the previous hop provides transit. Edges touching the top
      // are weak evidence — one of them may be the path's single peer link.
      if (i + 1 < top) {
        record(path[i + 1], path[i], /*strong=*/true, false);
      } else if (i + 1 == top) {
        record(path[i + 1], path[i], /*strong=*/false, true);
      } else if (i == top) {
        record(path[i], path[i + 1], /*strong=*/false, true);
      } else {
        record(path[i], path[i + 1], /*strong=*/true, false);
      }
    }
  }

  std::map<Pair, Relationship> result;  // relationship of .second w.r.t .first
  for (const auto& [pair, e] : evidence) {
    const auto deg_of = [&](AsNumber asn) {
      auto it = degree.find(asn);
      return it == degree.end() ? std::size_t{0} : it->second;
    };
    const double ratio =
        (static_cast<double>(deg_of(pair.first)) + 1.0) /
        (static_cast<double>(deg_of(pair.second)) + 1.0);
    const bool comparable = ratio <= options.peer_degree_ratio &&
                            ratio >= 1.0 / options.peer_degree_ratio;

    Relationship rel;
    if (e.strong_ab > options.sibling_threshold &&
        e.strong_ba > options.sibling_threshold) {
      rel = Relationship::Sibling;
    } else if (e.strong_ab > 0 && e.strong_ba == 0) {
      rel = Relationship::Customer;  // second is customer of first
    } else if (e.strong_ba > 0 && e.strong_ab == 0) {
      rel = Relationship::Provider;
    } else if (e.strong_ab > 0 && e.strong_ba > 0) {
      rel = e.strong_ab >= e.strong_ba ? Relationship::Customer
                                       : Relationship::Provider;
    } else if (e.top_adjacent && comparable) {
      // Only weak, top-adjacent evidence with comparable degrees: peering.
      rel = Relationship::Peer;
    } else if (e.weak_ab != e.weak_ba) {
      rel = e.weak_ab > e.weak_ba ? Relationship::Customer
                                  : Relationship::Provider;
    } else {
      // Tie with incomparable degrees: larger degree is the provider.
      rel = deg_of(pair.first) >= deg_of(pair.second) ? Relationship::Customer
                                                      : Relationship::Provider;
    }
    result[pair] = rel;
  }
  return build_graph(result);
}

AsGraph infer_rank(const std::vector<AsPath>& paths,
                   const RankOptions& options) {
  obs::ScopedSpan span(obs::profile(), "topology/infer_rank", "topology");
  // Rank = how prominently an AS acts as transit: the number of distinct
  // ASes seen on paths that this AS carries as an *interior* hop. Stub ASes
  // are never interior and rank 0; the core ranks highest. This is the
  // multi-vantage "level" signal of Subramanian et al., collapsed to one
  // scalar.
  std::unordered_map<AsNumber, std::unordered_set<AsNumber>> transited;
  std::set<Pair> links;
  for (const AsPath& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      if (path[i] != path[i + 1])
        links.insert(ordered(path[i], path[i + 1]));
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      auto& seen = transited[path[i]];
      for (AsNumber asn : path)
        if (asn != path[i]) seen.insert(asn);
    }
  }
  auto rank = [&](AsNumber asn) {
    auto it = transited.find(asn);
    return it == transited.end() ? std::size_t{0} : it->second.size();
  };

  std::map<Pair, Relationship> result;
  for (const Pair& pair : links) {
    const double ra = static_cast<double>(rank(pair.first)) + 1.0;
    const double rb = static_cast<double>(rank(pair.second)) + 1.0;
    const double ratio = ra / rb;
    if (ratio <= options.peer_rank_ratio &&
        ratio >= 1.0 / options.peer_rank_ratio) {
      result[pair] = Relationship::Peer;
    } else {
      // Higher rank provides transit for the lower one.
      result[pair] =
          ra > rb ? Relationship::Customer : Relationship::Provider;
    }
  }
  return build_graph(result);
}

InferenceAccuracy compare_inference(const AsGraph& truth,
                                    const AsGraph& inferred) {
  InferenceAccuracy acc;
  acc.edges_in_truth = truth.edge_count();
  acc.edges_in_inferred = inferred.edge_count();

  for (NodeId id = 0; id < truth.node_count(); ++id) {
    const AsNumber asn_a = truth.as_number(id);
    for (const Neighbor& n : truth.neighbors(id)) {
      if (n.node < id && n.rel != Relationship::Customer) continue;
      // Visit each undirected link once: from the provider side for P2C
      // links, from the lower id for symmetric links.
      if (n.rel == Relationship::Provider) continue;
      if ((n.rel == Relationship::Peer || n.rel == Relationship::Sibling) &&
          n.node < id)
        continue;
      const AsNumber asn_b = truth.as_number(n.node);
      const NodeId ia = inferred.find(asn_a);
      const NodeId ib = inferred.find(asn_b);
      if (ia == kInvalidNode || ib == kInvalidNode ||
          !inferred.has_edge(ia, ib)) {
        ++acc.edges_missing;
        continue;
      }
      if (inferred.relationship(ia, ib) == n.rel) {
        ++acc.classified_correct;
      } else {
        ++acc.classified_wrong;
      }
    }
  }

  // Spurious edges: inferred links absent from the truth.
  for (NodeId id = 0; id < inferred.node_count(); ++id) {
    const AsNumber asn_a = inferred.as_number(id);
    for (const Neighbor& n : inferred.neighbors(id)) {
      if (n.node < id) continue;  // each link once
      const AsNumber asn_b = inferred.as_number(n.node);
      const NodeId ta = truth.find(asn_a);
      const NodeId tb = truth.find(asn_b);
      if (ta == kInvalidNode || tb == kInvalidNode || !truth.has_edge(ta, tb))
        ++acc.edges_spurious;
    }
  }
  return acc;
}

}  // namespace miro::topo
