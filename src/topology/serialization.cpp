#include "topology/serialization.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.hpp"

namespace miro::topo {

void save(const AsGraph& graph, std::ostream& out) {
  out << "# miro as-relationship graph: provider|customer|-1, peer|peer|0, "
         "sibling|sibling|2\n";
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    for (const Neighbor& n : graph.neighbors(id)) {
      switch (n.rel) {
        case Relationship::Customer:
          out << graph.as_number(id) << '|' << graph.as_number(n.node)
              << "|-1\n";
          break;
        case Relationship::Peer:
          if (n.node > id)
            out << graph.as_number(id) << '|' << graph.as_number(n.node)
                << "|0\n";
          break;
        case Relationship::Sibling:
          if (n.node > id)
            out << graph.as_number(id) << '|' << graph.as_number(n.node)
                << "|2\n";
          break;
        case Relationship::Provider:
          break;  // written from the provider side
      }
    }
  }
}

AsGraph load(std::istream& in) {
  AsGraph graph;
  std::string line;
  std::size_t line_number = 0;
  auto node_of = [&graph](AsNumber asn) {
    NodeId id = graph.find(asn);
    return id == kInvalidNode ? graph.add_as(asn) : id;
  };
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    auto fields = split(text, '|');
    auto fail = [&](std::string_view why) {
      throw Error("topology load: line " + std::to_string(line_number) + ": " +
                  std::string(why));
    };
    if (fields.size() != 3) fail("expected 3 pipe-separated fields");
    auto a = parse_u64(trim(fields[0]));
    auto b = parse_u64(trim(fields[1]));
    auto rel = parse_i64(trim(fields[2]));
    if (!a || !b || !rel) fail("malformed AS number or relationship code");
    NodeId na = node_of(static_cast<AsNumber>(*a));
    NodeId nb = node_of(static_cast<AsNumber>(*b));
    switch (*rel) {
      case -1: graph.add_customer_provider(na, nb); break;
      case 0: graph.add_peer(na, nb); break;
      case 2: graph.add_sibling(na, nb); break;
      default: fail("relationship code must be -1, 0, or 2");
    }
  }
  return graph;
}

std::string to_text(const AsGraph& graph) {
  std::ostringstream out;
  save(graph, out);
  return out.str();
}

AsGraph from_text(const std::string& text) {
  std::istringstream in(text);
  return load(in);
}

void save_file(const AsGraph& graph, const std::string& path) {
  std::ofstream out(path);
  require(out.is_open(), "save_file: cannot open '" + path + "' for writing");
  save(graph, out);
  require(static_cast<bool>(out), "save_file: write failed for '" + path + "'");
}

AsGraph load_file(const std::string& path) {
  std::ifstream in(path);
  require(in.is_open(), "load_file: cannot open '" + path + "'");
  return load(in);
}

}  // namespace miro::topo
