#include "topology/as_graph.hpp"

#include <algorithm>

#include "common/memtrack.hpp"

namespace miro::topo {

const char* to_string(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return "customer";
    case Relationship::Provider: return "provider";
    case Relationship::Peer: return "peer";
    case Relationship::Sibling: return "sibling";
  }
  return "?";
}

NodeId AsGraph::add_as(AsNumber asn) {
  require(index_.find(asn) == index_.end(), "AsGraph::add_as: duplicate ASN");
  NodeId id = static_cast<NodeId>(as_numbers_.size());
  as_numbers_.push_back(asn);
  adjacency_.emplace_back();
  index_.emplace(asn, id);
  return id;
}

void AsGraph::add_half_edges(NodeId a, NodeId b, Relationship rel_of_b_to_a) {
  check_node(a);
  check_node(b);
  require(a != b, "AsGraph: self-loops are not allowed");
  require(!has_edge(a, b), "AsGraph: parallel edges are not allowed");
  adjacency_[a].push_back({b, rel_of_b_to_a});
  adjacency_[b].push_back({a, reverse(rel_of_b_to_a)});
  ++edge_count_;
}

void AsGraph::add_customer_provider(NodeId provider, NodeId customer) {
  add_half_edges(provider, customer, Relationship::Customer);
}

void AsGraph::add_peer(NodeId a, NodeId b) {
  add_half_edges(a, b, Relationship::Peer);
}

void AsGraph::add_sibling(NodeId a, NodeId b) {
  add_half_edges(a, b, Relationship::Sibling);
}

NodeId AsGraph::find(AsNumber asn) const {
  auto it = index_.find(asn);
  return it == index_.end() ? kInvalidNode : it->second;
}

NodeId AsGraph::require_node(AsNumber asn) const {
  NodeId id = find(asn);
  require(id != kInvalidNode, "AsGraph: unknown AS number");
  return id;
}

bool AsGraph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  // Scan the smaller adjacency list.
  NodeId from = a, to = b;
  if (adjacency_[b].size() < adjacency_[a].size()) std::swap(from, to);
  for (const Neighbor& n : adjacency_[from])
    if (n.node == to) return true;
  return false;
}

Relationship AsGraph::relationship(NodeId a, NodeId b) const {
  check_node(a);
  for (const Neighbor& n : adjacency_[a])
    if (n.node == b) return n.rel;
  throw Error("AsGraph::relationship: no such edge");
}

std::vector<NodeId> AsGraph::neighbors_with(NodeId id, Relationship rel) const {
  check_node(id);
  std::vector<NodeId> out;
  for (const Neighbor& n : adjacency_[id])
    if (n.rel == rel) out.push_back(n.node);
  return out;
}

AsGraph::EdgeCounts AsGraph::edge_counts() const {
  EdgeCounts counts;
  for (NodeId id = 0; id < as_numbers_.size(); ++id) {
    for (const Neighbor& n : adjacency_[id]) {
      if (n.rel == Relationship::Customer) ++counts.customer_provider;
      if (n.rel == Relationship::Peer && n.node > id) ++counts.peer;
      if (n.rel == Relationship::Sibling && n.node > id) ++counts.sibling;
    }
  }
  return counts;
}

bool AsGraph::is_stub(NodeId id) const {
  check_node(id);
  for (const Neighbor& n : adjacency_[id])
    if (n.rel != Relationship::Provider) return false;
  return !adjacency_[id].empty();
}

bool AsGraph::is_multi_homed_stub(NodeId id) const {
  if (!is_stub(id)) return false;
  std::size_t providers = 0;
  for (const Neighbor& n : adjacency_[id])
    if (n.rel == Relationship::Provider) ++providers;
  return providers >= 2;
}

std::uint64_t AsGraph::memory_bytes() const {
  std::uint64_t bytes = vector_bytes(as_numbers_) + vector_bytes(adjacency_) +
                        hash_map_bytes(index_);
  for (const auto& list : adjacency_) bytes += vector_bytes(list);
  return bytes;
}

}  // namespace miro::topo
