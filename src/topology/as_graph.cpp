#include "topology/as_graph.hpp"

#include <algorithm>

#include "common/memtrack.hpp"

namespace miro::topo {

const char* to_string(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return "customer";
    case Relationship::Provider: return "provider";
    case Relationship::Peer: return "peer";
    case Relationship::Sibling: return "sibling";
  }
  return "?";
}

NodeId AsGraph::add_as(AsNumber asn) {
  require(!finalized_, "AsGraph::add_as: graph is finalized");
  require(index_.find(asn) == index_.end(), "AsGraph::add_as: duplicate ASN");
  NodeId id = static_cast<NodeId>(as_numbers_.size());
  as_numbers_.push_back(asn);
  adjacency_.emplace_back();
  index_.emplace(asn, id);
  return id;
}

void AsGraph::add_half_edges(NodeId a, NodeId b, Relationship rel_of_b_to_a) {
  require(!finalized_, "AsGraph: cannot add edges to a finalized graph");
  check_node(a);
  check_node(b);
  require(a != b, "AsGraph: self-loops are not allowed");
  require(edge_keys_.insert(edge_key(a, b)).second,
          "AsGraph: parallel edges are not allowed");
  adjacency_[a].push_back({b, rel_of_b_to_a});
  adjacency_[b].push_back({a, reverse(rel_of_b_to_a)});
  ++edge_count_;
}

void AsGraph::add_customer_provider(NodeId provider, NodeId customer) {
  add_half_edges(provider, customer, Relationship::Customer);
}

void AsGraph::add_peer(NodeId a, NodeId b) {
  add_half_edges(a, b, Relationship::Peer);
}

void AsGraph::add_sibling(NodeId a, NodeId b) {
  add_half_edges(a, b, Relationship::Sibling);
}

void AsGraph::finalize() {
  if (finalized_) return;
  const std::size_t n = as_numbers_.size();
  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i + 1] =
        offsets_[i] + static_cast<std::uint32_t>(adjacency_[i].size());
  }
  edge_nodes_.resize(offsets_[n]);
  edge_rels_.resize(offsets_[n]);
  std::vector<Neighbor> sorted;
  for (std::size_t i = 0; i < n; ++i) {
    sorted.assign(adjacency_[i].begin(), adjacency_[i].end());
    std::sort(sorted.begin(), sorted.end(),
              [](const Neighbor& x, const Neighbor& y) {
                return x.node < y.node;
              });
    std::uint32_t out = offsets_[i];
    for (const Neighbor& neighbor : sorted) {
      edge_nodes_[out] = neighbor.node;
      edge_rels_[out] = neighbor.rel;
      ++out;
    }
  }

  // The generator numbers ASes 1..N; detecting that collapses the ASN index
  // to a bounds check. Arbitrary ASNs (loaded snapshots) get a sorted array.
  identity_asns_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (as_numbers_[i] != static_cast<AsNumber>(i + 1)) {
      identity_asns_ = false;
      break;
    }
  }
  if (!identity_asns_) {
    sorted_index_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      sorted_index_.emplace_back(as_numbers_[i], static_cast<NodeId>(i));
    std::sort(sorted_index_.begin(), sorted_index_.end());
  }

  finalized_ = true;
  // Release the build state; swap-with-empty actually frees the storage.
  std::vector<std::vector<Neighbor>>().swap(adjacency_);
  std::unordered_map<AsNumber, NodeId>().swap(index_);
  std::unordered_set<std::uint64_t>().swap(edge_keys_);
}

NodeId AsGraph::find(AsNumber asn) const {
  if (!finalized_) {
    auto it = index_.find(asn);
    return it == index_.end() ? kInvalidNode : it->second;
  }
  if (identity_asns_) {
    return asn >= 1 && asn <= as_numbers_.size()
               ? static_cast<NodeId>(asn - 1)
               : kInvalidNode;
  }
  const auto it = std::lower_bound(
      sorted_index_.begin(), sorted_index_.end(), asn,
      [](const std::pair<AsNumber, NodeId>& entry, AsNumber value) {
        return entry.first < value;
      });
  return it != sorted_index_.end() && it->first == asn ? it->second
                                                       : kInvalidNode;
}

NodeId AsGraph::require_node(AsNumber asn) const {
  NodeId id = find(asn);
  require(id != kInvalidNode, "AsGraph: unknown AS number");
  return id;
}

std::size_t AsGraph::csr_find(NodeId a, NodeId b) const {
  const std::uint32_t begin = offsets_[a];
  const std::uint32_t end = offsets_[a + 1];
  const auto first = edge_nodes_.begin() + begin;
  const auto last = edge_nodes_.begin() + end;
  const auto it = std::lower_bound(first, last, b);
  if (it == last || *it != b) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - edge_nodes_.begin());
}

bool AsGraph::has_edge(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (!finalized_) return edge_keys_.count(edge_key(a, b)) != 0;
  // Binary-search the lower-degree side's sorted segment.
  NodeId from = a, to = b;
  if (degree(b) < degree(a)) std::swap(from, to);
  return csr_find(from, to) != static_cast<std::size_t>(-1);
}

Relationship AsGraph::relationship(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  if (finalized_) {
    const std::size_t at = csr_find(a, b);
    require(at != static_cast<std::size_t>(-1),
            "AsGraph::relationship: no such edge");
    return edge_rels_[at];
  }
  for (const Neighbor& n : adjacency_[a])
    if (n.node == b) return n.rel;
  throw Error("AsGraph::relationship: no such edge");
}

std::vector<NodeId> AsGraph::neighbors_with(NodeId id, Relationship rel) const {
  std::vector<NodeId> out;
  for (const Neighbor& n : neighbors(id))
    if (n.rel == rel) out.push_back(n.node);
  return out;
}

AsGraph::EdgeCounts AsGraph::edge_counts() const {
  EdgeCounts counts;
  for (NodeId id = 0; id < as_numbers_.size(); ++id) {
    for (const Neighbor& n : neighbors(id)) {
      if (n.rel == Relationship::Customer) ++counts.customer_provider;
      if (n.rel == Relationship::Peer && n.node > id) ++counts.peer;
      if (n.rel == Relationship::Sibling && n.node > id) ++counts.sibling;
    }
  }
  return counts;
}

bool AsGraph::is_stub(NodeId id) const {
  const NeighborRange range = neighbors(id);
  for (const Neighbor& n : range)
    if (n.rel != Relationship::Provider) return false;
  return !range.empty();
}

bool AsGraph::is_multi_homed_stub(NodeId id) const {
  if (!is_stub(id)) return false;
  std::size_t providers = 0;
  for (const Neighbor& n : neighbors(id))
    if (n.rel == Relationship::Provider) ++providers;
  return providers >= 2;
}

std::uint64_t AsGraph::memory_bytes() const {
  std::uint64_t bytes = vector_bytes(as_numbers_);
  if (finalized_) {
    bytes += vector_bytes(offsets_) + vector_bytes(edge_nodes_) +
             vector_bytes(edge_rels_) + vector_bytes(sorted_index_);
    return bytes;
  }
  bytes += vector_bytes(adjacency_) + hash_map_bytes(index_) +
           hash_map_bytes(edge_keys_);
  for (const auto& list : adjacency_) bytes += vector_bytes(list);
  return bytes;
}

}  // namespace miro::topo
