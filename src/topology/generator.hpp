// Synthetic Internet-like AS topology generation.
//
// The dissertation evaluates on RouteViews-derived topologies (Table 5.1).
// Public BGP snapshots are not available offline, so this generator produces
// the closest synthetic equivalent: a tiered hierarchy (tier-1 clique,
// preferentially-attached transit tier, multi-homed stubs) whose two
// load-bearing properties match the measured graphs — heavy-tailed node
// degrees with a small number of very-high-degree cores, and short (~4 hop)
// valley-free paths — plus the Table 5.1 mix of customer-provider, peer, and
// sibling links. Named profiles mirror the paper's four datasets at laptop
// scale. The customer-provider relation is acyclic by construction (providers
// are always earlier-created nodes), which Chapter 7's convergence results
// require.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.hpp"
#include "topology/as_graph.hpp"

namespace miro::topo {

/// Tuning knobs for the generator. Defaults give a mid-2000s-like graph.
struct GeneratorParams {
  std::size_t node_count = 4000;
  std::size_t tier1_count = 10;
  /// Fraction of non-tier-1 nodes that provide transit (have customers).
  double transit_fraction = 0.17;
  /// Probability a stub is multi-homed (paper: ~60% of ASes).
  double multi_home_probability = 0.60;
  /// Extra peer links as a fraction of total links (Table 5.1: ~6-9%).
  double peer_link_fraction = 0.085;
  /// Sibling links as a fraction of total links (Table 5.1: ~0.5-1.5%).
  double sibling_link_fraction = 0.015;
  /// Preferential-attachment strength; higher = heavier tail.
  double attachment_bias = 1.0;
  std::uint64_t seed = 20060911;  // SIGCOMM'06 vintage
};

/// Generates a topology. Deterministic for fixed params.
AsGraph generate(const GeneratorParams& params);

/// Named profiles modeled on the paper's datasets, scaled to laptop size:
///   "gao2000", "gao2003", "gao2005", "agarwal2004",
/// plus "internet2006" (measured-Internet scale: ~70k ASes / ~140k links at
/// scale 1.0) and "tiny" (a few hundred nodes) for unit tests.
/// `scale` > 0 multiplies node counts: < 1 shrinks for quick runs, > 1
/// grows beyond the profile's nominal size.
GeneratorParams profile(std::string_view name, double scale = 1.0);

}  // namespace miro::topo
