#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/memstats.hpp"
#include "obs/profile.hpp"

namespace miro::topo {
namespace {

/// Picks a provider among `pool` (node ids) with probability proportional to
/// (degree + 1)^bias, skipping nodes already linked to `customer`.
NodeId pick_provider(const AsGraph& graph, const std::vector<NodeId>& pool,
                     NodeId customer, double bias, Rng& rng) {
  // Weighted sampling by repeated tournament: cheap and heavy-tailed enough.
  // Draw a few candidates uniformly, keep the one with the largest
  // degree-derived score; this approximates preferential attachment while
  // staying O(1) per draw (has_edge is a hash probe on a building graph, so
  // high-degree tier-1 candidates cost the same as leaves).
  constexpr int kTournament = 6;
  NodeId best = kInvalidNode;
  double best_score = -1;
  for (int i = 0; i < kTournament; ++i) {
    NodeId candidate = pool[rng.next_below(pool.size())];
    if (candidate == customer || graph.has_edge(candidate, customer)) continue;
    double score =
        std::pow(static_cast<double>(graph.degree(candidate)) + 1.0, bias) *
        rng.uniform();
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

/// Homes `node` to `want` distinct providers from `pool`. A tournament
/// round can come up empty (every draw already linked or the customer
/// itself), which used to silently under-home the node — the realized
/// multi-homed fraction then undershot multi_home_probability. Retry the
/// tournament a few times per slot, then fall back to a deterministic scan
/// for the first eligible pool member, so the intended provider count is
/// realized whenever the pool has enough unlinked candidates. Returns the
/// number of links actually added (< want only when the pool is exhausted).
std::size_t attach_providers(AsGraph& graph, const std::vector<NodeId>& pool,
                             NodeId node, std::size_t want, double bias,
                             Rng& rng) {
  constexpr int kRetries = 12;
  std::size_t attached = 0;
  for (std::size_t p = 0; p < want; ++p) {
    NodeId provider = kInvalidNode;
    for (int attempt = 0; attempt < kRetries && provider == kInvalidNode;
         ++attempt) {
      provider = pick_provider(graph, pool, node, bias, rng);
    }
    if (provider == kInvalidNode) {
      for (NodeId candidate : pool) {
        if (candidate != node && !graph.has_edge(candidate, node)) {
          provider = candidate;
          break;
        }
      }
    }
    if (provider == kInvalidNode) break;  // pool exhausted for this node
    graph.add_customer_provider(provider, node);
    ++attached;
  }
  return attached;
}

std::size_t provider_count_for_stub(const GeneratorParams& params, Rng& rng) {
  if (!rng.chance(params.multi_home_probability)) return 1;
  // Multi-homed: mostly dual-homed, occasionally more.
  double u = rng.uniform();
  if (u < 0.72) return 2;
  if (u < 0.93) return 3;
  return 4;
}

}  // namespace

AsGraph generate(const GeneratorParams& params) {
  obs::ScopedSpan span(obs::profile(), "topology/generate", "topology");
  require(params.tier1_count >= 2, "generate: need at least two tier-1 ASes");
  require(params.node_count > params.tier1_count,
          "generate: node_count must exceed tier1_count");
  Rng rng(params.seed);
  AsGraph graph;

  // AS numbers are 1-based and sequential: deterministic and easy to read in
  // examples ("AS 17"). Real ASNs are arbitrary labels; nothing downstream
  // depends on their values.
  for (std::size_t i = 0; i < params.node_count; ++i)
    graph.add_as(static_cast<AsNumber>(i + 1));

  // --- Tier-1 clique: the small core of very-high-degree peers. ---
  std::vector<NodeId> tier1;
  for (std::size_t i = 0; i < params.tier1_count; ++i)
    tier1.push_back(static_cast<NodeId>(i));
  for (std::size_t i = 0; i < tier1.size(); ++i)
    for (std::size_t j = i + 1; j < tier1.size(); ++j)
      graph.add_peer(tier1[i], tier1[j]);

  const std::size_t rest = params.node_count - params.tier1_count;
  const std::size_t transit_count = static_cast<std::size_t>(
      static_cast<double>(rest) * params.transit_fraction);

  // --- Transit tier: preferentially attached to earlier transit/tier-1. ---
  std::vector<NodeId> transit_pool = tier1;  // valid providers so far
  std::vector<NodeId> transit_nodes;
  for (std::size_t i = 0; i < transit_count; ++i) {
    NodeId node = static_cast<NodeId>(params.tier1_count + i);
    std::size_t providers = 1 + (rng.chance(0.55) ? 1 : 0) +
                            (rng.chance(0.18) ? 1 : 0);
    // The pool is never empty (it starts as the tier-1 clique), so every
    // transit AS attaches to at least one provider.
    attach_providers(graph, transit_pool, node, providers,
                     params.attachment_bias, rng);
    transit_pool.push_back(node);
    transit_nodes.push_back(node);
  }

  // --- Stubs: the remaining nodes, each homed to 1..4 transit providers. ---
  std::vector<NodeId> stubs;
  for (NodeId node = static_cast<NodeId>(params.tier1_count + transit_count);
       node < params.node_count; ++node) {
    std::size_t providers = provider_count_for_stub(params, rng);
    attach_providers(graph, transit_pool, node, providers,
                     params.attachment_bias, rng);
    stubs.push_back(node);
  }

  // --- Extra peer links, mostly between transit ASes of similar standing. ---
  const std::size_t base_edges = graph.edge_count();
  const auto peer_target = static_cast<std::size_t>(
      static_cast<double>(base_edges) * params.peer_link_fraction);
  std::size_t added_peers = 0;
  std::size_t attempts = 0;
  while (added_peers < peer_target && attempts < peer_target * 30 &&
         transit_nodes.size() >= 2) {
    ++attempts;
    NodeId a = transit_nodes[rng.next_below(transit_nodes.size())];
    // Peering partners have comparable degree; bias the second draw the same
    // way and accept only if degrees are within ~8x of each other.
    NodeId b = transit_nodes[rng.next_below(transit_nodes.size())];
    if (a == b || graph.has_edge(a, b)) continue;
    double ratio = static_cast<double>(graph.degree(a) + 1) /
                   static_cast<double>(graph.degree(b) + 1);
    if (ratio > 8.0 || ratio < 1.0 / 8.0) continue;
    graph.add_peer(a, b);
    ++added_peers;
  }

  // --- Sibling links: small same-institution clusters in the transit tier. ---
  const auto sibling_target = static_cast<std::size_t>(
      static_cast<double>(base_edges) * params.sibling_link_fraction);
  std::size_t added_siblings = 0;
  attempts = 0;
  while (added_siblings < sibling_target && attempts < sibling_target * 30 &&
         transit_nodes.size() >= 2) {
    ++attempts;
    NodeId a = transit_nodes[rng.next_below(transit_nodes.size())];
    NodeId b = transit_nodes[rng.next_below(transit_nodes.size())];
    if (a == b || graph.has_edge(a, b)) continue;
    graph.add_sibling(a, b);
    ++added_siblings;
  }

  // Freeze into the CSR layout: the generator is the one writer, everything
  // downstream (solver, eval sampling, lint) only reads. The accounted bytes
  // are therefore always the compact frozen footprint.
  graph.finalize();
  if (obs::MemoryRegistry* mem = obs::memory())
    mem->account("topology/graph").set_current(graph.memory_bytes());
  return graph;
}

GeneratorParams profile(std::string_view name, double scale) {
  require(scale > 0, "profile: scale must be positive");
  GeneratorParams p;
  auto scaled = [&](std::size_t n) {
    return std::max<std::size_t>(
        64, static_cast<std::size_t>(static_cast<double>(n) * scale));
  };
  if (name == "gao2000") {
    p.node_count = scaled(2200);
    p.tier1_count = 8;
    p.transit_fraction = 0.18;
    p.peer_link_fraction = 0.062;
    p.sibling_link_fraction = 0.013;
    p.seed = 2000;
  } else if (name == "gao2003") {
    p.node_count = scaled(4000);
    p.tier1_count = 10;
    p.transit_fraction = 0.17;
    p.peer_link_fraction = 0.089;
    p.sibling_link_fraction = 0.015;
    p.seed = 2003;
  } else if (name == "gao2005") {
    p.node_count = scaled(5200);
    p.tier1_count = 12;
    p.transit_fraction = 0.16;
    p.peer_link_fraction = 0.083;
    p.sibling_link_fraction = 0.015;
    p.seed = 2005;
  } else if (name == "internet2006") {
    // Measured-Internet scale (ROADMAP item 1): ~70k ASes and ~140k links at
    // scale 1.0, with the Table 5.1 mix — a thin very-high-degree core, a
    // ~13% transit tier, ~62% multi-homed stubs drawing 2-4 providers, and
    // peer/sibling fractions at the top of the measured range. The softer
    // attachment bias spreads the transit tier into the heavy degree tail
    // the RouteViews-derived graphs show, instead of collapsing onto the
    // clique.
    p.node_count = scaled(70000);
    p.tier1_count = 16;
    p.transit_fraction = 0.13;
    p.multi_home_probability = 0.62;
    p.peer_link_fraction = 0.10;
    p.sibling_link_fraction = 0.012;
    p.attachment_bias = 1.25;
    p.seed = 2006;
  } else if (name == "agarwal2004") {
    p.node_count = scaled(4200);
    p.tier1_count = 10;
    p.transit_fraction = 0.17;
    p.peer_link_fraction = 0.093;
    p.sibling_link_fraction = 0.005;
    p.seed = 2004;
  } else if (name == "tiny") {
    p.node_count = std::max<std::size_t>(
        64, static_cast<std::size_t>(260 * scale));
    p.tier1_count = 4;
    p.transit_fraction = 0.22;
    p.peer_link_fraction = 0.08;
    p.sibling_link_fraction = 0.02;
    // Small graphs compress the degree tail; bias attachment harder so the
    // "few very-high-degree cores" property survives the scale-down.
    p.attachment_bias = 1.6;
    p.seed = 7;
  } else {
    throw Error("profile: unknown topology profile '" + std::string(name) +
                "'");
  }
  return p;
}

}  // namespace miro::topo
