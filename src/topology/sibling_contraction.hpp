// Sibling-group contraction.
//
// Sibling ASes "typically belong to the same institution" and provide
// mutual transit; the dissertation's policy approximation treats chains of
// sibling links as transparent when classifying routes (Section 2.2.1).
// Contracting each sibling-connected component into one virtual AS makes
// that approximation exact: the contracted graph has no sibling links, and
// route classes computed on it match the transparent-classification rule on
// the original graph (validated in the tests). The contraction also yields
// the group statistics (how many multi-AS institutions, largest group).
#pragma once

#include <vector>

#include "topology/as_graph.hpp"

namespace miro::topo {

struct ContractionResult {
  /// The contracted graph; one node per sibling group. Virtual nodes take
  /// the smallest member's AS number.
  AsGraph graph;
  /// original node id -> contracted node id.
  std::vector<NodeId> group_of;
  /// contracted node id -> original member node ids (size >= 1).
  std::vector<std::vector<NodeId>> members;

  std::size_t group_count() const { return members.size(); }
  std::size_t largest_group() const;
  std::size_t multi_member_groups() const;
};

/// Contracts every sibling-connected component. Edges between two groups
/// keep the most favorable relationship when parallel original links
/// disagree (customer beats peer beats provider, from the lower group's
/// perspective) — disagreeing parallel links are rare and reported.
ContractionResult contract_siblings(const AsGraph& graph);

}  // namespace miro::topo
