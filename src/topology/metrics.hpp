// Topology summary metrics.
//
// Feeds Table 5.1 (dataset attributes) and Figure 5.1 (node degree
// distribution), and provides the tiering / multi-homing statistics quoted in
// the dissertation's discussion ("60% of ASes are multi-homed", "12,468 out
// of 31,311 ASes are stubs", "only 0.2% of the ASes has more than 200
// neighbors").
#pragma once

#include <cstddef>
#include <vector>

#include "topology/as_graph.hpp"

namespace miro::topo {

/// One row of the Table 5.1 analog.
struct TopologySummary {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t customer_provider_links = 0;
  std::size_t peer_links = 0;
  std::size_t sibling_links = 0;
  std::size_t stub_count = 0;
  std::size_t multi_homed_stub_count = 0;
  std::size_t tier1_count = 0;  ///< ASes with no providers
  double average_degree = 0;
  std::size_t max_degree = 0;
};

TopologySummary summarize(const AsGraph& graph);

/// Sorted (descending) degree sequence — the raw series behind Figure 5.1.
std::vector<std::size_t> degree_sequence(const AsGraph& graph);

/// Fraction of nodes with degree strictly greater than `threshold`
/// (e.g. the paper's "more than 200 neighbors" cut).
double fraction_with_degree_above(const AsGraph& graph, std::size_t threshold);

/// Node ids sorted by decreasing degree (ties by ascending id) — the
/// deployment order used by the incremental-deployment experiment.
std::vector<NodeId> nodes_by_degree_descending(const AsGraph& graph);

}  // namespace miro::topo
