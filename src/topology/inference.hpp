// AS business-relationship inference from observed AS paths.
//
// The dissertation's methodology (Section 5.1) annotates the measured
// topology with relationships inferred by Gao's degree-based algorithm and by
// the Subramanian/Agarwal multi-vantage rank algorithm. Both are implemented
// here over a set of observed AS paths (what BGP table dumps provide). On
// synthetic topologies the inferred graph can be scored against the planted
// ground truth — a validation the paper could not perform on real data.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/as_graph.hpp"

namespace miro::topo {

/// One observed AS path, origin last (as read right-to-left in a BGP table).
using AsPath = std::vector<AsNumber>;

/// Options for Gao's inference algorithm (IEEE/ACM ToN 2001).
struct GaoOptions {
  /// Minimum transit-evidence count in *both* directions to call a pair
  /// siblings (Gao's L parameter).
  std::size_t sibling_threshold = 1;
  /// Maximum degree ratio between two ASes for a peer classification
  /// (Gao's R parameter). Gao used R = 60 on the measured Internet, whose
  /// degree distribution spans four orders of magnitude; laptop-scale
  /// synthetic graphs compress degrees, so the default here is tighter.
  double peer_degree_ratio = 2.0;
};

/// Gao's algorithm: (1) degrees from the paths, (2) transit evidence counted
/// on each side of each path's highest-degree "top provider", (3)
/// provider/customer/sibling assignment from the evidence, (4) peer
/// identification among top-adjacent links with comparable degrees.
AsGraph infer_gao(const std::vector<AsPath>& paths, const GaoOptions& options = {});

/// Options for the rank-based (Subramanian et al. / "Agarwal") algorithm.
struct RankOptions {
  /// Rank ratio under which two ASes are considered equivalent (peers).
  double peer_rank_ratio = 1.25;
};

/// Rank-based inference: each AS is ranked by how many ASes it is observed to
/// carry traffic toward across all vantage points; edges between similarly
/// ranked ASes become peers, otherwise the higher rank is the provider.
/// (Siblings are not inferred, matching the original algorithm.)
AsGraph infer_rank(const std::vector<AsPath>& paths, const RankOptions& options = {});

/// Per-relationship confusion counts of an inferred graph vs ground truth.
struct InferenceAccuracy {
  std::size_t edges_in_truth = 0;
  std::size_t edges_in_inferred = 0;
  std::size_t edges_missing = 0;     ///< in truth, never observed
  std::size_t edges_spurious = 0;    ///< inferred but not in truth
  std::size_t classified_correct = 0;
  std::size_t classified_wrong = 0;

  double accuracy() const {
    const std::size_t total = classified_correct + classified_wrong;
    return total == 0 ? 0.0
                      : static_cast<double>(classified_correct) /
                            static_cast<double>(total);
  }
};

InferenceAccuracy compare_inference(const AsGraph& truth,
                                    const AsGraph& inferred);

}  // namespace miro::topo
