// Text serialization of relationship-annotated AS graphs.
//
// Uses the CAIDA AS-relationship convention the measurement community built
// on Gao's inference output:
//   <provider>|<customer>|-1
//   <peer>|<peer>|0
//   <sibling>|<sibling>|2
// Lines starting with '#' are comments. This lets users load real inferred
// datasets into the library unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/as_graph.hpp"

namespace miro::topo {

/// Writes `graph` in CAIDA pipe-separated format.
void save(const AsGraph& graph, std::ostream& out);

/// Parses a graph from CAIDA pipe-separated format; throws miro::Error with
/// a line number on malformed input.
AsGraph load(std::istream& in);

/// Convenience round-trips through std::string.
std::string to_text(const AsGraph& graph);
AsGraph from_text(const std::string& text);

/// File helpers; throw miro::Error when the file cannot be opened. Use
/// these to load real CAIDA/serial-1 relationship datasets.
void save_file(const AsGraph& graph, const std::string& path);
AsGraph load_file(const std::string& path);

}  // namespace miro::topo
