#include "topology/sibling_contraction.hpp"

#include <algorithm>
#include <map>

#include "common/union_find.hpp"

namespace miro::topo {

std::size_t ContractionResult::largest_group() const {
  std::size_t largest = 0;
  for (const auto& group : members)
    largest = std::max(largest, group.size());
  return largest;
}

std::size_t ContractionResult::multi_member_groups() const {
  std::size_t count = 0;
  for (const auto& group : members)
    if (group.size() > 1) ++count;
  return count;
}

ContractionResult contract_siblings(const AsGraph& graph) {
  const std::size_t n = graph.node_count();
  UnionFind components(n);
  for (NodeId id = 0; id < n; ++id)
    for (const Neighbor& neighbor : graph.neighbors(id))
      if (neighbor.rel == Relationship::Sibling)
        components.unite(id, neighbor.node);

  ContractionResult result;
  result.group_of.assign(n, kInvalidNode);

  // Assign group ids in order of first appearance; the representative AS
  // number is the smallest member's (stable and human-readable).
  std::vector<NodeId> root_to_group(n, kInvalidNode);
  for (NodeId id = 0; id < n; ++id) {
    const auto root = components.find(id);
    if (root_to_group[root] == kInvalidNode) {
      root_to_group[root] = static_cast<NodeId>(result.members.size());
      result.members.emplace_back();
    }
    result.group_of[id] = root_to_group[root];
    result.members[root_to_group[root]].push_back(id);
  }
  for (auto& group : result.members)
    std::sort(group.begin(), group.end());

  for (const auto& group : result.members) {
    AsNumber representative = graph.as_number(group.front());
    for (NodeId member : group)
      representative = std::min(representative, graph.as_number(member));
    result.graph.add_as(representative);
  }

  // Project the non-sibling edges; keep the most favorable relationship
  // when parallel originals disagree. Key: (customer-side group, other).
  // Relationship recorded from the perspective of the lower group id.
  std::map<std::pair<NodeId, NodeId>, Relationship> projected;
  auto better = [](Relationship a, Relationship b) {
    // Customer (the neighbor pays us) beats Peer beats Provider.
    auto score = [](Relationship rel) {
      switch (rel) {
        case Relationship::Customer: return 0;
        case Relationship::Peer: return 1;
        case Relationship::Provider: return 2;
        case Relationship::Sibling: return 3;
      }
      return 3;
    };
    return score(a) < score(b) ? a : b;
  };
  for (NodeId id = 0; id < n; ++id) {
    for (const Neighbor& neighbor : graph.neighbors(id)) {
      if (neighbor.rel == Relationship::Sibling) continue;
      const NodeId ga = result.group_of[id];
      const NodeId gb = result.group_of[neighbor.node];
      if (ga == gb) continue;  // intra-group non-sibling link: drop
      const auto key = ga < gb ? std::make_pair(ga, gb)
                               : std::make_pair(gb, ga);
      // Normalize to the lower group's perspective.
      const Relationship rel_of_high_to_low =
          ga < gb ? neighbor.rel : reverse(neighbor.rel);
      auto it = projected.find(key);
      if (it == projected.end()) {
        projected.emplace(key, rel_of_high_to_low);
      } else {
        it->second = better(it->second, rel_of_high_to_low);
      }
    }
  }
  for (const auto& [key, rel] : projected) {
    const auto [low, high] = key;
    switch (rel) {
      case Relationship::Customer:
        result.graph.add_customer_provider(/*provider=*/low,
                                           /*customer=*/high);
        break;
      case Relationship::Provider:
        result.graph.add_customer_provider(high, low);
        break;
      case Relationship::Peer:
        result.graph.add_peer(low, high);
        break;
      case Relationship::Sibling:
        break;  // unreachable
    }
  }
  return result;
}

}  // namespace miro::topo
