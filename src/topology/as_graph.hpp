// AS-level topology annotated with business relationships.
//
// "Today's Internet is a loose federation of ASes" (Section 2.2.1). Edges
// carry one of the three prevalent relationships: customer-provider, peer, or
// sibling. The evaluation chapter's experiments all run over this graph.
//
// The graph has two states. While *building* it is append-only: adjacency
// lives in one vector per node and an edge-key hash set answers has_edge in
// O(1). finalize() freezes it into a struct-of-arrays CSR layout — one
// offset array plus parallel node/relationship edge arrays, each node's
// segment sorted by neighbor id — which drops the per-node vector headers
// and hash index (≈55 → ≈14 bytes/edge on the paper profiles) and answers
// has_edge/relationship in O(log d). Finalizing is what makes the
// internet2006-scale profiles (70k ASes, 100k+ edges) fit the eval
// pipeline; a finalized graph rejects further mutation. Neighbor iteration
// order changes on finalize (sorted by node id) — every consumer that feeds
// the deterministic result contract is order-independent (the stable solver
// finalizes routes in a total preference order; accumulators are sums).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace miro::topo {

/// A 16/32-bit Autonomous System number as registered publicly.
using AsNumber = std::uint32_t;

/// Dense internal node index; all algorithms run on these.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// What a neighbor is *to me*: my customer, my provider, my peer, or my
/// sibling. Stored per directed half-edge, so the two halves of one
/// customer-provider link carry Customer on the provider side and Provider on
/// the customer side.
enum class Relationship : std::uint8_t { Customer, Provider, Peer, Sibling };

/// The reverse perspective of a relationship. A value outside the enum (a
/// corrupted or miscast byte) throws instead of silently becoming a Peer
/// edge — the wrong relationship would otherwise leak into export policy.
constexpr Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return Relationship::Provider;
    case Relationship::Provider: return Relationship::Customer;
    case Relationship::Peer: return Relationship::Peer;
    case Relationship::Sibling: return Relationship::Sibling;
  }
  throw Error("reverse: corrupted Relationship value");
}

const char* to_string(Relationship rel);

/// A directed half-edge as seen from the owning node.
struct Neighbor {
  NodeId node = kInvalidNode;
  Relationship rel = Relationship::Peer;
};

/// One node's neighbors, independent of the graph's storage state: a
/// contiguous Neighbor array while building, split node/relationship arrays
/// once finalized. Iteration yields Neighbor by value either way.
class NeighborRange {
 public:
  NeighborRange(const Neighbor* aos, std::size_t size)
      : aos_(aos), size_(size) {}
  NeighborRange(const NodeId* nodes, const Relationship* rels,
                std::size_t size)
      : nodes_(nodes), rels_(rels), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Neighbor operator[](std::size_t i) const {
    return aos_ != nullptr ? aos_[i] : Neighbor{nodes_[i], rels_[i]};
  }
  Neighbor front() const { return (*this)[0]; }

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Neighbor;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Neighbor;

    iterator(const NeighborRange* range, std::size_t i)
        : range_(range), i_(i) {}
    Neighbor operator*() const { return (*range_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    bool operator==(const iterator& other) const { return i_ == other.i_; }
    bool operator!=(const iterator& other) const { return i_ != other.i_; }

   private:
    const NeighborRange* range_;
    std::size_t i_;
  };

  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, size_}; }

 private:
  const Neighbor* aos_ = nullptr;
  const NodeId* nodes_ = nullptr;
  const Relationship* rels_ = nullptr;
  std::size_t size_ = 0;
};

/// Undirected, relationship-annotated AS graph. Construction is append-only;
/// finalize() freezes the graph into the compact CSR layout (see file
/// comment) and the evaluation code runs over the frozen form.
class AsGraph {
 public:
  /// Adds an AS; returns its dense node id. Duplicate AS numbers throw.
  NodeId add_as(AsNumber asn);

  /// Adds a customer-provider link (provider earns the Customer half-edge).
  void add_customer_provider(NodeId provider, NodeId customer);
  /// Adds a peer-peer link.
  void add_peer(NodeId a, NodeId b);
  /// Adds a sibling link (mutual transit, typically one institution).
  void add_sibling(NodeId a, NodeId b);

  /// Freezes the graph into the CSR layout: per-node edge segments sorted
  /// by neighbor id, the build-state containers released. Idempotent;
  /// mutation afterwards throws. Sequential 1-based AS numbers (the
  /// generator's convention) collapse the ASN index to an identity check.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t node_count() const { return as_numbers_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  AsNumber as_number(NodeId id) const {
    check_node(id);
    return as_numbers_[id];
  }
  /// Dense id for an AS number; kInvalidNode when unknown.
  NodeId find(AsNumber asn) const;
  /// Dense id for an AS number; throws when unknown.
  NodeId require_node(AsNumber asn) const;

  NeighborRange neighbors(NodeId id) const {
    check_node(id);
    if (finalized_) {
      const std::uint32_t begin = offsets_[id];
      return {edge_nodes_.data() + begin, edge_rels_.data() + begin,
              offsets_[id + 1] - begin};
    }
    const std::vector<Neighbor>& list = adjacency_[id];
    return {list.data(), list.size()};
  }
  std::size_t degree(NodeId id) const {
    check_node(id);
    return finalized_ ? offsets_[id + 1] - offsets_[id]
                      : adjacency_[id].size();
  }

  /// True when an edge (of any relationship) exists between a and b.
  /// O(1) while building (edge-key hash), O(log d) once finalized.
  bool has_edge(NodeId a, NodeId b) const;
  /// The relationship of b as seen from a; throws when no edge exists.
  Relationship relationship(NodeId a, NodeId b) const;

  /// Providers / customers / peers / siblings of `id` (filtered view, copies).
  std::vector<NodeId> neighbors_with(NodeId id, Relationship rel) const;

  /// Number of edges of each relationship kind (counting each link once;
  /// customer-provider counted on the provider side).
  struct EdgeCounts {
    std::size_t customer_provider = 0;
    std::size_t peer = 0;
    std::size_t sibling = 0;
  };
  EdgeCounts edge_counts() const;

  /// A stub AS only acts as a customer (no customers, no peers, no siblings);
  /// these are the "leaf nodes" of Chapter 7.
  bool is_stub(NodeId id) const;
  /// Multi-homed: connected to more than one provider.
  bool is_multi_homed_stub(NodeId id) const;

  /// Resident byte footprint of the graph's containers, computed from
  /// capacities (reserved storage counts). Deterministic for a given
  /// construction sequence — the number behind every bytes_per_edge bench
  /// row, and ROADMAP item 1's before/after instrument for the CSR
  /// adjacency refactor. Reports whichever layout is live: the build-state
  /// vectors/indexes before finalize(), the CSR arrays after.
  std::uint64_t memory_bytes() const;

 private:
  void check_node(NodeId id) const {
    require(id < as_numbers_.size(), "AsGraph: node id out of range");
  }
  void add_half_edges(NodeId a, NodeId b, Relationship rel_of_b_to_a);
  static std::uint64_t edge_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  /// Index of b within a's sorted CSR segment; npos when absent.
  std::size_t csr_find(NodeId a, NodeId b) const;

  std::vector<AsNumber> as_numbers_;
  std::size_t edge_count_ = 0;
  bool finalized_ = false;

  // Build state (released by finalize()).
  std::vector<std::vector<Neighbor>> adjacency_;
  std::unordered_map<AsNumber, NodeId> index_;
  std::unordered_set<std::uint64_t> edge_keys_;

  // Frozen CSR state (populated by finalize()).
  std::vector<std::uint32_t> offsets_;    ///< node_count()+1 entries
  std::vector<NodeId> edge_nodes_;        ///< per-node segments, sorted
  std::vector<Relationship> edge_rels_;   ///< parallel to edge_nodes_
  bool identity_asns_ = false;            ///< as_numbers_[i] == i + 1
  std::vector<std::pair<AsNumber, NodeId>> sorted_index_;  ///< else: sorted
};

}  // namespace miro::topo
