// AS-level topology annotated with business relationships.
//
// "Today's Internet is a loose federation of ASes" (Section 2.2.1). Edges
// carry one of the three prevalent relationships: customer-provider, peer, or
// sibling. The evaluation chapter's experiments all run over this graph.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace miro::topo {

/// A 16/32-bit Autonomous System number as registered publicly.
using AsNumber = std::uint32_t;

/// Dense internal node index; all algorithms run on these.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// What a neighbor is *to me*: my customer, my provider, my peer, or my
/// sibling. Stored per directed half-edge, so the two halves of one
/// customer-provider link carry Customer on the provider side and Provider on
/// the customer side.
enum class Relationship : std::uint8_t { Customer, Provider, Peer, Sibling };

/// The reverse perspective of a relationship.
constexpr Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return Relationship::Provider;
    case Relationship::Provider: return Relationship::Customer;
    case Relationship::Peer: return Relationship::Peer;
    case Relationship::Sibling: return Relationship::Sibling;
  }
  return Relationship::Peer;
}

const char* to_string(Relationship rel);

/// A directed half-edge as seen from the owning node.
struct Neighbor {
  NodeId node = kInvalidNode;
  Relationship rel = Relationship::Peer;
};

/// Undirected, relationship-annotated AS graph. Construction is append-only;
/// the evaluation code freezes a graph once built.
class AsGraph {
 public:
  /// Adds an AS; returns its dense node id. Duplicate AS numbers throw.
  NodeId add_as(AsNumber asn);

  /// Adds a customer-provider link (provider earns the Customer half-edge).
  void add_customer_provider(NodeId provider, NodeId customer);
  /// Adds a peer-peer link.
  void add_peer(NodeId a, NodeId b);
  /// Adds a sibling link (mutual transit, typically one institution).
  void add_sibling(NodeId a, NodeId b);

  std::size_t node_count() const { return as_numbers_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  AsNumber as_number(NodeId id) const { return as_numbers_[id]; }
  /// Dense id for an AS number; kInvalidNode when unknown.
  NodeId find(AsNumber asn) const;
  /// Dense id for an AS number; throws when unknown.
  NodeId require_node(AsNumber asn) const;

  std::span<const Neighbor> neighbors(NodeId id) const {
    return adjacency_[id];
  }
  std::size_t degree(NodeId id) const { return adjacency_[id].size(); }

  /// True when an edge (of any relationship) exists between a and b.
  bool has_edge(NodeId a, NodeId b) const;
  /// The relationship of b as seen from a; throws when no edge exists.
  Relationship relationship(NodeId a, NodeId b) const;

  /// Providers / customers / peers / siblings of `id` (filtered view, copies).
  std::vector<NodeId> neighbors_with(NodeId id, Relationship rel) const;

  /// Number of edges of each relationship kind (counting each link once;
  /// customer-provider counted on the provider side).
  struct EdgeCounts {
    std::size_t customer_provider = 0;
    std::size_t peer = 0;
    std::size_t sibling = 0;
  };
  EdgeCounts edge_counts() const;

  /// A stub AS only acts as a customer (no customers, no peers, no siblings);
  /// these are the "leaf nodes" of Chapter 7.
  bool is_stub(NodeId id) const;
  /// Multi-homed: connected to more than one provider.
  bool is_multi_homed_stub(NodeId id) const;

  /// Resident byte footprint of the graph's containers, computed from
  /// capacities (reserved storage counts). Deterministic for a given
  /// construction sequence — the number behind every bytes_per_edge bench
  /// row, and ROADMAP item 1's before/after instrument for the CSR
  /// adjacency refactor.
  std::uint64_t memory_bytes() const;

 private:
  void check_node(NodeId id) const {
    require(id < as_numbers_.size(), "AsGraph: node id out of range");
  }
  void add_half_edges(NodeId a, NodeId b, Relationship rel_of_b_to_a);

  std::vector<AsNumber> as_numbers_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::unordered_map<AsNumber, NodeId> index_;
  std::size_t edge_count_ = 0;
};

}  // namespace miro::topo
