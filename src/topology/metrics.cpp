#include "topology/metrics.hpp"

#include <algorithm>

namespace miro::topo {

TopologySummary summarize(const AsGraph& graph) {
  TopologySummary s;
  s.nodes = graph.node_count();
  s.edges = graph.edge_count();
  const auto counts = graph.edge_counts();
  s.customer_provider_links = counts.customer_provider;
  s.peer_links = counts.peer;
  s.sibling_links = counts.sibling;
  std::size_t degree_total = 0;
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    if (graph.is_stub(id)) {
      ++s.stub_count;
      if (graph.is_multi_homed_stub(id)) ++s.multi_homed_stub_count;
    }
    bool has_provider = false;
    for (const Neighbor& n : graph.neighbors(id))
      has_provider = has_provider || n.rel == Relationship::Provider;
    if (!has_provider && graph.degree(id) > 0) ++s.tier1_count;
    degree_total += graph.degree(id);
    s.max_degree = std::max(s.max_degree, graph.degree(id));
  }
  s.average_degree = s.nodes == 0 ? 0
                                  : static_cast<double>(degree_total) /
                                        static_cast<double>(s.nodes);
  return s;
}

std::vector<std::size_t> degree_sequence(const AsGraph& graph) {
  std::vector<std::size_t> degrees(graph.node_count());
  for (NodeId id = 0; id < graph.node_count(); ++id)
    degrees[id] = graph.degree(id);
  std::sort(degrees.rbegin(), degrees.rend());
  return degrees;
}

double fraction_with_degree_above(const AsGraph& graph,
                                  std::size_t threshold) {
  if (graph.node_count() == 0) return 0;
  std::size_t count = 0;
  for (NodeId id = 0; id < graph.node_count(); ++id)
    if (graph.degree(id) > threshold) ++count;
  return static_cast<double>(count) /
         static_cast<double>(graph.node_count());
}

std::vector<NodeId> nodes_by_degree_descending(const AsGraph& graph) {
  std::vector<NodeId> nodes(graph.node_count());
  for (NodeId id = 0; id < graph.node_count(); ++id) nodes[id] = id;
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    if (graph.degree(a) != graph.degree(b))
      return graph.degree(a) > graph.degree(b);
    return a < b;
  });
  return nodes;
}

}  // namespace miro::topo
