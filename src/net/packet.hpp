// Simulated packets with stackable IP headers.
//
// MIRO forwards most traffic natively but diverts tunneled traffic with
// IP-in-IP encapsulation plus a tunnel-identifier shim (Sections 3.5, 4.2).
// A packet therefore carries a stack of IP headers; encapsulation pushes a
// header, decapsulation pops one. "A data packet can be encapsulated in
// several layers of IP headers, resulting in a tunnel inside another tunnel."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"

namespace miro::net {

/// Identifier a downstream AS assigns to one of its tunnels. "this identifier
/// does not need to be globally unique, it only has to be unique in the
/// downstream AS" (Section 3.5).
using TunnelId = std::uint32_t;

/// One IP header level. The optional tunnel id models the shim the egress
/// router reads to pick the exit link under directed forwarding.
struct IpHeader {
  Ipv4Address source;
  Ipv4Address destination;
  std::optional<TunnelId> tunnel_id;
};

/// Transport-level fields used by traffic classifiers and flow hashing.
struct FlowLabel {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint8_t protocol = 6;        // TCP by default
  std::uint8_t type_of_service = 0;
};

/// A simulated data packet: the innermost header is the original one; the
/// encapsulation stack grows outward.
class Packet {
 public:
  Packet(Ipv4Address source, Ipv4Address destination, FlowLabel flow = {});

  /// Outermost header — what routers forward on.
  const IpHeader& outer() const { return headers_.back(); }
  /// Original (innermost) header.
  const IpHeader& inner() const { return headers_.front(); }
  const FlowLabel& flow() const { return flow_; }

  std::size_t encapsulation_depth() const { return headers_.size() - 1; }

  /// Pushes an encapsulating header (IP-in-IP), optionally tagged with a
  /// tunnel id for directed forwarding at the tunnel egress.
  void encapsulate(Ipv4Address tunnel_source, Ipv4Address tunnel_destination,
                   std::optional<TunnelId> tunnel_id = std::nullopt);

  /// Pops the outermost header; throws if the packet is not encapsulated.
  void decapsulate();

  /// Rewrites the outermost destination (used by the single-reserved-address
  /// scheme where the ingress router swaps in the egress router's address).
  void rewrite_outer_destination(Ipv4Address destination);

  /// Stable 64-bit hash of the inner flow 5-tuple, for splitting traffic
  /// across multiple paths ("applying a hash function that maps a traffic
  /// flow to a path", Section 3.5).
  std::uint64_t flow_hash() const;

  std::string to_string() const;

 private:
  std::vector<IpHeader> headers_;
  FlowLabel flow_;
};

}  // namespace miro::net
