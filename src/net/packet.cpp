#include "net/packet.hpp"

#include "common/error.hpp"
#include "common/hash.hpp"

namespace miro::net {

Packet::Packet(Ipv4Address source, Ipv4Address destination, FlowLabel flow)
    : flow_(flow) {
  headers_.push_back(IpHeader{source, destination, std::nullopt});
}

void Packet::encapsulate(Ipv4Address tunnel_source,
                         Ipv4Address tunnel_destination,
                         std::optional<TunnelId> tunnel_id) {
  headers_.push_back(IpHeader{tunnel_source, tunnel_destination, tunnel_id});
}

void Packet::decapsulate() {
  require(headers_.size() > 1, "Packet::decapsulate: not encapsulated");
  headers_.pop_back();
}

void Packet::rewrite_outer_destination(Ipv4Address destination) {
  headers_.back().destination = destination;
}

std::uint64_t Packet::flow_hash() const {
  const IpHeader& ip = inner();
  std::uint64_t h = kFnvOffset;
  h = hash_combine(h, ip.source.value());
  h = hash_combine(h, ip.destination.value());
  h = hash_combine(h, flow_.source_port);
  h = hash_combine(h, flow_.destination_port);
  h = hash_combine(h, flow_.protocol);
  return h;
}

std::string Packet::to_string() const {
  std::string out;
  for (std::size_t i = headers_.size(); i-- > 0;) {
    const IpHeader& h = headers_[i];
    out += "[" + h.source.to_string() + " -> " + h.destination.to_string();
    if (h.tunnel_id) out += " tid=" + std::to_string(*h.tunnel_id);
    out += "]";
  }
  return out;
}

}  // namespace miro::net
