// IPv4 address and prefix value types.
//
// MIRO's data plane is simulated at IPv4 granularity: each AS originates one
// or more prefixes (Section 1.1), routers forward on longest-prefix match,
// and tunnels encapsulate with IP-in-IP (Section 4.2).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace miro::net {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (address + mask length). The address is stored canonical:
/// bits beyond the mask are zero.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Address address, int length);

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr Ipv4Address address() const { return address_; }
  constexpr int length() const { return length_; }

  /// True when `ip` falls inside this prefix.
  bool contains(Ipv4Address ip) const;

  /// True when `other` is fully contained in this prefix.
  bool covers(const Prefix& other) const;

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address address_;
  int length_ = 0;
};

/// Mask with the top `length` bits set.
constexpr std::uint32_t mask_of_length(int length) {
  return length == 0 ? 0u : (~0u << (32 - length));
}

}  // namespace miro::net
