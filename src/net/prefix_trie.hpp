// Longest-prefix-match forwarding table.
//
// "each IP router forwards a packet by performing a longest-prefix match on
// the destination IP address" (Section 2.1.1). Implemented as a binary trie
// keyed on prefix bits; lookups walk at most 32 levels and remember the last
// node that carried a value.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "net/address.hpp"

namespace miro::net {

/// Binary trie mapping prefixes to values of type T with longest-prefix-match
/// lookup. T must be copyable.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value for `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = walk_to(prefix, /*create=*/true);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Removes the entry for `prefix`; returns true when it existed.
  /// (Nodes are not pruned; the trie is small and rebuilt per scenario.)
  bool erase(const Prefix& prefix) {
    Node* node = walk_to(prefix, /*create=*/false);
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup for one prefix entry.
  const T* find_exact(const Prefix& prefix) const {
    const Node* node = walk_to_const(prefix);
    return node && node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix-match lookup for a destination address, together with
  /// the matching prefix length. Returns nullopt when nothing matches.
  struct Match {
    const T* value;
    int prefix_length;
  };
  std::optional<Match> lookup(Ipv4Address ip) const {
    const Node* node = root_.get();
    std::optional<Match> best;
    if (node->value) best = Match{&*node->value, 0};
    std::uint32_t bits = ip.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = Match{&*node->value, depth + 1};
    }
    return best;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    visit_node(root_.get(), 0, 0, visit);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* walk_to(const Prefix& prefix, bool create) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      if (node->child[bit] == nullptr) {
        if (!create) return nullptr;
        node->child[bit] = std::make_unique<Node>();
      }
      node = node->child[bit].get();
    }
    return node;
  }

  const Node* walk_to_const(const Prefix& prefix) const {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node == nullptr) return nullptr;
    }
    return node;
  }

  template <typename Visitor>
  static void visit_node(const Node* node, std::uint32_t bits, int depth,
                         Visitor& visit) {
    if (node == nullptr) return;
    if (node->value) visit(Prefix(Ipv4Address(bits), depth), *node->value);
    if (depth < 32) {
      visit_node(node->child[0].get(), bits, depth + 1, visit);
      visit_node(node->child[1].get(), bits | (1u << (31 - depth)), depth + 1,
                 visit);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace miro::net
