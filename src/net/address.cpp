#include "net/address.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace miro::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (auto part : parts) {
    auto octet = parse_u64(part);
    if (!octet || *octet > 255) return std::nullopt;
    value = (value << 8) | static_cast<std::uint32_t>(*octet);
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buffer;
}

Prefix::Prefix(Ipv4Address address, int length) : length_(length) {
  require(length >= 0 && length <= 32, "Prefix: length outside [0,32]");
  address_ = Ipv4Address(address.value() & mask_of_length(length));
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto parts = split(text, '/');
  if (parts.size() != 2) return std::nullopt;
  auto address = Ipv4Address::parse(parts[0]);
  auto length = parse_u64(parts[1]);
  if (!address || !length || *length > 32) return std::nullopt;
  return Prefix(*address, static_cast<int>(*length));
}

bool Prefix::contains(Ipv4Address ip) const {
  return (ip.value() & mask_of_length(length_)) == address_.value();
}

bool Prefix::covers(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.address_);
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace miro::net
