// The Chapter 7 abstract model of MIRO: BGP routes plus routing tunnels
// under activation sequences, with the convergence guidelines as pluggable
// constraints.
//
// State: for every (speaker, destination prefix) pair, a BGP-layer route and
// an optional established tunnel route (Section 7.1.1's (R, T)). *Activating*
// a speaker re-runs its selection for every prefix: the BGP route is chosen
// from what neighbors currently advertise; the tunnel route is re-validated /
// re-established from the tunnel specifications. A state is stable when no
// activation changes anything; divergence is demonstrated by revisiting a
// global state fingerprint under a deterministic schedule.
//
// Guidelines (Section 7.3, 7.4):
//   None       — tunnels freely replace BGP routes, are advertised onward,
//                and ride on whatever route currently reaches the responder.
//                Diverges on the Figure 7.1 gadget.
//   StrictOnly — "strict policy": a responder only offers routes in the same
//                class as its advertised BGP route. Still diverges on the
//                Figure 7.2 gadget (that is the figure's point).
//   B          — tunnels are a separate higher layer: built only over pure
//                BGP routes and never advertised as BGP paths (§7.3.1).
//   C          — like B, but tunnel routes may additionally be advertised as
//                BGP routes to leaf (stub) ASes, which never re-export
//                (§7.3.2).
//   D          — strict policy + a strict partial order ≺ per AS: a tunnel
//                toward prefix d via first downstream v is preferred only
//                when v ≺ d (§7.3.3, Guideline D).
//   E          — strict policy + a tunnel may not ride on a route that uses
//                one of the speaker's own tunnels, and (the Banker's-style
//                local check the dissertation sketches for on-the-fly
//                validation) establishing a tunnel is refused when it would
//                invalidate one of the speaker's existing tunnels (§7.3.3,
//                Guideline E).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/route.hpp"
#include "common/rng.hpp"

namespace miro::conv {

using bgp::RouteClass;
using topo::AsGraph;
using topo::NodeId;

using Path = std::vector<NodeId>;

enum class Guideline { None, StrictOnly, B, C, D, E };
const char* to_string(Guideline guideline);

/// One permitted tunnel negotiation (an edge of E' in the model): the
/// requester may establish a tunnel toward `destination` with `responder`.
struct TunnelSpec {
  NodeId requester = topo::kInvalidNode;
  NodeId responder = topo::kInvalidNode;
  NodeId destination = topo::kInvalidNode;
  /// When set, the requester accepts only this exact end-to-end path — the
  /// gadgets use it to express "A wants ABD, nothing else".
  std::optional<Path> required_path;
};

struct ModelOptions {
  Guideline guideline = Guideline::None;
  std::vector<TunnelSpec> tunnels;
  /// Guideline D's strict partial order: returns true when
  /// first_downstream ≺_node destination. Required when any AS follows D.
  std::function<bool(NodeId node, NodeId first_downstream, NodeId destination)>
      partial_order;
  /// Per-AS guideline override (Section 7.4's mixing results: e.g. some
  /// ASes conforming to C while others conform to D or E, convergence is
  /// still guaranteed). When unset, every AS follows `guideline`.
  std::function<Guideline(NodeId node)> guideline_of;
};

/// Per-(speaker, prefix) state: the BGP layer and the tunnel layer.
struct LayeredRoute {
  std::optional<Path> bgp;
  std::optional<Path> tunnel;
  /// What the speaker actually uses: the tunnel when one is established.
  const std::optional<Path>& effective() const {
    return tunnel ? tunnel : bgp;
  }
};

class MiroConvergenceModel {
 public:
  MiroConvergenceModel(const AsGraph& graph, std::vector<NodeId> destinations,
                       ModelOptions options);

  /// Activates one speaker for every destination (in destination order);
  /// returns true when any route changed.
  bool activate(NodeId node);
  /// Activates one (speaker, destination) pair.
  bool activate(NodeId node, NodeId destination);

  /// True when no activation would change anything.
  bool is_stable();

  struct RunResult {
    bool converged = false;
    bool cycle_detected = false;  ///< a global state repeated: divergence
    std::size_t activations = 0;
  };

  /// Deterministic round-robin sweeps with state-fingerprint cycle
  /// detection. A repeated fingerprint under this deterministic schedule
  /// proves the system oscillates forever on it.
  RunResult run_round_robin(std::size_t max_sweeps = 256);

  /// Random fair schedule (for property tests).
  RunResult run_random(Rng& rng, std::size_t max_activations);

  /// Runs an explicit schedule of speaker activations, repeated `rounds`
  /// times, with cycle detection between rounds.
  RunResult run_schedule(std::span<const NodeId> schedule,
                         std::size_t rounds = 64);

  const LayeredRoute& route(NodeId node, NodeId destination) const;

  /// Hash of the entire system state.
  std::uint64_t fingerprint() const;

  const AsGraph& graph() const { return *graph_; }
  const std::vector<NodeId>& destinations() const { return destinations_; }

 private:
  /// The guideline `node` conforms to.
  Guideline guideline_at(NodeId node) const {
    return options_.guideline_of ? options_.guideline_of(node)
                                 : options_.guideline;
  }
  /// Class of `path` at its owner, from the first link's relationship.
  RouteClass class_of(const Path& path) const;
  /// What `owner` currently advertises to `to` for `destination` under the
  /// guideline's advertisement rules; nullopt when nothing is exported.
  std::optional<Path> advertised(NodeId owner, NodeId destination,
                                 NodeId to) const;
  std::optional<Path> select_bgp(NodeId node, NodeId destination) const;
  std::optional<Path> select_tunnel(NodeId node, NodeId destination) const;

  std::size_t index_of(NodeId node, NodeId destination) const;

  const AsGraph* graph_;
  std::vector<NodeId> destinations_;
  std::unordered_map<NodeId, std::size_t> destination_index_;
  ModelOptions options_;
  std::vector<LayeredRoute> state_;  // node-major, destination-minor
};

}  // namespace miro::conv
