#include "convergence/gadgets.hpp"

namespace miro::conv {

MiroGadget make_figure_7_1(Guideline guideline) {
  MiroGadget gadget;
  // AS numbers chosen to read like the figure: D=40, A=10, B=20, C=30.
  const NodeId a = gadget.graph.add_as(10);
  const NodeId b = gadget.graph.add_as(20);
  const NodeId c = gadget.graph.add_as(30);
  const NodeId d = gadget.graph.add_as(40);
  gadget.nodes = {{"A", a}, {"B", b}, {"C", c}, {"D", d}};
  // A, B, C are customers of D; they peer with each other.
  gadget.graph.add_customer_provider(d, a);
  gadget.graph.add_customer_provider(d, b);
  gadget.graph.add_customer_provider(d, c);
  gadget.graph.add_peer(a, b);
  gadget.graph.add_peer(b, c);
  gadget.graph.add_peer(c, a);

  gadget.destinations = {d};
  gadget.options.guideline = guideline;
  // Each AS wants exactly the two-hop tunnel through the next peer.
  gadget.options.tunnels = {
      {a, b, d, Path{a, b, d}},
      {b, c, d, Path{b, c, d}},
      {c, a, d, Path{c, a, d}},
  };
  if (guideline == Guideline::D) {
    gadget.options.partial_order = [](NodeId, NodeId first_downstream,
                                      NodeId destination) {
      return first_downstream < destination;
    };
  }
  return gadget;
}

MiroGadget make_figure_7_2(Guideline guideline) {
  MiroGadget gadget;
  const NodeId a = gadget.graph.add_as(10);
  const NodeId b = gadget.graph.add_as(20);
  const NodeId c = gadget.graph.add_as(30);
  const NodeId d = gadget.graph.add_as(40);
  gadget.nodes = {{"A", a}, {"B", b}, {"C", c}, {"D", d}};
  // D is a customer of A, B, and C; A, B, C form a peering triangle.
  gadget.graph.add_customer_provider(a, d);
  gadget.graph.add_customer_provider(b, d);
  gadget.graph.add_customer_provider(c, d);
  gadget.graph.add_peer(a, b);
  gadget.graph.add_peer(b, c);
  gadget.graph.add_peer(c, a);

  gadget.destinations = {a, b, c};
  gadget.options.guideline = guideline;
  // D always pays less through a tunnel: D(BA) to reach A, D(CB) to reach B,
  // D(AC) to reach C.
  gadget.options.tunnels = {
      {d, b, a, Path{d, b, a}},
      {d, c, b, Path{d, c, b}},
      {d, a, c, Path{d, a, c}},
  };
  if (guideline == Guideline::D) {
    gadget.options.partial_order = [](NodeId, NodeId first_downstream,
                                      NodeId destination) {
      return first_downstream < destination;
    };
  }
  return gadget;
}

namespace {

/// Shared scaffold: `spokes` nodes around a destination hub, every spoke
/// linked to the hub and to the next spoke (peer links everywhere; the hooks
/// override all policy anyway).
BgpGadget make_ring(std::size_t spokes) {
  BgpGadget gadget;
  const NodeId hub = gadget.graph.add_as(100);
  gadget.nodes.emplace("0", hub);
  std::vector<NodeId> ring;
  for (std::size_t i = 0; i < spokes; ++i) {
    NodeId node =
        gadget.graph.add_as(static_cast<topo::AsNumber>(101 + i));
    gadget.graph.add_peer(node, hub);
    gadget.nodes.emplace(std::string(1, static_cast<char>('1' + i)), node);
    ring.push_back(node);
  }
  // Ring links (a 2-ring is a single link, not a parallel pair).
  const std::size_t ring_links = spokes == 2 ? 1 : spokes;
  for (std::size_t i = 0; i < ring_links; ++i)
    gadget.graph.add_peer(ring[i], ring[(i + 1) % spokes]);
  gadget.destination = hub;
  return gadget;
}

/// Preference: each spoke ranks the path through its clockwise ring
/// neighbor above the direct path; every other path is ranked worst.
bgp::PolicyHooks ring_hooks(const BgpGadget& gadget, std::size_t spokes) {
  const topo::AsGraph* graph = &gadget.graph;
  const NodeId hub = gadget.destination;
  auto rank_of = [graph, hub, spokes](const bgp::Route& route) {
    const NodeId owner = route.owner();
    if (owner == hub) return 0;
    // owner is spoke index (owner - 1) since the hub is node 0.
    const NodeId next_spoke =
        static_cast<NodeId>(1 + (owner - 1 + 1) % spokes);
    if (route.path.size() == 3 && route.path[1] == next_spoke) return 1;
    if (route.path.size() == 2) return 2;  // direct
    return 3;
  };
  bgp::PolicyHooks hooks;
  hooks.exports = [](NodeId, const bgp::Route&, NodeId) { return true; };
  // Only the direct path and the path through the clockwise neighbor are
  // permitted (the SPP path sets of the original gadgets).
  hooks.imports = [rank_of](const bgp::Route& candidate) {
    return rank_of(candidate) < 3;
  };
  hooks.prefers = [rank_of](const bgp::Route& a, const bgp::Route& b) {
    const int ra = rank_of(a);
    const int rb = rank_of(b);
    if (ra != rb) return ra < rb;
    return a.path < b.path;
  };
  return hooks;
}

}  // namespace

BgpGadget make_disagree() {
  BgpGadget gadget = make_ring(2);
  gadget.hooks = ring_hooks(gadget, 2);
  return gadget;
}

BgpGadget make_bad_gadget() {
  BgpGadget gadget = make_ring(3);
  gadget.hooks = ring_hooks(gadget, 3);
  return gadget;
}

}  // namespace miro::conv
