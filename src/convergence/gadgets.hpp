// Canonical (non-)convergence instances.
//
//   figure_7_1 — ASes A, B, C are customers of D and peer with each other;
//                each wants a tunnel through the next peer to reach D.
//                Without guidelines the tunnels re-create Griffin's BAD
//                GADGET and the system oscillates (Figure 7.1).
//   figure_7_2 — D is a customer of providers A, B, C (a peering triangle);
//                D wants tunnels D(BA), D(CB), D(AC), each cheaper than the
//                direct route. Under the strict policy alone the tunnels
//                invalidate each other cyclically and D oscillates
//                (Figure 7.2); Guidelines D and E break the cycle.
//   disagree / bad_gadget — the classic plain-BGP instances of Griffin et
//                al., expressed as PathVectorEngine policy hooks, showing
//                that BGP itself diverges when Guideline A is violated.
#pragma once

#include <string>
#include <unordered_map>

#include "bgp/path_vector_engine.hpp"
#include "convergence/model.hpp"

namespace miro::conv {

/// A ready-to-run MIRO instance; node ids are looked up by the paper's
/// letter names ("A", "B", ...).
struct MiroGadget {
  topo::AsGraph graph;
  std::vector<NodeId> destinations;
  ModelOptions options;
  std::unordered_map<std::string, NodeId> nodes;

  /// Builds a model over this gadget. The model keeps a reference to the
  /// gadget's graph, so the gadget must outlive it — hence lvalue-only.
  MiroConvergenceModel build() const& {
    return MiroConvergenceModel(graph, destinations, options);
  }
  MiroConvergenceModel build() const&& = delete;
};

/// Figure 7.1 instance under the given guideline.
MiroGadget make_figure_7_1(Guideline guideline);

/// Figure 7.2 instance under the given guideline. For Guideline D the
/// partial order is ≺ by ascending node id, which (being a strict total
/// order) cannot admit the cyclic tunnel preferences.
MiroGadget make_figure_7_2(Guideline guideline);

/// A plain-BGP instance for PathVectorEngine with custom preferences.
struct BgpGadget {
  topo::AsGraph graph;
  NodeId destination;
  bgp::PolicyHooks hooks;
  std::unordered_map<std::string, NodeId> nodes;
};

/// DISAGREE: two nodes each preferring the path through the other; has two
/// stable states but oscillates under the synchronous schedule.
BgpGadget make_disagree();

/// BAD GADGET: three nodes each preferring the path through the next; has no
/// stable state at all.
BgpGadget make_bad_gadget();

}  // namespace miro::conv
