#include "convergence/model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace miro::conv {

const char* to_string(Guideline guideline) {
  switch (guideline) {
    case Guideline::None: return "none";
    case Guideline::StrictOnly: return "strict-only";
    case Guideline::B: return "B";
    case Guideline::C: return "C";
    case Guideline::D: return "D";
    case Guideline::E: return "E";
  }
  return "?";
}

MiroConvergenceModel::MiroConvergenceModel(const AsGraph& graph,
                                           std::vector<NodeId> destinations,
                                           ModelOptions options)
    : graph_(&graph), destinations_(std::move(destinations)),
      options_(std::move(options)) {
  require(!destinations_.empty(), "MiroConvergenceModel: no destinations");
  bool any_d = options_.guideline == Guideline::D && !options_.guideline_of;
  if (options_.guideline_of)
    for (NodeId node = 0; node < graph.node_count(); ++node)
      any_d = any_d || options_.guideline_of(node) == Guideline::D;
  if (any_d)
    require(static_cast<bool>(options_.partial_order),
            "MiroConvergenceModel: Guideline D needs a partial order");
  for (std::size_t i = 0; i < destinations_.size(); ++i)
    destination_index_.emplace(destinations_[i], i);
  state_.resize(graph.node_count() * destinations_.size());
  // Each destination originates its own prefix with the null AS path.
  for (NodeId dest : destinations_)
    state_[index_of(dest, dest)].bgp = Path{dest};
}

std::size_t MiroConvergenceModel::index_of(NodeId node,
                                           NodeId destination) const {
  auto it = destination_index_.find(destination);
  require(it != destination_index_.end(),
          "MiroConvergenceModel: unknown destination");
  return static_cast<std::size_t>(node) * destinations_.size() + it->second;
}

const LayeredRoute& MiroConvergenceModel::route(NodeId node,
                                                NodeId destination) const {
  return state_[index_of(node, destination)];
}

RouteClass MiroConvergenceModel::class_of(const Path& path) const {
  require(!path.empty(), "class_of: empty path");
  if (path.size() == 1) return RouteClass::Self;
  // Sibling links are transparent: the first non-sibling link on the path
  // determines the class; an all-sibling path counts as a customer route.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    switch (graph_->relationship(path[i], path[i + 1])) {
      case topo::Relationship::Customer: return RouteClass::Customer;
      case topo::Relationship::Peer: return RouteClass::Peer;
      case topo::Relationship::Provider: return RouteClass::Provider;
      case topo::Relationship::Sibling: continue;
    }
  }
  return RouteClass::Customer;
}

std::optional<Path> MiroConvergenceModel::advertised(NodeId owner,
                                                     NodeId destination,
                                                     NodeId to) const {
  const LayeredRoute& lr = route(owner, destination);
  std::optional<Path> exported;
  switch (guideline_at(owner)) {
    case Guideline::None:
    case Guideline::StrictOnly:
      // Tunnels may freely serve as BGP routes.
      exported = lr.effective();
      break;
    case Guideline::B:
      exported = lr.bgp;  // tunnels are never advertised as BGP paths
      break;
    case Guideline::C:
      // Tunnels advertised as BGP routes only to leaf (stub) ASes.
      exported = graph_->is_stub(to) ? lr.effective() : lr.bgp;
      break;
    case Guideline::D:
    case Guideline::E:
      // A tunnel is exported only when it is in the same class as the
      // advertised BGP route.
      if (lr.tunnel && lr.bgp &&
          class_of(*lr.tunnel) == class_of(*lr.bgp)) {
        exported = lr.tunnel;
      } else {
        exported = lr.bgp;
      }
      break;
  }
  if (!exported) return std::nullopt;
  // Conventional export rule, on the class of the exported route at `owner`.
  const RouteClass cls = class_of(*exported);
  if (!bgp::conventional_export_allows(cls, graph_->relationship(owner, to)))
    return std::nullopt;
  return exported;
}

std::optional<Path> MiroConvergenceModel::select_bgp(
    NodeId node, NodeId destination) const {
  if (node == destination) return Path{destination};
  std::optional<Path> best;
  std::optional<RouteClass> best_class;
  for (const topo::Neighbor& n : graph_->neighbors(node)) {
    std::optional<Path> offered = advertised(n.node, destination, node);
    if (!offered) continue;
    if (std::find(offered->begin(), offered->end(), node) != offered->end())
      continue;  // loop rejection
    Path candidate;
    candidate.reserve(offered->size() + 1);
    candidate.push_back(node);
    candidate.insert(candidate.end(), offered->begin(), offered->end());
    const RouteClass cls = class_of(candidate);
    if (!best) {
      best = std::move(candidate);
      best_class = cls;
      continue;
    }
    // Guideline A preference: class rank, then length, then next-hop ASN.
    const int r_new = bgp::rank(cls);
    const int r_old = bgp::rank(*best_class);
    bool better = false;
    if (r_new != r_old) {
      better = r_new < r_old;
    } else if (candidate.size() != best->size()) {
      better = candidate.size() < best->size();
    } else {
      better = graph_->as_number(candidate[1]) <
               graph_->as_number((*best)[1]);
    }
    if (better) {
      best = std::move(candidate);
      best_class = cls;
    }
  }
  return best;
}

std::optional<Path> MiroConvergenceModel::select_tunnel(
    NodeId node, NodeId destination) const {
  for (const TunnelSpec& spec : options_.tunnels) {
    if (spec.requester != node || spec.destination != destination) continue;
    const NodeId responder = spec.responder;

    // --- Carrier: how the requester reaches the responder. ---
    std::optional<Path> carrier;
    const bool responder_is_prefix =
        destination_index_.find(responder) != destination_index_.end();
    if (responder_is_prefix) {
      const LayeredRoute& to_responder = route(node, responder);
      switch (guideline_at(node)) {
        case Guideline::None:
        case Guideline::StrictOnly:
        case Guideline::D:
          carrier = to_responder.effective();
          break;
        case Guideline::B:
        case Guideline::C:
          // Tunnels ride only on pure BGP routes.
          carrier = to_responder.bgp;
          break;
        case Guideline::E:
          // The carrier must not contain one of the speaker's own tunnels.
          if (to_responder.tunnel) continue;
          carrier = to_responder.bgp;
          break;
      }
    } else if (graph_->has_edge(node, responder)) {
      carrier = Path{node, responder};
    }
    if (!carrier || carrier->back() != responder) continue;

    // --- Offer: what the responder provides for the destination. ---
    if (responder == destination) continue;
    const LayeredRoute& at_responder = route(responder, destination);
    std::optional<Path> offered;
    switch (guideline_at(responder)) {
      case Guideline::None:
        offered = at_responder.effective();
        break;
      case Guideline::B:
      case Guideline::C:
        offered = at_responder.bgp;  // tunnels built over pure BGP routes
        break;
      case Guideline::StrictOnly:
      case Guideline::D:
      case Guideline::E: {
        // Strict policy: the responder only offers routes in the same class
        // as its advertised BGP route.
        offered = at_responder.effective();
        if (!offered || !at_responder.bgp) break;
        if (class_of(*offered) != class_of(*at_responder.bgp))
          offered = at_responder.bgp;
        break;
      }
    }
    if (!offered || offered->front() != responder) continue;

    // --- Assemble and validate the tunnel path. ---
    Path path = *carrier;
    path.insert(path.end(), offered->begin() + 1, offered->end());
    // Reject repeated ASes: encapsulation makes loops technically legal
    // (Section 7.1.1), but the gadget analysis and the requesters here never
    // accept them ("paths with too many redundant ASes are unlikely").
    {
      Path sorted = path;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
        continue;
    }
    if (spec.required_path && path != *spec.required_path) continue;

    // Guideline D: the per-AS strict partial order gates tunnel preference.
    if (guideline_at(node) == Guideline::D &&
        !options_.partial_order(node, responder, destination))
      continue;

    // Guideline E (Banker's-style local check): refuse a tunnel whose
    // establishment would invalidate one of the speaker's existing tunnels —
    // any own tunnel riding on the route toward `destination`.
    if (guideline_at(node) == Guideline::E) {
      bool would_invalidate = false;
      for (const TunnelSpec& other : options_.tunnels) {
        if (other.requester != node || other.destination == destination)
          continue;
        if (other.responder == destination &&
            route(node, other.destination).tunnel) {
          would_invalidate = true;
          break;
        }
      }
      if (would_invalidate) continue;
    }
    return path;
  }
  return std::nullopt;
}

bool MiroConvergenceModel::activate(NodeId node, NodeId destination) {
  LayeredRoute next;
  next.bgp = select_bgp(node, destination);
  next.tunnel = select_tunnel(node, destination);
  LayeredRoute& current = state_[index_of(node, destination)];
  const bool changed = next.bgp != current.bgp || next.tunnel != current.tunnel;
  if (changed) current = std::move(next);
  return changed;
}

bool MiroConvergenceModel::activate(NodeId node) {
  bool changed = false;
  for (NodeId dest : destinations_)
    changed = activate(node, dest) || changed;
  return changed;
}

bool MiroConvergenceModel::is_stable() {
  // A state is stable iff activating any speaker is a no-op; probing must
  // not mutate, so compute selections without applying.
  for (NodeId node = 0; node < graph_->node_count(); ++node) {
    for (NodeId dest : destinations_) {
      const LayeredRoute& current = state_[index_of(node, dest)];
      if (select_bgp(node, dest) != current.bgp) return false;
      if (select_tunnel(node, dest) != current.tunnel) return false;
    }
  }
  return true;
}

std::uint64_t MiroConvergenceModel::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const LayeredRoute& lr : state_) {
    h = hash_combine(h, lr.bgp ? lr.bgp->size() + 1 : 0);
    if (lr.bgp)
      for (NodeId n : *lr.bgp) h = hash_combine(h, n);
    h = hash_combine(h, lr.tunnel ? lr.tunnel->size() + 1 : 0);
    if (lr.tunnel)
      for (NodeId n : *lr.tunnel) h = hash_combine(h, n);
  }
  return h;
}

MiroConvergenceModel::RunResult MiroConvergenceModel::run_round_robin(
    std::size_t max_sweeps) {
  RunResult result;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(fingerprint());
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (NodeId node = 0; node < graph_->node_count(); ++node) {
      changed = activate(node) || changed;
      ++result.activations;
    }
    if (!changed) {
      result.converged = true;
      return result;
    }
    if (!seen.insert(fingerprint()).second) {
      // The same global state recurred under a deterministic schedule:
      // the system will oscillate forever.
      result.cycle_detected = true;
      return result;
    }
  }
  return result;
}

MiroConvergenceModel::RunResult MiroConvergenceModel::run_random(
    Rng& rng, std::size_t max_activations) {
  RunResult result;
  std::size_t quiet = 0;
  while (result.activations < max_activations) {
    const NodeId node =
        static_cast<NodeId>(rng.next_below(graph_->node_count()));
    ++result.activations;
    if (activate(node)) {
      quiet = 0;
    } else if (++quiet >= graph_->node_count() * 3 && is_stable()) {
      result.converged = true;
      return result;
    }
  }
  result.converged = is_stable();
  return result;
}

MiroConvergenceModel::RunResult MiroConvergenceModel::run_schedule(
    std::span<const NodeId> schedule, std::size_t rounds) {
  RunResult result;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(fingerprint());
  for (std::size_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (NodeId node : schedule) {
      changed = activate(node) || changed;
      ++result.activations;
    }
    if (!changed) {
      result.converged = true;
      return result;
    }
    if (!seen.insert(fingerprint()).second) {
      result.cycle_detected = true;
      return result;
    }
  }
  return result;
}

}  // namespace miro::conv
