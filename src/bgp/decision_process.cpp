#include "bgp/decision_process.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::bgp {
namespace {

using Survivors = std::vector<std::size_t>;

template <typename Key>
void keep_minimal(std::span<const RouterRoute> candidates,
                  Survivors& survivors, Key&& key) {
  auto best = key(candidates[survivors.front()]);
  for (std::size_t i : survivors) best = std::min(best, key(candidates[i]));
  Survivors kept;
  for (std::size_t i : survivors)
    if (key(candidates[i]) == best) kept.push_back(i);
  survivors = std::move(kept);
}

}  // namespace

DecisionResult decide(std::span<const RouterRoute> candidates) {
  require(!candidates.empty(), "decide: empty candidate set");
  Survivors survivors(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) survivors[i] = i;
  if (survivors.size() == 1) return {survivors.front(), 0};

  auto finished = [&](int step) -> std::optional<DecisionResult> {
    if (survivors.size() == 1) return DecisionResult{survivors.front(), step};
    return std::nullopt;
  };

  // 1. Highest local preference.
  keep_minimal(candidates, survivors,
               [](const RouterRoute& r) { return -r.local_pref; });
  if (auto done = finished(1)) return *done;

  // 2. Shortest AS path.
  keep_minimal(candidates, survivors,
               [](const RouterRoute& r) { return r.as_path.size(); });
  if (auto done = finished(2)) return *done;

  // 3. Lowest origin type.
  keep_minimal(candidates, survivors, [](const RouterRoute& r) {
    return static_cast<int>(r.origin);
  });
  if (auto done = finished(3)) return *done;

  // 4. Lowest MED within the same next-hop AS (deterministic MED):
  // for each next-hop-AS group, eliminate members above the group minimum.
  {
    Survivors kept;
    for (std::size_t i : survivors) {
      const auto next_as = candidates[i].as_path.empty()
                               ? topo::AsNumber{0}
                               : candidates[i].as_path.front();
      int group_min = candidates[i].med;
      for (std::size_t j : survivors) {
        const auto other_as = candidates[j].as_path.empty()
                                  ? topo::AsNumber{0}
                                  : candidates[j].as_path.front();
        if (other_as == next_as) group_min = std::min(group_min,
                                                      candidates[j].med);
      }
      if (candidates[i].med == group_min) kept.push_back(i);
    }
    survivors = std::move(kept);
  }
  if (auto done = finished(4)) return *done;

  // 5. Prefer eBGP-learned over iBGP-learned.
  keep_minimal(candidates, survivors, [](const RouterRoute& r) {
    return r.learned_via_ebgp ? 0 : 1;
  });
  if (auto done = finished(5)) return *done;

  // 6. Lowest IGP distance to the egress point.
  keep_minimal(candidates, survivors, [](const RouterRoute& r) {
    return r.igp_distance_to_egress;
  });
  if (auto done = finished(6)) return *done;

  // 7. Lowest advertising router id.
  keep_minimal(candidates, survivors, [](const RouterRoute& r) {
    return r.advertising_router_id;
  });
  if (auto done = finished(7)) return *done;

  // 8. Lowest peer interface address.
  keep_minimal(candidates, survivors, [](const RouterRoute& r) {
    return r.peer_address.value();
  });
  return {survivors.front(), 8};
}

}  // namespace miro::bgp
