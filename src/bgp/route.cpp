#include "bgp/route.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::bgp {

const char* to_string(RouteClass cls) {
  switch (cls) {
    case RouteClass::Self: return "self";
    case RouteClass::Customer: return "customer";
    case RouteClass::Peer: return "peer";
    case RouteClass::Provider: return "provider";
  }
  return "?";
}

RouteClass classify(Relationship neighbor_rel, RouteClass class_at_neighbor) {
  switch (neighbor_rel) {
    case Relationship::Customer:
      return RouteClass::Customer;
    case Relationship::Peer:
      return RouteClass::Peer;
    case Relationship::Provider:
      return RouteClass::Provider;
    case Relationship::Sibling:
      // Transparent: keep looking past the sibling link. A chain of only
      // sibling links back to the origin classifies as a customer route
      // (Section 2.2.1's approximation).
      return class_at_neighbor == RouteClass::Self ? RouteClass::Customer
                                                   : class_at_neighbor;
  }
  return RouteClass::Provider;
}

bool conventional_export_allows(RouteClass cls, Relationship neighbor_rel) {
  switch (neighbor_rel) {
    case Relationship::Customer:
    case Relationship::Sibling:
      return true;
    case Relationship::Peer:
    case Relationship::Provider:
      return cls == RouteClass::Self || cls == RouteClass::Customer;
  }
  return false;
}

bool Route::traverses(NodeId node) const {
  return std::find(path.begin(), path.end(), node) != path.end();
}

std::string Route::to_string(const AsGraph& graph) const {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(graph.as_number(path[i]));
  }
  return out;
}

bool prefer(const Route& a, const Route& b, const AsGraph& graph) {
  require(!a.path.empty() && !b.path.empty(), "prefer: empty route");
  require(a.owner() == b.owner(), "prefer: routes have different owners");
  if (rank(a.route_class) != rank(b.route_class))
    return rank(a.route_class) < rank(b.route_class);
  if (a.length() != b.length()) return a.length() < b.length();
  const AsNumber next_a = graph.as_number(a.next_hop());
  const AsNumber next_b = graph.as_number(b.next_hop());
  if (next_a != next_b) return next_a < next_b;
  return a.path < b.path;  // total order fallback
}

}  // namespace miro::bgp
