#include "bgp/path_vector_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/profile.hpp"

namespace miro::bgp {

PathVectorEngine::PathVectorEngine(const AsGraph& graph, NodeId destination,
                                   PolicyHooks hooks)
    : graph_(&graph), destination_(destination), hooks_(std::move(hooks)),
      best_(graph.node_count()) {
  require(destination < graph.node_count(),
          "PathVectorEngine: destination out of range");
  if (!hooks_.exports) {
    const AsGraph* g = graph_;
    hooks_.exports = [g](NodeId owner, const Route& route, NodeId neighbor) {
      return conventional_export_allows(route.route_class,
                                        g->relationship(owner, neighbor));
    };
  }
  if (!hooks_.imports) {
    hooks_.imports = [](const Route&) { return true; };
  }
  if (!hooks_.prefers) {
    const AsGraph* g = graph_;
    hooks_.prefers = [g](const Route& a, const Route& b) {
      return prefer(a, b, *g);
    };
  }
  // The destination's own route is fixed: the null AS path (Section 7.1.2).
  best_[destination_] = Route{{destination_}, RouteClass::Self};
}

std::optional<Route> PathVectorEngine::select(NodeId node) const {
  if (node == destination_)
    return Route{{destination_}, RouteClass::Self};
  std::optional<Route> chosen;
  for (const topo::Neighbor& n : graph_->neighbors(node)) {
    const std::optional<Route>& neighbor_best = best_[n.node];
    if (!neighbor_best) continue;
    if (!hooks_.exports(n.node, *neighbor_best, node)) continue;
    if (neighbor_best->traverses(node)) continue;  // implicit import policy
    Route candidate;
    candidate.path.reserve(neighbor_best->path.size() + 1);
    candidate.path.push_back(node);
    candidate.path.insert(candidate.path.end(), neighbor_best->path.begin(),
                          neighbor_best->path.end());
    candidate.route_class = classify(n.rel, neighbor_best->route_class);
    if (!hooks_.imports(candidate)) continue;
    if (!chosen || hooks_.prefers(candidate, *chosen))
      chosen = std::move(candidate);
  }
  return chosen;
}

void PathVectorEngine::trace_change(NodeId node,
                                    const std::optional<Route>& next) {
  if (trace_ == nullptr) return;
  if (next) {
    trace_->record({activations_, obs::EventType::BgpRouteSelected, node,
                    destination_, 0, 0,
                    static_cast<std::int64_t>(next->path.size()), ""});
  } else {
    trace_->record(
        {activations_, obs::EventType::BgpRouteWithdrawn, node, destination_});
  }
}

bool PathVectorEngine::activate(NodeId node) {
  ++activations_;
  std::optional<Route> next = select(node);
  const bool changed = !(next.has_value() == best_[node].has_value() &&
                         (!next || next->path == best_[node]->path));
  if (changed) {
    trace_change(node, next);
    best_[node] = std::move(next);
  }
  return changed;
}

std::optional<std::size_t> PathVectorEngine::run_to_stable(
    std::size_t max_sweeps) {
  obs::ScopedSpan span(obs::profile(), "bgp/run_to_stable", "bgp");
  std::size_t activations = 0;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool any_change = false;
    for (NodeId node = 0; node < graph_->node_count(); ++node) {
      any_change = activate(node) || any_change;
      ++activations;
    }
    if (!any_change) return activations;
  }
  return std::nullopt;
}

bool PathVectorEngine::step_synchronous() {
  std::vector<std::optional<Route>> next(best_.size());
  for (NodeId node = 0; node < graph_->node_count(); ++node)
    next[node] = select(node);
  ++activations_;  // one synchronous step = one trace timestamp
  bool changed = false;
  for (NodeId node = 0; node < graph_->node_count(); ++node) {
    const bool same = next[node].has_value() == best_[node].has_value() &&
                      (!next[node] || next[node]->path == best_[node]->path);
    if (!same) {
      changed = true;
      trace_change(node, next[node]);
    }
  }
  best_ = std::move(next);
  return changed;
}

std::optional<std::size_t> PathVectorEngine::run_random(
    Rng& rng, std::size_t max_activations) {
  obs::ScopedSpan span(obs::profile(), "bgp/run_random", "bgp");
  const std::size_t n = graph_->node_count();
  std::size_t quiet_streak = 0;
  for (std::size_t step = 0; step < max_activations; ++step) {
    NodeId node = static_cast<NodeId>(rng.next_below(n));
    if (activate(node)) {
      quiet_streak = 0;
    } else if (++quiet_streak >= n * 4 && is_stable()) {
      // Heuristic check interval, then an exact stability test.
      return step + 1;
    }
  }
  return is_stable() ? std::optional<std::size_t>{max_activations}
                     : std::nullopt;
}

bool PathVectorEngine::is_stable() {
  for (NodeId node = 0; node < graph_->node_count(); ++node) {
    std::optional<Route> next = select(node);
    const bool same = next.has_value() == best_[node].has_value() &&
                      (!next || next->path == best_[node]->path);
    if (!same) return false;
  }
  return true;
}

const Route& PathVectorEngine::best(NodeId node) const {
  require(best_[node].has_value(), "PathVectorEngine::best: no route");
  return *best_[node];
}

std::vector<Route> PathVectorEngine::candidates(NodeId node) const {
  std::vector<Route> out;
  for (const topo::Neighbor& n : graph_->neighbors(node)) {
    const std::optional<Route>& neighbor_best = best_[n.node];
    if (!neighbor_best) continue;
    if (!hooks_.exports(n.node, *neighbor_best, node)) continue;
    if (neighbor_best->traverses(node)) continue;
    Route candidate;
    candidate.path.push_back(node);
    candidate.path.insert(candidate.path.end(), neighbor_best->path.begin(),
                          neighbor_best->path.end());
    candidate.route_class = classify(n.rel, neighbor_best->route_class);
    if (!hooks_.imports(candidate)) continue;
    out.push_back(std::move(candidate));
  }
  std::sort(out.begin(), out.end(), [this](const Route& a, const Route& b) {
    return hooks_.prefers(a, b);
  });
  return out;
}

}  // namespace miro::bgp
