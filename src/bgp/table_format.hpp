// BGP-table rendering in the classic "show ip bgp" style of Table 1.1:
//
//   |    | IP Prefix       | Next Hop       | AS Path             |
//   | *  | 128.112.0.0/16  | 198.32.8.196   | 11537 10466 88      |
//   | *> |                 | 205.189.32.44  | 6509 11537 10466 88 |
//
// Candidate entries are flagged '*', the selected best path '*>'. Used by
// the examples and handy when debugging policies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/route.hpp"
#include "net/address.hpp"

namespace miro::bgp {

/// One displayable table entry.
struct BgpTableEntry {
  net::Prefix prefix;
  net::Ipv4Address next_hop;
  std::vector<topo::AsNumber> as_path;  ///< received AS_PATH (no local AS)
  bool best = false;
};

/// Renders entries grouped by prefix; within a group the prefix cell is
/// printed only on the first row, as routers do.
void print_bgp_table(const std::vector<BgpTableEntry>& entries,
                     std::ostream& out);

/// Builds the displayable entries for `node`'s candidate routes toward one
/// destination under the stable state: one row per candidate, the currently
/// selected route flagged best. `prefix` and the per-AS next-hop addressing
/// follow the synthetic scheme of AsLevelDataPlane (ASN<<16 /16, host .0.1).
class RoutingTree;
class StableRouteSolver;
std::vector<BgpTableEntry> bgp_table_for(const StableRouteSolver& solver,
                                         const RoutingTree& tree,
                                         topo::NodeId node);

}  // namespace miro::bgp
