// The router-level BGP best-path selection process (Table 2.1).
//
// Within an AS, different routers can select different AS paths for the same
// prefix because later tie-breaking steps (eBGP-over-iBGP, IGP distance,
// router id, peer address) depend on where the router sits. MIRO's intra-AS
// architecture (Section 4.1) builds on exactly this behaviour, so the full
// eight-step process is implemented here and exercised by the Figure 4.1
// scenario in the tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/address.hpp"
#include "topology/as_graph.hpp"

namespace miro::bgp {

/// BGP origin attribute; lower is preferred (step 3).
enum class Origin : std::uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

/// A candidate route as seen by one router inside an AS.
struct RouterRoute {
  std::vector<topo::AsNumber> as_path;
  int local_pref = 100;
  Origin origin = Origin::Igp;
  int med = 0;                     ///< Multi-Exit Discriminator (step 4)
  bool learned_via_ebgp = true;    ///< step 5
  int igp_distance_to_egress = 0;  ///< step 6
  std::uint32_t advertising_router_id = 0;  ///< step 7
  net::Ipv4Address peer_address;            ///< step 8
  std::uint32_t egress_router = 0;  ///< which router in this AS exits
};

/// Result of the selection: which candidate won and the 1-based step of
/// Table 2.1 that decided (0 when there was a single candidate).
struct DecisionResult {
  std::size_t best_index = 0;
  int deciding_step = 0;
};

/// Runs the eight elimination steps over a non-empty candidate set.
/// Step 4 (MED) is compared only among routes whose next-hop AS matches,
/// using deterministic-MED group elimination.
DecisionResult decide(std::span<const RouterRoute> candidates);

}  // namespace miro::bgp
