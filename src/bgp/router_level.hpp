// Intra-AS routing architecture (Section 4.1, Figure 4.1).
//
// A large AS has multiple routers: edge routers hold eBGP sessions to
// neighboring ASes and redistribute what they learn over an iBGP full mesh.
// Each router runs the Table 2.1 decision process independently, so two
// routers can stick to *different* AS paths for the same prefix (the R2/R3
// situation of Figure 4.1). MIRO exploits this: an AS may advertise any valid
// AS path available at any of its edge routers, not just the per-router best.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bgp/decision_process.hpp"

namespace miro::bgp {

/// One AS's internal routing state for a single destination prefix.
class RouterLevelAs {
 public:
  using RouterId = std::uint32_t;
  static constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;

  /// Adds a router; `router_id` doubles as the BGP router id (step 7).
  RouterId add_router(net::Ipv4Address loopback);

  /// Adds a bidirectional internal link with an IGP weight.
  void add_internal_link(RouterId a, RouterId b, int igp_weight);

  /// Registers an eBGP-learned route at edge router `at`. `peer_address` is
  /// the remote interface (step 8); med/origin/local_pref as received and
  /// import-processed.
  void inject_ebgp_route(RouterId at, topo::AsNumber neighbor_as,
                         net::Ipv4Address peer_address,
                         std::vector<topo::AsNumber> as_path, int local_pref,
                         int med = 0, Origin origin = Origin::Igp);

  /// Runs iBGP exchange to a fixed point: every router repeatedly re-runs the
  /// decision process over its eBGP-learned routes plus every other router's
  /// currently selected route (full mesh), until no selection changes.
  /// Throws after `max_sweeps` sweeps (iBGP with full mesh and deterministic
  /// MED always converges in practice; the bound is a safety net).
  void converge(std::size_t max_sweeps = 64);

  /// The route router `r` selected; nullopt when it has none.
  /// Valid after converge().
  std::optional<RouterRoute> selected(RouterId r) const;

  /// Every distinct valid AS path known anywhere in the AS — the pool MIRO
  /// may advertise ("an AS is allowed to advertise any valid AS paths on any
  /// of its edge routers", Section 4.1). Sorted deterministically.
  std::vector<RouterRoute> all_valid_paths() const;

  /// Shortest IGP distance between two routers (Dijkstra over link weights);
  /// kUnreachable when disconnected.
  int igp_distance(RouterId from, RouterId to) const;

  std::size_t router_count() const { return routers_.size(); }
  net::Ipv4Address loopback(RouterId r) const { return routers_[r].loopback; }

 private:
  struct InternalLink {
    RouterId to;
    int weight;
  };
  struct RouterState {
    net::Ipv4Address loopback;
    std::vector<InternalLink> links;
    std::vector<RouterRoute> ebgp_routes;     // learned on this router
    std::optional<RouterRoute> selection;     // current best
  };

  std::vector<RouterState> routers_;
};

}  // namespace miro::bgp
