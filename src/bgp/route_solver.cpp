#include "bgp/route_solver.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "obs/profile.hpp"

namespace miro::bgp {

RoutingTree::RoutingTree(const AsGraph& graph, NodeId destination,
                         Arena* arena)
    : graph_(&graph), destination_(destination),
      entries_(graph.node_count(), Entry{}, ArenaAllocator<Entry>(arena)) {}

std::vector<NodeId> RoutingTree::path_of(NodeId node) const {
  std::vector<NodeId> path;
  if (!entries_[node].reachable) return path;
  NodeId current = node;
  path.push_back(current);
  while (current != destination_) {
    current = entries_[current].next_hop;
    path.push_back(current);
    require(path.size() <= entries_.size(), "RoutingTree: next-hop loop");
  }
  return path;
}

Route RoutingTree::route_of(NodeId node) const {
  require(entries_[node].reachable, "RoutingTree::route_of: unreachable node");
  return Route{path_of(node), entries_[node].cls};
}

NodeId RoutingTree::ingress_neighbor(NodeId node) const {
  if (!entries_[node].reachable || node == destination_)
    return topo::kInvalidNode;
  NodeId current = node;
  std::size_t steps = 0;
  while (entries_[current].next_hop != destination_) {
    current = entries_[current].next_hop;
    require(++steps <= entries_.size(), "RoutingTree: next-hop loop");
  }
  return current;
}

std::size_t RoutingTree::reachable_count() const {
  std::size_t count = 0;
  for (const Entry& e : entries_)
    if (e.reachable) ++count;
  return count;
}

namespace {

/// Priority-queue item; ordered so that the globally most-preferred
/// tentative route pops first. For equal (class, length) the lowest
/// next-hop AS number wins, making the stable state deterministic.
struct QueueItem {
  int class_rank;
  std::uint32_t length;
  AsNumber next_hop_asn;
  NodeId node;
  NodeId next_hop;
  RouteClass cls;

  bool operator>(const QueueItem& other) const {
    if (class_rank != other.class_rank) return class_rank > other.class_rank;
    if (length != other.length) return length > other.length;
    if (next_hop_asn != other.next_hop_asn)
      return next_hop_asn > other.next_hop_asn;
    return node > other.node;  // arbitrary stable tie-break
  }
};

}  // namespace

RoutingTree StableRouteSolver::run(NodeId destination, const PinnedRoute* pin,
                                   const OriginPrepend* prepend,
                                   NodeId exclude, Arena* arena) const {
  obs::ScopedSpan span(obs::profile(), "bgp/solve_tree", "bgp");
  const AsGraph& graph = *graph_;
  require(destination < graph.node_count(),
          "StableRouteSolver: destination out of range");
  RoutingTree tree(graph, destination, arena);

  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue;
  queue.push({rank(RouteClass::Self), 0, graph.as_number(destination),
              destination, destination, RouteClass::Self});

  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (tree.entries_[item.node].reachable) continue;  // already finalized
    if (pin != nullptr && item.node == pin->node &&
        item.next_hop != pin->forced_next_hop) {
      continue;  // the pinned AS may only use its negotiated next hop
    }
    RoutingTree::Entry& entry = tree.entries_[item.node];
    entry.reachable = true;
    entry.next_hop = item.next_hop;
    entry.length = item.length;
    entry.cls = item.cls;

    // Export the newly finalized route to every neighbor the conventional
    // policy permits; the neighbor classifies it by the link it arrives on.
    for (const topo::Neighbor& n : graph.neighbors(item.node)) {
      if (n.node == exclude) continue;  // the excised AS never selects
      if (tree.entries_[n.node].reachable) continue;
      // n.rel: what the neighbor is *to item.node* — exactly the argument
      // the export rule takes.
      if (!conventional_export_allows(item.cls, n.rel)) continue;
      // At the receiving side, item.node is reverse(n.rel) to the neighbor.
      const RouteClass cls_at_neighbor =
          classify(topo::reverse(n.rel), item.cls);
      // Origin prepending pads the advertised path toward one neighbor.
      const std::uint32_t padding =
          (prepend != nullptr && item.node == destination &&
           n.node == prepend->neighbor)
              ? prepend->extra
              : 0;
      queue.push({rank(cls_at_neighbor), item.length + 1 + padding,
                  graph.as_number(item.node), n.node, item.node,
                  cls_at_neighbor});
    }
  }
  return tree;
}

RoutingTree StableRouteSolver::solve(NodeId destination, Arena* arena) const {
  return run(destination, nullptr, nullptr, topo::kInvalidNode, arena);
}

RoutingTree StableRouteSolver::solve_pinned(NodeId destination,
                                            const PinnedRoute& pin) const {
  require(pin.node != topo::kInvalidNode &&
              pin.forced_next_hop != topo::kInvalidNode,
          "solve_pinned: invalid pin");
  require(graph_->has_edge(pin.node, pin.forced_next_hop),
          "solve_pinned: forced next hop is not a neighbor");
  return run(destination, &pin, nullptr);
}

RoutingTree StableRouteSolver::solve_prepended(
    NodeId destination, const OriginPrepend& prepend) const {
  require(graph_->has_edge(destination, prepend.neighbor),
          "solve_prepended: prepend neighbor is not adjacent");
  return run(destination, nullptr, &prepend);
}

RoutingTree StableRouteSolver::solve_avoiding(NodeId destination,
                                              NodeId avoid) const {
  require(avoid != topo::kInvalidNode && avoid != destination,
          "solve_avoiding: cannot avoid the destination");
  return run(destination, nullptr, nullptr, avoid);
}

std::vector<Route> StableRouteSolver::candidates_at(const RoutingTree& tree,
                                                    NodeId node) const {
  const AsGraph& graph = *graph_;
  std::vector<Route> candidates;
  if (node == tree.destination()) return candidates;
  for (const topo::Neighbor& n : graph.neighbors(node)) {
    if (!tree.reachable(n.node)) continue;
    const RouteClass neighbor_cls = tree.route_class(n.node);
    // The neighbor's export policy: `node` is reverse(n.rel) to the neighbor.
    if (!conventional_export_allows(neighbor_cls, topo::reverse(n.rel)))
      continue;
    std::vector<NodeId> neighbor_path = tree.path_of(n.node);
    if (std::find(neighbor_path.begin(), neighbor_path.end(), node) !=
        neighbor_path.end())
      continue;  // implicit import policy: drop looping paths
    Route route;
    route.path.reserve(neighbor_path.size() + 1);
    route.path.push_back(node);
    route.path.insert(route.path.end(), neighbor_path.begin(),
                      neighbor_path.end());
    route.route_class = classify(n.rel, neighbor_cls);
    candidates.push_back(std::move(route));
  }
  // Deterministic order: best first.
  std::sort(candidates.begin(), candidates.end(),
            [&graph](const Route& a, const Route& b) {
              return prefer(a, b, graph);
            });
  return candidates;
}

}  // namespace miro::bgp
