#include "bgp/router_level.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace miro::bgp {

RouterLevelAs::RouterId RouterLevelAs::add_router(net::Ipv4Address loopback) {
  routers_.push_back(RouterState{loopback, {}, {}, std::nullopt});
  return static_cast<RouterId>(routers_.size() - 1);
}

void RouterLevelAs::add_internal_link(RouterId a, RouterId b, int igp_weight) {
  require(a < routers_.size() && b < routers_.size(),
          "RouterLevelAs: router id out of range");
  require(a != b, "RouterLevelAs: self links are not allowed");
  require(igp_weight > 0, "RouterLevelAs: IGP weight must be positive");
  routers_[a].links.push_back({b, igp_weight});
  routers_[b].links.push_back({a, igp_weight});
}

void RouterLevelAs::inject_ebgp_route(RouterId at, topo::AsNumber neighbor_as,
                                      net::Ipv4Address peer_address,
                                      std::vector<topo::AsNumber> as_path,
                                      int local_pref, int med, Origin origin) {
  require(at < routers_.size(), "RouterLevelAs: router id out of range");
  require(!as_path.empty() && as_path.front() == neighbor_as,
          "RouterLevelAs: AS path must start with the neighbor AS");
  RouterRoute route;
  route.as_path = std::move(as_path);
  route.local_pref = local_pref;
  route.origin = origin;
  route.med = med;
  route.learned_via_ebgp = true;
  route.igp_distance_to_egress = 0;
  route.advertising_router_id = at;
  route.peer_address = peer_address;
  route.egress_router = at;
  routers_[at].ebgp_routes.push_back(std::move(route));
}

int RouterLevelAs::igp_distance(RouterId from, RouterId to) const {
  require(from < routers_.size() && to < routers_.size(),
          "RouterLevelAs: router id out of range");
  if (from == to) return 0;
  std::vector<int> distance(routers_.size(), kUnreachable);
  using Item = std::pair<int, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  distance[from] = 0;
  queue.push({0, from});
  while (!queue.empty()) {
    auto [d, r] = queue.top();
    queue.pop();
    if (d > distance[r]) continue;
    if (r == to) return d;
    for (const InternalLink& link : routers_[r].links) {
      if (d + link.weight < distance[link.to]) {
        distance[link.to] = d + link.weight;
        queue.push({distance[link.to], link.to});
      }
    }
  }
  return kUnreachable;
}

void RouterLevelAs::converge(std::size_t max_sweeps) {
  // Precompute pairwise IGP distances once per convergence run.
  const std::size_t n = routers_.size();
  std::vector<std::vector<int>> dist(n);
  for (RouterId r = 0; r < n; ++r) {
    dist[r].resize(n);
    for (RouterId s = 0; s < n; ++s) dist[r][s] = igp_distance(r, s);
  }

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool changed = false;
    for (RouterId r = 0; r < n; ++r) {
      // Candidates: own eBGP routes plus iBGP copies of other routers'
      // current selections (re-advertising iBGP-learned routes over iBGP is
      // not allowed in a full mesh, which is what "other routers' selected
      // eBGP routes" models).
      std::vector<RouterRoute> candidates = routers_[r].ebgp_routes;
      for (RouterId s = 0; s < n; ++s) {
        if (s == r || !routers_[s].selection) continue;
        const RouterRoute& sel = *routers_[s].selection;
        if (!sel.learned_via_ebgp) continue;  // no iBGP re-advertisement
        RouterRoute copy = sel;
        copy.learned_via_ebgp = false;
        copy.igp_distance_to_egress = dist[r][sel.egress_router];
        if (copy.igp_distance_to_egress >= kUnreachable) continue;
        candidates.push_back(std::move(copy));
      }
      std::optional<RouterRoute> next;
      if (!candidates.empty())
        next = candidates[decide(candidates).best_index];
      const bool same =
          next.has_value() == routers_[r].selection.has_value() &&
          (!next || (next->as_path == routers_[r].selection->as_path &&
                     next->egress_router ==
                         routers_[r].selection->egress_router));
      if (!same) {
        routers_[r].selection = std::move(next);
        changed = true;
      }
    }
    if (!changed) return;
  }
  throw Error("RouterLevelAs::converge: no fixed point within sweep budget");
}

std::optional<RouterRoute> RouterLevelAs::selected(RouterId r) const {
  require(r < routers_.size(), "RouterLevelAs: router id out of range");
  return routers_[r].selection;
}

std::vector<RouterRoute> RouterLevelAs::all_valid_paths() const {
  std::vector<RouterRoute> paths;
  for (const RouterState& router : routers_)
    paths.insert(paths.end(), router.ebgp_routes.begin(),
                 router.ebgp_routes.end());
  std::sort(paths.begin(), paths.end(),
            [](const RouterRoute& a, const RouterRoute& b) {
              if (a.as_path != b.as_path) return a.as_path < b.as_path;
              return a.egress_router < b.egress_router;
            });
  // Distinct AS paths only — two routers may have learned the same path.
  paths.erase(std::unique(paths.begin(), paths.end(),
                          [](const RouterRoute& a, const RouterRoute& b) {
                            return a.as_path == b.as_path;
                          }),
              paths.end());
  return paths;
}

}  // namespace miro::bgp
