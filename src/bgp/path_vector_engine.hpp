// Asynchronous path-vector protocol engine.
//
// Implements the activation model of Sections 2.2.3 and 7.1: the system state
// is each speaker's chosen route; *activating* a speaker makes it apply its
// neighbors' export policies to their current choices, run import filtering
// (loop rejection), and re-select its best route. A state is stable when no
// activation changes it. The engine supports arbitrary activation schedules
// (round-robin sweeps, randomized fair sequences, adversarial orders) and
// pluggable export/preference policies so the Griffin-style divergence
// gadgets can be expressed; defaults are the conventional Gao-Rexford
// policies, under which the result provably matches StableRouteSolver.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace miro::bgp {

/// Pluggable policy hooks. All must be deterministic.
struct PolicyHooks {
  /// May `owner` advertise its current best route to `neighbor`?
  /// Default: conventional export rules.
  std::function<bool(NodeId owner, const Route& route, NodeId neighbor)>
      exports;
  /// Explicit import filter: is this candidate a permitted path at its
  /// owner (the SPP notion)? Default: everything loop-free is permitted.
  std::function<bool(const Route& candidate)> imports;
  /// Strict preference between two candidate routes at the same owner.
  /// Default: class rank, then length, then next-hop AS number.
  std::function<bool(const Route& better, const Route& worse)> prefers;
};

class PathVectorEngine {
 public:
  /// One engine instance computes routes toward a single destination prefix
  /// (route aggregation does not affect convergence; Section 7.1.2).
  PathVectorEngine(const AsGraph& graph, NodeId destination,
                   PolicyHooks hooks = {});

  /// Activates one speaker; returns true when its choice changed.
  bool activate(NodeId node);

  /// Round-robin sweeps until one full sweep changes nothing.
  /// Returns the number of activations performed, or nullopt when
  /// `max_sweeps` elapsed without stabilizing (possible divergence).
  std::optional<std::size_t> run_to_stable(std::size_t max_sweeps = 1000);

  /// One synchronous step: every speaker re-selects simultaneously from the
  /// previous state (the schedule under which DISAGREE oscillates forever).
  /// Returns true when any selection changed.
  bool step_synchronous();

  /// Random fair schedule: activates uniformly random speakers, checking for
  /// stability every `graph size` activations. Returns activations used, or
  /// nullopt when the budget elapsed.
  std::optional<std::size_t> run_random(Rng& rng,
                                        std::size_t max_activations);

  /// True when every speaker's activation would be a no-op.
  bool is_stable();

  bool has_route(NodeId node) const { return best_[node].has_value(); }
  const Route& best(NodeId node) const;

  /// The candidate routes `node` would see if activated now (its Adj-RIB-In
  /// under the instant-visibility model), most preferred first.
  std::vector<Route> candidates(NodeId node) const;

  NodeId destination() const { return destination_; }
  const AsGraph& graph() const { return *graph_; }

  /// Attaches (or clears, with nullptr) a trace recorder observing update
  /// propagation: every selection change is recorded as BgpRouteSelected
  /// (value = AS-path length) or BgpRouteWithdrawn. The engine has no
  /// simulated clock, so events are stamped with the activation count.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  /// Total activations performed (the trace timestamp domain).
  std::uint64_t activations() const { return activations_; }

 private:
  std::optional<Route> select(NodeId node) const;
  void trace_change(NodeId node, const std::optional<Route>& next);

  const AsGraph* graph_;
  NodeId destination_;
  PolicyHooks hooks_;
  std::vector<std::optional<Route>> best_;
  obs::TraceRecorder* trace_ = nullptr;
  std::uint64_t activations_ = 0;
};

}  // namespace miro::bgp
