#include "bgp/session_bgp.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "common/memtrack.hpp"

namespace miro::bgp {

SessionedBgpNetwork::SessionedBgpNetwork(const AsGraph& graph,
                                         NodeId destination,
                                         sim::Scheduler& scheduler,
                                         sim::Time link_delay,
                                         ChurnDefenseConfig defense)
    : graph_(&graph), destination_(destination), scheduler_(&scheduler),
      link_delay_(link_delay), defense_(defense),
      speakers_(graph.node_count()) {
  require(destination < graph.node_count(),
          "SessionedBgpNetwork: destination out of range");
  if (defense_.damping_enabled) {
    require(defense_.damping_penalty > 0,
            "SessionedBgpNetwork: damping_penalty must be > 0");
    require(defense_.damping_reuse > 0,
            "SessionedBgpNetwork: damping_reuse must be > 0");
    require(defense_.damping_suppress > defense_.damping_reuse,
            "SessionedBgpNetwork: damping_suppress must exceed damping_reuse");
    require(defense_.damping_ceiling >= defense_.damping_suppress,
            "SessionedBgpNetwork: damping_ceiling below damping_suppress");
    require(defense_.damping_half_life > 0,
            "SessionedBgpNetwork: damping_half_life must be > 0");
  }
  origins_.insert(destination_);
}

const Route& SessionedBgpNetwork::best(NodeId node) const {
  require(speakers_[node].best.has_value(),
          "SessionedBgpNetwork::best: no route");
  return *speakers_[node].best;
}

std::vector<NodeId> SessionedBgpNetwork::path_of(NodeId node) const {
  return speakers_[node].best ? speakers_[node].best->path
                              : std::vector<NodeId>{};
}

void SessionedBgpNetwork::start() {
  require(!started_, "SessionedBgpNetwork::start: already started");
  started_ = true;
  obs::RibEventId root = 0;
  if (ribmon_ != nullptr) {
    root = ribmon_->record_root(scheduler_->now(), destination_, "start");
  }
  obs::RibMonitor::CauseScope scope(ribmon_, root);
  reselect(destination_);  // announces to every neighbor
}

void SessionedBgpNetwork::send(NodeId from, NodeId to,
                               std::vector<NodeId> path_at_sender,
                               bool replaces) {
  if (path_at_sender.empty()) {
    ++stats_.withdrawals_sent;
  } else {
    ++stats_.updates_sent;
  }
  obs::RibEventId sent_id = 0;
  if (ribmon_ != nullptr) {
    const obs::RibEventKind kind =
        path_at_sender.empty()
            ? obs::RibEventKind::Withdraw
            : (replaces ? obs::RibEventKind::ImplicitWithdraw
                        : obs::RibEventKind::Announce);
    sent_id = ribmon_->record(
        scheduler_->now(), kind, from, to, destination_,
        static_cast<std::uint32_t>(path_at_sender.size()));
  }
  ++messages_in_flight_;
  scheduler_->after(link_delay_, [this, from, to, sent_id,
                                  path = std::move(path_at_sender)]() {
    --messages_in_flight_;
    // A message in flight across a link that failed meanwhile is lost; the
    // session-down handling already flushed the receiver's state.
    if (!link_up(from, to)) {
      ++stats_.lost_in_flight;
      if (ribmon_ != nullptr) {
        obs::RibMonitor::CauseScope loss_scope(ribmon_, sent_id);
        ribmon_->record(scheduler_->now(), obs::RibEventKind::Loss, to, from,
                        destination_,
                        static_cast<std::uint32_t>(path.size()));
      }
      return;
    }
    if (path.empty()) {
      ++stats_.delivered_withdrawals;
    } else {
      ++stats_.delivered_updates;
    }
    obs::RibEventId deliver_id = 0;
    if (ribmon_ != nullptr) {
      obs::RibMonitor::CauseScope deliver_scope(ribmon_, sent_id);
      deliver_id = ribmon_->record(
          scheduler_->now(), obs::RibEventKind::Deliver, to, from,
          destination_, static_cast<std::uint32_t>(path.size()));
    }
    // Everything the receiver does in reaction — damping, reselect, further
    // sends — descends causally from this delivery.
    obs::RibMonitor::CauseScope scope(ribmon_, deliver_id);
    if (message_observer_) message_observer_(from, to, path);
    receive(to, from, path);
  });
}

void SessionedBgpNetwork::enqueue(NodeId from, NodeId to,
                                  std::vector<NodeId> path_at_sender,
                                  bool replaces) {
  if (defense_.mrai == 0) {
    send(from, to, std::move(path_at_sender), replaces);
    return;
  }
  SessionOut& out = speakers_[from].sessions[to];
  if (!out.mrai_armed) {
    // With per-session wire truth available, classify against it rather
    // than the caller's RIB-level approximation.
    const bool wire_replaces =
        !out.last_sent.empty() && !path_at_sender.empty();
    out.last_sent = path_at_sender;
    out.has_pending = false;
    out.pending.clear();
    out.pending_cause = 0;
    send(from, to, std::move(path_at_sender), wire_replaces);
    arm_mrai(from, to);
    return;
  }
  // Timer armed: the message parks. Superseding a queued message, or
  // cancelling back to what the wire already carries, both elide a send.
  if (out.has_pending) {
    ++stats_.coalesced;
    if (ribmon_ != nullptr) {
      // The elided message is the one parked earlier; attribute the
      // coalesce to the cause that parked it, not the superseding cause.
      obs::RibMonitor::CauseScope scope(ribmon_, out.pending_cause);
      ribmon_->record(scheduler_->now(), obs::RibEventKind::MraiCoalesce,
                      from, to, destination_,
                      static_cast<std::uint32_t>(out.pending.size()));
    }
  }
  if (path_at_sender == out.last_sent) {
    if (out.has_pending) --mrai_parked_;
    out.has_pending = false;
    out.pending.clear();
    out.pending_cause = 0;
    return;
  }
  if (!out.has_pending) ++mrai_parked_;
  out.has_pending = true;
  out.pending = std::move(path_at_sender);
  out.pending_cause = ribmon_ != nullptr ? ribmon_->current_cause() : 0;
}

void SessionedBgpNetwork::arm_mrai(NodeId from, NodeId to) {
  SessionOut& out = speakers_[from].sessions[to];
  out.mrai_armed = true;
  out.timer = scheduler_->after(defense_.mrai, [this, from, to]() {
    SessionOut& session = speakers_[from].sessions[to];
    session.mrai_armed = false;
    if (!session.has_pending) return;
    std::vector<NodeId> path = std::move(session.pending);
    session.pending.clear();
    session.has_pending = false;
    const obs::RibEventId cause = session.pending_cause;
    session.pending_cause = 0;
    --mrai_parked_;
    if (!link_up(from, to)) return;  // session died while parked
    const bool replaces = !session.last_sent.empty() && !path.empty();
    session.last_sent = path;
    // The delayed send still belongs to the cause that parked the message.
    obs::RibMonitor::CauseScope scope(ribmon_, cause);
    send(from, to, std::move(path), replaces);
    arm_mrai(from, to);
  });
}

void SessionedBgpNetwork::decay_penalty(DampingState& state,
                                        sim::Time now) const {
  if (now <= state.anchor) return;
  state.penalty *= std::exp2(
      -static_cast<double>(now - state.anchor) /
      static_cast<double>(defense_.damping_half_life));
  state.anchor = now;
}

bool SessionedBgpNetwork::penalize(NodeId node, NodeId from) {
  DampingState& state = speakers_[node].damping[from];
  const sim::Time now = scheduler_->now();
  decay_penalty(state, now);
  state.penalty =
      std::min(state.penalty + defense_.damping_penalty,
               defense_.damping_ceiling);
  if (state.suppressed) {
    // Extend the quarantine: the penalty grew, so the reuse point moved.
    state.reuse_timer.cancel();
    schedule_reuse(node, from);
    return false;
  }
  if (state.penalty >= defense_.damping_suppress) {
    state.suppressed = true;
    ++stats_.routes_damped;
    ++active_suppressions_;
    schedule_reuse(node, from);
    return true;
  }
  return false;
}

void SessionedBgpNetwork::schedule_reuse(NodeId node, NodeId from) {
  DampingState& state = speakers_[node].damping[from];
  const double ratio = state.penalty / defense_.damping_reuse;
  const sim::Time dt =
      ratio <= 1.0
          ? 1
          : static_cast<sim::Time>(
                std::ceil(static_cast<double>(defense_.damping_half_life) *
                          std::log2(ratio)));
  // The reuse timer (and any release reselect it runs) descends causally
  // from whatever triggered the suppression or its extension.
  const obs::RibEventId cause =
      ribmon_ != nullptr ? ribmon_->current_cause() : 0;
  state.reuse_timer = scheduler_->after(
      std::max<sim::Time>(dt, 1), [this, node, from, cause]() {
        obs::RibMonitor::CauseScope scope(ribmon_, cause);
        DampingState& s = speakers_[node].damping[from];
        if (!s.suppressed) return;
        decay_penalty(s, scheduler_->now());
        if (s.penalty > defense_.damping_reuse) {
          schedule_reuse(node, from);  // rounding guard; rarely taken
          return;
        }
        s.suppressed = false;
        --active_suppressions_;
        reselect(node);
      });
}

bool SessionedBgpNetwork::is_suppressed(NodeId node, NodeId from) const {
  const auto& damping = speakers_[node].damping;
  const auto it = damping.find(from);
  return it != damping.end() && it->second.suppressed;
}

double SessionedBgpNetwork::damping_penalty_of(NodeId node,
                                               NodeId from) const {
  const auto& damping = speakers_[node].damping;
  const auto it = damping.find(from);
  if (it == damping.end()) return 0;
  DampingState copy = it->second;
  copy.reuse_timer = {};
  decay_penalty(copy, scheduler_->now());
  return copy.penalty;
}

void SessionedBgpNetwork::receive(NodeId node, NodeId from,
                                  std::vector<NodeId> path_at_sender) {
  Speaker& speaker = speakers_[node];
  // Equal paths intern to equal ids, so the flap check below is one integer
  // compare instead of a vector compare.
  const PathId incoming =
      path_at_sender.empty() ? kNullPath : paths_.intern(path_at_sender);
  bool flap = false;
  if (defense_.damping_enabled) {
    const auto it = speaker.adj_in.find(from);
    const bool had = it != speaker.adj_in.end();
    if (incoming == kNullPath) {
      flap = had;  // withdrawal of a held route
    } else if (had) {
      flap = it->second != incoming;  // attribute/path change
    } else {
      // Re-announcement after a withdrawal; the initial announcement of a
      // never-seen route carries no penalty (RFC 2439 §4.4.2 shape).
      const auto d = speaker.damping.find(from);
      flap = d != speaker.damping.end() && d->second.was_known;
    }
  }
  if (incoming == kNullPath) {
    speaker.adj_in.erase(from);
  } else {
    speaker.adj_in[from] = incoming;
    if (defense_.damping_enabled) speaker.damping[from].was_known = true;
  }
  if (flap) {
    const bool just_suppressed = penalize(node, from);
    if (!just_suppressed && speaker.damping[from].suppressed) {
      // Absorbed: the pair is quarantined, nothing propagates.
      ++stats_.updates_suppressed;
      if (ribmon_ != nullptr) {
        ribmon_->record(scheduler_->now(),
                        obs::RibEventKind::DampingSuppress, node, from,
                        destination_, 0);
      }
      return;
    }
    // On the suppression edge fall through: one reselect expels the route.
  }
  reselect(node);
}

void SessionedBgpNetwork::reselect(NodeId node) {
  Speaker& speaker = speakers_[node];
  ++stats_.selections;

  std::optional<Route> next;
  if (origins_.count(node) != 0) {
    next = Route{{node}, RouteClass::Self};
  } else {
    std::vector<NodeId> path_at_sender;  // scratch, reused per neighbor
    for (const auto& [neighbor, path_id] : speaker.adj_in) {
      if (!link_up(node, neighbor)) continue;
      if (is_suppressed(node, neighbor)) continue;  // flap-damped
      // Implicit import policy: reject looping paths — a parent-chain walk,
      // no materialization needed for rejected candidates.
      if (paths_.contains(path_id, node)) continue;
      paths_.materialize_into(path_id, path_at_sender);
      Route candidate;
      candidate.path.reserve(path_at_sender.size() + 1);
      candidate.path.push_back(node);
      candidate.path.insert(candidate.path.end(), path_at_sender.begin(),
                            path_at_sender.end());
      // Classify against the sender's class, reconstructed from its path:
      // the sender's own first link decides, walked past siblings.
      RouteClass class_at_sender = RouteClass::Self;
      for (std::size_t i = 0; i + 1 < path_at_sender.size(); ++i) {
        const Relationship rel =
            graph_->relationship(path_at_sender[i], path_at_sender[i + 1]);
        if (rel == topo::Relationship::Sibling) continue;
        class_at_sender = classify(rel, RouteClass::Self);
        break;
      }
      if (class_at_sender == RouteClass::Self && path_at_sender.size() > 1)
        class_at_sender = RouteClass::Customer;  // all-sibling chain
      candidate.route_class =
          classify(graph_->relationship(node, candidate.path[1]),
                   class_at_sender);
      if (!next || prefer(candidate, *next, *graph_))
        next = std::move(candidate);
    }
  }

  const bool changed = next.has_value() != speaker.best.has_value() ||
                       (next && next->path != speaker.best->path);
  if (changed) {
    speaker.best = std::move(next);
    if (ribmon_ != nullptr) {
      const std::uint32_t len =
          speaker.best
              ? static_cast<std::uint32_t>(speaker.best->path.size())
              : 0;
      const std::uint64_t hash =
          speaker.best ? obs::hash_path(speaker.best->path) : 0;
      ribmon_->record(scheduler_->now(), obs::RibEventKind::BestChanged,
                      node, 0, destination_, len, hash);
    }
    if (observer_) observer_(node, speaker.best);
  }

  // Export processing: advertise on change or on a fresh session; withdraw
  // when the route became unexportable or disappeared. Unchanged routes are
  // not re-sent ("updates are sent only when the route changes").
  for (const topo::Neighbor& n : graph_->neighbors(node)) {
    if (!link_up(node, n.node)) continue;
    const bool exportable =
        speaker.best.has_value() &&
        conventional_export_allows(speaker.best->route_class, n.rel);
    if (exportable) {
      const bool fresh_session =
          speaker.advertised_to.insert(n.node).second;
      if (changed || fresh_session)
        enqueue(node, n.node, speaker.best->path, !fresh_session);
    } else if (speaker.advertised_to.erase(n.node) > 0) {
      enqueue(node, n.node, {}, false);  // withdraw
    }
  }
}

void SessionedBgpNetwork::fail_link(NodeId a, NodeId b) {
  require(graph_->has_edge(a, b), "fail_link: no such link");
  if (!failed_links_.insert(link_key(a, b)).second) return;  // already down
  // Session down: both sides flush what they learned over it, the
  // Adj-RIB-Out presence bit, and any parked MRAI message, then re-run
  // selection (which propagates any change as updates/withdrawals to the
  // remaining neighbors). The implicit withdrawal of a held route counts as
  // a flap for damping purposes, so a link that flaps up and down is
  // eventually quarantined just like a flapping announcement.
  for (auto [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
    Speaker& speaker = speakers_[self];
    const bool held = speaker.adj_in.erase(other) > 0;
    speaker.advertised_to.erase(other);
    const auto session = speaker.sessions.find(other);
    if (session != speaker.sessions.end()) {
      session->second.timer.cancel();
      if (session->second.has_pending) --mrai_parked_;
      speaker.sessions.erase(session);
    }
    if (defense_.damping_enabled && held) penalize(self, other);
    // Process asynchronously so failure handling interleaves with traffic;
    // the deferred reselect keeps the failure's causal context.
    const obs::RibEventId cause =
        ribmon_ != nullptr ? ribmon_->current_cause() : 0;
    scheduler_->after(0, [this, self = self, cause]() {
      obs::RibMonitor::CauseScope scope(ribmon_, cause);
      reselect(self);
    });
  }
}

void SessionedBgpNetwork::restore_link(NodeId a, NodeId b) {
  if (failed_links_.erase(link_key(a, b)) == 0) return;  // was not down
  // Fresh session: both ends retransmit their current table (here: the one
  // prefix) if export policy allows.
  const obs::RibEventId cause =
      ribmon_ != nullptr ? ribmon_->current_cause() : 0;
  for (auto [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
    scheduler_->after(0, [this, self = self, cause]() {
      obs::RibMonitor::CauseScope scope(ribmon_, cause);
      reselect(self);
    });
  }
}

void SessionedBgpNetwork::withdraw_prefix() {
  require(started_, "withdraw_prefix: network not started");
  if (origins_.erase(destination_) == 0) return;
  reselect(destination_);
}

void SessionedBgpNetwork::announce_prefix() {
  require(started_, "announce_prefix: network not started");
  if (!origins_.insert(destination_).second) return;
  reselect(destination_);
}

void SessionedBgpNetwork::start_hijack(NodeId node) {
  require(started_, "start_hijack: network not started");
  require(node < graph_->node_count(), "start_hijack: node out of range");
  require(node != destination_,
          "start_hijack: the origin cannot hijack its own prefix");
  if (!origins_.insert(node).second) return;
  reselect(node);
}

void SessionedBgpNetwork::end_hijack(NodeId node) {
  require(node != destination_, "end_hijack: not a hijacker");
  if (origins_.erase(node) == 0) return;
  reselect(node);
}

std::vector<std::pair<NodeId, NodeId>> SessionedBgpNetwork::failed_links()
    const {
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(failed_links_.size());
  for (const std::uint64_t key : failed_links_) {
    links.emplace_back(static_cast<NodeId>(key >> 32),
                       static_cast<NodeId>(key & 0xffffffffu));
  }
  return links;
}

void SessionedBgpNetwork::export_metrics(obs::MetricsRegistry& registry,
                                         const std::string& prefix) const {
  registry.counter(prefix + ".updates_sent").set(stats_.updates_sent);
  registry.counter(prefix + ".withdrawals_sent").set(stats_.withdrawals_sent);
  registry.counter(prefix + ".selections").set(stats_.selections);
  registry.counter(prefix + ".coalesced").set(stats_.coalesced);
  registry.counter(prefix + ".updates_suppressed")
      .set(stats_.updates_suppressed);
  registry.counter(prefix + ".routes_damped").set(stats_.routes_damped);
  registry.counter(prefix + ".delivered_updates")
      .set(stats_.delivered_updates);
  registry.counter(prefix + ".delivered_withdrawals")
      .set(stats_.delivered_withdrawals);
  registry.counter(prefix + ".lost_in_flight").set(stats_.lost_in_flight);
}

SessionedBgpNetwork::RibFootprint SessionedBgpNetwork::rib_footprint() const {
  // Red-black tree node: three child/parent pointers plus the color word,
  // preceding the value (libstdc++ _Rb_tree_node layout).
  auto set_bytes = [](const auto& set) {
    using Value = typename std::decay_t<decltype(set)>::value_type;
    return static_cast<std::uint64_t>(set.size()) *
           (sizeof(Value) + 4 * sizeof(void*));
  };
  RibFootprint fp;
  fp.rib_bytes += vector_bytes(speakers_);
  // The interned path table is shared by every Adj-RIB-In, so it is counted
  // once network-wide (it replaces the per-entry path vectors).
  fp.aspath_bytes = paths_.memory_bytes();
  fp.rib_bytes += fp.aspath_bytes;
  for (const Speaker& speaker : speakers_) {
    fp.routes += speaker.adj_in.size();
    std::uint64_t bytes = hash_map_bytes(speaker.adj_in);
    bytes += set_bytes(speaker.advertised_to);
    bytes += hash_map_bytes(speaker.sessions);
    for (const auto& [to, out] : speaker.sessions)
      bytes += vector_bytes(out.pending) + vector_bytes(out.last_sent);
    bytes += hash_map_bytes(speaker.damping);
    fp.rib_bytes += bytes;
  }
  return fp;
}

}  // namespace miro::bgp
