#include "bgp/session_bgp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::bgp {

SessionedBgpNetwork::SessionedBgpNetwork(const AsGraph& graph,
                                         NodeId destination,
                                         sim::Scheduler& scheduler,
                                         sim::Time link_delay)
    : graph_(&graph), destination_(destination), scheduler_(&scheduler),
      link_delay_(link_delay), speakers_(graph.node_count()) {
  require(destination < graph.node_count(),
          "SessionedBgpNetwork: destination out of range");
}

const Route& SessionedBgpNetwork::best(NodeId node) const {
  require(speakers_[node].best.has_value(),
          "SessionedBgpNetwork::best: no route");
  return *speakers_[node].best;
}

std::vector<NodeId> SessionedBgpNetwork::path_of(NodeId node) const {
  return speakers_[node].best ? speakers_[node].best->path
                              : std::vector<NodeId>{};
}

void SessionedBgpNetwork::start() {
  require(!started_, "SessionedBgpNetwork::start: already started");
  started_ = true;
  Speaker& origin = speakers_[destination_];
  origin.best = Route{{destination_}, RouteClass::Self};
  reselect(destination_);  // announces to every neighbor
}

void SessionedBgpNetwork::send(NodeId from, NodeId to,
                               std::vector<NodeId> path_at_sender) {
  if (path_at_sender.empty()) {
    ++stats_.withdrawals_sent;
  } else {
    ++stats_.updates_sent;
  }
  scheduler_->after(link_delay_, [this, from, to,
                                  path = std::move(path_at_sender)]() {
    // A message in flight across a link that failed meanwhile is lost; the
    // session-down handling already flushed the receiver's state.
    if (!link_up(from, to)) return;
    receive(to, from, path);
  });
}

void SessionedBgpNetwork::receive(NodeId node, NodeId from,
                                  std::vector<NodeId> path_at_sender) {
  Speaker& speaker = speakers_[node];
  if (path_at_sender.empty()) {
    speaker.adj_in.erase(from);
  } else {
    speaker.adj_in[from] = std::move(path_at_sender);
  }
  reselect(node);
}

void SessionedBgpNetwork::reselect(NodeId node) {
  Speaker& speaker = speakers_[node];
  ++stats_.selections;

  std::optional<Route> next;
  if (node == destination_) {
    next = Route{{destination_}, RouteClass::Self};
  } else {
    for (const auto& [neighbor, path_at_sender] : speaker.adj_in) {
      if (!link_up(node, neighbor)) continue;
      // Implicit import policy: reject looping paths.
      if (std::find(path_at_sender.begin(), path_at_sender.end(), node) !=
          path_at_sender.end())
        continue;
      Route candidate;
      candidate.path.reserve(path_at_sender.size() + 1);
      candidate.path.push_back(node);
      candidate.path.insert(candidate.path.end(), path_at_sender.begin(),
                            path_at_sender.end());
      // Classify against the sender's class, reconstructed from its path:
      // the sender's own first link decides, walked past siblings.
      RouteClass class_at_sender = RouteClass::Self;
      for (std::size_t i = 0; i + 1 < path_at_sender.size(); ++i) {
        const Relationship rel =
            graph_->relationship(path_at_sender[i], path_at_sender[i + 1]);
        if (rel == topo::Relationship::Sibling) continue;
        class_at_sender = classify(rel, RouteClass::Self);
        break;
      }
      if (class_at_sender == RouteClass::Self && path_at_sender.size() > 1)
        class_at_sender = RouteClass::Customer;  // all-sibling chain
      candidate.route_class =
          classify(graph_->relationship(node, candidate.path[1]),
                   class_at_sender);
      if (!next || prefer(candidate, *next, *graph_))
        next = std::move(candidate);
    }
  }

  const bool changed = next.has_value() != speaker.best.has_value() ||
                       (next && next->path != speaker.best->path);
  if (changed) {
    speaker.best = std::move(next);
    if (observer_) observer_(node, speaker.best);
  }

  // Export processing: advertise on change or on a fresh session; withdraw
  // when the route became unexportable or disappeared. Unchanged routes are
  // not re-sent ("updates are sent only when the route changes").
  for (const topo::Neighbor& n : graph_->neighbors(node)) {
    if (!link_up(node, n.node)) continue;
    const bool exportable =
        speaker.best.has_value() &&
        conventional_export_allows(speaker.best->route_class, n.rel);
    if (exportable) {
      const bool fresh_session =
          speaker.advertised_to.insert(n.node).second;
      if (changed || fresh_session) send(node, n.node, speaker.best->path);
    } else if (speaker.advertised_to.erase(n.node) > 0) {
      send(node, n.node, {});  // withdraw
    }
  }
}

void SessionedBgpNetwork::fail_link(NodeId a, NodeId b) {
  require(graph_->has_edge(a, b), "fail_link: no such link");
  if (!failed_links_.insert(link_key(a, b)).second) return;  // already down
  // Session down: both sides flush what they learned over it and the
  // Adj-RIB-Out presence bit, then re-run selection (which propagates any
  // change as updates/withdrawals to the remaining neighbors).
  for (auto [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
    speakers_[self].adj_in.erase(other);
    speakers_[self].advertised_to.erase(other);
    // Process asynchronously so failure handling interleaves with traffic.
    scheduler_->after(0, [this, self = self]() { reselect(self); });
  }
}

void SessionedBgpNetwork::restore_link(NodeId a, NodeId b) {
  if (failed_links_.erase(link_key(a, b)) == 0) return;  // was not down
  // Fresh session: both ends retransmit their current table (here: the one
  // prefix) if export policy allows.
  for (auto [self, other] : {std::pair{a, b}, std::pair{b, a}}) {
    scheduler_->after(0, [this, self = self]() { reselect(self); });
  }
}

}  // namespace miro::bgp
