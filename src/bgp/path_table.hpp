// Suffix-sharing AS-path interning.
//
// Learned AS-paths toward one destination overwhelmingly share long
// suffixes: every path funnels into the destination's neighborhood, so the
// distinct suffix count grows like the node count while the raw path bytes
// grow like (routes × path length). The table stores each distinct suffix
// once as a (head node, parent suffix) pair and hands out dense 32-bit
// PathIds; a full path is a chain of parents ending at the destination's
// single-node path. Equal paths always intern to the same id, so equality
// is one integer compare — the RIB dedup/flap checks that used to compare
// whole vectors become O(1). Entries are append-only (12 bytes each plus
// the dedup map); a table is owned per routing context (one
// SessionedBgpNetwork, one RouteStore) and lives as long as its owner.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "common/memtrack.hpp"

namespace miro::bgp {

/// Dense id of one interned path; 0 (kNullPath) is "no path".
using PathId = std::uint32_t;
constexpr PathId kNullPath = 0;

/// A Route with its AS-path replaced by a PathId into some PathTable —
/// 8 bytes instead of a heap vector. The table that minted the id is needed
/// to materialize or inspect it.
struct InternedRoute {
  PathId path = kNullPath;
  RouteClass route_class = RouteClass::Provider;
};

class PathTable {
 public:
  PathTable();

  /// Interns the single-node path {node} (an origin's own route).
  PathId root(NodeId node) { return extend(node, kNullPath); }

  /// Interns [node, suffix...]: the path whose owner is `node` and whose
  /// remainder is the already-interned `suffix` (kNullPath for none).
  PathId extend(NodeId node, PathId suffix);

  /// Interns a full path, front() = owner, back() = destination. Empty
  /// paths map to kNullPath.
  PathId intern(std::span<const NodeId> path);
  /// Interns a Route's path alongside its class.
  InternedRoute intern(const Route& route) {
    return {intern(route.path), route.route_class};
  }

  /// Owner (front) node of an interned path.
  NodeId head(PathId id) const {
    check(id);
    return entries_[id].node;
  }
  /// The path minus its head; kNullPath for a single-node path.
  PathId suffix(PathId id) const {
    check(id);
    return entries_[id].parent;
  }
  /// Node count of the path (0 for kNullPath).
  std::uint32_t length(PathId id) const {
    return id == kNullPath ? 0 : (check(id), entries_[id].length);
  }

  /// True when `node` appears anywhere on the path (the loop check).
  bool contains(PathId id, NodeId node) const;

  /// Rebuilds the path [owner, ..., destination] into `out` (cleared
  /// first); reusing one scratch vector across calls avoids per-call
  /// allocation.
  void materialize_into(PathId id, std::vector<NodeId>& out) const;
  std::vector<NodeId> materialize(PathId id) const;
  Route materialize(const InternedRoute& route) const {
    return Route{materialize(route.path), route.route_class};
  }

  /// Distinct suffixes interned so far (excluding the null sentinel).
  std::size_t size() const { return entries_.size() - 1; }

  /// Resident byte footprint: the entry array plus the dedup index
  /// (capacity walk, deterministic for a given intern sequence).
  std::uint64_t memory_bytes() const {
    return vector_bytes(entries_) + hash_map_bytes(dedup_);
  }

 private:
  struct Entry {
    NodeId node = topo::kInvalidNode;
    PathId parent = kNullPath;
    std::uint32_t length = 0;  ///< nodes on the chain, this entry included
  };

  void check(PathId id) const {
    require(id != kNullPath && id < entries_.size(),
            "PathTable: invalid path id");
  }
  static std::uint64_t key(NodeId node, PathId parent) {
    return (static_cast<std::uint64_t>(node) << 32) | parent;
  }

  std::vector<Entry> entries_;  ///< entries_[0] is the kNullPath sentinel
  std::unordered_map<std::uint64_t, PathId> dedup_;
};

}  // namespace miro::bgp
