#include "bgp/path_table.hpp"

#include <algorithm>

namespace miro::bgp {

PathTable::PathTable() : entries_(1) {}  // slot 0 = kNullPath sentinel

PathId PathTable::extend(NodeId node, PathId suffix) {
  require(node != topo::kInvalidNode, "PathTable::extend: invalid node");
  if (suffix != kNullPath) check(suffix);
  const auto [it, inserted] =
      dedup_.try_emplace(key(node, suffix), kNullPath);
  if (!inserted) return it->second;
  const PathId id = static_cast<PathId>(entries_.size());
  entries_.push_back({node, suffix, length(suffix) + 1});
  it->second = id;
  return id;
}

PathId PathTable::intern(std::span<const NodeId> path) {
  PathId id = kNullPath;
  for (std::size_t i = path.size(); i > 0; --i) id = extend(path[i - 1], id);
  return id;
}

bool PathTable::contains(PathId id, NodeId node) const {
  for (; id != kNullPath; id = entries_[id].parent) {
    check(id);
    if (entries_[id].node == node) return true;
  }
  return false;
}

void PathTable::materialize_into(PathId id, std::vector<NodeId>& out) const {
  out.clear();
  if (id == kNullPath) return;
  check(id);
  out.reserve(entries_[id].length);
  for (; id != kNullPath; id = entries_[id].parent)
    out.push_back(entries_[id].node);
}

std::vector<NodeId> PathTable::materialize(PathId id) const {
  std::vector<NodeId> out;
  materialize_into(id, out);
  return out;
}

}  // namespace miro::bgp
