#include "bgp/table_format.hpp"

#include <ostream>

#include "bgp/route_solver.hpp"
#include "common/table.hpp"

namespace miro::bgp {

void print_bgp_table(const std::vector<BgpTableEntry>& entries,
                     std::ostream& out) {
  TextTable table({"", "IP Prefix", "Next Hop", "AS Path"});
  std::string last_prefix;
  for (const BgpTableEntry& entry : entries) {
    std::string prefix_text = entry.prefix.to_string();
    const bool repeat = prefix_text == last_prefix;
    last_prefix = prefix_text;
    std::string path_text;
    for (std::size_t i = 0; i < entry.as_path.size(); ++i) {
      if (i > 0) path_text += ' ';
      path_text += std::to_string(entry.as_path[i]);
    }
    table.add_row({entry.best ? "*>" : "*", repeat ? "" : prefix_text,
                   entry.next_hop.to_string(), path_text});
  }
  table.print(out);
}

std::vector<BgpTableEntry> bgp_table_for(const StableRouteSolver& solver,
                                         const RoutingTree& tree,
                                         topo::NodeId node) {
  const topo::AsGraph& graph = solver.graph();
  const topo::AsNumber dest_asn = graph.as_number(tree.destination());
  const net::Prefix prefix(
      net::Ipv4Address(static_cast<std::uint32_t>(dest_asn) << 16), 16);

  std::vector<NodeId> best_path;
  if (tree.reachable(node)) best_path = tree.path_of(node);

  std::vector<BgpTableEntry> entries;
  for (const Route& candidate : solver.candidates_at(tree, node)) {
    BgpTableEntry entry;
    entry.prefix = prefix;
    // Next hop: the neighbor's interface, synthesized as host .0.2 of its
    // block (the data plane gives hosts .0.1).
    const topo::AsNumber next_asn = graph.as_number(candidate.next_hop());
    entry.next_hop = net::Ipv4Address(
        (static_cast<std::uint32_t>(next_asn) << 16) | 2);
    for (std::size_t i = 1; i < candidate.path.size(); ++i)
      entry.as_path.push_back(graph.as_number(candidate.path[i]));
    entry.best = candidate.path == best_path;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace miro::bgp
