// AS-level route representation and the Gao-Rexford policy predicates.
//
// Section 2.2.1: routes are classified by the business relationship of the
// neighbor they were learned from. The conventional policies are
//   export rules  — customer routes go to every neighbor; peer and provider
//                   routes go to customers only; everything goes to siblings;
//   preferences   — customer > peer > provider (Guideline A).
// Sibling links are transparent for classification: a route whose first
// non-sibling link is a peering link is treated as a peer route; a route with
// only sibling links is treated as a customer route.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/as_graph.hpp"

namespace miro::bgp {

using topo::AsGraph;
using topo::AsNumber;
using topo::NodeId;
using topo::Relationship;

/// Resolved class of a route at its owner. Lower rank = more preferred.
/// `Self` is the origin's own (null AS path) route.
enum class RouteClass : std::uint8_t {
  Self = 0,
  Customer = 1,
  Peer = 2,
  Provider = 3,
};

const char* to_string(RouteClass cls);

/// Preference rank; smaller is better (Guideline A ordering).
constexpr int rank(RouteClass cls) { return static_cast<int>(cls); }

/// The conventional local-preference bands quoted in Section 2.2.2
/// (customers 400-500, peers 200-300, providers 50-100).
constexpr int conventional_local_pref(RouteClass cls) {
  switch (cls) {
    case RouteClass::Self: return 1000;
    case RouteClass::Customer: return 400;
    case RouteClass::Peer: return 200;
    case RouteClass::Provider: return 100;
  }
  return 0;
}

/// Class a route takes at a node that learned it over a link whose remote end
/// is `neighbor_rel` to the node, given the class the route had at the
/// neighbor. Sibling links inherit the neighbor's class ("find the first
/// non-sibling link"); a Self route learned from a sibling counts as a
/// customer route.
RouteClass classify(Relationship neighbor_rel, RouteClass class_at_neighbor);

/// Conventional export rule: may a node whose best route has class `cls`
/// advertise it to a neighbor that is `neighbor_rel` to the node?
///   - to customers: everything;
///   - to siblings: everything;
///   - to peers and providers: only Self or customer routes.
bool conventional_export_allows(RouteClass cls, Relationship neighbor_rel);

/// One AS-level route: `path[0]` is the owner, `path.back()` the destination
/// AS. The origin's own route is the single-element path {destination}.
struct Route {
  std::vector<NodeId> path;
  RouteClass route_class = RouteClass::Provider;

  NodeId owner() const { return path.front(); }
  NodeId destination() const { return path.back(); }
  NodeId next_hop() const { return path.size() > 1 ? path[1] : path[0]; }
  std::size_t length() const { return path.size() - 1; }  // AS hops

  /// True when `node` appears anywhere on the path (loop check).
  bool traverses(NodeId node) const;

  /// "11537 10466 88"-style rendering using real AS numbers.
  std::string to_string(const AsGraph& graph) const;
};

/// Deterministic total preference order used everywhere in this repository:
/// class rank, then AS-path length, then lowest next-hop AS number, then
/// lexicographic path (final tie-break, total order). Returns true when `a`
/// is strictly preferred over `b`. Both routes must share their owner.
bool prefer(const Route& a, const Route& b, const AsGraph& graph);

}  // namespace miro::bgp
