// Stable BGP route computation under the conventional Gao-Rexford policies.
//
// Under Guideline A (customer > peer > provider), an acyclic customer-
// provider hierarchy, and the conventional export rules, the BGP system has a
// unique stable state (Chapter 7, Theorem 1). This solver computes that state
// for one destination directly, without simulating message exchange: routes
// are finalized in globally non-decreasing preference order
// (class rank, AS-path length, next-hop AS number), which is monotone along
// every legal export step, so a Dijkstra-style greedy pass yields exactly the
// stable routes. Sibling links are handled transparently (a route keeps the
// class it had before the sibling chain). The asynchronous path-vector engine
// cross-checks this solver in the test suite.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "common/arena.hpp"
#include "common/memtrack.hpp"

namespace miro::bgp {

/// The stable best route of every AS toward one destination.
class RoutingTree {
 public:
  /// With a non-null `arena`, the per-node entry array lives in the arena
  /// (the tree must not outlive it); null keeps it on the global heap. The
  /// array is sized once here and never reallocated, the lifetime pattern
  /// bump arenas serve best — RouteStore caches hundreds of trees and pays
  /// one malloc per slab instead of one per destination.
  RoutingTree(const AsGraph& graph, NodeId destination,
              Arena* arena = nullptr);

  NodeId destination() const { return destination_; }
  bool reachable(NodeId node) const { return entries_[node].reachable; }
  RouteClass route_class(NodeId node) const { return entries_[node].cls; }
  /// Next AS on the best path; the destination's next hop is itself.
  NodeId next_hop(NodeId node) const { return entries_[node].next_hop; }
  std::size_t path_length(NodeId node) const { return entries_[node].length; }

  /// Full best path [node, ..., destination]; empty when unreachable.
  std::vector<NodeId> path_of(NodeId node) const;
  /// Best route object; throws when unreachable.
  Route route_of(NodeId node) const;
  /// The neighbor of the destination through which `node`'s traffic enters
  /// the destination (the "incoming link" of Section 5.4); kInvalidNode when
  /// unreachable or when node == destination.
  NodeId ingress_neighbor(NodeId node) const;

  std::size_t reachable_count() const;

  /// Resident byte footprint of the per-node entry array (capacity-based,
  /// deterministic): the denominator side of bytes_per_route bench rows.
  /// When the array lives in an arena these bytes are part of the arena's
  /// reserved_bytes() — count one or the other, not both.
  std::uint64_t memory_bytes() const { return vector_bytes(entries_); }

  /// Arena sizing helper: bytes one tree's entry array needs per graph node.
  static constexpr std::size_t bytes_per_node() { return sizeof(Entry); }

 private:
  friend class StableRouteSolver;
  /// Tests only: corrupts entries to exercise the bounded-walk guards.
  friend struct RoutingTreeTestAccess;
  struct Entry {
    NodeId next_hop = topo::kInvalidNode;
    std::uint32_t length = 0;
    RouteClass cls = RouteClass::Provider;
    bool reachable = false;
  };
  const AsGraph* graph_;
  NodeId destination_;
  std::vector<Entry, ArenaAllocator<Entry>> entries_;
};

/// Overrides one AS's route selection: the AS must route via
/// `forced_next_hop` (the alternate it negotiated), and every other AS
/// re-selects independently. Used by the "independent_selection" model of
/// Section 5.4.
struct PinnedRoute {
  NodeId node = topo::kInvalidNode;
  NodeId forced_next_hop = topo::kInvalidNode;
};

/// AS-path prepending at the origin: the destination pads its announcement
/// toward `neighbor` with `extra` copies of its own AS number, the blunt
/// instrument multi-homed ASes use today to discourage one incoming link
/// (Section 1.2's footnote: such methods "may be easily nullified by other
/// ASes' local policy" — local preference is compared before path length).
struct OriginPrepend {
  NodeId neighbor = topo::kInvalidNode;
  std::uint32_t extra = 0;
};

class StableRouteSolver {
 public:
  explicit StableRouteSolver(const AsGraph& graph) : graph_(&graph) {}

  /// Stable routes of every AS toward `destination`. A non-null `arena`
  /// receives the tree's entry array (see RoutingTree's constructor).
  RoutingTree solve(NodeId destination, Arena* arena = nullptr) const;

  /// Stable routes with one AS's selection pinned. If the pin is infeasible
  /// (the forced neighbor never offers a route) the pinned AS ends up
  /// unreachable.
  RoutingTree solve_pinned(NodeId destination, const PinnedRoute& pin) const;

  /// Stable routes when the destination prepends toward one neighbor. The
  /// reported path lengths include the virtual prepended hops.
  RoutingTree solve_prepended(NodeId destination,
                              const OriginPrepend& prepend) const;

  /// Stable routes toward `destination` with AS `avoid` excised from the
  /// graph: it neither selects a route nor re-advertises one, so no path in
  /// the result traverses it. This is the ground truth "could any policy at
  /// all route around `avoid`" bound that the layer-3 symbolic engine's
  /// poisoned fixpoint is differential-tested against.
  RoutingTree solve_avoiding(NodeId destination, NodeId avoid) const;

  /// The candidate routes `node` learns from its neighbors under plain BGP in
  /// the stable state: each neighbor's best route, where the neighbor's
  /// conventional export policy allows it and the path is loop-free. This is
  /// exactly the pool MIRO's responding ASes draw alternates from.
  std::vector<Route> candidates_at(const RoutingTree& tree, NodeId node) const;

  const AsGraph& graph() const { return *graph_; }

 private:
  RoutingTree run(NodeId destination, const PinnedRoute* pin,
                  const OriginPrepend* prepend,
                  NodeId exclude = topo::kInvalidNode,
                  Arena* arena = nullptr) const;

  const AsGraph* graph_;
};

}  // namespace miro::bgp
