#include "bgp/gao_rexford.hpp"

namespace miro::bgp {

PolicyHooks relaxed_peering_hooks(const AsGraph& graph) {
  PolicyHooks hooks;
  const AsGraph* g = &graph;
  hooks.exports = [g](NodeId owner, const Route& route, NodeId neighbor) {
    return conventional_export_allows(route.route_class,
                                      g->relationship(owner, neighbor));
  };
  hooks.prefers = [g](const Route& a, const Route& b) {
    // Customer and peer routes share the top band.
    auto band = [](RouteClass cls) {
      switch (cls) {
        case RouteClass::Self: return 0;
        case RouteClass::Customer:
        case RouteClass::Peer: return 1;
        case RouteClass::Provider: return 2;
      }
      return 2;
    };
    if (band(a.route_class) != band(b.route_class))
      return band(a.route_class) < band(b.route_class);
    if (a.length() != b.length()) return a.length() < b.length();
    const AsNumber next_a = g->as_number(a.next_hop());
    const AsNumber next_b = g->as_number(b.next_hop());
    if (next_a != next_b) return next_a < next_b;
    return a.path < b.path;
  };
  return hooks;
}

std::size_t BackupLinks::count_on_path(
    const std::vector<NodeId>& path) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (contains(path[i], path[i + 1])) ++count;
  return count;
}

PolicyHooks backup_link_hooks(const AsGraph& graph,
                              const BackupLinks& backups) {
  PolicyHooks hooks;
  const AsGraph* g = &graph;
  const BackupLinks* b = &backups;
  hooks.exports = [g, b](NodeId owner, const Route& route, NodeId neighbor) {
    // Backup routes propagate everywhere: "backup links ... normally carry
    // no traffic unless there is a link failure", so reachability through
    // them must not be filtered away by the conventional rules.
    if (b->count_on_path(route.path) > 0) return true;
    return conventional_export_allows(route.route_class,
                                      g->relationship(owner, neighbor));
  };
  hooks.prefers = [g, b](const Route& x, const Route& y) {
    const std::size_t bx = b->count_on_path(x.path);
    const std::size_t by = b->count_on_path(y.path);
    if (bx != by) return bx < by;  // fewest backup links wins outright
    return prefer(x, y, *g);
  };
  return hooks;
}

}  // namespace miro::bgp
