// The Gao-Rexford policy-guideline family (Section 7.2) as pluggable
// PathVectorEngine hooks.
//
// The dissertation's convergence results for MIRO are built on the three
// BGP guideline sets of Gao & Rexford:
//   1. no backup links, customer > peer > provider (Guideline A — the
//      engine's default policy);
//   2. "constrained peer-to-peer agreements": peer routes may be equally
//      preferred as customer routes;
//   3. backup links: links that "normally carry no traffic unless there is
//      a link failure", given the lowest local preference and exported
//      liberally so they can restore connectivity.
// These builders make 2 and 3 runnable so the property tests can check the
// convergence claims the MIRO proofs inherit.
#pragma once

#include <cstdint>
#include <set>

#include "bgp/path_vector_engine.hpp"

namespace miro::bgp {

/// Guideline 2: peer routes share the customer preference band (ties broken
/// by path length, then next-hop AS number). Gao-Rexford prove convergence
/// still holds for this relaxation.
PolicyHooks relaxed_peering_hooks(const AsGraph& graph);

/// An undirected set of backup links.
class BackupLinks {
 public:
  void add(NodeId a, NodeId b) { links_.insert(key(a, b)); }
  bool contains(NodeId a, NodeId b) const {
    return links_.find(key(a, b)) != links_.end();
  }
  /// Number of backup links a path crosses — Gao-Rexford's preference
  /// level: routes with fewer backup links are always preferred.
  std::size_t count_on_path(const std::vector<NodeId>& path) const;
  std::size_t size() const { return links_.size(); }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  std::set<std::uint64_t> links_;
};

/// Guideline 3: routes are ranked first by how many backup links they
/// cross (fewer is better, zero = primary), then by the conventional
/// class/length/ASN order; routes that cross a backup link are exported to
/// every neighbor, so backup connectivity propagates where conventional
/// export filtering would starve it. `backups` must outlive the hooks.
PolicyHooks backup_link_hooks(const AsGraph& graph,
                              const BackupLinks& backups);

}  // namespace miro::bgp
