// Message-level BGP over the discrete-event simulator.
//
// "The BGP is an incremental protocol. When a router first connects to a
// neighbor, the entire BGP routing table is transmitted. After that route
// updates and withdrawals are sent only when the route changes." (§2.2.2)
//
// Each AS is a speaker with a per-neighbor Adj-RIB-In for one destination
// prefix. UPDATE and WITHDRAW messages travel over per-link sessions with
// propagation delay; a speaker re-selects when a message arrives and sends
// incremental updates only to neighbors whose view changed. Links can fail
// and recover at runtime — the machinery MIRO's soft-state tunnel management
// reacts to ("The ASes can observe these changes in the BGP update messages
// or session failures", §4.3). The converged result provably equals
// StableRouteSolver's under conventional policies (tested).
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "netsim/scheduler.hpp"

namespace miro::bgp {

class SessionedBgpNetwork {
 public:
  /// Builds the speakers; nothing is announced until start().
  SessionedBgpNetwork(const AsGraph& graph, NodeId destination,
                      sim::Scheduler& scheduler, sim::Time link_delay = 10);

  /// The origin announces its prefix to all neighbors.
  void start();

  /// Brings a session down: both ends flush what they learned over it and
  /// withdraw/re-advertise as needed. Idempotent.
  void fail_link(NodeId a, NodeId b);
  /// Restores a failed session; both ends re-advertise their current best
  /// (the "entire table" retransmission of a fresh session).
  void restore_link(NodeId a, NodeId b);

  bool has_route(NodeId node) const { return speakers_[node].best.has_value(); }
  const Route& best(NodeId node) const;
  /// Full best path [node..destination]; empty when unreachable.
  std::vector<NodeId> path_of(NodeId node) const;

  /// Observer invoked (synchronously, during event processing) whenever a
  /// speaker's best route changes. Used by MIRO's tunnel monitor.
  using RouteChangeObserver =
      std::function<void(NodeId node, const std::optional<Route>& best)>;
  void set_observer(RouteChangeObserver observer) {
    observer_ = std::move(observer);
  }

  struct Stats {
    std::size_t updates_sent = 0;
    std::size_t withdrawals_sent = 0;
    std::size_t selections = 0;
  };
  const Stats& stats() const { return stats_; }

  NodeId destination() const { return destination_; }
  const AsGraph& graph() const { return *graph_; }

 private:
  struct Speaker {
    /// Adj-RIB-In: the route each neighbor last advertised (as a path at
    /// that neighbor, before local prepend/classification).
    std::unordered_map<NodeId, std::vector<NodeId>> adj_in;
    /// Adj-RIB-Out presence: which neighbors currently hold our route.
    std::set<NodeId> advertised_to;
    std::optional<Route> best;
  };

  static std::uint64_t link_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  bool link_up(NodeId a, NodeId b) const {
    return failed_links_.find(link_key(a, b)) == failed_links_.end();
  }

  /// Delivers an UPDATE (path non-empty) or WITHDRAW (path empty) from
  /// `from` to `to` after the link delay.
  void send(NodeId from, NodeId to, std::vector<NodeId> path_at_sender);
  void receive(NodeId node, NodeId from, std::vector<NodeId> path_at_sender);
  /// Re-selects at `node`; on change, propagates updates/withdrawals.
  void reselect(NodeId node);

  const AsGraph* graph_;
  NodeId destination_;
  sim::Scheduler* scheduler_;
  sim::Time link_delay_;
  std::vector<Speaker> speakers_;
  std::set<std::uint64_t> failed_links_;
  RouteChangeObserver observer_;
  Stats stats_;
  bool started_ = false;
};

}  // namespace miro::bgp
