// Message-level BGP over the discrete-event simulator.
//
// "The BGP is an incremental protocol. When a router first connects to a
// neighbor, the entire BGP routing table is transmitted. After that route
// updates and withdrawals are sent only when the route changes." (§2.2.2)
//
// Each AS is a speaker with a per-neighbor Adj-RIB-In for one destination
// prefix. UPDATE and WITHDRAW messages travel over per-link sessions with
// propagation delay; a speaker re-selects when a message arrives and sends
// incremental updates only to neighbors whose view changed. Links can fail
// and recover at runtime — the machinery MIRO's soft-state tunnel management
// reacts to ("The ASes can observe these changes in the BGP update messages
// or session failures", §4.3). The converged result provably equals
// StableRouteSolver's under conventional policies (tested).
//
// Two graceful-degradation mechanisms defend the network against sustained
// churn (both off by default, see ChurnDefenseConfig):
//   - MRAI-style outbound coalescing: per-session minimum advertisement
//     interval; while the timer runs, newer outbound messages supersede the
//     queued one, so a rapid A->B->A flap costs zero wire messages.
//   - RFC 2439-era route flap damping at the receiver: a per-(neighbor,
//     route) penalty with exponential decay; above the suppress threshold
//     the neighbor's route is quarantined (kept in Adj-RIB-In but excluded
//     from selection and propagation) until the penalty decays below the
//     reuse threshold.
//
// Beyond link failure, the prefix origin itself can churn: the origin can
// withdraw and re-announce its prefix, and any other AS can start announcing
// the same prefix (a hijack) — the event taxonomy src/churn replays.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/route.hpp"
#include "netsim/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/ribmon.hpp"

namespace miro::bgp {

/// Tunables for the churn-defense mechanisms. The default-constructed config
/// disables both, reproducing the classic eager-propagation behaviour.
struct ChurnDefenseConfig {
  /// Minimum advertisement interval per session, in ticks; 0 disables MRAI
  /// coalescing (every change is sent immediately).
  sim::Time mrai = 0;

  /// Enables receiver-side route flap damping with the parameters below.
  bool damping_enabled = false;
  double damping_penalty = 1000.0;    ///< added per flap (withdraw, change)
  double damping_suppress = 3000.0;   ///< suppress when penalty reaches this
  double damping_reuse = 1500.0;      ///< reuse when penalty decays to this
  double damping_ceiling = 8000.0;    ///< penalty never exceeds this
  sim::Time damping_half_life = 600;  ///< ticks for the penalty to halve
};

class SessionedBgpNetwork {
 public:
  /// Builds the speakers; nothing is announced until start(). The defense
  /// config is validated here (thresholds ordered, half-life positive).
  SessionedBgpNetwork(const AsGraph& graph, NodeId destination,
                      sim::Scheduler& scheduler, sim::Time link_delay = 10,
                      ChurnDefenseConfig defense = {});

  /// The origin announces its prefix to all neighbors.
  void start();

  /// Brings a session down: both ends flush what they learned over it and
  /// withdraw/re-advertise as needed. Idempotent.
  void fail_link(NodeId a, NodeId b);
  /// Restores a failed session; both ends re-advertise their current best
  /// (the "entire table" retransmission of a fresh session).
  void restore_link(NodeId a, NodeId b);

  /// The origin stops announcing its prefix: neighbors receive withdrawals
  /// and the route drains network-wide. No-op while already withdrawn.
  void withdraw_prefix();
  /// The origin re-announces after withdraw_prefix(). No-op while announced.
  void announce_prefix();

  /// `node` starts originating the destination's prefix alongside (or, with
  /// the true origin withdrawn, instead of) the legitimate origin — the
  /// hijack-and-recover scenario. Paths learned from the hijacker end at
  /// `node` rather than at the destination.
  void start_hijack(NodeId node);
  /// The hijacker withdraws; the network reconverges to the true origin.
  void end_hijack(NodeId node);

  bool has_route(NodeId node) const { return speakers_[node].best.has_value(); }
  const Route& best(NodeId node) const;
  /// Full best path [node..origin]; empty when unreachable. During a hijack
  /// the path may end at the hijacker instead of the destination.
  std::vector<NodeId> path_of(NodeId node) const;

  /// Observer invoked (synchronously, during event processing) whenever a
  /// speaker's best route changes. Used by MIRO's tunnel monitor.
  using RouteChangeObserver =
      std::function<void(NodeId node, const std::optional<Route>& best)>;
  void set_observer(RouteChangeObserver observer) {
    observer_ = std::move(observer);
  }

  /// Observer invoked at the instant an UPDATE (path non-empty) or WITHDRAW
  /// (path empty) is actually delivered to `to` — the ground truth a shadow
  /// Adj-RIB-In (churn::InvariantChecker) reconstructs. Messages lost to a
  /// link that failed while they were in flight are not observed.
  using MessageObserver = std::function<void(
      NodeId from, NodeId to, const std::vector<NodeId>& path_at_sender)>;
  void set_message_observer(MessageObserver observer) {
    message_observer_ = std::move(observer);
  }

  /// Attaches (or clears, with nullptr) the route-event provenance monitor.
  /// Null by default and zero-cost when absent: every emission site guards
  /// with one branch, and monitored vs unmonitored runs of the same script
  /// are bit-identical in protocol behaviour (asserted in ribmon_test).
  /// Callers establishing external root causes (churn replay, tests) wrap
  /// the triggering API call in an obs::RibMonitor::CauseScope.
  void set_rib_monitor(obs::RibMonitor* monitor) { ribmon_ = monitor; }
  obs::RibMonitor* rib_monitor() const { return ribmon_; }

  struct Stats {
    std::size_t updates_sent = 0;
    std::size_t withdrawals_sent = 0;
    /// Wire messages that actually arrived (the rest died with their link).
    std::size_t delivered_updates = 0;
    std::size_t delivered_withdrawals = 0;
    /// Messages lost because their link failed while they were in flight.
    std::size_t lost_in_flight = 0;
    std::size_t selections = 0;
    /// Outbound messages that never hit the wire because a newer message
    /// superseded them inside an MRAI window.
    std::size_t coalesced = 0;
    /// Inbound updates/withdrawals absorbed without propagation because the
    /// (neighbor, route) was suppressed by flap damping.
    std::size_t updates_suppressed = 0;
    /// Times a (neighbor, route) crossed the suppress threshold.
    std::size_t routes_damped = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Snapshots the stats into `registry` as counters named
  /// `<prefix>.updates_sent`, `<prefix>.coalesced`, ... (values overwritten
  /// on repeated calls, next to the bus/agent counters).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "bgp") const;

  NodeId destination() const { return destination_; }
  const AsGraph& graph() const { return *graph_; }
  const ChurnDefenseConfig& defense() const { return defense_; }

  // --- Inspection surface (invariant checker, tests) ---------------------

  /// The Adj-RIB-In of one speaker: neighbor -> interned id of the path it
  /// last advertised (resolve through paths() or adj_in_path()).
  const std::unordered_map<NodeId, PathId>& adj_in_of(NodeId node) const {
    return speakers_[node].adj_in;
  }
  /// The path table every Adj-RIB-In id resolves against.
  const PathTable& paths() const { return paths_; }
  /// Materialized Adj-RIB-In path `from` last advertised to `node`; empty
  /// when no route is held.
  std::vector<NodeId> adj_in_path(NodeId node, NodeId from) const {
    const auto& rib = speakers_[node].adj_in;
    const auto it = rib.find(from);
    return it == rib.end() ? std::vector<NodeId>{}
                           : paths_.materialize(it->second);
  }
  /// Which neighbors currently hold (or, under MRAI, are scheduled to hold)
  /// this speaker's route.
  const std::set<NodeId>& advertised_to_of(NodeId node) const {
    return speakers_[node].advertised_to;
  }
  bool link_is_up(NodeId a, NodeId b) const { return link_up(a, b); }
  /// Currently failed links, each as an (a, b) pair with a < b.
  std::vector<std::pair<NodeId, NodeId>> failed_links() const;
  /// The ASes currently originating the prefix (the destination, unless
  /// withdrawn, plus any active hijackers).
  const std::set<NodeId>& origins() const { return origins_; }
  bool prefix_announced() const { return origins_.count(destination_) != 0; }
  bool hijack_active() const {
    return origins_.size() > (prefix_announced() ? 1u : 0u);
  }
  /// True when damping currently quarantines what `from` advertises to
  /// `node`.
  bool is_suppressed(NodeId node, NodeId from) const;
  /// The damping penalty decayed to the current simulation time; 0 when
  /// damping is disabled or the pair has no history.
  double damping_penalty_of(NodeId node, NodeId from) const;

  /// Byte footprint of all speakers' per-neighbor RIB state, computed by a
  /// deterministic capacity walk (common/memtrack.hpp conventions; the
  /// node-based sets and maps are estimates at libstdc++ overheads).
  struct RibFootprint {
    std::uint64_t routes = 0;        ///< Adj-RIB-In entries network-wide
    std::uint64_t aspath_bytes = 0;  ///< the shared interned path table
    std::uint64_t rib_bytes = 0;     ///< all speaker state incl. sessions
    double bytes_per_route() const {
      return routes == 0 ? 0.0
                         : static_cast<double>(rib_bytes) /
                               static_cast<double>(routes);
    }
  };
  RibFootprint rib_footprint() const;

  /// UPDATE/WITHDRAW copies scheduled but not yet delivered (or lost).
  std::size_t messages_in_flight() const { return messages_in_flight_; }
  /// Outbound messages currently parked behind an MRAI timer.
  std::size_t mrai_parked() const { return mrai_parked_; }
  /// (neighbor, route) pairs currently quarantined by flap damping.
  std::size_t active_suppressions() const { return active_suppressions_; }
  /// Transit-quiet: nothing in flight and nothing parked, so every
  /// speaker's Adj-RIB-In agrees with what its neighbors last exported —
  /// the precondition for the strong churn invariants (loop-freedom,
  /// solver agreement).
  bool transit_quiet() const {
    return messages_in_flight_ == 0 && mrai_parked_ == 0;
  }

 private:
  /// Per-session outbound state for MRAI coalescing.
  struct SessionOut {
    bool mrai_armed = false;  ///< timer pending; messages queue, not send
    bool has_pending = false;
    std::vector<NodeId> pending;    ///< empty = withdraw
    std::vector<NodeId> last_sent;  ///< wire truth (empty = withdrawn/none)
    /// Provenance of the parked message (the cause that last superseded),
    /// re-established when the MRAI timer finally sends it.
    obs::RibEventId pending_cause = 0;
    sim::Scheduler::TimerToken timer;
  };

  /// Per-(neighbor, route) flap-damping state (RFC 2439 shape).
  struct DampingState {
    double penalty = 0;
    sim::Time anchor = 0;    ///< time the penalty was last materialized
    bool suppressed = false;
    bool was_known = false;  ///< the neighbor has advertised at least once
    sim::Scheduler::TimerToken reuse_timer;
  };

  struct Speaker {
    /// Adj-RIB-In: the route each neighbor last advertised (as a path at
    /// that neighbor, before local prepend/classification), interned in the
    /// network-wide PathTable — 4 bytes per entry, and path-change checks
    /// collapse to an id compare.
    std::unordered_map<NodeId, PathId> adj_in;
    /// Adj-RIB-Out presence: which neighbors currently hold our route.
    std::set<NodeId> advertised_to;
    std::optional<Route> best;
    std::unordered_map<NodeId, SessionOut> sessions;
    std::unordered_map<NodeId, DampingState> damping;
  };

  static std::uint64_t link_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  bool link_up(NodeId a, NodeId b) const {
    return failed_links_.find(link_key(a, b)) == failed_links_.end();
  }

  /// Delivers an UPDATE (path non-empty) or WITHDRAW (path empty) from
  /// `from` to `to` after the link delay. `replaces` marks an UPDATE that
  /// supersedes a path the peer already held (an implicit withdrawal — the
  /// provenance layer distinguishes it from a first announcement).
  void send(NodeId from, NodeId to, std::vector<NodeId> path_at_sender,
            bool replaces);
  /// MRAI layer in front of send(): immediate when disabled or the session
  /// timer is idle; otherwise the message parks (superseding any queued one)
  /// until the timer fires.
  void enqueue(NodeId from, NodeId to, std::vector<NodeId> path_at_sender,
               bool replaces);
  void arm_mrai(NodeId from, NodeId to);
  void receive(NodeId node, NodeId from, std::vector<NodeId> path_at_sender);
  /// Re-selects at `node`; on change, propagates updates/withdrawals.
  void reselect(NodeId node);

  /// Decays `state`'s penalty to `now` (exponential, damping_half_life).
  void decay_penalty(DampingState& state, sim::Time now) const;
  /// Books one flap against (node, from); returns true when the pair just
  /// crossed into suppression.
  bool penalize(NodeId node, NodeId from);
  void schedule_reuse(NodeId node, NodeId from);

  const AsGraph* graph_;
  NodeId destination_;
  sim::Scheduler* scheduler_;
  sim::Time link_delay_;
  ChurnDefenseConfig defense_;
  std::vector<Speaker> speakers_;
  /// One table for every speaker's Adj-RIB-In: learned paths toward the one
  /// destination share suffixes heavily, so the table stays near graph size
  /// while raw storage would grow like routes x path length.
  PathTable paths_;
  std::set<std::uint64_t> failed_links_;
  std::set<NodeId> origins_;
  RouteChangeObserver observer_;
  MessageObserver message_observer_;
  obs::RibMonitor* ribmon_ = nullptr;
  Stats stats_;
  std::size_t messages_in_flight_ = 0;
  std::size_t mrai_parked_ = 0;
  std::size_t active_suppressions_ = 0;
  bool started_ = false;
};

}  // namespace miro::bgp
