// Traffic classification for tunnel ingress.
//
// "The upstream AS can implement these traffic-splitting policies by
// installing classifiers that match packets based on header fields (e.g., IP
// addresses, port numbers, and type-of-service bits)" and can also "direct a
// fraction of the traffic along each of the paths by applying a hash function
// that maps a traffic flow to a path" (Section 3.5).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace miro::dataplane {

/// One match rule over packet header fields; unset fields match anything.
struct MatchRule {
  std::optional<net::Prefix> source_prefix;
  std::optional<net::Prefix> destination_prefix;
  std::optional<std::uint16_t> source_port;
  std::optional<std::uint16_t> destination_port;
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint8_t> type_of_service;

  bool matches(const net::Packet& packet) const;
};

/// First-match classifier mapping packets to an action index (e.g. a tunnel
/// slot). Rules are evaluated in insertion order; no match returns nullopt
/// (the packet stays on the default path).
template <typename Action>
class Classifier {
 public:
  void add_rule(MatchRule rule, Action action) {
    rules_.push_back({std::move(rule), std::move(action)});
  }

  const Action* classify(const net::Packet& packet) const {
    for (const auto& entry : rules_)
      if (entry.rule.matches(packet)) return &entry.action;
    return nullptr;
  }

  std::size_t rule_count() const { return rules_.size(); }

 private:
  struct Entry {
    MatchRule rule;
    Action action;
  };
  std::vector<Entry> rules_;
};

/// Weighted flow-hash splitter: deterministically assigns each flow to one of
/// N paths in proportion to the weights, keeping all packets of a flow on one
/// path (no reordering).
class FlowSplitter {
 public:
  /// `weights` need not be normalized; all must be non-negative, sum > 0.
  explicit FlowSplitter(std::vector<double> weights);

  /// Index of the path this packet's flow maps to.
  std::size_t path_for(const net::Packet& packet) const;

  std::size_t path_count() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
};

}  // namespace miro::dataplane
