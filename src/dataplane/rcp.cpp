#include "dataplane/rcp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::dataplane {

RoutingControlPlatform::RouterId RoutingControlPlatform::add_router(
    net::Ipv4Address loopback) {
  const RouterId bgp_id = routers_.add_router(loopback);
  const RouterId fwd_id = forwarding_.add_router();
  require(bgp_id == fwd_id, "RCP: router id mismatch between models");
  return bgp_id;
}

void RoutingControlPlatform::add_internal_link(RouterId a, RouterId b,
                                               int igp_weight) {
  routers_.add_internal_link(a, b, igp_weight);
  forwarding_.add_internal_link(a, b, igp_weight);
}

RoutingControlPlatform::ExitLinkId RoutingControlPlatform::add_exit_link(
    RouterId egress, topo::AsNumber neighbor_as) {
  const ExitLinkId link = forwarding_.add_exit_link(egress, neighbor_as);
  exits_[neighbor_as].push_back(link);
  return link;
}

void RoutingControlPlatform::learn_route(RouterId egress,
                                         std::vector<topo::AsNumber> as_path,
                                         int local_pref,
                                         net::Ipv4Address peer_address) {
  require(!as_path.empty(), "RCP::learn_route: empty AS path");
  const topo::AsNumber next_hop_as = as_path.front();
  require(exits_.find(next_hop_as) != exits_.end(),
          "RCP::learn_route: no exit link declared for the next-hop AS");
  routers_.inject_ebgp_route(egress, next_hop_as, peer_address,
                             std::move(as_path), local_pref);
}

std::vector<bgp::RouterRoute> RoutingControlPlatform::alternates(
    std::optional<topo::AsNumber> avoid) const {
  // The AS-wide default: the path most routers selected.
  std::vector<topo::AsNumber> default_path;
  {
    std::vector<std::pair<std::vector<topo::AsNumber>, int>> votes;
    for (RouterId r = 0; r < routers_.router_count(); ++r) {
      const auto selected = routers_.selected(r);
      if (!selected) continue;
      bool counted = false;
      for (auto& [path, count] : votes)
        if (path == selected->as_path) {
          ++count;
          counted = true;
        }
      if (!counted) votes.emplace_back(selected->as_path, 1);
    }
    int best_votes = 0;
    for (const auto& [path, count] : votes)
      if (count > best_votes) {
        best_votes = count;
        default_path = path;
      }
  }

  std::vector<bgp::RouterRoute> result;
  for (const bgp::RouterRoute& route : routers_.all_valid_paths()) {
    if (route.as_path == default_path) continue;
    if (avoid && std::find(route.as_path.begin(), route.as_path.end(),
                           *avoid) != route.as_path.end())
      continue;
    result.push_back(route);
  }
  return result;
}

std::optional<RoutingControlPlatform::Binding>
RoutingControlPlatform::establish_tunnel(
    const std::vector<topo::AsNumber>& as_path) {
  // The path must actually be known in this AS...
  const auto known = routers_.all_valid_paths();
  const auto it = std::find_if(known.begin(), known.end(),
                               [&](const bgp::RouterRoute& route) {
                                 return route.as_path == as_path;
                               });
  if (it == known.end()) return std::nullopt;
  // ...and leave over a declared exit link of the next-hop AS; prefer the
  // link at the router that learned the route.
  const auto exits = exits_.find(as_path.front());
  if (exits == exits_.end() || exits->second.empty()) return std::nullopt;
  ExitLinkId chosen = exits->second.front();
  const auto endpoint = forwarding_.establish_tunnel(chosen);
  return Binding{endpoint.id, endpoint.address, chosen};
}

}  // namespace miro::dataplane
