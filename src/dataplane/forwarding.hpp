// AS-level data plane: default forwarding plus MIRO tunnels.
//
// Packets are forwarded AS by AS. At each hop the AS performs a
// longest-prefix match on the (outer) destination address to find the
// destination AS, then forwards along its stable BGP next hop — unless the
// packet matches an installed classifier at the tunnel head (then it is
// encapsulated toward the responder) or carries a tunnel id at the responder
// (then it is decapsulated and direct-forwarded onto the negotiated exit
// link, after which plain destination-based forwarding takes over again,
// exactly as in Figure 3.1(b)).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/alternates.hpp"
#include "core/route_store.hpp"
#include "dataplane/classifier.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"

namespace miro::dataplane {

using core::RouteStore;
using core::SplicedPath;
using net::Packet;
using net::TunnelId;
using topo::NodeId;

/// Events recorded while tracing a packet through the AS graph.
struct TraceHop {
  NodeId as = topo::kInvalidNode;
  enum class Action {
    Forward,       ///< plain destination-based forwarding
    Encapsulate,   ///< entered a tunnel here
    Decapsulate,   ///< left a tunnel here (directed forwarding to exit link)
    Deliver,       ///< reached the destination AS
    Drop,          ///< no route / no matching state
  } action = Action::Forward;
  std::optional<TunnelId> tunnel_id;
};

struct TraceResult {
  std::vector<TraceHop> hops;
  bool delivered = false;

  /// The AS-level path the packet actually took.
  std::vector<NodeId> as_path() const;
  bool traversed(NodeId as) const;
  std::string to_string(const topo::AsGraph& graph) const;
};

/// The simulated AS-level forwarding plane.
class AsLevelDataPlane {
 public:
  explicit AsLevelDataPlane(RouteStore& store);

  /// Registers a prefix as originated by `as`. Every AS also gets a default
  /// prefix derived from its AS number at construction
  /// ("<asn>.0.0.0/16"-style synthetic addressing).
  void add_prefix(NodeId as, const net::Prefix& prefix);

  /// The synthetic address of a host inside `as` (host 1 of its prefix).
  net::Ipv4Address host_address(NodeId as) const;

  /// Installs the data-plane state for a negotiated tunnel along `spliced`
  /// (from spliced.as_path.front() to the responder): the downstream
  /// directed-forwarding entry and an upstream classifier. Returns the
  /// tunnel id assigned by the downstream AS.
  TunnelId install_tunnel(const SplicedPath& spliced, MatchRule match = {});

  /// Installs several tunnels behind ONE classifier rule with hash-based
  /// flow splitting: matching traffic is spread across the spliced paths in
  /// proportion to `weights` (all packets of a flow stay on one path) —
  /// "it can direct a fraction of the traffic along each of the paths by
  /// applying a hash function that maps a traffic flow to a path"
  /// (Section 3.5). All paths must share the same head AS. Returns the
  /// per-path tunnel ids.
  std::vector<TunnelId> install_split_tunnels(
      const std::vector<SplicedPath>& spliced_paths,
      const std::vector<double>& weights, MatchRule match = {});

  /// Removes a tunnel's data-plane state at both ends.
  void remove_tunnel(NodeId responder, TunnelId id);

  /// Forwards a packet from `origin_as` until delivery or drop, recording
  /// every hop. `max_hops` guards against forwarding loops. Non-const
  /// because routing trees are solved lazily on first use.
  TraceResult trace(Packet packet, NodeId origin_as,
                    std::size_t max_hops = 64);

  const RouteStore& store() const { return *store_; }

 private:
  struct TunnelTarget {
    NodeId responder;
    TunnelId tunnel_id;
  };
  struct UpstreamEntry {
    std::vector<TunnelTarget> targets;
    /// Present when the rule splits across several tunnels.
    std::optional<FlowSplitter> splitter;
  };
  struct DownstreamEntry {
    NodeId exit_neighbor;  // directed forwarding target
  };

  /// Destination AS for an address via longest-prefix match.
  std::optional<NodeId> destination_as(net::Ipv4Address address) const;

  RouteStore* store_;
  net::PrefixTrie<NodeId> prefixes_;
  /// Per upstream AS: classifier mapping packets to tunnel entries.
  std::unordered_map<NodeId, Classifier<UpstreamEntry>> classifiers_;
  /// Per downstream AS: tunnel id -> directed-forwarding state.
  std::unordered_map<NodeId, std::unordered_map<TunnelId, DownstreamEntry>>
      tunnel_tables_;
  std::unordered_map<NodeId, TunnelId> next_tunnel_id_;
};

}  // namespace miro::dataplane
