#include "dataplane/classifier.hpp"

#include "common/error.hpp"

namespace miro::dataplane {

bool MatchRule::matches(const net::Packet& packet) const {
  const net::IpHeader& ip = packet.inner();
  const net::FlowLabel& flow = packet.flow();
  if (source_prefix && !source_prefix->contains(ip.source)) return false;
  if (destination_prefix && !destination_prefix->contains(ip.destination))
    return false;
  if (source_port && *source_port != flow.source_port) return false;
  if (destination_port && *destination_port != flow.destination_port)
    return false;
  if (protocol && *protocol != flow.protocol) return false;
  if (type_of_service && *type_of_service != flow.type_of_service)
    return false;
  return true;
}

FlowSplitter::FlowSplitter(std::vector<double> weights) {
  require(!weights.empty(), "FlowSplitter: need at least one path");
  double total = 0;
  for (double w : weights) {
    require(w >= 0, "FlowSplitter: negative weight");
    total += w;
  }
  require(total > 0, "FlowSplitter: weights sum to zero");
  double running = 0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    running += w / total;
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t FlowSplitter::path_for(const net::Packet& packet) const {
  // Map the flow hash uniformly into [0,1) and pick the first bucket whose
  // cumulative weight covers it.
  const double point =
      static_cast<double>(packet.flow_hash() >> 11) * 0x1.0p-53;
  for (std::size_t i = 0; i < cumulative_.size(); ++i)
    if (point < cumulative_[i]) return i;
  return cumulative_.size() - 1;
}

}  // namespace miro::dataplane
