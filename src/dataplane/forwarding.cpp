#include "dataplane/forwarding.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::dataplane {

std::vector<NodeId> TraceResult::as_path() const {
  std::vector<NodeId> path;
  for (const TraceHop& hop : hops)
    if (path.empty() || path.back() != hop.as) path.push_back(hop.as);
  return path;
}

bool TraceResult::traversed(NodeId as) const {
  return std::any_of(hops.begin(), hops.end(),
                     [as](const TraceHop& hop) { return hop.as == as; });
}

std::string TraceResult::to_string(const topo::AsGraph& graph) const {
  std::string out;
  for (const TraceHop& hop : hops) {
    if (!out.empty()) out += " -> ";
    out += std::to_string(graph.as_number(hop.as));
    switch (hop.action) {
      case TraceHop::Action::Encapsulate: out += "(encap)"; break;
      case TraceHop::Action::Decapsulate: out += "(decap)"; break;
      case TraceHop::Action::Deliver: out += "(deliver)"; break;
      case TraceHop::Action::Drop: out += "(drop)"; break;
      case TraceHop::Action::Forward: break;
    }
  }
  return out;
}

AsLevelDataPlane::AsLevelDataPlane(RouteStore& store) : store_(&store) {
  const topo::AsGraph& graph = store.graph();
  for (NodeId as = 0; as < graph.node_count(); ++as) {
    const topo::AsNumber asn = graph.as_number(as);
    require(asn < 65536,
            "AsLevelDataPlane: synthetic addressing needs 16-bit ASNs");
    add_prefix(as, net::Prefix(net::Ipv4Address(
                                   static_cast<std::uint32_t>(asn) << 16),
                               16));
  }
}

void AsLevelDataPlane::add_prefix(NodeId as, const net::Prefix& prefix) {
  prefixes_.insert(prefix, as);
}

net::Ipv4Address AsLevelDataPlane::host_address(NodeId as) const {
  const topo::AsNumber asn = store_->graph().as_number(as);
  return net::Ipv4Address((static_cast<std::uint32_t>(asn) << 16) | 1);
}

std::optional<NodeId> AsLevelDataPlane::destination_as(
    net::Ipv4Address address) const {
  auto match = prefixes_.lookup(address);
  if (!match) return std::nullopt;
  return *match->value;
}

TunnelId AsLevelDataPlane::install_tunnel(const SplicedPath& spliced,
                                          MatchRule match) {
  return install_split_tunnels({spliced}, {1.0}, std::move(match)).front();
}

std::vector<TunnelId> AsLevelDataPlane::install_split_tunnels(
    const std::vector<SplicedPath>& spliced_paths,
    const std::vector<double>& weights, MatchRule match) {
  require(!spliced_paths.empty(), "install_split_tunnels: no paths");
  require(spliced_paths.size() == weights.size(),
          "install_split_tunnels: one weight per path required");
  const NodeId head = spliced_paths.front().as_path.front();
  const NodeId destination = spliced_paths.front().as_path.back();

  UpstreamEntry entry;
  std::vector<TunnelId> ids;
  for (const SplicedPath& spliced : spliced_paths) {
    require(spliced.as_path.size() >= 2,
            "install_split_tunnels: spliced path too short");
    require(spliced.offered.path.size() >= 2,
            "install_split_tunnels: offered route has no exit link");
    require(spliced.as_path.front() == head &&
                spliced.as_path.back() == destination,
            "install_split_tunnels: paths must share head and destination");
    const NodeId responder = spliced.responder;
    const TunnelId id = ++next_tunnel_id_[responder];
    // Downstream: directed forwarding onto the negotiated exit link
    // (Section 4.1's footnote: "directed forwarding" lets the egress pick a
    // non-default exit link per tunnel).
    tunnel_tables_[responder][id] = DownstreamEntry{spliced.offered.path[1]};
    entry.targets.push_back(TunnelTarget{responder, id});
    ids.push_back(id);
  }
  if (entry.targets.size() > 1) entry.splitter.emplace(weights);

  // Upstream: classify traffic for the destination into the tunnel set. By
  // default every packet toward the destination's prefix is diverted; the
  // caller can narrow the rule ("real-time traffic via BCF, best-effort via
  // BEF", Section 3.5).
  if (!match.destination_prefix) {
    const topo::AsNumber asn = store_->graph().as_number(destination);
    match.destination_prefix = net::Prefix(
        net::Ipv4Address(static_cast<std::uint32_t>(asn) << 16), 16);
  }
  classifiers_[head].add_rule(std::move(match), std::move(entry));
  return ids;
}

void AsLevelDataPlane::remove_tunnel(NodeId responder, TunnelId id) {
  auto table = tunnel_tables_.find(responder);
  if (table != tunnel_tables_.end()) table->second.erase(id);
  // Upstream classifiers referencing a dead tunnel fail closed at the
  // responder (packets are dropped there), mirroring the failure mode the
  // soft-state protocol exists to clean up. Callers normally reinstall.
}

TraceResult AsLevelDataPlane::trace(Packet packet, NodeId origin_as,
                                    std::size_t max_hops) {
  TraceResult result;
  NodeId current = origin_as;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    const auto dest = destination_as(packet.outer().destination);
    if (!dest) {
      result.hops.push_back({current, TraceHop::Action::Drop, std::nullopt});
      return result;
    }

    if (*dest == current) {
      if (packet.encapsulation_depth() > 0) {
        // Tunnel endpoint: decapsulate and direct-forward by tunnel id.
        const auto tunnel_id = packet.outer().tunnel_id;
        const auto table = tunnel_tables_.find(current);
        if (!tunnel_id || table == tunnel_tables_.end() ||
            table->second.find(*tunnel_id) == table->second.end()) {
          result.hops.push_back(
              {current, TraceHop::Action::Drop, tunnel_id});
          return result;
        }
        const DownstreamEntry& entry = table->second.at(*tunnel_id);
        packet.decapsulate();
        result.hops.push_back(
            {current, TraceHop::Action::Decapsulate, tunnel_id});
        current = entry.exit_neighbor;
        continue;
      }
      result.hops.push_back({current, TraceHop::Action::Deliver, std::nullopt});
      result.delivered = true;
      return result;
    }

    // Tunnel-head classification: only packets not already in a tunnel are
    // considered, so transit ASes do not re-wrap in-flight tunnel traffic.
    if (packet.encapsulation_depth() == 0) {
      auto classifier = classifiers_.find(current);
      if (classifier != classifiers_.end()) {
        if (const UpstreamEntry* entry =
                classifier->second.classify(packet)) {
          // One rule may fan out over several tunnels: the flow hash picks
          // the path and keeps every packet of the flow on it.
          const TunnelTarget& target =
              entry->splitter
                  ? entry->targets[entry->splitter->path_for(packet)]
                  : entry->targets.front();
          packet.encapsulate(host_address(current),
                             host_address(target.responder),
                             target.tunnel_id);
          result.hops.push_back(
              {current, TraceHop::Action::Encapsulate, target.tunnel_id});
          continue;  // re-evaluate forwarding with the new outer header
        }
      }
    }

    // Plain destination-based forwarding along the stable BGP route.
    const bgp::RoutingTree& tree = store_->tree(*dest);
    if (!tree.reachable(current)) {
      result.hops.push_back({current, TraceHop::Action::Drop, std::nullopt});
      return result;
    }
    result.hops.push_back({current, TraceHop::Action::Forward, std::nullopt});
    current = tree.next_hop(current);
  }
  result.hops.push_back({current, TraceHop::Action::Drop, std::nullopt});
  return result;
}

}  // namespace miro::dataplane
