// The three tunnel-endpoint addressing schemes of Section 4.2.
//
// A downstream AS must tell the upstream AS what IP address to encapsulate
// packets to, and its routers must carry those packets to the right exit
// link. The dissertation describes three options with different trade-offs:
//
//   ExitLinkAddress     — every exit link gets its own reserved address; the
//                         address alone identifies the exit (no tunnel id
//                         needed), but internal topology leaks and addresses
//                         are consumed per link.
//   EgressRouterAddress — the egress router's address is advertised; fewer
//                         addresses, but the egress must read the tunnel id
//                         to pick the exit link ("directed forwarding").
//   SharedAddress       — one reserved address for all tunnels; ingress
//                         routers rewrite it to the closest egress for the
//                         packet's tunnel id. Nothing internal is exposed and
//                         the AS can re-route freely, at the cost of
//                         data-plane rewriting at every ingress router.
//
// This model implements all three over one multi-router AS so their
// behaviour and state costs can be compared (see the micro benchmark).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "topology/as_graph.hpp"

namespace miro::dataplane {

enum class EncapsulationScheme {
  ExitLinkAddress,
  EgressRouterAddress,
  SharedAddress,
};

const char* to_string(EncapsulationScheme scheme);

class TunnelEndpointAs {
 public:
  using RouterId = std::uint32_t;
  using ExitLinkId = std::uint32_t;

  /// `address_block` must be at least a /24; router and link addresses are
  /// assigned from it (.2.. for routers, .101.. for exit links, .100 shared).
  TunnelEndpointAs(EncapsulationScheme scheme, net::Prefix address_block);

  RouterId add_router();
  void add_internal_link(RouterId a, RouterId b, int igp_weight);
  ExitLinkId add_exit_link(RouterId egress, topo::AsNumber neighbor_as);

  /// Establishes tunnel state that exits via `exit`; returns the tunnel id
  /// and the address the upstream AS must encapsulate to.
  struct TunnelEndpoint {
    net::TunnelId id = 0;
    net::Ipv4Address address;
  };
  TunnelEndpoint establish_tunnel(ExitLinkId exit);

  void remove_tunnel(net::TunnelId id);

  /// Carries an encapsulated packet from ingress router `at` to its exit:
  /// scheme-specific ingress processing (SharedAddress rewrites the outer
  /// destination), shortest-path internal routing, decapsulation, and
  /// directed forwarding at the egress.
  struct DeliveryRecord {
    bool delivered = false;
    std::vector<RouterId> router_path;
    std::optional<ExitLinkId> exit;
    bool rewritten = false;  ///< ingress rewriting occurred (SharedAddress)
  };
  DeliveryRecord deliver(net::Packet packet, RouterId ingress) const;

  /// How many internal addresses this scheme has exposed to upstream ASes —
  /// the privacy/state metric the dissertation weighs the schemes by.
  std::size_t exposed_address_count() const;

  net::Ipv4Address router_address(RouterId r) const;
  net::Ipv4Address exit_link_address(ExitLinkId link) const;
  net::Ipv4Address shared_address() const;
  std::size_t router_count() const { return routers_.size(); }

 private:
  struct InternalLink {
    RouterId to;
    int weight;
  };
  struct Router {
    net::Ipv4Address address;
    std::vector<InternalLink> links;
  };
  struct ExitLink {
    RouterId egress;
    topo::AsNumber neighbor_as;
    net::Ipv4Address address;
  };
  struct Tunnel {
    ExitLinkId exit;
  };

  /// Shortest router path between two routers; empty when disconnected.
  std::vector<RouterId> internal_path(RouterId from, RouterId to) const;

  EncapsulationScheme scheme_;
  net::Prefix block_;
  std::vector<Router> routers_;
  std::vector<ExitLink> exit_links_;
  std::unordered_map<net::TunnelId, Tunnel> tunnels_;
  net::TunnelId next_tunnel_id_ = 1;
};

}  // namespace miro::dataplane
