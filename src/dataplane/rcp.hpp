// A per-AS Routing Control Platform (Section 4.1, second implementation
// option).
//
// "A separate service, such as the Routing Control Platform (RCP), ... can
// manage the interdomain routing information on behalf of the routers. ...
// The routing control platform in AS X handles the requests from the
// customer's routing control platform for alternate routes to reach the
// destination. The routing control platform can also install the data-plane
// state, such as tunneling tables or packet classifiers, in the routers to
// direct traffic along the chosen paths."
//
// The RCP owns the AS's router-level BGP state (RouterLevelAs) and its
// tunnel-endpoint forwarding state (TunnelEndpointAs), knows which exit link
// each eBGP session rides, aggregates every valid AS path known anywhere in
// the AS (the MIRO extension of Section 4.1), answers alternate-route
// requests, and installs decapsulation + directed-forwarding state when a
// negotiation concludes.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/router_level.hpp"
#include "dataplane/encapsulation.hpp"

namespace miro::dataplane {

class RoutingControlPlatform {
 public:
  using RouterId = bgp::RouterLevelAs::RouterId;
  using ExitLinkId = TunnelEndpointAs::ExitLinkId;

  RoutingControlPlatform(topo::AsNumber asn, EncapsulationScheme scheme,
                         net::Prefix address_block)
      : asn_(asn), forwarding_(scheme, address_block) {}

  topo::AsNumber asn() const { return asn_; }
  bgp::RouterLevelAs& routers() { return routers_; }
  const bgp::RouterLevelAs& routers() const { return routers_; }
  TunnelEndpointAs& forwarding() { return forwarding_; }

  /// Mirrors a router into the forwarding model; call once per router, in
  /// router-id order. Returns the forwarding-side id (equal by invariant).
  RouterId add_router(net::Ipv4Address loopback);
  void add_internal_link(RouterId a, RouterId b, int igp_weight);

  /// Declares that `egress` has an eBGP session / exit link to
  /// `neighbor_as`; the RCP needs this to bind negotiated paths to links.
  ExitLinkId add_exit_link(RouterId egress, topo::AsNumber neighbor_as);

  /// Injects an eBGP-learned route at `egress` (the session to the path's
  /// first AS must have been declared). Call converge() afterwards.
  void learn_route(RouterId egress, std::vector<topo::AsNumber> as_path,
                   int local_pref, net::Ipv4Address peer_address);
  void converge() { routers_.converge(); }

  /// Every distinct valid AS path known anywhere in the AS — what MIRO may
  /// offer, regardless of per-router best-path choices.
  std::vector<bgp::RouterRoute> all_paths() const {
    return routers_.all_valid_paths();
  }

  /// Alternate-route request handling: all known paths that avoid `avoid`
  /// (when set) and differ from the AS-wide default (the path most routers
  /// selected), most preferred first.
  std::vector<bgp::RouterRoute> alternates(
      std::optional<topo::AsNumber> avoid) const;

  /// Concludes a negotiation for `as_path`: finds the exit link of the
  /// path's first AS and creates the tunnel endpoint. Returns nullopt when
  /// the path is not actually available in this AS.
  struct Binding {
    net::TunnelId tunnel_id = 0;
    net::Ipv4Address endpoint_address;
    ExitLinkId exit_link = 0;
  };
  std::optional<Binding> establish_tunnel(
      const std::vector<topo::AsNumber>& as_path);

  void release_tunnel(net::TunnelId id) { forwarding_.remove_tunnel(id); }

  /// Carries an encapsulated packet arriving at `ingress` through the AS
  /// (scheme-specific processing + internal routing + directed forwarding).
  TunnelEndpointAs::DeliveryRecord deliver(net::Packet packet,
                                           RouterId ingress) const {
    return forwarding_.deliver(std::move(packet), ingress);
  }

 private:
  topo::AsNumber asn_;
  bgp::RouterLevelAs routers_;
  TunnelEndpointAs forwarding_;
  /// neighbor AS -> exit links toward it (a neighbor can connect at
  /// multiple routers, like AS W in Figure 4.1).
  std::unordered_map<topo::AsNumber, std::vector<ExitLinkId>> exits_;
};

}  // namespace miro::dataplane
