#include "dataplane/encapsulation.hpp"

#include <algorithm>
#include <climits>
#include <queue>
#include <set>

#include "common/error.hpp"

namespace miro::dataplane {

const char* to_string(EncapsulationScheme scheme) {
  switch (scheme) {
    case EncapsulationScheme::ExitLinkAddress: return "exit-link-address";
    case EncapsulationScheme::EgressRouterAddress:
      return "egress-router-address";
    case EncapsulationScheme::SharedAddress: return "shared-address";
  }
  return "?";
}

TunnelEndpointAs::TunnelEndpointAs(EncapsulationScheme scheme,
                                   net::Prefix address_block)
    : scheme_(scheme), block_(address_block) {
  require(address_block.length() <= 24,
          "TunnelEndpointAs: address block must be at least a /24");
}

net::Ipv4Address TunnelEndpointAs::router_address(RouterId r) const {
  require(r < routers_.size(), "TunnelEndpointAs: router id out of range");
  return routers_[r].address;
}

net::Ipv4Address TunnelEndpointAs::exit_link_address(ExitLinkId link) const {
  require(link < exit_links_.size(),
          "TunnelEndpointAs: exit link id out of range");
  return exit_links_[link].address;
}

net::Ipv4Address TunnelEndpointAs::shared_address() const {
  return net::Ipv4Address(block_.address().value() | 100);
}

TunnelEndpointAs::RouterId TunnelEndpointAs::add_router() {
  require(routers_.size() < 90, "TunnelEndpointAs: router address pool full");
  const auto id = static_cast<RouterId>(routers_.size());
  routers_.push_back(
      Router{net::Ipv4Address(block_.address().value() | (2 + id)), {}});
  return id;
}

void TunnelEndpointAs::add_internal_link(RouterId a, RouterId b,
                                         int igp_weight) {
  require(a < routers_.size() && b < routers_.size() && a != b,
          "TunnelEndpointAs: bad internal link endpoints");
  require(igp_weight > 0, "TunnelEndpointAs: IGP weight must be positive");
  routers_[a].links.push_back({b, igp_weight});
  routers_[b].links.push_back({a, igp_weight});
}

TunnelEndpointAs::ExitLinkId TunnelEndpointAs::add_exit_link(
    RouterId egress, topo::AsNumber neighbor_as) {
  require(egress < routers_.size(),
          "TunnelEndpointAs: egress router out of range");
  require(exit_links_.size() < 150,
          "TunnelEndpointAs: exit-link address pool full");
  const auto id = static_cast<ExitLinkId>(exit_links_.size());
  exit_links_.push_back(ExitLink{
      egress, neighbor_as,
      net::Ipv4Address(block_.address().value() | (101 + id))});
  return id;
}

TunnelEndpointAs::TunnelEndpoint TunnelEndpointAs::establish_tunnel(
    ExitLinkId exit) {
  require(exit < exit_links_.size(), "TunnelEndpointAs: unknown exit link");
  const net::TunnelId id = next_tunnel_id_++;
  tunnels_.emplace(id, Tunnel{exit});
  TunnelEndpoint endpoint;
  endpoint.id = id;
  switch (scheme_) {
    case EncapsulationScheme::ExitLinkAddress:
      endpoint.address = exit_links_[exit].address;
      break;
    case EncapsulationScheme::EgressRouterAddress:
      endpoint.address = routers_[exit_links_[exit].egress].address;
      break;
    case EncapsulationScheme::SharedAddress:
      endpoint.address = shared_address();
      break;
  }
  return endpoint;
}

void TunnelEndpointAs::remove_tunnel(net::TunnelId id) { tunnels_.erase(id); }

std::vector<TunnelEndpointAs::RouterId> TunnelEndpointAs::internal_path(
    RouterId from, RouterId to) const {
  std::vector<int> distance(routers_.size(), INT_MAX / 4);
  std::vector<RouterId> previous(routers_.size(), from);
  using Item = std::pair<int, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  distance[from] = 0;
  queue.push({0, from});
  while (!queue.empty()) {
    auto [d, r] = queue.top();
    queue.pop();
    if (d > distance[r]) continue;
    if (r == to) break;
    for (const InternalLink& link : routers_[r].links) {
      if (d + link.weight < distance[link.to]) {
        distance[link.to] = d + link.weight;
        previous[link.to] = r;
        queue.push({distance[link.to], link.to});
      }
    }
  }
  std::vector<RouterId> path;
  if (from != to && distance[to] >= INT_MAX / 4) return path;  // disconnected
  for (RouterId r = to;; r = previous[r]) {
    path.push_back(r);
    if (r == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TunnelEndpointAs::DeliveryRecord TunnelEndpointAs::deliver(
    net::Packet packet, RouterId ingress) const {
  require(ingress < routers_.size(),
          "TunnelEndpointAs: ingress router out of range");
  require(packet.encapsulation_depth() > 0,
          "TunnelEndpointAs: packet is not encapsulated");
  DeliveryRecord record;

  // Resolve the tunnel from the packet's shim.
  const auto tunnel_id = packet.outer().tunnel_id;
  const Tunnel* tunnel = nullptr;
  if (tunnel_id) {
    auto it = tunnels_.find(*tunnel_id);
    if (it != tunnels_.end()) tunnel = &it->second;
  }

  // Scheme-specific ingress processing and egress resolution.
  net::Ipv4Address outer = packet.outer().destination;
  std::optional<ExitLinkId> exit;
  switch (scheme_) {
    case EncapsulationScheme::ExitLinkAddress: {
      // The address alone picks the exit link; no tunnel id is needed.
      for (ExitLinkId id = 0; id < exit_links_.size(); ++id)
        if (exit_links_[id].address == outer) exit = id;
      break;
    }
    case EncapsulationScheme::EgressRouterAddress: {
      // Address picks the egress router; tunnel id picks the exit link.
      if (tunnel != nullptr &&
          routers_[exit_links_[tunnel->exit].egress].address == outer)
        exit = tunnel->exit;
      break;
    }
    case EncapsulationScheme::SharedAddress: {
      // The ingress router owns a (tunnel id -> egress set) table, picks the
      // closest egress, and rewrites the outer destination (Section 4.2's
      // "R1 replaces 12.34.56.100 with 12.34.56.2").
      if (tunnel != nullptr && outer == shared_address()) {
        exit = tunnel->exit;
        packet.rewrite_outer_destination(
            routers_[exit_links_[*exit].egress].address);
        record.rewritten = true;
      }
      break;
    }
  }
  if (!exit) return record;  // no matching state: drop

  record.router_path = internal_path(ingress, exit_links_[*exit].egress);
  if (record.router_path.empty() && ingress != exit_links_[*exit].egress)
    return record;  // internally partitioned

  packet.decapsulate();  // the egress strips the outer header...
  record.exit = exit;    // ...and direct-forwards onto the exit link
  record.delivered = true;
  return record;
}

std::size_t TunnelEndpointAs::exposed_address_count() const {
  switch (scheme_) {
    case EncapsulationScheme::ExitLinkAddress: {
      std::set<ExitLinkId> used;
      for (const auto& [id, tunnel] : tunnels_) used.insert(tunnel.exit);
      return used.size();
    }
    case EncapsulationScheme::EgressRouterAddress: {
      std::set<RouterId> used;
      for (const auto& [id, tunnel] : tunnels_)
        used.insert(exit_links_[tunnel.exit].egress);
      return used.size();
    }
    case EncapsulationScheme::SharedAddress:
      return tunnels_.empty() ? 0 : 1;
  }
  return 0;
}

}  // namespace miro::dataplane
