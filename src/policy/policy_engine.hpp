// Evaluation of parsed Chapter 6 policies.
//
// Ties the configuration language to routing behaviour:
//   import side   — Cisco-style route-map application (the FIX-LOCALPREF
//                   example of Section 6.1);
//   requester side— negotiation triggering ("initiate a negotiation if the
//                   'deny AS 312' rule results in an empty candidate set")
//                   and target selection ("each AS that sits between itself
//                   and AS 312 on any of the current candidate paths");
//   responder side— admission control and price tagging
//                   ("sell all customer routes for 120, peer routes for 180").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "policy/policy_config.hpp"

namespace miro::policy {

/// A route as the policy layer sees it: the received AS_PATH attribute
/// (which, as in real BGP, does not include the local AS) plus attributes.
struct CandidateRoute {
  std::vector<topo::AsNumber> as_path;
  int local_pref = 100;
};

/// A triggered negotiation with its parameters.
struct NegotiationTrigger {
  std::string negotiation_name;
  std::optional<int> max_cost;
  /// ASes to contact, in contact order (closest on the path first).
  std::vector<topo::AsNumber> targets;
};

class PolicyEngine {
 public:
  explicit PolicyEngine(BgpConfig config) : config_(std::move(config)) {}

  const BgpConfig& config() const { return config_; }

  /// Applies a route map to an incoming route (import processing): returns
  /// the transformed route, or nullopt when a deny clause matches (or when
  /// no clause matches — Cisco's implicit deny).
  std::optional<CandidateRoute> apply_route_map(std::string_view name,
                                                CandidateRoute route) const;

  /// Checks a route map's negotiation trigger against the current candidate
  /// set: a clause with `match empty path <acl>` fires when *no* candidate
  /// passes the access list. On firing, negotiation targets are computed from
  /// the candidates: every intermediate AS sitting before the first AS that
  /// the negotiation's `match all path` pattern identifies.
  std::optional<NegotiationTrigger> evaluate_trigger(
      std::string_view route_map_name,
      std::span<const CandidateRoute> candidates) const;

  /// Responder admission: trust list plus tunnel-count limit.
  bool admits(topo::AsNumber requester, std::size_t active_tunnels) const;

  /// Responder price for a route, from the ordered filter list; nullopt when
  /// no filter permits the route (it must not be offered).
  std::optional<int> price_for(const CandidateRoute& route) const;

 private:
  std::vector<topo::AsNumber> targets_for(
      const NegotiationSpec& spec,
      std::span<const CandidateRoute> candidates) const;

  BgpConfig config_;
};

}  // namespace miro::policy
