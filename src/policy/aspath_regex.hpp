// Cisco-style AS-path regular expressions.
//
// BGP operators filter routes with regexes over the textual AS path, e.g.
// `_312_` = "AS 312 appears anywhere in the path" (the dissertation's
// route-map and access-list examples in Chapter 6). This is a from-scratch
// Thompson-NFA engine over the rendered AS-path string with the classic
// Cisco token set:
//
//   _        boundary assertion: start, end, or next to the separator
//            between AS numbers
//   .        any single character
//   [0-9]    character class (ranges; negation with leading ^)
//   ^  $     start / end anchors
//   ( | )    grouping and alternation
//   * + ?    postfix repetition
//   1234     literal digits (an AS number is matched digit-by-digit; wrap in
//            `_..._` to match a whole AS number)
//
// A match anywhere in the string succeeds (substring semantics, as in Cisco);
// use ^/$ to anchor.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "topology/as_graph.hpp"

namespace miro::policy {

class AsPathRegex {
 public:
  /// Compiles the pattern; throws miro::Error on syntax errors.
  explicit AsPathRegex(std::string_view pattern);

  /// Matches against an AS path given as numbers (rendered "1 2 3").
  bool matches(const std::vector<topo::AsNumber>& as_path) const;

  /// Matches against a pre-rendered AS-path string.
  bool matches_text(std::string_view as_path_text) const;

  const std::string& pattern() const { return pattern_; }

  /// Emptiness analysis for the static analyzer: true when no rendered
  /// AS path can ever match. The check runs over the alphabet the matcher
  /// actually sees — decimal digits plus the single-space separator — so a
  /// pattern demanding letters (`[a-z]`), or characters after `$`, or a
  /// mid-number `_` squeezed between two mandatory digits, is reported as
  /// unmatchable. Exact over that alphabet: assertions (`^`, `$`, `_`) are
  /// tracked symbolically, not approximated.
  bool language_empty() const;

  /// Product-emptiness for the static analyzer: true when no rendered AS
  /// path can match this pattern *and* `other` simultaneously. Runs the
  /// two Thompson NFAs in lock-step over a shared witness string, each with
  /// its own substring window (a before/in/after phase per NFA models the
  /// Cisco match-anywhere semantics), consuming the concrete alphabet the
  /// matcher sees — the ten digits plus the separator space — so digit
  /// constraints (`^1$` vs `^2$`) are decided exactly, while `^`/`$`/`_`
  /// assertions share the same witness abstraction language_empty() uses.
  /// Conservative under the blowup guard: when the product explores more
  /// than `max_configs` configurations it gives up and returns false
  /// ("may intersect"), never a wrong "disjoint".
  bool intersection_empty(const AsPathRegex& other,
                          std::size_t max_configs = 1u << 20) const;

  /// Renders an AS path the way the matcher sees it.
  static std::string render(const std::vector<topo::AsNumber>& as_path);

 private:
  struct Transition {
    enum class Kind : std::uint8_t {
      Epsilon,      // always traversable, zero width
      Boundary,     // `_`: zero width, at a boundary position
      StartAnchor,  // `^`: zero width, position 0
      EndAnchor,    // `$`: zero width, end of text
      CharClass,    // consumes one character
    };
    Kind kind = Kind::Epsilon;
    bool negated = false;
    bool any = false;    // `.`
    std::string chars;   // explicit class members
    std::uint32_t target = 0;

    bool accepts_char(char c) const;
  };
  struct State {
    std::vector<Transition> out;
  };

  struct Fragment {
    std::uint32_t start;
    std::uint32_t end;  // unique exit state; gets no outgoing edges until
                        // the enclosing construct patches it
  };

  Fragment parse_alternation(std::string_view& input);
  Fragment parse_concat(std::string_view& input);
  Fragment parse_repeat(std::string_view& input);
  Fragment parse_atom(std::string_view& input);
  std::uint32_t new_state();
  void link(std::uint32_t from, Transition transition);

  std::string pattern_;
  std::vector<State> states_;
  std::uint32_t start_state_ = 0;
  std::uint32_t accept_state_ = 0;
};

}  // namespace miro::policy
