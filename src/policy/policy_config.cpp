#include "policy/policy_config.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace miro::policy {

bool AsPathAccessList::permits(
    const std::vector<topo::AsNumber>& as_path) const {
  for (const Entry& entry : entries)
    if (entry.regex.matches(as_path)) return entry.permit;
  return false;  // implicit deny
}

std::vector<const RouteMapClause*> BgpConfig::route_map(
    std::string_view name) const {
  std::vector<const RouteMapClause*> clauses;
  for (const RouteMapClause& clause : route_maps)
    if (clause.name == name) clauses.push_back(&clause);
  std::sort(clauses.begin(), clauses.end(),
            [](const RouteMapClause* a, const RouteMapClause* b) {
              return a->sequence < b->sequence;
            });
  return clauses;
}

const AsPathAccessList* BgpConfig::access_list(int id) const {
  auto it = access_lists.find(id);
  return it == access_lists.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  BgpConfig parse() {
    std::size_t line_number = 0;
    for (std::string_view raw : split(text_, '\n')) {
      ++line_number;
      line_number_ = line_number;
      std::string_view line = trim(raw);
      if (line.empty() || line.front() == '!' || line.front() == '#')
        continue;
      parse_statement(split_whitespace(line));
    }
    return std::move(config_);
  }

 private:
  enum class Context { None, RouteMap, Negotiation, Responder, Filter };

  [[noreturn]] void fail(std::string_view why) const {
    throw Error("policy config: line " + std::to_string(line_number_) + ": " +
                std::string(why));
  }

  topo::AsNumber parse_asn(std::string_view token) const {
    auto value = parse_u64(token);
    if (!value || *value > 0xffffffffULL) fail("malformed AS number");
    return static_cast<topo::AsNumber>(*value);
  }

  int parse_int(std::string_view token) const {
    auto value = parse_i64(token);
    if (!value) fail("malformed integer");
    return static_cast<int>(*value);
  }

  void parse_statement(const std::vector<std::string_view>& words) {
    if (words.empty()) return;
    const std::string_view head = words[0];
    if (head == "router") {
      if (words.size() != 3 || words[1] != "bgp") fail("expected 'router bgp <asn>'");
      if (config_.local_as) fail("duplicate 'router bgp' statement");
      config_.local_as = parse_asn(words[2]);
      context_ = Context::None;
    } else if (head == "neighbor") {
      parse_neighbor(words);
      context_ = Context::None;
    } else if (head == "route-map") {
      parse_route_map_header(words);
      context_ = Context::RouteMap;
    } else if (head == "ip") {
      parse_access_list(words);
      // `ip ...` is a top-level command: it closes any open block, so a
      // following `match`/`set` cannot silently attach to a stale block.
      context_ = Context::None;
    } else if (head == "negotiation" && words.size() >= 2 &&
               words[1] == "filter") {
      if (words.size() != 3) fail("expected 'negotiation filter <name>'");
      ensure_responder();
      context_ = Context::Filter;
    } else if (head == "negotiation") {
      if (words.size() != 2) fail("expected 'negotiation <name>'");
      NegotiationSpec spec;
      spec.name = std::string(words[1]);
      spec.line = static_cast<int>(line_number_);
      current_negotiation_ = spec.name;
      if (!config_.negotiations.emplace(spec.name, std::move(spec)).second)
        fail("duplicate negotiation block '" + current_negotiation_ + "'");
      context_ = Context::Negotiation;
    } else if (head == "accept") {
      parse_accept(words);
      context_ = Context::Responder;
    } else if (head == "match") {
      parse_match(words);
    } else if (head == "set") {
      parse_set(words);
    } else if (head == "try") {
      if (context_ != Context::RouteMap || words.size() != 3 ||
          words[1] != "negotiation")
        fail("'try negotiation <name>' only valid inside a route-map");
      config_.route_maps.back().try_negotiation = std::string(words[2]);
      config_.route_maps.back().try_negotiation_line =
          static_cast<int>(line_number_);
    } else if (head == "start") {
      parse_start(words);
    } else if (head == "when") {
      parse_when(words);
    } else if (head == "filter") {
      parse_filter(words);
    } else {
      fail("unknown statement '" + std::string(head) + "'");
    }
  }

  void parse_neighbor(const std::vector<std::string_view>& words) {
    if (words.size() < 4) fail("truncated neighbor statement");
    auto address = net::Ipv4Address::parse(words[1]);
    if (!address) fail("malformed neighbor address");
    NeighborBinding* binding = nullptr;
    for (NeighborBinding& existing : config_.neighbors)
      if (existing.address == *address) binding = &existing;
    if (binding == nullptr) {
      config_.neighbors.push_back(NeighborBinding{});
      config_.neighbors.back().address = *address;
      binding = &config_.neighbors.back();
    }
    if (words[2] == "remote-as") {
      if (words.size() != 4) fail("expected 'remote-as <asn>'");
      binding->remote_as = parse_asn(words[3]);
    } else if (words[2] == "route-map") {
      if (words.size() != 5) fail("expected 'route-map <name> in|out'");
      if (words[4] == "in") {
        binding->route_map_in = std::string(words[3]);
        binding->route_map_in_line = static_cast<int>(line_number_);
      } else if (words[4] == "out") {
        binding->route_map_out = std::string(words[3]);
        binding->route_map_out_line = static_cast<int>(line_number_);
      } else {
        fail("route-map direction must be 'in' or 'out'");
      }
    } else {
      fail("unknown neighbor attribute");
    }
  }

  void parse_route_map_header(const std::vector<std::string_view>& words) {
    if (words.size() < 3 || words.size() > 4)
      fail("expected 'route-map <name> permit|deny [<sequence>]'");
    RouteMapClause clause;
    clause.name = std::string(words[1]);
    clause.line = static_cast<int>(line_number_);
    if (words[2] == "permit") {
      clause.permit = true;
    } else if (words[2] == "deny") {
      clause.permit = false;
    } else {
      fail("route-map action must be 'permit' or 'deny'");
    }
    clause.sequence =
        words.size() >= 4 ? parse_int(words[3]) : next_sequence_;
    next_sequence_ = clause.sequence + 10;
    config_.route_maps.push_back(std::move(clause));
  }

  void parse_access_list(const std::vector<std::string_view>& words) {
    // ip as-path access-list <id> permit|deny <regex>
    if (words.size() != 6 || words[1] != "as-path" || words[2] != "access-list")
      fail("expected 'ip as-path access-list <id> permit|deny <regex>'");
    const int id = parse_int(words[3]);
    bool permit;
    if (words[4] == "permit") {
      permit = true;
    } else if (words[4] == "deny") {
      permit = false;
    } else {
      fail("access-list action must be 'permit' or 'deny'");
    }
    auto [it, inserted] = config_.access_lists.try_emplace(id);
    it->second.id = id;
    it->second.entries.push_back(AsPathAccessList::Entry{
        permit, AsPathRegex(words[5]), static_cast<int>(line_number_)});
  }

  void parse_match(const std::vector<std::string_view>& words) {
    if (context_ == Context::RouteMap) {
      RouteMapClause& clause = config_.route_maps.back();
      if (words.size() == 3 && words[1] == "as-path") {
        clause.match_as_path_acl = parse_int(words[2]);
        clause.match_as_path_line = static_cast<int>(line_number_);
      } else if (words.size() == 4 && words[1] == "empty" &&
                 words[2] == "path") {
        clause.match_empty_path_acl = parse_int(words[3]);
        clause.match_empty_path_line = static_cast<int>(line_number_);
      } else {
        fail("unsupported match inside route-map");
      }
    } else if (context_ == Context::Negotiation) {
      // match all path <regex>
      if (words.size() != 4 || words[1] != "all" || words[2] != "path")
        fail("expected 'match all path <regex>'");
      NegotiationSpec& spec = config_.negotiations.at(current_negotiation_);
      spec.target_path_regex = AsPathRegex(words[3]);
      spec.target_path_line = static_cast<int>(line_number_);
    } else {
      fail("'match' outside a route-map or negotiation block");
    }
  }

  void parse_set(const std::vector<std::string_view>& words) {
    if (context_ == Context::RouteMap) {
      if (words.size() != 3 || words[1] != "local-preference")
        fail("expected 'set local-preference <n>'");
      config_.route_maps.back().set_local_pref = parse_int(words[2]);
    } else if (context_ == Context::Filter) {
      if (words.size() != 3 || words[1] != "tunnel_cost")
        fail("expected 'set tunnel_cost <n>'");
      ResponderSpec& responder = *config_.responder;
      if (responder.filters.empty() || filter_has_cost_)
        fail("'set tunnel_cost' must follow a 'filter permit' line");
      responder.filters.back().tunnel_cost = parse_int(words[2]);
      filter_has_cost_ = true;
    } else {
      fail("'set' outside a route-map or negotiation filter");
    }
  }

  void parse_start(const std::vector<std::string_view>& words) {
    // start negotiation with maximum cost <n>
    if (context_ != Context::Negotiation)
      fail("'start negotiation' outside a negotiation block");
    if (words.size() != 6 || words[1] != "negotiation" || words[2] != "with" ||
        words[3] != "maximum" || words[4] != "cost")
      fail("expected 'start negotiation with maximum cost <n>'");
    config_.negotiations.at(current_negotiation_).max_cost =
        parse_int(words[5]);
  }

  void parse_accept(const std::vector<std::string_view>& words) {
    // accept negotiation from any | accept negotiation from as <asn>...
    if (words.size() < 4 || words[1] != "negotiation" || words[2] != "from")
      fail("expected 'accept negotiation from any|as <asn>...'");
    ensure_responder();
    ResponderSpec& responder = *config_.responder;
    if (words[3] == "any") {
      responder.accept_any = true;
    } else if (words[3] == "as") {
      responder.accept_any = false;
      for (std::size_t i = 4; i < words.size(); ++i)
        responder.accept_asns.push_back(parse_asn(words[i]));
      if (responder.accept_asns.empty()) fail("no AS numbers after 'as'");
    } else {
      fail("expected 'any' or 'as <asn>...'");
    }
  }

  void parse_when(const std::vector<std::string_view>& words) {
    // when tunnel_number < <n>
    if (context_ != Context::Responder)
      fail("'when' outside an accept-negotiation block");
    if (words.size() != 4 || words[1] != "tunnel_number" || words[2] != "<")
      fail("expected 'when tunnel_number < <n>'");
    const int bound = parse_int(words[3]);
    if (bound < 0) fail("tunnel_number bound must be non-negative");
    config_.responder->max_tunnels = static_cast<std::size_t>(bound);
    config_.responder->when_line = static_cast<int>(line_number_);
  }

  void parse_filter(const std::vector<std::string_view>& words) {
    // filter permit local_pref > <n>
    if (context_ != Context::Filter)
      fail("'filter' outside a negotiation filter block");
    if (words.size() != 5 || words[1] != "permit" ||
        words[2] != "local_pref" || words[3] != ">")
      fail("expected 'filter permit local_pref > <n>'");
    config_.responder->filters.push_back(ResponderSpec::Filter{
        parse_int(words[4]), 0, static_cast<int>(line_number_)});
    filter_has_cost_ = false;
  }

  void ensure_responder() {
    if (!config_.responder) config_.responder = ResponderSpec{};
  }

  std::string_view text_;
  BgpConfig config_;
  Context context_ = Context::None;
  std::string current_negotiation_;
  std::size_t line_number_ = 0;
  int next_sequence_ = 10;
  bool filter_has_cost_ = true;
};

}  // namespace

BgpConfig parse_config(std::string_view text) { return Parser(text).parse(); }

}  // namespace miro::policy
