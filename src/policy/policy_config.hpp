// The "extended route-map" policy-configuration language of Chapter 6.
//
// The dissertation extends Cisco's route-map syntax with negotiation-related
// statements (Section 6.3's example). The grammar accepted here, one
// statement per line, '!' or '#' starting a comment line:
//
//   router bgp <asn>
//   neighbor <ip> remote-as <asn>
//   neighbor <ip> route-map <name> (in|out)
//   route-map <name> (permit|deny) [<sequence>]
//     match as-path <acl-id>
//     match empty path <acl-id>          # trigger: no candidate passes acl
//     set local-preference <n>
//     try negotiation <name>
//   ip as-path access-list <id> (permit|deny) <regex>
//   negotiation <name>
//     match all path <regex>             # who to contact / what to avoid
//     start negotiation with maximum cost <n>
//   accept negotiation from (any | as <asn> [...])
//     when tunnel_number < <n>
//   negotiation filter <name>
//     filter permit local_pref > <n>
//     set tunnel_cost <n>
//
// Indentation is optional; a statement following a block header attaches to
// that block, as in the original syntax.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.hpp"
#include "policy/aspath_regex.hpp"

namespace miro::policy {

/// `ip as-path access-list`: ordered permit/deny regexes, first match wins;
/// no match denies (Cisco semantics).
struct AsPathAccessList {
  struct Entry {
    bool permit = true;
    AsPathRegex regex;
    int line = 0;  ///< 1-based source line of the access-list statement
  };
  int id = 0;
  std::vector<Entry> entries;

  bool permits(const std::vector<topo::AsNumber>& as_path) const;
};

/// One `route-map <name> permit|deny <seq>` clause with its match/set lines.
/// `*_line` members record the 1-based source line of the statement that set
/// the field (0 = absent) so the static analyzer can point at it.
struct RouteMapClause {
  std::string name;
  bool permit = true;
  int sequence = 10;
  std::optional<int> match_as_path_acl;
  std::optional<int> match_empty_path_acl;  ///< negotiation trigger condition
  std::optional<int> set_local_pref;
  std::optional<std::string> try_negotiation;
  int line = 0;  ///< clause header line
  int match_as_path_line = 0;
  int match_empty_path_line = 0;
  int try_negotiation_line = 0;
};

/// `negotiation <name>` block (requester side).
struct NegotiationSpec {
  std::string name;
  std::optional<AsPathRegex> target_path_regex;  ///< `match all path <re>`
  std::optional<int> max_cost;                   ///< maximum price to pay
  int line = 0;  ///< block header line
  int target_path_line = 0;
};

/// `accept negotiation` + `negotiation filter` blocks (responder side).
struct ResponderSpec {
  bool accept_any = true;
  std::vector<topo::AsNumber> accept_asns;
  std::optional<std::size_t> max_tunnels;  ///< `when tunnel_number < N`
  int when_line = 0;
  struct Filter {
    int local_pref_greater = 0;
    int tunnel_cost = 0;
    int line = 0;
  };
  /// Ordered; the first filter whose threshold the route's local preference
  /// exceeds sets the price ("sell all customer routes for a lower price").
  std::vector<Filter> filters;
};

struct NeighborBinding {
  net::Ipv4Address address;
  std::optional<topo::AsNumber> remote_as;
  std::optional<std::string> route_map_in;
  std::optional<std::string> route_map_out;
  int route_map_in_line = 0;
  int route_map_out_line = 0;
};

struct BgpConfig {
  std::optional<topo::AsNumber> local_as;
  std::map<int, AsPathAccessList> access_lists;
  std::vector<RouteMapClause> route_maps;  ///< ordered by (name, sequence)
  std::map<std::string, NegotiationSpec> negotiations;
  std::optional<ResponderSpec> responder;
  std::vector<NeighborBinding> neighbors;

  /// The clauses of one route map, in sequence order.
  std::vector<const RouteMapClause*> route_map(std::string_view name) const;
  const AsPathAccessList* access_list(int id) const;
};

/// Parses a configuration; throws miro::Error with the line number on any
/// malformed statement.
BgpConfig parse_config(std::string_view text);

}  // namespace miro::policy
