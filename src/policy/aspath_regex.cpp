#include "policy/aspath_regex.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::policy {

namespace {
[[noreturn]] void syntax_error(std::string_view pattern,
                               std::string_view why) {
  throw Error("AsPathRegex: " + std::string(why) + " in pattern '" +
              std::string(pattern) + "'");
}
}  // namespace

bool AsPathRegex::Transition::accepts_char(char c) const {
  if (kind != Kind::CharClass) return false;
  if (any) return true;
  const bool in_class = chars.find(c) != std::string::npos;
  return negated ? !in_class : in_class;
}

std::uint32_t AsPathRegex::new_state() {
  states_.emplace_back();
  return static_cast<std::uint32_t>(states_.size() - 1);
}

void AsPathRegex::link(std::uint32_t from, Transition transition) {
  states_[from].out.push_back(std::move(transition));
}

AsPathRegex::AsPathRegex(std::string_view pattern)
    : pattern_(pattern) {
  std::string_view input = pattern;
  Fragment fragment = parse_alternation(input);
  if (!input.empty()) syntax_error(pattern_, "unexpected ')'");
  start_state_ = fragment.start;
  accept_state_ = fragment.end;
}

AsPathRegex::Fragment AsPathRegex::parse_alternation(std::string_view& input) {
  Fragment first = parse_concat(input);
  if (input.empty() || input.front() != '|') return first;
  const std::uint32_t start = new_state();
  const std::uint32_t end = new_state();
  auto attach = [&](const Fragment& f) {
    link(start, {Transition::Kind::Epsilon, false, false, "", f.start});
    link(f.end, {Transition::Kind::Epsilon, false, false, "", end});
  };
  attach(first);
  while (!input.empty() && input.front() == '|') {
    input.remove_prefix(1);
    attach(parse_concat(input));
  }
  return {start, end};
}

AsPathRegex::Fragment AsPathRegex::parse_concat(std::string_view& input) {
  Fragment result{new_state(), 0};
  result.end = result.start;  // empty concatenation
  while (!input.empty() && input.front() != '|' && input.front() != ')') {
    Fragment next = parse_repeat(input);
    link(result.end, {Transition::Kind::Epsilon, false, false, "",
                      next.start});
    result.end = next.end;
  }
  return result;
}

AsPathRegex::Fragment AsPathRegex::parse_repeat(std::string_view& input) {
  Fragment atom = parse_atom(input);
  while (!input.empty() &&
         (input.front() == '*' || input.front() == '+' ||
          input.front() == '?')) {
    const char op = input.front();
    input.remove_prefix(1);
    const std::uint32_t start = new_state();
    const std::uint32_t end = new_state();
    link(start, {Transition::Kind::Epsilon, false, false, "", atom.start});
    if (op == '*' || op == '?')
      link(start, {Transition::Kind::Epsilon, false, false, "", end});
    if (op == '*' || op == '+')
      link(atom.end,
           {Transition::Kind::Epsilon, false, false, "", atom.start});
    link(atom.end, {Transition::Kind::Epsilon, false, false, "", end});
    atom = {start, end};
  }
  return atom;
}

AsPathRegex::Fragment AsPathRegex::parse_atom(std::string_view& input) {
  if (input.empty()) syntax_error(pattern_, "dangling operator");
  const char c = input.front();
  if (c == '(') {
    input.remove_prefix(1);
    Fragment inner = parse_alternation(input);
    if (input.empty() || input.front() != ')')
      syntax_error(pattern_, "unbalanced '('");
    input.remove_prefix(1);
    return inner;
  }
  const std::uint32_t start = new_state();
  const std::uint32_t end = new_state();
  Transition t;
  t.target = end;
  input.remove_prefix(1);
  switch (c) {
    case '_': t.kind = Transition::Kind::Boundary; break;
    case '^': t.kind = Transition::Kind::StartAnchor; break;
    case '$': t.kind = Transition::Kind::EndAnchor; break;
    case '.':
      t.kind = Transition::Kind::CharClass;
      t.any = true;
      break;
    case '[': {
      t.kind = Transition::Kind::CharClass;
      if (!input.empty() && input.front() == '^') {
        t.negated = true;
        input.remove_prefix(1);
      }
      bool closed = false;
      while (!input.empty()) {
        const char member = input.front();
        input.remove_prefix(1);
        if (member == ']') {
          closed = true;
          break;
        }
        if (!input.empty() && input.front() == '-' && input.size() >= 2 &&
            input[1] != ']') {
          const char upper = input[1];
          input.remove_prefix(2);
          if (member > upper) syntax_error(pattern_, "bad range in class");
          for (char x = member; x <= upper; ++x) t.chars.push_back(x);
        } else {
          t.chars.push_back(member);
        }
      }
      if (!closed) syntax_error(pattern_, "unbalanced '['");
      break;
    }
    case '\\': {
      if (input.empty()) syntax_error(pattern_, "dangling escape");
      t.kind = Transition::Kind::CharClass;
      t.chars.push_back(input.front());
      input.remove_prefix(1);
      break;
    }
    case ')':
    case '*':
    case '+':
    case '?':
      syntax_error(pattern_, "misplaced operator");
    default:
      t.kind = Transition::Kind::CharClass;
      t.chars.push_back(c);
      break;
  }
  link(start, std::move(t));
  return {start, end};
}

bool AsPathRegex::language_empty() const {
  // Product of the NFA with a tiny abstraction of the witness string we are
  // free to construct: what the previously consumed character was (nothing
  // yet / a space / a digit), whether an `$` already forbade further
  // consumption, and whether a `_` taken mid-string still owes us a space as
  // the very next character ("pending"). A `_` is satisfied by the start,
  // the end, or a space on either side; when taken after a digit it defers
  // the obligation: either the string ends right there or the next consumed
  // character is a space.
  enum Last : std::uint8_t { kStart, kSpace, kDigit };
  struct Cfg {
    std::uint32_t state;
    Last last;
    bool must_end;
    bool pending_space;
  };
  auto pack = [](const Cfg& c) {
    return (c.state << 4) | (static_cast<std::uint32_t>(c.last) << 2) |
           (static_cast<std::uint32_t>(c.must_end) << 1) |
           static_cast<std::uint32_t>(c.pending_space);
  };
  auto class_accepts_digit = [](const Transition& t) {
    for (char d = '0'; d <= '9'; ++d)
      if (t.accepts_char(d)) return true;
    return false;
  };

  std::vector<Cfg> stack{{start_state_, kStart, false, false}};
  std::vector<char> seen(states_.size() * 16, 0);
  seen[pack(stack.back())] = 1;
  while (!stack.empty()) {
    const Cfg cfg = stack.back();
    stack.pop_back();
    // Reaching the accept state ends the witness string here, which also
    // discharges a pending `_` (end-of-string is a boundary).
    if (cfg.state == accept_state_) return false;
    for (const Transition& t : states_[cfg.state].out) {
      std::vector<Cfg> nexts;
      switch (t.kind) {
        case Transition::Kind::Epsilon:
          nexts.push_back({t.target, cfg.last, cfg.must_end,
                           cfg.pending_space});
          break;
        case Transition::Kind::StartAnchor:
          if (cfg.last == kStart)
            nexts.push_back({t.target, cfg.last, cfg.must_end,
                             cfg.pending_space});
          break;
        case Transition::Kind::EndAnchor:
          // Traversable at the end of the string: commit to consuming
          // nothing further (which also satisfies any pending `_`).
          nexts.push_back({t.target, cfg.last, true, false});
          break;
        case Transition::Kind::Boundary:
          if (cfg.last != kDigit || cfg.must_end) {
            // At the start, after a space, or pinned at the end: satisfied.
            nexts.push_back({t.target, cfg.last, cfg.must_end,
                             cfg.pending_space});
          } else {
            // After a digit: satisfiable only if the string ends here or
            // the next consumed character is a space.
            nexts.push_back({t.target, cfg.last, cfg.must_end, true});
          }
          break;
        case Transition::Kind::CharClass:
          if (cfg.must_end) break;  // `$` already forbade consumption
          if (t.accepts_char(' '))
            nexts.push_back({t.target, kSpace, false, false});
          if (!cfg.pending_space && class_accepts_digit(t))
            nexts.push_back({t.target, kDigit, false, false});
          break;
      }
      for (const Cfg& next : nexts) {
        const std::uint32_t key = pack(next);
        if (!seen[key]) {
          seen[key] = 1;
          stack.push_back(next);
        }
      }
    }
  }
  return true;  // accept state unreachable under every consistent witness
}

std::string AsPathRegex::render(const std::vector<topo::AsNumber>& as_path) {
  std::string text;
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i > 0) text += ' ';
    text += std::to_string(as_path[i]);
  }
  return text;
}

bool AsPathRegex::matches(const std::vector<topo::AsNumber>& as_path) const {
  return matches_text(render(as_path));
}

bool AsPathRegex::matches_text(std::string_view text) const {
  const std::size_t len = text.size();
  auto at_boundary = [&](std::size_t pos) {
    if (pos == 0 || pos == len) return true;
    return text[pos] == ' ' || text[pos - 1] == ' ';
  };

  std::vector<char> current(states_.size(), 0);
  std::vector<char> next(states_.size(), 0);
  std::vector<std::uint32_t> stack;

  // Epsilon/assertion closure at a given position.
  auto close = [&](std::vector<char>& set, std::size_t pos) {
    stack.clear();
    for (std::uint32_t s = 0; s < set.size(); ++s)
      if (set[s]) stack.push_back(s);
    while (!stack.empty()) {
      const std::uint32_t s = stack.back();
      stack.pop_back();
      for (const Transition& t : states_[s].out) {
        bool traversable = false;
        switch (t.kind) {
          case Transition::Kind::Epsilon: traversable = true; break;
          case Transition::Kind::Boundary:
            traversable = at_boundary(pos);
            break;
          case Transition::Kind::StartAnchor: traversable = pos == 0; break;
          case Transition::Kind::EndAnchor: traversable = pos == len; break;
          case Transition::Kind::CharClass: break;
        }
        if (traversable && !set[t.target]) {
          set[t.target] = 1;
          stack.push_back(t.target);
        }
      }
    }
  };

  for (std::size_t pos = 0; pos <= len; ++pos) {
    current[start_state_] = 1;  // substring semantics: restart anywhere
    close(current, pos);
    if (current[accept_state_]) return true;
    if (pos == len) break;
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t s = 0; s < states_.size(); ++s) {
      if (!current[s]) continue;
      for (const Transition& t : states_[s].out)
        if (t.accepts_char(text[pos])) next[t.target] = 1;
    }
    current.swap(next);
  }
  return false;
}

}  // namespace miro::policy
