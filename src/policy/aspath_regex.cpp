#include "policy/aspath_regex.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace miro::policy {

namespace {
[[noreturn]] void syntax_error(std::string_view pattern,
                               std::string_view why) {
  throw Error("AsPathRegex: " + std::string(why) + " in pattern '" +
              std::string(pattern) + "'");
}
}  // namespace

bool AsPathRegex::Transition::accepts_char(char c) const {
  if (kind != Kind::CharClass) return false;
  if (any) return true;
  const bool in_class = chars.find(c) != std::string::npos;
  return negated ? !in_class : in_class;
}

std::uint32_t AsPathRegex::new_state() {
  states_.emplace_back();
  return static_cast<std::uint32_t>(states_.size() - 1);
}

void AsPathRegex::link(std::uint32_t from, Transition transition) {
  states_[from].out.push_back(std::move(transition));
}

AsPathRegex::AsPathRegex(std::string_view pattern)
    : pattern_(pattern) {
  std::string_view input = pattern;
  Fragment fragment = parse_alternation(input);
  if (!input.empty()) syntax_error(pattern_, "unexpected ')'");
  start_state_ = fragment.start;
  accept_state_ = fragment.end;
}

AsPathRegex::Fragment AsPathRegex::parse_alternation(std::string_view& input) {
  Fragment first = parse_concat(input);
  if (input.empty() || input.front() != '|') return first;
  const std::uint32_t start = new_state();
  const std::uint32_t end = new_state();
  auto attach = [&](const Fragment& f) {
    link(start, {Transition::Kind::Epsilon, false, false, "", f.start});
    link(f.end, {Transition::Kind::Epsilon, false, false, "", end});
  };
  attach(first);
  while (!input.empty() && input.front() == '|') {
    input.remove_prefix(1);
    attach(parse_concat(input));
  }
  return {start, end};
}

AsPathRegex::Fragment AsPathRegex::parse_concat(std::string_view& input) {
  Fragment result{new_state(), 0};
  result.end = result.start;  // empty concatenation
  while (!input.empty() && input.front() != '|' && input.front() != ')') {
    Fragment next = parse_repeat(input);
    link(result.end, {Transition::Kind::Epsilon, false, false, "",
                      next.start});
    result.end = next.end;
  }
  return result;
}

AsPathRegex::Fragment AsPathRegex::parse_repeat(std::string_view& input) {
  Fragment atom = parse_atom(input);
  while (!input.empty() &&
         (input.front() == '*' || input.front() == '+' ||
          input.front() == '?')) {
    const char op = input.front();
    input.remove_prefix(1);
    const std::uint32_t start = new_state();
    const std::uint32_t end = new_state();
    link(start, {Transition::Kind::Epsilon, false, false, "", atom.start});
    if (op == '*' || op == '?')
      link(start, {Transition::Kind::Epsilon, false, false, "", end});
    if (op == '*' || op == '+')
      link(atom.end,
           {Transition::Kind::Epsilon, false, false, "", atom.start});
    link(atom.end, {Transition::Kind::Epsilon, false, false, "", end});
    atom = {start, end};
  }
  return atom;
}

AsPathRegex::Fragment AsPathRegex::parse_atom(std::string_view& input) {
  if (input.empty()) syntax_error(pattern_, "dangling operator");
  const char c = input.front();
  if (c == '(') {
    input.remove_prefix(1);
    Fragment inner = parse_alternation(input);
    if (input.empty() || input.front() != ')')
      syntax_error(pattern_, "unbalanced '('");
    input.remove_prefix(1);
    return inner;
  }
  const std::uint32_t start = new_state();
  const std::uint32_t end = new_state();
  Transition t;
  t.target = end;
  input.remove_prefix(1);
  switch (c) {
    case '_': t.kind = Transition::Kind::Boundary; break;
    case '^': t.kind = Transition::Kind::StartAnchor; break;
    case '$': t.kind = Transition::Kind::EndAnchor; break;
    case '.':
      t.kind = Transition::Kind::CharClass;
      t.any = true;
      break;
    case '[': {
      t.kind = Transition::Kind::CharClass;
      if (!input.empty() && input.front() == '^') {
        t.negated = true;
        input.remove_prefix(1);
      }
      bool closed = false;
      while (!input.empty()) {
        const char member = input.front();
        input.remove_prefix(1);
        if (member == ']') {
          closed = true;
          break;
        }
        if (!input.empty() && input.front() == '-' && input.size() >= 2 &&
            input[1] != ']') {
          const char upper = input[1];
          input.remove_prefix(2);
          if (member > upper) syntax_error(pattern_, "bad range in class");
          for (char x = member; x <= upper; ++x) t.chars.push_back(x);
        } else {
          t.chars.push_back(member);
        }
      }
      if (!closed) syntax_error(pattern_, "unbalanced '['");
      break;
    }
    case '\\': {
      if (input.empty()) syntax_error(pattern_, "dangling escape");
      t.kind = Transition::Kind::CharClass;
      t.chars.push_back(input.front());
      input.remove_prefix(1);
      break;
    }
    case ')':
    case '*':
    case '+':
    case '?':
      syntax_error(pattern_, "misplaced operator");
    default:
      t.kind = Transition::Kind::CharClass;
      t.chars.push_back(c);
      break;
  }
  link(start, std::move(t));
  return {start, end};
}

bool AsPathRegex::language_empty() const {
  // Product of the NFA with a tiny abstraction of the witness string we are
  // free to construct: what the previously consumed character was (nothing
  // yet / a space / a digit), whether an `$` already forbade further
  // consumption, and whether a `_` taken mid-string still owes us a space as
  // the very next character ("pending"). A `_` is satisfied by the start,
  // the end, or a space on either side; when taken after a digit it defers
  // the obligation: either the string ends right there or the next consumed
  // character is a space.
  enum Last : std::uint8_t { kStart, kSpace, kDigit };
  struct Cfg {
    std::uint32_t state;
    Last last;
    bool must_end;
    bool pending_space;
  };
  auto pack = [](const Cfg& c) {
    return (c.state << 4) | (static_cast<std::uint32_t>(c.last) << 2) |
           (static_cast<std::uint32_t>(c.must_end) << 1) |
           static_cast<std::uint32_t>(c.pending_space);
  };
  auto class_accepts_digit = [](const Transition& t) {
    for (char d = '0'; d <= '9'; ++d)
      if (t.accepts_char(d)) return true;
    return false;
  };

  std::vector<Cfg> stack{{start_state_, kStart, false, false}};
  std::vector<char> seen(states_.size() * 16, 0);
  seen[pack(stack.back())] = 1;
  while (!stack.empty()) {
    const Cfg cfg = stack.back();
    stack.pop_back();
    // Reaching the accept state ends the witness string here, which also
    // discharges a pending `_` (end-of-string is a boundary).
    if (cfg.state == accept_state_) return false;
    for (const Transition& t : states_[cfg.state].out) {
      std::vector<Cfg> nexts;
      switch (t.kind) {
        case Transition::Kind::Epsilon:
          nexts.push_back({t.target, cfg.last, cfg.must_end,
                           cfg.pending_space});
          break;
        case Transition::Kind::StartAnchor:
          if (cfg.last == kStart)
            nexts.push_back({t.target, cfg.last, cfg.must_end,
                             cfg.pending_space});
          break;
        case Transition::Kind::EndAnchor:
          // Traversable at the end of the string: commit to consuming
          // nothing further (which also satisfies any pending `_`).
          nexts.push_back({t.target, cfg.last, true, false});
          break;
        case Transition::Kind::Boundary:
          if (cfg.last != kDigit || cfg.must_end) {
            // At the start, after a space, or pinned at the end: satisfied.
            nexts.push_back({t.target, cfg.last, cfg.must_end,
                             cfg.pending_space});
          } else {
            // After a digit: satisfiable only if the string ends here or
            // the next consumed character is a space.
            nexts.push_back({t.target, cfg.last, cfg.must_end, true});
          }
          break;
        case Transition::Kind::CharClass:
          if (cfg.must_end) break;  // `$` already forbade consumption
          if (t.accepts_char(' '))
            nexts.push_back({t.target, kSpace, false, false});
          if (!cfg.pending_space && class_accepts_digit(t))
            nexts.push_back({t.target, kDigit, false, false});
          break;
      }
      for (const Cfg& next : nexts) {
        const std::uint32_t key = pack(next);
        if (!seen[key]) {
          seen[key] = 1;
          stack.push_back(next);
        }
      }
    }
  }
  return true;  // accept state unreachable under every consistent witness
}

bool AsPathRegex::intersection_empty(const AsPathRegex& other,
                                     std::size_t max_configs) const {
  // Lock-step product of the two NFAs over one shared witness string. Each
  // NFA owns a substring window of the witness (Cisco match-anywhere): in
  // phase kBefore it has not started matching and ignores consumed
  // characters, in phase kIn it must consume them through CharClass
  // transitions, in phase kAfter it has accepted and ignores the rest. The
  // witness abstraction is the same as language_empty() — what the last
  // consumed character was, whether a `$` pinned the end, and whether a `_`
  // taken after a digit still owes a space as the very next character (one
  // shared bit: both NFAs' obligations refer to the same next character) —
  // but consumption is enumerated over the concrete alphabet {' ','0'..'9'}
  // so per-digit constraints stay exact instead of collapsing to "a digit".
  enum Last : std::uint8_t { kStart, kSpace, kDigit };
  enum Phase : std::uint8_t { kBefore, kIn, kAfter };
  struct Cfg {
    std::uint32_t state[2];
    std::uint8_t phase[2];
    std::uint8_t last;
    bool must_end;
    bool pending_space;
  };
  const AsPathRegex* nfa[2] = {this, &other};
  const std::uint64_t sizes[2] = {states_.size(), other.states_.size()};
  auto pack = [&](const Cfg& c) {
    std::uint64_t key = 0;
    for (int i = 0; i < 2; ++i)
      key = (key * sizes[i] + c.state[i]) * 3 + c.phase[i];
    return ((key * 3 + c.last) << 2) |
           (static_cast<std::uint64_t>(c.must_end) << 1) |
           static_cast<std::uint64_t>(c.pending_space);
  };

  std::unordered_set<std::uint64_t> seen;
  std::vector<Cfg> stack{{{start_state_, other.start_state_},
                          {kBefore, kBefore},
                          kStart,
                          false,
                          false}};
  // Canonical form: a kBefore/kAfter NFA parks on its start state so the
  // phase alone identifies it.
  stack.back().state[0] = 0;
  stack.back().state[1] = 0;
  seen.insert(pack(stack.back()));
  auto push = [&](const Cfg& next) {
    Cfg canon = next;
    for (int i = 0; i < 2; ++i)
      if (canon.phase[i] != kIn) canon.state[i] = 0;
    if (seen.size() >= max_configs) return false;  // blowup guard
    if (seen.insert(pack(canon)).second) stack.push_back(canon);
    return true;
  };

  while (!stack.empty()) {
    const Cfg cfg = stack.back();
    stack.pop_back();
    // Both windows closed: the witness string ends here (which discharges
    // any pending `_`) and matches both patterns.
    if (cfg.phase[0] == kAfter && cfg.phase[1] == kAfter) return false;

    // Zero-width moves, one NFA at a time; interleavings are covered by the
    // visited-set search.
    for (int i = 0; i < 2; ++i) {
      if (cfg.phase[i] == kBefore) {
        // Open this NFA's window at the current position.
        Cfg next = cfg;
        next.phase[i] = kIn;
        next.state[i] = nfa[i]->start_state_;
        if (!push(next)) return false;
      }
      if (cfg.phase[i] != kIn) continue;
      if (cfg.state[i] == nfa[i]->accept_state_) {
        Cfg next = cfg;
        next.phase[i] = kAfter;
        if (!push(next)) return false;
      }
      for (const Transition& t : nfa[i]->states_[cfg.state[i]].out) {
        Cfg next = cfg;
        next.state[i] = t.target;
        bool traversable = false;
        switch (t.kind) {
          case Transition::Kind::Epsilon: traversable = true; break;
          case Transition::Kind::StartAnchor:
            traversable = cfg.last == kStart;
            break;
          case Transition::Kind::EndAnchor:
            traversable = true;
            next.must_end = true;
            next.pending_space = false;
            break;
          case Transition::Kind::Boundary:
            traversable = true;
            if (cfg.last == kDigit && !cfg.must_end) next.pending_space = true;
            break;
          case Transition::Kind::CharClass: break;  // handled below
        }
        if (traversable && !push(next)) return false;
      }
    }

    // Consume one concrete character, shared by both windows.
    if (cfg.must_end) continue;
    static constexpr char kAlphabet[] = " 0123456789";
    for (const char c : kAlphabet) {
      if (c == '\0') break;
      if (cfg.pending_space && c != ' ') continue;  // `_` owes a space
      // Each NFA's possible states after consuming c: a kBefore/kAfter NFA
      // lets the character pass; a kIn NFA needs an accepting transition.
      std::vector<std::uint32_t> targets[2];
      for (int i = 0; i < 2; ++i) {
        if (cfg.phase[i] != kIn) {
          targets[i].push_back(cfg.state[i]);
          continue;
        }
        for (const Transition& t : nfa[i]->states_[cfg.state[i]].out)
          if (t.accepts_char(c)) targets[i].push_back(t.target);
      }
      for (const std::uint32_t s0 : targets[0]) {
        for (const std::uint32_t s1 : targets[1]) {
          Cfg next = cfg;
          next.state[0] = s0;
          next.state[1] = s1;
          next.last = c == ' ' ? kSpace : kDigit;
          next.pending_space = false;
          if (!push(next)) return false;
        }
      }
    }
  }
  return true;  // no shared witness exists
}

std::string AsPathRegex::render(const std::vector<topo::AsNumber>& as_path) {
  std::string text;
  for (std::size_t i = 0; i < as_path.size(); ++i) {
    if (i > 0) text += ' ';
    text += std::to_string(as_path[i]);
  }
  return text;
}

bool AsPathRegex::matches(const std::vector<topo::AsNumber>& as_path) const {
  return matches_text(render(as_path));
}

bool AsPathRegex::matches_text(std::string_view text) const {
  const std::size_t len = text.size();
  auto at_boundary = [&](std::size_t pos) {
    if (pos == 0 || pos == len) return true;
    return text[pos] == ' ' || text[pos - 1] == ' ';
  };

  std::vector<char> current(states_.size(), 0);
  std::vector<char> next(states_.size(), 0);
  std::vector<std::uint32_t> stack;

  // Epsilon/assertion closure at a given position.
  auto close = [&](std::vector<char>& set, std::size_t pos) {
    stack.clear();
    for (std::uint32_t s = 0; s < set.size(); ++s)
      if (set[s]) stack.push_back(s);
    while (!stack.empty()) {
      const std::uint32_t s = stack.back();
      stack.pop_back();
      for (const Transition& t : states_[s].out) {
        bool traversable = false;
        switch (t.kind) {
          case Transition::Kind::Epsilon: traversable = true; break;
          case Transition::Kind::Boundary:
            traversable = at_boundary(pos);
            break;
          case Transition::Kind::StartAnchor: traversable = pos == 0; break;
          case Transition::Kind::EndAnchor: traversable = pos == len; break;
          case Transition::Kind::CharClass: break;
        }
        if (traversable && !set[t.target]) {
          set[t.target] = 1;
          stack.push_back(t.target);
        }
      }
    }
  };

  for (std::size_t pos = 0; pos <= len; ++pos) {
    current[start_state_] = 1;  // substring semantics: restart anywhere
    close(current, pos);
    if (current[accept_state_]) return true;
    if (pos == len) break;
    std::fill(next.begin(), next.end(), 0);
    for (std::uint32_t s = 0; s < states_.size(); ++s) {
      if (!current[s]) continue;
      for (const Transition& t : states_[s].out)
        if (t.accepts_char(text[pos])) next[t.target] = 1;
    }
    current.swap(next);
  }
  return false;
}

}  // namespace miro::policy
