#include "policy/policy_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace miro::policy {

std::optional<CandidateRoute> PolicyEngine::apply_route_map(
    std::string_view name, CandidateRoute route) const {
  const auto clauses = config_.route_map(name);
  require(!clauses.empty(), "apply_route_map: unknown route map");
  for (const RouteMapClause* clause : clauses) {
    bool matched = true;
    if (clause->match_as_path_acl) {
      const AsPathAccessList* acl =
          config_.access_list(*clause->match_as_path_acl);
      require(acl != nullptr, "apply_route_map: dangling access-list id");
      matched = acl->permits(route.as_path);
    }
    if (clause->match_empty_path_acl) {
      // Trigger-only clauses never match individual routes.
      matched = false;
    }
    if (!matched) continue;
    if (!clause->permit) return std::nullopt;
    if (clause->set_local_pref) route.local_pref = *clause->set_local_pref;
    return route;
  }
  return std::nullopt;  // implicit deny
}

std::optional<NegotiationTrigger> PolicyEngine::evaluate_trigger(
    std::string_view route_map_name,
    std::span<const CandidateRoute> candidates) const {
  for (const RouteMapClause* clause : config_.route_map(route_map_name)) {
    if (!clause->match_empty_path_acl || !clause->try_negotiation) continue;
    const AsPathAccessList* acl =
        config_.access_list(*clause->match_empty_path_acl);
    require(acl != nullptr, "evaluate_trigger: dangling access-list id");
    const bool any_acceptable =
        std::any_of(candidates.begin(), candidates.end(),
                    [acl](const CandidateRoute& route) {
                      return acl->permits(route.as_path);
                    });
    if (any_acceptable) continue;  // a satisfying route exists: no trigger

    auto spec_it = config_.negotiations.find(*clause->try_negotiation);
    require(spec_it != config_.negotiations.end(),
            "evaluate_trigger: dangling negotiation name");
    NegotiationTrigger trigger;
    trigger.negotiation_name = spec_it->second.name;
    trigger.max_cost = spec_it->second.max_cost;
    trigger.targets = targets_for(spec_it->second, candidates);
    return trigger;
  }
  return std::nullopt;
}

std::vector<topo::AsNumber> PolicyEngine::targets_for(
    const NegotiationSpec& spec,
    std::span<const CandidateRoute> candidates) const {
  // "Try to initiate negotiations with each AS that sits between itself and
  // AS 312 on any of the current candidate paths." The negotiation's pattern
  // identifies the offending AS(es); every AS appearing before the first
  // offender on a candidate path is a target, ordered nearest-first and
  // deduplicated.
  std::vector<topo::AsNumber> targets;
  auto add = [&targets](topo::AsNumber asn) {
    if (std::find(targets.begin(), targets.end(), asn) == targets.end())
      targets.push_back(asn);
  };
  for (const CandidateRoute& route : candidates) {
    if (spec.target_path_regex &&
        !spec.target_path_regex->matches(route.as_path))
      continue;  // this path does not involve the offender
    // Find the first AS on the path that the pattern identifies: the first
    // AS whose removal makes the remaining path stop matching is a sound
    // general notion, but expensive; the common `_N_` pattern is detected by
    // testing each AS individually.
    std::size_t offender = route.as_path.size();
    if (spec.target_path_regex) {
      for (std::size_t i = 0; i < route.as_path.size(); ++i) {
        if (spec.target_path_regex->matches({route.as_path[i]})) {
          offender = i;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < offender && i < route.as_path.size(); ++i)
      add(route.as_path[i]);
  }
  return targets;
}

bool PolicyEngine::admits(topo::AsNumber requester,
                          std::size_t active_tunnels) const {
  if (!config_.responder) return false;
  const ResponderSpec& responder = *config_.responder;
  if (responder.max_tunnels && active_tunnels >= *responder.max_tunnels)
    return false;
  if (responder.accept_any) return true;
  return std::find(responder.accept_asns.begin(), responder.accept_asns.end(),
                   requester) != responder.accept_asns.end();
}

std::optional<int> PolicyEngine::price_for(const CandidateRoute& route) const {
  if (!config_.responder) return std::nullopt;
  for (const ResponderSpec::Filter& filter : config_.responder->filters)
    if (route.local_pref > filter.local_pref_greater)
      return filter.tunnel_cost;
  return std::nullopt;
}

}  // namespace miro::policy
