// Unified metrics registry for the MIRO control plane.
//
// Counters, gauges, and histograms registered by name, replacing ad-hoc
// printf rendering of the scattered stats structs (BusStats,
// MiroAgent::Stats) with one export surface: a fixed-width text table for
// humans and a JSON snapshot for offline analysis / CI artifacts. The stats
// structs remain the hot-path storage (plain member increments, no lookup
// cost); their owners export them into a registry on demand — see
// MessageBus::export_metrics and MiroAgent::export_metrics.
//
// References returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime (node-based storage), so callers may cache them.
// Callback gauges sample live values at export time; the callback's
// captures must outlive the registry or be removed first.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace miro::obs {

/// Monotonically increasing count. set() exists for snapshot-style export
/// of an externally maintained total.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time scalar; either set directly or backed by a callback that
/// samples the live value when the registry exports.
class Gauge {
 public:
  void set(double value) {
    value_ = value;
    source_ = nullptr;
  }
  void set_source(std::function<double()> source) {
    source_ = std::move(source);
  }
  double value() const { return source_ ? source_() : value_; }

 private:
  double value_ = 0;
  std::function<double()> source_;
};

/// Sample distribution with power-of-two buckets (matching the repo's
/// log2_histogram convention): bucket i counts samples in [2^i, 2^(i+1)),
/// with a dedicated underflow bucket for samples < 1.
class Histogram {
 public:
  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  std::uint64_t underflow() const { return underflow_; }
  /// Nearest-rank quantile estimate, `q` in [0, 100]: locates the bucket
  /// holding the rank and interpolates linearly within its [2^i, 2^(i+1))
  /// range, clamped to [min, max] (exact for single-sample buckets at the
  /// bucket midpoint; q <= 0 yields min, q >= 100 yields max, and ranks in
  /// the underflow bucket collapse to min). Deterministic, so quantile rows
  /// are byte-comparable across runs.
  double quantile(double q) const;
  double p50() const { return quantile(50); }
  double p90() const { return quantile(90); }
  double p99() const { return quantile(99); }
  /// Count of bucket [2^i, 2^(i+1)); zero for any i beyond the max seen.
  std::uint64_t bucket(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0;
  }
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<std::uint64_t> buckets_;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named metric. A name is bound to one kind for the
  /// registry's lifetime; asking for it as another kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Const lookups for readers of an already-populated registry; throw if
  /// the name is absent or bound to a different kind.
  const Counter& counter(const std::string& name) const;
  const Gauge& gauge(const std::string& name) const;
  const Histogram& histogram(const std::string& name) const;

  /// Registers (or rebinds) a callback gauge sampled at export time.
  void gauge_source(const std::string& name, std::function<double()> source) {
    gauge(name).set_source(std::move(source));
  }

  bool contains(const std::string& name) const;
  std::size_t size() const;

  /// Fixed-width name/type/value table, rows sorted by name.
  void write_text(std::ostream& out) const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;

 private:
  // Separate node-based maps per kind: references handed out stay stable,
  // and export order is deterministic (sorted by name).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace miro::obs
