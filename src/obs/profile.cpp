#include "obs/profile.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/table.hpp"

namespace miro::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProfileRegistry* g_profile = nullptr;

}  // namespace

ProfileRegistry* profile() { return g_profile; }
void set_profile(ProfileRegistry* registry) { g_profile = registry; }

ProfileRegistry::ProfileRegistry(std::size_t max_spans)
    : max_spans_(max_spans) {
  require(max_spans > 0, "ProfileRegistry: max_spans must be positive");
  origin_ns_ = steady_now_ns();
}

void ProfileRegistry::set_clock(std::function<std::uint64_t()> now_ns) {
  require(stack_.empty(), "ProfileRegistry: cannot swap clock mid-span");
  clock_ = std::move(now_ns);
  origin_ns_ = clock_ ? clock_() : steady_now_ns();
}

std::uint64_t ProfileRegistry::now_ns() const {
  const std::uint64_t absolute = clock_ ? clock_() : steady_now_ns();
  return absolute >= origin_ns_ ? absolute - origin_ns_ : 0;
}

void ProfileRegistry::begin_span(const char* name, const char* category) {
  stack_.push_back({name, category, now_ns(), 0});
}

void ProfileRegistry::end_span() {
  require(!stack_.empty(), "ProfileRegistry: end_span with no open span");
  const OpenSpan open = stack_.back();
  stack_.pop_back();
  const std::uint64_t end = now_ns();
  const std::uint64_t total = end >= open.begin_ns ? end - open.begin_ns : 0;
  const std::uint64_t self = total >= open.child_ns ? total - open.child_ns : 0;
  if (!stack_.empty()) stack_.back().child_ns += total;

  auto bump = [&](SpanStats& stats) {
    ++stats.count;
    stats.total_ns += total;
    stats.self_ns += self;
    if (total > stats.max_ns) stats.max_ns = total;
  };
  bump(by_name_[open.name]);
  bump(by_category_[open.category[0] != '\0' ? open.category : "(none)"]);

  ++recorded_;
  if (spans_.size() < max_spans_) {
    spans_.push_back({open.name, open.category, open.begin_ns, end,
                      static_cast<std::uint32_t>(stack_.size())});
  } else {
    ++dropped_;
  }
}

void ProfileRegistry::write_text(std::ostream& out) const {
  auto ms = [](std::uint64_t ns) {
    return TextTable::num(static_cast<double>(ns) / 1e6);
  };
  TextTable table(
      {"span", "count", "total ms", "self ms", "mean ms", "max ms"});
  for (const auto& [name, stats] : by_name_) {
    table.add_row({name, std::to_string(stats.count), ms(stats.total_ns),
                   ms(stats.self_ns),
                   ms(stats.count == 0 ? 0 : stats.total_ns / stats.count),
                   ms(stats.max_ns)});
  }
  for (const auto& [category, stats] : by_category_) {
    table.add_row({"[" + category + "]", std::to_string(stats.count),
                   ms(stats.total_ns), ms(stats.self_ns), "", ""});
  }
  table.print(out);
  if (dropped_ > 0) {
    out << "(span log full: " << dropped_
        << " spans aggregated but not logged)\n";
  }
}

void ProfileRegistry::export_metrics(MetricsRegistry& registry,
                                     const std::string& prefix) const {
  for (const auto& [name, stats] : by_name_) {
    const std::string base = prefix + "." + name;
    registry.counter(base + ".count").set(stats.count);
    registry.gauge(base + ".total_ms")
        .set(static_cast<double>(stats.total_ns) / 1e6);
    registry.gauge(base + ".self_ms")
        .set(static_cast<double>(stats.self_ns) / 1e6);
    registry.gauge(base + ".max_ms")
        .set(static_cast<double>(stats.max_ns) / 1e6);
  }
}

void ProfileRegistry::reset() {
  spans_.clear();
  by_name_.clear();
  by_category_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace miro::obs
