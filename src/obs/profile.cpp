#include "obs/profile.hpp"

#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "obs/memstats.hpp"

namespace miro::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ProfileRegistry* g_profile = nullptr;            ///< set_profile's registry
thread_local ProfileRegistry* t_profile = nullptr;  ///< what profile() sees

/// Bridges the parallel layer to per-chunk registries: every pool chunk
/// records into its own ProfileRegistry (created on the calling thread in
/// region_begin, so allocation is deterministic), and region_end merges
/// them into the attached registry in chunk order. When profiling is
/// disabled the hooks reduce to one null check and workers keep a null
/// thread-local — the zero-cost contract.
class ParallelProfileContext final : public par::WorkerContext {
 public:
  void region_begin(std::size_t chunks) override {
    // Shared, unsynchronized state: only one top-level parallel region may
    // run at a time while profiling is attached (see set_profile). Nested
    // regions run inline and never reach these hooks.
    require(!active_,
            "profile: concurrent top-level parallel regions are not "
            "supported while profiling is attached");
    active_ = g_profile != nullptr;
    if (!active_) return;
    registries_.clear();
    registries_.reserve(chunks);
    for (std::size_t i = 0; i < chunks; ++i)
      registries_.push_back(std::make_unique<ProfileRegistry>());
  }

  void chunk_enter(std::size_t chunk) override {
    if (active_) t_profile = registries_[chunk].get();
  }

  void chunk_exit(std::size_t /*chunk*/) override {
    if (active_) t_profile = nullptr;
  }

  void region_end() override {
    if (!active_) return;
    for (const auto& registry : registries_)
      g_profile->merge_from(*registry);
    registries_.clear();
    active_ = false;
  }

 private:
  bool active_ = false;
  std::vector<std::unique_ptr<ProfileRegistry>> registries_;
};

ParallelProfileContext g_parallel_context;

}  // namespace

ProfileRegistry* profile() { return t_profile; }

void set_profile(ProfileRegistry* registry) {
  g_profile = registry;
  t_profile = registry;
  par::set_worker_context(registry != nullptr ? &g_parallel_context
                                              : nullptr);
}

ProfileRegistry::ProfileRegistry(std::size_t max_spans)
    : max_spans_(max_spans) {
  require(max_spans > 0, "ProfileRegistry: max_spans must be positive");
  origin_ns_ = steady_now_ns();
}

void ProfileRegistry::set_clock(std::function<std::uint64_t()> now_ns) {
  require(stack_.empty(), "ProfileRegistry: cannot swap clock mid-span");
  clock_ = std::move(now_ns);
  origin_ns_ = clock_ ? clock_() : steady_now_ns();
}

std::uint64_t ProfileRegistry::now_ns() const {
  const std::uint64_t absolute = clock_ ? clock_() : steady_now_ns();
  return absolute >= origin_ns_ ? absolute - origin_ns_ : 0;
}

void ProfileRegistry::begin_span(const char* name, const char* category) {
  stack_.push_back({name, category, now_ns(), 0});
}

void ProfileRegistry::end_span() {
  require(!stack_.empty(), "ProfileRegistry: end_span with no open span");
  const OpenSpan open = stack_.back();
  stack_.pop_back();
  const std::uint64_t end = now_ns();
  const std::uint64_t total = end >= open.begin_ns ? end - open.begin_ns : 0;
  const std::uint64_t self = total >= open.child_ns ? total - open.child_ns : 0;
  if (!stack_.empty()) stack_.back().child_ns += total;

  auto bump = [&](SpanStats& stats) {
    ++stats.count;
    stats.total_ns += total;
    stats.self_ns += self;
    if (total > stats.max_ns) stats.max_ns = total;
  };
  bump(by_name_[open.name]);
  bump(by_category_[open.category[0] != '\0' ? open.category : "(none)"]);

  ++recorded_;
  if (spans_.size() < max_spans_) {
    spans_.push_back({open.name, open.category, open.begin_ns, end,
                      static_cast<std::uint32_t>(stack_.size())});
  } else {
    ++dropped_;
  }

  // Process-RSS sampling piggybacks on top-level span boundaries: phase
  // granularity without its own timer. Worker threads' per-chunk registries
  // see a null memory() (sampling is whole-process state and belongs to the
  // attaching thread), and with no memory registry attached the cost is the
  // null check.
  if (stack_.empty()) {
    if (MemoryRegistry* mem = memory()) mem->sample_rss();
  }
}

void ProfileRegistry::write_text(std::ostream& out) const {
  auto ms = [](std::uint64_t ns) {
    return TextTable::num(static_cast<double>(ns) / 1e6);
  };
  TextTable table(
      {"span", "count", "total ms", "self ms", "mean ms", "max ms"});
  for (const auto& [name, stats] : by_name_) {
    table.add_row({name, std::to_string(stats.count), ms(stats.total_ns),
                   ms(stats.self_ns),
                   ms(stats.count == 0 ? 0 : stats.total_ns / stats.count),
                   ms(stats.max_ns)});
  }
  for (const auto& [category, stats] : by_category_) {
    table.add_row({"[" + category + "]", std::to_string(stats.count),
                   ms(stats.total_ns), ms(stats.self_ns), "", ""});
  }
  table.print(out);
  if (dropped_ > 0) {
    out << "(span log full: " << dropped_
        << " spans aggregated but not logged)\n";
  }
}

void ProfileRegistry::export_metrics(MetricsRegistry& registry,
                                     const std::string& prefix) const {
  for (const auto& [name, stats] : by_name_) {
    const std::string base = prefix + "." + name;
    registry.counter(base + ".count").set(stats.count);
    registry.gauge(base + ".total_ms")
        .set(static_cast<double>(stats.total_ns) / 1e6);
    registry.gauge(base + ".self_ms")
        .set(static_cast<double>(stats.self_ns) / 1e6);
    registry.gauge(base + ".max_ms")
        .set(static_cast<double>(stats.max_ns) / 1e6);
  }
}

void ProfileRegistry::merge_from(const ProfileRegistry& other) {
  require(other.stack_.empty(),
          "ProfileRegistry::merge_from: other registry has open spans");
  auto fold = [](SpanStats& into, const SpanStats& from) {
    into.count += from.count;
    into.total_ns += from.total_ns;
    into.self_ns += from.self_ns;
    if (from.max_ns > into.max_ns) into.max_ns = from.max_ns;
  };
  for (const auto& [name, stats] : other.by_name_) fold(by_name_[name], stats);
  for (const auto& [category, stats] : other.by_category_)
    fold(by_category_[category], stats);

  // Both origins are instants of the same underlying clock; shifting by
  // their difference puts the other log onto this registry's timeline.
  const std::int64_t delta = static_cast<std::int64_t>(other.origin_ns_) -
                             static_cast<std::int64_t>(origin_ns_);
  auto shift = [delta](std::uint64_t ns) {
    const std::int64_t shifted = static_cast<std::int64_t>(ns) + delta;
    return shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
  };
  for (const SpanRecord& record : other.spans_) {
    if (spans_.size() < max_spans_) {
      spans_.push_back({record.name, record.category, shift(record.begin_ns),
                        shift(record.end_ns), record.depth});
    } else {
      ++dropped_;
    }
  }
  recorded_ += other.recorded_;
  dropped_ += other.dropped_;
}

void ProfileRegistry::reset() {
  spans_.clear();
  by_name_.clear();
  by_category_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace miro::obs
