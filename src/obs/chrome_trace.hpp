// Chrome trace-event exporter (chrome://tracing / Perfetto JSON format).
//
// Merges the two halves of the observability stack into one timeline file:
//   - ProfileRegistry wall-clock spans become "B"/"E" duration events on a
//     dedicated "wall clock" process, one track per nesting depth — *what
//     it cost*;
//   - TraceRecorder sim-time events become instant events on a "sim time"
//     process with one track per AS (tid = actor) — *what happened*.
// The two processes carry independent clocks (nanoseconds vs sim ticks);
// `sim_tick_us` scales ticks onto the microsecond timeline Perfetto
// expects (the protocol code treats one tick as a millisecond, hence the
// default of 1000).
//
// Output is the object form `{"traceEvents":[...]}` with process/thread
// metadata events, so the file loads directly in Perfetto's UI.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace miro::obs {

struct ChromeTraceOptions {
  double sim_tick_us = 1000.0;  ///< microseconds rendered per sim tick
  std::uint32_t wall_pid = 1;   ///< pid of the wall-clock span process
  std::uint32_t sim_pid = 2;    ///< pid of the sim-time event process
};

/// Writes the merged trace. Either source may be null/empty — a
/// profiler-only or sim-only trace is still a valid file.
void write_chrome_trace(std::ostream& out, const ProfileRegistry* profile,
                        const std::vector<TraceEvent>& sim_events,
                        const ChromeTraceOptions& options = {});

/// File convenience wrapper; returns false (with a note on stderr) when the
/// path cannot be opened or the stream fails.
bool write_chrome_trace_file(const std::string& path,
                             const ProfileRegistry* profile,
                             const std::vector<TraceEvent>& sim_events,
                             const ChromeTraceOptions& options = {});

}  // namespace miro::obs
