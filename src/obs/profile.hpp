// Wall-clock span profiler for the MIRO control plane.
//
// PR 2's TraceRecorder answers *what the control plane did* in simulated
// time; this layer answers *where real time goes*. Instrumented phases —
// topology generation/inference, BGP propagation rounds, scheduler run
// loops, negotiation handling, the eval pipelines — open a RAII ScopedSpan
// that records nested begin/end wall-clock intervals into a ProfileRegistry.
// The registry aggregates per-name and per-category statistics with
// *self-time* attribution (a parent's self time excludes its children), and
// keeps the raw span log for the Chrome-trace exporter.
//
// Zero cost when disabled, on the same contract as TraceRecorder: every
// instrumentation site goes through a nullable `ProfileRegistry*` (null by
// default) and pays a single branch; no clock is read and nothing is
// allocated unless a registry is attached. The profiler only *reads* the
// wall clock — it never feeds back into simulation state, so profiled and
// unprofiled runs are bit-identical in sim behaviour (asserted in
// tests/profile_test.cpp).
//
// Free functions deep in the libraries (topo::generate, the eval pipelines)
// cannot thread a registry pointer through their signatures, so attachment
// is process-wide: obs::set_profile() installs the registry and
// obs::profile() is the nullable pointer every site checks.
//
// Threads: a ProfileRegistry is single-threaded, but profile() resolves
// through a thread-local slot so the parallel layer (common/parallel.hpp)
// can profile worker threads without locking. set_profile() binds the
// registry to the calling thread and installs a par::WorkerContext that
// gives each pool chunk its own private ProfileRegistry and merges them
// (merge_from, in chunk order) into the attached registry when the region
// joins. On threads with nothing installed profile() is null, so workers
// keep the zero-cost contract when profiling is disabled. Spans recorded
// inside a parallel region are merged flat — they do not contribute child
// time to the span open on the calling thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace miro::obs {

class ProfileRegistry {
 public:
  /// Raw span log entry, in completion order. Timestamps are nanoseconds
  /// since the registry's construction (or since set_clock()'s origin).
  struct SpanRecord {
    const char* name = "";      ///< static literal; never owned
    const char* category = "";  ///< static literal; never owned
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint32_t depth = 0;    ///< nesting depth at begin (0 = top level)
  };

  /// Aggregated accounting for one span name (or one category).
  struct SpanStats {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;  ///< sum of wall time including children
    std::uint64_t self_ns = 0;   ///< sum of wall time excluding children
    std::uint64_t max_ns = 0;    ///< longest single span (total time)
  };

  /// `max_spans` bounds the raw span log (aggregation is never bounded);
  /// once full, further spans still aggregate but are dropped from the log.
  explicit ProfileRegistry(std::size_t max_spans = 1 << 20);

  /// Replaces the wall clock with a deterministic source (tests). The
  /// callback returns nanoseconds since an arbitrary, fixed origin.
  void set_clock(std::function<std::uint64_t()> now_ns);

  /// Aggregates, keyed by span name / by category, sorted (std::map).
  const std::map<std::string, SpanStats>& by_name() const { return by_name_; }
  const std::map<std::string, SpanStats>& by_category() const {
    return by_category_;
  }

  /// Raw completed spans, in completion order (children before parents).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  std::uint64_t spans_recorded() const { return recorded_; }
  std::uint64_t spans_dropped() const { return dropped_; }
  /// Spans begun but not yet ended (should be 0 between phases).
  std::size_t open_spans() const { return stack_.size(); }

  /// Fixed-width summary table: name / count / total / self / mean / max
  /// (milliseconds), one section per category, sorted by name.
  void write_text(std::ostream& out) const;

  /// Exports the per-name aggregates into a MetricsRegistry:
  /// `<prefix>.<name>.count` (counter) and `.total_ms` / `.self_ms` /
  /// `.max_ms` (gauges).
  void export_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "profile") const;

  /// Drops all recorded spans and aggregates (open spans survive).
  void reset();

  /// Folds another registry's completed spans into this one: per-name and
  /// per-category aggregates are summed, and the other registry's span log
  /// is appended (subject to this registry's max_spans bound) with
  /// timestamps shifted onto this registry's clock origin so Chrome-trace
  /// export stays on one timeline. `other` must have no open spans. Used by
  /// the parallel layer to drain per-worker registries after a join.
  void merge_from(const ProfileRegistry& other);

 private:
  friend class ScopedSpan;

  std::uint64_t now_ns() const;
  void begin_span(const char* name, const char* category);
  void end_span();

  struct OpenSpan {
    const char* name;
    const char* category;
    std::uint64_t begin_ns;
    std::uint64_t child_ns;  ///< accumulated total time of finished children
  };

  std::function<std::uint64_t()> clock_;  ///< empty = steady_clock
  std::uint64_t origin_ns_ = 0;
  std::vector<OpenSpan> stack_;
  std::vector<SpanRecord> spans_;
  std::size_t max_spans_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::string, SpanStats> by_name_;
  std::map<std::string, SpanStats> by_category_;
};

/// RAII span: begins on construction, ends on destruction. With a null
/// registry both are a single branch — the instrumentation idiom is
///   obs::ScopedSpan span(obs::profile(), "eval/path_diversity", "eval");
/// Name and category must be string literals (stored, never copied).
class ScopedSpan {
 public:
  ScopedSpan(ProfileRegistry* registry, const char* name,
             const char* category = "")
      : registry_(registry) {
    if (registry_ != nullptr) registry_->begin_span(name, category);
  }
  ~ScopedSpan() {
    if (registry_ != nullptr) registry_->end_span();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ProfileRegistry* registry_;
};

/// The registry instrumentation sites consult on this thread. Null
/// (profiling disabled) until set_profile() attaches one; the caller keeps
/// ownership and must detach (set_profile(nullptr)) before destroying it.
/// Worker threads see the per-chunk registry the parallel layer installs
/// for the duration of a chunk, and null otherwise.
///
/// While a registry is attached, top-level parallel regions must be entered
/// from one thread at a time: the installed WorkerContext keeps shared
/// per-region state, and concurrent regions would clobber each other's
/// registries (enforced by a require() in region_begin).
ProfileRegistry* profile();
void set_profile(ProfileRegistry* registry);

}  // namespace miro::obs
