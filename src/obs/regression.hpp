// Perf-regression gate over merged bench-suite JSON snapshots.
//
// The unified bench driver (bench/run_suite) merges every bench's --json
// output into one document:
//   {"suite":"miro-bench","schema":1,"config":{...},
//    "benches":{"<bench>":{"config":{...},
//               "results":[{"name":...,"value":...,"unit":...},...],
//               "profile":{...}}}}
// This module compares such a snapshot against a checked-in baseline
// (BENCH_PR3.json) and fails on regressions beyond a relative threshold.
// A row's *unit* decides its direction: time units (ns/us/ms/s) regress
// upward, rate units (anything ending in "/s") regress downward, and all
// other rows are compared informationally only (counts and success rates
// are deterministic reproduction outputs, not perf — they drift when
// behaviour changes, which the report surfaces without failing the gate
// unless `check_values` is set).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace miro::obs {

struct RegressionOptions {
  /// Relative slowdown tolerated on gated rows: fail when
  /// worse-direction change exceeds `threshold` (0.25 = +25%).
  double threshold = 0.25;
  /// Ignore gated rows whose baseline magnitude is below this (relative
  /// noise on a 0.4ms row is meaningless).
  double min_magnitude = 1.0;
  /// Also fail when a non-gated (unitless/count) row's value drifts.
  bool check_values = false;
  /// Determinism mode: perf (time/rate) rows become informational and every
  /// other row must match EXACTLY — the contract that two runs of the same
  /// suite at different --threads counts produce identical results.
  /// Missing rows/benches still fail. Overrides threshold/check_values.
  bool values_only = false;
};

struct RegressionRow {
  std::string bench;
  std::string name;
  std::string unit;
  double baseline = 0;
  double current = 0;
  double change = 0;       ///< signed relative change, + = larger value
  bool gated = false;      ///< unit classified as perf (time or rate)
  bool regressed = false;  ///< beyond threshold in the worse direction
};

struct RegressionReport {
  std::vector<RegressionRow> rows;          ///< every row seen in baseline
  std::vector<std::string> missing_rows;    ///< "<bench>/<name>" gone from current
  std::vector<std::string> missing_benches; ///< benches gone from current

  bool ok() const { return regressions() == 0 && missing_rows.empty() &&
                           missing_benches.empty(); }
  std::size_t regressions() const;

  /// Human-readable verdict table (regressed rows first, then the worst
  /// movers), ending with an OK/FAIL line.
  void write_text(std::ostream& out) const;
};

/// True when rows with this unit are gated by the threshold.
bool is_perf_unit(const std::string& unit);

/// Compares two merged suite documents (see format above). Throws
/// miro::Error when either document is structurally malformed.
RegressionReport compare_bench_json(const JsonValue& baseline,
                                    const JsonValue& current,
                                    const RegressionOptions& options = {});

}  // namespace miro::obs
