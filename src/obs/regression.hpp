// Perf-regression gate over merged bench-suite JSON snapshots.
//
// The unified bench driver (bench/run_suite) merges every bench's --json
// output into one document:
//   {"suite":"miro-bench","schema":1,"config":{...},
//    "benches":{"<bench>":{"config":{...},
//               "results":[{"name":...,"value":...,"unit":...},...],
//               "profile":{...}}}}
// This module compares such a snapshot against a checked-in baseline
// (BENCH_PR3.json) and fails on regressions beyond a relative threshold.
// A row's *unit* decides its kind and direction: time units (ns/us/ms/s)
// regress upward, rate units (anything ending in "/s") regress downward,
// memory units ("bytes" or "bytes/..." derivatives like bytes/route) regress
// upward under their own relative threshold plus an optional absolute-growth
// ceiling, and all other rows are compared informationally only (counts and
// success rates are deterministic reproduction outputs, not perf — they
// drift when behaviour changes, which the report surfaces without failing
// the gate unless `check_values` is set).
//
// Memory rows are derived from deterministic container walks (never RSS),
// so under `values_only` they are held to exact equality like value rows —
// a byte row that differs across thread counts is a real bug.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace miro::obs {

struct RegressionOptions {
  /// Relative slowdown tolerated on perf-gated rows: fail when
  /// worse-direction change exceeds `threshold` (0.25 = +25%).
  double threshold = 0.25;
  /// Ignore perf-gated rows whose baseline magnitude is below this
  /// (relative noise on a 0.4ms row is meaningless).
  double min_magnitude = 1.0;
  /// Relative growth tolerated on memory-unit rows. Byte rows come from
  /// deterministic walks, so this can stay tight even where the time
  /// threshold is loosened for noisy shared runners.
  double memory_threshold = 0.25;
  /// Ignore memory rows whose baseline is below this many bytes (or
  /// bytes-per-unit for derived rows).
  double memory_min_magnitude = 64.0;
  /// Absolute ceiling on memory-row growth in the row's own unit: any
  /// increase beyond this many bytes fails even when the relative change is
  /// inside memory_threshold (catches "only +10%" on a huge account).
  /// 0 disables the ceiling.
  double memory_abs_limit = 0.0;
  /// Also fail when a non-gated (unitless/count) row's value drifts.
  bool check_values = false;
  /// Determinism mode: perf (time/rate) rows become informational and every
  /// other row — including memory rows, which are deterministic walks —
  /// must match EXACTLY; the contract that two runs of the same suite at
  /// different --threads counts produce identical results. Missing
  /// rows/benches still fail. Overrides threshold/check_values.
  bool values_only = false;
};

/// Row classification by unit, deciding threshold and direction.
enum class RowKind {
  Time,    ///< ns/us/ms/s — higher is worse
  Rate,    ///< anything ending in "/s" — lower is worse
  Memory,  ///< "bytes" or "bytes/..." — higher is worse, own thresholds
  Value,   ///< everything else — informational unless check_values
};

struct RegressionRow {
  std::string bench;
  std::string name;
  std::string unit;
  RowKind kind = RowKind::Value;
  double baseline = 0;
  double current = 0;
  double change = 0;       ///< signed relative change, + = larger value
  bool gated = false;      ///< held to a threshold under current options
  bool regressed = false;  ///< beyond threshold in the worse direction
};

struct RegressionReport {
  std::vector<RegressionRow> rows;          ///< every row seen in baseline
  std::vector<std::string> missing_rows;    ///< "<bench>/<name>" gone from current
  std::vector<std::string> missing_benches; ///< benches gone from current

  bool ok() const { return regressions() == 0 && missing_rows.empty() &&
                           missing_benches.empty(); }
  std::size_t regressions() const;
  /// Regressed rows of one kind (for the per-kind triage summary).
  std::size_t regressions(RowKind kind) const;

  /// Human-readable verdict table listing EVERY violation (regressed rows
  /// first, then the worst movers), ending with an OK/FAIL line that breaks
  /// the violation count down by row kind.
  void write_text(std::ostream& out) const;
};

/// True when rows with this unit are perf-gated (time or rate).
bool is_perf_unit(const std::string& unit);
/// True for byte-denominated rows ("bytes", "bytes/route", "bytes/edge").
bool is_memory_unit(const std::string& unit);
/// Unit → row kind (perf wins over memory, so "bytes/s" stays a rate).
RowKind classify_unit(const std::string& unit);

/// Compares two merged suite documents (see format above). Throws
/// miro::Error when either document is structurally malformed.
RegressionReport compare_bench_json(const JsonValue& baseline,
                                    const JsonValue& current,
                                    const RegressionOptions& options = {});

}  // namespace miro::obs
