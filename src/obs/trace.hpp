// Structured event tracing for the MIRO control plane.
//
// Diagnosing a failed negotiation or a flapping tunnel from scattered
// counters means stepping through the scheduler by hand; the evaluation
// chapter's numbers (negotiation counts, message overhead, soft-state
// tables) are likewise per-event measurements. This layer records typed,
// sim-timestamped events — negotiation phase transitions, retransmissions,
// tunnel mint/confirm/teardown/failover, keep-alive loss, bus
// send/deliver/drop with reason, BGP selection changes, scheduler timer
// fire/cancel — into a fixed-capacity ring buffer with pluggable sinks.
//
// Zero cost when disabled: every instrumented component holds a nullable
// `TraceRecorder*` (null by default) and guards each emission with a single
// branch. A TraceEvent is a flat POD — no strings are formatted and nothing
// is allocated unless a recorder is attached; `detail` only ever points at
// a string literal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace miro::obs {

/// Simulated time, mirroring sim::Time (obs sits below netsim in the
/// dependency order, so the alias is repeated rather than included).
using Time = std::uint64_t;

enum class EventType : std::uint8_t {
  // ---- negotiation lifecycle (core/protocol) ----
  NegotiationRequested,   ///< requester issued a RouteRequest
  OffersReceived,         ///< offers arrived; value = offer count
  AcceptSent,             ///< requester chose an offer; value = cost
  NegotiationEstablished, ///< confirm arrived, tunnel live; value = cost
  NegotiationFailed,      ///< clean failure; detail = why
  Retransmit,             ///< a handshake/teardown re-send; value = attempt
  DuplicateSuppressed,    ///< idempotence hit; detail = which message
  StaleConfirmReclaimed,  ///< orphan confirm answered with a teardown
  // ---- tunnel lifecycle ----
  TunnelMinted,           ///< responder created soft state
  TunnelConfirmed,        ///< requester installed the upstream record
  KeepAliveMissed,        ///< value = consecutive unacknowledged keep-alives
  TunnelFailedOver,       ///< upstream liveness loss; detail = reason
  TunnelExpired,          ///< downstream soft-state timeout
  TunnelTeardownSent,     ///< active teardown issued; value = attempt
  TunnelTornDown,         ///< downstream processed a teardown
  RenegotiationScheduled, ///< hold-down re-request queued; value = delay
  // ---- route-change tunnel monitoring (core/tunnel_monitor) ----
  TunnelWatched,
  TunnelUnwatched,
  TunnelInvalidated,      ///< a route change killed the tunnel; detail = why
  // ---- message bus (netsim/message_bus) ----
  BusSend,
  BusDeliver,
  BusDrop,                ///< detail = link_down | faults | unattached
  BusDuplicate,           ///< fault plane doubled a message; value = copies
  // ---- scheduler (netsim/scheduler) ----
  TimerScheduled,         ///< value = absolute fire time
  TimerFired,
  TimerCancelled,         ///< observed when the cancelled event is popped
  // ---- BGP update propagation (bgp/path_vector_engine) ----
  BgpRouteSelected,       ///< value = AS-path length
  BgpRouteWithdrawn,
  // ---- RIB monitoring (obs/ribmon over bgp/session_bgp) ----
  // Rendered forms of RibEventRecord for the Chrome-trace per-AS instant
  // tracks; `value` carries the record id so a track entry cross-references
  // the provenance JSONL stream.
  RibRootCause,           ///< detail = churn-event kind / "start"
  RibAnnounce,
  RibImplicitWithdraw,
  RibWithdraw,
  RibDeliver,
  RibLoss,
  RibDampingSuppress,
  RibMraiCoalesce,
  RibBestChanged,
};

/// Short stable name used by the exporters ("negotiation_requested", ...).
const char* to_string(EventType type);

/// One traced occurrence. Flat POD: recording performs no allocation and no
/// formatting. Fields that do not apply to a given type stay zero/empty.
struct TraceEvent {
  Time time = 0;                 ///< sim ticks at the observing component
  EventType type = EventType::BusSend;
  std::uint32_t actor = 0;       ///< AS / endpoint where the event happened
  std::uint32_t peer = 0;        ///< the other endpoint, when there is one
  std::uint64_t negotiation = 0; ///< negotiation id (0 = not applicable)
  std::uint64_t tunnel = 0;      ///< tunnel id (0 = not applicable)
  std::int64_t value = 0;        ///< type-specific scalar (count, attempt, …)
  const char* detail = "";       ///< static literal; never owned
};

/// Receives every recorded event, in order. Sinks are non-owning attachments
/// and must outlive the recorder (or be detached with clear_sinks()).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Keeps every event in a growable vector — the queryable sink for tests
/// (unlike the recorder's ring it never overwrites history).
class MemorySink : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Counts events without storing them. Attached to a recorder it measures
/// volume; constructed next to a *disabled* run it proves the zero-cost
/// claim (the count stays zero because record() was never reached).
class CountingSink : public TraceSink {
 public:
  void on_event(const TraceEvent&) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Streams each event as one JSON object per line (JSONL) for offline
/// analysis. All values are numeric or static literals (details are run
/// through the shared JSON escaper regardless).
///
/// Write errors (full disk, revoked path) never drop events silently: each
/// failed write is counted, ok() goes false and stays false, and the
/// destructor flushes and prints one stderr note if anything was lost —
/// callers that care about the artifact check ok() before destruction.
class JsonlFileSink : public TraceSink {
 public:
  /// Throws miro::Error when the path cannot be opened.
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;
  void on_event(const TraceEvent& event) override;
  /// Flushes buffered lines; returns stream health (false once any write
  /// or flush has failed).
  bool flush();
  bool ok() const { return failures_ == 0 && static_cast<bool>(out_); }
  std::uint64_t lines_written() const { return lines_; }
  /// Events whose serialized line could not be written.
  std::uint64_t write_failures() const { return failures_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
  std::uint64_t failures_ = 0;
};

/// Serializes one event as a single-line JSON object (the JSONL row format).
std::string to_json(const TraceEvent& event);

/// Fixed-capacity ring buffer of trace events with pluggable sinks.
///
/// The ring bounds memory for arbitrarily long simulations (old events are
/// overwritten); sinks see every event exactly once regardless of ring
/// wraparound, so a JSONL sink captures the full history.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Attaches a non-owning sink; it must outlive the recorder.
  void add_sink(TraceSink* sink);
  void clear_sinks() { sinks_.clear(); }

  void record(const TraceEvent& event);

  /// Every event still held by the ring, oldest first.
  std::vector<TraceEvent> snapshot() const;
  /// Ring events carrying this negotiation id, oldest first.
  std::vector<TraceEvent> for_negotiation(std::uint64_t id) const;
  /// Ring events carrying this tunnel id, oldest first.
  std::vector<TraceEvent> for_tunnel(std::uint64_t id) const;
  /// Number of ring events of one type.
  std::size_t count(EventType type) const;
  /// Number of ring events of one type observed at one actor.
  std::size_t count(EventType type, std::uint32_t actor) const;

  /// Total events ever recorded (monotonic; unaffected by ring overwrite).
  std::uint64_t events_recorded() const { return recorded_; }
  /// Events overwritten by ring wraparound and no longer in snapshot();
  /// sinks saw them anyway. Exactly events_recorded() - live ring entries.
  std::uint64_t events_dropped() const { return recorded_ - live_; }
  std::size_t capacity() const { return ring_.size(); }

 private:
  template <typename Predicate>
  std::vector<TraceEvent> collect(Predicate&& keep) const;

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;       ///< next write position
  std::size_t live_ = 0;       ///< events currently held (<= capacity)
  std::uint64_t recorded_ = 0;
  std::vector<TraceSink*> sinks_;
};

// ------------------------------------------------- causal reconstruction

/// The ordered event history of one negotiation, following it across the
/// requester/responder handshake and into the lifetime of the tunnel it
/// established (tunnel-scoped events are joined in via the tunnel id).
struct NegotiationTimeline {
  std::uint64_t negotiation_id = 0;
  std::uint64_t tunnel_id = 0;  ///< 0 until a confirm bound one
  std::vector<TraceEvent> events;
  std::size_t retransmits = 0;
  bool established = false;
  bool failed = false;

  /// Compact arrow-form story, consecutive repeats collapsed:
  /// "requested → retransmit ×2 → offers_received → accept_sent →
  ///  established".
  std::string summary() const;
};

/// Rebuilds the causal history of `negotiation_id` from the recorder's ring.
NegotiationTimeline reconstruct_negotiation(const TraceRecorder& recorder,
                                            std::uint64_t negotiation_id);

}  // namespace miro::obs
