#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "common/json.hpp"

namespace miro::obs {

namespace {

// One comma-separated JSON array element writer.
class EventList {
 public:
  explicit EventList(std::ostream& out) : out_(out) {}
  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void write_metadata(EventList& list, std::uint32_t pid, std::uint32_t tid,
                    const char* kind, const std::string& name) {
  list.next() << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
              << ",\"name\":\"" << kind << "\",\"args\":{\"name\":\""
              << json_escape(name) << "\"}}";
}

void write_spans(EventList& list, const ProfileRegistry& profile,
                 const ChromeTraceOptions& options) {
  write_metadata(list, options.wall_pid, 0, "process_name",
                 "wall clock (profiler spans)");
  // One track per nesting depth: spans at equal depth never overlap in the
  // single-threaded simulator, so each track's B/E events pair trivially.
  std::set<std::uint32_t> depths;
  for (const ProfileRegistry::SpanRecord& span : profile.spans())
    depths.insert(span.depth);
  for (std::uint32_t depth : depths) {
    write_metadata(list, options.wall_pid, depth, "thread_name",
                   "depth " + std::to_string(depth));
  }
  // The span log is in completion order (children before parents); sort each
  // track by begin time so B/E alternate chronologically.
  std::vector<const ProfileRegistry::SpanRecord*> ordered;
  ordered.reserve(profile.spans().size());
  for (const ProfileRegistry::SpanRecord& span : profile.spans())
    ordered.push_back(&span);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto* a, const auto* b) {
                     if (a->begin_ns != b->begin_ns)
                       return a->begin_ns < b->begin_ns;
                     return a->depth < b->depth;  // parents open first
                   });
  for (const ProfileRegistry::SpanRecord* span : ordered) {
    const std::string name = json_escape(span->name);
    const std::string category =
        json_escape(span->category[0] != '\0' ? span->category : "span");
    list.next() << "{\"ph\":\"B\",\"pid\":" << options.wall_pid
                << ",\"tid\":" << span->depth << ",\"ts\":"
                << json_number(static_cast<double>(span->begin_ns) / 1000.0)
                << ",\"name\":\"" << name << "\",\"cat\":\"" << category
                << "\"}";
    list.next() << "{\"ph\":\"E\",\"pid\":" << options.wall_pid
                << ",\"tid\":" << span->depth << ",\"ts\":"
                << json_number(static_cast<double>(span->end_ns) / 1000.0)
                << ",\"name\":\"" << name << "\",\"cat\":\"" << category
                << "\"}";
  }
}

void write_sim_events(EventList& list, const std::vector<TraceEvent>& events,
                      const ChromeTraceOptions& options) {
  write_metadata(list, options.sim_pid, 0, "process_name",
                 "sim time (trace events)");
  std::set<std::uint32_t> actors;
  for (const TraceEvent& event : events) actors.insert(event.actor);
  for (std::uint32_t actor : actors) {
    write_metadata(list, options.sim_pid, actor, "thread_name",
                   "AS " + std::to_string(actor));
  }
  for (const TraceEvent& event : events) {
    std::ostream& out = list.next();
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << options.sim_pid
        << ",\"tid\":" << event.actor << ",\"ts\":"
        << json_number(static_cast<double>(event.time) * options.sim_tick_us)
        << ",\"name\":\"" << to_string(event.type)
        << "\",\"cat\":\"sim\",\"args\":{\"sim_time\":" << event.time;
    if (event.peer != 0) out << ",\"peer\":" << event.peer;
    if (event.negotiation != 0)
      out << ",\"negotiation\":" << event.negotiation;
    if (event.tunnel != 0) out << ",\"tunnel\":" << event.tunnel;
    if (event.value != 0) out << ",\"value\":" << event.value;
    if (event.detail[0] != '\0')
      out << ",\"detail\":\"" << json_escape(event.detail) << "\"";
    out << "}}";
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const ProfileRegistry* profile,
                        const std::vector<TraceEvent>& sim_events,
                        const ChromeTraceOptions& options) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventList list(out);
  if (profile != nullptr) write_spans(list, *profile, options);
  if (!sim_events.empty()) write_sim_events(list, sim_events, options);
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const ProfileRegistry* profile,
                             const std::vector<TraceEvent>& sim_events,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "chrome_trace: cannot write %s\n", path.c_str());
    return false;
  }
  write_chrome_trace(out, profile, sim_events, options);
  return static_cast<bool>(out);
}

}  // namespace miro::obs
