#include "obs/ribmon.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "common/hash.hpp"
#include "common/json.hpp"

namespace miro::obs {

const char* to_string(RibEventKind kind) {
  switch (kind) {
    case RibEventKind::RootCause: return "root_cause";
    case RibEventKind::Announce: return "announce";
    case RibEventKind::ImplicitWithdraw: return "implicit_withdraw";
    case RibEventKind::Withdraw: return "withdraw";
    case RibEventKind::Deliver: return "deliver";
    case RibEventKind::Loss: return "loss";
    case RibEventKind::DampingSuppress: return "damping_suppress";
    case RibEventKind::MraiCoalesce: return "mrai_coalesce";
    case RibEventKind::BestChanged: return "best_changed";
  }
  return "unknown";
}

std::string to_json(const RibEventRecord& record) {
  std::string line;
  line.reserve(192);
  line += "{\"id\":";
  line += std::to_string(record.id);
  if (record.parent != 0) {
    line += ",\"parent\":";
    line += std::to_string(record.parent);
  }
  line += ",\"t\":";
  line += std::to_string(record.time);
  line += ",\"kind\":\"";
  line += to_string(record.kind);
  line += "\",\"actor\":";
  line += std::to_string(record.actor);
  if (record.peer != 0) {
    line += ",\"peer\":";
    line += std::to_string(record.peer);
  }
  line += ",\"prefix\":";
  line += std::to_string(record.prefix);
  if (record.path_len != 0) {
    line += ",\"path_len\":";
    line += std::to_string(record.path_len);
  }
  if (record.path_hash != 0) {
    line += ",\"path_hash\":";
    line += std::to_string(record.path_hash);
  }
  if (record.detail[0] != '\0') {
    line += ",\"detail\":\"";
    line += json_escape(record.detail);
    line += "\"";
  }
  line += "}";
  return line;
}

std::uint64_t hash_path(const std::vector<std::uint32_t>& path) {
  std::uint64_t hash = kFnvOffset;
  for (const std::uint32_t node : path) hash = hash_combine(hash, node);
  // Reserve 0 for "no route" so a valid path never collides with it.
  return hash == 0 ? 1 : hash;
}

// ----------------------------------------------------------------- monitor

RibEventId RibMonitor::record_root(Time time, std::uint32_t actor,
                                   const char* detail, std::uint32_t peer) {
  RibEventRecord record;
  record.id = next_id_++;
  record.parent = 0;
  record.time = time;
  record.kind = RibEventKind::RootCause;
  record.actor = actor;
  record.peer = peer;
  record.detail = detail;
  ++by_kind_[static_cast<std::size_t>(record.kind)];
  records_.push_back(record);
  return record.id;
}

RibEventId RibMonitor::record(Time time, RibEventKind kind,
                              std::uint32_t actor, std::uint32_t peer,
                              std::uint32_t prefix, std::uint32_t path_len,
                              std::uint64_t path_hash, const char* detail) {
  RibEventRecord record;
  record.id = next_id_++;
  record.parent = cause_;
  record.time = time;
  record.kind = kind;
  record.actor = actor;
  record.peer = peer;
  record.prefix = prefix;
  record.path_len = path_len;
  record.path_hash = path_hash;
  record.detail = detail;
  ++by_kind_[static_cast<std::size_t>(kind)];
  records_.push_back(record);
  return record.id;
}

std::uint64_t RibMonitor::wire_messages() const {
  return count(RibEventKind::Announce) +
         count(RibEventKind::ImplicitWithdraw) +
         count(RibEventKind::Withdraw);
}

void RibMonitor::write_jsonl(std::ostream& out) const {
  for (const RibEventRecord& record : records_) {
    out << to_json(record) << '\n';
  }
}

std::vector<TraceEvent> RibMonitor::as_trace_events() const {
  std::vector<TraceEvent> events;
  events.reserve(records_.size());
  for (const RibEventRecord& record : records_) {
    TraceEvent event;
    event.time = record.time;
    switch (record.kind) {
      case RibEventKind::RootCause: event.type = EventType::RibRootCause; break;
      case RibEventKind::Announce: event.type = EventType::RibAnnounce; break;
      case RibEventKind::ImplicitWithdraw:
        event.type = EventType::RibImplicitWithdraw;
        break;
      case RibEventKind::Withdraw: event.type = EventType::RibWithdraw; break;
      case RibEventKind::Deliver: event.type = EventType::RibDeliver; break;
      case RibEventKind::Loss: event.type = EventType::RibLoss; break;
      case RibEventKind::DampingSuppress:
        event.type = EventType::RibDampingSuppress;
        break;
      case RibEventKind::MraiCoalesce:
        event.type = EventType::RibMraiCoalesce;
        break;
      case RibEventKind::BestChanged:
        event.type = EventType::RibBestChanged;
        break;
    }
    event.actor = record.actor;
    event.peer = record.peer;
    event.value = static_cast<std::int64_t>(record.id);
    event.detail = record.detail;
    events.push_back(event);
  }
  return events;
}

// ------------------------------------------------------- propagation trees

ProvenanceSummary build_propagation_trees(
    const std::vector<RibEventRecord>& records) {
  ProvenanceSummary summary;
  struct Placement {
    std::size_t tree = 0;
    std::size_t depth = 0;
    std::size_t children = 0;
  };
  std::unordered_map<RibEventId, Placement> placed;
  placed.reserve(records.size());

  for (const RibEventRecord& record : records) {
    std::size_t tree_index = 0;
    std::size_t depth = 0;
    const auto parent_it = record.parent == 0
                               ? placed.end()
                               : placed.find(record.parent);
    if (record.parent != 0 && parent_it == placed.end()) ++summary.orphans;
    if (record.parent == 0 || parent_it == placed.end()) {
      tree_index = summary.trees.size();
      PropagationTree tree;
      tree.root = record.id;
      tree.root_actor = record.actor;
      tree.root_detail = record.detail;
      tree.root_kind = record.kind;
      tree.start = record.time;
      tree.settled = record.time;
      summary.trees.push_back(tree);
    } else {
      tree_index = parent_it->second.tree;
      depth = parent_it->second.depth + 1;
      PropagationTree& tree = summary.trees[tree_index];
      const std::size_t fanout = ++parent_it->second.children;
      tree.max_fanout = std::max(tree.max_fanout, fanout);
    }
    placed.emplace(record.id, Placement{tree_index, depth, 0});

    PropagationTree& tree = summary.trees[tree_index];
    ++tree.nodes;
    tree.settled = std::max(tree.settled, record.time);
    tree.depth = std::max(tree.depth, depth);
    switch (record.kind) {
      case RibEventKind::Announce:
      case RibEventKind::ImplicitWithdraw:
      case RibEventKind::Withdraw:
        ++tree.updates;
        ++summary.total_updates;
        break;
      case RibEventKind::Deliver:
        ++tree.delivered;
        ++summary.total_delivered;
        break;
      case RibEventKind::Loss:
        ++tree.losses;
        ++summary.total_losses;
        break;
      case RibEventKind::DampingSuppress:
        ++tree.suppressed;
        ++summary.total_suppressed;
        break;
      case RibEventKind::MraiCoalesce:
        ++tree.coalesced;
        ++summary.total_coalesced;
        break;
      case RibEventKind::BestChanged:
        ++tree.best_changes;
        ++summary.total_best_changes;
        break;
      case RibEventKind::RootCause:
        break;
    }
  }
  return summary;
}

// -------------------------------------------------- convergence observables

ConvergenceReport summarize_convergence(
    const std::vector<RibEventRecord>& records) {
  ConvergenceReport report;
  if (records.empty()) return report;
  report.first_time = records.front().time;
  report.last_time = records.back().time;

  struct ActorState {
    std::size_t best_changes = 0;
    std::vector<std::uint64_t> hashes;  // distinct best-path fingerprints
  };
  std::unordered_map<std::uint32_t, ActorState> actors;
  for (const RibEventRecord& record : records) {
    if (record.kind != RibEventKind::BestChanged) continue;
    ActorState& state = actors[record.actor];
    ++state.best_changes;
    ++report.total_best_changes;
    if (std::find(state.hashes.begin(), state.hashes.end(),
                  record.path_hash) == state.hashes.end()) {
      state.hashes.push_back(record.path_hash);
    }
  }
  report.actors.reserve(actors.size());
  for (const auto& [actor, state] : actors) {
    report.actors.push_back({actor, state.best_changes, state.hashes.size()});
  }
  std::sort(report.actors.begin(), report.actors.end(),
            [](const ConvergenceReport::PerActor& a,
               const ConvergenceReport::PerActor& b) {
              return a.actor < b.actor;
            });
  return report;
}

void export_ribmon_metrics(const RibMonitor& monitor,
                           MetricsRegistry& registry,
                           const std::string& prefix) {
  const ProvenanceSummary summary =
      build_propagation_trees(monitor.records());
  const ConvergenceReport convergence =
      summarize_convergence(monitor.records());

  registry.counter(prefix + ".records").set(monitor.size());
  registry.counter(prefix + ".updates").set(summary.total_updates);
  registry.counter(prefix + ".delivered").set(summary.total_delivered);
  registry.counter(prefix + ".losses").set(summary.total_losses);
  registry.counter(prefix + ".suppressed").set(summary.total_suppressed);
  registry.counter(prefix + ".coalesced").set(summary.total_coalesced);
  registry.counter(prefix + ".best_changes").set(summary.total_best_changes);
  registry.counter(prefix + ".roots").set(summary.trees.size());
  registry.counter(prefix + ".orphans").set(summary.orphans);
  registry.gauge(prefix + ".churn_rate").set(convergence.churn_rate());

  Histogram& conv = registry.histogram(prefix + ".convergence_ticks");
  Histogram& amp = registry.histogram(prefix + ".amplification");
  Histogram& depth = registry.histogram(prefix + ".tree_depth");
  Histogram& fanout = registry.histogram(prefix + ".fanout");
  for (const PropagationTree& tree : summary.trees) {
    conv.observe(static_cast<double>(tree.convergence()));
    amp.observe(tree.amplification());
    depth.observe(static_cast<double>(tree.depth));
    fanout.observe(static_cast<double>(tree.max_fanout));
  }
  Histogram& exploration = registry.histogram(prefix + ".path_exploration");
  for (const ConvergenceReport::PerActor& actor : convergence.actors) {
    exploration.observe(static_cast<double>(actor.distinct_paths));
  }
}

}  // namespace miro::obs
