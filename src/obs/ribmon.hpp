// Route-event provenance: BMP-style RIB monitoring for the sessioned BGP
// plane.
//
// PR 6's churn lab measures burst convergence and suppression ratios as
// opaque aggregates; this layer answers *why* the control plane sent each
// update. A production router exports the same observables over BMP route
// monitoring — here the simulator emits one structured record per
// RIB-changing occurrence (announce / implicit-withdraw / withdraw on the
// wire, delivery, in-flight loss, damping suppression, MRAI coalescing,
// best-route change), and every record carries a *causal parent id*: the
// delivered message or external root cause (churn-trace event, start())
// that triggered it. Chaining parents yields per-root-cause propagation
// trees — depth, fan-out, and amplification (wire messages per root cause)
// — plus per-prefix convergence observables (convergence time,
// path-exploration count, RIB-churn rate).
//
// Zero cost when disabled, like TraceRecorder: the instrumented network
// holds a nullable `RibMonitor*` (null by default) and guards every
// emission with one branch. A RibEventRecord is a flat POD; `detail` only
// ever points at a static string literal. Record ids are assigned in the
// deterministic scheduler's execution order, so a monitored replay is
// byte-identical across runs and thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace miro::obs {

/// Monotonic record id, unique within one RibMonitor. 0 = "no record" (the
/// parent of a root).
using RibEventId = std::uint64_t;

enum class RibEventKind : std::uint8_t {
  RootCause,         ///< external cause: churn-trace event, start(), API call
  Announce,          ///< UPDATE to a peer that held nothing from the sender
  ImplicitWithdraw,  ///< UPDATE replacing a path the peer already held
  Withdraw,          ///< explicit WITHDRAW on the wire
  Deliver,           ///< a wire message arrived at its receiver
  Loss,              ///< a wire message died with its failed link
  DampingSuppress,   ///< inbound absorbed by flap damping, not propagated
  MraiCoalesce,      ///< outbound elided by a newer message in an MRAI window
  BestChanged,       ///< a speaker's best route changed
};

/// Short stable name ("root_cause", "announce", ...) used by the exporters.
const char* to_string(RibEventKind kind);

/// One provenance record. Flat POD: recording allocates only the growable
/// history slot; nothing is formatted until export.
struct RibEventRecord {
  RibEventId id = 0;
  RibEventId parent = 0;         ///< causal parent record; 0 = root
  Time time = 0;                 ///< sim ticks when the event happened
  RibEventKind kind = RibEventKind::RootCause;
  std::uint32_t actor = 0;       ///< speaker where it happened / sender
  std::uint32_t peer = 0;        ///< other endpoint, when there is one
  std::uint32_t prefix = 0;      ///< destination AS of the monitored prefix
  std::uint32_t path_len = 0;    ///< AS-path length carried (0 = none)
  std::uint64_t path_hash = 0;   ///< FNV-1a of the best path (BestChanged)
  const char* detail = "";       ///< static literal; never owned

  /// True for the kinds that put an UPDATE/WITHDRAW on the wire.
  bool is_wire_message() const {
    return kind == RibEventKind::Announce ||
           kind == RibEventKind::ImplicitWithdraw ||
           kind == RibEventKind::Withdraw;
  }
};

/// Serializes one record as a single-line JSON object (the JSONL row
/// format). Zero-valued optional fields are omitted.
std::string to_json(const RibEventRecord& record);

/// FNV-1a over a node-id path — the fingerprint BestChanged records carry so
/// distinct best paths can be counted without storing the paths.
std::uint64_t hash_path(const std::vector<std::uint32_t>& path);

/// Collects the full record history and maintains the ambient causal
/// context. Single-threaded, like the simulation that feeds it.
class RibMonitor {
 public:
  /// The causal parent new records are born with; 0 when no cause is active.
  RibEventId current_cause() const { return cause_; }

  /// Records an external root cause (parent forced to 0 regardless of the
  /// ambient cause) and returns its id — establish it with a CauseScope to
  /// attribute the reaction.
  RibEventId record_root(Time time, std::uint32_t actor, const char* detail,
                         std::uint32_t peer = 0);

  /// Records one event with parent = current_cause() and returns its id.
  RibEventId record(Time time, RibEventKind kind, std::uint32_t actor,
                    std::uint32_t peer, std::uint32_t prefix,
                    std::uint32_t path_len, std::uint64_t path_hash = 0,
                    const char* detail = "");

  /// RAII causal context. A null monitor makes every operation a no-op, so
  /// instrumented code can construct one unconditionally.
  class CauseScope {
   public:
    CauseScope(RibMonitor* monitor, RibEventId cause) : monitor_(monitor) {
      if (monitor_ != nullptr) {
        previous_ = monitor_->cause_;
        monitor_->cause_ = cause;
      }
    }
    ~CauseScope() {
      if (monitor_ != nullptr) monitor_->cause_ = previous_;
    }
    CauseScope(const CauseScope&) = delete;
    CauseScope& operator=(const CauseScope&) = delete;

   private:
    RibMonitor* monitor_;
    RibEventId previous_ = 0;
  };

  const std::vector<RibEventRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  std::uint64_t count(RibEventKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)];
  }
  /// Announce + implicit-withdraw + withdraw records (wire emissions).
  std::uint64_t wire_messages() const;

  /// One JSON object per line, in record order (the miro_ribmon stream).
  void write_jsonl(std::ostream& out) const;

  /// Renders the history as sim-time TraceEvents (per-AS instant tracks)
  /// for obs/chrome_trace. `value` carries the record id so a Perfetto
  /// track cross-references the JSONL stream.
  std::vector<TraceEvent> as_trace_events() const;

 private:
  std::vector<RibEventRecord> records_;
  std::uint64_t by_kind_[9] = {};
  RibEventId next_id_ = 1;
  RibEventId cause_ = 0;
};

// -------------------------------------------- propagation-graph analysis

/// One per-root-cause causal tree: the root record plus everything whose
/// parent chain reaches it.
struct PropagationTree {
  RibEventId root = 0;
  std::uint32_t root_actor = 0;
  const char* root_detail = "";    ///< root-cause name ("link_down", ...)
  RibEventKind root_kind = RibEventKind::RootCause;
  Time start = 0;                  ///< root record's sim time
  Time settled = 0;                ///< sim time of the last record in the tree
  std::size_t nodes = 0;           ///< records in the tree, root included
  std::size_t updates = 0;         ///< wire messages (announce/implicit/withdraw)
  std::size_t delivered = 0;       ///< Deliver records
  std::size_t losses = 0;          ///< Loss records
  std::size_t suppressed = 0;      ///< DampingSuppress records
  std::size_t coalesced = 0;       ///< MraiCoalesce records
  std::size_t best_changes = 0;    ///< BestChanged records
  std::size_t depth = 0;           ///< max causal depth (root = 0)
  std::size_t max_fanout = 0;      ///< max children under any one record

  /// Convergence time of this root cause: first event to last reaction.
  Time convergence() const { return settled - start; }
  /// Wire messages emitted per root cause — the amplification factor.
  double amplification() const { return static_cast<double>(updates); }
};

/// The reconstructed propagation graph plus closed-accounting totals: every
/// record lands in exactly one tree, so the per-tree sums equal the stream
/// totals by construction; `orphans` counts records whose parent id is
/// unknown (always 0 for a stream produced by one RibMonitor).
struct ProvenanceSummary {
  std::vector<PropagationTree> trees;  ///< in root-record order
  std::size_t orphans = 0;
  std::size_t total_updates = 0;
  std::size_t total_delivered = 0;
  std::size_t total_losses = 0;
  std::size_t total_suppressed = 0;
  std::size_t total_coalesced = 0;
  std::size_t total_best_changes = 0;
};

/// Groups `records` into per-root-cause trees. Records with parent 0 (or an
/// unknown parent, counted as an orphan) root their own tree; ids are
/// monotonic so parents always precede children in the stream.
ProvenanceSummary build_propagation_trees(
    const std::vector<RibEventRecord>& records);

// -------------------------------------------- convergence observables

/// Per-prefix convergence observables distilled from one record stream.
struct ConvergenceReport {
  struct PerActor {
    std::uint32_t actor = 0;
    std::size_t best_changes = 0;   ///< times the best route moved
    std::size_t distinct_paths = 0; ///< path-exploration count (incl. "none")
  };
  std::vector<PerActor> actors;     ///< sorted by actor id
  std::size_t total_best_changes = 0;
  Time first_time = 0;
  Time last_time = 0;
  /// RIB-churn rate: best-route changes per 1000 sim ticks over the span.
  double churn_rate() const {
    return last_time > first_time
               ? static_cast<double>(total_best_changes) * 1000.0 /
                     static_cast<double>(last_time - first_time)
               : 0.0;
  }
};

ConvergenceReport summarize_convergence(
    const std::vector<RibEventRecord>& records);

/// Exports the propagation-tree and convergence observables into `registry`
/// under `<prefix>.`: counters (records, updates, delivered, losses,
/// suppressed, coalesced, roots, orphans), histograms (convergence_ticks,
/// amplification, tree_depth, fanout, path_exploration), and the churn_rate
/// gauge. Safe to call repeatedly; counters are snapshot-overwritten.
void export_ribmon_metrics(const RibMonitor& monitor,
                           MetricsRegistry& registry,
                           const std::string& prefix = "ribmon");

}  // namespace miro::obs
