#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/json.hpp"

namespace miro::obs {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::NegotiationRequested: return "negotiation_requested";
    case EventType::OffersReceived: return "offers_received";
    case EventType::AcceptSent: return "accept_sent";
    case EventType::NegotiationEstablished: return "established";
    case EventType::NegotiationFailed: return "failed";
    case EventType::Retransmit: return "retransmit";
    case EventType::DuplicateSuppressed: return "duplicate_suppressed";
    case EventType::StaleConfirmReclaimed: return "stale_confirm_reclaimed";
    case EventType::TunnelMinted: return "tunnel_minted";
    case EventType::TunnelConfirmed: return "tunnel_confirmed";
    case EventType::KeepAliveMissed: return "keepalive_missed";
    case EventType::TunnelFailedOver: return "tunnel_failed_over";
    case EventType::TunnelExpired: return "tunnel_expired";
    case EventType::TunnelTeardownSent: return "teardown_sent";
    case EventType::TunnelTornDown: return "tunnel_torn_down";
    case EventType::RenegotiationScheduled: return "renegotiation_scheduled";
    case EventType::TunnelWatched: return "tunnel_watched";
    case EventType::TunnelUnwatched: return "tunnel_unwatched";
    case EventType::TunnelInvalidated: return "tunnel_invalidated";
    case EventType::BusSend: return "bus_send";
    case EventType::BusDeliver: return "bus_deliver";
    case EventType::BusDrop: return "bus_drop";
    case EventType::BusDuplicate: return "bus_duplicate";
    case EventType::TimerScheduled: return "timer_scheduled";
    case EventType::TimerFired: return "timer_fired";
    case EventType::TimerCancelled: return "timer_cancelled";
    case EventType::BgpRouteSelected: return "bgp_route_selected";
    case EventType::BgpRouteWithdrawn: return "bgp_route_withdrawn";
    case EventType::RibRootCause: return "rib_root_cause";
    case EventType::RibAnnounce: return "rib_announce";
    case EventType::RibImplicitWithdraw: return "rib_implicit_withdraw";
    case EventType::RibWithdraw: return "rib_withdraw";
    case EventType::RibDeliver: return "rib_deliver";
    case EventType::RibLoss: return "rib_loss";
    case EventType::RibDampingSuppress: return "rib_damping_suppress";
    case EventType::RibMraiCoalesce: return "rib_mrai_coalesce";
    case EventType::RibBestChanged: return "rib_best_changed";
  }
  return "unknown";
}

std::string to_json(const TraceEvent& event) {
  std::string line;
  line.reserve(160);
  line += "{\"t\":";
  line += std::to_string(event.time);
  line += ",\"type\":\"";
  line += to_string(event.type);
  line += "\",\"actor\":";
  line += std::to_string(event.actor);
  if (event.peer != 0) {
    line += ",\"peer\":";
    line += std::to_string(event.peer);
  }
  if (event.negotiation != 0) {
    line += ",\"negotiation\":";
    line += std::to_string(event.negotiation);
  }
  if (event.tunnel != 0) {
    line += ",\"tunnel\":";
    line += std::to_string(event.tunnel);
  }
  if (event.value != 0) {
    line += ",\"value\":";
    line += std::to_string(event.value);
  }
  if (event.detail[0] != '\0') {
    line += ",\"detail\":\"";
    // Details are static literals without specials today, but route them
    // through the shared escaper so a future literal cannot break the JSONL.
    line += json_escape(event.detail);
    line += "\"";
  }
  line += "}";
  return line;
}

JsonlFileSink::JsonlFileSink(const std::string& path)
    : path_(path), out_(path) {
  require(static_cast<bool>(out_),
          "JsonlFileSink: cannot open trace file: " + path);
}

JsonlFileSink::~JsonlFileSink() {
  out_.flush();
  if (!out_ && failures_ == 0) failures_ = 1;  // flush-time loss (ENOSPC)
  if (failures_ != 0) {
    std::fprintf(stderr,
                 "JsonlFileSink: %llu write failure(s) on %s — trace "
                 "incomplete\n",
                 static_cast<unsigned long long>(failures_), path_.c_str());
  }
}

void JsonlFileSink::on_event(const TraceEvent& event) {
  out_ << to_json(event) << '\n';
  // A failed stream stays failed: every further event counts as lost rather
  // than silently vanishing into a bad ofstream.
  if (out_) {
    ++lines_;
  } else {
    ++failures_;
  }
}

bool JsonlFileSink::flush() {
  out_.flush();
  return static_cast<bool>(out_);
}

// ---------------------------------------------------------------- recorder

TraceRecorder::TraceRecorder(std::size_t capacity) {
  require(capacity > 0, "TraceRecorder: capacity must be positive");
  ring_.resize(capacity);
}

void TraceRecorder::add_sink(TraceSink* sink) {
  require(sink != nullptr, "TraceRecorder::add_sink: null sink");
  sinks_.push_back(sink);
}

void TraceRecorder::record(const TraceEvent& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (live_ < ring_.size()) ++live_;
  ++recorded_;
  for (TraceSink* sink : sinks_) sink->on_event(event);
}

template <typename Predicate>
std::vector<TraceEvent> TraceRecorder::collect(Predicate&& keep) const {
  std::vector<TraceEvent> out;
  const std::size_t start = (head_ + ring_.size() - live_) % ring_.size();
  for (std::size_t i = 0; i < live_; ++i) {
    const TraceEvent& event = ring_[(start + i) % ring_.size()];
    if (keep(event)) out.push_back(event);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  return collect([](const TraceEvent&) { return true; });
}

std::vector<TraceEvent> TraceRecorder::for_negotiation(
    std::uint64_t id) const {
  return collect(
      [id](const TraceEvent& event) { return event.negotiation == id; });
}

std::vector<TraceEvent> TraceRecorder::for_tunnel(std::uint64_t id) const {
  return collect([id](const TraceEvent& event) { return event.tunnel == id; });
}

std::size_t TraceRecorder::count(EventType type) const {
  return collect([type](const TraceEvent& event) {
           return event.type == type;
         })
      .size();
}

std::size_t TraceRecorder::count(EventType type, std::uint32_t actor) const {
  return collect([type, actor](const TraceEvent& event) {
           return event.type == type && event.actor == actor;
         })
      .size();
}

// ------------------------------------------------- causal reconstruction

std::string NegotiationTimeline::summary() const {
  std::string out;
  auto emit = [&out](EventType type, std::size_t repeats) {
    if (!out.empty()) out += " → ";
    out += to_string(type);
    if (repeats > 1) {
      out += " ×";
      out += std::to_string(repeats);
    }
  };
  std::size_t streak = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    ++streak;
    const bool run_ends =
        i + 1 == events.size() || events[i + 1].type != events[i].type;
    if (run_ends) {
      emit(events[i].type, streak);
      streak = 0;
    }
  }
  return out;
}

NegotiationTimeline reconstruct_negotiation(const TraceRecorder& recorder,
                                            std::uint64_t negotiation_id) {
  NegotiationTimeline timeline;
  timeline.negotiation_id = negotiation_id;
  // First pass: the handshake events carry the negotiation id and reveal
  // the tunnel id the negotiation bound (if it established).
  for (const TraceEvent& event : recorder.for_negotiation(negotiation_id)) {
    if (event.tunnel != 0) timeline.tunnel_id = event.tunnel;
  }
  // Second pass: join in the bound tunnel's own lifetime events (keep-alive
  // loss, failover, expiry, teardown), which carry only the tunnel id. The
  // ring is chronological, so one ordered scan suffices.
  for (const TraceEvent& event : recorder.snapshot()) {
    const bool by_negotiation = event.negotiation == negotiation_id;
    const bool by_tunnel = timeline.tunnel_id != 0 &&
                           event.negotiation == 0 &&
                           event.tunnel == timeline.tunnel_id;
    if (!by_negotiation && !by_tunnel) continue;
    timeline.events.push_back(event);
    switch (event.type) {
      case EventType::Retransmit: ++timeline.retransmits; break;
      case EventType::NegotiationEstablished:
        timeline.established = true;
        break;
      case EventType::NegotiationFailed: timeline.failed = true; break;
      default: break;
    }
  }
  return timeline;
}

}  // namespace miro::obs
