#include "obs/memstats.hpp"

#include <cstdio>
#include <cstring>

#include "common/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace miro::obs {

namespace {

MemoryRegistry* g_memory = nullptr;            ///< set_memory's registry
thread_local MemoryRegistry* t_memory = nullptr;  ///< what memory() sees

/// Current resident set in bytes from /proc/self/status (VmRSS line), or 0
/// where that file does not exist. fscanf-free line scan: the status file
/// is small and the field is "VmRSS:   <n> kB".
std::uint64_t read_vm_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

/// Peak resident set in bytes from getrusage. ru_maxrss is kilobytes on
/// Linux and bytes on macOS; 0 where unavailable.
std::uint64_t read_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

MemoryRegistry* memory() { return t_memory; }

void set_memory(MemoryRegistry* registry) {
  g_memory = registry;
  t_memory = registry;
}

std::uint64_t MemoryRegistry::tracked_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, counters] : accounts_) total += counters.current;
  return total;
}

void MemoryRegistry::sample_rss() {
  const std::uint64_t current = read_vm_rss_bytes();
  const std::uint64_t peak = read_peak_rss_bytes();
  if (current == 0 && peak == 0) return;  // no source on this platform
  rss_bytes_ = current != 0 ? current : rss_bytes_;
  if (current > rss_peak_bytes_) rss_peak_bytes_ = current;
  if (peak > rss_peak_bytes_) rss_peak_bytes_ = peak;
  ++rss_samples_;
}

void MemoryRegistry::write_text(std::ostream& out) const {
  TextTable table({"account", "bytes", "peak bytes", "allocs", "frees", ""});
  for (const auto& [name, counters] : accounts_) {
    table.add_row({name, std::to_string(counters.current),
                   std::to_string(counters.peak),
                   std::to_string(counters.allocations),
                   std::to_string(counters.deallocations),
                   human_bytes(counters.current)});
  }
  const std::uint64_t total = tracked_bytes();
  table.add_row({"[tracked total]", std::to_string(total), "", "", "",
                 human_bytes(total)});
  table.print(out);
  if (rss_samples_ > 0) {
    out << "rss " << rss_bytes_ << " bytes (" << human_bytes(rss_bytes_)
        << "), peak " << rss_peak_bytes_ << " bytes ("
        << human_bytes(rss_peak_bytes_) << "), " << rss_samples_
        << " sample(s)\n";
  }
}

void MemoryRegistry::export_metrics(MetricsRegistry& registry,
                                    const std::string& prefix) const {
  for (const auto& [name, counters] : accounts_) {
    const std::string base = prefix + "." + name;
    registry.gauge(base + ".bytes")
        .set(static_cast<double>(counters.current));
    registry.gauge(base + ".peak_bytes")
        .set(static_cast<double>(counters.peak));
    registry.counter(base + ".allocations").set(counters.allocations);
  }
  registry.gauge(prefix + ".tracked_bytes")
      .set(static_cast<double>(tracked_bytes()));
  if (rss_samples_ > 0) {
    registry.gauge(prefix + ".rss_bytes")
        .set(static_cast<double>(rss_bytes_));
    registry.gauge(prefix + ".rss_peak_bytes")
        .set(static_cast<double>(rss_peak_bytes_));
    registry.counter(prefix + ".rss_samples").set(rss_samples_);
  }
}

void MemoryRegistry::reset() {
  accounts_.clear();
  rss_bytes_ = 0;
  rss_peak_bytes_ = 0;
  rss_samples_ = 0;
}

}  // namespace miro::obs
