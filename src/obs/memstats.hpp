// Memory observability for the MIRO control plane.
//
// The profile plane (obs/profile.hpp) answers *where wall-clock time goes*;
// this layer answers *where the bytes live*. A MemoryRegistry holds named
// per-subsystem accounts (common/memtrack.hpp MemCounters: current/peak
// bytes plus allocation counts) fed by the memory-dominant owners —
// topology::AsGraph, the bgp::RouteStore tree cache, sessioned BGP
// Adj-RIB-In, churn replay state — and a process-level RSS sampler read at
// profiler span boundaries.
//
// Zero cost when disabled, on the same contract as ProfileRegistry: every
// instrumentation site goes through a nullable `MemoryRegistry*` (null by
// default) and pays a single branch; nothing is read or allocated unless a
// registry is attached. Accounting only *observes* container state — it
// never feeds back into simulation behaviour, so accounted and unaccounted
// runs are bit-identical (asserted in tests/memstats_test.cpp).
//
// Two account-feeding styles (see common/memtrack.hpp):
//   - live: ScopedAccount / CountingAllocator charge and credit as memory
//     comes and goes; `peak` is meaningful between samples.
//   - walk: owners expose footprint() methods computed from container
//     capacities and set_current() the result at sample points. Walks are
//     deterministic at any thread count, which is why bench JSON byte rows
//     come from walks and never from RSS or live peaks.
//
// RSS is the one account that is *not* deterministic: it reflects the whole
// process (allocator slack, code pages, whatever the OS maps), so it is
// surfaced in text tables and metrics gauges but deliberately kept out of
// bench result rows gated by the bit-identical determinism contract.
//
// Attachment is process-wide through obs::memory()/obs::set_memory(),
// resolved through a thread-local slot exactly like obs::profile(): worker
// threads of the parallel layer see null, so sampling and account mutation
// stay single-threaded on the attaching thread.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "common/memtrack.hpp"
#include "obs/metrics.hpp"

namespace miro::obs {

class MemoryRegistry {
 public:
  /// Returns the account named `name`, creating it on first use. The
  /// reference is stable for the registry's lifetime (node-based map), so
  /// owners and CountingAllocators may hold it across calls.
  MemCounters& account(const std::string& name) { return accounts_[name]; }

  /// All accounts, sorted by name.
  const std::map<std::string, MemCounters>& accounts() const {
    return accounts_;
  }

  /// Sum of all accounts' current bytes (tracked heap, not process RSS).
  std::uint64_t tracked_bytes() const;

  /// Reads the process resident set size: current VmRSS from
  /// /proc/self/status and peak from getrusage(ru_maxrss), keeping the
  /// high-water mark across samples. Called automatically at top-level
  /// profiler span boundaries while both registries are attached; safe to
  /// call directly. On platforms without either source the sample is a
  /// no-op (counters stay 0).
  void sample_rss();
  std::uint64_t rss_bytes() const { return rss_bytes_; }
  std::uint64_t rss_peak_bytes() const { return rss_peak_bytes_; }
  std::uint64_t rss_samples() const { return rss_samples_; }

  /// Fixed-width account table: account / current / peak / allocs / frees,
  /// sorted by name, with a tracked-total row and (when sampled) the RSS
  /// current/peak lines.
  void write_text(std::ostream& out) const;

  /// Exports accounts into a MetricsRegistry: `<prefix>.<name>.bytes` /
  /// `.peak_bytes` gauges and `.allocations` counter per account, plus
  /// `<prefix>.tracked_bytes`, and `<prefix>.rss_bytes` /
  /// `.rss_peak_bytes` gauges with an `.rss_samples` counter when the
  /// sampler has run.
  void export_metrics(MetricsRegistry& registry,
                      const std::string& prefix = "memory") const;

  /// Drops all accounts and RSS samples.
  void reset();

 private:
  std::map<std::string, MemCounters> accounts_;
  std::uint64_t rss_bytes_ = 0;
  std::uint64_t rss_peak_bytes_ = 0;
  std::uint64_t rss_samples_ = 0;
};

/// RAII byte charge against a named account: charges on construction,
/// credits the full accumulated charge on destruction. Nested scopes on the
/// same account sum, so the account's `peak` captures the deepest
/// concurrently-live charge. With a null registry every operation is a
/// single branch — the instrumentation idiom is
///   obs::ScopedAccount mem(obs::memory(), "eval/plan", initial_bytes);
///   ...
///   mem.charge(more_bytes);  // as the phase's working set grows
class ScopedAccount {
 public:
  ScopedAccount(MemoryRegistry* registry, const char* name,
                std::uint64_t bytes = 0)
      : counters_(registry != nullptr ? &registry->account(name) : nullptr) {
    if (counters_ != nullptr && bytes > 0) charge(bytes);
  }
  ~ScopedAccount() {
    if (counters_ != nullptr) counters_->sub(charged_);
  }
  ScopedAccount(const ScopedAccount&) = delete;
  ScopedAccount& operator=(const ScopedAccount&) = delete;

  /// Adds `bytes` to the scope's charge (credited in full at scope exit).
  void charge(std::uint64_t bytes) {
    if (counters_ == nullptr) return;
    counters_->add(bytes);
    charged_ += bytes;
  }

 private:
  MemCounters* counters_;
  std::uint64_t charged_ = 0;
};

/// The registry instrumentation sites consult on this thread. Null (memory
/// accounting disabled) until set_memory() attaches one; the caller keeps
/// ownership and must detach (set_memory(nullptr)) before destroying it.
/// Worker threads always see null — accounts are single-threaded state and
/// footprint walks happen on the attaching thread after joins.
MemoryRegistry* memory();
void set_memory(MemoryRegistry* registry);

}  // namespace miro::obs
