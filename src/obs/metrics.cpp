#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/table.hpp"

namespace miro::obs {

void Histogram::observe(double value) {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  if (value < 1) {
    ++underflow_;
    return;
  }
  const auto exponent = static_cast<std::size_t>(std::floor(std::log2(value)));
  if (exponent >= buckets_.size()) buckets_.resize(exponent + 1, 0);
  ++buckets_[exponent];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 100) return max();
  // Nearest-rank (1-based) over the bucket cumulative counts.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = underflow_;
  if (rank <= seen) return min();  // sub-1 samples collapse to the minimum
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (rank <= seen + buckets_[i]) {
      const double lower = std::exp2(static_cast<double>(i));
      const double upper = lower * 2.0;
      // Interpolate at the rank's midpoint position inside the bucket.
      const double within =
          (static_cast<double>(rank - seen) - 0.5) /
          static_cast<double>(buckets_[i]);
      const double value = lower + (upper - lower) * within;
      return std::min(std::max(value, min()), max());
    }
    seen += buckets_[i];
  }
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  require(gauges_.find(name) == gauges_.end() &&
              histograms_.find(name) == histograms_.end(),
          "MetricsRegistry: '" + name + "' already bound to another kind");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  require(counters_.find(name) == counters_.end() &&
              histograms_.find(name) == histograms_.end(),
          "MetricsRegistry: '" + name + "' already bound to another kind");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  require(counters_.find(name) == counters_.end() &&
              gauges_.find(name) == gauges_.end(),
          "MetricsRegistry: '" + name + "' already bound to another kind");
  return histograms_[name];
}

const Counter& MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  require(it != counters_.end(),
          "MetricsRegistry: no counter named '" + name + "'");
  return it->second;
}

const Gauge& MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  require(it != gauges_.end(),
          "MetricsRegistry: no gauge named '" + name + "'");
  return it->second;
}

const Histogram& MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  require(it != histograms_.end(),
          "MetricsRegistry: no histogram named '" + name + "'");
  return it->second;
}

bool MetricsRegistry::contains(const std::string& name) const {
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_text(std::ostream& out) const {
  // One table section with every kind interleaved in name order, so a
  // counter and the gauges derived from it (e.g. profile .count next to
  // .total_ms) read as one aligned block instead of three disjoint runs.
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, "counter", std::to_string(counter.value()), ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    rows.push_back({name, "gauge", TextTable::num(gauge.value()), ""});
  }
  for (const auto& [name, histogram] : histograms_) {
    rows.push_back({name, "histogram", std::to_string(histogram.count()),
                    "min=" + TextTable::num(histogram.min()) +
                        " mean=" + TextTable::num(histogram.mean()) +
                        " p50=" + TextTable::num(histogram.p50()) +
                        " p90=" + TextTable::num(histogram.p90()) +
                        " p99=" + TextTable::num(histogram.p99()) +
                        " max=" + TextTable::num(histogram.max())});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });
  TextTable table({"metric", "kind", "value", "detail"});
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(out);
}

namespace {

std::string json_number(double value) {
  // Integral doubles print without a fraction so counters-as-gauges stay
  // readable; everything else keeps full precision via to_string.
  if (std::floor(value) == value && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  return std::to_string(value);
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << counter.value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << json_number(gauge.value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << histogram.count()
        << ",\"sum\":" << json_number(histogram.sum())
        << ",\"min\":" << json_number(histogram.min())
        << ",\"max\":" << json_number(histogram.max())
        << ",\"p50\":" << json_number(histogram.p50())
        << ",\"p90\":" << json_number(histogram.p90())
        << ",\"p99\":" << json_number(histogram.p99())
        << ",\"underflow\":" << histogram.underflow() << ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
      if (i != 0) out << ",";
      out << histogram.bucket(i);
    }
    out << "]}";
  }
  out << "}}";
}

}  // namespace miro::obs
