#include "obs/regression.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace miro::obs {

bool is_perf_unit(const std::string& unit) {
  if (unit == "ns" || unit == "us" || unit == "ms" || unit == "s") return true;
  if (unit.size() >= 2 && unit.compare(unit.size() - 2, 2, "/s") == 0)
    return true;
  return false;
}

bool is_memory_unit(const std::string& unit) {
  return unit == "bytes" ||
         (unit.size() > 6 && unit.compare(0, 6, "bytes/") == 0);
}

RowKind classify_unit(const std::string& unit) {
  if (is_perf_unit(unit)) {
    const bool rate =
        unit.size() >= 2 && unit.compare(unit.size() - 2, 2, "/s") == 0;
    return rate ? RowKind::Rate : RowKind::Time;
  }
  if (is_memory_unit(unit)) return RowKind::Memory;
  return RowKind::Value;
}

namespace {

const JsonValue& bench_map(const JsonValue& doc) {
  require(doc.is_object(), "regression: snapshot is not a JSON object");
  return doc.at("benches");
}

}  // namespace

std::size_t RegressionReport::regressions() const {
  std::size_t n = 0;
  for (const RegressionRow& row : rows)
    if (row.regressed) ++n;
  return n;
}

std::size_t RegressionReport::regressions(RowKind kind) const {
  std::size_t n = 0;
  for (const RegressionRow& row : rows)
    if (row.regressed && row.kind == kind) ++n;
  return n;
}

RegressionReport compare_bench_json(const JsonValue& baseline,
                                    const JsonValue& current,
                                    const RegressionOptions& options) {
  RegressionReport report;
  const JsonValue& base_benches = bench_map(baseline);
  const JsonValue& cur_benches = bench_map(current);

  for (const auto& [bench_name, base_bench] : base_benches.members()) {
    const JsonValue* cur_bench = cur_benches.get(bench_name);
    if (cur_bench == nullptr) {
      report.missing_benches.push_back(bench_name);
      continue;
    }
    // Index current rows by name for the join.
    const JsonValue& cur_results = cur_bench->at("results");
    auto find_current = [&](const std::string& name) -> const JsonValue* {
      for (std::size_t i = 0; i < cur_results.size(); ++i) {
        if (cur_results.at(i).at("name").as_string() == name)
          return &cur_results.at(i);
      }
      return nullptr;
    };

    const JsonValue& base_results = base_bench.at("results");
    for (std::size_t i = 0; i < base_results.size(); ++i) {
      const JsonValue& base_row = base_results.at(i);
      const std::string name = base_row.at("name").as_string();
      const JsonValue* cur_row = find_current(name);
      if (cur_row == nullptr) {
        report.missing_rows.push_back(bench_name + "/" + name);
        continue;
      }
      RegressionRow row;
      row.bench = bench_name;
      row.name = name;
      row.unit = base_row.at("unit").as_string();
      // A non-finite value was serialized as null; treat as absent-but-
      // matching so a nan in both snapshots doesn't wedge the gate.
      const JsonValue& bv = base_row.at("value");
      const JsonValue& cv = cur_row->at("value");
      row.kind = classify_unit(row.unit);
      if (bv.is_null() || cv.is_null()) {
        row.gated = false;
        report.rows.push_back(row);
        continue;
      }
      row.baseline = bv.as_number();
      row.current = cv.as_number();
      row.change = row.baseline == 0
                       ? (row.current == 0 ? 0 : 1.0)
                       : (row.current - row.baseline) / std::abs(row.baseline);
      const bool perf = row.kind == RowKind::Time || row.kind == RowKind::Rate;
      if (options.values_only) {
        // Determinism gate: wall-clock rows are expected to differ across
        // thread counts; memory rows are deterministic walks and value rows
        // are reproduction outputs — both must be bit-identical.
        row.gated = !perf;
        if (row.gated) row.regressed = row.current != row.baseline;
      } else if (perf) {
        row.gated = true;
        if (std::abs(row.baseline) >= options.min_magnitude) {
          const double worse =
              row.kind == RowKind::Rate ? -row.change : row.change;
          row.regressed = worse > options.threshold;
        }
      } else if (row.kind == RowKind::Memory) {
        row.gated = true;
        const double growth = row.current - row.baseline;
        if (std::abs(row.baseline) >= options.memory_min_magnitude)
          row.regressed = row.change > options.memory_threshold;
        if (options.memory_abs_limit > 0 && growth > options.memory_abs_limit)
          row.regressed = true;
      } else if (options.check_values) {
        row.regressed = std::abs(row.change) > options.threshold;
      }
      report.rows.push_back(row);
    }
  }
  return report;
}

void RegressionReport::write_text(std::ostream& out) const {
  std::vector<const RegressionRow*> ordered;
  for (const RegressionRow& row : rows) ordered.push_back(&row);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RegressionRow* a, const RegressionRow* b) {
                     if (a->regressed != b->regressed) return a->regressed;
                     return std::abs(a->change) > std::abs(b->change);
                   });
  TextTable table({"bench", "row", "unit", "baseline", "current", "change",
                   "verdict"});
  std::size_t shown = 0;
  for (const RegressionRow* row : ordered) {
    // Show every regression plus the ten biggest movers for context.
    if (!row->regressed && shown >= 10) continue;
    ++shown;
    char change[32];
    std::snprintf(change, sizeof(change), "%+.1f%%", row->change * 100);
    table.add_row({row->bench, row->name, row->unit,
                   TextTable::num(row->baseline), TextTable::num(row->current),
                   change,
                   row->regressed ? "REGRESSED"
                                  : (row->gated ? "ok" : "info")});
  }
  table.print(out);
  for (const std::string& name : missing_benches)
    out << "MISSING BENCH: " << name << "\n";
  for (const std::string& name : missing_rows)
    out << "MISSING ROW: " << name << "\n";
  if (ok()) {
    out << "perf gate OK: " << rows.size() << " rows compared, no row worse "
        << "than the threshold\n";
  } else {
    // Every violation is listed above; the exit line gives the triage
    // breakdown so a mixed memory+time regression is obvious at a glance.
    out << "perf gate FAIL: " << regressions() << " regressed row(s) (time "
        << regressions(RowKind::Time) << ", rate "
        << regressions(RowKind::Rate) << ", memory "
        << regressions(RowKind::Memory) << ", value "
        << regressions(RowKind::Value) << "), "
        << missing_rows.size() + missing_benches.size() << " missing\n";
  }
}

}  // namespace miro::obs
